# Mirrors .github/workflows/ci.yml for local runs.

.PHONY: check vet test race bench

check: vet test race

vet:
	go vet ./...

test:
	go build ./... && go test ./...

# The pipeline is concurrent; run the race detector before every change.
# -short keeps paper-scale scenarios and benchmarks out of the
# instrumented run.
race:
	go test -race -short ./...

bench:
	go test -bench . -benchtime 1x ./...
