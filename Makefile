# Mirrors .github/workflows/ci.yml for local runs.

.PHONY: check vet test race bench bench-json

check: vet test race

vet:
	go vet ./...

test:
	go build ./... && go test ./...

# The pipeline is concurrent; run the race detector before every change.
# -short keeps paper-scale scenarios and benchmarks out of the
# instrumented run.
race:
	go test -race -short ./...

bench:
	go test -bench . -benchtime 1x ./...

# Re-measure the B-clustering scalability trajectory and merge it into
# BENCH_bcluster.json (entries from other labels, e.g. the committed
# pre-PR baseline, are preserved).
bench-json:
	go run ./cmd/benchjson -label post-pr2 -o BENCH_bcluster.json
