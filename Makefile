# Mirrors .github/workflows/ci.yml for local runs.

.PHONY: check vet test race bench bench-json bench-guard run-landscaped smoke-landscaped smoke-crash smoke-chaos smoke-overload smoke-shard smoke-replica smoke-poison fuzz-smoke

# Label for bench-json measurement campaigns; override per campaign:
#   make bench-json LABEL=post-pr9
LABEL ?= post-pr8

check: vet test race

vet:
	go vet ./...

test:
	go build ./... && go test ./...

# The pipeline is concurrent; run the race detector before every change.
# -short keeps paper-scale scenarios and benchmarks out of the
# instrumented run.
race:
	go test -race -short ./...

bench:
	go test -bench . -benchtime 1x ./...

# Re-measure the B-clustering scalability trajectory (BENCH_bcluster.json),
# the streaming-service ingest throughput (BENCH_stream.json), and the
# adversarial poisoning validity sweep (BENCH_poison.json); entries from
# other labels, e.g. the committed pre-PR baselines, are preserved.
bench-json:
	go run ./cmd/benchjson -label $(LABEL) -o BENCH_bcluster.json -stream-o BENCH_stream.json -poison-o BENCH_poison.json

# Superlinearity canary: replay the n=1k and n=10k stream corpora and
# fail if ns/event grows more than 1.5x across the decade. Writes no
# files. Mirrors the CI "Bench guard" step.
bench-guard:
	go run ./cmd/benchjson -guard

# Serve the streaming landscape daemon on the small scenario; feed it
# with `go run ./cmd/landscaped -small -replay-to http://127.0.0.1:8844`
# and stop it with ctrl-c (it drains and shuts down gracefully).
run-landscaped:
	go run ./cmd/landscaped -small -addr 127.0.0.1:8844

# End-to-end daemon smoke: in-process replay convergence gate, then an
# HTTP round trip (serve → replay over HTTP → health + stats checks).
# Mirrors the CI "Landscaped smoke" step.
smoke-landscaped:
	go run ./cmd/landscaped -replay -small
	go build -o /tmp/landscaped-smoke ./cmd/landscaped
	/tmp/landscaped-smoke -small -addr 127.0.0.1:18901 & \
	DPID=$$!; sleep 2; \
	/tmp/landscaped-smoke -small -replay-to http://127.0.0.1:18901 -batch 200 && \
	curl -sf http://127.0.0.1:18901/healthz && \
	curl -sf http://127.0.0.1:18901/v1/stats | grep -q '"events": 705'; \
	RC=$$?; kill -TERM $$DPID 2>/dev/null; wait $$DPID 2>/dev/null; \
	rm -f /tmp/landscaped-smoke; exit $$RC

# Crash-recovery smoke: serve with a WAL, feed half the scenario,
# SIGKILL the daemon mid-run, restart it from the WAL + checkpoint,
# feed the rest, and assert the recovered daemon converged with the
# batch pipeline. Mirrors the CI "Crash recovery smoke" step.
smoke-crash:
	go build -o /tmp/landscaped-crash ./cmd/landscaped
	rm -rf /tmp/landscaped-crash-wal && mkdir -p /tmp/landscaped-crash-wal
	/tmp/landscaped-crash -small -addr 127.0.0.1:18902 \
		-wal-dir /tmp/landscaped-crash-wal -checkpoint-every 2 & \
	DPID=$$!; \
	/tmp/landscaped-crash -small -replay-to http://127.0.0.1:18902 \
		-batch 100 -replay-limit 350; RC=$$?; \
	kill -KILL $$DPID 2>/dev/null; wait $$DPID 2>/dev/null; \
	if [ $$RC -ne 0 ]; then rm -rf /tmp/landscaped-crash /tmp/landscaped-crash-wal; exit $$RC; fi; \
	/tmp/landscaped-crash -small -addr 127.0.0.1:18902 \
		-wal-dir /tmp/landscaped-crash-wal -checkpoint-every 2 & \
	DPID=$$!; \
	/tmp/landscaped-crash -small -replay-to http://127.0.0.1:18902 \
		-batch 100 -replay-offset 350 -replay-verify; \
	RC=$$?; kill -TERM $$DPID 2>/dev/null; wait $$DPID 2>/dev/null; \
	rm -rf /tmp/landscaped-crash /tmp/landscaped-crash-wal; exit $$RC

# Disk-fault chaos smoke (DESIGN.md §15). Leg 1: the in-process soak —
# 20 seeded write-side fault schedules (internal/chaos), each driving
# ingest through injected EIO/torn-write/ENOSPC/fsync/rename failures
# and operator restarts, each required to converge on cluster views
# byte-identical to a clean run. Leg 2: the real daemon — serve with a
# WAL under an injected fault schedule (-fault-seed), feed half the
# scenario, force two checkpoints so a fallback generation exists,
# SIGKILL the daemon, corrupt the live checkpoint on disk, restart it
# clean, and require generation-fallback recovery (-replay-verify plus
# the checkpoint_fallbacks counter), then a clean offline -wal-verify
# (which also verifies every retained checkpoint generation). Mirrors
# the CI "Chaos smoke" step.
smoke-chaos:
	go test -count=1 -v ./internal/chaos/
	go build -o /tmp/landscaped-chaos ./cmd/landscaped
	rm -rf /tmp/landscaped-chaos-wal && mkdir -p /tmp/landscaped-chaos-wal
	/tmp/landscaped-chaos -small -addr 127.0.0.1:18905 \
		-wal-dir /tmp/landscaped-chaos-wal -checkpoint-every 2 -wal-nosync \
		-fault-seed 6 -fault-rate 0.25 -fault-max 6 & \
	DPID=$$!; \
	/tmp/landscaped-chaos -small -replay-to http://127.0.0.1:18905 \
		-batch 25 -replay-limit 350; RC=$$?; \
	curl -sf -X POST http://127.0.0.1:18905/v1/checkpoint >/dev/null || RC=1; \
	curl -sf -X POST http://127.0.0.1:18905/v1/checkpoint >/dev/null || RC=1; \
	kill -KILL $$DPID 2>/dev/null; wait $$DPID 2>/dev/null; \
	if [ $$RC -ne 0 ]; then rm -rf /tmp/landscaped-chaos /tmp/landscaped-chaos-wal; exit $$RC; fi; \
	dd if=/dev/zero of=/tmp/landscaped-chaos-wal/checkpoint.json \
		bs=1 seek=64 count=8 conv=notrunc status=none; \
	/tmp/landscaped-chaos -small -addr 127.0.0.1:18905 \
		-wal-dir /tmp/landscaped-chaos-wal -checkpoint-every 2 -wal-nosync & \
	DPID=$$!; \
	/tmp/landscaped-chaos -small -replay-to http://127.0.0.1:18905 \
		-batch 100 -replay-offset 350 -replay-verify; RC=$$?; \
	curl -sf http://127.0.0.1:18905/v1/stats | grep -q '"checkpoint_fallbacks": 1' || RC=1; \
	kill -TERM $$DPID 2>/dev/null; wait $$DPID 2>/dev/null; \
	/tmp/landscaped-chaos -wal-verify -wal-dir /tmp/landscaped-chaos-wal || RC=1; \
	rm -rf /tmp/landscaped-chaos /tmp/landscaped-chaos-wal; exit $$RC

# Overload smoke: a seeded multi-client load generator (internal/loadgen)
# drives the service >=10x past a pinned apply capacity over HTTP and
# asserts the no-collapse throughput band, fast structured rejections,
# per-client fairness, monotonic admission counters, and post-pressure
# convergence with the batch pipeline. Mirrors the CI "Overload smoke"
# step.
smoke-overload:
	go test -count=1 -run TestOverloadSmoke -v ./internal/loadgen/

# Sharding smoke: the race detector over the N-shard == 1-shard merged
# view equivalence, a 4-shard in-process replay convergence gate, and
# the loadgen flood through 1- and 4-shard daemons (merged-view
# equivalence plus the >=2x aggregate-throughput bound, enforced where
# the box has >=4 cores). Mirrors the CI "Shard smoke" step.
smoke-shard:
	go test -count=1 -race -run TestShardEquivalence ./internal/shard/
	go run ./cmd/landscaped -replay -small -shards 4
	go test -count=1 -run TestShardFloodSmoke -v ./internal/loadgen/

# Replication smoke. First the in-process fan-out harness: flood a
# durable primary (with a follower bootstrapping mid-flood and being
# abandoned), then require byte-identical cluster views on two fresh
# replicas at 1 and 4 shards plus the >=2x aggregate read-throughput
# bound (enforced where the box has >=4 cores). Then a real daemon
# pair: flood a -repl primary over HTTP, SIGKILL a follower
# mid-catch-up, restart it, and require byte-identical views, a typed
# read-only 403 for writes, and a clean offline -wal-verify walk of
# the primary's log. Mirrors the CI "Replica smoke" step.
smoke-replica:
	go test -count=1 -run TestReplicaFanoutSmoke -v ./internal/loadgen/
	go build -o /tmp/landscaped-repl ./cmd/landscaped
	rm -rf /tmp/landscaped-repl-wal && mkdir -p /tmp/landscaped-repl-wal
	/tmp/landscaped-repl -small -addr 127.0.0.1:18903 -repl \
		-wal-dir /tmp/landscaped-repl-wal -checkpoint-every 2 -wal-nosync & \
	PRIM=$$!; \
	/tmp/landscaped-repl -small -replay-to http://127.0.0.1:18903 -batch 100; RC=$$?; \
	if [ $$RC -ne 0 ]; then kill -KILL $$PRIM 2>/dev/null; exit $$RC; fi; \
	/tmp/landscaped-repl -small -addr 127.0.0.1:18904 \
		-follow http://127.0.0.1:18903 -repl-poll 200ms & \
	FOLL=$$!; sleep 1; \
	kill -KILL $$FOLL 2>/dev/null; wait $$FOLL 2>/dev/null; \
	/tmp/landscaped-repl -small -addr 127.0.0.1:18904 \
		-follow http://127.0.0.1:18903 -repl-poll 200ms & \
	FOLL=$$!; RC=1; \
	for i in $$(seq 1 120); do \
		if curl -sf http://127.0.0.1:18904/readyz >/dev/null; then RC=0; break; fi; \
		sleep 1; \
	done; \
	if [ $$RC -eq 0 ]; then \
		for d in e p m b; do \
			curl -sf http://127.0.0.1:18903/v1/clusters/$$d > /tmp/repl-prim-$$d.json && \
			curl -sf http://127.0.0.1:18904/v1/clusters/$$d > /tmp/repl-foll-$$d.json && \
			cmp /tmp/repl-prim-$$d.json /tmp/repl-foll-$$d.json || { RC=1; break; }; \
		done; \
	fi; \
	curl -s -X POST -H 'Content-Type: application/json' -d '[]' \
		http://127.0.0.1:18904/v1/ingest | grep -q read_only || RC=1; \
	kill -TERM $$FOLL 2>/dev/null; wait $$FOLL 2>/dev/null; \
	kill -TERM $$PRIM 2>/dev/null; wait $$PRIM 2>/dev/null; \
	/tmp/landscaped-repl -wal-verify -wal-dir /tmp/landscaped-repl-wal || RC=1; \
	rm -rf /tmp/landscaped-repl /tmp/landscaped-repl-wal /tmp/repl-*.json; exit $$RC

# Poisoning smoke: sweep the small corpus through the seeded bridge and
# dilution attack (internal/poison), asserting that the undefended
# pipeline's B precision measurably degrades at 10% poison, that the
# defended streaming run recovers at least half of the lost precision,
# that quarantine stays queryable and fully drains on flush, and that
# the per-client ledger pins suspicion on the attacker's client
# identity. Mirrors the CI "Poison smoke" step.
smoke-poison:
	go test -count=1 -run 'TestSweepDefenseRecovery|TestDefendedServiceLedgerAndDrain' -v ./internal/poison/

# Short coverage-guided fuzz of the ingest decode -> validate -> apply
# path (FuzzIngestPipeline). The minimize budget is capped in execs so a
# noisy-coverage input cannot eat the whole fuzz window.
fuzz-smoke:
	go test -count=1 -run '^$$' -fuzz FuzzIngestPipeline -fuzztime 30s \
		-fuzzminimizetime 20x ./internal/httpapi/
