package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/stream"
)

// TestHandlerEndToEnd drives the HTTP API against a real service hosting
// the small scenario: ingest the simulated events, flush, and query every
// endpoint.
func TestHandlerEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("replays the SmallScenario over HTTP")
	}
	scenario := core.SmallScenario()
	_, sim, pipe, err := core.Prepare(scenario)
	if err != nil {
		t.Fatal(err)
	}
	cfg := stream.DefaultConfig()
	cfg.Thresholds = scenario.Thresholds
	cfg.BCluster = scenario.Enrichment.BCluster
	svc, err := stream.New(cfg, pipe)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	ts := httptest.NewServer(newHandler(svc))
	defer ts.Close()

	events := sim.Dataset.Events()
	body, err := json.Marshal(events)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/ingest", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: %s", resp.Status)
	}
	if resp, err = http.Post(ts.URL+"/v1/flush", "application/json", nil); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("flush: %s", resp.Status)
	}

	getJSON := func(path string, into any) int {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
				t.Fatalf("%s: %v", path, err)
			}
		}
		return resp.StatusCode
	}

	var health map[string]string
	if code := getJSON("/healthz", &health); code != http.StatusOK || health["status"] != "ok" {
		t.Fatalf("healthz: code=%d body=%v", code, health)
	}

	var stats stream.Stats
	if code := getJSON("/v1/stats", &stats); code != http.StatusOK {
		t.Fatalf("stats: %d", code)
	}
	if stats.Events != len(events) || stats.Rejected != 0 || stats.EnrichErrors != 0 {
		t.Fatalf("stats after replay: %+v", stats)
	}

	for _, dim := range []string{"e", "epsilon", "p", "m"} {
		var view stream.EPMView
		if code := getJSON("/v1/clusters/"+dim, &view); code != http.StatusOK {
			t.Fatalf("clusters/%s: %d", dim, code)
		}
		if len(view.Clusters) == 0 {
			t.Fatalf("clusters/%s: empty", dim)
		}
	}
	var bview stream.BView
	if code := getJSON("/v1/clusters/b", &bview); code != http.StatusOK || len(bview.Clusters) == 0 {
		t.Fatalf("clusters/b: code=%d clusters=%d", code, len(bview.Clusters))
	}
	var junk map[string]string
	if code := getJSON("/v1/clusters/nope", &junk); code != http.StatusNotFound {
		t.Fatalf("clusters/nope: %d, want 404", code)
	}

	var sample stream.SampleView
	md5 := bview.Clusters[0].Representative
	if code := getJSON("/v1/sample/"+md5, &sample); code != http.StatusOK || sample.MD5 != md5 {
		t.Fatalf("sample/%s: code=%d view=%+v", md5, code, sample)
	}
	if code := getJSON("/v1/sample/absent", &junk); code != http.StatusNotFound {
		t.Fatalf("sample/absent: %d, want 404", code)
	}

	// Malformed ingest body is a client error, not a service failure.
	if resp, err = http.Post(ts.URL+"/v1/ingest", "application/json", strings.NewReader("{not json")); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed ingest: %s, want 400", resp.Status)
	}
}
