package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/behavior"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/enrich"
	"repro/internal/stream"
)

// TestHandlerEndToEnd drives the HTTP API against a real service hosting
// the small scenario: ingest the simulated events, flush, and query every
// endpoint.
func TestHandlerEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("replays the SmallScenario over HTTP")
	}
	scenario := core.SmallScenario()
	_, sim, pipe, err := core.Prepare(scenario)
	if err != nil {
		t.Fatal(err)
	}
	cfg := stream.DefaultConfig()
	cfg.Thresholds = scenario.Thresholds
	cfg.BCluster = scenario.Enrichment.BCluster
	svc, err := stream.New(cfg, pipe)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	ts := httptest.NewServer(newHandler(func() *stream.Service { return svc }, maxIngestBody))
	defer ts.Close()

	events := sim.Dataset.Events()
	body, err := json.Marshal(events)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/ingest", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: %s", resp.Status)
	}
	if resp, err = http.Post(ts.URL+"/v1/flush", "application/json", nil); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("flush: %s", resp.Status)
	}

	getJSON := func(path string, into any) int {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
				t.Fatalf("%s: %v", path, err)
			}
		}
		return resp.StatusCode
	}

	var health map[string]string
	if code := getJSON("/healthz", &health); code != http.StatusOK || health["status"] != "ok" {
		t.Fatalf("healthz: code=%d body=%v", code, health)
	}

	var stats stream.Stats
	if code := getJSON("/v1/stats", &stats); code != http.StatusOK {
		t.Fatalf("stats: %d", code)
	}
	if stats.Events != len(events) || stats.Rejected != 0 || stats.EnrichErrors != 0 {
		t.Fatalf("stats after replay: %+v", stats)
	}

	for _, dim := range []string{"e", "epsilon", "p", "m"} {
		var view stream.EPMView
		if code := getJSON("/v1/clusters/"+dim, &view); code != http.StatusOK {
			t.Fatalf("clusters/%s: %d", dim, code)
		}
		if len(view.Clusters) == 0 {
			t.Fatalf("clusters/%s: empty", dim)
		}
	}
	var bview stream.BView
	if code := getJSON("/v1/clusters/b", &bview); code != http.StatusOK || len(bview.Clusters) == 0 {
		t.Fatalf("clusters/b: code=%d clusters=%d", code, len(bview.Clusters))
	}
	var junk map[string]string
	if code := getJSON("/v1/clusters/nope", &junk); code != http.StatusNotFound {
		t.Fatalf("clusters/nope: %d, want 404", code)
	}

	var sample stream.SampleView
	md5 := bview.Clusters[0].Representative
	if code := getJSON("/v1/sample/"+md5, &sample); code != http.StatusOK || sample.MD5 != md5 {
		t.Fatalf("sample/%s: code=%d view=%+v", md5, code, sample)
	}
	if code := getJSON("/v1/sample/absent", &junk); code != http.StatusNotFound {
		t.Fatalf("sample/absent: %d, want 404", code)
	}

	// Malformed ingest body is a client error, not a service failure.
	if resp, err = http.Post(ts.URL+"/v1/ingest", "application/json", strings.NewReader("{not json")); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed ingest: %s, want 400", resp.Status)
	}
}

// nopEnricher satisfies stream.Enricher for handler-level tests that
// never reach enrichment.
type nopEnricher struct{}

func (nopEnricher) LabelSample(s *dataset.Sample) error { return nil }
func (nopEnricher) ExecuteSample(s *dataset.Sample) (*behavior.Profile, bool, error) {
	return behavior.NewProfile(), false, nil
}

// TestHandlerRecoveryGate checks the readiness split: while the service
// is still recovering (get returns nil), /healthz stays alive, /readyz
// and every service endpoint answer 503; once ready, /readyz flips.
func TestHandlerRecoveryGate(t *testing.T) {
	var svc *stream.Service
	ts := httptest.NewServer(newHandler(func() *stream.Service { return svc }, maxIngestBody))
	defer ts.Close()

	status := func(method, path string) int {
		t.Helper()
		req, err := http.NewRequest(method, ts.URL+path, strings.NewReader("[]"))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	if code := status("GET", "/healthz"); code != http.StatusOK {
		t.Fatalf("healthz while recovering: %d, want 200", code)
	}
	for path, method := range map[string]string{
		"/readyz": "GET", "/v1/stats": "GET", "/v1/ingest": "POST", "/v1/flush": "POST",
	} {
		if code := status(method, path); code != http.StatusServiceUnavailable {
			t.Fatalf("%s while recovering: %d, want 503", path, code)
		}
	}

	real, err := stream.New(stream.DefaultConfig(), nopEnricher{})
	if err != nil {
		t.Fatal(err)
	}
	defer real.Close()
	svc = real
	if code := status("GET", "/readyz"); code != http.StatusOK {
		t.Fatalf("readyz when ready: %d, want 200", code)
	}
}

// TestIngestBodyCap checks oversized /v1/ingest bodies are refused with
// 413 before they reach the service.
func TestIngestBodyCap(t *testing.T) {
	svc, err := stream.New(stream.DefaultConfig(), nopEnricher{})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ts := httptest.NewServer(newHandler(func() *stream.Service { return svc }, 256))
	defer ts.Close()

	big := "[" + strings.Repeat(" ", 1024) + "]"
	resp, err := http.Post(ts.URL+"/v1/ingest", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized ingest: %s, want 413", resp.Status)
	}
	var body map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil || body["error"] == "" {
		t.Fatalf("413 body = %v, %v; want an error message", body, err)
	}
	// A small body still lands.
	resp, err = http.Post(ts.URL+"/v1/ingest", "application/json", strings.NewReader("[]"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("small ingest after cap test: %s, want 200", resp.Status)
	}
}

// TestConvergeStreamFailsMidStream is the -replay exit-path regression:
// a replay that dies mid-stream (service closed under it) must surface
// a clear error instead of a partial comparison, and an unclean replay
// (quarantined samples) must fail the gate even when event counts look
// plausible.
func TestConvergeStreamFailsMidStream(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the SmallScenario batch pipeline")
	}
	res, err := core.Run(core.SmallScenario())
	if err != nil {
		t.Fatal(err)
	}
	cfg := stream.Config{
		EpochSize:  64,
		Thresholds: core.SmallScenario().Thresholds,
		BCluster:   core.SmallScenario().Enrichment.BCluster,
	}
	svc, err := stream.New(cfg, res.Pipeline)
	if err != nil {
		t.Fatal(err)
	}
	svc.Close() // the next Ingest fails -> mid-stream replay failure
	err = convergeStream(svc, res, 97)
	if err == nil || !strings.Contains(err.Error(), "mid-stream") {
		t.Fatalf("convergeStream on a dead service: %v, want mid-stream failure", err)
	}

	// Unclean replay: one sample permanently quarantined.
	victim := res.Dataset.Samples()[0].MD5
	faulty := enrich.NewFaulty(res.Pipeline, enrich.FaultConfig{Permanent: map[string]bool{victim: true}})
	svc2, err := stream.New(cfg, faulty)
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()
	err = convergeStream(svc2, res, 97)
	if err == nil || !strings.Contains(err.Error(), "unclean replay") {
		t.Fatalf("convergeStream with a quarantined sample: %v, want unclean-replay failure", err)
	}
}
