package main

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/enrich"
	"repro/internal/stream"
)

// TestConvergeStreamFailsMidStream is the -replay exit-path regression:
// a replay that dies mid-stream (service closed under it) must surface
// a clear error instead of a partial comparison, and an unclean replay
// (quarantined samples) must fail the gate even when event counts look
// plausible.
func TestConvergeStreamFailsMidStream(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the SmallScenario batch pipeline")
	}
	res, err := core.Run(core.SmallScenario())
	if err != nil {
		t.Fatal(err)
	}
	cfg := stream.Config{
		EpochSize:  64,
		Thresholds: core.SmallScenario().Thresholds,
		BCluster:   core.SmallScenario().Enrichment.BCluster,
	}
	svc, err := stream.New(cfg, res.Pipeline)
	if err != nil {
		t.Fatal(err)
	}
	svc.Close() // the next Ingest fails -> mid-stream replay failure
	err = convergeStream(svc, res, 97)
	if err == nil || !strings.Contains(err.Error(), "mid-stream") {
		t.Fatalf("convergeStream on a dead service: %v, want mid-stream failure", err)
	}

	// Unclean replay: one sample permanently quarantined.
	victim := res.Dataset.Samples()[0].MD5
	faulty := enrich.NewFaulty(res.Pipeline, enrich.FaultConfig{Permanent: map[string]bool{victim: true}})
	svc2, err := stream.New(cfg, faulty)
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()
	err = convergeStream(svc2, res, 97)
	if err == nil || !strings.Contains(err.Error(), "unclean replay") {
		t.Fatalf("convergeStream with a quarantined sample: %v, want unclean-replay failure", err)
	}
}
