// Command landscaped serves the streaming landscape service over HTTP:
// a long-running daemon that ingests attack events and answers live
// cluster queries, the serving counterpart of the one-shot `landscape`
// report tool.
//
// The daemon hosts one scenario's enrichment pipeline (sandbox + AV
// oracle, seeded like the batch pipeline), so the events it can enrich
// are the scenario's own — generate them with the same seed, e.g. by
// replaying the simulated deployment into it.
//
// With -wal-dir the daemon is crash-safe: every accepted batch is
// written to a write-ahead log before it is applied and the full state
// is checkpointed periodically, so a SIGKILL loses at most the batches
// that were queued but not yet logged. Recovery runs asynchronously at
// startup — the listener comes up immediately and /readyz reports 503
// until the checkpoint is loaded and the WAL suffix replayed.
//
// Durability self-heals (DESIGN.md §15): checkpoints carry a CRC
// trailer and the previous -checkpoint-gens checkpoints are retained as
// checkpoint.json.<gen> fallbacks, so a corrupt newest checkpoint costs
// a longer WAL replay instead of the state; a failed WAL append is
// retried once on a reopened (tail-repaired) log; persistent
// append/checkpoint failure degrades the daemon to read-only — writes
// answer a typed 503 with reason "storage_failed" while reads, /readyz,
// and /v1/stats keep serving and expose the degradation. -scrub-every
// walks the sealed WAL segments in the background and surfaces latent
// corruption in /v1/stats before recovery needs those segments. For
// chaos testing, -fault-seed injects a deterministic seeded schedule of
// write-side disk faults under the WAL and checkpoint writer (`make
// smoke-chaos` drives this against real SIGKILLs).
//
// Overload protection (all off by default, see DESIGN.md §9): with
// -rate-limit each client (X-Client-ID header, else remote IP) gets a
// token-bucket events/sec budget; -admission-deadline bounds how long
// an ingest may wait for queue space; -shed-target sheds batches when
// the smoothed queue delay overshoots; -degrade-target defers epoch
// work under sustained pressure. Refused work answers 429 (client
// should slow down) or 503 (service saturated) with a Retry-After
// header instead of blocking the connection.
//
// With -shards N (N >= 2) the landscape is partitioned horizontally:
// N independent shard services — each with its own ingest queue, apply
// worker, WAL subdirectory, and incremental engines — behind a
// deterministic router (stable hash of the sample MD5), with queries
// answered from exact merged global views (see DESIGN.md §12). The WAL
// root then holds one shard-NNNN/ subdirectory per shard plus a
// shards.json manifest pinning the shard count; reopening with a
// different -shards fails closed. -shards 1 (the default) keeps the
// single-service layout from earlier releases.
//
// With -repl (requires -wal-dir) the daemon is a replication primary:
// it additionally serves the log-shipping endpoints under /v1/repl/ —
// segment manifests, checkpoint blobs, and CRC-framed record streams.
// With -follow URL it is instead a read replica of that primary: it
// bootstraps every shard from the primary's newest checkpoint, replays
// the shipped WAL suffix through the same apply path (so its views are
// byte-identical), tails new records every -repl-poll, answers all
// read endpoints, and refuses writes with a typed 403. Replication lag
// is reported in /v1/stats and gates /readyz via -max-lag (see
// DESIGN.md §13).
//
// Usage:
//
//	landscaped [-addr :8844] [-seed N] [-small] [-scenario file.json]
//	           [-epoch 256] [-queue 16] [-batch 64] [-shards N]
//	           [-wal-dir DIR] [-checkpoint-every 64] [-wal-nosync]
//	           [-checkpoint-gens 2] [-scrub-every D]
//	           [-fault-seed N] [-fault-rate P] [-fault-max N]
//	           [-rate-limit N] [-burst N] [-admission-deadline D]
//	           [-shed-target D] [-degrade-target D] [-max-waiters N]
//	           [-repl]
//	landscaped -follow URL [flags]      # read replica of a -repl primary
//	           [-repl-poll 500ms] [-max-lag D]
//	landscaped -wal-verify -wal-dir DIR # offline WAL + checkpoint integrity walk
//	landscaped -replay [flags]          # in-process replay + convergence check
//	landscaped -replay-to URL [flags]   # replay the scenario over HTTP
//	           [-replay-offset N] [-replay-limit N] [-replay-verify]
//
// API:
//
//	POST /v1/ingest        body: JSON array of events -> {"queued": n}
//	GET  /v1/clusters/{d}  d in e|epsilon|p|pi|m|mu|b
//	GET  /v1/sample/{id}
//	GET  /v1/stats
//	POST /v1/flush         force an epoch everywhere
//	POST /v1/checkpoint    force a checkpoint (requires -wal-dir)
//	GET  /healthz          liveness: the process is up
//	GET  /readyz           readiness: recovery finished, queries answer
//	                       (on a replica: bootstrapped and within -max-lag)
//	GET  /v1/repl/segments                       -repl only: shipping manifest
//	GET  /v1/repl/checkpoint/{shard}             -repl only: checkpoint blob
//	GET  /v1/repl/segment/{shard}/{first}?from=N -repl only: frame stream
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/admission"
	"repro/internal/ckpt"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/enrich"
	"repro/internal/faultfs"
	"repro/internal/httpapi"
	"repro/internal/replica"
	"repro/internal/shard"
	"repro/internal/stream"
	"repro/internal/wal"
)

type options struct {
	addr         string
	seed         uint64
	small        bool
	scenarioPath string
	epoch        int
	queue        int
	batch        int
	parallelism  int
	shards       int

	walDir          string
	checkpointEvery int
	walNoSync       bool
	checkpointGens  int
	scrubEvery      time.Duration
	faultSeed       int64
	faultRate       float64
	faultMax        int

	rateLimit         float64
	burst             int
	admissionDeadline time.Duration
	shedTarget        time.Duration
	degradeTarget     time.Duration
	maxWaiters        int

	defendMerge    int
	defendTrust    float64
	defendDisagree int
	statsClients   bool

	repl      bool
	follow    string
	replPoll  time.Duration
	maxLag    time.Duration
	walVerify bool

	replay       bool
	replayTo     string
	replayOffset int
	replayLimit  int
	replayVerify bool
}

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", ":8844", "listen address")
	flag.Uint64Var(&o.seed, "seed", 2010, "scenario seed")
	flag.BoolVar(&o.small, "small", false, "use the reduced scenario")
	flag.StringVar(&o.scenarioPath, "scenario", "", "scenario JSON file (overrides -small)")
	flag.IntVar(&o.epoch, "epoch", 256, "pending-pool size that triggers a re-clustering epoch (0 = only on flush)")
	flag.IntVar(&o.queue, "queue", 16, "ingest queue depth, in batches")
	flag.IntVar(&o.batch, "batch", 64, "replay batch size, in events")
	flag.IntVar(&o.parallelism, "parallelism", 0, "worker bound for epochs and sandbox runs (0 = GOMAXPROCS)")
	flag.IntVar(&o.shards, "shards", 1, "horizontal shard count: independent services behind a deterministic router with merged views (1 = unsharded)")
	flag.StringVar(&o.walDir, "wal-dir", "", "durability directory for the write-ahead log and checkpoints (empty = memory-only)")
	flag.IntVar(&o.checkpointEvery, "checkpoint-every", 64, "checkpoint automatically after every N applied batches (0 = only on /v1/checkpoint)")
	flag.BoolVar(&o.walNoSync, "wal-nosync", false, "skip fsyncs on the WAL and checkpoints (faster, loses the last writes on power failure)")
	flag.IntVar(&o.checkpointGens, "checkpoint-gens", 2, "previous checkpoints retained as fallback generations; recovery falls back to them when the newest checkpoint is corrupt (-1 = none)")
	flag.DurationVar(&o.scrubEvery, "scrub-every", 0, "background WAL scrub interval: walk sealed segments, verify CRCs, surface corruption in /v1/stats (0 = off)")
	flag.Int64Var(&o.faultSeed, "fault-seed", 0, "chaos testing: inject seeded write-side disk faults (EIO, torn writes, fsync and rename failures) under the WAL and checkpoints (0 = off)")
	flag.Float64Var(&o.faultRate, "fault-rate", 0.05, "chaos testing: per-operation fault probability used with -fault-seed")
	flag.IntVar(&o.faultMax, "fault-max", 8, "chaos testing: total fault budget for -fault-seed, so a run converges (0 = unlimited)")
	flag.Float64Var(&o.rateLimit, "rate-limit", 0, "per-client admission budget in events/sec, keyed by X-Client-ID or remote IP (0 = unlimited)")
	flag.IntVar(&o.burst, "burst", 0, "per-client token-bucket capacity in events (0 = max(rate-limit, 1))")
	flag.DurationVar(&o.admissionDeadline, "admission-deadline", 0, "longest an ingest may wait for queue space before a 429 (0 = block indefinitely)")
	flag.DurationVar(&o.shedTarget, "shed-target", 0, "smoothed queue-delay target; above it incoming batches are shed with 503s (0 = never shed)")
	flag.DurationVar(&o.degradeTarget, "degrade-target", 0, "smoothed queue-delay threshold for degraded mode: epoch work deferred, queries marked degraded (0 = never degrade)")
	flag.IntVar(&o.maxWaiters, "max-waiters", 0, "producers allowed to block on a full queue before fast 503s (0 = unlimited)")
	flag.IntVar(&o.defendMerge, "defend-merge", 0, "merge resistance: quarantine samples whose links would join two B-clusters of at least this size (0 = off)")
	flag.Float64Var(&o.defendTrust, "defend-trust", 0, "trust penalty: raise the B link threshold by this weight times the pair's client distrust (0 = off)")
	flag.IntVar(&o.defendDisagree, "defend-disagree", 0, "disagreement quorum: park samples whose B links contradict their mu-group once this many group members are clustered (0 = off)")
	flag.BoolVar(&o.statsClients, "stats-clients", false, "surface the per-client admission and provenance ledger in /v1/stats")
	flag.BoolVar(&o.repl, "repl", false, "serve the log-shipping endpoints under /v1/repl/ so followers can replicate (requires -wal-dir)")
	flag.StringVar(&o.follow, "follow", "", "run as a read replica of the primary landscaped at this base URL: bootstrap from its checkpoint, tail its WAL, refuse writes")
	flag.DurationVar(&o.replPoll, "repl-poll", 500*time.Millisecond, "with -follow: how often the replica polls the primary for new records")
	flag.DurationVar(&o.maxLag, "max-lag", 0, "with -follow: /readyz flips to 503 when the replica has not been caught up within this duration (0 = always ready once bootstrapped)")
	flag.BoolVar(&o.walVerify, "wal-verify", false, "walk every WAL segment under -wal-dir (all shards), verify CRCs and seq contiguity, and exit non-zero on corruption")
	flag.BoolVar(&o.replay, "replay", false, "replay the scenario in-process, assert convergence with the batch pipeline, and exit")
	flag.StringVar(&o.replayTo, "replay-to", "", "replay the scenario's events over HTTP to a running landscaped at this base URL, then exit")
	flag.IntVar(&o.replayOffset, "replay-offset", 0, "with -replay-to: skip the first N events")
	flag.IntVar(&o.replayLimit, "replay-limit", 0, "with -replay-to: send at most N events (0 = all)")
	flag.BoolVar(&o.replayVerify, "replay-verify", false, "with -replay-to: after replaying, assert the daemon's stats converged with the batch pipeline")
	flag.Parse()

	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "landscaped:", err)
		os.Exit(1)
	}
}

func run(o options) error {
	scenario := core.DefaultScenario()
	if o.small {
		scenario = core.SmallScenario()
	}
	if o.scenarioPath != "" {
		loaded, err := core.LoadScenarioFile(o.scenarioPath)
		if err != nil {
			return err
		}
		scenario = loaded
	}
	scenario.Seed = o.seed
	if o.parallelism != 0 {
		scenario.Parallelism = o.parallelism
	}
	cfg := stream.Config{
		EpochSize:   o.epoch,
		QueueDepth:  o.queue,
		Parallelism: o.parallelism,
		Thresholds:  scenario.Thresholds,
		BCluster:    scenario.Enrichment.BCluster,
		Admission: admission.Config{
			RatePerSec:    o.rateLimit,
			Burst:         o.burst,
			Deadline:      o.admissionDeadline,
			ShedTarget:    o.shedTarget,
			DegradeTarget: o.degradeTarget,
			MaxWaiters:    o.maxWaiters,
			Seed:          o.seed,
		},
		Defense: stream.Defense{
			MergeResistance: o.defendMerge,
			TrustPenalty:    o.defendTrust,
			DisagreeQuorum:  o.defendDisagree,
		},
		StatsClients: o.statsClients,
	}
	if o.walDir != "" {
		cfg.Durability = stream.Durability{
			Dir:             o.walDir,
			CheckpointEvery: o.checkpointEvery,
			NoSync:          o.walNoSync,
			Generations:     o.checkpointGens,
		}
		if o.faultSeed != 0 {
			// The chaos harness (`make smoke-chaos`): a deterministic
			// write-side fault schedule under the real daemon, so the
			// self-heal and read-only machinery is exercised end to end.
			cfg.Durability.FS = faultfs.New(nil, faultfs.Config{
				Seed:      o.faultSeed,
				WriteErr:  o.faultRate,
				WriteTorn: o.faultRate / 2,
				SyncErr:   o.faultRate,
				RenameErr: o.faultRate,
				MaxFaults: o.faultMax,
			})
		}
	}

	if o.shards < 1 || o.shards > shard.MaxShards {
		return fmt.Errorf("-shards %d outside [1, %d]", o.shards, shard.MaxShards)
	}
	if o.walVerify {
		if o.walDir == "" {
			return fmt.Errorf("-wal-verify needs -wal-dir")
		}
		return verifyWAL(o.walDir)
	}
	if o.repl && o.walDir == "" {
		return fmt.Errorf("-repl needs -wal-dir: followers replicate the WAL")
	}
	if o.follow != "" {
		if o.walDir != "" {
			return fmt.Errorf("-follow is memory-only (replicas re-bootstrap from the primary); drop -wal-dir")
		}
		if o.repl {
			return fmt.Errorf("-follow and -repl are mutually exclusive; chained replication is not supported")
		}
		return serveFollower(scenario, cfg, o)
	}
	if o.replayTo != "" {
		return replayOverHTTP(scenario, o.replayTo, o.batch, o.replayOffset, o.replayLimit, o.replayVerify)
	}
	if o.replay {
		return replayInProcess(scenario, cfg, o.shards, o.batch)
	}
	return serve(scenario, cfg, o.shards, o.addr, o.repl, o.scrubEvery)
}

// verifyWAL is the offline integrity walk: every segment of every
// shard is read end to end, checking CRCs and seq contiguity, and
// every retained checkpoint (the live file plus each generation) must
// pass its CRC trailer and decode as JSON. A torn newest segment is a
// warning (the next open repairs it); anything else names the
// offending file and exits non-zero. Quarantined *.corrupt files are
// skipped — they are the evidence of an already-handled failure.
func verifyWAL(root string) error {
	dirs := []string{root}
	if raw, err := os.ReadFile(filepath.Join(root, "shards.json")); err == nil {
		var m struct {
			Shards int `json:"shards"`
		}
		if err := json.Unmarshal(raw, &m); err != nil {
			return fmt.Errorf("corrupt shards.json: %w", err)
		}
		dirs = dirs[:0]
		for i := 0; i < m.Shards; i++ {
			dirs = append(dirs, filepath.Join(root, fmt.Sprintf("shard-%04d", i)))
		}
	}
	for _, dir := range dirs {
		segments, records, err := wal.VerifyDir(dir)
		var verr *wal.VerifyError
		switch {
		case errors.As(err, &verr) && verr.Repairable:
			fmt.Printf("%s: %d segments, %d records, torn tail in %s (repaired on next open)\n",
				dir, segments, records, verr.Path)
		case err != nil:
			return fmt.Errorf("%s: %w", dir, err)
		default:
			fmt.Printf("%s: %d segments, %d records, all frames verified\n", dir, segments, records)
		}
		n, err := verifyCheckpoints(dir)
		if err != nil {
			return err
		}
		fmt.Printf("%s: %d checkpoint file(s) verified\n", dir, n)
	}
	return nil
}

// verifyCheckpoints validates the live checkpoint and every retained
// generation in dir: CRC trailer (when sealed) and JSON decodability.
func verifyCheckpoints(dir string) (int, error) {
	gens, err := ckpt.Generations(nil, dir)
	if err != nil {
		return 0, fmt.Errorf("%s: %w", dir, err)
	}
	paths := []string{filepath.Join(dir, ckpt.Name)}
	for _, g := range gens {
		paths = append(paths, ckpt.GenName(dir, g))
	}
	n := 0
	for _, p := range paths {
		blob, err := os.ReadFile(p)
		if errors.Is(err, os.ErrNotExist) {
			continue
		}
		if err != nil {
			return n, fmt.Errorf("%s: %w", p, err)
		}
		payload, _, err := ckpt.Unseal(blob)
		if err != nil {
			return n, fmt.Errorf("%s: %w", p, err)
		}
		if !json.Valid(payload) {
			return n, fmt.Errorf("%s: checkpoint payload is not valid JSON", p)
		}
		n++
	}
	return n, nil
}

// backend is what the daemon hosts: the plain streaming service when
// unsharded (keeping the single-service WAL layout from earlier
// releases), the shard coordinator otherwise.
type backend interface {
	httpapi.Backend
	Ingest(ctx context.Context, events []dataset.Event) error
	Counts() (events, samples, executable, e, p, m, b int)
	ScrubWAL() error
	Close()
}

// newBackend builds the deployment around a shared enrichment pipeline
// and reports how many WAL records recovery replayed.
func newBackend(cfg stream.Config, shards int, pipe *enrich.Pipeline) (backend, int, error) {
	if shards <= 1 {
		svc, err := stream.New(cfg, pipe)
		if err != nil {
			return nil, 0, err
		}
		return svc, svc.Stats().WAL.RecoveredRecords, nil
	}
	c, err := shard.New(shard.Config{Shards: shards, Stream: cfg}, pipe)
	if err != nil {
		return nil, 0, err
	}
	recovered := 0
	for i := 0; i < c.Shards(); i++ {
		recovered += c.Shard(i).Stats().WAL.RecoveredRecords
	}
	return c, recovered, nil
}

// newPublisher wraps the backend's live WALs in the log-shipping
// publisher and flips the advertised role to primary.
func newPublisher(b backend) (*replica.Publisher, error) {
	var sources []replica.Source
	switch v := b.(type) {
	case *stream.Service:
		dir, log := v.ReplicationSource()
		sources = []replica.Source{{Dir: dir, Log: log}}
		v.SetRole(stream.RolePrimary)
	case *shard.Coordinator:
		for i := 0; i < v.Shards(); i++ {
			dir, log := v.Shard(i).ReplicationSource()
			sources = append(sources, replica.Source{Dir: dir, Log: log})
		}
		v.SetRole(stream.RolePrimary)
	default:
		return nil, fmt.Errorf("unsupported backend %T for replication", b)
	}
	return replica.NewPublisher(sources)
}

// serveFollower runs the daemon as a read replica: bootstrap the full
// state from the primary's checkpoint plus WAL suffix, tail new
// records on a polling loop, and serve the read endpoints. Writes
// answer a typed 403; /readyz reports 503 until the bootstrap lands
// and again whenever the replica falls past -max-lag. Local
// durability is off — a restarted replica re-bootstraps, the primary
// owns the log.
func serveFollower(scenario core.Scenario, cfg stream.Config, o options) error {
	var fp atomic.Value
	load := func() *replica.Follower {
		if v := fp.Load(); v != nil {
			return v.(*replica.Follower)
		}
		return nil
	}
	server := &http.Server{
		Handler: httpapi.New(func() httpapi.Backend {
			if f := load(); f != nil {
				return f
			}
			return nil
		}, httpapi.Options{
			Readiness: func() error {
				if f := load(); f != nil {
					return f.Ready()
				}
				return nil // the nil-backend gate already answered
			},
		}),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       time.Minute,
		WriteTimeout:      time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	serveErr := make(chan error, 1)
	go func() { serveErr <- server.Serve(ln) }()

	initErr := make(chan error, 1)
	go func() {
		start := time.Now()
		_, _, pipe, err := core.Prepare(scenario)
		if err != nil {
			initErr <- err
			return
		}
		f, err := replica.NewFollower(replica.FollowerConfig{
			Primary:  o.follow,
			Stream:   cfg,
			Enricher: pipe,
			Poll:     o.replPoll,
			MaxLag:   o.maxLag,
		})
		if err != nil {
			initErr <- err
			return
		}
		if err := f.Bootstrap(ctx); err != nil {
			f.Close()
			initErr <- fmt.Errorf("bootstrap from %s: %w", o.follow, err)
			return
		}
		f.Start()
		fp.Store(f)
		lag := f.Lag()
		fmt.Printf("landscaped: replica ready in %v (applied %v from %s)\n",
			time.Since(start).Round(time.Millisecond), lag.AppliedSeq, o.follow)
		initErr <- nil
	}()
	fmt.Printf("landscaped: replica serving on %s (following %s, poll %v, max lag %v)\n",
		o.addr, o.follow, o.replPoll, o.maxLag)

	shutdown := func() error {
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		err := server.Shutdown(shutdownCtx)
		if f := load(); f != nil {
			f.Close()
		}
		return err
	}

	select {
	case err := <-serveErr:
		if f := load(); f != nil {
			f.Close()
		}
		return err
	case err := <-initErr:
		if err != nil {
			shutdown()
			return fmt.Errorf("startup: %w", err)
		}
		select {
		case err := <-serveErr:
			if f := load(); f != nil {
				f.Close()
			}
			return err
		case <-ctx.Done():
		}
	case <-ctx.Done():
	}
	fmt.Println("landscaped: replica shutting down")
	return shutdown()
}

// aggregateStats reduces either backend's stats to the shared
// stream.Stats shape (the coordinator's aggregate).
func aggregateStats(b backend) stream.Stats {
	switch v := b.(type) {
	case *stream.Service:
		return v.Stats()
	case *shard.Coordinator:
		return v.Stats().Aggregate
	}
	return stream.Stats{}
}

// serve hosts the service until SIGINT/SIGTERM, then shuts down
// gracefully: the listener closes first, in-flight requests get a
// bounded drain, the service applies every queued batch, and — when
// durable — a final checkpoint lands before the process exits.
//
// The listener binds before the service exists so /healthz and /readyz
// answer during a long recovery; every other endpoint returns 503
// until the service is ready.
func serve(scenario core.Scenario, cfg stream.Config, shards int, addr string, repl bool, scrubEvery time.Duration) error {
	// atomic.Value over the concrete backend: the getter returns a nil
	// interface until recovery finishes, never a typed-nil pointer.
	var bp atomic.Value
	load := func() backend {
		if v := bp.Load(); v != nil {
			return v.(backend)
		}
		return nil
	}
	opts := httpapi.Options{}
	// The shipping publisher exists only after recovery builds the
	// backend (it wraps the live WALs), but the mux is built now — so
	// mount a gate that 503s until the publisher lands.
	var pub atomic.Value
	if repl {
		opts.Repl = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if v := pub.Load(); v != nil {
				v.(http.Handler).ServeHTTP(w, r)
				return
			}
			http.Error(w, `{"error":"primary is recovering"}`, http.StatusServiceUnavailable)
		})
	}
	server := &http.Server{
		Handler: httpapi.New(func() httpapi.Backend {
			if b := load(); b != nil {
				return b
			}
			return nil
		}, opts),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       time.Minute,
		WriteTimeout:      time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	serveErr := make(chan error, 1)
	go func() { serveErr <- server.Serve(ln) }()

	if scrubEvery > 0 && cfg.Durability.Dir != "" {
		// Background WAL scrubber: read-only, so it only ever runs
		// against the live backend (nil until recovery finishes).
		// Findings land in /v1/stats; the daemon log gets a line so
		// operators notice without polling.
		go func() {
			t := time.NewTicker(scrubEvery)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					if b := load(); b != nil {
						if err := b.ScrubWAL(); err != nil {
							fmt.Fprintln(os.Stderr, "landscaped: wal scrub:", err)
						}
					}
				}
			}
		}()
	}

	initErr := make(chan error, 1)
	go func() {
		start := time.Now()
		_, _, pipe, err := core.Prepare(scenario)
		if err != nil {
			initErr <- err
			return
		}
		b, recovered, err := newBackend(cfg, shards, pipe)
		if err != nil {
			initErr <- err
			return
		}
		if repl {
			p, err := newPublisher(b)
			if err != nil {
				b.Close()
				initErr <- err
				return
			}
			pub.Store(p.Handler())
		}
		bp.Store(b)
		fmt.Printf("landscaped: ready in %v (recovered %d WAL records)\n",
			time.Since(start).Round(time.Millisecond), recovered)
		initErr <- nil
	}()
	fmt.Printf("landscaped: serving on %s (seed %d, epoch size %d, shards %d, wal %q)\n",
		addr, scenario.Seed, cfg.EpochSize, shards, cfg.Durability.Dir)

	shutdown := func() error {
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		err := server.Shutdown(shutdownCtx)
		if b := load(); b != nil {
			if cfg.Durability.Dir != "" {
				if cerr := b.Checkpoint(shutdownCtx); cerr != nil && err == nil {
					err = fmt.Errorf("final checkpoint: %w", cerr)
				}
			}
			b.Close()
		}
		return err
	}

	select {
	case err := <-serveErr:
		if b := load(); b != nil {
			b.Close()
		}
		return err
	case err := <-initErr:
		if err != nil {
			shutdown()
			return fmt.Errorf("startup: %w", err)
		}
		// Ready; keep serving until a signal or server failure.
		select {
		case err := <-serveErr:
			if b := load(); b != nil {
				b.Close()
			}
			return err
		case <-ctx.Done():
		}
	case <-ctx.Done():
	}
	fmt.Println("landscaped: shutting down")
	return shutdown()
}

// replayInProcess is the convergence gate: it runs the batch pipeline,
// replays the same events through a fresh streaming service, and fails
// unless the final clusters and accounting coincide.
func replayInProcess(scenario core.Scenario, cfg stream.Config, shards, batch int) error {
	res, err := core.Run(scenario)
	if err != nil {
		return err
	}
	b, _, err := newBackend(cfg, shards, res.Pipeline)
	if err != nil {
		return err
	}
	defer b.Close()
	return convergeStream(b, res, batch)
}

// convergeStream replays the batch run's events into the backend and
// asserts convergence. A mid-stream failure is reported as such — the
// caller exits non-zero rather than printing a partial comparison.
func convergeStream(b backend, res *core.Results, batch int) error {
	events := res.Dataset.Events()
	if batch <= 0 {
		batch = 64
	}
	ctx := context.Background()
	start := time.Now()
	for at := 0; at < len(events); at += batch {
		end := at + batch
		if end > len(events) {
			end = len(events)
		}
		if err := b.Ingest(ctx, events[at:end]); err != nil {
			return fmt.Errorf("replay failed mid-stream at event %d of %d: %w", at, len(events), err)
		}
	}
	if err := b.Flush(ctx); err != nil {
		return fmt.Errorf("replay failed mid-stream after a prefix of %d events: %w", len(events), err)
	}
	elapsed := time.Since(start)

	bEvents, bSamples, bExec, bE, bP, bM, bB := res.Counts()
	gEvents, gSamples, gExec, gE, gP, gM, gB := b.Counts()
	fmt.Printf("batch : %6d events %5d samples %5d executable | E=%d P=%d M=%d B=%d\n",
		bEvents, bSamples, bExec, bE, bP, bM, bB)
	fmt.Printf("stream: %6d events %5d samples %5d executable | E=%d P=%d M=%d B=%d\n",
		gEvents, gSamples, gExec, gE, gP, gM, gB)
	st := aggregateStats(b)
	fmt.Printf("replay: %d batches of <=%d events in %v (%.0f events/s), %d epochs (e/p/m) + %d (b), max queue depth %d\n",
		(bEvents+batch-1)/batch, batch, elapsed.Round(time.Millisecond),
		float64(gEvents)/elapsed.Seconds(), st.Epsilon.Epoch+st.Pi.Epoch+st.Mu.Epoch, st.B.Epochs, st.MaxQueueDepth)
	if st.Rejected != 0 || st.Duplicates != 0 || st.Retry.Quarantined != 0 {
		return fmt.Errorf("unclean replay: %d rejected, %d duplicates, %d quarantined",
			st.Rejected, st.Duplicates, st.Retry.Quarantined)
	}
	if gEvents != bEvents || gSamples != bSamples || gExec != bExec ||
		gE != bE || gP != bP || gM != bM || gB != bB {
		return fmt.Errorf("streaming replay diverged from the batch pipeline")
	}
	fmt.Println("converged: streaming replay matches the batch pipeline")
	return nil
}

// replayOverHTTP generates the scenario's events and posts a window of
// them to a running landscaped in batches, then flushes and prints the
// daemon's stats. The daemon must host the same scenario (same seed),
// or its enrichment pipeline will reject the samples. With verify set
// (and the full event sequence delivered across however many feeder
// runs), the daemon's stats must converge with the batch pipeline.
func replayOverHTTP(scenario core.Scenario, baseURL string, batch, offset, limit int, verify bool) error {
	_, sim, _, err := core.Prepare(scenario)
	if err != nil {
		return err
	}
	events := sim.Dataset.Events()
	if offset < 0 || offset > len(events) {
		return fmt.Errorf("-replay-offset %d out of range [0,%d]", offset, len(events))
	}
	window := events[offset:]
	if limit > 0 && limit < len(window) {
		window = window[:limit]
	}
	client := &http.Client{Timeout: 60 * time.Second}
	if batch <= 0 {
		batch = 64
	}
	if err := waitReady(client, baseURL, 60*time.Second); err != nil {
		return err
	}
	for start := 0; start < len(window); start += batch {
		end := start + batch
		if end > len(window) {
			end = len(window)
		}
		body, err := json.Marshal(window[start:end])
		if err != nil {
			return err
		}
		if err := post(client, baseURL+"/v1/ingest", body); err != nil {
			return fmt.Errorf("ingest batch at event %d: %w", offset+start, err)
		}
	}
	if err := post(client, baseURL+"/v1/flush", nil); err != nil {
		return fmt.Errorf("flush: %w", err)
	}
	resp, err := client.Get(baseURL + "/v1/stats")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	fmt.Printf("replayed %d events (offset %d) to %s\n%s\n", len(window), offset, baseURL, raw)
	if !verify {
		return nil
	}
	// A sharded daemon serves shard.Stats (per-shard telemetry around the
	// aggregate); an unsharded one serves stream.Stats directly. Decode
	// the sharded shape first and fall back on the Shards marker.
	var st stream.Stats
	var sst shard.Stats
	if err := json.Unmarshal(raw, &sst); err == nil && sst.Shards > 0 {
		st = sst.Aggregate
	} else if err := json.Unmarshal(raw, &st); err != nil {
		return fmt.Errorf("decoding daemon stats: %w", err)
	}
	res, err := core.Run(scenario)
	if err != nil {
		return err
	}
	bEvents, _, _, bE, bP, bM, bB := res.Counts()
	if st.Events != bEvents || st.Epsilon.Clusters != bE || st.Pi.Clusters != bP ||
		st.Mu.Clusters != bM || st.B.Clusters != bB {
		return fmt.Errorf("daemon diverged from the batch pipeline: daemon %d events E=%d P=%d M=%d B=%d, batch %d events E=%d P=%d M=%d B=%d",
			st.Events, st.Epsilon.Clusters, st.Pi.Clusters, st.Mu.Clusters, st.B.Clusters,
			bEvents, bE, bP, bM, bB)
	}
	fmt.Println("converged: daemon matches the batch pipeline")
	return nil
}

// waitReady polls /readyz until the daemon finished recovering.
func waitReady(client *http.Client, baseURL string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		resp, err := client.Get(baseURL + "/readyz")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("%s/readyz not ready after %v", baseURL, timeout)
		}
		time.Sleep(200 * time.Millisecond)
	}
}

func post(client *http.Client, url string, body []byte) error {
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("%s: %s: %s", url, resp.Status, bytes.TrimSpace(msg))
	}
	io.Copy(io.Discard, resp.Body)
	return nil
}
