// Command landscaped serves the streaming landscape service over HTTP:
// a long-running daemon that ingests attack events and answers live
// cluster queries, the serving counterpart of the one-shot `landscape`
// report tool.
//
// The daemon hosts one scenario's enrichment pipeline (sandbox + AV
// oracle, seeded like the batch pipeline), so the events it can enrich
// are the scenario's own — generate them with the same seed, e.g. by
// replaying the simulated deployment into it.
//
// Usage:
//
//	landscaped [-addr :8844] [-seed N] [-small] [-scenario file.json]
//	           [-epoch 256] [-queue 16] [-batch 64]
//	landscaped -replay [flags]          # in-process replay + convergence check
//	landscaped -replay-to URL [flags]   # replay the scenario over HTTP
//
// API:
//
//	POST /v1/ingest        body: JSON array of events -> {"queued": n}
//	GET  /v1/clusters/{d}  d in e|epsilon|p|pi|m|mu|b
//	GET  /v1/sample/{id}
//	GET  /v1/stats
//	POST /v1/flush         force an epoch everywhere
//	GET  /healthz
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/stream"
)

func main() {
	addr := flag.String("addr", ":8844", "listen address")
	seed := flag.Uint64("seed", 2010, "scenario seed")
	small := flag.Bool("small", false, "use the reduced scenario")
	scenarioPath := flag.String("scenario", "", "scenario JSON file (overrides -small)")
	epoch := flag.Int("epoch", 256, "pending-pool size that triggers a re-clustering epoch (0 = only on flush)")
	queue := flag.Int("queue", 16, "ingest queue depth, in batches")
	batch := flag.Int("batch", 64, "replay batch size, in events")
	parallelism := flag.Int("parallelism", 0, "worker bound for epochs and sandbox runs (0 = GOMAXPROCS)")
	replay := flag.Bool("replay", false, "replay the scenario in-process, assert convergence with the batch pipeline, and exit")
	replayTo := flag.String("replay-to", "", "replay the scenario's events over HTTP to a running landscaped at this base URL, then exit")
	flag.Parse()

	if err := run(*addr, *seed, *small, *scenarioPath, *epoch, *queue, *batch, *parallelism, *replay, *replayTo); err != nil {
		fmt.Fprintln(os.Stderr, "landscaped:", err)
		os.Exit(1)
	}
}

func run(addr string, seed uint64, small bool, scenarioPath string, epoch, queue, batch, parallelism int, replay bool, replayTo string) error {
	scenario := core.DefaultScenario()
	if small {
		scenario = core.SmallScenario()
	}
	if scenarioPath != "" {
		loaded, err := core.LoadScenarioFile(scenarioPath)
		if err != nil {
			return err
		}
		scenario = loaded
	}
	scenario.Seed = seed
	if parallelism != 0 {
		scenario.Parallelism = parallelism
	}
	cfg := stream.Config{
		EpochSize:   epoch,
		QueueDepth:  queue,
		Parallelism: parallelism,
		Thresholds:  scenario.Thresholds,
		BCluster:    scenario.Enrichment.BCluster,
	}

	if replayTo != "" {
		return replayOverHTTP(scenario, replayTo, batch)
	}
	if replay {
		return replayInProcess(scenario, cfg, batch)
	}
	return serve(scenario, cfg, addr)
}

// serve hosts the service until SIGINT/SIGTERM, then shuts down
// gracefully: the listener closes first, in-flight requests get a
// bounded drain, and the service applies every queued batch before the
// process exits.
func serve(scenario core.Scenario, cfg stream.Config, addr string) error {
	_, _, pipe, err := core.Prepare(scenario)
	if err != nil {
		return err
	}
	svc, err := stream.New(cfg, pipe)
	if err != nil {
		return err
	}

	server := &http.Server{Addr: addr, Handler: newHandler(svc)}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- server.ListenAndServe() }()
	fmt.Printf("landscaped: serving on %s (seed %d, epoch size %d)\n", addr, scenario.Seed, cfg.EpochSize)

	select {
	case err := <-errc:
		svc.Close()
		return err
	case <-ctx.Done():
	}
	fmt.Println("landscaped: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	shutdownErr := server.Shutdown(shutdownCtx)
	svc.Close()
	return shutdownErr
}

// replayInProcess is the convergence gate: it runs the batch pipeline,
// replays the same events through a fresh streaming service, and fails
// unless the final cluster counts coincide.
func replayInProcess(scenario core.Scenario, cfg stream.Config, batch int) error {
	res, err := core.Run(scenario)
	if err != nil {
		return err
	}
	svc, err := stream.New(cfg, res.Pipeline)
	if err != nil {
		return err
	}
	defer svc.Close()
	start := time.Now()
	if err := stream.Replay(context.Background(), svc, res.Dataset.Events(), batch); err != nil {
		return err
	}
	elapsed := time.Since(start)

	bEvents, bSamples, bExec, bE, bP, bM, bB := res.Counts()
	gEvents, gSamples, gExec, gE, gP, gM, gB := svc.Counts()
	fmt.Printf("batch : %6d events %5d samples %5d executable | E=%d P=%d M=%d B=%d\n",
		bEvents, bSamples, bExec, bE, bP, bM, bB)
	fmt.Printf("stream: %6d events %5d samples %5d executable | E=%d P=%d M=%d B=%d\n",
		gEvents, gSamples, gExec, gE, gP, gM, gB)
	st := svc.Stats()
	fmt.Printf("replay: %d batches of <=%d events in %v (%.0f events/s), %d epochs (e/p/m) + %d (b), max queue depth %d\n",
		(bEvents+batch-1)/batch, batch, elapsed.Round(time.Millisecond),
		float64(gEvents)/elapsed.Seconds(), st.Epsilon.Epoch+st.Pi.Epoch+st.Mu.Epoch, st.B.Epochs, st.MaxQueueDepth)
	if gEvents != bEvents || gSamples != bSamples || gExec != bExec ||
		gE != bE || gP != bP || gM != bM || gB != bB {
		return fmt.Errorf("streaming replay diverged from the batch pipeline")
	}
	fmt.Println("converged: streaming replay matches the batch pipeline")
	return nil
}

// replayOverHTTP generates the scenario's events and posts them to a
// running landscaped in batches, then flushes and prints the daemon's
// stats. The daemon must host the same scenario (same seed), or its
// enrichment pipeline will reject the samples.
func replayOverHTTP(scenario core.Scenario, baseURL string, batch int) error {
	_, sim, _, err := core.Prepare(scenario)
	if err != nil {
		return err
	}
	events := sim.Dataset.Events()
	client := &http.Client{Timeout: 60 * time.Second}
	if batch <= 0 {
		batch = 64
	}
	for start := 0; start < len(events); start += batch {
		end := start + batch
		if end > len(events) {
			end = len(events)
		}
		body, err := json.Marshal(events[start:end])
		if err != nil {
			return err
		}
		if err := post(client, baseURL+"/v1/ingest", body); err != nil {
			return fmt.Errorf("ingest batch at event %d: %w", start, err)
		}
	}
	if err := post(client, baseURL+"/v1/flush", nil); err != nil {
		return fmt.Errorf("flush: %w", err)
	}
	resp, err := client.Get(baseURL + "/v1/stats")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	stats, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	fmt.Printf("replayed %d events to %s\n%s\n", len(events), baseURL, stats)
	return nil
}

func post(client *http.Client, url string, body []byte) error {
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("%s: %s: %s", url, resp.Status, bytes.TrimSpace(msg))
	}
	io.Copy(io.Discard, resp.Body)
	return nil
}

// newHandler builds the HTTP API over a service.
func newHandler(svc *stream.Service) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, svc.Stats())
	})
	mux.HandleFunc("POST /v1/ingest", func(w http.ResponseWriter, r *http.Request) {
		var events []dataset.Event
		if err := json.NewDecoder(io.LimitReader(r.Body, 64<<20)).Decode(&events); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("decoding events: %w", err))
			return
		}
		if err := svc.Ingest(r.Context(), events); err != nil {
			httpError(w, http.StatusServiceUnavailable, err)
			return
		}
		writeJSON(w, map[string]int{"queued": len(events)})
	})
	mux.HandleFunc("POST /v1/flush", func(w http.ResponseWriter, r *http.Request) {
		if err := svc.Flush(r.Context()); err != nil {
			httpError(w, http.StatusServiceUnavailable, err)
			return
		}
		writeJSON(w, map[string]string{"status": "flushed"})
	})
	mux.HandleFunc("GET /v1/clusters/{dim}", func(w http.ResponseWriter, r *http.Request) {
		dim := r.PathValue("dim")
		if dim == "b" {
			writeJSON(w, svc.BClusters())
			return
		}
		view, err := svc.EPMClusters(dim)
		if err != nil {
			httpError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, view)
	})
	mux.HandleFunc("GET /v1/sample/{id}", func(w http.ResponseWriter, r *http.Request) {
		view, ok := svc.Sample(r.PathValue("id"))
		if !ok {
			httpError(w, http.StatusNotFound, fmt.Errorf("unknown sample %q", r.PathValue("id")))
			return
		}
		writeJSON(w, view)
	})
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
