package main

// The poisoning dimension of the benchmark file set: BENCH_poison.json
// records how the behavioral clustering's validity degrades under the
// seeded bridge/dilution attack and how much of it the streaming
// defenses recover, one row per (label, n, poison_rate, defended). Rows
// merge in place like the other BENCH files, so committed baselines
// survive re-measurement.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"

	"repro/internal/core"
	"repro/internal/poison"
)

// PoisonEntry is one measured poisoning point.
type PoisonEntry struct {
	Label string `json:"label"`
	// N is the sample count of the run; PoisonRate the attacker's share
	// of event volume; Defended whether the streaming defenses were on
	// (false = the undefended batch pipeline).
	N          int     `json:"n"`
	PoisonRate float64 `json:"poison_rate"`
	Defended   bool    `json:"defended"`
	// Events and PoisonSamples size the corpus and the attack.
	Events        int `json:"events"`
	PoisonSamples int `json:"poison_samples"`
	// Clusters and the validity scores measure the damage.
	Clusters  int     `json:"clusters"`
	Precision float64 `json:"precision"`
	Recall    float64 `json:"recall"`
	F         float64 `json:"f"`
	ARI       float64 `json:"ari"`
	// Held, Parked, Released, and Drained are the defense counters of a
	// defended run.
	Held       int `json:"held,omitempty"`
	Parked     int `json:"parked,omitempty"`
	Released   int `json:"released,omitempty"`
	Drained    int `json:"drained,omitempty"`
	Gomaxprocs int `json:"gomaxprocs"`
}

// runPoison sweeps the SmallScenario at the standard rate schedule and
// merges the resulting rows into path.
func runPoison(path, label string) error {
	entries, err := loadPoison(path)
	if err != nil {
		return err
	}
	reps, err := poison.Sweep(context.Background(), poison.Config{Scenario: core.SmallScenario()})
	if err != nil {
		return err
	}
	for _, r := range reps {
		if r.Unaccounted != 0 {
			return fmt.Errorf("benchjson: poison sweep dropped %d samples at rate=%g defended=%v", r.Unaccounted, r.Rate, r.Defended)
		}
		e := PoisonEntry{
			Label:         label,
			N:             r.Samples,
			PoisonRate:    r.Rate,
			Defended:      r.Defended,
			Events:        r.Events,
			PoisonSamples: r.PoisonSamples,
			Clusters:      r.Clusters,
			Precision:     r.Precision,
			Recall:        r.Recall,
			F:             r.F,
			ARI:           r.AdjustedRand,
			Held:          r.Held,
			Parked:        r.Parked,
			Released:      r.Released,
			Drained:       r.Drained,
			Gomaxprocs:    runtime.GOMAXPROCS(0),
		}
		entries = upsertPoison(entries, e)
		fmt.Printf("%s/poison-%.2f/defended-%v\tn=%d events=%d poison=%d\tP=%.3f R=%.3f ARI=%.3f\theld=%d parked=%d released=%d drained=%d\n",
			e.Label, e.PoisonRate, e.Defended, e.N, e.Events, e.PoisonSamples,
			e.Precision, e.Recall, e.ARI, e.Held, e.Parked, e.Released, e.Drained)
	}
	sort.Slice(entries, func(a, b int) bool {
		x, y := entries[a], entries[b]
		if x.PoisonRate != y.PoisonRate {
			return x.PoisonRate < y.PoisonRate
		}
		if x.Defended != y.Defended {
			return !x.Defended // undefended row first
		}
		if x.N != y.N {
			return x.N < y.N
		}
		return x.Label < y.Label
	})
	raw, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

// upsertPoison merges one point in place, keyed
// (label, n, poison_rate, defended).
func upsertPoison(entries []PoisonEntry, e PoisonEntry) []PoisonEntry {
	for i, old := range entries {
		if old.Label == e.Label && old.N == e.N && old.PoisonRate == e.PoisonRate && old.Defended == e.Defended {
			entries[i] = e
			return entries
		}
	}
	return append(entries, e)
}

func loadPoison(path string) ([]PoisonEntry, error) {
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var entries []PoisonEntry
	if err := json.Unmarshal(raw, &entries); err != nil {
		return nil, fmt.Errorf("parsing existing %s: %w", path, err)
	}
	return entries, nil
}
