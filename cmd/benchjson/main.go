// Command benchjson measures the B-clustering scalability trajectory
// (bcluster.Run vs bcluster.RunExact over the internal/benchdata corpora)
// and serializes it to a JSON file, one entry per (label, bench, n).
//
// The file accumulates across runs: entries with the same key are
// replaced, others are kept, so a committed baseline (label "pre-pr2")
// survives re-measurement of the current tree.
//
// Usage:
//
//	benchjson [-o BENCH_bcluster.json] [-label current]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"testing"

	"repro/internal/bcluster"
	"repro/internal/benchdata"
)

// Entry is one measured benchmark point.
type Entry struct {
	// Label distinguishes measurement campaigns (e.g. "pre-pr2", "post-pr2").
	Label string `json:"label"`
	// Bench is "lsh" (bcluster.Run) or "exact" (bcluster.RunExact).
	Bench string `json:"bench"`
	// N is the corpus size.
	N int `json:"n"`
	// NsPerOp, BytesPerOp, AllocsPerOp are the standard Go benchmark
	// figures for one full clustering run.
	NsPerOp     int64 `json:"ns_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
	// CandidatePairs and Links come from bcluster.Stats; Clusters is the
	// resulting partition size. All three are deterministic in (bench, n).
	CandidatePairs int `json:"candidate_pairs"`
	Links          int `json:"links"`
	Clusters       int `json:"clusters"`
	// Gomaxprocs records the parallelism available to the measurement.
	Gomaxprocs int `json:"gomaxprocs"`
}

func main() {
	out := flag.String("o", "BENCH_bcluster.json", "output JSON path (merged in place)")
	label := flag.String("label", "current", "label for this measurement campaign")
	flag.Parse()

	if err := run(*out, *label); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(path, label string) error {
	entries, err := load(path)
	if err != nil {
		return err
	}
	cfg := bcluster.DefaultConfig()

	measure := func(bench string, n int, cluster func([]bcluster.Input, bcluster.Config) (*bcluster.Result, error)) error {
		// Fresh profiles per point: the first clustering run interns each
		// profile's FeatureSet, subsequent iterations measure the hot path
		// — the same steady state the enrichment pipeline runs in.
		inputs := benchdata.Profiles(n)
		res, err := cluster(inputs, cfg)
		if err != nil {
			return err
		}
		br := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := cluster(inputs, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
		e := Entry{
			Label:          label,
			Bench:          bench,
			N:              n,
			NsPerOp:        br.NsPerOp(),
			BytesPerOp:     br.AllocedBytesPerOp(),
			AllocsPerOp:    br.AllocsPerOp(),
			CandidatePairs: res.Stats.CandidatePairs,
			Links:          res.Stats.Links,
			Clusters:       len(res.Clusters),
			Gomaxprocs:     runtime.GOMAXPROCS(0),
		}
		entries = upsert(entries, e)
		fmt.Printf("%s/%s-%d\t%d ns/op\t%d B/op\t%d allocs/op\tpairs=%d links=%d clusters=%d\n",
			e.Label, e.Bench, e.N, e.NsPerOp, e.BytesPerOp, e.AllocsPerOp,
			e.CandidatePairs, e.Links, e.Clusters)
		return nil
	}

	for _, n := range benchdata.LSHSizes {
		if err := measure("lsh", n, bcluster.Run); err != nil {
			return err
		}
	}
	for _, n := range benchdata.ExactSizes {
		if err := measure("exact", n, bcluster.RunExact); err != nil {
			return err
		}
	}
	return save(path, entries)
}

func load(path string) ([]Entry, error) {
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var entries []Entry
	if err := json.Unmarshal(raw, &entries); err != nil {
		return nil, fmt.Errorf("parsing existing %s: %w", path, err)
	}
	return entries, nil
}

func upsert(entries []Entry, e Entry) []Entry {
	for i, old := range entries {
		if old.Label == e.Label && old.Bench == e.Bench && old.N == e.N {
			entries[i] = e
			return entries
		}
	}
	return append(entries, e)
}

func save(path string, entries []Entry) error {
	sort.Slice(entries, func(a, b int) bool {
		x, y := entries[a], entries[b]
		if x.Bench != y.Bench {
			return x.Bench < y.Bench // "exact" before "lsh"
		}
		if x.N != y.N {
			return x.N < y.N
		}
		return x.Label < y.Label
	})
	raw, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}
