// Command benchjson measures the B-clustering scalability trajectory
// (bcluster.Run vs bcluster.RunExact over the internal/benchdata corpora)
// and serializes it to a JSON file, one entry per (label, bench, n). It
// also measures the streaming service's ingest throughput over the same
// corpus family and writes it to a second file (BENCH_stream.json).
//
// Both files accumulate across runs: entries with the same key are
// replaced, others are kept, so a committed baseline (label "pre-pr2")
// survives re-measurement of the current tree.
//
// The stream bench carries a shards dimension (-stream-shards): each
// point replays the corpus through a shard.Coordinator at that shard
// count and records the aggregate events/sec, keyed (label, n, shards,
// replicas). Entries written before the dimensions existed load as
// shards=1, replicas=0.
//
// It also carries a replicas dimension (-stream-replicas): each point
// boots a durable primary with the n=10k corpus, brings that many
// read replicas to the primary's WAL head over the log-shipping
// endpoints, and records the aggregate reads/sec across all serving
// processes — the evidence that WAL-shipping followers multiply read
// capacity. replicas=0 annotates the primary's write row with its own
// read rate for the baseline.
//
// A third file (BENCH_poison.json, -poison-o) records the adversarial
// poisoning sweep: B-clustering validity against ground truth at each
// poison rate, undefended batch vs defended streaming, keyed
// (label, n, poison_rate, defended) — see internal/poison.
//
// Usage:
//
//	benchjson [-o BENCH_bcluster.json] [-stream-o BENCH_stream.json] [-label current]
//	          [-stream-shards 1,4] [-stream-replicas 0,2] [-poison-o BENCH_poison.json]
//	benchjson -guard
//
// -guard is the CI superlinearity canary: it replays the n=1k and n=10k
// stream corpora only, writes nothing, and exits non-zero when ns/event
// at 10k exceeds ns/event at 1k by more than guardMaxRatio — the
// regression shape that incremental epochs are supposed to make
// impossible.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/bcluster"
	"repro/internal/behavior"
	"repro/internal/benchdata"
	"repro/internal/dataset"
	"repro/internal/httpapi"
	"repro/internal/loadgen"
	"repro/internal/replica"
	"repro/internal/shard"
	"repro/internal/stream"
)

// Entry is one measured benchmark point.
type Entry struct {
	// Label distinguishes measurement campaigns (e.g. "pre-pr2", "post-pr2").
	Label string `json:"label"`
	// Bench is "lsh" (bcluster.Run) or "exact" (bcluster.RunExact).
	Bench string `json:"bench"`
	// N is the corpus size.
	N int `json:"n"`
	// NsPerOp, BytesPerOp, AllocsPerOp are the standard Go benchmark
	// figures for one full clustering run.
	NsPerOp     int64 `json:"ns_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
	// CandidatePairs and Links come from bcluster.Stats; Clusters is the
	// resulting partition size. All three are deterministic in (bench, n).
	CandidatePairs int `json:"candidate_pairs"`
	Links          int `json:"links"`
	Clusters       int `json:"clusters"`
	// Gomaxprocs records the parallelism available to the measurement.
	Gomaxprocs int `json:"gomaxprocs"`
}

// StreamEntry is one measured ingest-throughput point of the streaming
// service (internal/stream) over the benchdata corpus.
type StreamEntry struct {
	Label string `json:"label"`
	// N is the sample count; Events is the replayed event count (~1.3 N).
	N      int `json:"n"`
	Events int `json:"events"`
	// EpochSize is the re-clustering trigger the service ran with.
	EpochSize int `json:"epoch_size"`
	// Shards is the horizontal partition count the replay ran at (1 =
	// the plain unsharded service); EventsPerSec is the aggregate rate
	// across all shards. Pre-sharding entries load as Shards=1.
	Shards int `json:"shards"`
	// Replicas is the read-replica count of the read-fan-out
	// measurement: ReadsPerSec is the aggregate successful query rate
	// across the primary plus Replicas caught-up followers. Replicas=0
	// annotates the plain write row with the primary's own read rate;
	// rows with Replicas>0 measure reads only (the ingest figures stay
	// zero — the corpus is replicated, not re-ingested).
	Replicas    int     `json:"replicas"`
	ReadsPerSec float64 `json:"reads_per_sec,omitempty"`
	// NsPerEvent and EventsPerSec measure one full replay (ingest through
	// final flush, enrichment stubbed to a profile lookup).
	NsPerEvent   int64   `json:"ns_per_event"`
	EventsPerSec float64 `json:"events_per_sec"`
	// HeapAllocBytes is the live heap after the replay and a forced GC —
	// the bounded-memory evidence for sustained ingest.
	HeapAllocBytes uint64 `json:"heap_alloc_bytes"`
	// MaxQueueDepth is the deepest the bounded ingest queue ever got.
	MaxQueueDepth int `json:"max_queue_depth"`
	// EPMEpochs sums the ε/π/μ re-clustering epochs; EPMFullRegroups
	// counts how many of them fell back to a full regroup (the rest ran
	// the delta path); BEpochs counts the B verification epochs;
	// BClusters is the final partition size.
	EPMEpochs       int `json:"epm_epochs"`
	EPMFullRegroups int `json:"epm_full_regroups"`
	BEpochs         int `json:"b_epochs"`
	BClusters       int `json:"b_clusters"`
	Gomaxprocs      int `json:"gomaxprocs"`
}

// guardMaxRatio is the -guard failure threshold: ns/event at n=10k may
// exceed ns/event at n=1k by at most this factor.
const guardMaxRatio = 1.5

func main() {
	out := flag.String("o", "BENCH_bcluster.json", "output JSON path (merged in place; empty disables)")
	streamOut := flag.String("stream-o", "BENCH_stream.json", "streaming-service throughput JSON path (merged in place; empty disables)")
	poisonOut := flag.String("poison-o", "BENCH_poison.json", "poisoning validity sweep JSON path (merged in place; empty disables)")
	label := flag.String("label", "current", "label for this measurement campaign")
	streamShards := flag.String("stream-shards", "1,4", "comma-separated shard counts to measure the stream bench at")
	streamReplicas := flag.String("stream-replicas", "0,2", "comma-separated read-replica counts for the read-fan-out bench (0 = the primary's own read rate; empty disables)")
	guard := flag.Bool("guard", false, "superlinearity canary: bench the stream at n=1k and n=10k, write nothing, fail if the ns/event ratio exceeds the threshold")
	flag.Parse()

	if *guard {
		if err := runGuard(); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}
	if *label == "" {
		fmt.Fprintln(os.Stderr, "benchjson: -label must not be empty (it keys the merged entries; an empty label would silently shadow a real campaign)")
		os.Exit(1)
	}
	if *out != "" {
		if err := run(*out, *label); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
	}
	if *streamOut != "" {
		shardCounts, err := parseShards(*streamShards)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		replicaCounts, err := parseReplicas(*streamReplicas)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		if err := runStream(*streamOut, *label, shardCounts, replicaCounts); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
	}
	if *poisonOut != "" {
		if err := runPoison(*poisonOut, *label); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
	}
}

// parseReplicas parses the -stream-replicas list; unlike shards, 0 is
// meaningful (the primary alone) and an empty list disables the bench.
func parseReplicas(s string) ([]int, error) {
	var counts []int
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil || n < 0 || n > 16 {
			return nil, fmt.Errorf("-stream-replicas: bad replica count %q (want 0..16)", f)
		}
		counts = append(counts, n)
	}
	return counts, nil
}

// parseShards parses the -stream-shards list.
func parseShards(s string) ([]int, error) {
	var counts []int
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil || n < 1 || n > shard.MaxShards {
			return nil, fmt.Errorf("-stream-shards: bad shard count %q (want 1..%d)", f, shard.MaxShards)
		}
		counts = append(counts, n)
	}
	if len(counts) == 0 {
		return nil, fmt.Errorf("-stream-shards: empty list")
	}
	return counts, nil
}

// streamEnricher stubs the enrichment pipeline with the benchdata
// profile corpus, so the bench isolates the service's own costs:
// queueing, classification, epochs, and incremental clustering. Profiles
// are synthesized on demand from the per-sample noise counts (the
// corpus's only random input) rather than precomputed: a materialized
// 100k-profile map is millions of live pointers the collector would
// rescan every cycle, billed to the service under measurement.
type streamEnricher struct {
	noise []uint8
}

func (e *streamEnricher) LabelSample(s *dataset.Sample) error {
	s.AVLabel = "Bench." + s.MD5
	return nil
}

func (e *streamEnricher) ExecuteSample(s *dataset.Sample) (*behavior.Profile, bool, error) {
	i, err := strconv.Atoi(strings.TrimPrefix(s.MD5, "s"))
	if err != nil || i < 0 || i >= len(e.noise) {
		return nil, false, fmt.Errorf("benchjson: no profile for sample %s", s.MD5)
	}
	return benchdata.ProfileOf(i, int(e.noise[i])), false, nil
}

// measureStream replays the n-sample benchdata corpus through a fresh
// deployment at the given shard count and returns the measured point
// (the plain service at shards=1, a shard.Coordinator above). The
// replay runs twice (a fresh deployment each time) and the faster run
// is recorded: the first replay at the larger corpus sizes pays the OS
// page-fault cost of growing the heap for the first time, which
// measures the machine, not the service.
func measureStream(label string, n, shards int) (StreamEntry, error) {
	enricher := &streamEnricher{noise: benchdata.NoiseCounts(n)}
	events := benchdata.StreamEvents(n)
	cfg := stream.DefaultConfig()
	var elapsed time.Duration
	var st stream.Stats
	for rep := 0; rep < 2; rep++ {
		var d time.Duration
		var err error
		if shards <= 1 {
			var svc *stream.Service
			svc, err = stream.New(cfg, enricher)
			if err != nil {
				return StreamEntry{}, err
			}
			start := time.Now()
			err = stream.Replay(context.Background(), svc, events, 256)
			d = time.Since(start)
			st = svc.Stats()
			svc.Close()
		} else {
			var c *shard.Coordinator
			c, err = shard.New(shard.Config{Shards: shards, Stream: cfg}, enricher)
			if err != nil {
				return StreamEntry{}, err
			}
			ctx := context.Background()
			start := time.Now()
			for at := 0; at < len(events) && err == nil; at += 256 {
				end := at + 256
				if end > len(events) {
					end = len(events)
				}
				err = c.Ingest(ctx, events[at:end])
			}
			if err == nil {
				err = c.Flush(ctx)
			}
			d = time.Since(start)
			st = c.Stats().Aggregate
			c.Close()
		}
		if err != nil {
			return StreamEntry{}, err
		}
		if st.Rejected != 0 || st.EnrichErrors != 0 || st.Events != len(events) {
			return StreamEntry{}, fmt.Errorf("benchjson: unclean stream replay at n=%d shards=%d: %+v", n, shards, st)
		}
		if rep == 0 || d < elapsed {
			elapsed = d
		}
	}
	runtime.GC()
	var mem runtime.MemStats
	runtime.ReadMemStats(&mem)
	e := StreamEntry{
		Label:           label,
		N:               n,
		Events:          len(events),
		EpochSize:       cfg.EpochSize,
		Shards:          shards,
		NsPerEvent:      elapsed.Nanoseconds() / int64(len(events)),
		EventsPerSec:    float64(len(events)) / elapsed.Seconds(),
		HeapAllocBytes:  mem.HeapAlloc,
		MaxQueueDepth:   st.MaxQueueDepth,
		EPMEpochs:       st.Epsilon.Epoch + st.Pi.Epoch + st.Mu.Epoch,
		EPMFullRegroups: st.Epsilon.FullRegroups + st.Pi.FullRegroups + st.Mu.FullRegroups,
		BEpochs:         st.B.Epochs,
		BClusters:       st.B.Clusters,
		Gomaxprocs:      runtime.GOMAXPROCS(0),
	}
	fmt.Printf("%s/stream-%d/shards-%d\t%d events\t%d ns/event\t%.0f events/s\theap=%dMB epochs=%d(full=%d)+%d clusters=%d\n",
		label, n, shards, e.Events, e.NsPerEvent, e.EventsPerSec, e.HeapAllocBytes>>20,
		e.EPMEpochs, e.EPMFullRegroups, e.BEpochs, e.BClusters)
	return e, nil
}

// readFanN is the corpus size of the read-fan-out measurement: large
// enough that the served views have real weight, small enough that
// bootstrapping the followers stays cheap.
const readFanN = 10000

// measureReadFanout boots a durable primary holding the n-sample
// corpus plus the log-shipping endpoints, brings the requested number
// of read replicas to the primary's WAL head over HTTP, and measures
// the aggregate successful query rate across every serving process.
func measureReadFanout(label string, n, replicas int) (StreamEntry, error) {
	enricher := &streamEnricher{noise: benchdata.NoiseCounts(n)}
	events := benchdata.StreamEvents(n)
	cfg := stream.DefaultConfig()
	dir, err := os.MkdirTemp("", "benchjson-repl-")
	if err != nil {
		return StreamEntry{}, err
	}
	defer os.RemoveAll(dir)
	cfg.Durability = stream.Durability{Dir: dir, NoSync: true}
	svc, err := stream.New(cfg, enricher)
	if err != nil {
		return StreamEntry{}, err
	}
	defer svc.Close()
	if err := stream.Replay(context.Background(), svc, events, 256); err != nil {
		return StreamEntry{}, err
	}
	srcDir, log := svc.ReplicationSource()
	pub, err := replica.NewPublisher([]replica.Source{{Dir: srcDir, Log: log}})
	if err != nil {
		return StreamEntry{}, err
	}
	primarySrv := httptest.NewServer(httpapi.New(
		func() httpapi.Backend { return svc },
		httpapi.Options{Repl: pub.Handler()}))
	defer primarySrv.Close()

	targets := []string{primarySrv.URL}
	for r := 0; r < replicas; r++ {
		f, err := replica.NewFollower(replica.FollowerConfig{
			Primary:  primarySrv.URL,
			Stream:   cfg,
			Enricher: enricher,
		})
		if err != nil {
			return StreamEntry{}, err
		}
		defer f.Close()
		if err := f.Bootstrap(context.Background()); err != nil {
			return StreamEntry{}, fmt.Errorf("bootstrapping replica %d: %w", r, err)
		}
		srv := httptest.NewServer(httpapi.New(
			func() httpapi.Backend { return f },
			httpapi.Options{Readiness: f.Ready}))
		defer srv.Close()
		targets = append(targets, srv.URL)
	}
	report := loadgen.RunReads(loadgen.ReadPlan{
		Targets:          targets,
		ClientsPerTarget: 2,
		Duration:         time.Second,
	})
	if report.Errors > 0 {
		return StreamEntry{}, fmt.Errorf("read fan-out at replicas=%d hit %d errors", replicas, report.Errors)
	}
	e := StreamEntry{
		Label:       label,
		N:           n,
		Events:      len(events),
		EpochSize:   cfg.EpochSize,
		Shards:      1,
		Replicas:    replicas,
		ReadsPerSec: report.QPS(),
		Gomaxprocs:  runtime.GOMAXPROCS(0),
	}
	fmt.Printf("%s/readfan-%d/replicas-%d\t%s\n", label, n, replicas, report)
	return e, nil
}

// runStream measures the deployment's sustained aggregate ingest rate
// at every requested shard count, then the read-fan-out trajectory at
// every requested replica count.
func runStream(path, label string, shardCounts, replicaCounts []int) error {
	entries, err := loadStream(path)
	if err != nil {
		return err
	}
	for _, n := range benchdata.StreamSizes {
		for _, shards := range shardCounts {
			e, err := measureStream(label, n, shards)
			if err != nil {
				return err
			}
			entries = upsertStream(entries, e)
		}
	}
	for _, replicas := range replicaCounts {
		e, err := measureReadFanout(label, readFanN, replicas)
		if err != nil {
			return err
		}
		if replicas == 0 {
			// The primary's own read rate annotates its write row (same
			// key) instead of shadowing it with a reads-only entry.
			merged := false
			for i := range entries {
				if entries[i].Label == label && entries[i].N == e.N &&
					entries[i].Shards == 1 && entries[i].Replicas == 0 {
					entries[i].ReadsPerSec = e.ReadsPerSec
					merged = true
				}
			}
			if merged {
				continue
			}
		}
		entries = upsertStream(entries, e)
	}
	sort.Slice(entries, func(a, b int) bool {
		if entries[a].N != entries[b].N {
			return entries[a].N < entries[b].N
		}
		if entries[a].Shards != entries[b].Shards {
			return entries[a].Shards < entries[b].Shards
		}
		if entries[a].Replicas != entries[b].Replicas {
			return entries[a].Replicas < entries[b].Replicas
		}
		return entries[a].Label < entries[b].Label
	})
	raw, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

// upsertStream merges one point in place: an existing entry with the
// same (label, n, shards, replicas) is replaced, never duplicated.
func upsertStream(entries []StreamEntry, e StreamEntry) []StreamEntry {
	for i, old := range entries {
		if old.Label == e.Label && old.N == e.N && old.Shards == e.Shards && old.Replicas == e.Replicas {
			entries[i] = e
			return entries
		}
	}
	return append(entries, e)
}

// runGuard is the CI superlinearity canary: flat per-event cost means
// the 10k point stays within guardMaxRatio of the 1k point.
func runGuard() error {
	small, err := measureStream("guard", 1000, 1)
	if err != nil {
		return err
	}
	big, err := measureStream("guard", 10000, 1)
	if err != nil {
		return err
	}
	ratio := float64(big.NsPerEvent) / float64(small.NsPerEvent)
	fmt.Printf("guard: ns/event %d -> %d across a decade (ratio %.2f, limit %.2f)\n",
		small.NsPerEvent, big.NsPerEvent, ratio, guardMaxRatio)
	if ratio > guardMaxRatio {
		return fmt.Errorf("superlinear ingest: ns/event grew %.2fx from n=1k to n=10k (limit %.2fx)",
			ratio, guardMaxRatio)
	}
	return nil
}

func loadStream(path string) ([]StreamEntry, error) {
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var entries []StreamEntry
	if err := json.Unmarshal(raw, &entries); err != nil {
		return nil, fmt.Errorf("parsing existing %s: %w", path, err)
	}
	// Entries written before the shards dimension existed measured the
	// unsharded service; normalize so the upsert key never aliases.
	for i := range entries {
		if entries[i].Shards == 0 {
			entries[i].Shards = 1
		}
	}
	return entries, nil
}

func run(path, label string) error {
	entries, err := load(path)
	if err != nil {
		return err
	}
	cfg := bcluster.DefaultConfig()

	measure := func(bench string, n int, cluster func([]bcluster.Input, bcluster.Config) (*bcluster.Result, error)) error {
		// Fresh profiles per point: the first clustering run interns each
		// profile's FeatureSet, subsequent iterations measure the hot path
		// — the same steady state the enrichment pipeline runs in.
		inputs := benchdata.Profiles(n)
		res, err := cluster(inputs, cfg)
		if err != nil {
			return err
		}
		br := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := cluster(inputs, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
		e := Entry{
			Label:          label,
			Bench:          bench,
			N:              n,
			NsPerOp:        br.NsPerOp(),
			BytesPerOp:     br.AllocedBytesPerOp(),
			AllocsPerOp:    br.AllocsPerOp(),
			CandidatePairs: res.Stats.CandidatePairs,
			Links:          res.Stats.Links,
			Clusters:       len(res.Clusters),
			Gomaxprocs:     runtime.GOMAXPROCS(0),
		}
		entries = upsert(entries, e)
		fmt.Printf("%s/%s-%d\t%d ns/op\t%d B/op\t%d allocs/op\tpairs=%d links=%d clusters=%d\n",
			e.Label, e.Bench, e.N, e.NsPerOp, e.BytesPerOp, e.AllocsPerOp,
			e.CandidatePairs, e.Links, e.Clusters)
		return nil
	}

	for _, n := range benchdata.LSHSizes {
		if err := measure("lsh", n, bcluster.Run); err != nil {
			return err
		}
	}
	for _, n := range benchdata.ExactSizes {
		if err := measure("exact", n, bcluster.RunExact); err != nil {
			return err
		}
	}
	return save(path, entries)
}

func load(path string) ([]Entry, error) {
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var entries []Entry
	if err := json.Unmarshal(raw, &entries); err != nil {
		return nil, fmt.Errorf("parsing existing %s: %w", path, err)
	}
	return entries, nil
}

func upsert(entries []Entry, e Entry) []Entry {
	for i, old := range entries {
		if old.Label == e.Label && old.Bench == e.Bench && old.N == e.N {
			entries[i] = e
			return entries
		}
	}
	return append(entries, e)
}

func save(path string, entries []Entry) error {
	sort.Slice(entries, func(a, b int) bool {
		x, y := entries[a], entries[b]
		if x.Bench != y.Bench {
			return x.Bench < y.Bench // "exact" before "lsh"
		}
		if x.N != y.N {
			return x.N < y.N
		}
		return x.Label < y.Label
	})
	raw, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}
