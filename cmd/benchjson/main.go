// Command benchjson measures the B-clustering scalability trajectory
// (bcluster.Run vs bcluster.RunExact over the internal/benchdata corpora)
// and serializes it to a JSON file, one entry per (label, bench, n). It
// also measures the streaming service's ingest throughput over the same
// corpus family and writes it to a second file (BENCH_stream.json).
//
// Both files accumulate across runs: entries with the same key are
// replaced, others are kept, so a committed baseline (label "pre-pr2")
// survives re-measurement of the current tree.
//
// Usage:
//
//	benchjson [-o BENCH_bcluster.json] [-stream-o BENCH_stream.json] [-label current]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"testing"
	"time"

	"repro/internal/bcluster"
	"repro/internal/behavior"
	"repro/internal/benchdata"
	"repro/internal/dataset"
	"repro/internal/stream"
)

// Entry is one measured benchmark point.
type Entry struct {
	// Label distinguishes measurement campaigns (e.g. "pre-pr2", "post-pr2").
	Label string `json:"label"`
	// Bench is "lsh" (bcluster.Run) or "exact" (bcluster.RunExact).
	Bench string `json:"bench"`
	// N is the corpus size.
	N int `json:"n"`
	// NsPerOp, BytesPerOp, AllocsPerOp are the standard Go benchmark
	// figures for one full clustering run.
	NsPerOp     int64 `json:"ns_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
	// CandidatePairs and Links come from bcluster.Stats; Clusters is the
	// resulting partition size. All three are deterministic in (bench, n).
	CandidatePairs int `json:"candidate_pairs"`
	Links          int `json:"links"`
	Clusters       int `json:"clusters"`
	// Gomaxprocs records the parallelism available to the measurement.
	Gomaxprocs int `json:"gomaxprocs"`
}

// StreamEntry is one measured ingest-throughput point of the streaming
// service (internal/stream) over the benchdata corpus.
type StreamEntry struct {
	Label string `json:"label"`
	// N is the sample count; Events is the replayed event count (~1.3 N).
	N      int `json:"n"`
	Events int `json:"events"`
	// EpochSize is the re-clustering trigger the service ran with.
	EpochSize int `json:"epoch_size"`
	// NsPerEvent and EventsPerSec measure one full replay (ingest through
	// final flush, enrichment stubbed to a profile lookup).
	NsPerEvent   int64   `json:"ns_per_event"`
	EventsPerSec float64 `json:"events_per_sec"`
	// HeapAllocBytes is the live heap after the replay and a forced GC —
	// the bounded-memory evidence for sustained ingest.
	HeapAllocBytes uint64 `json:"heap_alloc_bytes"`
	// MaxQueueDepth is the deepest the bounded ingest queue ever got.
	MaxQueueDepth int `json:"max_queue_depth"`
	// EPMEpochs sums the ε/π/μ re-clustering epochs; BEpochs counts the
	// B verification epochs; BClusters is the final partition size.
	EPMEpochs  int `json:"epm_epochs"`
	BEpochs    int `json:"b_epochs"`
	BClusters  int `json:"b_clusters"`
	Gomaxprocs int `json:"gomaxprocs"`
}

func main() {
	out := flag.String("o", "BENCH_bcluster.json", "output JSON path (merged in place)")
	streamOut := flag.String("stream-o", "BENCH_stream.json", "streaming-service throughput JSON path (merged in place; empty disables)")
	label := flag.String("label", "current", "label for this measurement campaign")
	flag.Parse()

	if err := run(*out, *label); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if *streamOut != "" {
		if err := runStream(*streamOut, *label); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
	}
}

// streamEnricher stubs the enrichment pipeline with a lookup into the
// benchdata profile corpus, so the bench isolates the service's own
// costs: queueing, classification, epochs, and incremental clustering.
type streamEnricher map[string]*behavior.Profile

func (e streamEnricher) LabelSample(s *dataset.Sample) error {
	s.AVLabel = "Bench." + s.MD5
	return nil
}

func (e streamEnricher) ExecuteSample(s *dataset.Sample) (*behavior.Profile, bool, error) {
	p, ok := e[s.MD5]
	if !ok {
		return nil, false, fmt.Errorf("benchjson: no profile for sample %s", s.MD5)
	}
	return p, false, nil
}

// runStream measures the streaming service's sustained ingest rate.
func runStream(path, label string) error {
	entries, err := loadStream(path)
	if err != nil {
		return err
	}
	for _, n := range benchdata.StreamSizes {
		enricher := make(streamEnricher, n)
		for _, in := range benchdata.Profiles(n) {
			enricher[in.ID] = in.Profile
		}
		events := benchdata.StreamEvents(n)
		cfg := stream.DefaultConfig()
		svc, err := stream.New(cfg, enricher)
		if err != nil {
			return err
		}
		start := time.Now()
		if err := stream.Replay(context.Background(), svc, events, 256); err != nil {
			svc.Close()
			return err
		}
		elapsed := time.Since(start)
		st := svc.Stats()
		svc.Close()
		if st.Rejected != 0 || st.EnrichErrors != 0 || st.Events != len(events) {
			return fmt.Errorf("benchjson: unclean stream replay at n=%d: %+v", n, st)
		}
		runtime.GC()
		var mem runtime.MemStats
		runtime.ReadMemStats(&mem)
		e := StreamEntry{
			Label:          label,
			N:              n,
			Events:         len(events),
			EpochSize:      cfg.EpochSize,
			NsPerEvent:     elapsed.Nanoseconds() / int64(len(events)),
			EventsPerSec:   float64(len(events)) / elapsed.Seconds(),
			HeapAllocBytes: mem.HeapAlloc,
			MaxQueueDepth:  st.MaxQueueDepth,
			EPMEpochs:      st.Epsilon.Epoch + st.Pi.Epoch + st.Mu.Epoch,
			BEpochs:        st.B.Epochs,
			BClusters:      st.B.Clusters,
			Gomaxprocs:     runtime.GOMAXPROCS(0),
		}
		replaced := false
		for i, old := range entries {
			if old.Label == e.Label && old.N == e.N {
				entries[i] = e
				replaced = true
				break
			}
		}
		if !replaced {
			entries = append(entries, e)
		}
		fmt.Printf("%s/stream-%d\t%d events\t%d ns/event\t%.0f events/s\theap=%dMB epochs=%d+%d clusters=%d\n",
			label, n, len(events), elapsed.Nanoseconds()/int64(len(events)),
			float64(len(events))/elapsed.Seconds(), mem.HeapAlloc>>20,
			st.Epsilon.Epoch+st.Pi.Epoch+st.Mu.Epoch, st.B.Epochs, st.B.Clusters)
	}
	sort.Slice(entries, func(a, b int) bool {
		if entries[a].N != entries[b].N {
			return entries[a].N < entries[b].N
		}
		return entries[a].Label < entries[b].Label
	})
	raw, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

func loadStream(path string) ([]StreamEntry, error) {
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var entries []StreamEntry
	if err := json.Unmarshal(raw, &entries); err != nil {
		return nil, fmt.Errorf("parsing existing %s: %w", path, err)
	}
	return entries, nil
}

func run(path, label string) error {
	entries, err := load(path)
	if err != nil {
		return err
	}
	cfg := bcluster.DefaultConfig()

	measure := func(bench string, n int, cluster func([]bcluster.Input, bcluster.Config) (*bcluster.Result, error)) error {
		// Fresh profiles per point: the first clustering run interns each
		// profile's FeatureSet, subsequent iterations measure the hot path
		// — the same steady state the enrichment pipeline runs in.
		inputs := benchdata.Profiles(n)
		res, err := cluster(inputs, cfg)
		if err != nil {
			return err
		}
		br := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := cluster(inputs, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
		e := Entry{
			Label:          label,
			Bench:          bench,
			N:              n,
			NsPerOp:        br.NsPerOp(),
			BytesPerOp:     br.AllocedBytesPerOp(),
			AllocsPerOp:    br.AllocsPerOp(),
			CandidatePairs: res.Stats.CandidatePairs,
			Links:          res.Stats.Links,
			Clusters:       len(res.Clusters),
			Gomaxprocs:     runtime.GOMAXPROCS(0),
		}
		entries = upsert(entries, e)
		fmt.Printf("%s/%s-%d\t%d ns/op\t%d B/op\t%d allocs/op\tpairs=%d links=%d clusters=%d\n",
			e.Label, e.Bench, e.N, e.NsPerOp, e.BytesPerOp, e.AllocsPerOp,
			e.CandidatePairs, e.Links, e.Clusters)
		return nil
	}

	for _, n := range benchdata.LSHSizes {
		if err := measure("lsh", n, bcluster.Run); err != nil {
			return err
		}
	}
	for _, n := range benchdata.ExactSizes {
		if err := measure("exact", n, bcluster.RunExact); err != nil {
			return err
		}
	}
	return save(path, entries)
}

func load(path string) ([]Entry, error) {
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var entries []Entry
	if err := json.Unmarshal(raw, &entries); err != nil {
		return nil, fmt.Errorf("parsing existing %s: %w", path, err)
	}
	return entries, nil
}

func upsert(entries []Entry, e Entry) []Entry {
	for i, old := range entries {
		if old.Label == e.Label && old.Bench == e.Bench && old.N == e.N {
			entries[i] = e
			return entries
		}
	}
	return append(entries, e)
}

func save(path string, entries []Entry) error {
	sort.Slice(entries, func(a, b int) bool {
		x, y := entries[a], entries[b]
		if x.Bench != y.Bench {
			return x.Bench < y.Bench // "exact" before "lsh"
		}
		if x.N != y.N {
			return x.N < y.N
		}
		return x.Label < y.Label
	})
	raw, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}
