package main

import "testing"

// TestUpsertReplacesSameKey pins the merge-in-place contract: a
// re-measurement under an existing (label, bench, n) key replaces the
// old entry instead of appending a duplicate, and distinct keys append.
func TestUpsertReplacesSameKey(t *testing.T) {
	entries := []Entry{
		{Label: "pre-pr2", Bench: "lsh", N: 1000, NsPerOp: 100},
		{Label: "post-pr3", Bench: "lsh", N: 1000, NsPerOp: 90},
	}
	entries = upsert(entries, Entry{Label: "post-pr3", Bench: "lsh", N: 1000, NsPerOp: 42})
	if len(entries) != 2 {
		t.Fatalf("replacement appended: %d entries, want 2", len(entries))
	}
	if entries[1].NsPerOp != 42 {
		t.Fatalf("entry not replaced in place: %+v", entries[1])
	}
	entries = upsert(entries, Entry{Label: "post-pr3", Bench: "exact", N: 1000, NsPerOp: 7})
	entries = upsert(entries, Entry{Label: "post-pr3", Bench: "lsh", N: 2000, NsPerOp: 8})
	if len(entries) != 4 {
		t.Fatalf("distinct keys must append: %d entries, want 4", len(entries))
	}
	if entries[0].NsPerOp != 100 {
		t.Fatalf("unrelated entry mutated: %+v", entries[0])
	}
}

// TestUpsertStreamReplacesSameKey is the same contract for the stream
// file, keyed by (label, n, shards).
func TestUpsertStreamReplacesSameKey(t *testing.T) {
	entries := []StreamEntry{
		{Label: "post-pr3", N: 1000, Shards: 1, NsPerEvent: 23857},
		{Label: "post-pr3", N: 10000, Shards: 1, NsPerEvent: 48683},
	}
	entries = upsertStream(entries, StreamEntry{Label: "post-pr3", N: 10000, Shards: 1, NsPerEvent: 20000})
	if len(entries) != 2 {
		t.Fatalf("replacement appended: %d entries, want 2", len(entries))
	}
	if entries[1].NsPerEvent != 20000 {
		t.Fatalf("entry not replaced in place: %+v", entries[1])
	}
	entries = upsertStream(entries, StreamEntry{Label: "post-pr6", N: 10000, Shards: 1, NsPerEvent: 19000})
	entries = upsertStream(entries, StreamEntry{Label: "post-pr3", N: 100000, Shards: 1, NsPerEvent: 1})
	// The shards dimension is part of the key: a 4-shard measurement of
	// an already-measured (label, n) appends rather than clobbering the
	// 1-shard point.
	entries = upsertStream(entries, StreamEntry{Label: "post-pr3", N: 10000, Shards: 4, NsPerEvent: 5000})
	if len(entries) != 5 {
		t.Fatalf("distinct keys must append: %d entries, want 5", len(entries))
	}
	if entries[1].NsPerEvent != 20000 || entries[1].Shards != 1 {
		t.Fatalf("1-shard entry clobbered by the 4-shard point: %+v", entries[1])
	}
	if entries[0].NsPerEvent != 23857 {
		t.Fatalf("unrelated entry mutated: %+v", entries[0])
	}
}

// TestParseShards pins the -stream-shards parser: list parsing,
// whitespace tolerance, and rejection of out-of-range counts.
func TestParseShards(t *testing.T) {
	got, err := parseShards(" 1, 4 ")
	if err != nil || len(got) != 2 || got[0] != 1 || got[1] != 4 {
		t.Fatalf("parseShards(\" 1, 4 \") = %v, %v", got, err)
	}
	for _, bad := range []string{"", "0", "-1", "257", "x"} {
		if _, err := parseShards(bad); err == nil {
			t.Fatalf("parseShards(%q) accepted", bad)
		}
	}
}

// TestUpsertPoisonReplacesSameKey is the same contract for the poison
// file, keyed (label, n, poison_rate, defended).
func TestUpsertPoisonReplacesSameKey(t *testing.T) {
	entries := []PoisonEntry{
		{Label: "post-pr9", N: 589, PoisonRate: 0.10, Defended: false, Precision: 0.868},
		{Label: "post-pr9", N: 589, PoisonRate: 0.10, Defended: true, Precision: 0.964},
	}
	entries = upsertPoison(entries, PoisonEntry{Label: "post-pr9", N: 589, PoisonRate: 0.10, Defended: true, Precision: 0.97})
	if len(entries) != 2 {
		t.Fatalf("replacement appended: %d entries, want 2", len(entries))
	}
	if entries[1].Precision != 0.97 {
		t.Fatalf("entry not replaced in place: %+v", entries[1])
	}
	// The defended flag and the rate are part of the key.
	entries = upsertPoison(entries, PoisonEntry{Label: "post-pr9", N: 566, PoisonRate: 0.05, Defended: false})
	entries = upsertPoison(entries, PoisonEntry{Label: "post-pr10", N: 589, PoisonRate: 0.10, Defended: true})
	if len(entries) != 4 {
		t.Fatalf("distinct keys must append: %d entries, want 4", len(entries))
	}
	if entries[0].Precision != 0.868 {
		t.Fatalf("unrelated entry mutated: %+v", entries[0])
	}
}
