package main

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/sgnetd"
	"repro/internal/simtime"
)

func TestRunServesAndWritesDataset(t *testing.T) {
	out := filepath.Join(t.TempDir(), "events.jsonl")
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var runErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		runErr = run("127.0.0.1:7171", 3, out, stop)
	}()

	// Wait for the listener, then drive it with a sensor.
	var sensor *sgnetd.Sensor
	deadline := time.Now().Add(5 * time.Second)
	for {
		var err error
		sensor, err = sgnetd.Dial("127.0.0.1:7171", "s1")
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			close(stop)
			wg.Wait()
			t.Fatalf("gateway never came up: %v (run: %v)", err, runErr)
		}
		time.Sleep(20 * time.Millisecond)
	}
	ev := dataset.Event{
		ID:              "ev-1",
		Time:            simtime.WeekStart(1),
		Attacker:        "1.2.3.4",
		Sensor:          "5.6.7.8",
		DestPort:        445,
		DownloadOutcome: "failed",
		Protocol:        "unknown",
		Interaction:     "unknown",
	}
	if err := sensor.Report(ev); err != nil {
		t.Fatal(err)
	}
	_ = sensor.Close()

	close(stop)
	wg.Wait()
	if runErr != nil {
		t.Fatal(runErr)
	}

	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ds, err := dataset.ReadJSONL(f)
	if err != nil {
		t.Fatal(err)
	}
	if ds.EventCount() != 1 {
		t.Errorf("collected %d events, want 1", ds.EventCount())
	}
}

func TestRunBadListenAddr(t *testing.T) {
	if err := run("256.0.0.1:99999", 0, "", nil); err == nil {
		t.Error("invalid listen address must error")
	}
}
