// Command sgnet-gateway runs the central gateway of a distributed SGNET
// deployment (Figure 1 of the paper): it owns the master FSM models,
// serves sensor connections, plays the sample-factory oracle for unknown
// activity, and collects event reports. On SIGINT/SIGTERM it writes the
// collected dataset and exits.
//
// Usage:
//
//	sgnet-gateway [-listen 127.0.0.1:7070] [-mature 3] [-o events.jsonl]
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/sgnetd"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7070", "address to listen on")
	mature := flag.Int("mature", 0, "FSM maturity threshold (0 = default)")
	out := flag.String("o", "", "write collected events to this path on shutdown")
	flag.Parse()

	if err := run(*listen, *mature, *out, nil); err != nil {
		fmt.Fprintln(os.Stderr, "sgnet-gateway:", err)
		os.Exit(1)
	}
}

// run serves until stop is closed (or a signal arrives when stop is nil).
func run(listen string, mature int, out string, stop <-chan struct{}) error {
	g := sgnetd.NewGateway(mature)
	addr, err := g.Start(listen)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "sgnet-gateway: listening on %s\n", addr)

	if stop == nil {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
		ch := make(chan struct{})
		go func() {
			<-sig
			close(ch)
		}()
		stop = ch
	}
	<-stop

	if err := g.Close(); err != nil {
		return err
	}
	g.Wait()
	stats := g.Stats()
	fmt.Fprintf(os.Stderr,
		"sgnet-gateway: %d connections, %d oracle consultations, %d events, knowledge version %d\n",
		stats.Connections, stats.Observes, stats.Events, g.Version())

	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := g.Dataset().WriteJSONL(f); err != nil {
			return err
		}
	}
	return nil
}
