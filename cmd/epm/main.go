// Command epm runs EPM clustering (and, when profiles are present,
// behavior-based clustering) over a dataset file produced by sgnet-sim,
// then prints Table 1 and per-dimension cluster summaries.
//
// Usage:
//
//	epm -in dataset.jsonl [-min-instances 10] [-min-attackers 3] [-min-sensors 3] [-top 15] [-o clusters.json]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bcluster"
	"repro/internal/behavior"
	"repro/internal/dataset"
	"repro/internal/epm"
	"repro/internal/report"
)

func main() {
	in := flag.String("in", "", "input dataset (JSON lines, from sgnet-sim)")
	minInstances := flag.Int("min-instances", 10, "invariant threshold: attack instances")
	minAttackers := flag.Int("min-attackers", 3, "invariant threshold: distinct attackers")
	minSensors := flag.Int("min-sensors", 3, "invariant threshold: distinct honeypot IPs")
	top := flag.Int("top", 15, "clusters to list per dimension")
	out := flag.String("o", "", "write the three clusterings as JSON lines to this path")
	flag.Parse()

	if err := run(*in, epm.Thresholds{
		MinInstances: *minInstances,
		MinAttackers: *minAttackers,
		MinSensors:   *minSensors,
	}, *top, *out); err != nil {
		fmt.Fprintln(os.Stderr, "epm:", err)
		os.Exit(1)
	}
}

func run(in string, th epm.Thresholds, top int, out string) error {
	if in == "" {
		return fmt.Errorf("missing -in (generate one with sgnet-sim)")
	}
	f, err := os.Open(in)
	if err != nil {
		return err
	}
	defer f.Close()
	ds, err := dataset.ReadJSONL(f)
	if err != nil {
		return err
	}
	fmt.Printf("dataset: %d events, %d samples (%d executable)\n\n",
		ds.EventCount(), ds.SampleCount(), ds.ExecutableSampleCount())

	e, err := epm.Run(dataset.EpsilonSchema, ds.EpsilonInstances(), th)
	if err != nil {
		return err
	}
	p, err := epm.Run(dataset.PiSchema, ds.PiInstances(), th)
	if err != nil {
		return err
	}
	m, err := epm.Run(dataset.MuSchema, ds.MuInstances(), th)
	if err != nil {
		return err
	}
	fmt.Print(report.Table1(e, p, m))
	fmt.Println()

	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		for _, c := range []*epm.Clustering{e, p, m} {
			if err := c.WriteJSON(f); err != nil {
				return err
			}
		}
		fmt.Printf("clusterings written to %s\n\n", out)
	}

	for _, c := range []*epm.Clustering{e, p, m} {
		fmt.Printf("%s: %d clusters\n", c.Schema.Dimension, len(c.Clusters))
		for i, cl := range c.Clusters {
			if i >= top {
				fmt.Printf("  ... %d more\n", len(c.Clusters)-top)
				break
			}
			fmt.Printf("  #%d size=%d attackers=%d sensors=%d pattern=%s\n",
				cl.ID, cl.Size(), cl.Attackers, cl.Sensors, cl.Pattern)
		}
		fmt.Println()
	}

	// Behavioral clustering straight from the stored profiles, when the
	// dataset was enriched.
	var inputs []bcluster.Input
	for _, s := range ds.Samples() {
		if len(s.Profile) == 0 {
			continue
		}
		prof := behavior.NewProfile()
		for _, feat := range s.Profile {
			prof.Add(feat)
		}
		inputs = append(inputs, bcluster.Input{ID: s.MD5, Profile: prof})
	}
	if len(inputs) == 0 {
		fmt.Println("no behavioral profiles stored; skipping B-clustering")
		return nil
	}
	b, err := bcluster.Run(inputs, bcluster.DefaultConfig())
	if err != nil {
		return err
	}
	fmt.Printf("behavior: %d B-clusters over %d profiles (%d singletons, %d candidate pairs, %d links)\n",
		len(b.Clusters), len(inputs), len(b.Singletons()), b.Stats.CandidatePairs, b.Stats.Links)
	return nil
}
