package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/epm"
)

// writeDataset produces a small dataset file for the command to consume.
func writeDataset(t *testing.T) string {
	t.Helper()
	res, err := core.Run(core.SmallScenario())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "dataset.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := res.Dataset.WriteJSONL(f); err != nil {
		t.Fatal(err)
	}
	return path
}

func captureStdout(t *testing.T, f func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		var buf bytes.Buffer
		_, _ = io.Copy(&buf, r)
		done <- buf.String()
	}()
	ferr := f()
	os.Stdout = old
	_ = w.Close()
	out := <-done
	_ = r.Close()
	return out, ferr
}

func TestRunOverDatasetFile(t *testing.T) {
	path := writeDataset(t)
	out, err := captureStdout(t, func() error {
		return run(path, epm.DefaultThresholds(), 5, "")
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"Table 1",
		"epsilon: ",
		"pi: ",
		"mu: ",
		"B-clusters over",
		"pattern=",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("", epm.DefaultThresholds(), 5, ""); err == nil {
		t.Error("missing -in must error")
	}
	if err := run(filepath.Join(t.TempDir(), "nope.jsonl"), epm.DefaultThresholds(), 5, ""); err == nil {
		t.Error("missing file must error")
	}
	// Corrupt file.
	bad := filepath.Join(t.TempDir(), "bad.jsonl")
	if err := os.WriteFile(bad, []byte("not json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(bad, epm.DefaultThresholds(), 5, ""); err == nil {
		t.Error("corrupt file must error")
	}
	// Invalid thresholds.
	path := writeDataset(t)
	if err := run(path, epm.Thresholds{}, 5, ""); err == nil {
		t.Error("invalid thresholds must error")
	}
}

func TestRunWritesClusterings(t *testing.T) {
	path := writeDataset(t)
	out := filepath.Join(t.TempDir(), "clusters.json")
	if _, err := captureStdout(t, func() error {
		return run(path, epm.DefaultThresholds(), 3, out)
	}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	clusterings, err := epm.ReadAllJSON(f)
	if err != nil {
		t.Fatal(err)
	}
	// Three clusterings, in epsilon/pi/mu order.
	dims := []string{"epsilon", "pi", "mu"}
	if len(clusterings) != len(dims) {
		t.Fatalf("clusterings = %d, want %d", len(clusterings), len(dims))
	}
	for i, want := range dims {
		c := clusterings[i]
		if c.Schema.Dimension != want {
			t.Fatalf("dimension = %q, want %q", c.Schema.Dimension, want)
		}
		if len(c.Clusters) == 0 {
			t.Fatalf("%s clustering empty", want)
		}
	}
}
