// Command landscape runs the full pipeline and prints every table and
// figure of the reproduction in sequence — the one-shot "show me
// everything" tool.
//
// Usage:
//
//	landscape [-seed N] [-small] [-scenario file.json] [-min-cluster 30]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/report"
)

func main() {
	seed := flag.Uint64("seed", 2010, "scenario seed")
	small := flag.Bool("small", false, "use the reduced scenario")
	scenarioPath := flag.String("scenario", "", "scenario JSON file (overrides -small)")
	minCluster := flag.Int("min-cluster", 30, "Figure 3 minimum cluster size")
	flag.Parse()

	if err := run(*seed, *small, *scenarioPath, *minCluster); err != nil {
		fmt.Fprintln(os.Stderr, "landscape:", err)
		os.Exit(1)
	}
}

func run(seed uint64, small bool, scenarioPath string, minCluster int) error {
	scenario := core.DefaultScenario()
	if small {
		scenario = core.SmallScenario()
	}
	if scenarioPath != "" {
		loaded, err := core.LoadScenarioFile(scenarioPath)
		if err != nil {
			return err
		}
		scenario = loaded
	}
	scenario.Seed = seed

	res, err := core.Run(scenario)
	if err != nil {
		return err
	}

	events, samples, executable, e, p, m, b := res.Counts()
	fmt.Print(report.BigPicture(report.Counts{
		Events: events, Samples: samples, ExecutableSamples: executable,
		EClusters: e, PClusters: p, MClusters: m, BClusters: b,
	}))
	fmt.Println()
	fmt.Print(report.Table1(res.E, res.P, res.M))
	fmt.Println()

	g, err := analysis.BuildRelationGraph(res.Dataset, res.E, res.P, res.M, res.B, res.CrossMap, minCluster)
	if err != nil {
		return err
	}
	fmt.Print(report.Figure3(g))
	fmt.Println()

	anomalies, err := analysis.FindSize1Anomalies(res.Dataset, res.E, res.P, res.B, res.CrossMap)
	if err != nil {
		return err
	}
	fmt.Print(report.Figure4(anomalies))
	fmt.Println()

	for i, bIdx := range res.CrossMap.MultiMBClusters(res.B) {
		if i >= 2 {
			break
		}
		ctx, err := analysis.PropagationContext(res.Dataset, res.M, res.B, res.CrossMap, bIdx)
		if err != nil {
			return err
		}
		fmt.Print(report.Figure5(ctx, 12))
		fmt.Println()
	}

	rows, err := analysis.IRCCorrelation(res.Dataset, res.CrossMap)
	if err != nil {
		return err
	}
	fmt.Print(report.Table2(rows))
	return nil
}
