package main

import (
	"bytes"
	"io"
	"os"
	"strings"
	"testing"
)

func captureStdout(t *testing.T, f func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		var buf bytes.Buffer
		_, _ = io.Copy(&buf, r)
		done <- buf.String()
	}()
	ferr := f()
	os.Stdout = old
	_ = w.Close()
	out := <-done
	_ = r.Close()
	return out, ferr
}

func TestRunPrintsEverything(t *testing.T) {
	out, err := captureStdout(t, func() error { return run(4, true, "", 30) })
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"Big picture",
		"Table 1",
		"Figure 3",
		"Figure 4",
		"Figure 5",
		"Table 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunMinClusterAffectsFigure3(t *testing.T) {
	strict, err := captureStdout(t, func() error { return run(4, true, "", 100) })
	if err != nil {
		t.Fatal(err)
	}
	loose, err := captureStdout(t, func() error { return run(4, true, "", 1) })
	if err != nil {
		t.Fatal(err)
	}
	if strict == loose {
		t.Error("min-cluster filter has no effect on the output")
	}
}
