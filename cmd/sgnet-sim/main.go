// Command sgnet-sim generates an SGNET-style dataset: it builds the
// ground-truth landscape, simulates the honeypot deployment over the
// study period, enriches the dataset (sandbox profiles, AV labels), and
// writes the result as JSON lines.
//
// Usage:
//
//	sgnet-sim [-seed N] [-small] [-scenario file.json] [-o dataset.jsonl]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
)

func main() {
	seed := flag.Uint64("seed", 2010, "scenario seed")
	small := flag.Bool("small", false, "use the reduced scenario")
	scenarioPath := flag.String("scenario", "", "scenario JSON file (overrides -small)")
	out := flag.String("o", "", "output path (default stdout)")
	flag.Parse()

	if err := run(*seed, *small, *scenarioPath, *out); err != nil {
		fmt.Fprintln(os.Stderr, "sgnet-sim:", err)
		os.Exit(1)
	}
}

func run(seed uint64, small bool, scenarioPath, out string) error {
	scenario := core.DefaultScenario()
	if small {
		scenario = core.SmallScenario()
	}
	if scenarioPath != "" {
		loaded, err := core.LoadScenarioFile(scenarioPath)
		if err != nil {
			return err
		}
		scenario = loaded
	}
	scenario.Seed = seed

	res, err := core.Run(scenario)
	if err != nil {
		return err
	}

	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer func() {
			if cerr := f.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}()
		w = f
	}
	if err := res.Dataset.WriteJSONL(w); err != nil {
		return err
	}

	events, samples, executable, _, _, _, _ := res.Counts()
	fmt.Fprintf(os.Stderr, "sgnet-sim: %d events, %d samples (%d executable), %d sensors, proxied=%d\n",
		events, samples, executable,
		len(res.Simulation.Deployment.Sensors()), res.Simulation.Stats.Proxied)
	return nil
}
