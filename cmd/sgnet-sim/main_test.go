package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/dataset"
)

func TestRunWritesReadableDataset(t *testing.T) {
	out := filepath.Join(t.TempDir(), "dataset.jsonl")
	if err := run(5, true, "", out); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ds, err := dataset.ReadJSONL(f)
	if err != nil {
		t.Fatal(err)
	}
	if ds.EventCount() == 0 || ds.SampleCount() == 0 {
		t.Fatalf("dataset empty: %d events, %d samples", ds.EventCount(), ds.SampleCount())
	}
	// Enrichment state must round-trip through the file.
	profiled := 0
	for _, s := range ds.Samples() {
		if len(s.Profile) > 0 {
			profiled++
		}
	}
	if profiled == 0 {
		t.Error("no profiles survived serialization")
	}
}

func TestRunSeedsDiffer(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.jsonl")
	b := filepath.Join(dir, "b.jsonl")
	if err := run(1, true, "", a); err != nil {
		t.Fatal(err)
	}
	if err := run(2, true, "", b); err != nil {
		t.Fatal(err)
	}
	fa, err := os.ReadFile(a)
	if err != nil {
		t.Fatal(err)
	}
	fb, err := os.ReadFile(b)
	if err != nil {
		t.Fatal(err)
	}
	if string(fa) == string(fb) {
		t.Error("different seeds produced identical datasets")
	}
}

func TestRunRejectsBadPath(t *testing.T) {
	if err := run(1, true, "", filepath.Join(t.TempDir(), "missing-dir", "x.jsonl")); err == nil {
		t.Error("uncreatable output path must error")
	}
}
