// Command sgnet-sensor runs one honeypot sensor of a distributed SGNET
// deployment: it connects to a gateway, provisions itself with the
// current FSM models, then observes synthetic exploit traffic — handling
// known activity locally and proxying unknown conversations to the
// gateway oracle, exactly the division of labour of the paper's Figure 1.
// Run several against one sgnet-gateway to watch the FSM knowledge
// converge.
//
// Usage:
//
//	sgnet-sensor -gateway 127.0.0.1:7070 [-id sensor-01] [-attacks 50] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/dataset"
	"repro/internal/exploit"
	"repro/internal/sgnetd"
	"repro/internal/simrng"
	"repro/internal/simtime"
)

func main() {
	gateway := flag.String("gateway", "127.0.0.1:7070", "gateway address")
	id := flag.String("id", "sensor-01", "sensor identifier")
	attacks := flag.Int("attacks", 50, "number of synthetic attacks to observe")
	seed := flag.Uint64("seed", 1, "traffic seed")
	flag.Parse()

	if err := run(*gateway, *id, *attacks, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "sgnet-sensor:", err)
		os.Exit(1)
	}
}

func run(gateway, id string, attacks int, seed uint64) error {
	if attacks < 1 {
		return fmt.Errorf("need at least one attack, got %d", attacks)
	}
	sensor, err := sgnetd.Dial(gateway, id)
	if err != nil {
		return err
	}
	defer sensor.Close()

	// A fixed slice of the threat landscape: three implementations over
	// two vulnerable services. Every sensor sees the same implementations
	// (seeded identically), as in a real deployment where the same worms
	// hit every network.
	impls, ports, err := trafficMix()
	if err != nil {
		return err
	}

	rng := simrng.New(seed)
	r := rng.Stream("traffic")
	for i := 0; i < attacks; i++ {
		k := r.Intn(len(impls))
		payload := make([]byte, 40+r.Intn(80))
		r.Read(payload)
		dialog := impls[k].Dialog(r, payload)
		path, ok, err := sensor.Handle(ports[k], dialog.ClientMessages())
		if err != nil {
			return err
		}
		if !ok {
			path = "immature"
		}
		ev := dataset.Event{
			ID:              fmt.Sprintf("%s-ev-%06d", id, i),
			Time:            simtime.WeekStart(1 + i%50),
			Attacker:        fmt.Sprintf("198.51.%d.%d", r.Intn(256), r.Intn(256)),
			Sensor:          id,
			FSMPath:         path,
			DestPort:        ports[k],
			Protocol:        "unknown",
			Interaction:     "unknown",
			DownloadOutcome: "failed",
		}
		if err := sensor.Report(ev); err != nil {
			return err
		}
	}
	st := sensor.Stats()
	fmt.Fprintf(os.Stderr, "sgnet-sensor %s: %d attacks, %d local, %d proxied, %d snapshots, fsm v%d\n",
		id, attacks, st.Local, st.Proxied, st.SnapshotsApplied, sensor.Version())
	return nil
}

// trafficMix builds the deterministic exploit implementations every
// sensor observes.
func trafficMix() ([]*exploit.Implementation, []int, error) {
	asn1, err := exploit.NewVulnerability("asn1-ms04007", 445, 3, 1001)
	if err != nil {
		return nil, nil, err
	}
	dcom, err := exploit.NewVulnerability("dcom-ms03026", 135, 3, 1002)
	if err != nil {
		return nil, nil, err
	}
	var impls []*exploit.Implementation
	var ports []int
	for i, v := range []*exploit.Vulnerability{asn1, asn1, dcom} {
		impl, err := exploit.NewImplementation(v, fmt.Sprintf("impl-%d", i), uint64(2000+i))
		if err != nil {
			return nil, nil, err
		}
		impls = append(impls, impl)
		ports = append(ports, v.Port)
	}
	return impls, ports, nil
}
