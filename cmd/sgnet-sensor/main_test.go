package main

import (
	"testing"

	"repro/internal/sgnetd"
)

func startGateway(t *testing.T) (*sgnetd.Gateway, string) {
	t.Helper()
	g := sgnetd.NewGateway(3)
	addr, err := g.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = g.Close()
		g.Wait()
	})
	return g, addr.String()
}

func TestRunDrivesGateway(t *testing.T) {
	g, addr := startGateway(t)
	if err := run(addr, "sensor-a", 30, 1); err != nil {
		t.Fatal(err)
	}
	stats := g.Stats()
	if stats.Events != 30 {
		t.Errorf("gateway collected %d events, want 30", stats.Events)
	}
	if stats.Observes == 0 {
		t.Error("no conversations proxied; learning never happened")
	}
	if g.Version() == 0 {
		t.Error("gateway FSM version never advanced")
	}
	// A second sensor profits from the first one's learning: nearly all
	// of its traffic is handled locally.
	before := g.Stats().Observes
	if err := run(addr, "sensor-b", 30, 2); err != nil {
		t.Fatal(err)
	}
	delta := g.Stats().Observes - before
	if delta > 5 {
		t.Errorf("second sensor proxied %d conversations; FSM sync not effective", delta)
	}
}

func TestRunValidation(t *testing.T) {
	_, addr := startGateway(t)
	if err := run(addr, "s", 0, 1); err == nil {
		t.Error("zero attacks must error")
	}
	if err := run("127.0.0.1:1", "s", 5, 1); err == nil {
		t.Error("unreachable gateway must error")
	}
}
