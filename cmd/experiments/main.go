// Command experiments regenerates every table and figure of the paper and
// prints the paper-reported value next to the measured one. Its output is
// the source of EXPERIMENTS.md.
//
// Usage:
//
//	experiments [-seed N] [-small] [-parallelism N] [-run all|counts|diag|table1|figure3|figure4|mcluster13|figure5|table2|validity|avlabels|temporal|population|coverage|distributed]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
	"repro/internal/avsim"
	"repro/internal/core"
	"repro/internal/epm"
	"repro/internal/malgen"
	"repro/internal/netmodel"
	"repro/internal/report"
	"repro/internal/sgnet"
	"repro/internal/sgnetd"
	"repro/internal/simrng"
	"repro/internal/validity"
)

// selectors are the valid -run values, in presentation order.
var selectors = []string{
	"all", "counts", "diag", "table1", "figure3", "figure4", "mcluster13",
	"figure5", "table2", "validity", "avlabels", "temporal", "population",
	"coverage", "distributed",
}

func validSelector(sel string) bool {
	for _, s := range selectors {
		if s == sel {
			return true
		}
	}
	return false
}

func main() {
	seed := flag.Uint64("seed", 2010, "scenario seed")
	small := flag.Bool("small", false, "use the reduced scenario (fast, not paper-scale)")
	parallelism := flag.Int("parallelism", 0, "worker bound for every pipeline stage (0 = GOMAXPROCS)")
	runSel := flag.String("run", "all", "experiment to run: "+strings.Join(selectors, "|"))
	flag.Parse()

	if err := run(*seed, *small, *runSel, *parallelism); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(seed uint64, small bool, sel string, parallelism int) error {
	if !validSelector(sel) {
		return fmt.Errorf("unknown -run selector %q; valid selectors: %s", sel, strings.Join(selectors, "|"))
	}
	scenario := core.DefaultScenario()
	if small {
		scenario = core.SmallScenario()
	}
	scenario.Seed = seed
	scenario.Parallelism = parallelism

	fmt.Printf("# Experiments (seed=%d, scenario=%s)\n\n", seed, scenarioName(small))
	res, err := core.Run(scenario)
	if err != nil {
		return err
	}

	want := func(name string) bool { return sel == "all" || sel == name }

	if want("counts") {
		if err := counts(res); err != nil {
			return err
		}
	}
	if sel == "diag" {
		diag(res)
	}
	if want("table1") {
		table1(res)
	}
	if want("figure3") {
		if err := figure3(res); err != nil {
			return err
		}
	}
	if want("figure4") {
		if err := figure4(res); err != nil {
			return err
		}
	}
	if want("mcluster13") {
		if err := mcluster13(res); err != nil {
			return err
		}
	}
	if want("figure5") {
		if err := figure5(res); err != nil {
			return err
		}
	}
	if want("table2") {
		if err := table2(res); err != nil {
			return err
		}
	}
	if want("validity") {
		if err := validityReport(res); err != nil {
			return err
		}
	}
	if want("avlabels") {
		avLabelReport(res)
	}
	if want("temporal") {
		if err := temporal(res); err != nil {
			return err
		}
	}
	if want("population") {
		if err := population(res); err != nil {
			return err
		}
	}
	if sel == "coverage" {
		if err := coverage(scenario); err != nil {
			return err
		}
	}
	if sel == "distributed" {
		if err := distributed(scenario); err != nil {
			return err
		}
	}
	return nil
}

// distributed re-runs the small scenario with the ε pipeline routed
// through a real TCP gateway + sensors (package sgnetd) and checks that
// the resulting FSM path assignments are identical to the monolithic run.
func distributed(base core.Scenario) error {
	s := base
	s.Landscape = malgen.SmallConfig()

	landscape := func() (*malgen.Landscape, error) {
		return malgen.Generate(s.Landscape, simrng.New(s.Seed).Child("landscape"))
	}
	l1, err := landscape()
	if err != nil {
		return err
	}
	mono, err := sgnet.Simulate(l1, s.Deployment, simrng.New(s.Seed).Child("sgnet"))
	if err != nil {
		return err
	}

	g := sgnetd.NewGateway(s.Deployment.MatureAfter)
	addr, err := g.Start("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer func() {
		_ = g.Close()
		g.Wait()
	}()
	obs, err := sgnetd.NewDeploymentObserver(addr.String(), 5)
	if err != nil {
		return err
	}
	defer obs.Close()
	l2, err := landscape()
	if err != nil {
		return err
	}
	dist, err := sgnet.SimulateWith(l2, s.Deployment, simrng.New(s.Seed).Child("sgnet"), obs)
	if err != nil {
		return err
	}

	fmt.Println("## Distributed deployment equivalence (extension, small landscape)")
	me, de := mono.Dataset.Events(), dist.Dataset.Events()
	if len(me) != len(de) {
		return fmt.Errorf("event counts differ: %d vs %d", len(me), len(de))
	}
	mismatches := 0
	for i := range me {
		if me[i].FSMPath != de[i].FSMPath {
			mismatches++
		}
	}
	st := obs.Stats()
	fmt.Printf("events: %d   FSM-path mismatches vs monolithic: %d\n", len(me), mismatches)
	fmt.Printf("sensors handled %d conversations locally, proxied %d to the gateway oracle\n", st.Local, st.Proxied)
	fmt.Printf("gateway: %d oracle consultations, %d snapshots pushed, knowledge version %d\n",
		g.Stats().Observes, g.Stats().SnapshotsSent, g.Version())
	fmt.Println()
	return nil
}

// population prints capture-recapture population estimates next to ground
// truth: the deployment's small coverage hides true population sizes, but
// two-occasion capture-recapture over the study halves recovers them.
func population(res *core.Results) error {
	ests, err := analysis.EstimatePopulations(res.Dataset, res.M, 25)
	if err != nil {
		return err
	}
	// Ground truth per M-cluster: the union of the populations of every
	// variant whose samples fell into the cluster. Clusters mixing more
	// than three variants (e.g. the corrupted-sample catch-all) have no
	// meaningful single population and are skipped.
	variantsOf := map[int]map[string]bool{}
	for _, smp := range res.Dataset.Samples() {
		if m, ok := res.CrossMap.SampleM[smp.MD5]; ok {
			if variantsOf[m] == nil {
				variantsOf[m] = map[string]bool{}
			}
			variantsOf[m][smp.TruthVariant] = true
		}
	}
	truthPop := map[int]int{}
	for m, variants := range variantsOf {
		if len(variants) > 3 {
			continue
		}
		hosts := map[netmodel.IP]bool{}
		for name := range variants {
			v := res.Landscape.Variant(name)
			if v == nil {
				continue
			}
			for _, h := range v.Population.Hosts {
				hosts[h] = true
			}
		}
		if len(hosts) > 0 {
			truthPop[m] = len(hosts)
		}
	}
	fmt.Println("## Capture-recapture population estimation (extension)")
	fmt.Printf("%-10s %8s %10s %10s %12s %8s\n", "M-cluster", "events", "observed", "estimate", "true pop", "ratio")
	shown := 0
	for _, e := range ests {
		truth, ok := truthPop[e.MCluster]
		if !ok || !e.Usable() || e.Recaptured < 5 {
			continue
		}
		fmt.Printf("M%-9d %8d %10d %10.0f %12d %8.2f\n",
			e.MCluster, e.Events, e.Observed, e.Estimate, truth, e.Estimate/float64(truth))
		shown++
		if shown >= 15 {
			break
		}
	}
	fmt.Println()
	return nil
}

// coverage re-runs the small scenario at three deployment sizes and shows
// how observation coverage shapes the discovered clusters — the paper's
// remark that small coverage makes small populations nearly invisible.
func coverage(base core.Scenario) error {
	fmt.Println("## Deployment coverage ablation (extension, small landscape)")
	fmt.Printf("%-22s %8s %8s %6s %6s %6s\n", "deployment", "events", "samples", "E", "P", "M")
	for _, size := range []struct{ locations, sensors int }{
		{10, 2}, {30, 5}, {60, 10},
	} {
		s := base
		s.Landscape = malgen.SmallConfig()
		s.Deployment.Locations = size.locations
		s.Deployment.SensorsPerLocation = size.sensors
		res, err := core.Run(s)
		if err != nil {
			return err
		}
		events, samples, _, e, p, m, _ := res.Counts()
		fmt.Printf("%3d locs x %2d sensors  %8d %8d %6d %6d %6d\n",
			size.locations, size.sensors, events, samples, e, p, m)
	}
	fmt.Println("(the hit volume scales with monitored addresses; sub-threshold activity")
	fmt.Println(" becomes invariant — and clusterable — only at sufficient coverage)")
	fmt.Println()
	return nil
}

// temporal prints the cluster-evolution view: the churn of M-clusters
// over ~monthly periods and the long-lived worm background.
func temporal(res *core.Results) error {
	rep, err := analysis.Temporal(res.Dataset, res.M, 4)
	if err != nil {
		return err
	}
	fmt.Println("## Cluster evolution over the study period (extension)")
	fmt.Print(report.Temporal(rep, 10))
	fmt.Println()
	return nil
}

// avLabelReport quantifies cross-vendor AV label (in)consistency over the
// M-clusters — the known limitation of AV labels for classification the
// paper cites ([3], [7]) when justifying clustering over labels.
func avLabelReport(res *core.Results) {
	labels := make(map[string]map[string]string)
	for _, s := range res.Dataset.Samples() {
		if len(s.AVLabels) > 0 {
			labels[s.MD5] = s.AVLabels
		}
	}
	groups := make(map[int][]string)
	for md5, m := range res.CrossMap.SampleM {
		groups[m] = append(groups[m], md5)
	}
	clusters := make([][]string, 0, len(groups))
	for _, members := range groups {
		clusters = append(clusters, members)
	}
	rep := avsim.Consistency(labels, clusters)
	fmt.Println("## AV label consistency across vendors (per M-cluster)")
	fmt.Printf("samples labeled: %d   detection rate: %.3f   mean per-cluster label dominance: %.3f\n",
		rep.Samples, rep.DetectionRate, rep.MeanDominance)
	for _, vendor := range avsim.SortedVendors(rep.PerVendorFamilies) {
		fmt.Printf("  %-10s uses %d distinct family names\n", vendor, rep.PerVendorFamilies[vendor])
	}
	fmt.Println("vendors disagree on names (Rahack vs Allaple) yet are internally consistent,")
	fmt.Println("matching the limitations of AV labels the paper cites ([3], [7]).")
	fmt.Println()
}

// validityReport scores every clustering against the simulation's ground
// truth — an evaluation the paper could not run on real data — and
// compares the peHash baseline against EPM.
func validityReport(res *core.Results) error {
	variantTruth := make(map[string]string)
	behaviorTruth := make(map[string]string)
	for _, s := range res.Dataset.Samples() {
		variantTruth[s.MD5] = s.TruthVariant
		if v := res.Landscape.Variant(s.TruthVariant); v != nil {
			behaviorTruth[s.MD5] = v.Program.Name
		}
	}

	mLabels := make(map[string]string, len(res.CrossMap.SampleM))
	for md5, m := range res.CrossMap.SampleM {
		mLabels[md5] = fmt.Sprintf("M%d", m)
	}
	mGroups := validity.GroupByLabel(mLabels)

	var bGroups [][]string
	for _, c := range res.B.Clusters {
		bGroups = append(bGroups, c.Members)
	}

	hashLabels := make(map[string]string)
	for _, s := range res.Dataset.Samples() {
		if s.PEHash != "" {
			hashLabels[s.MD5] = s.PEHash
		}
	}
	hashGroups := validity.GroupByLabel(hashLabels)

	fmt.Println("## Clustering validity vs ground truth (not possible on the paper's real data)")
	score := func(name string, groups [][]string, truth map[string]string) error {
		rep, err := validity.Compare(groups, truth)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Printf("%-36s %s\n", name, rep)
		return nil
	}
	if err := score("EPM M-clusters vs true variants", mGroups, variantTruth); err != nil {
		return err
	}
	if err := score("B-clusters vs true behaviours", bGroups, behaviorTruth); err != nil {
		return err
	}
	if err := score("peHash baseline vs true variants", hashGroups, variantTruth); err != nil {
		return err
	}
	if err := score("peHash vs EPM M-clusters", hashGroups, mLabels); err != nil {
		return err
	}
	fmt.Println()
	return nil
}

// diag prints ground-truth breakdowns used during calibration.
func diag(res *core.Results) {
	famClass := map[string]string{}
	for _, f := range res.Landscape.Families {
		famClass[f.Name] = fmt.Sprint(f.Class)
	}
	events := map[string]int{}
	for _, e := range res.Dataset.Events() {
		events[famClass[e.TruthFamily]]++
	}
	samples := map[string]int{}
	exec := map[string]int{}
	for _, s := range res.Dataset.Samples() {
		c := famClass[s.TruthFamily]
		samples[c]++
		if s.Executable {
			exec[c]++
		}
	}
	singles := map[string]int{}
	multiB := map[string]map[int]bool{}
	for _, c := range res.B.Clusters {
		cls := famClass[res.Dataset.Sample(c.Members[0]).TruthFamily]
		if c.Size() == 1 {
			singles[cls]++
		} else {
			if multiB[cls] == nil {
				multiB[cls] = map[int]bool{}
			}
			multiB[cls][c.ID] = true
		}
	}
	mByClass := map[string]map[int]bool{}
	for md5, m := range res.CrossMap.SampleM {
		cls := famClass[res.Dataset.Sample(md5).TruthFamily]
		if mByClass[cls] == nil {
			mByClass[cls] = map[int]bool{}
		}
		mByClass[cls][m] = true
	}
	fmt.Println("## Diagnostics (ground-truth breakdown)")
	fmt.Printf("%-10s %8s %8s %8s %8s %8s %8s\n", "class", "events", "samples", "exec", "B-single", "B-multi", "M")
	for _, c := range []string{"worm", "bot", "dropper", "rare"} {
		fmt.Printf("%-10s %8d %8d %8d %8d %8d %8d\n",
			c, events[c], samples[c], exec[c], singles[c], len(multiB[c]), len(mByClass[c]))
	}
}

func scenarioName(small bool) string {
	if small {
		return "small"
	}
	return "default"
}

func counts(res *core.Results) error {
	events, samples, executable, e, p, m, b := res.Counts()
	fmt.Println("## Section 4.1 headline counts (paper vs measured)")
	fmt.Printf("%-34s %10s %10s\n", "metric", "paper", "measured")
	row := func(name string, paper string, measured int) {
		fmt.Printf("%-34s %10s %10d\n", name, paper, measured)
	}
	row("attack events", "n/a", events)
	row("malware samples", "6353", samples)
	row("executable samples", "5165", executable)
	row("E-clusters", "39", e)
	row("P-clusters", "27", p)
	row("M-clusters", "260", m)
	row("B-clusters", "972", b)
	singles := len(res.B.Singletons())
	row("size-1 B-clusters", "860", singles)
	fmt.Println()
	return nil
}

func table1(res *core.Results) {
	fmt.Println("## Table 1 (invariant counts; paper values in brackets)")
	paper := map[string]int{
		"FSM path identifier":                        50,
		"Destination port":                           3,
		"Download protocol":                          6,
		"Filename in protocol interaction":           22,
		"Port involved in protocol interaction":      4,
		"Interaction type":                           5,
		"File MD5":                                   57,
		"File size in bytes":                         95,
		"File type according to libmagic signatures": 7,
		"(PE) Machine type":                          1,
		"(PE) Number of sections":                    8,
		"(PE) Number of imported DLLs":               7,
		"(PE) OS version":                            1,
		"(PE) Linker version":                        7,
		"(PE) Names of the sections":                 43,
		"(PE) Imported DLLs":                         11,
		"(PE) Referenced Kernel32.dll symbols":       15,
	}
	for _, c := range []*epm.Clustering{res.E, res.P, res.M} {
		for _, st := range c.Stats {
			fmt.Printf("%-6s %-46s measured=%-5d paper=[%d]\n",
				c.Schema.Dimension, st.Feature, st.Invariants, paper[st.Feature])
		}
	}
	fmt.Println()
}

func figure3(res *core.Results) error {
	g, err := analysis.BuildRelationGraph(res.Dataset, res.E, res.P, res.M, res.B, res.CrossMap, 30)
	if err != nil {
		return err
	}
	fmt.Println("## Figure 3 (relationship graph, clusters with >= 30 events)")
	fmt.Print(report.Figure3(g))
	fmt.Println("paper observations checked:")
	fmt.Printf("  few E/P combinations vs M-clusters: E-P edges=%d, M nodes=%d\n",
		analysis.EdgeCount(g.EP), len(g.MNodes))
	maxFan := 0
	for _, n := range analysis.FanIn(g.EP) {
		if n > maxFan {
			maxFan = n
		}
	}
	fmt.Printf("  one payload shared by multiple exploits: max E->P fan-in=%d\n", maxFan)
	fmt.Printf("  filtered B-clusters (%d) <= filtered M-clusters (%d): %v\n",
		len(g.BNodes), len(g.MNodes), len(g.BNodes) <= len(g.MNodes))
	fmt.Println()
	return nil
}

func figure4(res *core.Results) error {
	rep, err := analysis.FindSize1Anomalies(res.Dataset, res.E, res.P, res.B, res.CrossMap)
	if err != nil {
		return err
	}
	fmt.Println("## Figure 4 / Section 4.2 (size-1 B-cluster anomalies)")
	fmt.Print(report.Figure4(rep))
	fmt.Printf("paper: 860 of 972 B-clusters are size-1; measured: %d of %d\n\n", rep.Size1B, rep.TotalB)
	return nil
}

func mcluster13(res *core.Results) error {
	// Locate the per-source polymorphic M-cluster: a multi-sample cluster
	// whose pattern wildcard is exactly the MD5 field.
	idx := -1
	for _, c := range res.M.Clusters {
		if c.Size() < 10 {
			continue
		}
		wild := 0
		for _, v := range c.Pattern.Values {
			if v == epm.Wildcard {
				wild++
			}
		}
		if wild == 1 && c.Pattern.Values[0] == epm.Wildcard && c.Pattern.Values[7] == "92" {
			idx = c.ID
			break
		}
	}
	fmt.Println("## Section 4.2 (per-source polymorphic cluster, paper's M-cluster 13)")
	if idx < 0 {
		fmt.Println("not found in this scenario")
		return nil
	}
	fmt.Print(report.MClusterPattern(res.M, idx))
	fmt.Printf("associated B-clusters: %d (paper: several, due to iliketay.cn availability)\n", len(res.CrossMap.MtoB[idx]))

	// Healing: re-execute the singleton members.
	healed, tried := 0, 0
	for b := range res.CrossMap.MtoB[idx] {
		if res.B.Clusters[b].Size() != 1 {
			continue
		}
		tried++
		if _, ok, err := res.Pipeline.Reexecute(res.Dataset, res.B.Clusters[b].Members[0], 5); err == nil && ok {
			healed++
		}
	}
	if tried > 0 {
		fmt.Printf("re-execution healing: %d of %d singleton members healed\n", healed, tried)
	}
	fmt.Println()
	return nil
}

func figure5(res *core.Results) error {
	multi := res.CrossMap.MultiMBClusters(res.B)
	if len(multi) == 0 {
		fmt.Println("## Figure 5: no B-cluster with multiple M-clusters")
		return nil
	}
	fmt.Println("## Figure 5 (propagation context of the two biggest multi-M B-clusters)")
	shown := multi
	if len(shown) > 2 {
		// The paper contrasts a worm-like and a bot-like cluster: take the
		// biggest widespread one and the biggest localized one.
		shown = pickContrast(res, multi)
	}
	for _, b := range shown {
		rep, err := analysis.PropagationContext(res.Dataset, res.M, res.B, res.CrossMap, b)
		if err != nil {
			return err
		}
		fmt.Print(report.Figure5(rep, 12))
		fmt.Printf("widespread fraction: %.2f\n", rep.WidespreadFraction())

		// What statically distinguishes the M-clusters of this B-cluster
		// (the paper: mainly the file size, sometimes the linker version).
		var mIdxs []int
		for _, mc := range rep.PerM {
			mIdxs = append(mIdxs, mc.MCluster)
		}
		if len(mIdxs) >= 2 {
			splits, err := analysis.ExplainSplit(res.M, mIdxs)
			if err != nil {
				return err
			}
			fmt.Print("differentiating features across these M-clusters:")
			printed := 0
			for _, fs := range splits {
				if !fs.Differentiates() {
					break
				}
				fmt.Printf(" %s(%d values)", fs.Feature, fs.DistinctValues)
				printed++
				if printed == 3 {
					break
				}
			}
			if printed == 0 {
				fmt.Print(" none (identical patterns)")
			}
			fmt.Println()
		}
		fmt.Println()
	}

	// The paper's coordinated-behaviour evidence: one bursty M-cluster's
	// per-location activity sequence ("observed hitting network location
	// A ... then B ...").
	coord, err := analysis.MostCoordinated(res.Dataset, res.M, 15, 200)
	if err != nil {
		return err
	}
	if coord != nil {
		fmt.Printf("coordinated behaviour of M-cluster %d (%d bursts over %d locations):\n%s\n",
			coord.MCluster, len(coord.Bursts), coord.Locations, coord.Listing())
		fmt.Println("such coordinated behaviour suggests the presence of a Command&Control channel.")
	}
	fmt.Println()
	return nil
}

// pickContrast selects one widespread and one localized multi-M B-cluster.
func pickContrast(res *core.Results, multi []int) []int {
	var widespread, localized = -1, -1
	for _, b := range multi {
		rep, err := analysis.PropagationContext(res.Dataset, res.M, res.B, res.CrossMap, b)
		if err != nil {
			continue
		}
		if rep.WidespreadFraction() >= 0.5 {
			if widespread < 0 {
				widespread = b
			}
		} else if localized < 0 {
			localized = b
		}
		if widespread >= 0 && localized >= 0 {
			break
		}
	}
	out := make([]int, 0, 2)
	if widespread >= 0 {
		out = append(out, widespread)
	}
	if localized >= 0 {
		out = append(out, localized)
	}
	if len(out) == 0 {
		out = multi[:1]
	}
	return out
}

func table2(res *core.Results) error {
	rows, err := analysis.IRCCorrelation(res.Dataset, res.CrossMap)
	if err != nil {
		return err
	}
	fmt.Println("## Table 2 (IRC C&C correlation)")
	fmt.Print(report.Table2(rows))

	multiCluster := 0
	for _, r := range rows {
		if len(r.MClusters) > 1 {
			multiCluster++
		}
	}
	fmt.Printf("rows with multiple M-clusters on one channel (patches of one botnet): %d\n", multiCluster)
	if !strings.Contains(fmt.Sprint(rows), "irc") {
		_ = rows
	}
	fmt.Println()
	return nil
}
