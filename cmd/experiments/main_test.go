package main

import (
	"bytes"
	"io"
	"os"
	"strings"
	"testing"
)

// captureStdout runs f while collecting everything written to stdout.
func captureStdout(t *testing.T, f func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		var buf bytes.Buffer
		_, _ = io.Copy(&buf, r)
		done <- buf.String()
	}()
	ferr := f()
	os.Stdout = old
	_ = w.Close()
	out := <-done
	_ = r.Close()
	return out, ferr
}

func TestRunAllSmall(t *testing.T) {
	out, err := captureStdout(t, func() error { return run(3, true, "all", 0) })
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"Section 4.1 headline counts",
		"Table 1",
		"Figure 3",
		"Figure 4",
		"per-source polymorphic cluster",
		"Figure 5",
		"Table 2",
		"Clustering validity",
		"W32.Rahack",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunSingleSelectors(t *testing.T) {
	for _, sel := range []string{"counts", "table1", "diag"} {
		sel := sel
		t.Run(sel, func(t *testing.T) {
			out, err := captureStdout(t, func() error { return run(3, true, sel, 0) })
			if err != nil {
				t.Fatal(err)
			}
			if len(out) < 100 {
				t.Errorf("selector %q produced almost no output", sel)
			}
		})
	}
}

func TestRunUnknownSelectorFails(t *testing.T) {
	out, err := captureStdout(t, func() error { return run(3, true, "nonexistent", 0) })
	if err == nil {
		t.Fatal("unknown selector must fail instead of silently printing nothing")
	}
	for _, want := range []string{"nonexistent", "table1", "distributed"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}
	if strings.Contains(out, "Table 1") {
		t.Error("unknown selector must not run experiments")
	}
}

func TestSelectorListCoversDispatch(t *testing.T) {
	// Every selector the dispatcher handles must be announced in the
	// validated list (and the usage text built from it).
	for _, sel := range []string{
		"counts", "diag", "table1", "figure3", "figure4", "mcluster13",
		"figure5", "table2", "validity", "avlabels", "temporal",
		"population", "coverage", "distributed", "all",
	} {
		if !validSelector(sel) {
			t.Errorf("selector %q not in the valid list", sel)
		}
	}
	if validSelector("bogus") {
		t.Error("bogus selector accepted")
	}
}
