// Package repro reproduces "Exploiting diverse observation perspectives
// to get insights on the malware landscape" (Leita, Bayer, Kirda — DSN
// 2010) as a self-contained Go library.
//
// The pipeline lives under internal/: a synthetic malware landscape
// (malgen) observed by a simulated SGNET honeypot deployment (sgnet,
// scriptgen, exploit, shellcode, pe, polymorph), enriched with dynamic
// analysis (sandbox, enrich, avsim), clustered with the paper's EPM
// technique (epm) and with behavior-based clustering (bcluster), and
// analyzed across perspectives (analysis, report). Package internal/core
// wires everything behind a single Scenario/Run entry point.
//
// The root-level benchmarks in bench_test.go regenerate every table and
// figure of the paper's evaluation; see EXPERIMENTS.md for the measured
// vs. reported comparison.
package repro
