// Polymorphic: why simple static clustering still works. Build a PE
// codebase, mutate it with the two polymorphic engine classes the paper
// observes (Allaple-style per-instance, and per-source keying), and show
// which static features survive — then run EPM over the mutated
// instances and watch it rediscover the codebase as one cluster with the
// MD5 wildcarded.
//
//	go run ./examples/polymorphic
package main

import (
	"bytes"
	"fmt"
	"log"

	"repro/internal/epm"
	"repro/internal/netmodel"
	"repro/internal/pe"
	"repro/internal/polymorph"
	"repro/internal/simrng"
)

func main() {
	// A codebase: three sections, KERNEL32 imports — the template a
	// malware author compiles once and ships many times.
	template := &pe.Image{
		Machine:     pe.MachineI386,
		Subsystem:   pe.SubsystemGUI,
		LinkerMajor: 9, LinkerMinor: 2,
		OSMajor: 6, OSMinor: 4,
		Sections: []pe.Section{
			{Name: ".text", Data: bytes.Repeat([]byte{0x90}, 40960), Characteristics: pe.SectionCode | pe.SectionExecute | pe.SectionRead},
			{Name: "rdata", Data: bytes.Repeat([]byte{0x11}, 8192), Characteristics: pe.SectionInitializedData | pe.SectionRead},
			{Name: ".data", Data: bytes.Repeat([]byte{0x22}, 9216), Characteristics: pe.SectionInitializedData | pe.SectionRead | pe.SectionWrite},
		},
		Imports: []pe.Import{{DLL: "KERNEL32.dll", Symbols: []string{"GetProcAddress", "LoadLibraryA"}}},
	}

	fmt.Println("== per-instance engine (Allaple class) ==")
	allaple := polymorph.Allaple{Seed: 42}
	showMutations(allaple, template, 3)

	fmt.Println("== per-source engine (M-cluster 13 class) ==")
	perSource := polymorph.PerSource{Seed: 42}
	showMutations(perSource, template, 3)

	// Now the punchline: EPM over a stream of mutated instances. Every
	// instance has a fresh MD5, yet invariant discovery recovers the
	// codebase because the header facts survive mutation.
	fmt.Println("== EPM over 60 polymorphic instances ==")
	schema := epm.Schema{Dimension: "mu", Features: []string{"md5", "size", "sections", "linker"}}
	var instances []epm.Instance
	for i := 0; i < 60; i++ {
		attacker := netmodel.IP(0x0a000000 + uint32(i%7))
		raw, err := allaple.Mutate(template, polymorph.Context{Source: attacker, Instance: uint64(i)})
		if err != nil {
			log.Fatal(err)
		}
		ft := pe.ExtractFeatures(raw)
		instances = append(instances, epm.Instance{
			ID:       fmt.Sprintf("ev%02d", i),
			Attacker: attacker.String(),
			Sensor:   fmt.Sprintf("sensor-%d", i%5),
			Values:   []string{ft.MD5, fmt.Sprint(ft.Size), ft.SectionNames, fmt.Sprint(ft.LinkerVersion)},
		})
	}
	clustering, err := epm.Run(schema, instances, epm.DefaultThresholds())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("clusters: %d\n", len(clustering.Clusters))
	for _, c := range clustering.Clusters {
		fmt.Printf("  pattern %s groups %d instances\n", c.Pattern, c.Size())
	}
	fmt.Println("\nthe MD5 is wildcarded; size, section names, and linker version survive.")
}

// showMutations prints which static features change across mutations.
func showMutations(engine polymorph.Engine, template *pe.Image, n int) {
	seen := map[string]bool{}
	var size int
	src := simrng.New(1).Stream("attackers")
	for i := 0; i < n; i++ {
		attacker := netmodel.IP(src.Uint32())
		raw, err := engine.Mutate(template, polymorph.Context{Source: attacker, Instance: uint64(i)})
		if err != nil {
			log.Fatal(err)
		}
		// Ship twice from the same source to expose per-source stability.
		again, err := engine.Mutate(template, polymorph.Context{Source: attacker, Instance: uint64(i + 100)})
		if err != nil {
			log.Fatal(err)
		}
		ft := pe.ExtractFeatures(raw)
		ft2 := pe.ExtractFeatures(again)
		stable := "changes"
		if ft.MD5 == ft2.MD5 {
			stable = "stable"
		}
		fmt.Printf("  attacker %-15s md5=%s... (re-ship: %s) size=%d sections=%s\n",
			attacker, ft.MD5[:10], stable, ft.Size, ft.SectionNames)
		seen[ft.MD5] = true
		size = ft.Size
	}
	fmt.Printf("  -> %d distinct MD5s across %d attackers; file size constant at %d bytes\n\n", len(seen), n, size)
}
