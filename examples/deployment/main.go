// Deployment: the paper's Figure 1 as running code. A central gateway
// owns the master ScriptGen FSM models; sensor processes connect over
// TCP, handle known activity locally, proxy unknown conversations to the
// gateway (the sample-factory path), and receive refined FSM snapshots
// back. Watch the deployment transition from "everything proxied" to
// "sensors autonomous".
//
//	go run ./examples/deployment
package main

import (
	"fmt"
	"log"
	"sync"

	"repro/internal/exploit"
	"repro/internal/sgnetd"
	"repro/internal/simrng"
)

func main() {
	gateway := sgnetd.NewGateway(3)
	addr, err := gateway.Start("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		_ = gateway.Close()
		gateway.Wait()
	}()
	fmt.Printf("gateway listening on %s\n\n", addr)

	// Three exploit implementations scan the deployment.
	vulnASN1, err := exploit.NewVulnerability("asn1-ms04007", 445, 3, 11)
	if err != nil {
		log.Fatal(err)
	}
	vulnDCOM, err := exploit.NewVulnerability("dcom-ms03026", 135, 3, 12)
	if err != nil {
		log.Fatal(err)
	}
	var impls []*exploit.Implementation
	for i, v := range []*exploit.Vulnerability{vulnASN1, vulnASN1, vulnDCOM} {
		impl, err := exploit.NewImplementation(v, fmt.Sprintf("impl-%d", i), uint64(100+i))
		if err != nil {
			log.Fatal(err)
		}
		impls = append(impls, impl)
	}
	ports := []int{445, 445, 135}

	// Six sensors, each its own goroutine and TCP connection, observing
	// 40 attacks each.
	const sensors = 6
	const attacksPerSensor = 40
	var wg sync.WaitGroup
	results := make([]sgnetd.SensorStats, sensors)
	for si := 0; si < sensors; si++ {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			sensor, err := sgnetd.Dial(addr.String(), fmt.Sprintf("sensor-%02d", si))
			if err != nil {
				log.Printf("sensor %d: %v", si, err)
				return
			}
			defer sensor.Close()
			r := simrng.New(uint64(si)).Stream("traffic")
			for i := 0; i < attacksPerSensor; i++ {
				k := r.Intn(len(impls))
				payload := make([]byte, 40+r.Intn(80))
				r.Read(payload)
				dialog := impls[k].Dialog(r, payload)
				if _, _, err := sensor.Handle(ports[k], dialog.ClientMessages()); err != nil {
					log.Printf("sensor %d: %v", si, err)
					return
				}
			}
			results[si] = sensor.Stats()
		}(si)
	}
	wg.Wait()

	fmt.Println("per-sensor traffic handling:")
	totalLocal, totalProxied := 0, 0
	for si, st := range results {
		fmt.Printf("  sensor-%02d: local=%2d proxied=%2d snapshots=%d\n",
			si, st.Local, st.Proxied, st.SnapshotsApplied)
		totalLocal += st.Local
		totalProxied += st.Proxied
	}
	gw := gateway.Stats()
	fmt.Printf("\ndeployment totals: %d conversations, %d handled autonomously (%.0f%%), %d proxied\n",
		totalLocal+totalProxied, totalLocal,
		100*float64(totalLocal)/float64(totalLocal+totalProxied), totalProxied)
	fmt.Printf("gateway: %d connections, %d oracle consultations, %d FSM edges matured, knowledge version %d\n",
		gw.Connections, gw.Observes, gw.NewEdges, gateway.Version())
	fmt.Println("\nthe trade-off of the paper's Section 3.1: rich interaction handled by a")
	fmt.Println("central oracle only until the FSMs mature, then cheap autonomous sensors.")
}
