// Quickstart: run the full reproduction pipeline on a small scenario and
// print the headline numbers plus the EPM feature table.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/report"
)

func main() {
	// A Scenario bundles every knob: landscape scale, deployment layout,
	// enrichment parameters, and EPM thresholds. SmallScenario runs in a
	// couple of seconds; DefaultScenario reproduces the paper's scale.
	scenario := core.SmallScenario()
	scenario.Seed = 7 // any seed works; equal seeds reproduce exactly

	res, err := core.Run(scenario)
	if err != nil {
		log.Fatal(err)
	}

	events, samples, executable, e, p, m, b := res.Counts()
	fmt.Print(report.BigPicture(report.Counts{
		Events: events, Samples: samples, ExecutableSamples: executable,
		EClusters: e, PClusters: p, MClusters: m, BClusters: b,
	}))
	fmt.Println()

	// Table 1: the per-dimension features and how many invariant values
	// the (10 instances / 3 attackers / 3 sensors) thresholds discovered.
	fmt.Print(report.Table1(res.E, res.P, res.M))
	fmt.Println()

	// Each E/P/M cluster carries its classification pattern; wildcards
	// mark the features the attackers randomize.
	fmt.Println("three largest M-clusters:")
	for i, c := range res.M.Clusters {
		if i >= 3 {
			break
		}
		fmt.Printf("  M%d: %d events, pattern %s\n", c.ID, c.Size(), c.Pattern)
	}
}
