// Transfer: the π pipeline end to end. Encode a shellcode carrying
// download instructions, recover them with the Nepenthes-style analyzer,
// perform the emulated protocol transfer (with a deliberately induced
// truncation on the second run), and extract the static features of
// whatever the honeypot stored — showing where the corpus's corrupted
// samples come from.
//
//	go run ./examples/transfer
package main

import (
	"fmt"
	"log"

	"repro/internal/download"
	"repro/internal/netmodel"
	"repro/internal/pe"
	"repro/internal/shellcode"
	"repro/internal/simrng"
)

func main() {
	rng := simrng.New(7)
	r := rng.Stream("example")

	// The malware binary the attacker wants delivered.
	binary := buildSample(rng)
	fmt.Printf("attacker-side binary: %d bytes, md5 %s\n\n",
		len(binary), pe.ExtractFeatures(binary).MD5[:12])

	// The shellcode carries the download instructions, obfuscated behind
	// a decoder stub.
	spec := shellcode.Spec{
		Protocol:    "ftp",
		Interaction: shellcode.Pull,
		Port:        21,
		Filename:    "ftpupd.exe",
	}
	attacker := netmodel.MustParseIP("198.51.100.7")
	sc, err := shellcode.Encode(spec, attacker, r)
	if err != nil {
		log.Fatal(err)
	}
	action, err := shellcode.Analyze(sc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("analyzer recovered: %s %s from %s:%d, file %q\n\n",
		action.Interaction, action.Protocol, action.Source, action.Port, action.Filename)

	// A clean transfer.
	run := func(title string, fm shellcode.FailureModel) {
		stored, transcript, err := download.Run(action, binary, fm, r)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("== %s (%s) ==\n", title, transcript.Outcome)
		for _, m := range transcript.Messages {
			arrow := "->"
			if m.Dir == download.Received {
				arrow = "<-"
			}
			fmt.Printf("  %s %-22s %d bytes\n", arrow, m.Note, len(m.Data))
		}
		ft := pe.ExtractFeatures(stored)
		fmt.Printf("stored %d bytes; libmagic: %q; executable: %v\n\n", ft.Size, ft.Magic, ft.IsPE)
	}
	run("clean transfer", shellcode.FailureModel{})
	run("truncated transfer", shellcode.FailureModel{TruncateProb: 1})
}

func buildSample(rng *simrng.Source) []byte {
	r := rng.Stream("binary")
	text := make([]byte, 24*1024)
	data := make([]byte, 8*1024)
	r.Read(text)
	r.Read(data)
	img := &pe.Image{
		Machine:     pe.MachineI386,
		Subsystem:   pe.SubsystemGUI,
		LinkerMajor: 9, LinkerMinor: 2,
		OSMajor: 6, OSMinor: 4,
		Sections: []pe.Section{
			{Name: ".text", Data: text, Characteristics: pe.SectionCode | pe.SectionExecute | pe.SectionRead},
			{Name: ".data", Data: data, Characteristics: pe.SectionInitializedData | pe.SectionRead | pe.SectionWrite},
		},
		Imports: []pe.Import{{DLL: "KERNEL32.dll", Symbols: []string{"GetProcAddress", "LoadLibraryA"}}},
	}
	raw, err := img.Build()
	if err != nil {
		log.Fatal(err)
	}
	return raw
}
