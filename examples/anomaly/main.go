// Anomaly: the Section 4.2 walkthrough. Detect single-sample B-cluster
// artifacts by combining the static (M) and behavioral (B) perspectives,
// inspect the supporting evidence (AV labels, propagation coordinates,
// the per-source polymorphic cluster), and heal the artifacts by
// re-executing the affected samples.
//
//	go run ./examples/anomaly
package main

import (
	"fmt"
	"log"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/epm"
	"repro/internal/report"
)

func main() {
	res, err := core.Run(core.SmallScenario())
	if err != nil {
		log.Fatal(err)
	}

	// Step 1: find the size-1 B-clusters whose static cluster says they
	// should have landed somewhere bigger.
	rep, err := analysis.FindSize1Anomalies(res.Dataset, res.E, res.P, res.B, res.CrossMap)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(report.Figure4(rep))
	fmt.Println()

	// Step 2: the anomalies share propagation strategy and AV naming —
	// strong evidence they are clustering artifacts, not new families.
	if len(rep.Anomalous) == 0 {
		fmt.Println("no anomalies in this scenario")
		return
	}
	a := rep.Anomalous[0]
	fmt.Printf("example artifact: sample %s\n", a.MD5[:12])
	fmt.Printf("  singleton B-cluster B%d, but its M-cluster M%d holds %d samples,\n",
		a.BCluster, a.MCluster, a.MClusterSize)
	fmt.Printf("  %d of which share B-cluster B%d\n\n", a.DominantBSize, a.DominantB)

	// Step 3: the per-source polymorphic cluster (the paper's M-cluster
	// 13): almost fully invariant pattern, MD5 wildcarded, and multiple
	// B-clusters caused by its distribution site's lifecycle.
	for _, c := range res.M.Clusters {
		wild := 0
		for _, v := range c.Pattern.Values {
			if v == epm.Wildcard {
				wild++
			}
		}
		if c.Size() >= 10 && wild == 1 && c.Pattern.Values[0] == epm.Wildcard && c.Pattern.Values[7] == "92" {
			fmt.Print(report.MClusterPattern(res.M, c.ID))
			fmt.Printf("B-clusters of this M-cluster: %d (environment-dependent behaviour)\n\n",
				len(res.CrossMap.MtoB[c.ID]))
			break
		}
	}

	// Step 4: heal by re-execution. The fragility that produced the
	// artifact is stochastic, so a handful of re-runs recovers the true
	// profile for most samples.
	healed, tried := 0, 0
	for _, art := range rep.Anomalous {
		tried++
		if _, ok, err := res.Pipeline.Reexecute(res.Dataset, art.MD5, 5); err == nil && ok {
			healed++
		}
		if tried == 25 {
			break // a sample of the population is enough for the demo
		}
	}
	fmt.Printf("re-execution healing: %d of %d artifacts recovered a stable profile\n", healed, tried)
}
