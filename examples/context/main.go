// Context: the Section 4.3 walkthrough. Use the propagation context the
// honeypots recorded — attacker distribution over the IP space, activity
// timelines, and C&C correlation — to tell worm-like and bot-like
// behaviour apart and to surface the botnet infrastructure of Table 2.
//
//	go run ./examples/context
package main

import (
	"fmt"
	"log"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/report"
)

func main() {
	res, err := core.Run(core.SmallScenario())
	if err != nil {
		log.Fatal(err)
	}

	// B-clusters that split across several M-clusters are where the
	// propagation context earns its keep: are the static variants patches
	// of one worm codebase, or separately herded botnets?
	multi := res.CrossMap.MultiMBClusters(res.B)
	if len(multi) == 0 {
		log.Fatal("no multi-M B-cluster in this scenario")
	}

	for i, bIdx := range multi {
		if i >= 2 {
			break
		}
		ctx, err := analysis.PropagationContext(res.Dataset, res.M, res.B, res.CrossMap, bIdx)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(report.Figure5(ctx, 8))

		// The verdict the paper draws from the same evidence: widespread,
		// steady populations mean an autonomously spreading worm; compact,
		// bursty populations mean coordinated (bot) behaviour.
		wf := ctx.WidespreadFraction()
		bursty := 0
		for _, mc := range ctx.PerM {
			if mc.Bursty() {
				bursty++
			}
		}
		switch {
		case wf >= 0.5:
			fmt.Printf("verdict: worm-like (widespread fraction %.2f, %d/%d bursty)\n\n", wf, bursty, len(ctx.PerM))
		default:
			fmt.Printf("verdict: bot-like (widespread fraction %.2f, %d/%d bursty)\n\n", wf, bursty, len(ctx.PerM))
		}
	}

	// Table 2: recover the C&C infrastructure from the behavioral
	// profiles and correlate it with the static clusters.
	rows, err := analysis.IRCCorrelation(res.Dataset, res.CrossMap)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(report.Table2(rows))
}
