// Benchmarks regenerating every table and figure of the paper's
// evaluation section, plus the ablation benches called out in DESIGN.md.
//
// The table/figure benches measure the cost of regenerating the artifact
// from an already-simulated dataset (the analysis is what the paper's
// pipeline re-runs); BenchmarkBigPicture measures the full pipeline.
// Custom metrics report the headline quantities so `go test -bench` output
// doubles as a summary of the reproduction.
package repro

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/analysis"
	"repro/internal/bcluster"
	"repro/internal/benchdata"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/epm"
	"repro/internal/julisch"
	"repro/internal/pe"
	"repro/internal/polymorph"
	"repro/internal/validity"
)

var (
	pipelineOnce sync.Once
	pipelineRes  *core.Results
	pipelineErr  error
)

// pipeline runs the small scenario once and shares it across benches.
func pipeline(b *testing.B) *core.Results {
	b.Helper()
	pipelineOnce.Do(func() {
		pipelineRes, pipelineErr = core.Run(core.SmallScenario())
	})
	if pipelineErr != nil {
		b.Fatal(pipelineErr)
	}
	return pipelineRes
}

// BenchmarkBigPicture regenerates the §4.1 headline counts: the complete
// pipeline from landscape generation to all four clusterings.
func BenchmarkBigPicture(b *testing.B) {
	skipPaperScale(b)
	b.ReportAllocs()
	var res *core.Results
	for i := 0; i < b.N; i++ {
		var err error
		res, err = core.Run(core.SmallScenario())
		if err != nil {
			b.Fatal(err)
		}
	}
	events, samples, executable, e, p, m, bc := res.Counts()
	b.ReportMetric(float64(events), "events")
	b.ReportMetric(float64(samples), "samples")
	b.ReportMetric(float64(executable), "executable")
	b.ReportMetric(float64(e), "E-clusters")
	b.ReportMetric(float64(p), "P-clusters")
	b.ReportMetric(float64(m), "M-clusters")
	b.ReportMetric(float64(bc), "B-clusters")
}

// skipPaperScale keeps the heavy pipeline benchmarks out of short mode,
// where the race-detector CI step (go test -race -short -bench .) would
// otherwise multiply their cost by the instrumentation overhead.
func skipPaperScale(b *testing.B) {
	b.Helper()
	if testing.Short() {
		b.Skip("paper-scale benchmark; skipped under -short (race CI)")
	}
}

// BenchmarkPipelineParallelism measures the end-to-end pipeline at
// pinned worker counts. Every level reports the same headline counts
// (the run is deterministic under the seed); only the wall clock moves.
func BenchmarkPipelineParallelism(b *testing.B) {
	skipPaperScale(b)
	for _, par := range []int{1, 2, 4, 0} {
		par := par
		name := fmt.Sprintf("parallelism-%d", par)
		if par == 0 {
			name = "parallelism-max"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			var res *core.Results
			for i := 0; i < b.N; i++ {
				s := core.SmallScenario()
				s.Parallelism = par
				var err error
				res, err = core.Run(s)
				if err != nil {
					b.Fatal(err)
				}
			}
			_, _, _, e, p, m, bc := res.Counts()
			b.ReportMetric(float64(e+p+m+bc), "clusters")
		})
	}
}

// BenchmarkTable1Invariants regenerates Table 1: invariant discovery and
// classification over all three EPM dimensions.
func BenchmarkTable1Invariants(b *testing.B) {
	res := pipeline(b)
	th := epm.DefaultThresholds()
	eps := res.Dataset.EpsilonInstances()
	pis := res.Dataset.PiInstances()
	mus := res.Dataset.MuInstances()
	b.ReportAllocs()
	b.ResetTimer()
	var total int
	for i := 0; i < b.N; i++ {
		e, err := epm.Run(dataset.EpsilonSchema, eps, th)
		if err != nil {
			b.Fatal(err)
		}
		p, err := epm.Run(dataset.PiSchema, pis, th)
		if err != nil {
			b.Fatal(err)
		}
		m, err := epm.Run(dataset.MuSchema, mus, th)
		if err != nil {
			b.Fatal(err)
		}
		total = e.TotalInvariants() + p.TotalInvariants() + m.TotalInvariants()
	}
	b.ReportMetric(float64(total), "invariants")
}

// BenchmarkFigure3Relationships regenerates the E→P→M→B relationship
// graph with the paper's >=30-event filter.
func BenchmarkFigure3Relationships(b *testing.B) {
	res := pipeline(b)
	b.ReportAllocs()
	b.ResetTimer()
	var g *analysis.RelationGraph
	for i := 0; i < b.N; i++ {
		var err error
		g, err = analysis.BuildRelationGraph(res.Dataset, res.E, res.P, res.M, res.B, res.CrossMap, 30)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(g.MNodes)), "M-nodes")
	b.ReportMetric(float64(analysis.EdgeCount(g.MB)), "MB-edges")
}

// BenchmarkFigure4Size1 regenerates the size-1 B-cluster anomaly report.
func BenchmarkFigure4Size1(b *testing.B) {
	res := pipeline(b)
	b.ReportAllocs()
	b.ResetTimer()
	var rep *analysis.Size1Report
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = analysis.FindSize1Anomalies(res.Dataset, res.E, res.P, res.B, res.CrossMap)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rep.Size1B), "size-1")
	b.ReportMetric(float64(len(rep.Anomalous)), "anomalous")
}

// BenchmarkFigure5Context regenerates the propagation-context view of the
// largest multi-M B-cluster.
func BenchmarkFigure5Context(b *testing.B) {
	res := pipeline(b)
	multi := res.CrossMap.MultiMBClusters(res.B)
	if len(multi) == 0 {
		b.Skip("no multi-M B-cluster")
	}
	b.ReportAllocs()
	b.ResetTimer()
	var rep *analysis.ContextReport
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = analysis.PropagationContext(res.Dataset, res.M, res.B, res.CrossMap, multi[0])
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(rep.PerM)), "M-contexts")
}

// BenchmarkTable2IRC regenerates the IRC C&C correlation.
func BenchmarkTable2IRC(b *testing.B) {
	res := pipeline(b)
	b.ReportAllocs()
	b.ResetTimer()
	var rows []analysis.IRCRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = analysis.IRCCorrelation(res.Dataset, res.CrossMap)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(rows)), "channels")
}

// BenchmarkLSHvsExact is the scalability ablation behind the B-clustering
// design (Bayer et al. NDSS'09): LSH candidate pruning vs the naive
// O(n²) comparison, at increasing corpus sizes. The corpora come from
// internal/benchdata so cmd/benchjson measures the identical workload;
// `make bench-json` serializes this trajectory to BENCH_bcluster.json.
//
// Benchmark state is reset per iteration inside bcluster (profiles cache
// their FeatureSet, so the first iteration pays the interning cost and
// later ones measure the clustering hot path, matching the pipeline,
// which also builds each profile's set exactly once).
func BenchmarkLSHvsExact(b *testing.B) {
	skipPaperScale(b)
	cfg := bcluster.DefaultConfig()
	for _, n := range benchdata.LSHSizes {
		inputs := benchdata.Profiles(n)
		b.Run(fmt.Sprintf("lsh-%d", n), func(b *testing.B) {
			b.ReportAllocs()
			var stats bcluster.Stats
			for i := 0; i < b.N; i++ {
				res, err := bcluster.Run(inputs, cfg)
				if err != nil {
					b.Fatal(err)
				}
				stats = res.Stats
			}
			b.ReportMetric(float64(stats.CandidatePairs), "pairs")
			b.ReportMetric(float64(stats.Links), "links")
		})
	}
	for _, n := range benchdata.ExactSizes {
		inputs := benchdata.Profiles(n)
		b.Run(fmt.Sprintf("exact-%d", n), func(b *testing.B) {
			b.ReportAllocs()
			var stats bcluster.Stats
			for i := 0; i < b.N; i++ {
				res, err := bcluster.RunExact(inputs, cfg)
				if err != nil {
					b.Fatal(err)
				}
				stats = res.Stats
			}
			b.ReportMetric(float64(stats.CandidatePairs), "pairs")
			b.ReportMetric(float64(stats.Links), "links")
		})
	}
}

// BenchmarkInvariantThresholds measures the sensitivity of invariant
// discovery to the (instances, attackers, sensors) thresholds the paper
// fixes at (10, 3, 3).
func BenchmarkInvariantThresholds(b *testing.B) {
	res := pipeline(b)
	mus := res.Dataset.MuInstances()
	for _, th := range []epm.Thresholds{
		{MinInstances: 3, MinAttackers: 2, MinSensors: 2},
		{MinInstances: 10, MinAttackers: 3, MinSensors: 3},
		{MinInstances: 30, MinAttackers: 5, MinSensors: 5},
	} {
		th := th
		b.Run(fmt.Sprintf("i%d-a%d-s%d", th.MinInstances, th.MinAttackers, th.MinSensors), func(b *testing.B) {
			b.ReportAllocs()
			var m *epm.Clustering
			for i := 0; i < b.N; i++ {
				var err error
				m, err = epm.Run(dataset.MuSchema, mus, th)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(m.TotalInvariants()), "invariants")
			b.ReportMetric(float64(len(m.Clusters)), "clusters")
		})
	}
}

// BenchmarkMostSpecificMatch measures pattern classification throughput
// against the discovered M patterns.
func BenchmarkMostSpecificMatch(b *testing.B) {
	res := pipeline(b)
	mus := res.Dataset.MuInstances()
	if len(mus) == 0 {
		b.Skip("no mu instances")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, ok := res.M.Classify(mus[i%len(mus)].Values); !ok {
			b.Fatal("classification failed")
		}
	}
}

// BenchmarkPolymorphResilience measures, per engine class, the fraction of
// mutated instances whose static features still match the family pattern
// — the property that makes EPM work against current engines.
func BenchmarkPolymorphResilience(b *testing.B) {
	template := &pe.Image{
		Machine:     pe.MachineI386,
		Subsystem:   pe.SubsystemGUI,
		LinkerMajor: 9, LinkerMinor: 2,
		OSMajor: 6, OSMinor: 4,
		Sections: []pe.Section{
			{Name: ".text", Data: make([]byte, 40960), Characteristics: pe.SectionCode | pe.SectionExecute | pe.SectionRead},
			{Name: ".data", Data: make([]byte, 8192), Characteristics: pe.SectionInitializedData | pe.SectionRead | pe.SectionWrite},
		},
		Imports: []pe.Import{{DLL: "KERNEL32.dll", Symbols: []string{"GetProcAddress", "LoadLibraryA"}}},
	}
	baseRaw, err := template.Build()
	if err != nil {
		b.Fatal(err)
	}
	base := pe.ExtractFeatures(baseRaw)

	for _, engine := range []polymorph.Engine{polymorph.None{}, polymorph.Allaple{Seed: 1}, polymorph.PerSource{Seed: 1}} {
		engine := engine
		b.Run(engine.Name(), func(b *testing.B) {
			b.ReportAllocs()
			matches := 0
			for i := 0; i < b.N; i++ {
				raw, err := engine.Mutate(template, polymorph.Context{Source: 10, Instance: uint64(i)})
				if err != nil {
					b.Fatal(err)
				}
				ft := pe.ExtractFeatures(raw)
				if ft.Size == base.Size && ft.SectionNames == base.SectionNames &&
					ft.LinkerVersion == base.LinkerVersion && ft.Kernel32Symbols == base.Kernel32Symbols {
					matches++
				}
			}
			b.ReportMetric(float64(matches)/float64(b.N), "pattern-match-rate")
		})
	}
}

// BenchmarkEPMvsJulisch compares EPM against full attribute-oriented
// induction (Julisch, TISSEC'03) — the technique EPM simplifies — on the
// μ dimension, reporting cluster counts and agreement with ground truth.
func BenchmarkEPMvsJulisch(b *testing.B) {
	res := pipeline(b)
	mus := res.Dataset.MuInstances()

	// Ground truth per event: the variant that shipped the sample.
	truth := make(map[string]string)
	for _, e := range res.Dataset.Events() {
		if e.HasSample() {
			truth[e.ID] = e.TruthVariant
		}
	}

	// Julisch attributes mirror the μ schema, with a numeric hierarchy on
	// the file size and flat hierarchies elsewhere.
	sizes := make([]string, 0, len(mus))
	for _, in := range mus {
		sizes = append(sizes, in.Values[1])
	}
	attrs := make([]julisch.Attribute, len(dataset.MuSchema.Features))
	for i, name := range dataset.MuSchema.Features {
		attrs[i] = julisch.Attribute{Name: name}
	}
	attrs[1].Hierarchy = julisch.SizeBuckets(sizes, 1024)
	jin := make([]julisch.Instance, len(mus))
	for i, in := range mus {
		jin[i] = julisch.Instance{ID: in.ID, Values: in.Values}
	}

	score := func(labels map[string]string) float64 {
		rep, err := validity.Compare(validity.GroupByLabel(labels), truth)
		if err != nil {
			b.Fatal(err)
		}
		return rep.F
	}

	b.Run("epm", func(b *testing.B) {
		b.ReportAllocs()
		var m *epm.Clustering
		for i := 0; i < b.N; i++ {
			var err error
			m, err = epm.Run(dataset.MuSchema, mus, epm.DefaultThresholds())
			if err != nil {
				b.Fatal(err)
			}
		}
		labels := make(map[string]string, len(mus))
		for _, in := range mus {
			labels[in.ID] = fmt.Sprintf("M%d", m.ClusterOf(in.ID))
		}
		b.ReportMetric(float64(len(m.Clusters)), "clusters")
		b.ReportMetric(score(labels), "F-vs-truth")
	})
	b.Run("julisch", func(b *testing.B) {
		b.ReportAllocs()
		var jr *julisch.Result
		for i := 0; i < b.N; i++ {
			var err error
			jr, err = julisch.Run(attrs, jin, 10)
			if err != nil {
				b.Fatal(err)
			}
		}
		labels := make(map[string]string, len(jin))
		for _, in := range jin {
			labels[in.ID] = fmt.Sprintf("J%d", jr.ClusterOf(in.ID))
		}
		b.ReportMetric(float64(len(jr.Clusters)), "clusters")
		b.ReportMetric(float64(jr.Generalizations), "generalizations")
		b.ReportMetric(score(labels), "F-vs-truth")
	})
}

// BenchmarkPeHashBaseline measures the peHash baseline (Wicherski,
// LEET'09 — the paper's related-work comparator) over a polymorphic
// corpus and reports its agreement with ground truth, next to EPM's.
func BenchmarkPeHashBaseline(b *testing.B) {
	res := pipeline(b)

	// Regenerate one instance per executable sample is unnecessary: the
	// dataset already stores the observed peHash per sample.
	truth := make(map[string]string)
	hashLabels := make(map[string]string)
	for _, s := range res.Dataset.Samples() {
		truth[s.MD5] = s.TruthVariant
		if s.PEHash != "" {
			hashLabels[s.MD5] = s.PEHash
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	var rep validity.Report
	for i := 0; i < b.N; i++ {
		groups := validity.GroupByLabel(hashLabels)
		var err error
		rep, err = validity.Compare(groups, truth)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rep.F, "pehash-F")
	b.ReportMetric(rep.AdjustedRand, "pehash-ARI")
}

// BenchmarkClusterValidity scores the EPM M-clustering against ground
// truth, the evaluation the paper could not run on real data.
func BenchmarkClusterValidity(b *testing.B) {
	res := pipeline(b)
	truth := make(map[string]string)
	for _, s := range res.Dataset.Samples() {
		truth[s.MD5] = s.TruthVariant
	}
	mLabels := make(map[string]string, len(res.CrossMap.SampleM))
	for md5, m := range res.CrossMap.SampleM {
		mLabels[md5] = fmt.Sprintf("M%d", m)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var rep validity.Report
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = validity.Compare(validity.GroupByLabel(mLabels), truth)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rep.F, "epm-F")
	b.ReportMetric(rep.AdjustedRand, "epm-ARI")
}

// BenchmarkReexecutionHealing measures the §4.2 healing procedure:
// re-running anomalous samples until a stable profile appears.
func BenchmarkReexecutionHealing(b *testing.B) {
	res := pipeline(b)
	rep, err := analysis.FindSize1Anomalies(res.Dataset, res.E, res.P, res.B, res.CrossMap)
	if err != nil {
		b.Fatal(err)
	}
	if len(rep.Anomalous) == 0 {
		b.Skip("no anomalies")
	}
	b.ReportAllocs()
	b.ResetTimer()
	healed := 0
	for i := 0; i < b.N; i++ {
		a := rep.Anomalous[i%len(rep.Anomalous)]
		if _, ok, err := res.Pipeline.Reexecute(res.Dataset, a.MD5, 5); err == nil && ok {
			healed++
		}
	}
	b.ReportMetric(float64(healed)/float64(b.N), "healed-rate")
}
