package malgen_test

import (
	"bytes"
	"encoding/json"
	"runtime"
	"testing"

	"repro/internal/malgen"
	"repro/internal/sgnet"
	"repro/internal/simrng"
)

// eventStream generates the landscape (attacker families included) and
// simulates the deployment exactly as core.Prepare seeds them, returning
// the serialized event stream.
func eventStream(t *testing.T, cfg malgen.Config) []byte {
	t.Helper()
	rng := simrng.New(2010)
	l, err := malgen.Generate(cfg, rng.Child("landscape"))
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	sim, err := sgnet.Simulate(l, sgnet.DefaultConfig(), rng.Child("sgnet"))
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	b, err := json.Marshal(sim.Dataset.Events())
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	return b
}

// TestEventStreamDeterminism is the poison-benchmark reproducibility
// gate: the same seed and config must yield a byte-identical event
// stream across repeated runs and across GOMAXPROCS values, with
// attacker families enabled.
func TestEventStreamDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("repeated small-scenario simulations")
	}
	cfg := malgen.SmallConfig()
	cfg.Poison.Rate = 0.1
	cfg.Poison.Campaigns = 1

	base := eventStream(t, cfg)
	if !bytes.Contains(base, []byte(`"poison00-bridge`)) {
		t.Fatal("poisoned stream contains no bridge events")
	}
	if !bytes.Contains(base, []byte(`"poison00-dilute`)) {
		t.Fatal("poisoned stream contains no dilution events")
	}
	if got := eventStream(t, cfg); !bytes.Equal(base, got) {
		t.Fatal("event stream differs between identical runs")
	}
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for _, procs := range []int{1, 2} {
		runtime.GOMAXPROCS(procs)
		if got := eventStream(t, cfg); !bytes.Equal(base, got) {
			t.Fatalf("event stream differs at GOMAXPROCS=%d", procs)
		}
	}

	// The rate-zero stream must match a config that never had the knob.
	clean := eventStream(t, malgen.SmallConfig())
	cfgZero := malgen.SmallConfig()
	cfgZero.Poison = malgen.PoisonConfig{}
	if got := eventStream(t, cfgZero); !bytes.Equal(clean, got) {
		t.Fatal("rate-zero stream differs from pre-knob stream")
	}
	if bytes.Contains(clean, []byte("poison")) {
		t.Fatal("rate-zero stream contains poison events")
	}
}
