package malgen

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/behavior"
	"repro/internal/sandbox"
	"repro/internal/simrng"
)

// poisonLandscape generates the small landscape with one attacker
// campaign and resolves the families the geometry tests inspect.
func poisonLandscape(t *testing.T) (*Landscape, Config) {
	t.Helper()
	cfg := SmallConfig()
	cfg.Poison.Rate = 0.1
	l, err := Generate(cfg, simrng.New(2010))
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return l, cfg
}

func familyByName(t *testing.T, l *Landscape, name string) *Family {
	t.Helper()
	for _, f := range l.Families {
		if f.Name == name {
			return f
		}
	}
	t.Fatalf("family %q not generated", name)
	return nil
}

// TestPoisonBridgeGeometry checks the attack's load-bearing property
// empirically: executed inside the campaign window, adjacent bridge
// steps clear the 0.7 clustering threshold, steps two apart fall below
// it (the links are thin), and the chain endpoints reproduce the victim
// profiles exactly.
func TestPoisonBridgeGeometry(t *testing.T) {
	l, cfg := poisonLandscape(t)
	bridge := familyByName(t, l, "poison00-bridge")
	if len(bridge.Variants) != BridgeSteps {
		t.Fatalf("bridge variants = %d, want %d", len(bridge.Variants), BridgeSteps)
	}
	ai, bi := cfg.poisonVictims(0)
	famA := familyByName(t, l, fmt.Sprintf("bot%02d", ai))
	famB := familyByName(t, l, fmt.Sprintf("bot%02d", bi))

	at := bridge.Variants[0].Activity[0].Start.Add(48 * time.Hour)
	sb := sandbox.New(l.Env, 0, simrng.New(7))
	prof := func(p *behavior.Program) *behavior.Profile {
		// Victim programs carry a small fragility; profile geometry is
		// about healthy executions, so strip it.
		clean := *p
		clean.Fragility = 0
		rep := sb.Run(&clean, at, p.Name)
		if rep.Degraded {
			t.Fatalf("degraded run for %s", p.Name)
		}
		return rep.Profile
	}

	victimA := prof(famA.Variants[0].Program)
	victimB := prof(famB.Variants[0].Program)
	if j := victimA.Jaccard(victimB); j >= 0.7 {
		t.Fatalf("victim profiles overlap too much (J=%.3f): no merge to force", j)
	}
	if victimA.Len() != 6 || victimB.Len() != 6 {
		t.Fatalf("victim profile sizes = %d, %d; want 6 (in-window bot profile)", victimA.Len(), victimB.Len())
	}

	steps := make([]*behavior.Profile, BridgeSteps)
	for k, v := range bridge.Variants {
		steps[k] = prof(v.Program)
	}
	if j := steps[0].Jaccard(victimA); j != 1 {
		t.Errorf("step 0 vs victim A: J=%.3f, want 1 (anchor)", j)
	}
	if j := steps[BridgeSteps-1].Jaccard(victimB); j != 1 {
		t.Errorf("last step vs victim B: J=%.3f, want 1 (anchor)", j)
	}
	for k := 0; k+1 < BridgeSteps; k++ {
		if j := steps[k].Jaccard(steps[k+1]); j < 0.7 {
			t.Errorf("steps %d-%d: J=%.3f, want >= 0.7 (chain link)", k, k+1, j)
		}
	}
	for k := 0; k+2 < BridgeSteps; k++ {
		if j := steps[k].Jaccard(steps[k+2]); j >= 0.7 {
			t.Errorf("steps %d-%d: J=%.3f, want < 0.7 (thin links only)", k, k+2, j)
		}
	}
}

// TestPoisonDilutionGeometry checks that every dilution variant links
// into the victim cluster (J >= 0.7) without linking to its siblings
// (J < 0.7), the shape the anomaly-gated admission defense detects.
func TestPoisonDilutionGeometry(t *testing.T) {
	l, cfg := poisonLandscape(t)
	dilute := familyByName(t, l, "poison00-dilute")
	if len(dilute.Variants) != DilutionVariants {
		t.Fatalf("dilution variants = %d, want %d", len(dilute.Variants), DilutionVariants)
	}
	ai, _ := cfg.poisonVictims(0)
	famA := familyByName(t, l, fmt.Sprintf("bot%02d", ai))

	at := dilute.Variants[0].Activity[0].Start.Add(48 * time.Hour)
	sb := sandbox.New(l.Env, 0, simrng.New(7))
	prof := func(p *behavior.Program) *behavior.Profile {
		clean := *p
		clean.Fragility = 0
		return sb.Run(&clean, at, p.Name).Profile
	}
	victim := prof(famA.Variants[0].Program)
	profiles := make([]*behavior.Profile, len(dilute.Variants))
	for d, v := range dilute.Variants {
		profiles[d] = prof(v.Program)
		if j := profiles[d].Jaccard(victim); j < 0.7 || j == 1 {
			t.Errorf("dilution %d vs victim: J=%.3f, want in [0.7, 1)", d, j)
		}
	}
	for i := range profiles {
		for j := i + 1; j < len(profiles); j++ {
			if jac := profiles[i].Jaccard(profiles[j]); jac >= 0.7 {
				t.Errorf("dilution %d vs %d: J=%.3f, want < 0.7", i, j, jac)
			}
		}
	}
}

// TestPoisonRateZeroInert asserts that the zero-valued poison knob
// changes nothing: the landscape matches a generation that never had the
// knob, family by family, and no attacker families exist.
func TestPoisonRateZeroInert(t *testing.T) {
	base, err := Generate(SmallConfig(), simrng.New(2010))
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	cfg := SmallConfig()
	cfg.Poison = PoisonConfig{}
	again, err := Generate(cfg, simrng.New(2010))
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if len(base.Families) != len(again.Families) {
		t.Fatalf("family counts differ: %d vs %d", len(base.Families), len(again.Families))
	}
	for _, f := range again.Families {
		if IsPoisonFamily(f.Name) {
			t.Errorf("rate-zero landscape contains attacker family %s", f.Name)
		}
	}
}

func TestPoisonHelpers(t *testing.T) {
	cases := []struct {
		family, client string
	}{
		{"poison00-bridge", "poison00"},
		{"poison03-dilute", "poison03"},
		{"bot01", ""},
		{"allaple", ""},
	}
	for _, c := range cases {
		if got := PoisonClient(c.family); got != c.client {
			t.Errorf("PoisonClient(%q) = %q, want %q", c.family, got, c.client)
		}
	}
	if !IsPoisonFamily("poison00-bridge") || IsPoisonFamily("bot00") {
		t.Error("IsPoisonFamily misclassifies")
	}
}
