// Adversarial attacker families ("Poisoning Behavioral Malware
// Clustering", Biggio, Rieck et al.). The attacker controls a set of
// infected hosts and submits crafted samples through the ordinary event
// stream, aiming to corrupt the Bayer-style LSH behavioral clustering:
//
//   - A *bridge chain* interpolates the behavioral feature set of one
//     victim bot family into another's, one feature swap per step. With
//     six-feature victim profiles, adjacent steps share 5 of 7 features
//     (Jaccard 5/7 ≈ 0.714, just above the 0.7 clustering threshold)
//     while steps two apart share 4 of 8 (0.5, below it), so the chain
//     is a sequence of thin links that single-linkage clustering follows
//     from one victim cluster core to the other, merging them.
//
//   - A *dilution family* replays one victim's full profile plus two
//     junk features per variant (Jaccard 6/8 = 0.75 against the victim,
//     0.6 between dilution variants), so every dilution sample links
//     into the victim cluster but not to its siblings, padding the
//     victim cluster with attacker-labeled noise.
//
// The victim profile includes environment-dependent features (a live IRC
// C&C and its payload fetch), so the generator extends the victims' C&C
// availability windows to cover the campaign window: the attacker keeps
// the victim infrastructure observable while its samples execute. Victim
// behavior is unchanged — victim samples only run inside their own
// windows, which were already live.
//
// Everything is derived from the dedicated "poison" rng stream, which is
// only created when Poison.Rate > 0: a rate-zero landscape is
// byte-identical to one generated without this file.
package malgen

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"repro/internal/behavior"
	"repro/internal/netmodel"
	"repro/internal/polymorph"
	"repro/internal/simtime"
)

// PoisonFamilyPrefix starts every attacker family name.
const PoisonFamilyPrefix = "poison"

// BridgeSteps is the number of programs in a bridge chain: one per
// feature swap between two six-feature victim profiles, endpoints
// included.
const BridgeSteps = 7

// DilutionVariants is the number of near-duplicate dilution variants per
// campaign.
const DilutionVariants = 6

// IsPoisonFamily reports whether a ground-truth family name denotes an
// attacker family.
func IsPoisonFamily(name string) bool {
	return strings.HasPrefix(name, PoisonFamilyPrefix)
}

// PoisonClient maps an attacker family name to the client identity its
// events are attributed to ("poison00-bridge" and "poison00-dilute" share
// client "poison00"); it returns "" for non-attacker families, whose
// events arrive through the trusted loopback client.
func PoisonClient(family string) string {
	if !IsPoisonFamily(family) {
		return ""
	}
	if i := strings.IndexByte(family, '-'); i > 0 {
		return family[:i]
	}
	return family
}

// slotRef addresses one of the six feature slots of a victim profile:
// side 0 is victim A, side 1 is victim B. Slot 3 is the IRC connect,
// which also executes the C&C payload (slots 4 and 5) — the sandbox
// dedupes features, so a step may carry a slot directly and via the C&C.
type slotRef struct{ side, slot int }

// bridgeChain is the interpolation schedule. Row k's feature set differs
// from row k+1's by exactly one feature (sets of six; Jaccard 5/7), and
// from row k+2's by two (4/8). Slot 3 implies slots 4 and 5 of the same
// side, which constrains the swap order: the payload features (4, 5) of
// the target side are introduced first and those of the source side are
// re-emitted directly after its IRC connect is dropped.
var bridgeChain = [BridgeSteps][]slotRef{
	{{0, 0}, {0, 1}, {0, 2}, {0, 3}},         // {a1 a2 a3 a4 a5 a6} = victim A
	{{0, 1}, {0, 2}, {0, 3}, {1, 4}},         // a1 -> b5
	{{0, 2}, {0, 3}, {1, 4}, {1, 5}},         // a2 -> b6
	{{0, 3}, {1, 3}},                         // a3 -> b4: both C&Cs
	{{0, 4}, {0, 5}, {1, 3}, {1, 0}},         // a4 -> b1
	{{0, 4}, {0, 5}, {1, 3}, {1, 0}, {1, 1}}, // placeholder, fixed below
	{{1, 0}, {1, 1}, {1, 2}, {1, 3}},         // {b1 b2 b3 b4 b5 b6} = victim B
}

func init() {
	// Step 5 = {a6 b4 b5 b6 b1 b2}: drop a5, keep a6 direct.
	bridgeChain[5] = []slotRef{{0, 5}, {1, 3}, {1, 0}, {1, 1}}
}

// victimSlots extracts the six feature-producing ops of a bot family's
// in-window profile: its four program ops (file, registry, mutex, IRC
// connect) plus direct replicas of the two C&C payload ops the IRC
// connect triggers (network scan, update download). Replica ops emit the
// same (kind, object) profile features as their payload-executed
// counterparts.
func (g *generator) victimSlots(fam *Family, botIdx int) ([6]behavior.Op, error) {
	var slots [6]behavior.Op
	prog := fam.Variants[0].Program
	find := func(kind behavior.OpKind) (behavior.Op, error) {
		for _, op := range prog.Ops {
			if op.Kind == kind {
				return op, nil
			}
		}
		return behavior.Op{}, fmt.Errorf("malgen: victim %s has no %v op", fam.Name, kind)
	}
	var err error
	for i, kind := range []behavior.OpKind{behavior.OpCreateFile, behavior.OpSetRegistry, behavior.OpCreateMutex, behavior.OpIRCConnect} {
		if slots[i], err = find(kind); err != nil {
			return slots, err
		}
	}
	irc := slots[3]
	slots[4] = behavior.Op{Kind: behavior.OpScanNetwork, Port: g.vuln(botIdx).Port}
	slots[5] = behavior.Op{Kind: behavior.OpHTTPDownload, Host: irc.Host, Path: "/update.bin"}
	return slots, nil
}

// poisonVictims picks a campaign's victim bot pair. Candidates exclude
// bot00-style families whose mutex feature is volatile (a per-run random
// object name would blur the interpolation geometry) and the families
// whose C&C goes dark before their last burst (extending their windows
// could change late victim executions).
func (c Config) poisonVictims(campaign int) (a, b int) {
	var cand []int
	for i := 1; i < c.BotFamilies; i++ {
		if i%4 != 0 && i%3 != 0 {
			cand = append(cand, i)
		}
	}
	a = cand[(2*campaign)%len(cand)]
	b = cand[(2*campaign+1)%len(cand)]
	return a, b
}

// poisonFamilies appends the attacker campaigns. It runs after every
// legitimate family so the victim programs exist and the event-volume
// budget can be computed; appending keeps the deployment scheduler's
// per-variant draws for legitimate variants unchanged.
func (g *generator) poisonFamilies() error {
	p := g.cfg.Poison
	if !p.enabled() {
		return nil
	}
	r := g.rng.Stream("poison")

	// Expected legitimate event volume, in WeeklyRate x active-week
	// units; the attacker budget makes poison events Rate of the total.
	var total float64
	for _, f := range g.l.Families {
		for _, v := range f.Variants {
			var weeks float64
			for _, iv := range v.Activity {
				weeks += iv.Duration().Hours() / (24 * 7)
			}
			total += v.WeeklyRate * weeks
		}
	}
	campaigns := p.campaigns()
	perCampaign := p.Rate / (1 - p.Rate) * total / float64(campaigns)

	for c := 0; c < campaigns; c++ {
		if err := g.poisonCampaign(c, r, perCampaign); err != nil {
			return err
		}
	}
	return nil
}

func (g *generator) poisonCampaign(c int, r *rand.Rand, budget float64) error {
	ai, bi := g.cfg.poisonVictims(c)
	famA, famB := g.botFamily(ai), g.botFamily(bi)
	if famA == nil || famB == nil {
		return fmt.Errorf("malgen: poison campaign %d: victim bot families missing", c)
	}
	slotsA, err := g.victimSlots(famA, ai)
	if err != nil {
		return err
	}
	slotsB, err := g.victimSlots(famB, bi)
	if err != nil {
		return err
	}
	slots := [2][6]behavior.Op{slotsA, slotsB}

	// The campaign runs after both victims' first bursts, so their
	// cluster cores are established before bridge samples arrive — the
	// regime the merge-resistance defense is designed for.
	start := simtime.WeekIndex(famA.Variants[0].Activity[0].Start)
	if s := simtime.WeekIndex(famB.Variants[0].Activity[0].Start); s > start {
		start = s
	}
	start += 2
	if max := simtime.WeekCount() - 13; start > max {
		start = max
	}
	if start < 0 {
		start = 0
	}
	window := weekSpan(start, start+12)
	weeks := window.Duration().Hours() / (24 * 7)

	// Keep both victims' C&C channels observable during the campaign.
	for side, fam := range []*Family{famA, famB} {
		irc := slots[side][3]
		server := netmodel.MustParseIP(irc.Host)
		if !g.l.Env.ExtendIRC(server, irc.Port, irc.Channel, window) {
			return fmt.Errorf("malgen: poison campaign %d: victim %s IRC channel not registered", c, fam.Name)
		}
		if !g.l.Env.ExtendHTTP(irc.Host, "/update.bin", window) {
			return fmt.Errorf("malgen: poison campaign %d: victim %s update path not registered", c, fam.Name)
		}
	}

	// 60/40 bridge/dilution budget split, floored so every bridge step
	// reliably produces samples (a chain with a missing step is no
	// bridge at all).
	stepTotal := 0.6 * budget / BridgeSteps
	if stepTotal < 4 {
		stepTotal = 4
	}
	dilTotal := 0.4 * budget / DilutionVariants
	if dilTotal < 3 {
		dilTotal = 3
	}

	newPop := func(expect float64) netmodel.Population {
		size := 2 + int(math.Ceil(expect))
		if size > 40 {
			size = 40
		}
		return netmodel.NewPopulation(r, size, netmodel.Widespread, 0)
	}

	bridge := &Family{
		Name:   fmt.Sprintf("%s%02d-bridge", PoisonFamilyPrefix, c),
		Class:  ClassPoison,
		AVName: avNamePool[(c+4)%len(avNamePool)],
		Impl:   famA.Impl,
		Spec:   famA.Spec,
	}
	engine := polymorph.PerSource{Seed: r.Uint64()}
	tpl := botTemplate(r)
	for k, refs := range bridgeChain {
		ops := make([]behavior.Op, len(refs))
		for i, ref := range refs {
			ops[i] = slots[ref.side][ref.slot]
		}
		bridge.Variants = append(bridge.Variants, &Variant{
			Name:       fmt.Sprintf("%s/v%03d", bridge.Name, k),
			FamilyName: bridge.Name,
			Class:      ClassPoison,
			Template:   tpl,
			Engine:     engine,
			Program:    &behavior.Program{Name: fmt.Sprintf("%s/step%d", bridge.Name, k), Ops: ops},
			Population: newPop(stepTotal),
			Activity:   []simtime.Interval{window},
			WeeklyRate: stepTotal / weeks,
		})
	}
	g.l.Families = append(g.l.Families, bridge)

	dilute := &Family{
		Name:   fmt.Sprintf("%s%02d-dilute", PoisonFamilyPrefix, c),
		Class:  ClassPoison,
		AVName: avNamePool[(c+5)%len(avNamePool)],
		Impl:   famA.Impl,
		Spec:   famA.Spec,
	}
	dilEngine := polymorph.PerSource{Seed: r.Uint64()}
	dilTpl := botTemplate(r)
	for d := 0; d < DilutionVariants; d++ {
		ops := []behavior.Op{slotsA[0], slotsA[1], slotsA[2], slotsA[3],
			{Kind: behavior.OpCreateFile, Path: fmt.Sprintf(`C:\WINDOWS\TEMP\upd-%02d-%02d-a.tmp`, c, d)},
			{Kind: behavior.OpCreateFile, Path: fmt.Sprintf(`C:\WINDOWS\TEMP\upd-%02d-%02d-b.tmp`, c, d)},
		}
		dilute.Variants = append(dilute.Variants, &Variant{
			Name:       fmt.Sprintf("%s/v%03d", dilute.Name, d),
			FamilyName: dilute.Name,
			Class:      ClassPoison,
			Template:   dilTpl,
			Engine:     dilEngine,
			Program:    &behavior.Program{Name: fmt.Sprintf("%s/dup%d", dilute.Name, d), Ops: ops},
			Population: newPop(dilTotal),
			Activity:   []simtime.Interval{window},
			WeeklyRate: dilTotal / weeks,
		})
	}
	g.l.Families = append(g.l.Families, dilute)
	return nil
}

// botFamily resolves a bot family by index, or nil.
func (g *generator) botFamily(i int) *Family {
	name := fmt.Sprintf("bot%02d", i)
	for _, f := range g.l.Families {
		if f.Name == name {
			return f
		}
	}
	return nil
}
