// Package malgen generates the ground-truth malware landscape the
// deployment simulation observes.
//
// The paper's dataset cannot be obtained (real attacks, real binaries), so
// the reproduction synthesizes a landscape configured to exhibit the
// phenomena the paper reports:
//
//   - An Allaple-class worm: one exploit implementation, PUSH-based
//     propagation on TCP 9988, a per-instance size-preserving polymorphic
//     engine, and a long lineage of patched/recompiled variants (different
//     sizes and linker versions) that share one of two behaviour
//     generations — many M-clusters collapsing onto two B-clusters, with
//     fragile sandbox executions feeding the size-1 B-cluster artifact
//     population of Figure 4.
//
//   - A per-source polymorphic family (the paper's M-cluster 13): mutation
//     keyed by the attacker address, the same propagation vector as the
//     worm, and behaviour that depends on the availability of its
//     distribution site ("iliketay.cn") and downstream IRC C&C.
//
//   - IRC bot families: small, localized populations with bursty
//     coordinated activity, multiple patched variants per botnet, and C&C
//     servers concentrated in shared /24s with recurring room names
//     (Table 2).
//
//   - Dropper families fetching from central repositories, and a long
//     tail of rare families observed a handful of times.
package malgen

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/behavior"
	"repro/internal/exploit"
	"repro/internal/netmodel"
	"repro/internal/pe"
	"repro/internal/polymorph"
	"repro/internal/sandbox"
	"repro/internal/shellcode"
	"repro/internal/simrng"
	"repro/internal/simtime"
)

// Class is the ground-truth family class.
type Class int

// Family classes.
const (
	// ClassWorm is a self-propagating worm (widespread population, long
	// activity, no C&C).
	ClassWorm Class = iota + 1
	// ClassBot is an IRC-controlled bot (localized population, bursty
	// coordinated activity).
	ClassBot
	// ClassDropper is a downloader fetching from a central repository.
	ClassDropper
	// ClassRare is an infrequent family observed a handful of times.
	ClassRare
	// ClassPoison is an adversarial family crafted to corrupt behavioral
	// clustering (bridging and dilution attacks, Biggio/Rieck-style).
	ClassPoison
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case ClassWorm:
		return "worm"
	case ClassBot:
		return "bot"
	case ClassDropper:
		return "dropper"
	case ClassRare:
		return "rare"
	case ClassPoison:
		return "poison"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Variant is one concrete codebase: the unit that EPM's M dimension should
// rediscover as a cluster.
type Variant struct {
	// Name is the unique ground-truth variant identifier.
	Name string
	// FamilyName is the owning family.
	FamilyName string
	// Class is the family class.
	Class Class
	// Template is the PE codebase image.
	Template *pe.Image
	// Engine is the per-instance polymorphic engine.
	Engine polymorph.Engine
	// Program is the behaviour executed in the sandbox.
	Program *behavior.Program
	// Population is the set of infected hosts shipping this variant.
	Population netmodel.Population
	// Activity is the set of time windows the population scans in.
	Activity []simtime.Interval
	// WeeklyRate is the expected number of deployment-wide hits per active
	// week.
	WeeklyRate float64
	// TargetLocations restricts the variant's scanning to this many
	// deployment locations (0 = untargeted: any sensor). Bots scan
	// specific networks; worms sweep the whole space.
	TargetLocations int
}

// Family groups variants sharing a codebase lineage and propagation
// strategy.
type Family struct {
	// Name is the unique ground-truth family identifier.
	Name string
	// Class is the family class.
	Class Class
	// AVName is the AV vendor's base name for the family.
	AVName string
	// Impl is the exploit implementation the family propagates with.
	Impl *exploit.Implementation
	// Spec is the shellcode download specification.
	Spec shellcode.Spec
	// Variants are the family's codebases.
	Variants []*Variant
}

// ChannelTruth records one C&C channel assignment for validating Table 2.
type ChannelTruth struct {
	Server netmodel.IP
	Port   int
	Room   string
	// Variants lists the ground-truth variant names commanded through the
	// channel.
	Variants []string
}

// Landscape is the generated ground truth.
type Landscape struct {
	Families []*Family
	// Vulnerabilities are the synthetic vulnerable services.
	Vulnerabilities []*exploit.Vulnerability
	// Env is the external-world environment sandbox executions run
	// against.
	Env *sandbox.Environment
	// Channels is the C&C ground truth.
	Channels []ChannelTruth

	variantsByName map[string]*Variant
}

// Variant resolves a ground-truth variant by name, or nil.
func (l *Landscape) Variant(name string) *Variant {
	return l.variantsByName[name]
}

// Variants returns every variant in deterministic (family, variant) order.
func (l *Landscape) Variants() []*Variant {
	var out []*Variant
	for _, f := range l.Families {
		out = append(out, f.Variants...)
	}
	return out
}

// Config scales the landscape.
type Config struct {
	// WormVariants is the size of the Allaple-class variant lineage.
	WormVariants int
	// WormPopMin/Max bound the per-variant infected population size
	// (log-uniform).
	WormPopMin, WormPopMax int
	// WormHitRate is the expected weekly deployment-wide hits contributed
	// per infected host.
	WormHitRate float64
	// WormFragility is the per-execution probability of a degraded
	// sandbox run for worm samples.
	WormFragility float64
	// PerSourcePopulation is the infected population of the per-source
	// polymorphic family.
	PerSourcePopulation int
	// BotFamilies is the number of IRC bot families.
	BotFamilies int
	// BotMaxVariants bounds the patched variants per bot family (at least
	// 1, uniform in [1, BotMaxVariants]... the generator guarantees at
	// least 2 for half the families so that Table 2 shows same-channel
	// multi-cluster rows).
	BotMaxVariants int
	// DropperFamilies is the number of central-repository families.
	DropperFamilies int
	// RareFamilies is the size of the long tail.
	RareFamilies int
	// Poison configures the adversarial attacker families. The zero value
	// disables poisoning entirely: no attacker families are generated and
	// no randomness is consumed, so a Rate-zero landscape is byte-identical
	// to one generated before this knob existed.
	Poison PoisonConfig
}

// PoisonConfig scales the adversarial attacker families (see poison.go).
type PoisonConfig struct {
	// Rate is the fraction of total expected event volume contributed by
	// attacker families (0 disables, must stay < 0.5).
	Rate float64
	// Campaigns is the number of independent attacker campaigns, each
	// with its own victim pair, bridge chain, dilution family, and client
	// identity. Zero means 1 when Rate > 0.
	Campaigns int
}

func (p PoisonConfig) enabled() bool { return p.Rate > 0 }

func (p PoisonConfig) campaigns() int {
	if p.Campaigns <= 0 {
		return 1
	}
	return p.Campaigns
}

// DefaultConfig targets the scale of the paper's 17-month dataset.
func DefaultConfig() Config {
	return Config{
		WormVariants:        175,
		WormPopMin:          12,
		WormPopMax:          60,
		WormHitRate:         0.016,
		WormFragility:       0.21,
		PerSourcePopulation: 45,
		BotFamilies:         18,
		BotMaxVariants:      4,
		DropperFamilies:     30,
		RareFamilies:        45,
	}
}

// SmallConfig is a reduced landscape for tests and examples.
func SmallConfig() Config {
	return Config{
		WormVariants:        12,
		WormPopMin:          5,
		WormPopMax:          60,
		WormHitRate:         0.02,
		WormFragility:       0.17,
		PerSourcePopulation: 12,
		BotFamilies:         3,
		BotMaxVariants:      3,
		DropperFamilies:     3,
		RareFamilies:        5,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.WormVariants < 1 {
		return fmt.Errorf("malgen: WormVariants must be >= 1, got %d", c.WormVariants)
	}
	if c.WormPopMin < 3 || c.WormPopMax < c.WormPopMin {
		return fmt.Errorf("malgen: invalid worm population bounds [%d, %d]", c.WormPopMin, c.WormPopMax)
	}
	if c.WormHitRate <= 0 {
		return fmt.Errorf("malgen: WormHitRate must be positive")
	}
	if c.WormFragility < 0 || c.WormFragility > 1 {
		return fmt.Errorf("malgen: WormFragility outside [0,1]")
	}
	if c.PerSourcePopulation < 3 {
		return fmt.Errorf("malgen: PerSourcePopulation must be >= 3")
	}
	if c.BotFamilies < 0 || c.DropperFamilies < 0 || c.RareFamilies < 0 {
		return fmt.Errorf("malgen: family counts must be non-negative")
	}
	if c.BotFamilies > 0 && c.BotMaxVariants < 1 {
		return fmt.Errorf("malgen: BotMaxVariants must be >= 1")
	}
	if c.Poison.Rate < 0 || c.Poison.Rate >= 0.5 {
		return fmt.Errorf("malgen: Poison.Rate must be in [0, 0.5), got %g", c.Poison.Rate)
	}
	if c.Poison.Campaigns < 0 {
		return fmt.Errorf("malgen: Poison.Campaigns must be non-negative")
	}
	if c.Poison.enabled() && c.BotFamilies < 3 {
		return fmt.Errorf("malgen: poisoning needs BotFamilies >= 3 (victim pairs avoid bot00), got %d", c.BotFamilies)
	}
	return nil
}

// Well-known constants of the default scenario, mirroring the paper's
// examples.
const (
	// WormFamilyName is the ground-truth name of the Allaple-class worm.
	WormFamilyName = "allaple"
	// PerSourceFamilyName is the ground-truth name of the M-cluster-13
	// analogue.
	PerSourceFamilyName = "iliketay"
	// PerSourceDomain is the malware distribution domain of the
	// per-source family.
	PerSourceDomain = "iliketay.cn"
	// WormPushPort is the PUSH port of the worm's shellcode (the paper's
	// P-pattern 45 pushes on TCP 9988).
	WormPushPort = 9988
)

// IRC servers of the default scenario: the literal infrastructure of
// Table 2 — several servers concentrated in shared /24s.
var ircServers = []string{
	"67.43.226.242",
	"67.43.232.34",
	"67.43.232.35",
	"67.43.232.36",
	"67.43.232.36",
	"72.10.172.211",
	"72.10.172.218",
	"83.68.16.6",
}

// IRC room names of the default scenario: recurring names and name
// patterns, as the paper observes.
var ircRooms = []string{"#las6", "#kok8", "#kok6", "#kham", "#kok2", "#ns", "#siwa", "#las2"}

// Fixed filename pool for PULL-based downloads (the paper discovers 22
// filename invariants).
var filenamePool = []string{
	"ftpupd.exe", "winlogin.exe", "svchost32.exe", "msnet.exe", "lsass32.exe",
	"crss.exe", "winupd.exe", "msupd32.exe", "sysconf.exe", "netmgr.exe",
	"wmiprvse.exe", "spoolsrv.exe", "mssign.exe", "dllhost32.exe", "winsys.exe",
	"ntkrnl.exe", "smss32.exe", "taskmgr32.exe", "udpsvc.exe", "regsvc32.exe",
	"iexplore1.exe", "msgsvc.exe",
}

// AV base names assigned round-robin to bot/dropper/rare families.
var avNamePool = []string{
	"W32.Spybot", "W32.Randex", "Backdoor.Sdbot", "W32.Gaobot", "W32.Korgo",
	"Backdoor.IRC.Bot", "W32.Licum", "Trojan.Dropper", "Downloader.Agent",
	"W32.Pilleuz", "W32.Protoride", "Backdoor.Ranky",
}

// Generate builds the landscape. All randomness derives from rng, so equal
// (config, rng seed) pairs produce identical landscapes.
func Generate(cfg Config, rng *simrng.Source) (*Landscape, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g := &generator{
		cfg: cfg,
		rng: rng,
		l: &Landscape{
			Env:            sandbox.NewEnvironment(),
			variantsByName: make(map[string]*Variant),
		},
	}
	if err := g.vulnerabilities(); err != nil {
		return nil, err
	}
	if err := g.wormFamily(); err != nil {
		return nil, err
	}
	if err := g.perSourceFamily(); err != nil {
		return nil, err
	}
	if err := g.botFamilies(); err != nil {
		return nil, err
	}
	if err := g.dropperFamilies(); err != nil {
		return nil, err
	}
	if err := g.rareFamilies(); err != nil {
		return nil, err
	}
	if err := g.poisonFamilies(); err != nil {
		return nil, err
	}
	for _, f := range g.l.Families {
		for _, v := range f.Variants {
			g.l.variantsByName[v.Name] = v
		}
	}
	return g.l, nil
}

type generator struct {
	cfg cfg
	rng *simrng.Source
	l   *Landscape
}

type cfg = Config

// vulnerabilities defines the three exploited services (the paper's ε
// dimension discovers 3 destination-port invariants).
func (g *generator) vulnerabilities() error {
	r := g.rng.Stream("vulns")
	specs := []struct {
		name   string
		port   int
		stages int
	}{
		{"asn1-ms04007", 445, 3},
		{"netbios-ms03049", 139, 2},
		{"dcom-ms03026", 135, 3},
	}
	for _, s := range specs {
		v, err := exploit.NewVulnerability(s.name, s.port, s.stages, r.Uint64())
		if err != nil {
			return err
		}
		g.l.Vulnerabilities = append(g.l.Vulnerabilities, v)
	}
	return nil
}

func (g *generator) vuln(i int) *exploit.Vulnerability {
	return g.l.Vulnerabilities[i%len(g.l.Vulnerabilities)]
}

// wormTemplate builds the base Allaple-class codebase.
func wormTemplate(r *rand.Rand) *pe.Image {
	text := make([]byte, 24*1024)
	data := make([]byte, 16*1024)
	rsrc := make([]byte, 12*1024)
	r.Read(text)
	r.Read(data)
	r.Read(rsrc)
	return &pe.Image{
		Machine:     pe.MachineI386,
		Subsystem:   pe.SubsystemGUI,
		LinkerMajor: 6, LinkerMinor: 0,
		OSMajor: 4, OSMinor: 0,
		Sections: []pe.Section{
			{Name: ".text", Data: text, Characteristics: pe.SectionCode | pe.SectionExecute | pe.SectionRead},
			{Name: ".data", Data: data, Characteristics: pe.SectionInitializedData | pe.SectionRead | pe.SectionWrite},
			{Name: ".rsrc", Data: rsrc, Characteristics: pe.SectionInitializedData | pe.SectionRead},
		},
		Imports: []pe.Import{
			{DLL: "KERNEL32.dll", Symbols: []string{"GetProcAddress", "LoadLibraryA", "CreateFileA", "WriteFile"}},
			{DLL: "WS2_32.dll", Symbols: []string{"socket", "connect", "send"}},
		},
	}
}

// wormBehavior builds one of the worm's two behaviour generations.
func wormBehavior(gen int, fragility float64) *behavior.Program {
	ops := []behavior.Op{
		{Kind: behavior.OpCreateFile, Path: `C:\WINDOWS\system32\urdvxc.exe`},
		{Kind: behavior.OpSetRegistry, Path: `HKLM\SYSTEM\CurrentControlSet\Services\urdvxc`},
		{Kind: behavior.OpInfectHTML, Path: "local-html"},
		{Kind: behavior.OpScanNetwork, Port: 445},
	}
	if gen == 2 {
		ops = append(ops,
			behavior.Op{Kind: behavior.OpCreateMutex, Path: "jhdherukfgpwfk"},
			behavior.Op{Kind: behavior.OpDoS, Host: "www.targeted-site.example"},
		)
	}
	return &behavior.Program{
		Name:      fmt.Sprintf("%s-gen%d", WormFamilyName, gen),
		Ops:       ops,
		Fragility: fragility,
	}
}

// wormFamily builds the Allaple-class lineage.
func (g *generator) wormFamily() error {
	r := g.rng.Stream("worm")
	impl, err := exploit.NewImplementation(g.vuln(0), WormFamilyName+"-impl", r.Uint64())
	if err != nil {
		return err
	}
	fam := &Family{
		Name:   WormFamilyName,
		Class:  ClassWorm,
		AVName: "W32.Rahack",
		Impl:   impl,
		Spec: shellcode.Spec{
			Protocol:    "csend",
			Interaction: shellcode.Push,
			Port:        WormPushPort,
		},
	}

	gen1 := wormBehavior(1, g.cfg.WormFragility)
	gen2 := wormBehavior(2, g.cfg.WormFragility)

	// Variant lineage: each new variant derives from a random ancestor by
	// a patch (size change), a recompilation (linker change), or an API
	// addition — the code evolution the paper infers from M-cluster
	// diversity under B-cluster stability.
	templates := []*pe.Image{wormTemplate(r)}
	for len(templates) < g.cfg.WormVariants {
		parent := templates[r.Intn(len(templates))]
		var child *pe.Image
		switch x := r.Float64(); {
		case x < 0.70:
			child = polymorph.Patch(parent, r)
		case x < 0.92:
			child = polymorph.Recompile(parent, r)
		default:
			child = polymorph.AddImport("KERNEL32.dll", "CreateMutexA")(parent, r)
		}
		templates = append(templates, child)
	}

	for i, tpl := range templates {
		prog := gen1
		if i%2 == 1 {
			prog = gen2
		}
		pop := netmodel.NewPopulation(r, logUniform(r, g.cfg.WormPopMin, g.cfg.WormPopMax), netmodel.Widespread, 0)
		start := r.Intn(16)
		end := 52 + r.Intn(simtime.WeekCount()-52)
		fam.Variants = append(fam.Variants, &Variant{
			Name:       fmt.Sprintf("%s/v%03d", WormFamilyName, i),
			FamilyName: WormFamilyName,
			Class:      ClassWorm,
			Template:   tpl,
			Engine:     polymorph.Allaple{Seed: r.Uint64()},
			Program:    prog,
			Population: pop,
			Activity:   []simtime.Interval{weekSpan(start, end)},
			WeeklyRate: float64(len(pop.Hosts)) * g.cfg.WormHitRate,
		})
	}
	g.l.Families = append(g.l.Families, fam)
	return nil
}

// perSourceFamily builds the M-cluster-13 analogue: per-attacker
// polymorphism, the worm's propagation vector, and behaviour gated on the
// availability of its distribution site.
func (g *generator) perSourceFamily() error {
	r := g.rng.Stream("persource")
	worm := g.l.Families[0]

	// The exact static pattern of the paper's example: 3 declared sections
	// (.text, rdata, .data), linker 9.2, OS version 6.4, one imported DLL
	// with GetProcAddress/LoadLibraryA.
	text := make([]byte, 40*1024)
	rdata := make([]byte, 8*1024)
	data := make([]byte, 9*1024)
	r.Read(text)
	r.Read(rdata)
	r.Read(data)
	tpl := &pe.Image{
		Machine:     pe.MachineI386,
		Subsystem:   pe.SubsystemGUI,
		LinkerMajor: 9, LinkerMinor: 2,
		OSMajor: 6, OSMinor: 4,
		Sections: []pe.Section{
			{Name: ".text", Data: text, Characteristics: pe.SectionCode | pe.SectionExecute | pe.SectionRead},
			{Name: "rdata", Data: rdata, Characteristics: pe.SectionInitializedData | pe.SectionRead},
			{Name: ".data", Data: data, Characteristics: pe.SectionInitializedData | pe.SectionRead | pe.SectionWrite},
		},
		Imports: []pe.Import{
			{DLL: "KERNEL32.dll", Symbols: []string{"GetProcAddress", "LoadLibraryA"}},
		},
	}

	// Distribution site lifecycle: component two disappears first, then
	// the DNS entry itself is removed ("the entry was probably removed
	// from the DNS database"), and the follow-up IRC server outlives both.
	siteIP := netmodel.MustParseIP("121.14.98.30")
	ircIP := netmodel.MustParseIP("121.14.98.31")
	dnsWindow := weekSpan(0, 56)
	compOneWindow := weekSpan(0, 56)
	compTwoWindow := weekSpan(0, 30)
	ircWindow := weekSpan(0, 62)

	comp1 := &behavior.Program{Name: "iliketay-comp1", Ops: []behavior.Op{
		{Kind: behavior.OpCreateFile, Path: `C:\WINDOWS\TEMP\~tmp1.exe`},
		{Kind: behavior.OpSetRegistry, Path: `HKLM\...\Run\tay1`},
	}}
	comp2 := &behavior.Program{Name: "iliketay-comp2", Ops: []behavior.Op{
		{Kind: behavior.OpCreateFile, Path: `C:\WINDOWS\TEMP\~tmp2.exe`},
	}}
	ircCommands := &behavior.Program{Name: "iliketay-commands", Ops: []behavior.Op{
		{Kind: behavior.OpHTTPDownload, Host: "update.iliketay.cn", Path: "/x.bin"},
		{Kind: behavior.OpScanNetwork, Port: 445},
	}}

	g.l.Env.AddDNS(PerSourceDomain, siteIP, dnsWindow)
	g.l.Env.AddDNS("update.iliketay.cn", siteIP, dnsWindow)
	g.l.Env.AddHTTP(PerSourceDomain, "/one.exe", comp1, compOneWindow)
	g.l.Env.AddHTTP(PerSourceDomain, "/two.exe", comp2, compTwoWindow)
	g.l.Env.AddHTTP("update.iliketay.cn", "/x.bin", nil, dnsWindow)
	g.l.Env.AddIRC(ircIP, 6667, "#tay", ircCommands, ircWindow)

	prog := &behavior.Program{
		Name: PerSourceFamilyName,
		Ops: []behavior.Op{
			{Kind: behavior.OpCreateFile, Path: `C:\WINDOWS\system32\taycore.exe`},
			{Kind: behavior.OpDNSResolve, Host: PerSourceDomain, OnFailSkip: 3},
			{Kind: behavior.OpHTTPDownload, Host: PerSourceDomain, Path: "/one.exe"},
			{Kind: behavior.OpHTTPDownload, Host: PerSourceDomain, Path: "/two.exe"},
			{Kind: behavior.OpIRCConnect, Host: ircIP.String(), Port: 6667, Channel: "#tay"},
		},
	}

	fam := &Family{
		Name:   PerSourceFamilyName,
		Class:  ClassWorm,
		AVName: "W32.Pilleuz",
		Impl:   worm.Impl, // shared propagation vector with the worm
		Spec:   worm.Spec,
	}
	// One codebase, three infection cohorts staggered over the study: the
	// cohorts' first-seen instants straddle the distribution-site lifecycle
	// (both components / one component / DNS gone), so the single M-cluster
	// legitimately splits into several B-clusters as in the paper.
	engine := polymorph.PerSource{Seed: r.Uint64()}
	cohortPop := g.cfg.PerSourcePopulation / 3
	if cohortPop < 3 {
		cohortPop = 3
	}
	cohorts := []simtime.Interval{weekSpan(2, 28), weekSpan(31, 54), weekSpan(57, 70)}
	truth := ChannelTruth{Server: ircIP, Port: 6667, Room: "#tay"}
	for i, window := range cohorts {
		pop := netmodel.NewPopulation(r, cohortPop, netmodel.Widespread, 0)
		v := &Variant{
			Name:       fmt.Sprintf("%s/v%03d", PerSourceFamilyName, i),
			FamilyName: PerSourceFamilyName,
			Class:      ClassWorm,
			Template:   tpl,
			Engine:     engine,
			Program:    prog,
			Population: pop,
			Activity:   []simtime.Interval{window},
			WeeklyRate: float64(len(pop.Hosts)) * 0.15,
		}
		fam.Variants = append(fam.Variants, v)
		truth.Variants = append(truth.Variants, v.Name)
	}
	g.l.Families = append(g.l.Families, fam)
	g.l.Channels = append(g.l.Channels, truth)
	return nil
}

// Section layouts and import sets bot/dropper codebases draw from; the
// diversity feeds the μ-dimension invariant counts of Table 1 (section
// names, imported DLLs, Kernel32 symbol sets).
var sectionLayouts = [][]string{
	{".text", ".data"},
	{".text", ".rdata", ".data"},
	{".text", ".data", ".rsrc"},
	{"CODE", "DATA"},
	{"UPX0", "UPX1"},
	{".text", ".bss", ".data"},
}

var importSets = [][]pe.Import{
	{
		{DLL: "KERNEL32.dll", Symbols: []string{"GetProcAddress", "LoadLibraryA", "CreateMutexA", "ExitProcess"}},
		{DLL: "WS2_32.dll", Symbols: []string{"socket", "connect", "send", "recv"}},
		{DLL: "ADVAPI32.dll", Symbols: []string{"RegSetValueExA"}},
	},
	{
		{DLL: "KERNEL32.dll", Symbols: []string{"GetProcAddress", "LoadLibraryA", "CreateFileA", "WriteFile", "WinExec"}},
		{DLL: "WININET.dll", Symbols: []string{"InternetOpenA", "InternetOpenUrlA"}},
	},
	{
		{DLL: "KERNEL32.dll", Symbols: []string{"GetProcAddress", "LoadLibraryA", "GetModuleHandleA"}},
		{DLL: "USER32.dll", Symbols: []string{"MessageBoxA"}},
		{DLL: "WS2_32.dll", Symbols: []string{"socket", "connect"}},
	},
	{
		{DLL: "KERNEL32.dll", Symbols: []string{"GetProcAddress", "LoadLibraryA", "VirtualAlloc", "CreateProcessA"}},
		{DLL: "ADVAPI32.dll", Symbols: []string{"RegSetValueExA", "RegOpenKeyA"}},
	},
	{
		{DLL: "KERNEL32.dll", Symbols: []string{"GetProcAddress", "LoadLibraryA", "Sleep", "CopyFileA"}},
		{DLL: "WS2_32.dll", Symbols: []string{"socket", "connect", "send", "recv", "gethostbyname"}},
		{DLL: "WININET.dll", Symbols: []string{"InternetOpenA"}},
	},
}

// botTemplate builds a bot family's base codebase. Section content lengths
// use 512-byte steps (the PE file alignment) so patched variants across
// families rarely collide on file size.
func botTemplate(r *rand.Rand) *pe.Image {
	layout := simrng.Pick(r, sectionLayouts)
	versions := []struct{ maj, min uint8 }{{6, 0}, {7, 1}, {8, 0}}
	v := simrng.Pick(r, versions)
	subsystem := uint16(pe.SubsystemGUI)
	if r.Intn(7) == 0 {
		subsystem = pe.SubsystemCUI
	}
	img := &pe.Image{
		Machine:     pe.MachineI386,
		Subsystem:   subsystem,
		LinkerMajor: v.maj, LinkerMinor: v.min,
		OSMajor: 4, OSMinor: 0,
	}
	for i, name := range layout {
		chars := uint32(pe.SectionInitializedData | pe.SectionRead | pe.SectionWrite)
		size := (8 + r.Intn(24)) * 512
		if i == 0 {
			chars = pe.SectionCode | pe.SectionExecute | pe.SectionRead
			size = (32 + r.Intn(48)) * 512
		}
		data := make([]byte, size)
		r.Read(data)
		img.Sections = append(img.Sections, pe.Section{Name: name, Data: data, Characteristics: chars})
	}
	for _, imp := range simrng.Pick(r, importSets) {
		img.Imports = append(img.Imports, pe.Import{
			DLL:     imp.DLL,
			Symbols: append([]string(nil), imp.Symbols...),
		})
	}
	return img
}

// botFamilies builds the IRC botnets of Table 2.
func (g *generator) botFamilies() error {
	r := g.rng.Stream("bots")
	for i := 0; i < g.cfg.BotFamilies; i++ {
		name := fmt.Sprintf("bot%02d", i)
		impl, err := exploit.NewImplementation(g.vuln(i), name+"-impl", r.Uint64())
		if err != nil {
			return err
		}

		server := netmodel.MustParseIP(ircServers[i%len(ircServers)])
		room := ircRooms[(i*3+i/len(ircRooms))%len(ircRooms)]

		protoChoices := []struct {
			proto       string
			port        int
			interaction shellcode.Interaction
		}{
			{"ftp", 21, shellcode.Pull},
			{"http", 80, shellcode.Pull},
			{"tftp", 69, shellcode.Pull},
			{"creceive", 5554, shellcode.Pull},
		}
		pc := protoChoices[i%len(protoChoices)]
		spec := shellcode.Spec{
			Protocol:    pc.proto,
			Interaction: pc.interaction,
			Port:        pc.port,
			Filename:    filenamePool[i%6],
		}
		if i%5 == 4 {
			spec.RandomFilename = true
		}

		fam := &Family{
			Name:   name,
			Class:  ClassBot,
			AVName: avNamePool[i%len(avNamePool)],
			Impl:   impl,
			Spec:   spec,
		}

		// Bursty coordinated activity: a handful of short windows.
		bursts := 2 + r.Intn(4)
		var windows []simtime.Interval
		wk := 2 + r.Intn(10)
		for b := 0; b < bursts && wk < simtime.WeekCount()-3; b++ {
			length := 1 + r.Intn(3)
			windows = append(windows, weekSpan(wk, wk+length))
			wk += length + 1 + r.Intn(12)
		}

		// The C&C serves commands during the early bursts only for a third
		// of the families, so that some samples execute after their C&C
		// went dark (the paper: "not all the samples were executed by
		// Anubis during the activity period of the C&C server").
		cncWindows := windows
		if i%3 == 0 && len(windows) > 1 {
			cncWindows = windows[:len(windows)-1]
		}
		commands := &behavior.Program{Name: name + "-commands", Ops: []behavior.Op{
			{Kind: behavior.OpScanNetwork, Port: g.vuln(i).Port},
			{Kind: behavior.OpHTTPDownload, Host: server.String(), Path: "/update.bin"},
		}}
		g.l.Env.AddIRC(server, 6667, room, commands, cncWindows...)
		g.l.Env.AddHTTP(server.String(), "/update.bin", nil, cncWindows...)

		prog := &behavior.Program{
			Name:      name,
			Fragility: 0.05,
			Ops: []behavior.Op{
				{Kind: behavior.OpCreateFile, Path: fmt.Sprintf(`C:\WINDOWS\system32\%s`, filenamePool[(i+7)%len(filenamePool)])},
				{Kind: behavior.OpSetRegistry, Path: fmt.Sprintf(`HKLM\...\Run\%s`, name)},
				{Kind: behavior.OpCreateMutex, Path: name + "-mtx", Volatile: i%4 == 0},
				{Kind: behavior.OpIRCConnect, Host: server.String(), Port: 6667, Channel: room},
			},
		}

		nVariants := 1 + r.Intn(g.cfg.BotMaxVariants)
		if i%2 == 0 && nVariants < 2 {
			nVariants = 2
		}
		// Bot builds are per-source-keyed (one MD5 per infected host), so
		// their B-clusters gather multiple samples per variant.
		var engine polymorph.Engine = polymorph.PerSource{Seed: r.Uint64()}
		base := botTemplate(r)
		truth := ChannelTruth{Server: server, Port: 6667, Room: room}
		for v := 0; v < nVariants; v++ {
			tpl := base
			if v > 0 {
				if r.Intn(2) == 0 {
					tpl = polymorph.Patch(base, r)
				} else {
					tpl = polymorph.Recompile(base, r)
				}
				base = tpl
			}
			pop := netmodel.NewPopulation(r, 6+r.Intn(20), netmodel.Localized, 1+r.Intn(3))
			vr := &Variant{
				Name:            fmt.Sprintf("%s/v%03d", name, v),
				FamilyName:      name,
				Class:           ClassBot,
				Template:        tpl,
				Engine:          engine,
				Program:         prog,
				Population:      pop,
				Activity:        windows,
				WeeklyRate:      float64(len(pop.Hosts)) * 0.35,
				TargetLocations: 2 + r.Intn(3),
			}
			fam.Variants = append(fam.Variants, vr)
			truth.Variants = append(truth.Variants, vr.Name)
		}
		g.l.Families = append(g.l.Families, fam)
		g.l.Channels = append(g.l.Channels, truth)
	}
	return nil
}

// dropperFamilies builds central-repository downloaders. Dropper families
// share a small pool of exploit implementations: the paper observes that
// "most malware variants seem to be sharing few distinct exploitation
// routines for their propagation".
func (g *generator) dropperFamilies() error {
	r := g.rng.Stream("droppers")
	const implPool = 12
	impls := make([]*exploit.Implementation, 0, implPool)
	for k := 0; k < implPool && k < g.cfg.DropperFamilies; k++ {
		impl, err := exploit.NewImplementation(g.vuln(k+1), fmt.Sprintf("dropper-impl%02d", k), r.Uint64())
		if err != nil {
			return err
		}
		impls = append(impls, impl)
	}
	for i := 0; i < g.cfg.DropperFamilies; i++ {
		name := fmt.Sprintf("dropper%02d", i)
		impl := impls[i%len(impls)]
		repo := netmodel.MustParseIP(fmt.Sprintf("85.%d.%d.%d", 10+i, 16+i*3%200, 10+i*7%200))
		host := fmt.Sprintf("cdn%02d.dist.example", i)
		spec := shellcode.Spec{
			Protocol:    []string{"http", "blink"}[i%2],
			Interaction: shellcode.Central,
			Port:        []int{80, 8080}[i%2],
			Filename:    filenamePool[i%5],
			Repository:  repo,
		}

		window := weekSpan(4+r.Intn(30), 40+r.Intn(simtime.WeekCount()-40))
		comp := &behavior.Program{Name: name + "-stage2", Ops: []behavior.Op{
			{Kind: behavior.OpCreateFile, Path: fmt.Sprintf(`C:\WINDOWS\TEMP\%s.tmp`, name)},
			{Kind: behavior.OpSetRegistry, Path: fmt.Sprintf(`HKLM\...\Run\%s`, name)},
		}}
		g.l.Env.AddDNS(host, repo, window)
		g.l.Env.AddHTTP(host, "/payload.bin", comp, window)

		prog := &behavior.Program{
			Name:      name,
			Fragility: 0.04,
			Ops: []behavior.Op{
				{Kind: behavior.OpCreateProcess, Path: name + ".exe"},
				{Kind: behavior.OpDNSResolve, Host: host, OnFailSkip: 1},
				{Kind: behavior.OpHTTPDownload, Host: host, Path: "/payload.bin"},
				{Kind: behavior.OpSleep, Seconds: 5},
			},
		}
		fam := &Family{
			Name:   name,
			Class:  ClassDropper,
			AVName: avNamePool[(i+5)%len(avNamePool)],
			Impl:   impl,
			Spec:   spec,
		}
		nVariants := 1 + i%2
		// Two thirds of the dropper families ship per-source builds, giving
		// their B-clusters more than one member.
		var engine polymorph.Engine = polymorph.None{}
		if i%3 != 2 {
			engine = polymorph.PerSource{Seed: r.Uint64()}
		}
		base := botTemplate(r)
		for v := 0; v < nVariants; v++ {
			tpl := base
			if v > 0 {
				tpl = polymorph.Patch(base, r)
			}
			pop := netmodel.NewPopulation(r, 15+r.Intn(50), netmodel.Widespread, 0)
			fam.Variants = append(fam.Variants, &Variant{
				Name:       fmt.Sprintf("%s/v%03d", name, v),
				FamilyName: name,
				Class:      ClassDropper,
				Template:   tpl,
				Engine:     engine,
				Program:    prog,
				Population: pop,
				Activity:   []simtime.Interval{window},
				WeeklyRate: float64(len(pop.Hosts)) * 0.025,
			})
		}
		g.l.Families = append(g.l.Families, fam)
	}
	return nil
}

// rareFamilies builds the long tail of infrequently observed samples.
func (g *generator) rareFamilies() error {
	r := g.rng.Stream("rares")
	for i := 0; i < g.cfg.RareFamilies; i++ {
		name := fmt.Sprintf("rare%02d", i)
		impl, err := exploit.NewImplementation(g.vuln(i), name+"-impl", r.Uint64())
		if err != nil {
			return err
		}
		spec := shellcode.Spec{
			Protocol:    []string{"ftp", "http", "tftp"}[i%3],
			Interaction: shellcode.Pull,
			Port:        []int{21, 80, 69}[i%3],
			Filename:    fmt.Sprintf("rare%02d.exe", i),
		}
		prog := &behavior.Program{
			Name: name,
			Ops: []behavior.Op{
				{Kind: behavior.OpCreateFile, Path: fmt.Sprintf(`C:\WINDOWS\%s.dll`, name)},
				{Kind: behavior.OpCreateMutex, Path: name},
				{Kind: behavior.OpSetRegistry, Path: fmt.Sprintf(`HKLM\...\%s`, name)},
			},
		}
		fam := &Family{
			Name:   name,
			Class:  ClassRare,
			AVName: avNamePool[(i+2)%len(avNamePool)],
			Impl:   impl,
			Spec:   spec,
		}
		pop := netmodel.NewPopulation(r, 1+r.Intn(2), netmodel.Localized, 1)
		start := 2 + r.Intn(simtime.WeekCount()-4)
		fam.Variants = append(fam.Variants, &Variant{
			Name:       name + "/v000",
			FamilyName: name,
			Class:      ClassRare,
			Template:   botTemplate(r),
			Engine:     polymorph.None{},
			Program:    prog,
			Population: pop,
			Activity:   []simtime.Interval{weekSpan(start, start+1)},
			WeeklyRate: 1.5 + r.Float64()*2,
		})
		g.l.Families = append(g.l.Families, fam)
	}
	return nil
}

// weekSpan returns the interval covering weeks [start, end), clamped to
// the study window.
func weekSpan(start, end int) simtime.Interval {
	if end > simtime.WeekCount() {
		end = simtime.WeekCount()
	}
	return simtime.Interval{Start: simtime.WeekStart(start), End: simtime.WeekStart(end)}
}

// logUniform samples an integer log-uniformly in [min, max].
func logUniform(r *rand.Rand, min, max int) int {
	lo, hi := math.Log(float64(min)), math.Log(float64(max))
	return int(math.Exp(lo + r.Float64()*(hi-lo)))
}
