package malgen

import (
	"testing"

	"repro/internal/netmodel"
	"repro/internal/pe"
	"repro/internal/polymorph"
	"repro/internal/simrng"
	"repro/internal/simtime"
)

func generate(t *testing.T, cfg Config, seed uint64) *Landscape {
	t.Helper()
	l, err := Generate(cfg, simrng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name    string
		mutate  func(*Config)
		wantErr bool
	}{
		{"default", func(c *Config) {}, false},
		{"small", func(c *Config) { *c = SmallConfig() }, false},
		{"zero worm variants", func(c *Config) { c.WormVariants = 0 }, true},
		{"bad pop bounds", func(c *Config) { c.WormPopMax = c.WormPopMin - 1 }, true},
		{"tiny pop min", func(c *Config) { c.WormPopMin = 1 }, true},
		{"zero hit rate", func(c *Config) { c.WormHitRate = 0 }, true},
		{"fragility too high", func(c *Config) { c.WormFragility = 1.5 }, true},
		{"per-source too small", func(c *Config) { c.PerSourcePopulation = 1 }, true},
		{"negative bots", func(c *Config) { c.BotFamilies = -1 }, true},
		{"bots without variants", func(c *Config) { c.BotMaxVariants = 0 }, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c := DefaultConfig()
			tt.mutate(&c)
			if err := c.Validate(); (err != nil) != tt.wantErr {
				t.Errorf("err = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestGenerateStructure(t *testing.T) {
	cfg := SmallConfig()
	l := generate(t, cfg, 1)

	wantFamilies := 2 + cfg.BotFamilies + cfg.DropperFamilies + cfg.RareFamilies
	if got := len(l.Families); got != wantFamilies {
		t.Fatalf("families = %d, want %d", got, wantFamilies)
	}
	if got := len(l.Vulnerabilities); got != 3 {
		t.Errorf("vulnerabilities = %d, want 3", got)
	}
	if l.Env == nil {
		t.Fatal("environment missing")
	}

	// The worm family is first, with the configured lineage size.
	worm := l.Families[0]
	if worm.Name != WormFamilyName || worm.Class != ClassWorm {
		t.Fatalf("first family = %s (%s)", worm.Name, worm.Class)
	}
	if got := len(worm.Variants); got != cfg.WormVariants {
		t.Errorf("worm variants = %d, want %d", got, cfg.WormVariants)
	}
	// PUSH-based propagation on the well-known port (P-pattern 45).
	if worm.Spec.Port != WormPushPort || worm.Spec.Interaction.String() != "PUSH" {
		t.Errorf("worm spec = %+v", worm.Spec)
	}
}

func TestWormLineageDiversity(t *testing.T) {
	l := generate(t, SmallConfig(), 2)
	worm := l.Families[0]
	sizes := map[int]bool{}
	linkers := map[int]bool{}
	gens := map[string]bool{}
	for _, v := range worm.Variants {
		raw, err := v.Template.Build()
		if err != nil {
			t.Fatalf("%s: %v", v.Name, err)
		}
		ft := pe.ExtractFeatures(raw)
		sizes[ft.Size] = true
		linkers[ft.LinkerVersion] = true
		gens[v.Program.Name] = true
		if v.Population.Distribution != netmodel.Widespread {
			t.Errorf("%s: worm population must be widespread", v.Name)
		}
	}
	if len(sizes) < len(worm.Variants)/2 {
		t.Errorf("only %d distinct sizes for %d variants", len(sizes), len(worm.Variants))
	}
	if len(linkers) < 2 {
		t.Errorf("lineage has no recompilations (linkers = %v)", linkers)
	}
	if len(gens) != 2 {
		t.Errorf("worm behaviour generations = %v, want exactly 2", gens)
	}
}

func TestPerSourceFamilyMatchesPaperPattern(t *testing.T) {
	l := generate(t, SmallConfig(), 3)
	fam := l.Families[1]
	if fam.Name != PerSourceFamilyName {
		t.Fatalf("second family = %s", fam.Name)
	}
	// Shares the worm's propagation vector.
	worm := l.Families[0]
	if fam.Impl != worm.Impl {
		t.Error("per-source family must share the worm's exploit implementation")
	}
	if fam.Spec != worm.Spec {
		t.Error("per-source family must share the worm's shellcode spec")
	}
	v := fam.Variants[0]
	if _, ok := v.Engine.(polymorph.PerSource); !ok {
		t.Errorf("engine = %T, want PerSource", v.Engine)
	}
	raw, err := v.Template.Build()
	if err != nil {
		t.Fatal(err)
	}
	ft := pe.ExtractFeatures(raw)
	if ft.LinkerVersion != 92 || ft.OSVersion != 64 {
		t.Errorf("linker/os = %d/%d, want 92/64", ft.LinkerVersion, ft.OSVersion)
	}
	if ft.Kernel32Symbols != "GetProcAddress,LoadLibraryA" {
		t.Errorf("kernel32 = %q", ft.Kernel32Symbols)
	}
	if ft.NumImportedDLLs != 1 {
		t.Errorf("dlls = %d, want 1", ft.NumImportedDLLs)
	}
	// Its distribution site must be alive early and dead late.
	if _, ok := l.Env.ResolveDNS(PerSourceDomain, simtime.WeekStart(5)); !ok {
		t.Error("iliketay.cn must resolve early in the study")
	}
	if _, ok := l.Env.ResolveDNS(PerSourceDomain, simtime.WeekStart(70)); ok {
		t.Error("iliketay.cn must be removed late in the study")
	}
	// Component two dies before component one.
	if _, ok := l.Env.HTTPFetch(PerSourceDomain, "/two.exe", simtime.WeekStart(40)); ok {
		t.Error("/two.exe must be gone by week 40")
	}
	if _, ok := l.Env.HTTPFetch(PerSourceDomain, "/one.exe", simtime.WeekStart(40)); !ok {
		t.Error("/one.exe must still be served at week 40")
	}
}

func TestBotFamiliesHaveChannels(t *testing.T) {
	cfg := SmallConfig()
	l := generate(t, cfg, 4)
	bots := 0
	for _, f := range l.Families {
		if f.Class != ClassBot {
			continue
		}
		bots++
		if len(f.Variants) < 1 {
			t.Errorf("%s has no variants", f.Name)
		}
		for _, v := range f.Variants {
			if v.Population.Distribution != netmodel.Localized {
				t.Errorf("%s: bot population must be localized", v.Name)
			}
			if len(v.Activity) < 2 {
				t.Errorf("%s: bot activity must be bursty, got %d windows", v.Name, len(v.Activity))
			}
			if spread := v.Population.Slash24Spread(); spread > 3 {
				t.Errorf("%s: population spans %d /24s", v.Name, spread)
			}
		}
	}
	if bots != cfg.BotFamilies {
		t.Errorf("bot families = %d, want %d", bots, cfg.BotFamilies)
	}
	// Channel ground truth covers every bot variant plus the per-source
	// family's channel.
	covered := map[string]bool{}
	for _, ch := range l.Channels {
		for _, v := range ch.Variants {
			covered[v] = true
		}
	}
	for _, f := range l.Families {
		if f.Class != ClassBot {
			continue
		}
		for _, v := range f.Variants {
			if !covered[v.Name] {
				t.Errorf("variant %s missing from channel truth", v.Name)
			}
		}
	}
}

func TestChannelServersShareSlash24(t *testing.T) {
	l := generate(t, DefaultConfig(), 5)
	nets := map[netmodel.IP]int{}
	for _, ch := range l.Channels {
		nets[ch.Server.Slash24().Base]++
	}
	shared := 0
	for _, n := range nets {
		if n >= 2 {
			shared++
		}
	}
	if shared == 0 {
		t.Error("no /24 hosts multiple C&C channels; Table 2 needs shared subnets")
	}
}

func TestVariantLookup(t *testing.T) {
	l := generate(t, SmallConfig(), 6)
	all := l.Variants()
	if len(all) == 0 {
		t.Fatal("no variants")
	}
	for _, v := range all {
		if got := l.Variant(v.Name); got != v {
			t.Fatalf("Variant(%q) = %p, want %p", v.Name, got, v)
		}
	}
	if l.Variant("nope") != nil {
		t.Error("unknown variant must be nil")
	}
}

func TestAllProgramsValidate(t *testing.T) {
	l := generate(t, SmallConfig(), 7)
	for _, v := range l.Variants() {
		if err := v.Program.Validate(); err != nil {
			t.Errorf("%s: %v", v.Name, err)
		}
		if _, err := v.Template.Build(); err != nil {
			t.Errorf("%s: template: %v", v.Name, err)
		}
		if err := findFamily(l, v.FamilyName).Spec.Validate(); err != nil {
			t.Errorf("%s: spec: %v", v.Name, err)
		}
		if len(v.Activity) == 0 {
			t.Errorf("%s: no activity windows", v.Name)
		}
		for _, w := range v.Activity {
			if !w.End.After(w.Start) {
				t.Errorf("%s: empty window %+v", v.Name, w)
			}
		}
		if v.WeeklyRate <= 0 {
			t.Errorf("%s: non-positive rate", v.Name)
		}
	}
}

func findFamily(l *Landscape, name string) *Family {
	for _, f := range l.Families {
		if f.Name == name {
			return f
		}
	}
	return nil
}

func TestGenerateDeterminism(t *testing.T) {
	a := generate(t, SmallConfig(), 42)
	b := generate(t, SmallConfig(), 42)
	va, vb := a.Variants(), b.Variants()
	if len(va) != len(vb) {
		t.Fatalf("variant counts differ: %d vs %d", len(va), len(vb))
	}
	for i := range va {
		if va[i].Name != vb[i].Name {
			t.Fatalf("variant %d name differs: %s vs %s", i, va[i].Name, vb[i].Name)
		}
		ra, err := va[i].Template.Build()
		if err != nil {
			t.Fatal(err)
		}
		rb, err := vb[i].Template.Build()
		if err != nil {
			t.Fatal(err)
		}
		if pe.ExtractFeatures(ra).MD5 != pe.ExtractFeatures(rb).MD5 {
			t.Fatalf("variant %s template differs across runs", va[i].Name)
		}
		if len(va[i].Population.Hosts) != len(vb[i].Population.Hosts) {
			t.Fatalf("variant %s population differs", va[i].Name)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := generate(t, SmallConfig(), 1)
	b := generate(t, SmallConfig(), 2)
	ra, _ := a.Families[0].Variants[0].Template.Build()
	rb, _ := b.Families[0].Variants[0].Template.Build()
	if pe.ExtractFeatures(ra).MD5 == pe.ExtractFeatures(rb).MD5 {
		t.Error("different seeds produced identical worm templates")
	}
}

func TestClassString(t *testing.T) {
	for c, want := range map[Class]string{
		ClassWorm: "worm", ClassBot: "bot", ClassDropper: "dropper", ClassRare: "rare",
	} {
		if c.String() != want {
			t.Errorf("%d.String() = %q", int(c), c.String())
		}
	}
	if Class(99).String() == "" {
		t.Error("unknown class must render")
	}
}
