package stream

import (
	"context"
	"fmt"

	"repro/internal/dataset"
)

// Replay feeds a recorded event sequence through the service in batches
// of batchSize (0 selects 64) and flushes, leaving the service in the
// state a batch pipeline run over the same events would produce. It is
// the convergence harness used by the equivalence tests and by
// `landscaped -replay`.
func Replay(ctx context.Context, svc *Service, events []dataset.Event, batchSize int) error {
	if svc == nil {
		return fmt.Errorf("stream: replay into nil service")
	}
	if batchSize <= 0 {
		batchSize = 64
	}
	for start := 0; start < len(events); start += batchSize {
		end := start + batchSize
		if end > len(events) {
			end = len(events)
		}
		if err := svc.Ingest(ctx, events[start:end]); err != nil {
			return fmt.Errorf("stream: replay batch at event %d: %w", start, err)
		}
	}
	return svc.Flush(ctx)
}
