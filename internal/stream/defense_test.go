package stream_test

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/dataset"
	"repro/internal/stream"
)

// TestStatsClientsLedger pins the -stats-clients surface on its own:
// with no defense knob set, the service stays undefended (no defense
// stats, no B statuses) but the per-client ledger attributes applied
// events and first-seen samples to their ingest identity, loopback
// included, with zero distrust everywhere.
func TestStatsClientsLedger(t *testing.T) {
	cfg := testConfig(4)
	cfg.StatsClients = true
	svc := newTestService(t, cfg)
	ctx := context.Background()

	batch := func(lo, hi int, variant string) []dataset.Event {
		var evs []dataset.Event
		for i := lo; i < hi; i++ {
			evs = append(evs, testEvent(i, variant))
		}
		return evs
	}
	if err := svc.IngestFrom(ctx, "alice", batch(0, 6, "va")); err != nil {
		t.Fatal(err)
	}
	if err := svc.IngestFrom(ctx, "bob", batch(6, 10, "vb")); err != nil {
		t.Fatal(err)
	}
	if err := svc.Ingest(ctx, batch(10, 13, "vc")); err != nil {
		t.Fatal(err)
	}
	if err := svc.Flush(ctx); err != nil {
		t.Fatal(err)
	}

	st := svc.Stats()
	if st.Defense != nil {
		t.Fatalf("StatsClients alone must not enable defenses: %+v", st.Defense)
	}
	if len(st.Clients) != 3 {
		t.Fatalf("Clients = %+v, want loopback + alice + bob", st.Clients)
	}
	wantEvents := map[string]int{"": 3, "alice": 6, "bob": 4}
	for _, cs := range st.Clients {
		if cs.Events != wantEvents[cs.Client] {
			t.Errorf("client %q: %d events, want %d", cs.Client, cs.Events, wantEvents[cs.Client])
		}
		if cs.Samples == 0 {
			t.Errorf("client %q attributed no samples", cs.Client)
		}
		if cs.Distrust != 0 || cs.Suspicion != 0 || cs.Held != 0 || cs.Parked != 0 {
			t.Errorf("client %q accrued defense state without defenses: %+v", cs.Client, cs)
		}
	}

	// Sample views carry the attribution; no B status without defenses.
	v, ok := svc.Sample("md5-va-0")
	if !ok {
		t.Fatal("alice's sample not queryable")
	}
	if v.Client != "alice" {
		t.Errorf("sample client = %q, want alice", v.Client)
	}
	if v.BStatus != "" {
		t.Errorf("undefended sample has B status %q", v.BStatus)
	}
}

// TestClientLedgerSurvivesRecovery pins the durability of provenance:
// WAL records carry the ingest client, so a crash-recovered service
// rebuilds exactly the ledger the original accumulated.
func TestClientLedgerSurvivesRecovery(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(4)
	cfg.StatsClients = true
	cfg.Durability = stream.Durability{Dir: dir, CheckpointEvery: 3, NoSync: true}
	ctx := context.Background()

	svc, err := stream.New(cfg, fakeEnricher{})
	if err != nil {
		t.Fatal(err)
	}
	var evs []dataset.Event
	for i := 0; i < 8; i++ {
		evs = append(evs, testEvent(i, "va"))
	}
	if err := svc.IngestFrom(ctx, "alice", evs); err != nil {
		t.Fatal(err)
	}
	if err := svc.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	want := svc.Stats().Clients
	svc.Close()
	if len(want) == 0 {
		t.Fatal("no client ledger before the crash")
	}

	recovered, err := stream.New(cfg, fakeEnricher{})
	if err != nil {
		t.Fatal(err)
	}
	defer recovered.Close()
	got := recovered.Stats().Clients
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered ledger %+v != original %+v", got, want)
	}
	v, ok := recovered.Sample("md5-va-0")
	if !ok || v.Client != "alice" {
		t.Fatalf("recovered sample attribution = %+v, %v", v, ok)
	}
}
