package stream_test

import (
	"context"
	"fmt"
	"reflect"
	"testing"
	"time"

	"repro/internal/admission"
	"repro/internal/behavior"
	"repro/internal/dataset"
	"repro/internal/stream"
)

// stallEnricher blocks the apply worker inside the first sandbox
// execution until gate is closed, letting tests build queue pressure
// deterministically. entered (buffered) signals the worker is parked.
type stallEnricher struct {
	entered chan struct{}
	gate    chan struct{}
}

func newStallEnricher() stallEnricher {
	return stallEnricher{entered: make(chan struct{}, 1), gate: make(chan struct{})}
}

func (e stallEnricher) LabelSample(s *dataset.Sample) error {
	return fakeEnricher{}.LabelSample(s)
}

func (e stallEnricher) ExecuteSample(s *dataset.Sample) (*behavior.Profile, bool, error) {
	select {
	case e.entered <- struct{}{}:
	default:
	}
	<-e.gate
	return fakeEnricher{}.ExecuteSample(s)
}

// sampleBatch is a one-event batch carrying an executable sample, so the
// worker enters the (stallable) enrichment path when it applies it.
func sampleBatch(i int) []dataset.Event {
	return []dataset.Event{testEvent(i, fmt.Sprintf("stall%d", i))}
}

// plainBatch is a sample-free batch the worker applies in microseconds.
func plainBatch(i, n int) []dataset.Event {
	out := make([]dataset.Event, n)
	for k := range out {
		out[k] = testEvent(i*1000+k, "")
	}
	return out
}

// stallService starts a service on a stalling enricher and parks its
// worker inside the first batch's enrichment.
func stallService(t *testing.T, cfg stream.Config) (*stream.Service, stallEnricher) {
	t.Helper()
	enr := newStallEnricher()
	svc, err := stream.New(cfg, enr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	if err := svc.Ingest(context.Background(), sampleBatch(0)); err != nil {
		t.Fatal(err)
	}
	<-enr.entered
	return svc, enr
}

// waitStats polls Stats until cond holds or the deadline lapses.
func waitStats(t *testing.T, svc *stream.Service, what string, cond func(stream.Stats) bool) stream.Stats {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := svc.Stats()
		if cond(st) {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s; stats %+v", what, st)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestAdmissionDeadline is the no-hang regression for satellite (a): a
// full queue over a stalled worker must answer within the admission
// deadline with a typed deadline rejection, not block until the caller
// gives up.
func TestAdmissionDeadline(t *testing.T) {
	cfg := testConfig(0) // QueueDepth 2
	cfg.Admission.Deadline = 30 * time.Millisecond
	svc, enr := stallService(t, cfg)
	ctx := context.Background()

	// Fill the queue behind the parked worker.
	for i := 1; i <= 2; i++ {
		if err := svc.Ingest(ctx, plainBatch(i, 3)); err != nil {
			t.Fatal(err)
		}
	}
	start := time.Now()
	err := svc.IngestFrom(ctx, "client-a", plainBatch(3, 3))
	rej, ok := admission.AsRejection(err)
	if !ok || rej.Reason != admission.ReasonDeadline {
		t.Fatalf("full-queue ingest returned %v, want deadline rejection", err)
	}
	if rej.RetryAfter < time.Second {
		t.Fatalf("RetryAfter %v below the hint floor", rej.RetryAfter)
	}
	if waited := time.Since(start); waited > 5*time.Second {
		t.Fatalf("rejection took %v, deadline did not bound the wait", waited)
	}

	close(enr.gate)
	if err := svc.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	st := svc.Stats()
	adm := st.Admission
	if adm.AdmittedBatches != 3 || adm.RejectedBatches["deadline"] != 1 || adm.RejectedEvents["deadline"] != 3 {
		t.Fatalf("admission ledger %+v, want 3 admitted and 1 deadline rejection of 3 events", adm)
	}
	if st.Events != 7 { // 1 stall sample + 2x3 plain
		t.Fatalf("events %d, want 7 (the rejected batch must not be applied)", st.Events)
	}
}

// TestAdmissionRateLimitPerClient checks client buckets are independent
// and that the in-process loopback (client "") bypasses the limiter.
func TestAdmissionRateLimitPerClient(t *testing.T) {
	cfg := testConfig(0)
	cfg.Admission.RatePerSec = 10
	cfg.Admission.Burst = 5
	svc := newTestService(t, cfg)
	ctx := context.Background()

	if err := svc.IngestFrom(ctx, "flood", plainBatch(1, 5)); err != nil {
		t.Fatalf("burst-sized batch rejected: %v", err)
	}
	err := svc.IngestFrom(ctx, "flood", plainBatch(2, 5))
	if rej, ok := admission.AsRejection(err); !ok || rej.Reason != admission.ReasonRateLimit {
		t.Fatalf("drained bucket admitted: %v", err)
	}
	// A compliant client is unaffected by the flooder's empty bucket.
	if err := svc.IngestFrom(ctx, "calm", plainBatch(3, 5)); err != nil {
		t.Fatalf("independent client rejected: %v", err)
	}
	// The trusted loopback (replay, recovery) is never rate limited.
	if err := svc.Ingest(ctx, plainBatch(4, 20)); err != nil {
		t.Fatalf("loopback ingest rejected: %v", err)
	}
	if err := svc.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	adm := svc.Stats().Admission
	if !adm.Enabled {
		t.Fatal("admission must report enabled")
	}
	if adm.AdmittedBatches != 3 || adm.AdmittedEvents != 30 {
		t.Fatalf("admitted %d/%d, want 3 batches / 30 events", adm.AdmittedBatches, adm.AdmittedEvents)
	}
	if adm.RejectedBatches["rate-limit"] != 1 || adm.RejectedEvents["rate-limit"] != 5 {
		t.Fatalf("rejections %+v, want one rate-limit batch of 5", adm.RejectedBatches)
	}
	if adm.RateLimitClients != 2 {
		t.Fatalf("limiter tracks %d clients, want 2", adm.RateLimitClients)
	}
}

// TestAdmissionWaiterBudget: with MaxWaiters 1 a second parked producer
// is refused fast with queue-full instead of piling up.
func TestAdmissionWaiterBudget(t *testing.T) {
	cfg := testConfig(0)
	cfg.Admission.MaxWaiters = 1
	svc, enr := stallService(t, cfg)
	ctx := context.Background()

	for i := 1; i <= 2; i++ {
		if err := svc.Ingest(ctx, plainBatch(i, 2)); err != nil {
			t.Fatal(err)
		}
	}
	parked := make(chan error, 1)
	go func() { parked <- svc.IngestFrom(ctx, "patient", plainBatch(3, 2)) }()
	waitStats(t, svc, "one parked waiter", func(st stream.Stats) bool {
		return st.Admission.Waiters == 1
	})
	err := svc.IngestFrom(ctx, "late", plainBatch(4, 2))
	if rej, ok := admission.AsRejection(err); !ok || rej.Reason != admission.ReasonQueueFull {
		t.Fatalf("over-budget producer got %v, want queue-full rejection", err)
	}

	close(enr.gate)
	if err := <-parked; err != nil {
		t.Fatalf("parked producer within budget must eventually be admitted: %v", err)
	}
	if err := svc.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	adm := svc.Stats().Admission
	if adm.RejectedBatches["queue-full"] != 1 || adm.AdmittedBatches != 4 {
		t.Fatalf("ledger %+v, want 4 admitted and 1 queue-full rejection", adm)
	}
}

// TestAdmissionShedUnderPressure drives the shedder with a parked
// worker: once the smoothed delay exceeds the (tiny) target and the
// queue is at least half full, most arrivals are shed as typed 503s,
// and the ledger stays exact: admitted + rejected == attempted.
func TestAdmissionShedUnderPressure(t *testing.T) {
	cfg := testConfig(0)
	cfg.QueueDepth = 4
	cfg.Admission.ShedTarget = time.Nanosecond // any observed delay overshoots
	cfg.Admission.Deadline = 20 * time.Millisecond
	cfg.Admission.Seed = 42
	svc, enr := stallService(t, cfg)
	ctx := context.Background()

	attempts, admitted := 1, 1 // the stall batch
	for i := 1; i <= 2; i++ {  // below half-full: the occupancy gate must not shed
		if err := svc.Ingest(ctx, plainBatch(i, 2)); err != nil {
			t.Fatalf("batch %d under the occupancy gate was refused: %v", i, err)
		}
		attempts++
		admitted++
	}
	sheds := 0
	for i := 3; i < 40; i++ {
		attempts++
		err := svc.IngestFrom(ctx, "flood", plainBatch(i, 2))
		rej, ok := admission.AsRejection(err)
		switch {
		case err == nil:
			admitted++
		case ok && rej.Reason == admission.ReasonShed:
			sheds++
		case ok && rej.Reason == admission.ReasonDeadline:
		default:
			t.Fatalf("unexpected ingest result: %v", err)
		}
	}
	if sheds == 0 {
		t.Fatal("no batch was shed at 37 arrivals over a saturated queue")
	}

	close(enr.gate)
	if err := svc.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	adm := svc.Stats().Admission
	total := adm.AdmittedBatches
	for _, n := range adm.RejectedBatches {
		total += n
	}
	if total != attempts {
		t.Fatalf("admitted %d + rejected %v != %d attempts", adm.AdmittedBatches, adm.RejectedBatches, attempts)
	}
	if adm.AdmittedBatches != admitted || adm.RejectedBatches["shed"] != sheds {
		t.Fatalf("ledger %+v disagrees with caller accounting (admitted %d, shed %d)", adm, admitted, sheds)
	}
	if adm.ShedProbability <= 0 {
		t.Fatalf("shed probability %v after shedding", adm.ShedProbability)
	}
}

// TestDegradedModeDefersEpochs pins the degrade threshold below any real
// queue wait so the service runs degraded from the first dequeue: every
// epoch trigger must be deferred (fast-path classification only), the
// query views must carry the degraded marker, and Flush must still force
// the deferred work out.
func TestDegradedModeDefersEpochs(t *testing.T) {
	cfg := testConfig(8)
	cfg.Admission.DegradeTarget = time.Nanosecond
	svc := newTestService(t, cfg)
	ctx := context.Background()
	var events []dataset.Event
	for i := 0; i < 60; i++ {
		events = append(events, testEvent(i, fmt.Sprintf("v%d", i%3)))
	}
	for i := 0; i < len(events); i += 10 {
		if err := svc.Ingest(ctx, events[i:i+10]); err != nil {
			t.Fatal(err)
		}
	}
	st := waitStats(t, svc, "all batches applied", func(st stream.Stats) bool {
		return st.Events == 60
	})
	adm := st.Admission
	if !adm.Degraded || adm.DegradedEntered != 1 {
		t.Fatalf("service not degraded after sustained pressure: %+v", adm)
	}
	if adm.EpochsDeferred == 0 {
		t.Fatalf("no epochs deferred at 60 events with epoch size 8: %+v", adm)
	}
	if st.Epsilon.Epoch != 0 || st.B.Epochs != 0 {
		t.Fatalf("epochs ran while degraded: epsilon %d, B %d", st.Epsilon.Epoch, st.B.Epochs)
	}
	view, err := svc.EPMClusters("epsilon")
	if err != nil {
		t.Fatal(err)
	}
	if !view.Degraded {
		t.Fatal("EPM view must carry the degraded marker")
	}
	if !svc.BClusters().Degraded {
		t.Fatal("B view must carry the degraded marker")
	}

	// Flush forces the deferred epochs even while degraded.
	if err := svc.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	st = svc.Stats()
	if st.Epsilon.Epoch == 0 || st.Epsilon.Pending != 0 || st.B.Pending != 0 {
		t.Fatalf("flush did not drain deferred work: %+v", st)
	}
}

// TestDegradedFlushMatchesUnpressuredRun is the convergence half of the
// degraded-mode contract: a run that deferred every epoch under pressure
// must, after Flush, be byte-identical (modulo the degraded marker and
// the runtime admission ledger) to a run that never felt pressure.
func TestDegradedFlushMatchesUnpressuredRun(t *testing.T) {
	var events []dataset.Event
	for i := 0; i < 120; i++ {
		events = append(events, testEvent(i, fmt.Sprintf("v%d", i%4)))
	}
	run := func(cfg stream.Config) *stream.Service {
		svc := newTestService(t, cfg)
		ctx := context.Background()
		for i := 0; i < len(events); i += 10 {
			if err := svc.Ingest(ctx, events[i:i+10]); err != nil {
				t.Fatal(err)
			}
		}
		if err := svc.Flush(ctx); err != nil {
			t.Fatal(err)
		}
		return svc
	}

	want := run(testConfig(8))
	cfg := testConfig(8)
	cfg.Admission.DegradeTarget = time.Nanosecond
	got := run(cfg)

	if n := got.Stats().Admission.EpochsDeferred; n == 0 {
		t.Fatalf("pressured run deferred no epochs (deferred=%d); the comparison is vacuous", n)
	}
	compareConverged(t, "degraded-then-flushed", got, want)
}

// TestDegradedModeExitDrainsDeferredWork pushes the service into
// degraded mode with real queue pressure, releases it, and checks the
// hysteresis exit fires and epochs resume.
func TestDegradedModeExitDrainsDeferredWork(t *testing.T) {
	cfg := testConfig(8)
	cfg.QueueDepth = 4
	cfg.Admission.DegradeTarget = 30 * time.Millisecond
	svc, enr := stallService(t, cfg)
	ctx := context.Background()

	for i := 1; i <= 3; i++ {
		if err := svc.Ingest(ctx, plainBatch(i, 10)); err != nil {
			t.Fatal(err)
		}
	}
	// Let the queued batches age well past the degrade target, then
	// release the worker: their observed waits push the smoothed delay
	// over the threshold.
	time.Sleep(120 * time.Millisecond)
	close(enr.gate)
	waitStats(t, svc, "degraded entry", func(st stream.Stats) bool {
		return st.Admission.DegradedEntered >= 1
	})

	// Pressure released: quick dequeues decay the average below half the
	// target and the service must come back to full service.
	deadline := time.Now().Add(10 * time.Second)
	for i := 100; ; i++ {
		if err := svc.Ingest(ctx, plainBatch(i, 1)); err != nil {
			t.Fatal(err)
		}
		if st := svc.Stats(); st.Events > 0 && !st.Admission.Degraded && st.Admission.DegradedExited >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("service never exited degraded mode: %+v", svc.Stats().Admission)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := svc.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	st := svc.Stats()
	if st.Epsilon.Epoch == 0 || st.Epsilon.Pending != 0 {
		t.Fatalf("deferred epochs never drained after exit: %+v", st.Epsilon)
	}
	if v, err := svc.EPMClusters("epsilon"); err != nil || v.Degraded {
		t.Fatalf("view still degraded after exit (err %v)", err)
	}
}

// TestAdmissionZeroConfigIsInert: the zero Admission config must change
// nothing — no limiter, no shedder, no deadline, no degraded mode — so
// the overload layer is strictly additive.
func TestAdmissionZeroConfigIsInert(t *testing.T) {
	svc := newTestService(t, testConfig(8))
	ctx := context.Background()
	for i := 0; i < 6; i++ {
		if err := svc.IngestFrom(ctx, "anyone", plainBatch(i, 5)); err != nil {
			t.Fatalf("zero-config ingest rejected: %v", err)
		}
	}
	if err := svc.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	st := svc.Stats()
	adm := st.Admission
	if adm.Enabled {
		t.Fatal("zero config must report disabled")
	}
	if len(adm.RejectedBatches) != 0 || adm.Degraded || adm.RateLimitClients != 0 {
		t.Fatalf("zero config produced admission activity: %+v", adm)
	}
	if adm.AdmittedBatches != 6 || adm.AdmittedEvents != 30 {
		t.Fatalf("ledger %+v, want 6 batches / 30 events accounted", adm)
	}
	if st.Fatal != "" {
		t.Fatalf("healthy service reports fatal %q", st.Fatal)
	}
}

// compareConverged asserts two flushed services converged on the same
// landscape: identical E/P/M clusterings, identical B membership
// partition, identical event/sample accounting. Epoch counters are
// deliberately not compared — a run that deferred epochs under pressure
// runs fewer intermediate rebuilds, and the PR 3/4 equivalence gates
// prove the final clusters are independent of the epoch schedule.
func compareConverged(t *testing.T, label string, got, want *stream.Service) {
	t.Helper()
	for _, dim := range []string{"epsilon", "pi", "mu"} {
		gc, err := got.EPMClustering(dim)
		if err != nil {
			t.Fatal(err)
		}
		wc, err := want.EPMClustering(dim)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(gc.Clusters, wc.Clusters) {
			t.Fatalf("%s: %s clusters diverge:\ngot  %+v\nwant %+v", label, dim, gc.Clusters, wc.Clusters)
		}
	}
	if !reflect.DeepEqual(bMembers(got.BResult()), bMembers(want.BResult())) {
		t.Fatalf("%s: B partition diverges", label)
	}
	gs, ws := got.Stats(), want.Stats()
	if gs.Events != ws.Events || gs.Rejected != ws.Rejected || gs.Duplicates != ws.Duplicates ||
		gs.Samples != ws.Samples || gs.Executed != ws.Executed {
		t.Fatalf("%s: accounting diverges:\ngot  %+v\nwant %+v", label, gs, ws)
	}
}

// TestDegradedProvisionalNoDoubleCount is the regression gate for the
// provisional path under degraded mode: while epochs are deferred,
// instances keep classifying provisionally against the last epoch's
// pattern set, and the next (forced) epoch folds them into epoch
// membership. At no point may a cluster view count an instance both as
// an epoch member and as a provisional member — for every dimension the
// view sizes plus the pending pool must partition the instances exactly.
func TestDegradedProvisionalNoDoubleCount(t *testing.T) {
	checkPartition := func(svc *stream.Service, label string) {
		t.Helper()
		for _, dim := range []string{"epsilon", "pi", "mu"} {
			view, err := svc.EPMClusters(dim)
			if err != nil {
				t.Fatal(err)
			}
			total := 0
			for _, c := range view.Clusters {
				total += c.Size
			}
			if total+view.Pending != view.Instances {
				t.Fatalf("%s: %s cluster sizes %d + pending %d != instances %d (an instance is double- or un-counted)",
					label, dim, total, view.Pending, view.Instances)
			}
		}
	}

	cfg := testConfig(8)
	cfg.Admission.DegradeTarget = time.Nanosecond
	svc := newTestService(t, cfg)
	ctx := context.Background()
	feed := func(lo, hi int) {
		t.Helper()
		var events []dataset.Event
		for i := lo; i < hi; i++ {
			events = append(events, testEvent(i, fmt.Sprintf("v%d", i%3)))
		}
		for i := 0; i < len(events); i += 10 {
			if err := svc.Ingest(ctx, events[i:i+10]); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Phase 1: everything pools as pending (no clustering yet, epochs
	// deferred under pressure); Flush forces the first epoch.
	feed(0, 40)
	waitStats(t, svc, "phase 1 applied", func(st stream.Stats) bool { return st.Events == 40 })
	checkPartition(svc, "degraded, pre-epoch")
	if err := svc.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	epoch1 := svc.Stats().Epsilon.Epoch
	if epoch1 == 0 {
		t.Fatal("flush did not force the first epoch")
	}
	checkPartition(svc, "post-flush 1")

	// Phase 2: the pattern set now matches the stream, so new instances
	// classify provisionally while the deferred-epoch counter climbs.
	feed(40, 80)
	st := waitStats(t, svc, "phase 2 applied", func(st stream.Stats) bool { return st.Events == 80 })
	if st.Epsilon.Epoch != epoch1 {
		t.Fatalf("epochs ran under pressure: %d -> %d", epoch1, st.Epsilon.Epoch)
	}
	if st.Epsilon.Pending != 0 {
		t.Fatalf("phase 2 epsilon instances pooled (%d pending) instead of classifying provisionally", st.Epsilon.Pending)
	}
	checkPartition(svc, "degraded, provisional members")

	// The forced epoch must absorb every provisional member exactly once.
	if err := svc.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	st = svc.Stats()
	if st.Epsilon.Epoch == epoch1 || st.Epsilon.Pending != 0 {
		t.Fatalf("final flush did not run the epoch: %+v", st.Epsilon)
	}
	if st.Epsilon.Instances != 80 {
		t.Fatalf("epsilon instances = %d, want 80", st.Epsilon.Instances)
	}
	checkPartition(svc, "post-flush 2")
}
