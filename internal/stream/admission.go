package stream

import (
	"time"

	"repro/internal/admission"
)

// admitBatch runs the pre-queue admission pipeline for one ingest
// batch: read-only (storage-failure) gate, per-client token bucket
// (client "" is the trusted loopback — in-process replay and recovery —
// and bypasses the limiter only), then the adaptive shedder. A refusal
// is returned as a typed *admission.Rejection and accounted per reason.
func (s *Service) admitBatch(client string, n int) error {
	if err := s.StorageFailure(); err != nil {
		return err
	}
	if client != "" {
		if rej := s.limiter.Admit(client, n); rej != nil {
			s.noteRejected(client, string(rej.Reason), n)
			return rej
		}
	}
	if drop, p := s.shedder.Decide(s.qDelay.Load(), len(s.in), cap(s.in)); drop {
		rej := &admission.Rejection{
			Reason:     admission.ReasonShed,
			RetryAfter: admission.RetryAfterHint(s.qDelay.Load()),
		}
		s.noteRejected(client, string(rej.Reason), n)
		s.noteShedProbability(p)
		return rej
	}
	return nil
}

// noteAdmitted and noteRejected keep the admission ledger. They use
// their own mutex, not s.mu: producers must not serialize behind the
// apply worker's write lock just to bump a counter.
func (s *Service) noteAdmitted(n int) {
	s.admMu.Lock()
	s.admittedBatches++
	s.admittedEvents += n
	s.admMu.Unlock()
}

func (s *Service) noteRejected(client, reason string, n int) {
	s.admMu.Lock()
	s.rejectedBatches[reason]++
	s.rejectedEvents[reason] += n
	if client != "" {
		s.rejectedByClient[client]++
	}
	s.admMu.Unlock()
}

func (s *Service) noteShedProbability(p float64) {
	s.admMu.Lock()
	s.shedProb = p
	s.admMu.Unlock()
}

// observePressure folds one queue-wait sample (enqueue → dequeue) into
// the smoothed delay and drives the degraded-mode state machine: enter
// when the smoothed delay exceeds the degrade target, leave — and drain
// any deferred epochs — once it falls below half the target
// (hysteresis, so the service does not flap at the threshold). Runs on
// the worker.
func (s *Service) observePressure(wait time.Duration) {
	delay := s.qDelay.Observe(wait)
	target := s.cfg.Admission.DegradeTarget
	if target <= 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case !s.degradedMode && delay > target:
		s.degradedMode = true
		s.degradedEntered++
	case s.degradedMode && delay < target/2:
		s.degradedMode = false
		s.degradedExited++
		// Pressure released: fire any epoch the degraded stretch
		// deferred instead of waiting for the next add or Flush.
		s.epochCheck()
	}
}

// AdmissionStats is the overload-protection ledger in Stats. The
// invariant the stress and overload harnesses assert: for every
// non-empty IngestFrom call that was not cut short by the caller's own
// context or Close, AdmittedBatches + sum(RejectedBatches) grows by
// exactly one (and the *Events fields by the batch size).
type AdmissionStats struct {
	// Enabled reports whether any overload-protection knob is on.
	Enabled bool `json:"enabled"`
	// AdmittedBatches/AdmittedEvents count batches accepted onto the
	// queue (acceptance = queued, not yet applied).
	AdmittedBatches int `json:"admitted_batches"`
	AdmittedEvents  int `json:"admitted_events"`
	// RejectedBatches/RejectedEvents count refusals by reason:
	// rate-limit, deadline, queue-full, shed.
	RejectedBatches map[string]int `json:"rejected_batches,omitempty"`
	RejectedEvents  map[string]int `json:"rejected_events,omitempty"`
	// QueueDelayMs is the smoothed enqueue→dequeue delay the shedder and
	// degraded mode key off.
	QueueDelayMs float64 `json:"queue_delay_ms"`
	// ShedProbability is the drop probability at the last shed decision.
	ShedProbability float64 `json:"shed_probability"`
	// Waiters counts producers currently blocked on the full queue.
	Waiters int `json:"waiters"`
	// Degraded reports the service is deferring EPM rebuild and B
	// verification epochs under sustained pressure; queries serve the
	// last snapshot. DegradedEntered/DegradedExited count transitions.
	Degraded        bool `json:"degraded"`
	RateLimitClients int  `json:"rate_limit_clients"`
	DegradedEntered int  `json:"degraded_entered"`
	DegradedExited  int  `json:"degraded_exited"`
	// EpochsDeferred counts epoch triggers skipped while degraded; the
	// work is performed on pressure release or at the next Flush.
	EpochsDeferred int `json:"epochs_deferred"`
}

// admissionStats snapshots the ledger. Callers hold s.mu (read or
// write) for the degraded fields; the ledger fields take admMu.
func (s *Service) admissionStats() AdmissionStats {
	s.admMu.Lock()
	st := AdmissionStats{
		Enabled:         s.cfg.Admission.Enabled(),
		AdmittedBatches: s.admittedBatches,
		AdmittedEvents:  s.admittedEvents,
		ShedProbability: s.shedProb,
	}
	if len(s.rejectedBatches) > 0 {
		st.RejectedBatches = make(map[string]int, len(s.rejectedBatches))
		st.RejectedEvents = make(map[string]int, len(s.rejectedEvents))
		for k, v := range s.rejectedBatches {
			st.RejectedBatches[k] = v
		}
		for k, v := range s.rejectedEvents {
			st.RejectedEvents[k] = v
		}
	}
	s.admMu.Unlock()
	st.QueueDelayMs = float64(s.qDelay.Load()) / float64(time.Millisecond)
	st.Waiters = int(s.waiters.Load())
	st.RateLimitClients = s.limiter.Clients()
	st.Degraded = s.degradedMode
	st.DegradedEntered = s.degradedEntered
	st.DegradedExited = s.degradedExited
	st.EpochsDeferred = s.epochsDeferred
	return st
}
