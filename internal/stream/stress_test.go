package stream_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/admission"
	"repro/internal/dataset"
)

// TestAdmissionConcurrencyStress hammers every admission path at once —
// concurrent per-client ingest against a tiny queue with the rate
// limiter, deadline, and shedder all armed, interleaved with queries and
// flushes — and then reconciles the clients' own books against the
// service ledger: every submitted batch is accounted admitted or
// rejected-with-reason, nothing double-counted, nothing lost. Run under
// -race, this is the memory-safety gate for the overload machinery.
func TestAdmissionConcurrencyStress(t *testing.T) {
	cfg := testConfig(16)
	cfg.QueueDepth = 2
	cfg.Admission = admission.Config{
		RatePerSec: 300,
		Burst:      20,
		Deadline:   3 * time.Millisecond,
		ShedTarget: time.Millisecond,
		Seed:       1,
	}
	svc := newTestService(t, cfg)
	ctx := context.Background()

	const (
		ingesters = 4
		perClient = 80
		batchSize = 5
	)

	// Readers churn the query surface while the flood is on; one of them
	// also forces flushes so epoch work races the admission path.
	done := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func(r int) {
			defer readers.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				svc.Stats()
				svc.BClusters()
				if _, err := svc.EPMClusters("epsilon"); err != nil {
					t.Error(err)
					return
				}
				if r == 0 {
					if err := svc.Flush(ctx); err != nil {
						if _, ok := admission.AsRejection(err); !ok {
							t.Errorf("flush: %v", err)
							return
						}
					}
					time.Sleep(5 * time.Millisecond)
				}
			}
		}(r)
	}

	type book struct {
		accepted       int
		acceptedEvents int
		rejected       map[admission.Reason]int
	}
	books := make([]book, ingesters)
	var wg sync.WaitGroup
	for g := 0; g < ingesters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			client := fmt.Sprintf("stress-c%d", g)
			books[g].rejected = map[admission.Reason]int{}
			for b := 0; b < perClient; b++ {
				events := make([]dataset.Event, 0, batchSize)
				for k := 0; k < batchSize; k++ {
					i := b*batchSize + k
					e := testEvent(i, fmt.Sprintf("v%d", i%3))
					e.ID = fmt.Sprintf("%s-ev%05d", client, i)
					e.Sample.MD5 = fmt.Sprintf("%s-%s", client, e.Sample.MD5)
					events = append(events, e)
				}
				err := svc.IngestFrom(ctx, client, events)
				switch {
				case err == nil:
					books[g].accepted++
					books[g].acceptedEvents += batchSize
				default:
					var rej *admission.Rejection
					if !errors.As(err, &rej) {
						t.Errorf("client %s: non-admission ingest error: %v", client, err)
						return
					}
					books[g].rejected[rej.Reason]++
				}
			}
		}(g)
	}
	wg.Wait()
	close(done)
	readers.Wait()
	if t.Failed() {
		return
	}
	if err := svc.Flush(ctx); err != nil {
		t.Fatal(err)
	}

	accepted, acceptedEvents := 0, 0
	rejected := map[string]int{}
	for _, bk := range books {
		accepted += bk.accepted
		acceptedEvents += bk.acceptedEvents
		for reason, n := range bk.rejected {
			rejected[string(reason)] += n
		}
	}
	rejectedTotal := 0
	for _, n := range rejected {
		rejectedTotal += n
	}
	if got := accepted + rejectedTotal; got != ingesters*perClient {
		t.Fatalf("accepted %d + rejected %d != submitted %d", accepted, rejectedTotal, ingesters*perClient)
	}

	st := svc.Stats()
	if st.Admission.AdmittedBatches != accepted || st.Admission.AdmittedEvents != acceptedEvents {
		t.Fatalf("ledger admitted %d/%d events, clients saw %d/%d",
			st.Admission.AdmittedBatches, st.Admission.AdmittedEvents, accepted, acceptedEvents)
	}
	for reason, n := range rejected {
		if st.Admission.RejectedBatches[reason] != n {
			t.Fatalf("ledger rejected[%s]=%d, clients saw %d", reason, st.Admission.RejectedBatches[reason], n)
		}
	}
	for reason, n := range st.Admission.RejectedBatches {
		if rejected[reason] != n {
			t.Fatalf("ledger has %d rejected[%s] the clients never saw", n, reason)
		}
	}
	// Every admitted event was applied exactly once: IDs are unique per
	// client, so no duplicates and no losses.
	if st.Events != acceptedEvents || st.Duplicates != 0 {
		t.Fatalf("events=%d duplicates=%d, want %d/0", st.Events, st.Duplicates, acceptedEvents)
	}
}
