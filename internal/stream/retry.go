package stream

import (
	"fmt"
	"hash/fnv"
)

// Retry configures how the service handles transient enrichment
// failures (enrich.TransientError): failed samples enter a retry pool
// and are re-attempted with capped exponential backoff, measured in
// applied WAL records so the schedule is deterministic and survives
// recovery. Non-transient failures, and transient ones that exhaust
// MaxAttempts, quarantine the sample.
type Retry struct {
	// MaxAttempts is the total attempt budget per sample and stage
	// (the initial attempt included); 0 selects 5, 1 disables retries.
	MaxAttempts int
	// BaseBackoff is the delay before the first retry, in applied
	// records; 0 selects 1.
	BaseBackoff int
	// MaxBackoff caps the exponential growth, in applied records; 0
	// selects 8.
	MaxBackoff int
}

func (r Retry) validate() error {
	if r.MaxAttempts < 0 || r.BaseBackoff < 0 || r.MaxBackoff < 0 {
		return fmt.Errorf("stream: negative retry parameter: %+v", r)
	}
	return nil
}

// Retry stages: a sample whose labeling failed retries the whole
// label-then-execute sequence; a labeled sample whose sandbox run
// failed retries only the execution.
const (
	retryLabel   = "label"
	retryExecute = "execute"
)

// retryEntry is one pooled sample awaiting a retry.
type retryEntry struct {
	md5      string
	stage    string
	attempts int    // attempts made so far, the initial one included
	nextSeq  uint64 // earliest applied-record seq to retry at
	lastErr  string
}

// retryPool holds pooled samples in insertion order — a deterministic
// order, so the retry-driven execution sequence replays identically
// during recovery.
type retryPool struct {
	entries []*retryEntry
	byID    map[string]*retryEntry
}

func newRetryPool() *retryPool {
	return &retryPool{byID: make(map[string]*retryEntry)}
}

func (p *retryPool) len() int { return len(p.entries) }

func (p *retryPool) get(md5 string) *retryEntry { return p.byID[md5] }

func (p *retryPool) add(e *retryEntry) {
	p.entries = append(p.entries, e)
	p.byID[e.md5] = e
}

func (p *retryPool) remove(md5 string) {
	if _, ok := p.byID[md5]; !ok {
		return
	}
	delete(p.byID, md5)
	for i, e := range p.entries {
		if e.md5 == md5 {
			p.entries = append(p.entries[:i], p.entries[i+1:]...)
			return
		}
	}
}

// due returns the entries whose deadline has passed (all of them when
// force is set), in insertion order.
func (p *retryPool) due(seq uint64, force bool) []*retryEntry {
	var out []*retryEntry
	for _, e := range p.entries {
		if force || e.nextSeq <= seq {
			out = append(out, e)
		}
	}
	return out
}

// backoff returns the retry delay in applied records for a sample's
// next attempt: capped exponential in the attempt count plus a
// deterministic per-sample jitter (so a burst of same-batch failures
// does not retry in lockstep, yet a recovery replay reschedules
// identically).
func (s *Service) backoff(md5 string, attempts int) uint64 {
	base, limit := s.cfg.Retry.BaseBackoff, s.cfg.Retry.MaxBackoff
	d := base
	for i := 1; i < attempts && d < limit; i++ {
		d *= 2
	}
	if d > limit {
		d = limit
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%d", md5, attempts)
	return uint64(d) + h.Sum64()%uint64(d/2+1)
}

// RetryStats summarizes the retry pool and quarantine for Stats.
type RetryStats struct {
	// Pending counts samples currently awaiting a retry.
	Pending int `json:"pending"`
	// Scheduled counts samples that ever entered the retry pool.
	Scheduled int `json:"scheduled"`
	// Attempts counts retry attempts performed (initial attempts are
	// not retries).
	Attempts int `json:"attempts"`
	// Successes counts samples that recovered via a retry.
	Successes int `json:"successes"`
	// Quarantined counts samples given up on: permanently failed, or
	// transiently failed MaxAttempts times.
	Quarantined int `json:"quarantined"`
}
