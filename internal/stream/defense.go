package stream

// Poisoning defenses and the per-client provenance ledger. The service
// attributes every sample to the ingest client that first delivered it,
// derives a distrust weight from the defense decisions the clusterer
// makes against that client's samples, and feeds both the weight and
// the sample's static μ-group back into the defended B-clusterer. All
// of it is inert — no ledger, no extra checkpoint fields, the original
// clustering code path — until a Defense knob or StatsClients is set.

import (
	"sort"
	"strings"

	"repro/internal/bcluster"
	"repro/internal/dataset"
)

// Defense configures the online poisoning mitigations, forwarded into
// the incremental B-clusterer (see the bcluster defense documentation
// for the rules). The zero value disables all of them, keeping the
// streaming pipeline byte-identical to the undefended service.
type Defense struct {
	// MergeResistance holds samples whose links would join two
	// established components of at least this size (bridge attacks).
	MergeResistance int
	// TrustPenalty raises the link threshold for samples from
	// distrusted clients by TrustPenalty * max(distrust of the pair).
	TrustPenalty float64
	// DisagreeQuorum parks samples whose behavioral links contradict
	// their static μ-group once that many group members are integrated
	// (the cross-perspective disagreement signal).
	DisagreeQuorum int
}

// Enabled reports whether any defense knob is on.
func (d Defense) Enabled() bool {
	return d.MergeResistance > 0 || d.TrustPenalty > 0 || d.DisagreeQuorum > 0
}

// defended reports whether the B-clusterer runs with defenses on.
func (s *Service) defended() bool {
	return s.cfg.Defense.Enabled()
}

// trackClients reports whether the per-client ledger is maintained:
// needed by the trust penalty (defended mode) and by the -stats-clients
// surface.
func (s *Service) trackClients() bool {
	return s.defended() || s.cfg.StatsClients
}

// clientLedger is one client's provenance record. The JSON shape is the
// checkpoint encoding; suspicion is the defense-decision count the
// distrust weight derives from.
type clientLedger struct {
	Events    int `json:"events"`
	Samples   int `json:"samples"`
	Held      int `json:"held,omitempty"`
	Parked    int `json:"parked,omitempty"`
	Suspicion int `json:"suspicion,omitempty"`
}

// distrust maps the suspicion count into [0,1): 0 while clean, 1/3
// after the first defense decision, asymptotically 1. The trusted
// loopback identity ("") never accrues suspicion, so in-process replay
// and recovery keep full trust.
func (l *clientLedger) distrust() float64 {
	return float64(l.Suspicion) / float64(l.Suspicion+2)
}

// ledger returns (minting if needed) a client's ledger. Callers hold
// the write lock.
func (s *Service) ledger(client string) *clientLedger {
	l := s.clients[client]
	if l == nil {
		l = &clientLedger{}
		s.clients[client] = l
	}
	return l
}

// sampleGroupOf derives a sample's static group from the event that
// first delivered it: the μ-instance values joined into one key, minus
// the leading MD5 — that value is unique per sample, while the rest
// (file size, libmagic type, PE header shape, imports) is exactly what
// the polymorphic engines leave invariant, so every sample minted from
// one variant's template shares a group. Events without a μ projection
// yield "", which the anomaly gate ignores.
func sampleGroupOf(e dataset.Event) string {
	in, ok := e.MuInstance()
	if !ok || len(in.Values) < 2 {
		return ""
	}
	return strings.Join(in.Values[1:], "\x1f")
}

// noteSampleOrigin records a first-seen sample's provenance. Callers
// hold the write lock.
func (s *Service) noteSampleOrigin(client string, e dataset.Event) {
	if !s.trackClients() {
		return
	}
	md5 := e.Sample.MD5
	if _, seen := s.sampleClient[md5]; seen {
		return
	}
	s.sampleClient[md5] = client
	s.ledger(client).Samples++
	if s.defended() {
		if g := sampleGroupOf(e); g != "" {
			s.sampleGroup[md5] = g
		}
	}
}

// defenseInput decorates a B-clusterer input with the sample's group
// and its client's current distrust. The distrust is frozen at Add
// time — it is persisted with the input, which is what keeps the
// defended partition exactly recoverable from a checkpoint.
func (s *Service) defenseInput(in bcluster.Input) bcluster.Input {
	if !s.defended() {
		return in
	}
	in.Group = s.sampleGroup[in.ID]
	if client, ok := s.sampleClient[in.ID]; ok && client != "" {
		if l := s.clients[client]; l != nil {
			in.Distrust = l.distrust()
		}
	}
	return in
}

// harvestDefense drains the clusterer's hold/park decisions into the
// provenance ledger: each decision raises the suspicion — and therefore
// the distrust weight — of the client that delivered the sample. The
// trusted loopback identity is exempt. Callers hold the write lock;
// a no-op when defenses are off.
func (s *Service) harvestDefense() {
	for _, ev := range s.b.TakeDefenseEvents() {
		client, ok := s.sampleClient[ev.ID]
		if !ok {
			continue
		}
		l := s.ledger(client)
		switch ev.Status {
		case bcluster.StatusHeld:
			l.Held++
		case bcluster.StatusParked:
			l.Parked++
		}
		if client != "" {
			l.Suspicion++
		}
	}
}

// ClientStat is one client's slice of the admission and provenance
// ledger, surfaced in Stats when StatsClients is on.
type ClientStat struct {
	// Client is the ingest identity; "" is the trusted loopback.
	Client string `json:"client"`
	// Events and Samples count applied events and first-seen samples
	// attributed to the client.
	Events  int `json:"events"`
	Samples int `json:"samples"`
	// RejectedBatches counts the client's admission refusals.
	RejectedBatches int `json:"rejected_batches,omitempty"`
	// Held and Parked count defense decisions against the client's
	// samples; Suspicion is their trust-relevant total and Distrust the
	// derived weight in [0,1).
	Held      int     `json:"held,omitempty"`
	Parked    int     `json:"parked,omitempty"`
	Suspicion int     `json:"suspicion,omitempty"`
	Distrust  float64 `json:"distrust,omitempty"`
}

// clientStats snapshots the per-client ledger, sorted by client name.
// Callers hold at least the read lock; the rejection counts take admMu.
func (s *Service) clientStats() []ClientStat {
	if !s.cfg.StatsClients || len(s.clients) == 0 {
		return nil
	}
	out := make([]ClientStat, 0, len(s.clients))
	for name, l := range s.clients {
		out = append(out, ClientStat{
			Client:    name,
			Events:    l.Events,
			Samples:   l.Samples,
			Held:      l.Held,
			Parked:    l.Parked,
			Suspicion: l.Suspicion,
			Distrust:  l.distrust(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Client < out[j].Client })
	s.admMu.Lock()
	for i := range out {
		out[i].RejectedBatches = s.rejectedByClient[out[i].Client]
	}
	s.admMu.Unlock()
	return out
}

// MergeClientStats folds per-shard client ledgers into one deployment
// view, summing by client name. The distrust of a client seen on
// several shards is the maximum — trust is a property of the client,
// and any shard's evidence counts against it.
func MergeClientStats(parts ...[]ClientStat) []ClientStat {
	byName := make(map[string]*ClientStat)
	for _, part := range parts {
		for _, cs := range part {
			agg := byName[cs.Client]
			if agg == nil {
				c := cs
				byName[cs.Client] = &c
				continue
			}
			agg.Events += cs.Events
			agg.Samples += cs.Samples
			agg.RejectedBatches += cs.RejectedBatches
			agg.Held += cs.Held
			agg.Parked += cs.Parked
			agg.Suspicion += cs.Suspicion
			if cs.Distrust > agg.Distrust {
				agg.Distrust = cs.Distrust
			}
		}
	}
	if len(byName) == 0 {
		return nil
	}
	out := make([]ClientStat, 0, len(byName))
	for _, cs := range byName {
		out = append(out, *cs)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Client < out[j].Client })
	return out
}
