// Package stream implements the incremental landscape service: a
// long-running ingestor of attack events that keeps live E/P/M/B cluster
// state, the streaming counterpart of the one-shot batch pipeline in
// internal/core.
//
// Events arrive in batches on a bounded queue (backpressure: Ingest
// blocks while the queue is full) and are applied by a single worker.
// Each EPM dimension classifies new instances against its current
// pattern set via the Classify fast path; instances no pattern matches
// accumulate in a pending pool that, once it reaches Config.EpochSize,
// triggers an epoch. Epochs are incremental (epm.Incremental): the
// engine merges only the newly arrived instances into its persistent
// value-count sketches and pattern groups, falling back to a full
// regroup only when an invariant threshold crossing invalidates the
// pattern tree, so epoch cost tracks new arrivals rather than corpus
// size while the output stays byte-identical to a full re-run of
// discovery over every instance. Cluster identity survives epochs:
// every pattern key is assigned a stable cluster ID on first appearance
// and keeps it forever, so queries never see an ID change meaning.
//
// New samples are labeled and sandbox-executed on first sight and parked
// in the incremental B-clusterer (bcluster.Incremental), which probes
// them against the LSH index at the next verification epoch. Because the
// per-sample execution randomness derives from the sample hash and the
// B partition is arrival-order independent, a replay of a batch dataset
// converges on exactly the batch pipeline's clusters — byte-identical
// memberships after Flush, at any epoch size (see the equivalence test).
package stream

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/admission"
	"repro/internal/bcluster"
	"repro/internal/behavior"
	"repro/internal/dataset"
	"repro/internal/enrich"
	"repro/internal/epm"
	"repro/internal/faultfs"
	"repro/internal/wal"
)

// Enricher supplies the per-sample enrichment the service performs on
// first sight of a sample. *enrich.Pipeline implements it; benchmarks
// substitute synthetic implementations.
type Enricher interface {
	// LabelSample assigns AV labels to a newly seen sample.
	LabelSample(s *dataset.Sample) error
	// ExecuteSample runs an executable sample in the sandbox at its
	// first-seen instant and returns its behavioral profile and whether
	// the run degraded.
	ExecuteSample(s *dataset.Sample) (*behavior.Profile, bool, error)
}

// Config parameterizes the service.
type Config struct {
	// EpochSize is the pending-pool size that triggers an EPM rebuild
	// epoch (per dimension) and a B verification epoch; 0 defers every
	// epoch to Flush ("epoch size = all").
	EpochSize int
	// QueueDepth bounds the ingest queue, in batches; Ingest blocks while
	// the queue is full. 0 selects 16.
	QueueDepth int
	// Parallelism bounds the sandbox executions per batch; 0 selects
	// GOMAXPROCS.
	Parallelism int
	// Thresholds configure EPM invariant discovery.
	Thresholds epm.Thresholds
	// BCluster configures the incremental behavioral clustering.
	BCluster bcluster.Config
	// Durability configures the write-ahead log and checkpointing; the
	// zero value keeps the service memory-only.
	Durability Durability
	// Retry configures transient-enrichment retry and quarantine.
	Retry Retry
	// Admission configures overload protection: per-client rate
	// limiting, the admission deadline, adaptive load shedding, and
	// degraded mode. The zero value disables all of it — Ingest then
	// blocks on a full queue exactly as before.
	Admission admission.Config
	// Defense configures the online poisoning defenses (see defense.go);
	// the knobs are forwarded into BCluster at construction. The zero
	// value keeps the clustering byte-identical to the undefended
	// pipeline.
	Defense Defense
	// StatsClients surfaces the per-client admission and provenance
	// ledger in Stats.Clients. The ledger is maintained whenever a
	// defense is on; this knob only controls the reporting surface.
	StatsClients bool
}

// DefaultConfig mirrors the batch pipeline's analysis parameters with a
// serving-friendly epoch size.
func DefaultConfig() Config {
	return Config{
		EpochSize:  256,
		QueueDepth: 16,
		Thresholds: epm.DefaultThresholds(),
		BCluster:   bcluster.DefaultConfig(),
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.EpochSize < 0 {
		return fmt.Errorf("stream: EpochSize %d is negative", c.EpochSize)
	}
	if c.QueueDepth < 0 {
		return fmt.Errorf("stream: QueueDepth %d is negative", c.QueueDepth)
	}
	if err := c.Thresholds.Validate(); err != nil {
		return err
	}
	if err := c.Durability.validate(); err != nil {
		return err
	}
	if err := c.Retry.validate(); err != nil {
		return err
	}
	if err := c.Admission.Validate(); err != nil {
		return err
	}
	return c.BCluster.Validate()
}

// ErrClosed is returned by Ingest and Flush after Close.
var ErrClosed = errors.New("stream: service closed")

// request is one unit of ingest-worker work.
type request struct {
	events []dataset.Event
	// client is the ingest identity the batch arrived under; "" is the
	// trusted loopback.
	client string
	flush  bool
	ckpt   bool
	errc   chan error
	// at is the enqueue instant; the worker derives the queue-wait
	// pressure signal from it.
	at time.Time
}

// Service is the streaming landscape service. Construct with New, feed
// with Ingest, snapshot with the query methods, stop with Close.
type Service struct {
	cfg      Config
	enricher Enricher

	in         chan request
	closed     chan struct{}
	workerDone chan struct{}
	closeOnce  sync.Once
	prodMu     sync.Mutex
	prodWG     sync.WaitGroup
	isClosed   bool

	// wal, applySeq (guarded by mu for readers), and the checkpoint
	// cursors are mutated by the worker only.
	wal       *wal.Log
	sinceCkpt int

	mu   sync.RWMutex
	ds   *dataset.Dataset
	dims [3]*dimension
	b    *bcluster.Incremental
	// version increments at the end of every applied mutation (batch or
	// flush), under mu. Unlike applySeq — which advances when a request
	// is logged, before its effects land — a version observed together
	// with the engines under the read lock identifies exactly that
	// state, which is what lets the shard coordinator cache merged
	// views.
	version uint64

	applySeq uint64 // seq of the last applied (or logged) record

	events           int
	rejected         int
	rejectedByReason map[string]int
	duplicates       int
	executed         int
	degraded         int
	enrichErrors     int
	staleProfiles    int
	flushes          int
	maxQueue         int
	recentErrors     []string

	retry          *retryPool
	quarantined    map[string]string
	retryScheduled int
	retryAttempts  int
	retrySuccesses int

	// Provenance (defense.go). clients and the sample-attribution maps
	// are guarded by mu and populated only when trackClients() — with
	// every knob off they stay empty and the checkpoint byte-identical.
	clients      map[string]*clientLedger
	sampleClient map[string]string
	sampleGroup  map[string]string

	// Overload protection. The limiter and shedder are nil when their
	// knobs are off; qDelay and waiters are lock-free so admission
	// decisions never serialize behind the apply worker; the ledger
	// counters take admMu; the degraded fields are guarded by mu
	// (worker-written, query-read).
	limiter    *admission.Limiter
	shedder    *admission.Shedder
	qDelay     admission.EWMA
	waiters    atomic.Int64
	storageErr atomic.Pointer[StorageFailure]

	admMu            sync.Mutex
	admittedBatches  int
	admittedEvents   int
	rejectedBatches  map[string]int
	rejectedEvents   map[string]int
	rejectedByClient map[string]int
	shedProb         float64

	degradedMode    bool
	degradedEntered int
	degradedExited  int
	epochsDeferred  int

	walAppends       int
	walAppendErrors  int
	checkpoints      int
	lastCkptSeq      uint64
	recoveredRecords int

	// Self-healing durability (durability.go, storage.go). fs is the
	// filesystem under the checkpoint writer — the os passthrough unless
	// the chaos harness injected faults; ckptGen/gens track the retained
	// fallback checkpoint generations; the remaining fields are the
	// repair/fallback/scrub ledger surfaced in Stats.Storage.
	fs            faultfs.FS
	ckptGen       uint64
	gens          []ckptGeneration
	walRepairs    int
	ckptFailures  int
	ckptFallbacks int
	corruptCkpts  int

	scrubRuns        int
	scrubSegments    int
	scrubRecords     int
	scrubCorruptions int
	scrubCorrupt     []string
	scrubLastErr     string

	// Replication. replica is immutable after construction (NewReplica
	// sets it before the service is shared), so the write-path guards
	// read it without locks; role and the applied-record counter are
	// guarded by mu.
	replica    bool
	role       string
	start      time.Time
	replicated int
}

// New starts a service. The enricher must resolve every sample the
// ingested events reference; events whose samples it rejects are
// counted, kept in the event dataset, and excluded from B-clustering.
func New(cfg Config, enricher Enricher) (*Service, error) {
	// The defense knobs live on Config.Defense; the clusterer enforces
	// them, so they are forwarded into its config before validation.
	if cfg.Defense.Enabled() {
		cfg.BCluster.MergeResistance = cfg.Defense.MergeResistance
		cfg.BCluster.TrustPenalty = cfg.Defense.TrustPenalty
		cfg.BCluster.GroupQuorum = cfg.Defense.DisagreeQuorum
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if enricher == nil {
		return nil, fmt.Errorf("stream: nil enricher")
	}
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = 16
	}
	if cfg.Retry.MaxAttempts == 0 {
		cfg.Retry.MaxAttempts = 5
	}
	if cfg.Retry.BaseBackoff == 0 {
		cfg.Retry.BaseBackoff = 1
	}
	if cfg.Retry.MaxBackoff == 0 {
		cfg.Retry.MaxBackoff = 8
	}
	if cfg.Retry.MaxBackoff < cfg.Retry.BaseBackoff {
		cfg.Retry.MaxBackoff = cfg.Retry.BaseBackoff
	}
	s := &Service{
		cfg:              cfg,
		enricher:         enricher,
		in:               make(chan request, cfg.QueueDepth),
		closed:           make(chan struct{}),
		workerDone:       make(chan struct{}),
		limiter:          admission.NewLimiter(cfg.Admission.RatePerSec, cfg.Admission.Burst, cfg.Admission.MaxClients, nil),
		shedder:          admission.NewShedder(cfg.Admission.ShedTarget, cfg.Admission.Seed),
		rejectedBatches:  make(map[string]int),
		rejectedEvents:   make(map[string]int),
		rejectedByClient: make(map[string]int),
		role:             RoleStandalone,
		start:            time.Now(),
		fs:               faultfs.OrOS(cfg.Durability.FS),
	}
	if err := s.resetState(); err != nil {
		return nil, err
	}
	if cfg.Durability.Dir != "" {
		// Recovery runs synchronously, before the worker: load the last
		// checkpoint, replay the WAL suffix through the normal apply
		// path. Callers that need liveness during a long recovery (the
		// daemon) construct the service off their serving goroutine.
		if err := s.recover(); err != nil {
			return nil, err
		}
	}
	go s.worker()
	return s, nil
}

// resetState (re)initializes every piece of recoverable landscape
// state. New calls it once before recovery; recovery calls it again
// before restoring an older checkpoint generation after a newer
// candidate proved corrupt, so a half-restored attempt never leaks into
// the fallback.
func (s *Service) resetState() error {
	b, err := bcluster.NewIncremental(s.cfg.BCluster)
	if err != nil {
		return err
	}
	s.ds = dataset.New()
	s.b = b
	for i, schema := range []epm.Schema{dataset.EpsilonSchema, dataset.PiSchema, dataset.MuSchema} {
		if s.dims[i], err = newDimension(schema, s.cfg.Thresholds); err != nil {
			return err
		}
	}
	s.rejectedByReason = make(map[string]int)
	s.retry = newRetryPool()
	s.quarantined = make(map[string]string)
	s.clients = make(map[string]*clientLedger)
	s.sampleClient = make(map[string]string)
	s.sampleGroup = make(map[string]string)
	s.events, s.rejected, s.duplicates = 0, 0, 0
	s.executed, s.degraded = 0, 0
	s.enrichErrors, s.staleProfiles, s.flushes = 0, 0, 0
	s.retryScheduled, s.retryAttempts, s.retrySuccesses = 0, 0, 0
	s.recentErrors = nil
	s.applySeq = 0
	return nil
}

// Ingest enqueues one batch of events and returns once the batch is
// queued (not yet applied). With overload protection off it blocks
// while the queue is full — that is the backpressure bound on producer
// memory — and fails only when the context ends or the service closes.
// Per-event problems (duplicate IDs, unresolvable samples) do not fail
// the batch; they are counted in Stats. Ingest is the trusted loopback
// entry: it bypasses the per-client rate limiter (the HTTP layer calls
// IngestFrom with a client key instead) but not the shedder, the
// admission deadline, or the waiter budget.
func (s *Service) Ingest(ctx context.Context, events []dataset.Event) error {
	return s.IngestFrom(ctx, "", events)
}

// IngestFrom is Ingest with a client identity for admission control:
// the batch first passes the fail-closed gate, the client's token
// bucket (client "" is exempt), and the adaptive shedder, then waits
// for queue space at most Admission.Deadline. A refusal is a typed
// *admission.Rejection carrying the reason and a retry-after hint; the
// HTTP layer maps it to 429/503 with a Retry-After header.
func (s *Service) IngestFrom(ctx context.Context, client string, events []dataset.Event) error {
	if s.replica {
		return ErrReadOnly
	}
	if len(events) == 0 {
		return nil
	}
	if err := s.admitBatch(client, len(events)); err != nil {
		return err
	}
	return s.send(ctx, request{events: append([]dataset.Event(nil), events...), client: client})
}

// Flush forces an epoch everywhere: it waits for every previously queued
// batch, rebuilds any EPM dimension that grew since its last epoch, and
// verifies every parked B sample. After Flush the cluster state equals
// the batch pipeline's over the same events. Under a persistent WAL
// failure Flush returns the read-only *StorageFailure instead of
// acknowledging state it cannot make durable.
func (s *Service) Flush(ctx context.Context) error {
	if s.replica {
		return ErrReadOnly
	}
	if err := s.StorageFailure(); err != nil {
		return err
	}
	req := request{flush: true, errc: make(chan error, 1)}
	if err := s.send(ctx, req); err != nil {
		return err
	}
	select {
	case err := <-req.errc:
		return err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// send registers the caller as a producer and enqueues the request,
// honoring the admission deadline and the global waiter budget. Event
// batches are accounted admitted/rejected here; control requests
// (flush, checkpoint) share the gates but not the ledger.
func (s *Service) send(ctx context.Context, req request) error {
	s.prodMu.Lock()
	if s.isClosed {
		s.prodMu.Unlock()
		return ErrClosed
	}
	s.prodWG.Add(1)
	s.prodMu.Unlock()
	defer s.prodWG.Done()
	req.at = time.Now()

	// Fast path: queue space is free, no waiting and no gates.
	select {
	case s.in <- req:
		if req.events != nil {
			s.noteAdmitted(len(req.events))
		}
		return nil
	default:
	}

	// The queue is full: this producer becomes a waiter. The waiter
	// budget fails fast when too many producers are already parked.
	if max := s.cfg.Admission.MaxWaiters; max > 0 {
		if int(s.waiters.Add(1)) > max {
			s.waiters.Add(-1)
			rej := &admission.Rejection{
				Reason:     admission.ReasonQueueFull,
				RetryAfter: admission.RetryAfterHint(s.qDelay.Load()),
			}
			if req.events != nil {
				s.noteRejected(req.client, string(rej.Reason), len(req.events))
			}
			return rej
		}
	} else {
		s.waiters.Add(1)
	}
	defer s.waiters.Add(-1)

	var deadline <-chan time.Time
	if d := s.cfg.Admission.Deadline; d > 0 {
		t := time.NewTimer(d)
		defer t.Stop()
		deadline = t.C
	}
	select {
	case s.in <- req:
		if req.events != nil {
			s.noteAdmitted(len(req.events))
		}
		return nil
	case <-deadline:
		rej := &admission.Rejection{
			Reason:     admission.ReasonDeadline,
			RetryAfter: admission.RetryAfterHint(s.qDelay.Load()),
		}
		if req.events != nil {
			s.noteRejected(req.client, string(rej.Reason), len(req.events))
		}
		return rej
	case <-ctx.Done():
		return ctx.Err()
	case <-s.closed:
		return ErrClosed
	}
}

// Close stops the service: new producers are refused, blocked producers
// unblock with ErrClosed, queued batches are applied, and the worker
// exits. Close is idempotent and safe to call concurrently.
func (s *Service) Close() {
	s.closeOnce.Do(func() {
		s.prodMu.Lock()
		s.isClosed = true
		s.prodMu.Unlock()
		close(s.closed)
		s.prodWG.Wait()
		close(s.in)
		<-s.workerDone
		if s.wal != nil {
			s.wal.Close()
		}
	})
}

// worker is the single mutator: it applies batches in arrival order, so
// all cluster state evolves deterministically in the record sequence.
// Every accepted request is WAL-logged before it is applied; a request
// whose append fails (after one self-heal attempt) is dropped, not
// half-applied, and the service degrades to read-only. Each dequeue
// also feeds the smoothed queue-delay signal that drives shedding and
// degraded mode.
func (s *Service) worker() {
	defer close(s.workerDone)
	for req := range s.in {
		if !req.at.IsZero() {
			s.observePressure(time.Since(req.at))
		}
		depth := len(s.in) + 1
		if req.ckpt {
			req.errc <- s.checkpoint()
			continue
		}
		var failed error
		if s.logRequest(req) {
			if req.flush {
				s.applyFlush()
			} else {
				s.applyBatch(req.client, req.events, depth)
			}
			if every := s.cfg.Durability.CheckpointEvery; s.wal != nil && every > 0 {
				s.sinceCkpt++
				if s.sinceCkpt >= every {
					// checkpoint records and accounts its own failures.
					s.checkpoint()
				}
			}
		} else if failed = s.StorageFailure(); failed == nil {
			failed = errors.New("stream: request dropped: wal append failed")
		}
		if req.errc != nil {
			req.errc <- failed
		}
	}
}

// applyBatch ingests one batch: due retries are re-drained and events
// projected under the write lock, sandbox executions run outside it
// (they are the slow part and mutate nothing the queries read), then
// profiles, B additions, and epoch triggers land under the lock again.
func (s *Service) applyBatch(client string, events []dataset.Event, depth int) {
	s.mu.Lock()
	if depth > s.maxQueue {
		s.maxQueue = depth
	}
	// execList collects every sample needing a sandbox run this batch:
	// due execute-stage retries, just-relabeled executables, first-seen
	// executables, and parked samples whose first-seen moved backwards.
	execList, seen := s.drainRetries(false)
	for _, e := range events {
		if reason, err := s.validateEvent(e); err != nil {
			s.rejected++
			s.rejectedByReason[reason]++
			s.recordError(err.Error())
			continue
		}
		var prev *dataset.Sample
		var prevFirst time.Time
		if e.HasSample() {
			if prev = s.ds.Sample(e.Sample.MD5); prev != nil {
				prevFirst = prev.FirstSeen
			}
		}
		if err := s.ds.AddEvent(e); err != nil {
			// validateEvent screened everything AddEvent checks except
			// ID reuse, the streaming world's at-least-once redelivery.
			s.duplicates++
			continue
		}
		s.events++
		if s.trackClients() {
			s.ledger(client).Events++
		}
		if err := s.dims[0].add(e.EpsilonInstance()); err != nil {
			s.recordError(err.Error())
		}
		if err := s.dims[1].add(e.PiInstance()); err != nil {
			s.recordError(err.Error())
		}
		if in, ok := e.MuInstance(); ok {
			if err := s.dims[2].add(in); err != nil {
				s.recordError(err.Error())
			}
		}
		s.epochCheck()
		if !e.HasSample() {
			continue
		}
		smp := s.ds.Sample(e.Sample.MD5)
		if prev == nil {
			s.noteSampleOrigin(client, e)
		}
		if prev == nil && !seen[smp.MD5] {
			if err := s.enricher.LabelSample(smp); err != nil {
				s.noteEnrichFailure(smp.MD5, retryLabel, err)
				continue
			}
			if smp.Executable {
				execList = append(execList, smp)
				seen[smp.MD5] = true
			}
		} else if prev != nil && smp.Executable && smp.FirstSeen.Before(prevFirst) &&
			!seen[smp.MD5] && s.retry.get(smp.MD5) == nil && !s.isQuarantined(smp.MD5) {
			// A late event moved the sample's first-seen instant
			// backwards; its profile (a function of that instant) is
			// stale. Re-execute; samples still in the retry pool pick
			// the refreshed instant up on their next attempt instead.
			execList = append(execList, smp)
			seen[smp.MD5] = true
		}
	}
	s.mu.Unlock()

	outs := s.runExecs(execList)

	s.mu.Lock()
	s.applyExecResults(execList, outs)
	s.version++
	s.mu.Unlock()
}

// outcome is one sandbox execution's result.
type outcome struct {
	profile  *behavior.Profile
	degraded bool
	err      error
}

// runExecs runs the sandbox executions on a bounded pool. They are
// slow, read-only with respect to query-visible state, and
// deterministic per sample, so they run outside the service lock.
func (s *Service) runExecs(samples []*dataset.Sample) []outcome {
	outs := make([]outcome, len(samples))
	parallelEach(len(samples), s.cfg.Parallelism, func(i int) {
		p, d, err := s.enricher.ExecuteSample(samples[i])
		outs[i] = outcome{profile: p, degraded: d, err: err}
	})
	return outs
}

// applyExecResults lands one round of execution outcomes: successes
// join (or amend) the B-clusterer and leave the retry pool, failures
// are classified transient/permanent. Callers hold the write lock.
func (s *Service) applyExecResults(samples []*dataset.Sample, outs []outcome) {
	for i, smp := range samples {
		if outs[i].err != nil {
			s.noteEnrichFailure(smp.MD5, retryExecute, outs[i].err)
			continue
		}
		if s.retry.get(smp.MD5) != nil {
			s.retrySuccesses++
			s.retry.remove(smp.MD5)
		}
		s.executed++
		if outs[i].degraded {
			s.degraded++
		}
		smp.Profile = outs[i].profile.Features()
		if s.b.Has(smp.MD5) {
			if err := s.b.Amend(smp.MD5, outs[i].profile); err != nil {
				// Already verified: its links are frozen. The refreshed
				// profile is recorded on the sample; the membership
				// keeps the original execution, and we surface the
				// divergence.
				s.staleProfiles++
				s.recordError(err.Error())
			}
			continue
		}
		if err := s.b.Add(s.defenseInput(bcluster.Input{ID: smp.MD5, Profile: outs[i].profile})); err != nil {
			s.enrichErrors++
			s.recordError(err.Error())
			continue
		}
		s.epochCheck()
	}
}

// drainRetries retries due label-stage entries inline (the oracle is
// cheap) and returns the samples needing a sandbox run — due
// execute-stage entries plus just-relabeled executables — with the set
// of their MD5s. force ignores backoff deadlines. Callers hold the
// write lock.
func (s *Service) drainRetries(force bool) ([]*dataset.Sample, map[string]bool) {
	var out []*dataset.Sample
	seen := make(map[string]bool)
	for _, e := range s.retry.due(s.applySeq, force) {
		smp := s.ds.Sample(e.md5)
		if smp == nil {
			// Unreachable: entries are only created for known samples.
			s.retry.remove(e.md5)
			continue
		}
		switch e.stage {
		case retryLabel:
			s.retryAttempts++
			if err := s.enricher.LabelSample(smp); err != nil {
				s.enrichErrors++
				s.handleRetryFailure(e, err)
				continue
			}
			s.retrySuccesses++
			s.retry.remove(e.md5)
			if smp.Executable {
				out = append(out, smp)
				seen[smp.MD5] = true
			}
		case retryExecute:
			s.retryAttempts++
			out = append(out, smp)
			seen[smp.MD5] = true
		}
	}
	return out, seen
}

// drainAllRetries retries every pooled sample, deadlines ignored, in
// rounds until the pool is empty: each round every entry either
// succeeds or burns one attempt, so the loop ends within MaxAttempts
// rounds. Flush calls it so a flushed service has nothing in flight.
func (s *Service) drainAllRetries() {
	for {
		s.mu.Lock()
		if s.retry.len() == 0 {
			s.mu.Unlock()
			return
		}
		execList, _ := s.drainRetries(true)
		s.mu.Unlock()
		outs := s.runExecs(execList)
		s.mu.Lock()
		s.applyExecResults(execList, outs)
		s.mu.Unlock()
	}
}

// noteEnrichFailure classifies one enrichment failure: pooled samples
// burn an attempt, fresh transient failures enter the retry pool with
// backoff, and permanent failures quarantine the sample. Callers hold
// the write lock.
func (s *Service) noteEnrichFailure(md5, stage string, err error) {
	s.enrichErrors++
	if e := s.retry.get(md5); e != nil {
		s.handleRetryFailure(e, err)
		return
	}
	if !enrich.IsTransient(err) || s.cfg.Retry.MaxAttempts <= 1 {
		s.quarantine(md5, err)
		return
	}
	s.retry.add(&retryEntry{
		md5:      md5,
		stage:    stage,
		attempts: 1,
		nextSeq:  s.applySeq + s.backoff(md5, 1),
		lastErr:  err.Error(),
	})
	s.retryScheduled++
	s.recordError(err.Error())
}

// handleRetryFailure burns one attempt of a pooled entry: transient
// failures reschedule with backoff until the budget runs out,
// non-transient ones quarantine immediately. Callers hold the write
// lock.
func (s *Service) handleRetryFailure(e *retryEntry, err error) {
	e.attempts++
	e.lastErr = err.Error()
	if !enrich.IsTransient(err) || e.attempts >= s.cfg.Retry.MaxAttempts {
		s.retry.remove(e.md5)
		s.quarantine(e.md5, err)
		return
	}
	e.nextSeq = s.applySeq + s.backoff(e.md5, e.attempts)
	s.recordError(err.Error())
}

// quarantine gives up on a sample's enrichment. A sample that already
// holds an integrated profile (a failed refresh) keeps its membership
// and is only flagged stale; anything else is excluded from
// B-clustering and recorded with its final error. Callers hold the
// write lock.
func (s *Service) quarantine(md5 string, err error) {
	if s.b.Has(md5) {
		s.staleProfiles++
		s.recordError("profile refresh abandoned for " + md5 + ": " + err.Error())
		return
	}
	s.quarantined[md5] = err.Error()
	s.recordError("quarantined " + md5 + ": " + err.Error())
}

func (s *Service) isQuarantined(md5 string) bool {
	_, ok := s.quarantined[md5]
	return ok
}

// recordError appends to the bounded recent-errors ring. Callers hold
// the write lock.
func (s *Service) recordError(msg string) {
	const ringCap = 16
	entry := fmt.Sprintf("seq %d: %s", s.applySeq, msg)
	if len(s.recentErrors) >= ringCap {
		copy(s.recentErrors, s.recentErrors[1:])
		s.recentErrors[len(s.recentErrors)-1] = entry
		return
	}
	s.recentErrors = append(s.recentErrors, entry)
}

// epochCheck fires any epoch whose pending pool reached the threshold.
// While the service is degraded, epochs are deferred instead: instances
// keep classifying via the fast path and samples keep parking, so the
// expensive rebuild/verification work is shed until pressure releases
// (observePressure drains it) or the next Flush forces it. Callers hold
// the write lock.
func (s *Service) epochCheck() {
	if s.cfg.EpochSize <= 0 {
		return
	}
	if s.degradedMode {
		due := s.b.Pending() >= s.cfg.EpochSize
		for _, d := range s.dims {
			due = due || d.pendingCount >= s.cfg.EpochSize
		}
		if due {
			s.epochsDeferred++
		}
		return
	}
	for _, d := range s.dims {
		if d.pendingCount >= s.cfg.EpochSize {
			d.rebuild()
		}
	}
	if s.b.Pending() >= s.cfg.EpochSize {
		s.b.Verify()
		s.harvestDefense()
	}
}

// applyFlush retries every pooled sample to completion (success or
// quarantine), then forces the final epochs: a flushed service has
// nothing in flight. Under defenses that includes quarantine — held and
// parked samples are drained into permanent singletons, so a flushed
// defended service reaches a stable state with every sample queryable
// and none silently dropped.
func (s *Service) applyFlush() {
	s.drainAllRetries()
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, d := range s.dims {
		if d.eng.Len() > d.builtLen {
			d.rebuild()
		}
	}
	s.b.Verify()
	s.harvestDefense()
	if s.defended() {
		s.b.DrainHeld()
	}
	s.flushes++
	s.version++
}

// validateEvent screens an event for the invariants the EPM engine
// enforces, so a malformed event is rejected at the door instead of
// poisoning a later epoch rebuild. The first return value is the
// rejection-reason slug surfaced in Stats.RejectedByReason.
func (s *Service) validateEvent(e dataset.Event) (string, error) {
	if e.ID == "" {
		return "empty-id", fmt.Errorf("stream: event with empty ID")
	}
	if e.Attacker == "" || e.Sensor == "" {
		return "missing-source", fmt.Errorf("stream: event %s needs attacker and sensor", e.ID)
	}
	check := func(in epm.Instance) error {
		for _, v := range in.Values {
			if v == epm.Wildcard {
				return fmt.Errorf("stream: event %s uses reserved value %q", e.ID, epm.Wildcard)
			}
		}
		return nil
	}
	if err := check(e.EpsilonInstance()); err != nil {
		return "reserved-value", err
	}
	if err := check(e.PiInstance()); err != nil {
		return "reserved-value", err
	}
	if in, ok := e.MuInstance(); ok {
		if err := check(in); err != nil {
			return "reserved-value", err
		}
	}
	return "", nil
}

// parallelEach runs fn(i) for i in [0,n) on a bounded worker pool; with
// workers <= 1 it runs inline.
func parallelEach(n, workers int, fn func(i int)) {
	if n == 0 {
		return
	}
	if workers <= 0 || workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}

// dimension is the incremental state of one EPM dimension. The epoch
// engine (epm.Incremental) owns the instance log, the per-feature value
// sketches, and the pattern groups; the dimension layers the service's
// stable cluster IDs and provisional fast-path classifications on top.
type dimension struct {
	schema     epm.Schema
	thresholds epm.Thresholds

	eng          *epm.Incremental
	clustering   *epm.Clustering // nil before the first epoch
	epoch        int
	builtLen     int // eng.Len() at the last epoch
	pendingCount int

	stable     map[string]int // pattern key -> stable cluster ID
	nextStable int
	// provAssign maps only the instances the fast path classified since
	// the last epoch; epoch-built instances resolve through the engine
	// (assignOf), so the dimension never mirrors the corpus-sized
	// instance -> cluster table the engine already maintains.
	provAssign  map[string]int // instance ID -> provisional stable cluster ID
	provisional map[int]int    // stable ID -> members classified since the last epoch
}

func newDimension(schema epm.Schema, th epm.Thresholds) (*dimension, error) {
	eng, err := epm.NewIncremental(schema, th)
	if err != nil {
		return nil, err
	}
	return &dimension{
		schema:      schema,
		thresholds:  th,
		eng:         eng,
		stable:      make(map[string]int),
		provAssign:  make(map[string]int),
		provisional: make(map[int]int),
	}, nil
}

// add records one instance: classified provisionally when the current
// pattern set matches it, pooled as pending otherwise. An engine
// rejection (impossible for instances that passed validateEvent and the
// dataset's duplicate screen) leaves the dimension unchanged. The
// dataset screen is also why the trusted engine path is sound here:
// every instance ID is an event ID the store has already deduplicated.
func (d *dimension) add(in epm.Instance) error {
	if err := d.eng.AddTrusted(in); err != nil {
		return err
	}
	if d.clustering != nil {
		if p, _, ok := d.clustering.Classify(in.Values); ok {
			sid := d.stableOf(p.Key())
			d.provAssign[in.ID] = sid
			d.provisional[sid]++
			return nil
		}
	}
	d.pendingCount++
	return nil
}

// rebuild runs one epoch. The engine integrates only the instances added
// since the last epoch (falling back to a full regroup when an invariant
// threshold crossing invalidates the pattern tree), so the epoch cost
// tracks new arrivals, not corpus size.
func (d *dimension) rebuild() {
	c, _ := d.eng.Epoch()
	d.clustering = c
	d.epoch++
	d.builtLen = d.eng.Len()
	d.pendingCount = 0
	clear(d.provisional)
	clear(d.provAssign)
	// Clusters are visited largest-first, so fresh patterns take stable
	// IDs in that (deterministic) order; patterns seen in any earlier
	// epoch keep the ID they were born with. Minting is all an epoch has
	// to do: per-instance assignments — including the instances the fast
	// path classified provisionally, whose pattern match the fresh
	// clustering supersedes — resolve through the engine on demand
	// (assignOf), so the epoch never sweeps a corpus-sized table.
	for i := range c.Clusters {
		d.stableOf(c.Clusters[i].Pattern.Key())
	}
}

// assignOf resolves the stable cluster ID of an instance: provisional
// fast-path classifications first, then the engine's epoch assignment.
func (d *dimension) assignOf(id string) (int, bool) {
	if sid, ok := d.provAssign[id]; ok {
		return sid, true
	}
	if d.clustering == nil {
		return 0, false
	}
	ci := d.clustering.ClusterOf(id)
	if ci < 0 {
		return 0, false
	}
	return d.stable[d.clustering.Clusters[ci].Pattern.Key()], true
}

// stableOf resolves (or mints) the stable cluster ID of a pattern key.
func (d *dimension) stableOf(key string) int {
	if id, ok := d.stable[key]; ok {
		return id
	}
	id := d.nextStable
	d.nextStable++
	d.stable[key] = id
	return id
}

// clusterViews snapshots the dimension's clusters.
func (d *dimension) clusterViews() []EPMClusterView {
	if d.clustering == nil {
		return nil
	}
	out := make([]EPMClusterView, 0, len(d.clustering.Clusters))
	for i := range d.clustering.Clusters {
		cl := &d.clustering.Clusters[i]
		sid := d.stable[cl.Pattern.Key()]
		out = append(out, EPMClusterView{
			StableID:  sid,
			EpochID:   cl.ID,
			Pattern:   cl.Pattern.Values,
			Size:      cl.Size() + d.provisional[sid],
			Attackers: cl.Attackers,
			Sensors:   cl.Sensors,
		})
	}
	return out
}

// Dimension name constants accepted by the query methods.
const (
	DimEpsilon = "epsilon"
	DimPi      = "pi"
	DimMu      = "mu"
)

// dim resolves a dimension name ("epsilon"/"pi"/"mu" or "e"/"p"/"m").
func (s *Service) dim(name string) (*dimension, error) {
	switch name {
	case DimEpsilon, "e":
		return s.dims[0], nil
	case DimPi, "p":
		return s.dims[1], nil
	case DimMu, "m":
		return s.dims[2], nil
	}
	return nil, fmt.Errorf("stream: unknown dimension %q", name)
}

// EPMClusterView is one cluster of an EPM dimension snapshot.
type EPMClusterView struct {
	// StableID survives epochs: a pattern keeps its ID forever.
	StableID int `json:"stable_id"`
	// EpochID is the dense largest-first index within the current epoch.
	EpochID int `json:"epoch_id"`
	// Pattern is the invariant tuple (wildcards included).
	Pattern []string `json:"pattern"`
	// Size counts epoch members plus provisional classifications since.
	Size int `json:"size"`
	// Attackers and Sensors count distinct sources among epoch members.
	Attackers int `json:"attackers"`
	Sensors   int `json:"sensors"`
}

// EPMView is a snapshot of one EPM dimension.
type EPMView struct {
	Dimension string `json:"dimension"`
	Epoch     int    `json:"epoch"`
	Instances int    `json:"instances"`
	Pending   int    `json:"pending"`
	// Degraded marks the snapshot as served under pressure: epoch
	// rebuilds are deferred, so Clusters is the last epoch's view plus
	// provisional fast-path classifications.
	Degraded bool             `json:"degraded"`
	Clusters []EPMClusterView `json:"clusters"`
}

// EPMClusters snapshots the named dimension ("epsilon"/"pi"/"mu" or
// single-letter aliases).
func (s *Service) EPMClusters(name string) (EPMView, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	d, err := s.dim(name)
	if err != nil {
		return EPMView{}, err
	}
	return EPMView{
		Dimension: d.schema.Dimension,
		Epoch:     d.epoch,
		Instances: d.eng.Len(),
		Pending:   d.pendingCount,
		Degraded:  s.degradedMode,
		Clusters:  d.clusterViews(),
	}, nil
}

// BClusterView is one behavioral cluster in a snapshot.
type BClusterView struct {
	// ID is dense largest-first within this snapshot; Representative —
	// the lexicographically smallest member MD5 — is the stable handle.
	ID             int    `json:"id"`
	Representative string `json:"representative"`
	Size           int    `json:"size"`
}

// BView is a snapshot of the behavioral clustering.
type BView struct {
	Samples int `json:"samples"`
	Pending int `json:"pending"`
	Epochs  int `json:"epochs"`
	// Degraded marks the snapshot as served under pressure: B
	// verification epochs are deferred, so parked samples stay
	// singletons longer than usual.
	Degraded bool           `json:"degraded"`
	Clusters []BClusterView `json:"clusters"`
}

// BClusters snapshots the behavioral clustering; parked samples appear
// as singletons.
func (s *Service) BClusters() BView {
	s.mu.RLock()
	defer s.mu.RUnlock()
	res := s.b.Result()
	out := make([]BClusterView, len(res.Clusters))
	for i, c := range res.Clusters {
		out[i] = BClusterView{ID: c.ID, Representative: c.Members[0], Size: c.Size()}
	}
	return BView{
		Samples:  s.b.Samples(),
		Pending:  s.b.Pending(),
		Epochs:   s.b.Epochs(),
		Degraded: s.degradedMode,
		Clusters: out,
	}
}

// SampleView is the per-sample query result.
type SampleView struct {
	MD5             string    `json:"md5"`
	FirstSeen       time.Time `json:"first_seen"`
	Events          int       `json:"events"`
	Executable      bool      `json:"executable"`
	AVLabel         string    `json:"av_label,omitempty"`
	ProfileFeatures int       `json:"profile_features"`
	// BPending reports the sample is parked awaiting verification.
	BPending bool `json:"b_pending"`
	// BStatus is the defense disposition (clustered, held, parked,
	// drained); empty when the defenses are off.
	BStatus string `json:"b_status,omitempty"`
	// Client is the ingest identity that first delivered the sample;
	// populated when the provenance ledger is maintained.
	Client string `json:"client,omitempty"`
	// BRepresentative and BSize describe the sample's current B-cluster.
	BRepresentative string `json:"b_representative,omitempty"`
	BSize           int    `json:"b_size"`
	// MClusters lists the stable μ-cluster IDs of the sample's events.
	MClusters []int `json:"m_clusters"`
}

// Sample queries one sample by MD5.
func (s *Service) Sample(md5 string) (SampleView, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	smp := s.ds.Sample(md5)
	if smp == nil {
		return SampleView{}, false
	}
	v := SampleView{
		MD5:             smp.MD5,
		FirstSeen:       smp.FirstSeen,
		Events:          smp.Events,
		Executable:      smp.Executable,
		AVLabel:         smp.AVLabel,
		ProfileFeatures: len(smp.Profile),
	}
	if s.b.Has(md5) {
		res := s.b.Result()
		if i := res.ClusterOf(md5); i >= 0 {
			v.BRepresentative = res.Clusters[i].Members[0]
			v.BSize = res.Clusters[i].Size()
		}
		v.BPending = s.b.Pending() > 0 && v.BSize == 1
		if s.defended() {
			if st, ok := s.b.SampleStatus(md5); ok {
				v.BStatus = st.String()
			}
		}
	}
	if c, ok := s.sampleClient[md5]; ok && c != "" {
		v.Client = c
	}
	mSet := map[int]bool{}
	for _, e := range s.ds.EventsOfSample(md5) {
		if sid, ok := s.dims[2].assignOf(e.ID); ok {
			mSet[sid] = true
		}
	}
	v.MClusters = make([]int, 0, len(mSet))
	for sid := range mSet {
		v.MClusters = append(v.MClusters, sid)
	}
	sort.Ints(v.MClusters)
	return v, true
}

// DimStats summarizes one EPM dimension for Stats. DeltaEpochs and
// FullRegroups split the engine-level epoch work (a recovery replays the
// built prefix as one full regroup, so the split is path-dependent in a
// way Epoch is not).
type DimStats struct {
	Epoch        int `json:"epoch"`
	Clusters     int `json:"clusters"`
	Instances    int `json:"instances"`
	Pending      int `json:"pending"`
	DeltaEpochs  int `json:"delta_epochs"`
	FullRegroups int `json:"full_regroups"`
}

// BStats summarizes the behavioral clustering for Stats.
type BStats struct {
	Samples        int `json:"samples"`
	Pending        int `json:"pending"`
	Epochs         int `json:"epochs"`
	Clusters       int `json:"clusters"`
	CandidatePairs int `json:"candidate_pairs"`
	Links          int `json:"links"`
}

// Stats is the service-wide counter snapshot.
type Stats struct {
	// Role is the replication role: standalone, primary, or replica.
	Role     string `json:"role"`
	UptimeMS int64  `json:"uptime_ms"`
	// Replicated counts WAL records a replica applied from its primary.
	Replicated        int            `json:"replicated,omitempty"`
	Events            int            `json:"events"`
	Rejected          int            `json:"rejected"`
	RejectedByReason  map[string]int `json:"rejected_by_reason,omitempty"`
	Duplicates        int            `json:"duplicates"`
	Samples           int            `json:"samples"`
	ExecutableSamples int            `json:"executable_samples"`
	Executed          int            `json:"executed"`
	Degraded          int            `json:"degraded"`
	EnrichErrors      int            `json:"enrich_errors"`
	StaleProfiles     int            `json:"stale_profiles"`
	Flushes           int            `json:"flushes"`
	RecentErrors      []string       `json:"recent_errors,omitempty"`
	QueueCap          int            `json:"queue_cap"`
	QueueDepth        int            `json:"queue_depth"`
	MaxQueueDepth     int            `json:"max_queue_depth"`
	// Fatal carries the storage-failure error once persistent durability
	// failure moved the service to read-only mode; empty while healthy.
	// Storage carries the full durability-health ledger (read-only mode,
	// self-heal repairs, checkpoint generations, scrub results).
	Fatal     string         `json:"fatal,omitempty"`
	Storage   StorageStats   `json:"storage"`
	Admission AdmissionStats `json:"admission"`
	Retry     RetryStats     `json:"retry"`
	WAL       WALStats       `json:"wal"`
	Epsilon   DimStats       `json:"epsilon"`
	Pi        DimStats       `json:"pi"`
	Mu        DimStats       `json:"mu"`
	B         BStats         `json:"b"`
	// Defense carries the poisoning-defense counters (held and parked
	// samples, quarantined merges, releases, drains); nil when the
	// defenses are off.
	Defense *bcluster.DefenseStats `json:"defense,omitempty"`
	// Clients is the per-client admission and provenance ledger,
	// populated when Config.StatsClients is on.
	Clients []ClientStat `json:"clients,omitempty"`
}

// Stats snapshots the service counters.
func (s *Service) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	dimStats := func(d *dimension) DimStats {
		n := 0
		if d.clustering != nil {
			n = len(d.clustering.Clusters)
		}
		return DimStats{
			Epoch:        d.epoch,
			Clusters:     n,
			Instances:    d.eng.Len(),
			Pending:      d.pendingCount,
			DeltaEpochs:  d.eng.DeltaEpochs(),
			FullRegroups: d.eng.FullRegroups(),
		}
	}
	bs := s.b.Stats()
	var byReason map[string]int
	if len(s.rejectedByReason) > 0 {
		byReason = make(map[string]int, len(s.rejectedByReason))
		for k, v := range s.rejectedByReason {
			byReason[k] = v
		}
	}
	var recent []string
	if len(s.recentErrors) > 0 {
		recent = append(recent, s.recentErrors...)
	}
	walStats := WALStats{
		Enabled:           s.wal != nil,
		Appends:           s.walAppends,
		AppendErrors:      s.walAppendErrors,
		Checkpoints:       s.checkpoints,
		LastCheckpointSeq: s.lastCkptSeq,
		RecoveredRecords:  s.recoveredRecords,
	}
	if s.wal != nil {
		walStats.LastSeq = s.wal.LastSeq()
	}
	var fatal string
	if err := s.StorageFailure(); err != nil {
		fatal = err.Error()
	}
	var defense *bcluster.DefenseStats
	if s.defended() {
		d := s.b.DefenseStats()
		defense = &d
	}
	return Stats{
		Defense: defense,
		Clients: s.clientStats(),
		Role:              s.role,
		UptimeMS:          time.Since(s.start).Milliseconds(),
		Replicated:        s.replicated,
		Fatal:             fatal,
		Storage:           s.storageStats(),
		Admission:         s.admissionStats(),
		Events:            s.events,
		Rejected:          s.rejected,
		RejectedByReason:  byReason,
		Duplicates:        s.duplicates,
		Samples:           s.ds.SampleCount(),
		ExecutableSamples: s.ds.ExecutableSampleCount(),
		Executed:          s.executed,
		Degraded:          s.degraded,
		EnrichErrors:      s.enrichErrors,
		StaleProfiles:     s.staleProfiles,
		Flushes:           s.flushes,
		RecentErrors:      recent,
		QueueCap:          cap(s.in),
		QueueDepth:        len(s.in),
		MaxQueueDepth:     s.maxQueue,
		Retry: RetryStats{
			Pending:     s.retry.len(),
			Scheduled:   s.retryScheduled,
			Attempts:    s.retryAttempts,
			Successes:   s.retrySuccesses,
			Quarantined: len(s.quarantined),
		},
		WAL:     walStats,
		Epsilon: dimStats(s.dims[0]),
		Pi:      dimStats(s.dims[1]),
		Mu:      dimStats(s.dims[2]),
		B: BStats{
			Samples:        s.b.Samples(),
			Pending:        s.b.Pending(),
			Epochs:         s.b.Epochs(),
			Clusters:       s.b.Components(),
			CandidatePairs: bs.CandidatePairs,
			Links:          bs.Links,
		},
	}
}

// Quarantined snapshots the quarantined samples: MD5 -> final error.
func (s *Service) Quarantined() map[string]string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[string]string, len(s.quarantined))
	for k, v := range s.quarantined {
		out[k] = v
	}
	return out
}

// Counts mirrors core.Results.Counts for convergence checks: events,
// samples, executable samples, and the E/P/M/B cluster counts.
func (s *Service) Counts() (events, samples, executable, e, p, m, b int) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := func(d *dimension) int {
		if d.clustering == nil {
			return 0
		}
		return len(d.clustering.Clusters)
	}
	return s.ds.EventCount(), s.ds.SampleCount(), s.ds.ExecutableSampleCount(),
		n(s.dims[0]), n(s.dims[1]), n(s.dims[2]), s.b.Components()
}

// EPMClustering exposes the named dimension's current epoch clustering
// for equivalence tests and reporting. The returned clustering is the
// live object: callers must treat it as read-only and must not retain it
// across concurrent ingestion.
func (s *Service) EPMClustering(name string) (*epm.Clustering, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	d, err := s.dim(name)
	if err != nil {
		return nil, err
	}
	return d.clustering, nil
}

// BResult assembles the current behavioral partition (see
// bcluster.Incremental.Result).
func (s *Service) BResult() *bcluster.Result {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.b.Result()
}

// Dataset exposes the accumulated dataset for reporting after ingestion
// has stopped; it must not be used concurrently with live producers.
func (s *Service) Dataset() *dataset.Dataset {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.ds
}
