package stream_test

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/bcluster"
	"repro/internal/core"
	"repro/internal/enrich"
	"repro/internal/stream"
)

// bMembers reduces a behavioral clustering to its membership partition
// (cluster IDs and stats are presentation, not identity).
func bMembers(r *bcluster.Result) [][]string {
	out := make([][]string, len(r.Clusters))
	for i, c := range r.Clusters {
		out[i] = c.Members
	}
	return out
}

// TestReplayMatchesBatch is the streaming/batch equivalence gate: a
// replay of the full SmallScenario event sequence through the service
// must end on exactly the clusters the one-shot batch pipeline computes
// — byte-identical E/P/M memberships and identical B partitions — at
// epoch size 1 (rebuild on every pending instance), 64, and "all"
// (EpochSize=0, single epoch at Flush).
func TestReplayMatchesBatch(t *testing.T) {
	if testing.Short() {
		t.Skip("replays the SmallScenario three times")
	}
	sc := core.SmallScenario()
	batch, err := core.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	events := batch.Dataset.Events()
	bEvents, bSamples, bExec, bE, bP, bM, bB := batch.Counts()

	for _, epochSize := range []int{1, 64, 0} {
		cfg := stream.Config{
			EpochSize:  epochSize,
			Thresholds: sc.Thresholds,
			BCluster:   sc.Enrichment.BCluster,
		}
		// The batch run's own enrichment pipeline: execution randomness
		// derives from the sample hash, so re-executing streamed samples
		// reproduces the batch profiles exactly.
		svc, err := stream.New(cfg, batch.Pipeline)
		if err != nil {
			t.Fatal(err)
		}
		if err := stream.Replay(context.Background(), svc, events, 97); err != nil {
			t.Fatal(err)
		}

		gEvents, gSamples, gExec, gE, gP, gM, gB := svc.Counts()
		if gEvents != bEvents || gSamples != bSamples || gExec != bExec ||
			gE != bE || gP != bP || gM != bM || gB != bB {
			t.Fatalf("epoch=%d: counts (%d,%d,%d,%d,%d,%d,%d) != batch (%d,%d,%d,%d,%d,%d,%d)",
				epochSize, gEvents, gSamples, gExec, gE, gP, gM, gB,
				bEvents, bSamples, bExec, bE, bP, bM, bB)
		}

		e, _ := svc.EPMClustering("epsilon")
		p, _ := svc.EPMClustering("pi")
		m, _ := svc.EPMClustering("mu")
		if !reflect.DeepEqual(e.Clusters, batch.E.Clusters) {
			t.Fatalf("epoch=%d: epsilon clusters diverge from batch", epochSize)
		}
		if !reflect.DeepEqual(p.Clusters, batch.P.Clusters) {
			t.Fatalf("epoch=%d: pi clusters diverge from batch", epochSize)
		}
		if !reflect.DeepEqual(m.Clusters, batch.M.Clusters) {
			t.Fatalf("epoch=%d: mu clusters diverge from batch", epochSize)
		}
		if !reflect.DeepEqual(bMembers(svc.BResult()), bMembers(batch.B)) {
			t.Fatalf("epoch=%d: B partition diverges from batch", epochSize)
		}

		st := svc.Stats()
		if st.EnrichErrors != 0 || st.StaleProfiles != 0 || st.Rejected != 0 || st.Duplicates != 0 {
			t.Fatalf("epoch=%d: unclean replay: %+v", epochSize, st)
		}
		if st.Executed != bExec {
			t.Fatalf("epoch=%d: executed %d samples, batch executed %d", epochSize, st.Executed, bExec)
		}
		svc.Close()
	}
}

// TestReplayWithFaultsMatchesBatch composes the two gates: the full
// SmallScenario replay, with a 30% transient fault rate injected in
// front of the batch pipeline's own enricher, must still converge on
// exactly the batch clusters — retries are invisible to the landscape.
func TestReplayWithFaultsMatchesBatch(t *testing.T) {
	if testing.Short() {
		t.Skip("replays the SmallScenario")
	}
	sc := core.SmallScenario()
	batch, err := core.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	events := batch.Dataset.Events()

	cfg := stream.Config{
		EpochSize:  64,
		Thresholds: sc.Thresholds,
		BCluster:   sc.Enrichment.BCluster,
		Retry:      stream.Retry{MaxAttempts: 10},
	}
	faulty := enrich.NewFaulty(batch.Pipeline, enrich.FaultConfig{Seed: 11, Rate: 0.3})
	svc, err := stream.New(cfg, faulty)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if err := stream.Replay(context.Background(), svc, events, 97); err != nil {
		t.Fatal(err)
	}

	st := svc.Stats()
	if tr, perm := faulty.Injected(); tr == 0 || perm != 0 {
		t.Fatalf("injected %d transient / %d permanent, want >0 / 0", tr, perm)
	}
	if st.Retry.Quarantined != 0 || st.Retry.Pending != 0 {
		t.Fatalf("transient-only faults must not lose samples: %+v (%v)", st.Retry, svc.Quarantined())
	}
	_, _, bExec, _, _, _, _ := batch.Counts()
	if st.Executed != bExec {
		t.Fatalf("executed %d samples, batch executed %d", st.Executed, bExec)
	}
	e, _ := svc.EPMClustering("epsilon")
	p, _ := svc.EPMClustering("pi")
	m, _ := svc.EPMClustering("mu")
	if !reflect.DeepEqual(e.Clusters, batch.E.Clusters) ||
		!reflect.DeepEqual(p.Clusters, batch.P.Clusters) ||
		!reflect.DeepEqual(m.Clusters, batch.M.Clusters) {
		t.Fatal("EPM clusters diverge from batch under faults")
	}
	if !reflect.DeepEqual(bMembers(svc.BResult()), bMembers(batch.B)) {
		t.Fatal("B partition diverges from batch under faults")
	}
}
