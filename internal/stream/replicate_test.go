package stream_test

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/stream"
)

// shipTo rebuilds rep from primary's durability artifacts exactly the
// way a follower does: newest checkpoint via RestoreSnapshot, then
// every WAL record past it through ApplyReplicated, read frame by
// frame off the shipping surface.
func shipTo(t *testing.T, rep, primary *stream.Service) {
	t.Helper()
	dir, log := primary.ReplicationSource()
	if log == nil {
		t.Fatal("primary has no replication source")
	}
	blob, err := os.ReadFile(filepath.Join(dir, "checkpoint.json"))
	switch {
	case err == nil:
		if err := rep.RestoreSnapshot(blob); err != nil {
			t.Fatal(err)
		}
	case errors.Is(err, os.ErrNotExist):
	default:
		t.Fatal(err)
	}
	segs, err := log.Segments()
	if err != nil {
		t.Fatal(err)
	}
	for _, seg := range segs {
		if seg.LastSeq < seg.FirstSeq || seg.LastSeq <= rep.AppliedSeq() {
			continue
		}
		sr, err := log.OpenSegment(seg.FirstSeq, rep.AppliedSeq()+1)
		if err != nil {
			t.Fatal(err)
		}
		for {
			seq, payload, err := sr.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			if err := rep.ApplyReplicated(seq, payload); err != nil {
				t.Fatal(err)
			}
		}
		sr.Close()
	}
	if got, want := rep.AppliedSeq(), log.LastSeq(); got != want {
		t.Fatalf("replica applied seq %d, primary at %d", got, want)
	}
}

// TestReplicaEquivalence is the replication correctness gate at the
// service level: a replica rebuilt from a mid-stream checkpoint plus
// the shipped WAL suffix must be byte-identical — stable-ID EPM views,
// B partition, landscape counters, and the JSON the query endpoints
// would serve — to the primary it followed, including the rejection
// and duplicate accounting a dirty corpus produces.
func TestReplicaEquivalence(t *testing.T) {
	events := dirtyCorpus(120)
	ctx := context.Background()
	cfg := testConfig(8)
	cfg.Durability = stream.Durability{Dir: t.TempDir(), NoSync: true, SegmentBytes: 1 << 10}
	primary, err := stream.New(cfg, fakeEnricher{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(primary.Close)
	const batchSize = 10
	for bi := 0; bi*batchSize < len(events); bi++ {
		lo, hi := bi*batchSize, (bi+1)*batchSize
		if hi > len(events) {
			hi = len(events)
		}
		if err := primary.Ingest(ctx, events[lo:hi]); err != nil {
			t.Fatal(err)
		}
		if bi == 5 {
			// Mid-stream checkpoint: bootstrap must splice checkpoint
			// restore and WAL-suffix replay, not replay from seq 1.
			if err := primary.Checkpoint(ctx); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := primary.Flush(ctx); err != nil {
		t.Fatal(err)
	}

	rep, err := stream.NewReplica(testConfig(8), fakeEnricher{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rep.Close)
	shipTo(t, rep, primary)
	compareServices(t, "replica", rep, primary)
	for _, dim := range []string{"epsilon", "pi", "mu"} {
		rv, err := rep.EPMClusters(dim)
		if err != nil {
			t.Fatal(err)
		}
		pv, err := primary.EPMClusters(dim)
		if err != nil {
			t.Fatal(err)
		}
		rb, _ := json.Marshal(rv)
		pb, _ := json.Marshal(pv)
		if string(rb) != string(pb) {
			t.Fatalf("%s view JSON diverges:\nreplica %s\nprimary %s", dim, rb, pb)
		}
	}
	rb, _ := json.Marshal(rep.BClusters())
	pb, _ := json.Marshal(primary.BClusters())
	if string(rb) != string(pb) {
		t.Fatalf("b view JSON diverges:\nreplica %s\nprimary %s", rb, pb)
	}
	if rep.Stats().Role != stream.RoleReplica {
		t.Fatalf("replica role %q", rep.Stats().Role)
	}
}

func TestReplicaRefusesWritesAndGaps(t *testing.T) {
	ctx := context.Background()
	rep, err := stream.NewReplica(testConfig(8), fakeEnricher{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rep.Close)
	if err := rep.Ingest(ctx, cleanCorpus(1)); !errors.Is(err, stream.ErrReadOnly) {
		t.Fatalf("Ingest on replica: %v, want ErrReadOnly", err)
	}
	if err := rep.Flush(ctx); !errors.Is(err, stream.ErrReadOnly) {
		t.Fatalf("Flush on replica: %v, want ErrReadOnly", err)
	}
	if err := rep.Checkpoint(ctx); !errors.Is(err, stream.ErrReadOnly) {
		t.Fatalf("Checkpoint on replica: %v, want ErrReadOnly", err)
	}

	// Out-of-order records are a gap, never silently applied.
	var gap *stream.ReplicationGapError
	err = rep.ApplyReplicated(5, []byte(`{"kind":"batch"}`))
	if !errors.As(err, &gap) || gap.Want != 1 || gap.Got != 5 {
		t.Fatalf("ApplyReplicated(5) = %v, want gap {1,5}", err)
	}
	if err := rep.ApplyReplicated(1, []byte(`{"kind":"bogus"}`)); err == nil {
		t.Fatal("unknown record kind must error")
	}
	if rep.AppliedSeq() != 0 {
		t.Fatalf("failed applies advanced seq to %d", rep.AppliedSeq())
	}

	// The replica-only surface stays off-limits to normal services.
	std := newTestService(t, testConfig(8))
	if err := std.ApplyReplicated(1, []byte(`{"kind":"batch"}`)); err == nil {
		t.Fatal("ApplyReplicated on a standalone service must error")
	}
	if err := std.RestoreSnapshot([]byte(`{}`)); err == nil {
		t.Fatal("RestoreSnapshot on a standalone service must error")
	}
	if std.Stats().Role != stream.RoleStandalone {
		t.Fatalf("standalone role %q", std.Stats().Role)
	}

	// RestoreSnapshot is bootstrap-only: it refuses a non-fresh replica.
	if err := rep.ApplyReplicated(1, []byte(`{"kind":"flush"}`)); err != nil {
		t.Fatal(err)
	}
	if err := rep.RestoreSnapshot([]byte(`{"version":1}`)); err == nil {
		t.Fatal("RestoreSnapshot after applied records must error")
	}
}
