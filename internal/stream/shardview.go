package stream

// This file is the service's surface toward internal/shard: the
// coordinator merges several services' incremental engines into global
// clusterings, and needs a consistent, lock-scoped view of the live
// state plus a cache key that identifies it.

import (
	"repro/internal/bcluster"
	"repro/internal/epm"
)

// EngineView exposes the live incremental engines of one service for a
// cross-shard merge. The engines are the apply worker's own state:
// everything reachable through the view is valid only between
// AcquireView and its release, and must be treated as read-only.
type EngineView struct {
	// EPM holds the ε/π/μ epoch engines, in schema order.
	EPM [3]*epm.Incremental
	// B is the incremental behavioral clusterer.
	B *bcluster.Incremental
	// Version identifies the state snapshot: it changes whenever an
	// applied mutation changed any engine (see Service.Version).
	Version uint64
}

// AcquireView read-locks the service and returns its engine view along
// with the release function. The caller must call release promptly —
// the apply worker blocks on its write lock for the duration — and must
// not retain any engine pointer past it. Acquiring views of several
// services in a fixed order is how the coordinator gets one consistent
// multi-shard snapshot.
func (s *Service) AcquireView() (EngineView, func()) {
	s.mu.RLock()
	return EngineView{
		EPM:     [3]*epm.Incremental{s.dims[0].eng, s.dims[1].eng, s.dims[2].eng},
		B:       s.b,
		Version: s.version,
	}, s.mu.RUnlock
}

// Version reports the state version: a counter that increments after
// every applied mutation. Two equal versions bracket an unchanged
// landscape state, which is what merged-view caches key off.
func (s *Service) Version() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.version
}

// SampleEventIDs lists the IDs of the events that referenced the
// sample, in arrival order; nil for an unknown sample. The coordinator
// uses it to remap a sample's μ-cluster memberships through the merged
// clustering.
func (s *Service) SampleEventIDs(md5 string) []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	evs := s.ds.EventsOfSample(md5)
	if len(evs) == 0 {
		return nil
	}
	out := make([]string, len(evs))
	for i := range evs {
		out[i] = evs[i].ID
	}
	return out
}

// StatsPayload adapts Stats to the httpapi backend interface, which
// serves whatever stats shape the backend produces.
func (s *Service) StatsPayload() any { return s.Stats() }
