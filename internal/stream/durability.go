package stream

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/bcluster"
	"repro/internal/dataset"
	"repro/internal/epm"
	"repro/internal/wal"
)

// Durability configures crash safety. With a Dir set, every accepted
// request (batch or flush) is appended to a write-ahead log before it
// is applied, and checkpoints serialize the full service state so
// recovery is "load checkpoint, replay WAL suffix". The zero value
// disables persistence.
type Durability struct {
	// Dir holds the WAL segments and the checkpoint file.
	Dir string
	// CheckpointEvery checkpoints automatically after every N applied
	// records; 0 checkpoints only on explicit Checkpoint calls.
	CheckpointEvery int
	// SegmentBytes is the WAL rotation threshold; 0 selects 8 MiB.
	SegmentBytes int64
	// NoSync skips fsyncs (see wal.Options.NoSync); tests use it.
	NoSync bool
}

func (d Durability) validate() error {
	if d.CheckpointEvery < 0 {
		return fmt.Errorf("stream: CheckpointEvery %d is negative", d.CheckpointEvery)
	}
	return nil
}

const (
	checkpointName    = "checkpoint.json"
	checkpointVersion = 1

	walKindBatch = "batch"
	walKindFlush = "flush"
)

// walRecord is the WAL payload: the raw accepted request. Batches are
// logged before validation, so replay reproduces rejection and
// duplicate accounting too; flushes are logged because flush-forced
// epochs mint stable cluster IDs that recovery must re-mint.
type walRecord struct {
	Kind   string          `json:"kind"`
	Events []dataset.Event `json:"events,omitempty"`
	// Client is the ingest identity the batch arrived under, so replay
	// and replication rebuild the same provenance attribution.
	Client string `json:"client,omitempty"`
}

// checkpointFile is the atomic on-disk snapshot. Everything not listed
// is a deterministic function of what is: instances re-project from the
// events, EPM clusterings re-derive from the instances and watermarks,
// and the B-clusterer restores from its own state record. MaxQueueDepth
// is deliberately absent — queue depth is path-dependent, not part of
// the landscape state.
type checkpointFile struct {
	Version     int                       `json:"version"`
	Seq         uint64                    `json:"seq"` // every record <= Seq is reflected
	Events      []dataset.Event           `json:"events"`
	Samples     []sampleEnrichment        `json:"samples,omitempty"`
	Counters    checkpointCounters        `json:"counters"`
	Dims        [3]dimState               `json:"dims"`
	B           bcluster.IncrementalState `json:"b"`
	Retry       []retryEntryState         `json:"retry,omitempty"`
	Quarantined map[string]string         `json:"quarantined,omitempty"`
	// Provenance ledger (defense.go); empty — and absent from the
	// serialization — unless client tracking is on.
	Clients       map[string]*clientLedger `json:"clients,omitempty"`
	SampleClients map[string]string        `json:"sample_clients,omitempty"`
	SampleGroups  map[string]string        `json:"sample_groups,omitempty"`
}

// sampleEnrichment persists the per-sample state the events cannot
// reproduce: AV labels and the behavioral profile.
type sampleEnrichment struct {
	MD5      string            `json:"md5"`
	AVLabel  string            `json:"av_label,omitempty"`
	AVLabels map[string]string `json:"av_labels,omitempty"`
	Profile  []string          `json:"profile,omitempty"`
}

type checkpointCounters struct {
	Events           int            `json:"events"`
	Rejected         int            `json:"rejected"`
	RejectedByReason map[string]int `json:"rejected_by_reason,omitempty"`
	Duplicates       int            `json:"duplicates"`
	Executed         int            `json:"executed"`
	Degraded         int            `json:"degraded"`
	EnrichErrors     int            `json:"enrich_errors"`
	StaleProfiles    int            `json:"stale_profiles"`
	Flushes          int            `json:"flushes"`
	RetryScheduled   int            `json:"retry_scheduled"`
	RetryAttempts    int            `json:"retry_attempts"`
	RetrySuccesses   int            `json:"retry_successes"`
	RecentErrors     []string       `json:"recent_errors,omitempty"`
}

// dimState is one EPM dimension's non-derivable state.
type dimState struct {
	Epoch      int            `json:"epoch"`
	BuiltLen   int            `json:"built_len"`
	NextStable int            `json:"next_stable"`
	Stable     map[string]int `json:"stable,omitempty"`
}

type retryEntryState struct {
	MD5      string `json:"md5"`
	Stage    string `json:"stage"`
	Attempts int    `json:"attempts"`
	NextSeq  uint64 `json:"next_seq"`
	LastErr  string `json:"last_err,omitempty"`
}

// logRequest appends the request to the WAL; the request must not be
// applied when this fails (the WAL is the source of truth, so applying
// an unlogged batch would make the live state unrecoverable). Without a
// WAL the sequence number still advances: it is the retry-backoff
// clock.
func (s *Service) logRequest(req request) bool {
	if s.wal == nil {
		s.mu.Lock()
		s.applySeq++
		s.mu.Unlock()
		return true
	}
	rec := walRecord{Kind: walKindBatch, Events: req.events, Client: req.client}
	if req.flush {
		rec.Kind = walKindFlush
		rec.Events = nil
		rec.Client = ""
	}
	payload, err := json.Marshal(rec)
	var seq uint64
	if err == nil {
		seq, err = s.wal.Append(payload)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err != nil {
		// Fail closed: a service that cannot write-ahead-log must not
		// acknowledge any further work, or an eventual crash silently
		// loses batches the clients believe were accepted.
		s.setFatal("wal-append", err)
		s.walAppendErrors++
		s.recordError("wal append failed, request dropped: " + err.Error())
		return false
	}
	s.walAppends++
	s.applySeq = seq
	return true
}

// Checkpoint serializes the full service state to the durability
// directory and garbage-collects the WAL prefix it covers. The request
// travels through the worker queue, so it observes a consistent batch
// boundary: every previously queued request is applied first.
func (s *Service) Checkpoint(ctx context.Context) error {
	if s.replica {
		return ErrReadOnly
	}
	if s.wal == nil {
		return fmt.Errorf("stream: durability is not configured")
	}
	if err := s.Fatal(); err != nil {
		return err
	}
	req := request{ckpt: true, errc: make(chan error, 1)}
	if err := s.send(ctx, req); err != nil {
		return err
	}
	select {
	case err := <-req.errc:
		return err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// checkpoint writes the snapshot atomically: temp file, fsync, rename,
// directory fsync. Runs on the worker.
func (s *Service) checkpoint() error {
	s.mu.RLock()
	cp := s.buildCheckpoint()
	blob, err := json.Marshal(cp)
	s.mu.RUnlock()
	if err != nil {
		return fmt.Errorf("stream: encoding checkpoint: %w", err)
	}
	dir := s.cfg.Durability.Dir
	path := filepath.Join(dir, checkpointName)
	tmp, err := os.CreateTemp(dir, checkpointName+".tmp-")
	if err != nil {
		return fmt.Errorf("stream: checkpoint: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(blob); err != nil {
		tmp.Close()
		return fmt.Errorf("stream: checkpoint: %w", err)
	}
	if !s.cfg.Durability.NoSync {
		if err := tmp.Sync(); err != nil {
			tmp.Close()
			return fmt.Errorf("stream: checkpoint: %w", err)
		}
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("stream: checkpoint: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("stream: checkpoint: %w", err)
	}
	if !s.cfg.Durability.NoSync {
		if d, err := os.Open(dir); err == nil {
			d.Sync()
			d.Close()
		}
	}
	s.mu.Lock()
	s.checkpoints++
	s.lastCkptSeq = cp.Seq
	s.sinceCkpt = 0
	s.mu.Unlock()
	// The WAL prefix the checkpoint covers is now redundant.
	if err := s.wal.TruncateBefore(cp.Seq + 1); err != nil {
		s.mu.Lock()
		s.recordError("wal truncation after checkpoint: " + err.Error())
		s.mu.Unlock()
	}
	return nil
}

// buildCheckpoint snapshots the state. Callers hold at least the read
// lock; the worker is the only caller, so no mutation is concurrent.
func (s *Service) buildCheckpoint() *checkpointFile {
	cp := &checkpointFile{
		Version: checkpointVersion,
		Seq:     s.applySeq,
		Events:  s.ds.Events(),
		Counters: checkpointCounters{
			Events:           s.events,
			Rejected:         s.rejected,
			RejectedByReason: s.rejectedByReason,
			Duplicates:       s.duplicates,
			Executed:         s.executed,
			Degraded:         s.degraded,
			EnrichErrors:     s.enrichErrors,
			StaleProfiles:    s.staleProfiles,
			Flushes:          s.flushes,
			RetryScheduled:   s.retryScheduled,
			RetryAttempts:    s.retryAttempts,
			RetrySuccesses:   s.retrySuccesses,
			RecentErrors:     s.recentErrors,
		},
		B:           s.b.State(),
		Quarantined: s.quarantined,
	}
	if len(s.clients) > 0 {
		cp.Clients = s.clients
	}
	if len(s.sampleClient) > 0 {
		cp.SampleClients = s.sampleClient
	}
	if len(s.sampleGroup) > 0 {
		cp.SampleGroups = s.sampleGroup
	}
	for _, smp := range s.ds.Samples() {
		if smp.AVLabel == "" && len(smp.AVLabels) == 0 && smp.Profile == nil {
			continue
		}
		cp.Samples = append(cp.Samples, sampleEnrichment{
			MD5: smp.MD5, AVLabel: smp.AVLabel, AVLabels: smp.AVLabels, Profile: smp.Profile,
		})
	}
	for i, d := range s.dims {
		cp.Dims[i] = dimState{Epoch: d.epoch, BuiltLen: d.builtLen, NextStable: d.nextStable, Stable: d.stable}
	}
	for _, e := range s.retry.entries {
		cp.Retry = append(cp.Retry, retryEntryState{
			MD5: e.md5, Stage: e.stage, Attempts: e.attempts, NextSeq: e.nextSeq, LastErr: e.lastErr,
		})
	}
	return cp
}

// recover loads the newest checkpoint (when present), re-derives all
// in-memory state from it, opens the WAL (repairing a torn tail), and
// replays every record after the checkpoint through the normal apply
// path. Runs in New, before the worker starts.
func (s *Service) recover() error {
	dcfg := s.cfg.Durability
	blob, err := os.ReadFile(filepath.Join(dcfg.Dir, checkpointName))
	switch {
	case err == nil:
		var cp checkpointFile
		if err := json.Unmarshal(blob, &cp); err != nil {
			return fmt.Errorf("stream: corrupt checkpoint: %w", err)
		}
		if err := s.restoreCheckpoint(&cp); err != nil {
			return err
		}
	case errors.Is(err, os.ErrNotExist):
		// Fresh start (or a WAL-only recovery).
	default:
		return fmt.Errorf("stream: reading checkpoint: %w", err)
	}
	w, err := wal.Open(wal.Options{Dir: dcfg.Dir, SegmentBytes: dcfg.SegmentBytes, NoSync: dcfg.NoSync})
	if err != nil {
		return err
	}
	s.wal = w
	if err := w.Replay(s.applySeq+1, func(seq uint64, payload []byte) error {
		var rec walRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			return fmt.Errorf("stream: wal record %d: %w", seq, err)
		}
		s.applySeq = seq
		switch rec.Kind {
		case walKindFlush:
			s.applyFlush()
		case walKindBatch:
			s.applyBatch(rec.Client, rec.Events, 0)
		default:
			return fmt.Errorf("stream: wal record %d has unknown kind %q", seq, rec.Kind)
		}
		s.recoveredRecords++
		return nil
	}); err != nil {
		w.Close()
		return err
	}
	if w.LastSeq() < s.applySeq {
		w.Close()
		return fmt.Errorf("stream: wal ends at seq %d but the checkpoint covers %d; refusing to reuse sequence numbers", w.LastSeq(), s.applySeq)
	}
	return nil
}

// restoreCheckpoint re-derives the full in-memory state from a
// checkpoint: dataset and instances from the events, enrichment from
// the sample records, EPM clusterings from deterministic re-discovery
// at the recorded watermarks, and the B partition from its state
// record.
func (s *Service) restoreCheckpoint(cp *checkpointFile) error {
	if cp.Version != checkpointVersion {
		return fmt.Errorf("stream: checkpoint version %d, want %d", cp.Version, checkpointVersion)
	}
	var dimIns [3][]epm.Instance
	for _, e := range cp.Events {
		if err := s.ds.AddEvent(e); err != nil {
			return fmt.Errorf("stream: corrupt checkpoint: %w", err)
		}
		dimIns[0] = append(dimIns[0], e.EpsilonInstance())
		dimIns[1] = append(dimIns[1], e.PiInstance())
		if in, ok := e.MuInstance(); ok {
			dimIns[2] = append(dimIns[2], in)
		}
	}
	for _, se := range cp.Samples {
		smp := s.ds.Sample(se.MD5)
		if smp == nil {
			return fmt.Errorf("stream: checkpoint enriches unknown sample %s", se.MD5)
		}
		smp.AVLabel, smp.AVLabels, smp.Profile = se.AVLabel, se.AVLabels, se.Profile
	}
	for i := range s.dims {
		if err := s.dims[i].restore(cp.Dims[i], dimIns[i]); err != nil {
			return err
		}
	}
	b, err := bcluster.RestoreIncremental(s.cfg.BCluster, cp.B)
	if err != nil {
		return err
	}
	s.b = b
	c := cp.Counters
	s.events, s.rejected, s.duplicates = c.Events, c.Rejected, c.Duplicates
	s.executed, s.degraded = c.Executed, c.Degraded
	s.enrichErrors, s.staleProfiles, s.flushes = c.EnrichErrors, c.StaleProfiles, c.Flushes
	s.retryScheduled, s.retryAttempts, s.retrySuccesses = c.RetryScheduled, c.RetryAttempts, c.RetrySuccesses
	s.recentErrors = append(s.recentErrors[:0], c.RecentErrors...)
	for reason, n := range c.RejectedByReason {
		s.rejectedByReason[reason] = n
	}
	for md5, msg := range cp.Quarantined {
		s.quarantined[md5] = msg
	}
	for _, e := range cp.Retry {
		s.retry.add(&retryEntry{md5: e.MD5, stage: e.Stage, attempts: e.Attempts, nextSeq: e.NextSeq, lastErr: e.LastErr})
	}
	for name, l := range cp.Clients {
		cl := *l
		s.clients[name] = &cl
	}
	for md5, c := range cp.SampleClients {
		s.sampleClient[md5] = c
	}
	for md5, g := range cp.SampleGroups {
		s.sampleGroup[md5] = g
	}
	s.applySeq = cp.Seq
	return nil
}

// restore rebuilds a dimension's derived state from the checkpointed
// events' instance projections. The checkpoint format is unchanged by
// the incremental epoch engine: engine state (sketches, groups) is a
// deterministic function of the built prefix, so recovery feeds that
// prefix to a fresh engine and runs one epoch over it — a full regroup
// whose output is byte-identical to the original epoch-by-epoch
// evolution (the differential property the epm tests prove). Epoch
// assignments re-derive through the restored stable-ID table, and
// post-watermark instances re-classify exactly as the live add path did.
func (d *dimension) restore(st dimState, instances []epm.Instance) error {
	if st.BuiltLen < 0 || st.BuiltLen > len(instances) {
		return fmt.Errorf("stream: dimension %s: checkpoint watermark %d out of range [0,%d]",
			d.schema.Dimension, st.BuiltLen, len(instances))
	}
	d.nextStable = st.NextStable
	d.stable = make(map[string]int, len(st.Stable))
	for k, v := range st.Stable {
		d.stable[k] = v
	}
	for _, in := range instances[:st.BuiltLen] {
		if err := d.eng.Add(in); err != nil {
			return fmt.Errorf("stream: corrupt checkpoint: %w", err)
		}
	}
	if st.BuiltLen > 0 {
		d.rebuild()
	}
	d.epoch = st.Epoch
	for _, in := range instances[st.BuiltLen:] {
		if err := d.add(in); err != nil {
			return fmt.Errorf("stream: corrupt checkpoint: %w", err)
		}
	}
	return nil
}

// WALStats summarizes durability for Stats.
type WALStats struct {
	Enabled bool `json:"enabled"`
	// LastSeq is the newest logged record; Appends/AppendErrors count
	// this process's writes.
	LastSeq      uint64 `json:"last_seq"`
	Appends      int    `json:"appends"`
	AppendErrors int    `json:"append_errors"`
	// Checkpoints counts this process's checkpoints; LastCheckpointSeq
	// is the newest one's coverage.
	Checkpoints       int    `json:"checkpoints"`
	LastCheckpointSeq uint64 `json:"last_checkpoint_seq"`
	// RecoveredRecords counts WAL records replayed at startup.
	RecoveredRecords int `json:"recovered_records"`
}
