package stream

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/bcluster"
	"repro/internal/ckpt"
	"repro/internal/dataset"
	"repro/internal/epm"
	"repro/internal/faultfs"
	"repro/internal/wal"
)

// Durability configures crash safety. With a Dir set, every accepted
// request (batch or flush) is appended to a write-ahead log before it
// is applied, and checkpoints serialize the full service state so
// recovery is "load checkpoint, replay WAL suffix". The zero value
// disables persistence.
type Durability struct {
	// Dir holds the WAL segments and the checkpoint file.
	Dir string
	// CheckpointEvery checkpoints automatically after every N applied
	// records; 0 checkpoints only on explicit Checkpoint calls.
	CheckpointEvery int
	// SegmentBytes is the WAL rotation threshold; 0 selects 8 MiB.
	SegmentBytes int64
	// NoSync skips fsyncs (see wal.Options.NoSync); tests use it.
	NoSync bool
	// Generations is how many previous checkpoints are retained as
	// checkpoint.json.<gen> fallbacks. The WAL is garbage-collected only
	// past the oldest retained generation, so each fallback keeps a
	// replayable suffix: a corrupt newest checkpoint costs a longer
	// replay, not the state. 0 selects 2; negative retains none.
	Generations int
	// FS overrides the filesystem under the WAL and the checkpoint
	// writer; nil selects the os passthrough. The chaos harness injects
	// seeded disk faults through it.
	FS faultfs.FS
}

func (d Durability) validate() error {
	if d.CheckpointEvery < 0 {
		return fmt.Errorf("stream: CheckpointEvery %d is negative", d.CheckpointEvery)
	}
	return nil
}

// generations resolves the retained-generation count.
func (d Durability) generations() int {
	switch {
	case d.Generations == 0:
		return 2
	case d.Generations < 0:
		return 0
	}
	return d.Generations
}

const (
	checkpointName    = ckpt.Name
	checkpointVersion = 1

	walKindBatch = "batch"
	walKindFlush = "flush"

	// maxCheckpointFailures is how many consecutive checkpoint failures
	// the service tolerates before degrading to read-only: until then
	// the WAL alone still makes every acknowledged write durable, but a
	// checkpointless WAL grows (and recovery lengthens) without bound.
	maxCheckpointFailures = 3
)

// ckptGeneration is one retained fallback checkpoint: its file suffix
// and the WAL seq it covers (which pins the GC horizon).
type ckptGeneration struct {
	gen uint64
	seq uint64
}

// walRecord is the WAL payload: the raw accepted request. Batches are
// logged before validation, so replay reproduces rejection and
// duplicate accounting too; flushes are logged because flush-forced
// epochs mint stable cluster IDs that recovery must re-mint.
type walRecord struct {
	Kind   string          `json:"kind"`
	Events []dataset.Event `json:"events,omitempty"`
	// Client is the ingest identity the batch arrived under, so replay
	// and replication rebuild the same provenance attribution.
	Client string `json:"client,omitempty"`
}

// checkpointFile is the atomic on-disk snapshot. Everything not listed
// is a deterministic function of what is: instances re-project from the
// events, EPM clusterings re-derive from the instances and watermarks,
// and the B-clusterer restores from its own state record. MaxQueueDepth
// is deliberately absent — queue depth is path-dependent, not part of
// the landscape state.
type checkpointFile struct {
	Version     int                       `json:"version"`
	Seq         uint64                    `json:"seq"` // every record <= Seq is reflected
	Events      []dataset.Event           `json:"events"`
	Samples     []sampleEnrichment        `json:"samples,omitempty"`
	Counters    checkpointCounters        `json:"counters"`
	Dims        [3]dimState               `json:"dims"`
	B           bcluster.IncrementalState `json:"b"`
	Retry       []retryEntryState         `json:"retry,omitempty"`
	Quarantined map[string]string         `json:"quarantined,omitempty"`
	// Provenance ledger (defense.go); empty — and absent from the
	// serialization — unless client tracking is on.
	Clients       map[string]*clientLedger `json:"clients,omitempty"`
	SampleClients map[string]string        `json:"sample_clients,omitempty"`
	SampleGroups  map[string]string        `json:"sample_groups,omitempty"`
}

// sampleEnrichment persists the per-sample state the events cannot
// reproduce: AV labels and the behavioral profile.
type sampleEnrichment struct {
	MD5      string            `json:"md5"`
	AVLabel  string            `json:"av_label,omitempty"`
	AVLabels map[string]string `json:"av_labels,omitempty"`
	Profile  []string          `json:"profile,omitempty"`
}

type checkpointCounters struct {
	Events           int            `json:"events"`
	Rejected         int            `json:"rejected"`
	RejectedByReason map[string]int `json:"rejected_by_reason,omitempty"`
	Duplicates       int            `json:"duplicates"`
	Executed         int            `json:"executed"`
	Degraded         int            `json:"degraded"`
	EnrichErrors     int            `json:"enrich_errors"`
	StaleProfiles    int            `json:"stale_profiles"`
	Flushes          int            `json:"flushes"`
	RetryScheduled   int            `json:"retry_scheduled"`
	RetryAttempts    int            `json:"retry_attempts"`
	RetrySuccesses   int            `json:"retry_successes"`
	RecentErrors     []string       `json:"recent_errors,omitempty"`
}

// dimState is one EPM dimension's non-derivable state.
type dimState struct {
	Epoch      int            `json:"epoch"`
	BuiltLen   int            `json:"built_len"`
	NextStable int            `json:"next_stable"`
	Stable     map[string]int `json:"stable,omitempty"`
}

type retryEntryState struct {
	MD5      string `json:"md5"`
	Stage    string `json:"stage"`
	Attempts int    `json:"attempts"`
	NextSeq  uint64 `json:"next_seq"`
	LastErr  string `json:"last_err,omitempty"`
}

// logRequest appends the request to the WAL; the request must not be
// applied when this fails (the WAL is the source of truth, so applying
// an unlogged batch would make the live state unrecoverable). An append
// failure gets one self-heal attempt (healAppend); a failure that
// survives it degrades the service to read-only instead of crashing.
// Without a WAL the sequence number still advances: it is the
// retry-backoff clock.
func (s *Service) logRequest(req request) bool {
	if s.wal == nil {
		s.mu.Lock()
		s.applySeq++
		s.mu.Unlock()
		return true
	}
	if s.StorageFailure() != nil {
		// Already read-only: queued writes drain without touching the
		// broken log; the worker reports the typed error to the caller.
		return false
	}
	rec := walRecord{Kind: walKindBatch, Events: req.events, Client: req.client}
	if req.flush {
		rec.Kind = walKindFlush
		rec.Events = nil
		rec.Client = ""
	}
	payload, err := json.Marshal(rec)
	var seq uint64
	if err == nil {
		seq, err = s.wal.Append(payload)
		if err != nil {
			var healed bool
			if seq, healed = s.healAppend(payload); healed {
				err = nil
			}
		}
	}
	s.mu.Lock()
	if err != nil {
		s.walAppendErrors++
		s.recordError("wal append failed, request dropped: " + err.Error())
		s.mu.Unlock()
		// Degrade instead of failing closed: writes return a typed
		// error, reads keep serving the last applied state.
		s.enterReadOnly("wal-append", err)
		return false
	}
	s.walAppends++
	s.applySeq = seq
	s.mu.Unlock()
	return true
}

// healAppend is the write path's one self-heal attempt after a failed
// append: close the poisoned log and reopen it, which repairs any torn
// tail the failure left. If the reopened log already contains the
// record (the write completed and only its fsync failed), a fresh Sync
// proves its durability — retrying the append there would log a
// duplicate. Otherwise the append is retried once on the repaired log.
// Reports the record's seq and whether the heal succeeded; on failure
// the caller degrades the service to read-only.
func (s *Service) healAppend(payload []byte) (uint64, bool) {
	dcfg := s.cfg.Durability
	want := s.wal.LastSeq() + 1
	s.wal.Close()
	w, err := wal.Open(wal.Options{Dir: dcfg.Dir, SegmentBytes: dcfg.SegmentBytes, NoSync: dcfg.NoSync, FS: dcfg.FS})
	if err != nil {
		return 0, false
	}
	s.mu.Lock()
	s.wal = w
	s.mu.Unlock()
	var seq uint64
	switch last := w.LastSeq(); {
	case last >= want:
		// The write completed and only its fsync failed: prove
		// durability with a fresh Sync instead of logging a duplicate.
		if err := w.Sync(); err != nil {
			return 0, false
		}
		seq = want
	case last == want-1:
		// The torn tail was repaired away; the repaired log ends exactly
		// where it did before the failed append, so retry once.
		if seq, err = w.Append(payload); err != nil {
			return 0, false
		}
	default:
		// The reopened log ends short of where it did before the
		// failure: history is missing (the directory was wiped, or
		// whole frames vanished). Appending here would silently stitch
		// a gap into the log, so refuse and degrade.
		return 0, false
	}
	s.mu.Lock()
	s.walRepairs++
	s.mu.Unlock()
	return seq, true
}

// Checkpoint serializes the full service state to the durability
// directory and garbage-collects the WAL prefix every retained
// generation covers. The request travels through the worker queue, so
// it observes a consistent batch boundary: every previously queued
// request is applied first.
func (s *Service) Checkpoint(ctx context.Context) error {
	if s.replica {
		return ErrReadOnly
	}
	if s.wal == nil {
		return fmt.Errorf("stream: durability is not configured")
	}
	if err := s.StorageFailure(); err != nil {
		return err
	}
	req := request{ckpt: true, errc: make(chan error, 1)}
	if err := s.send(ctx, req); err != nil {
		return err
	}
	select {
	case err := <-req.errc:
		return err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// checkpoint runs one checkpoint attempt on the worker and does the
// failure accounting: consecutive failures are counted (and recorded),
// and at maxCheckpointFailures the service degrades to read-only.
func (s *Service) checkpoint() error {
	err := s.writeCheckpoint()
	s.mu.Lock()
	if err != nil {
		s.ckptFailures++
		n := s.ckptFailures
		s.recordError("checkpoint: " + err.Error())
		s.mu.Unlock()
		if n >= maxCheckpointFailures {
			s.enterReadOnly("checkpoint", err)
		}
		return err
	}
	s.ckptFailures = 0
	s.mu.Unlock()
	return nil
}

// writeCheckpoint writes the snapshot atomically: temp file, fsync,
// CRC-sealed blob, archive of the previous checkpoint as a fallback
// generation, rename, directory fsync. Every step's error propagates —
// a checkpoint that may not be durable must not narrow the WAL's GC
// horizon. Runs on the worker.
func (s *Service) writeCheckpoint() error {
	s.mu.RLock()
	cp := s.buildCheckpoint()
	blob, err := json.Marshal(cp)
	s.mu.RUnlock()
	if err != nil {
		return fmt.Errorf("stream: encoding checkpoint: %w", err)
	}
	blob = ckpt.Seal(blob)
	dir := s.cfg.Durability.Dir
	path := filepath.Join(dir, checkpointName)
	tmp, err := s.fs.CreateTemp(dir, checkpointName+".tmp-")
	if err != nil {
		return fmt.Errorf("stream: checkpoint: %w", err)
	}
	defer s.fs.Remove(tmp.Name())
	if _, err := tmp.Write(blob); err != nil {
		tmp.Close()
		return fmt.Errorf("stream: checkpoint: %w", err)
	}
	if !s.cfg.Durability.NoSync {
		if err := tmp.Sync(); err != nil {
			tmp.Close()
			return fmt.Errorf("stream: checkpoint: %w", err)
		}
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("stream: checkpoint: %w", err)
	}
	// Archive the checkpoint being replaced as a fallback generation:
	// recovery walks generations newest-first when the live file fails
	// its CRC or decode.
	if s.cfg.Durability.generations() > 0 {
		if _, serr := s.fs.Stat(path); serr == nil {
			gen := s.ckptGen + 1
			if err := s.fs.Rename(path, ckpt.GenName(dir, gen)); err != nil {
				return fmt.Errorf("stream: archiving checkpoint generation: %w", err)
			}
			s.mu.Lock()
			s.ckptGen = gen
			s.gens = append(s.gens, ckptGeneration{gen: gen, seq: s.lastCkptSeq})
			s.mu.Unlock()
		}
	}
	if err := s.fs.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("stream: checkpoint: %w", err)
	}
	if !s.cfg.Durability.NoSync {
		// The rename — and any generation archive before it — must be
		// durable before the WAL prefix it supersedes is collected.
		if err := s.syncDir(dir); err != nil {
			return fmt.Errorf("stream: checkpoint: %w", err)
		}
	}
	s.mu.Lock()
	s.checkpoints++
	s.lastCkptSeq = cp.Seq
	s.sinceCkpt = 0
	s.mu.Unlock()
	s.pruneGenerations(dir)
	// Only the prefix below every retained checkpoint is redundant:
	// falling back to an older generation needs its longer WAL suffix.
	if err := s.wal.TruncateBefore(s.gcHorizon(cp.Seq) + 1); err != nil {
		s.mu.Lock()
		s.recordError("wal truncation after checkpoint: " + err.Error())
		s.mu.Unlock()
	}
	return nil
}

// buildCheckpoint snapshots the state. Callers hold at least the read
// lock; the worker is the only caller, so no mutation is concurrent.
func (s *Service) buildCheckpoint() *checkpointFile {
	cp := &checkpointFile{
		Version: checkpointVersion,
		Seq:     s.applySeq,
		Events:  s.ds.Events(),
		Counters: checkpointCounters{
			Events:           s.events,
			Rejected:         s.rejected,
			RejectedByReason: s.rejectedByReason,
			Duplicates:       s.duplicates,
			Executed:         s.executed,
			Degraded:         s.degraded,
			EnrichErrors:     s.enrichErrors,
			StaleProfiles:    s.staleProfiles,
			Flushes:          s.flushes,
			RetryScheduled:   s.retryScheduled,
			RetryAttempts:    s.retryAttempts,
			RetrySuccesses:   s.retrySuccesses,
			RecentErrors:     s.recentErrors,
		},
		B:           s.b.State(),
		Quarantined: s.quarantined,
	}
	if len(s.clients) > 0 {
		cp.Clients = s.clients
	}
	if len(s.sampleClient) > 0 {
		cp.SampleClients = s.sampleClient
	}
	if len(s.sampleGroup) > 0 {
		cp.SampleGroups = s.sampleGroup
	}
	for _, smp := range s.ds.Samples() {
		if smp.AVLabel == "" && len(smp.AVLabels) == 0 && smp.Profile == nil {
			continue
		}
		cp.Samples = append(cp.Samples, sampleEnrichment{
			MD5: smp.MD5, AVLabel: smp.AVLabel, AVLabels: smp.AVLabels, Profile: smp.Profile,
		})
	}
	for i, d := range s.dims {
		cp.Dims[i] = dimState{Epoch: d.epoch, BuiltLen: d.builtLen, NextStable: d.nextStable, Stable: d.stable}
	}
	for _, e := range s.retry.entries {
		cp.Retry = append(cp.Retry, retryEntryState{
			MD5: e.md5, Stage: e.stage, Attempts: e.attempts, NextSeq: e.nextSeq, LastErr: e.lastErr,
		})
	}
	return cp
}

// syncDir fsyncs a directory so renames within it are durable.
func (s *Service) syncDir(dir string) error {
	d, err := s.fs.Open(dir)
	if err != nil {
		return fmt.Errorf("opening directory for sync: %w", err)
	}
	if err := d.Sync(); err != nil {
		d.Close()
		return fmt.Errorf("syncing directory: %w", err)
	}
	return d.Close()
}

// pruneGenerations drops retained generations beyond the configured
// count, oldest first. Runs on the worker.
func (s *Service) pruneGenerations(dir string) {
	retain := s.cfg.Durability.generations()
	s.mu.Lock()
	var drop []ckptGeneration
	for len(s.gens) > retain {
		drop = append(drop, s.gens[0])
		s.gens = s.gens[1:]
	}
	s.mu.Unlock()
	for _, g := range drop {
		if err := s.fs.Remove(ckpt.GenName(dir, g.gen)); err != nil && !errors.Is(err, os.ErrNotExist) {
			s.mu.Lock()
			s.recordError("pruning checkpoint generation: " + err.Error())
			s.mu.Unlock()
		}
	}
}

// gcHorizon is the oldest seq any retained checkpoint — live or
// generation — covers; WAL records at or before it are redundant
// everywhere.
func (s *Service) gcHorizon(liveSeq uint64) uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	h := liveSeq
	for _, g := range s.gens {
		if g.seq < h {
			h = g.seq
		}
	}
	return h
}

// decodeCheckpoint unseals (verifying the CRC trailer) and decodes one
// checkpoint blob. Blobs written before sealing existed carry no
// trailer and pass CRC-free.
func decodeCheckpoint(blob []byte) (*checkpointFile, error) {
	payload, _, err := ckpt.Unseal(blob)
	if err != nil {
		return nil, fmt.Errorf("stream: corrupt checkpoint: %w", err)
	}
	var cp checkpointFile
	if err := json.Unmarshal(payload, &cp); err != nil {
		return nil, fmt.Errorf("stream: corrupt checkpoint: %w", err)
	}
	return &cp, nil
}

// checkpointSeqOf reads only a checkpoint file's coverage seq.
func checkpointSeqOf(fs faultfs.FS, path string) (uint64, error) {
	blob, err := fs.ReadFile(path)
	if err != nil {
		return 0, err
	}
	payload, _, err := ckpt.Unseal(blob)
	if err != nil {
		return 0, err
	}
	var hdr struct {
		Seq uint64 `json:"seq"`
	}
	if err := json.Unmarshal(payload, &hdr); err != nil {
		return 0, err
	}
	return hdr.Seq, nil
}

// quarantineCheckpoint renames a checkpoint that failed its CRC or
// decode aside (keeping the evidence) so the next checkpoint cannot
// archive it as a "good" generation and the verifier skips it. Runs
// before the worker starts, so no lock is held.
func (s *Service) quarantineCheckpoint(path string) {
	s.corruptCkpts++
	if err := s.fs.Rename(path, path+ckpt.CorruptSuffix); err != nil {
		s.recordError("quarantining corrupt checkpoint: " + err.Error())
	}
}

// recover loads the newest checkpoint that verifies and decodes —
// falling back through retained generations when the live file is
// corrupt, at the cost of a longer WAL replay — re-derives all
// in-memory state from it, opens the WAL (repairing a torn tail), and
// replays every record after the checkpoint through the normal apply
// path. Corrupt candidates are quarantined aside, not deleted. Runs in
// New, before the worker starts.
func (s *Service) recover() error {
	dcfg := s.cfg.Durability
	dir := dcfg.Dir
	if err := s.fs.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("stream: %w", err)
	}
	gens, err := ckpt.Generations(s.fs, dir)
	if err != nil {
		return fmt.Errorf("stream: listing checkpoint generations: %w", err)
	}
	if len(gens) > 0 {
		s.ckptGen = gens[len(gens)-1]
	}
	// Candidates newest-first: the live checkpoint, then generations.
	candidates := []string{filepath.Join(dir, checkpointName)}
	for i := len(gens) - 1; i >= 0; i-- {
		candidates = append(candidates, ckpt.GenName(dir, gens[i]))
	}
	// resetState and restoreCheckpoint both rewrite the recent-errors
	// ring, so fallback diagnostics accumulate here and are recorded
	// once the surviving state is in place.
	var recoveryErrs []string
	fellPast := false // a candidate existed but failed; the restore below is a fallback
	for _, path := range candidates {
		blob, rerr := s.fs.ReadFile(path)
		if rerr != nil {
			if !errors.Is(rerr, os.ErrNotExist) {
				// A read error may be transient (the device, not the
				// bytes): fall back without quarantining the file.
				recoveryErrs = append(recoveryErrs, fmt.Sprintf("checkpoint recovery: %s: %v", path, rerr))
				fellPast = true
			}
			// A merely absent candidate (no live checkpoint after a
			// quarantine, a pruned generation) is the normal shape of
			// the chain, not a fallback incident.
			continue
		}
		cp, derr := decodeCheckpoint(blob)
		if derr == nil {
			if err := s.resetState(); err != nil {
				return err
			}
			derr = s.restoreCheckpoint(cp)
		}
		if derr != nil {
			recoveryErrs = append(recoveryErrs, fmt.Sprintf("checkpoint recovery: %s: %v", path, derr))
			s.quarantineCheckpoint(path)
			fellPast = true
			if err := s.resetState(); err != nil {
				return err
			}
			continue
		}
		s.lastCkptSeq = cp.Seq
		if fellPast {
			s.ckptFallbacks++
		}
		break
	}
	// Rebuild the retained-generation ledger from the files that
	// survived; each one's coverage seq pins the WAL GC horizon. A
	// generation whose seq cannot be read is useless as a fallback and
	// is quarantined so it neither pins the horizon nor trips the
	// verifier.
	s.gens = s.gens[:0]
	if gens, err = ckpt.Generations(s.fs, dir); err == nil {
		for _, g := range gens {
			path := ckpt.GenName(dir, g)
			seq, serr := checkpointSeqOf(s.fs, path)
			if serr != nil {
				recoveryErrs = append(recoveryErrs, fmt.Sprintf("checkpoint recovery: %s: %v", path, serr))
				s.quarantineCheckpoint(path)
				continue
			}
			s.gens = append(s.gens, ckptGeneration{gen: g, seq: seq})
		}
	}
	for _, msg := range recoveryErrs {
		s.recordError(msg)
	}
	w, err := wal.Open(wal.Options{Dir: dir, SegmentBytes: dcfg.SegmentBytes, NoSync: dcfg.NoSync, FS: dcfg.FS})
	if err != nil {
		return err
	}
	if first := w.FirstSeq(); first > s.applySeq+1 {
		w.Close()
		return fmt.Errorf("stream: wal begins at seq %d but the checkpoint covers only %d; records %d..%d are gone", first, s.applySeq, s.applySeq+1, first-1)
	}
	s.wal = w
	if err := w.Replay(s.applySeq+1, func(seq uint64, payload []byte) error {
		var rec walRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			return fmt.Errorf("stream: wal record %d: %w", seq, err)
		}
		s.applySeq = seq
		switch rec.Kind {
		case walKindFlush:
			s.applyFlush()
		case walKindBatch:
			s.applyBatch(rec.Client, rec.Events, 0)
		default:
			return fmt.Errorf("stream: wal record %d has unknown kind %q", seq, rec.Kind)
		}
		s.recoveredRecords++
		return nil
	}); err != nil {
		w.Close()
		return err
	}
	if w.LastSeq() < s.applySeq {
		w.Close()
		return fmt.Errorf("stream: wal ends at seq %d but the checkpoint covers %d; refusing to reuse sequence numbers", w.LastSeq(), s.applySeq)
	}
	return nil
}

// restoreCheckpoint re-derives the full in-memory state from a
// checkpoint: dataset and instances from the events, enrichment from
// the sample records, EPM clusterings from deterministic re-discovery
// at the recorded watermarks, and the B partition from its state
// record.
func (s *Service) restoreCheckpoint(cp *checkpointFile) error {
	if cp.Version != checkpointVersion {
		return fmt.Errorf("stream: checkpoint version %d, want %d", cp.Version, checkpointVersion)
	}
	var dimIns [3][]epm.Instance
	for _, e := range cp.Events {
		if err := s.ds.AddEvent(e); err != nil {
			return fmt.Errorf("stream: corrupt checkpoint: %w", err)
		}
		dimIns[0] = append(dimIns[0], e.EpsilonInstance())
		dimIns[1] = append(dimIns[1], e.PiInstance())
		if in, ok := e.MuInstance(); ok {
			dimIns[2] = append(dimIns[2], in)
		}
	}
	for _, se := range cp.Samples {
		smp := s.ds.Sample(se.MD5)
		if smp == nil {
			return fmt.Errorf("stream: checkpoint enriches unknown sample %s", se.MD5)
		}
		smp.AVLabel, smp.AVLabels, smp.Profile = se.AVLabel, se.AVLabels, se.Profile
	}
	for i := range s.dims {
		if err := s.dims[i].restore(cp.Dims[i], dimIns[i]); err != nil {
			return err
		}
	}
	b, err := bcluster.RestoreIncremental(s.cfg.BCluster, cp.B)
	if err != nil {
		return err
	}
	s.b = b
	c := cp.Counters
	s.events, s.rejected, s.duplicates = c.Events, c.Rejected, c.Duplicates
	s.executed, s.degraded = c.Executed, c.Degraded
	s.enrichErrors, s.staleProfiles, s.flushes = c.EnrichErrors, c.StaleProfiles, c.Flushes
	s.retryScheduled, s.retryAttempts, s.retrySuccesses = c.RetryScheduled, c.RetryAttempts, c.RetrySuccesses
	s.recentErrors = append(s.recentErrors[:0], c.RecentErrors...)
	for reason, n := range c.RejectedByReason {
		s.rejectedByReason[reason] = n
	}
	for md5, msg := range cp.Quarantined {
		s.quarantined[md5] = msg
	}
	for _, e := range cp.Retry {
		s.retry.add(&retryEntry{md5: e.MD5, stage: e.Stage, attempts: e.Attempts, nextSeq: e.NextSeq, lastErr: e.LastErr})
	}
	for name, l := range cp.Clients {
		cl := *l
		s.clients[name] = &cl
	}
	for md5, c := range cp.SampleClients {
		s.sampleClient[md5] = c
	}
	for md5, g := range cp.SampleGroups {
		s.sampleGroup[md5] = g
	}
	s.applySeq = cp.Seq
	return nil
}

// restore rebuilds a dimension's derived state from the checkpointed
// events' instance projections. The checkpoint format is unchanged by
// the incremental epoch engine: engine state (sketches, groups) is a
// deterministic function of the built prefix, so recovery feeds that
// prefix to a fresh engine and runs one epoch over it — a full regroup
// whose output is byte-identical to the original epoch-by-epoch
// evolution (the differential property the epm tests prove). Epoch
// assignments re-derive through the restored stable-ID table, and
// post-watermark instances re-classify exactly as the live add path did.
func (d *dimension) restore(st dimState, instances []epm.Instance) error {
	if st.BuiltLen < 0 || st.BuiltLen > len(instances) {
		return fmt.Errorf("stream: dimension %s: checkpoint watermark %d out of range [0,%d]",
			d.schema.Dimension, st.BuiltLen, len(instances))
	}
	d.nextStable = st.NextStable
	d.stable = make(map[string]int, len(st.Stable))
	for k, v := range st.Stable {
		d.stable[k] = v
	}
	for _, in := range instances[:st.BuiltLen] {
		if err := d.eng.Add(in); err != nil {
			return fmt.Errorf("stream: corrupt checkpoint: %w", err)
		}
	}
	if st.BuiltLen > 0 {
		d.rebuild()
	}
	d.epoch = st.Epoch
	for _, in := range instances[st.BuiltLen:] {
		if err := d.add(in); err != nil {
			return fmt.Errorf("stream: corrupt checkpoint: %w", err)
		}
	}
	return nil
}

// WALStats summarizes durability for Stats.
type WALStats struct {
	Enabled bool `json:"enabled"`
	// LastSeq is the newest logged record; Appends/AppendErrors count
	// this process's writes.
	LastSeq      uint64 `json:"last_seq"`
	Appends      int    `json:"appends"`
	AppendErrors int    `json:"append_errors"`
	// Checkpoints counts this process's checkpoints; LastCheckpointSeq
	// is the newest durable checkpoint's coverage (restored at recovery).
	Checkpoints       int    `json:"checkpoints"`
	LastCheckpointSeq uint64 `json:"last_checkpoint_seq"`
	// RecoveredRecords counts WAL records replayed at startup.
	RecoveredRecords int `json:"recovered_records"`
}
