package stream_test

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/dataset"
	"repro/internal/faultfs"
	"repro/internal/stream"
)

// cleanCorpus builds n well-formed events across three truth variants.
func cleanCorpus(n int) []dataset.Event {
	var out []dataset.Event
	for i := 0; i < n; i++ {
		out = append(out, testEvent(i, fmt.Sprintf("v%d", i%3)))
	}
	return out
}

// dirtyCorpus mixes duplicates and invalid events into a clean
// sequence, so recovery must reproduce the rejection accounting too.
func dirtyCorpus(n int) []dataset.Event {
	var out []dataset.Event
	for i := 0; i < n; i++ {
		switch {
		case i%17 == 3 && i >= 3:
			// Redelivery: the event ID was already ingested.
			out = append(out, testEvent(i-3, fmt.Sprintf("v%d", (i-3)%3)))
		case i%23 == 5:
			e := testEvent(i, "")
			e.Attacker = ""
			out = append(out, e)
		default:
			out = append(out, testEvent(i, fmt.Sprintf("v%d", i%3)))
		}
	}
	return out
}

// normStats strips the path- and process-dependent fields (queue
// high-water marks, WAL/IO counters) that are legitimately different
// between an interrupted and an uninterrupted run.
func normStats(st stream.Stats) stream.Stats {
	st.QueueCap, st.QueueDepth, st.MaxQueueDepth = 0, 0, 0
	st.WAL = stream.WALStats{}
	// The durability-health ledger (retained generations, self-heal and
	// scrub counters) and the diagnostics ring describe the storage
	// history of this process, not the landscape state.
	st.Storage = stream.StorageStats{}
	st.RecentErrors = nil
	// Role, uptime, and the replicated-record count identify the
	// process, not the landscape state.
	st.Role, st.UptimeMS, st.Replicated = "", 0, 0
	// The admission ledger is process-local runtime telemetry
	// (recovery replays bypass admission), like queue depth above.
	st.Admission = stream.AdmissionStats{}
	// The delta/full epoch split is path-dependent: recovery replays the
	// checkpointed prefix as one full regroup, an uninterrupted run may
	// have covered the same instances with several delta epochs. The
	// clustering output is byte-identical either way; only the work
	// accounting differs.
	for _, ds := range []*stream.DimStats{&st.Epsilon, &st.Pi, &st.Mu} {
		ds.DeltaEpochs, ds.FullRegroups = 0, 0
	}
	return st
}

// compareServices asserts two services converged on identical landscape
// state: stable-ID EPM views, B membership partition, and counters.
func compareServices(t *testing.T, label string, got, want *stream.Service) {
	t.Helper()
	for _, dim := range []string{"epsilon", "pi", "mu"} {
		gv, err := got.EPMClusters(dim)
		if err != nil {
			t.Fatal(err)
		}
		wv, err := want.EPMClusters(dim)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(gv, wv) {
			t.Fatalf("%s: %s view diverges:\ngot  %+v\nwant %+v", label, dim, gv, wv)
		}
	}
	if !reflect.DeepEqual(bMembers(got.BResult()), bMembers(want.BResult())) {
		t.Fatalf("%s: B partition diverges", label)
	}
	gs, ws := normStats(got.Stats()), normStats(want.Stats())
	if !reflect.DeepEqual(gs, ws) {
		t.Fatalf("%s: stats diverge:\ngot  %+v\nwant %+v", label, gs, ws)
	}
}

// feedInterrupted replays the corpus in batches, flushing mid-stream at
// flushAfter, and — when restartEvery > 0 — tears the service down and
// recovers it from disk after every restartEvery-th batch. It returns
// the final (flushed) service.
func feedInterrupted(t *testing.T, cfg stream.Config, events []dataset.Event, batchSize, flushAfter, restartEvery int) *stream.Service {
	t.Helper()
	ctx := context.Background()
	svc, err := stream.New(cfg, fakeEnricher{})
	if err != nil {
		t.Fatal(err)
	}
	for bi := 0; bi*batchSize < len(events); bi++ {
		lo, hi := bi*batchSize, (bi+1)*batchSize
		if hi > len(events) {
			hi = len(events)
		}
		if err := svc.Ingest(ctx, events[lo:hi]); err != nil {
			t.Fatal(err)
		}
		if flushAfter > 0 && bi == flushAfter {
			if err := svc.Flush(ctx); err != nil {
				t.Fatal(err)
			}
		}
		if restartEvery > 0 && bi%restartEvery == restartEvery-1 {
			svc.Close()
			if svc, err = stream.New(cfg, fakeEnricher{}); err != nil {
				t.Fatalf("recovery after batch %d: %v", bi, err)
			}
		}
	}
	if err := svc.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	return svc
}

// TestRecoveryEquivalence is the crash-recovery gate: a run that is
// torn down and recovered from checkpoint + WAL replay every other
// batch must end byte-identical — stable-ID EPM views, B membership
// partition, and all landscape counters — to an uninterrupted run fed
// the same sequence.
func TestRecoveryEquivalence(t *testing.T) {
	events := cleanCorpus(120)
	const batchSize, flushAfter = 10, 5

	want := feedInterrupted(t, testConfig(8), events, batchSize, flushAfter, 0)

	cfg := testConfig(8)
	cfg.Durability = stream.Durability{Dir: t.TempDir(), CheckpointEvery: 3, NoSync: true}
	got := feedInterrupted(t, cfg, events, batchSize, flushAfter, 2)

	compareServices(t, "recovered", got, want)
	st := got.Stats()
	if !st.WAL.Enabled || st.WAL.RecoveredRecords == 0 {
		t.Fatalf("recovery exercised no WAL replay: %+v", st.WAL)
	}
}

// TestCrashRecoveryStatsProperty kills and recovers the service after
// every k-th batch of a dirty corpus (duplicates and invalid events
// mixed in) and checks the recovered accounting — events, rejections by
// reason, duplicates, executions — matches an uninterrupted run.
func TestCrashRecoveryStatsProperty(t *testing.T) {
	events := dirtyCorpus(200)
	const batchSize = 10

	want := feedInterrupted(t, testConfig(8), events, batchSize, 8, 0)

	for _, k := range []int{1, 7, 64} {
		cfg := testConfig(8)
		cfg.Durability = stream.Durability{Dir: t.TempDir(), CheckpointEvery: 5, NoSync: true}
		got := feedInterrupted(t, cfg, events, batchSize, 8, k)
		compareServices(t, fmt.Sprintf("k=%d", k), got, want)
	}
}

// TestCheckpointAndWALReplay drives the explicit Checkpoint API: the
// snapshot lands atomically on disk, recovery replays only the WAL
// suffix past it, and a memory-only service refuses the call.
func TestCheckpointAndWALReplay(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(0)
	cfg.Durability = stream.Durability{Dir: dir, NoSync: true} // no auto-checkpoints
	svc, err := stream.New(cfg, fakeEnricher{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	events := cleanCorpus(40)
	for bi := 0; bi < 3; bi++ {
		if err := svc.Ingest(ctx, events[bi*10:(bi+1)*10]); err != nil {
			t.Fatal(err)
		}
	}
	if err := svc.Checkpoint(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "checkpoint.json")); err != nil {
		t.Fatalf("checkpoint file: %v", err)
	}
	st := svc.Stats()
	if st.WAL.Checkpoints != 1 || st.WAL.LastCheckpointSeq != 3 {
		t.Fatalf("WAL stats after checkpoint: %+v", st.WAL)
	}
	if err := svc.Ingest(ctx, events[30:40]); err != nil {
		t.Fatal(err)
	}
	svc.Close()

	re, err := stream.New(cfg, fakeEnricher{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if err := re.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	rst := re.Stats()
	if rst.Events != 40 {
		t.Fatalf("recovered %d events, want 40", rst.Events)
	}
	// Only the post-checkpoint batch needed replay.
	if rst.WAL.RecoveredRecords != 1 {
		t.Fatalf("replayed %d records, want 1", rst.WAL.RecoveredRecords)
	}

	mem := newTestService(t, testConfig(0))
	if err := mem.Checkpoint(ctx); err == nil {
		t.Fatal("Checkpoint on a memory-only service must error")
	}
}

// TestWALAppendFailureDegradesToReadOnly is the degradation gate: once
// the WAL cannot append — and the one self-heal attempt also fails —
// the service must refuse writes with a typed storage failure instead
// of acknowledging batches it never durably logged, while reads keep
// serving the last applied state. The failure is a permanent faultfs
// rule: every WAL write from the third invocation on returns EIO, so
// the heal's retry fails too.
func TestWALAppendFailureDegradesToReadOnly(t *testing.T) {
	cfg := testConfig(0)
	cfg.Durability = stream.Durability{
		Dir:    t.TempDir(),
		NoSync: true,
		FS: faultfs.New(nil, faultfs.Config{
			// Writes 1 and 2 are the setup batch and its flush record;
			// everything after fails forever.
			Rules: []faultfs.Rule{{Op: faultfs.OpWrite, At: 3, Until: -1, Kind: faultfs.KindEIO}},
		}),
	}
	svc, err := stream.New(cfg, fakeEnricher{})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ctx := context.Background()
	events := cleanCorpus(30)

	if err := svc.Ingest(ctx, events[:10]); err != nil {
		t.Fatal(err)
	}
	if err := svc.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	applied := svc.Stats().Events

	// The doomed batch may be accepted onto the queue (admission happens
	// before the WAL write), but it must never be acknowledged as
	// applied, and the failure must latch.
	_ = svc.Ingest(ctx, events[10:20])

	var sf *stream.StorageFailure
	if err := svc.Flush(ctx); !errors.As(err, &sf) || !errors.Is(err, stream.ErrStorageFailed) {
		t.Fatalf("Flush after WAL failure returned %v, want *stream.StorageFailure", err)
	}
	if sf.Op != "wal-append" {
		t.Fatalf("storage-failure op %q, want wal-append", sf.Op)
	}
	// Every write entry point now refuses fast with the typed error.
	if err := svc.Ingest(ctx, events[20:30]); !errors.Is(err, stream.ErrStorageFailed) {
		t.Fatalf("Ingest after WAL failure returned %v, want ErrStorageFailed", err)
	}
	if err := svc.Checkpoint(ctx); !errors.Is(err, stream.ErrStorageFailed) {
		t.Fatalf("Checkpoint after WAL failure returned %v, want ErrStorageFailed", err)
	}

	st := svc.Stats()
	if st.Events != applied {
		t.Fatalf("events grew from %d to %d after the WAL broke", applied, st.Events)
	}
	if st.WAL.AppendErrors == 0 {
		t.Fatalf("no append errors recorded: %+v", st.WAL)
	}
	if st.Fatal == "" || !st.Storage.ReadOnly || st.Storage.Reason != stream.StorageFailedReason {
		t.Fatalf("Stats must surface read-only mode: fatal=%q storage=%+v", st.Fatal, st.Storage)
	}
	// Reads keep serving: the degraded service is still a query target.
	if _, err := svc.EPMClusters("epsilon"); err != nil {
		t.Fatalf("EPMClusters on a degraded service: %v", err)
	}
	if got := svc.Stats().Events; got != applied {
		t.Fatalf("read path disturbed state: %d events, want %d", got, applied)
	}
}

// TestWALAppendTornWriteSelfHeals drives the happy self-heal path: a
// single torn append (a genuine partial frame on disk) must be absorbed
// by the reopen-repair-retry cycle with no caller-visible error, no
// read-only degradation, and no duplicate record.
func TestWALAppendTornWriteSelfHeals(t *testing.T) {
	cfg := testConfig(0)
	cfg.Durability = stream.Durability{
		Dir:    t.TempDir(),
		NoSync: true,
		FS: faultfs.New(nil, faultfs.Config{
			Rules: []faultfs.Rule{{Op: faultfs.OpWrite, At: 2, Kind: faultfs.KindTorn}},
		}),
	}
	svc, err := stream.New(cfg, fakeEnricher{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	events := cleanCorpus(20)
	if err := svc.Ingest(ctx, events[:10]); err != nil {
		t.Fatal(err)
	}
	// Write 2 tears mid-frame; the heal must make this batch durable
	// anyway.
	if err := svc.Ingest(ctx, events[10:20]); err != nil {
		t.Fatal(err)
	}
	if err := svc.Flush(ctx); err != nil {
		t.Fatalf("Flush after a healed append: %v", err)
	}
	st := svc.Stats()
	if st.Storage.ReadOnly || st.Fatal != "" {
		t.Fatalf("healed service is read-only: %+v", st.Storage)
	}
	if st.Storage.WALRepairs != 1 {
		t.Fatalf("WALRepairs = %d, want 1", st.Storage.WALRepairs)
	}
	if st.Events != 20 {
		t.Fatalf("events = %d, want 20", st.Events)
	}
	svc.Close()

	// The healed log replays cleanly and completely: no lost batch, no
	// duplicate from a double append.
	re, err := stream.New(cfg, fakeEnricher{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if err := re.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	rst := re.Stats()
	if rst.Events != 20 || rst.Duplicates != 0 {
		t.Fatalf("recovered events=%d duplicates=%d, want 20/0", rst.Events, rst.Duplicates)
	}
}

// corruptFile flips one byte in the middle of path, breaking the CRC
// seal without truncating the file.
func corruptFile(t *testing.T, path string) {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/3] ^= 0x40
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestCheckpointGenerationFallback corrupts the live checkpoint and
// checks recovery falls back to the retained previous generation plus a
// longer WAL replay, quarantines the corrupt file aside, and still
// converges on state byte-identical to a clean run.
func TestCheckpointGenerationFallback(t *testing.T) {
	events := cleanCorpus(90)
	want := feedInterrupted(t, testConfig(8), events, 10, 0, 0)

	dir := t.TempDir()
	cfg := testConfig(8)
	cfg.Durability = stream.Durability{Dir: dir, NoSync: true, Generations: 2}
	svc, err := stream.New(cfg, fakeEnricher{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for bi := 0; bi < 9; bi++ {
		if err := svc.Ingest(ctx, events[bi*10:(bi+1)*10]); err != nil {
			t.Fatal(err)
		}
		if bi == 2 || bi == 5 {
			if err := svc.Checkpoint(ctx); err != nil {
				t.Fatal(err)
			}
		}
	}
	svc.Close()

	// The second checkpoint archived the first as generation 1.
	if _, err := os.Stat(filepath.Join(dir, "checkpoint.json.1")); err != nil {
		t.Fatalf("retained generation: %v", err)
	}
	corruptFile(t, filepath.Join(dir, "checkpoint.json"))

	re, err := stream.New(cfg, fakeEnricher{})
	if err != nil {
		t.Fatalf("recovery with a corrupt live checkpoint: %v", err)
	}
	if err := re.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	compareServices(t, "generation fallback", re, want)
	st := re.Stats()
	if st.Storage.CheckpointFallbacks != 1 || st.Storage.CorruptCheckpoints != 1 {
		t.Fatalf("fallback ledger %+v, want 1 fallback and 1 quarantined checkpoint", st.Storage)
	}
	// The corrupt file is quarantined aside so the next checkpoint can
	// never archive it as a good generation.
	if _, err := os.Stat(filepath.Join(dir, "checkpoint.json.corrupt")); err != nil {
		t.Fatalf("quarantined checkpoint: %v", err)
	}
	// The fallback generation's WAL suffix was longer than the live
	// checkpoint's would have been: batches 4..9 replayed, not just 7..9.
	if st.WAL.RecoveredRecords != 6 {
		t.Fatalf("replayed %d records, want 6 (the suffix past generation 1)", st.WAL.RecoveredRecords)
	}
	re.Close()

	// A fresh restart on the healthy fallback chain must not count
	// another fallback: the quarantined file is invisible, and a merely
	// absent live checkpoint is the normal post-quarantine shape. (The
	// cumulative Flushes counter legitimately grew by the first
	// recovery's flush, so only the views are compared here.)
	re2, err := stream.New(cfg, fakeEnricher{})
	if err != nil {
		t.Fatal(err)
	}
	defer re2.Close()
	if err := re2.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	for _, dim := range []string{"epsilon", "pi", "mu"} {
		gv, _ := re2.EPMClusters(dim)
		wv, _ := want.EPMClusters(dim)
		if !reflect.DeepEqual(gv, wv) {
			t.Fatalf("restart after quarantine: %s view diverges", dim)
		}
	}
	st2 := re2.Stats()
	if st2.Storage.CheckpointFallbacks != 0 || st2.Storage.CorruptCheckpoints != 0 {
		t.Fatalf("restart after quarantine counted another incident: %+v", st2.Storage)
	}
}

// TestCheckpointFailuresDegradeToReadOnly checks the consecutive-
// failure breaker: each failed checkpoint is reported to its caller and
// counted, writes keep flowing meanwhile, and the third consecutive
// failure latches read-only mode.
func TestCheckpointFailuresDegradeToReadOnly(t *testing.T) {
	cfg := testConfig(0)
	cfg.Durability = stream.Durability{
		Dir:    t.TempDir(),
		NoSync: true,
		FS: faultfs.New(nil, faultfs.Config{
			// Every checkpoint publish rename fails forever; WAL appends
			// (plain writes) are untouched.
			Rules: []faultfs.Rule{{Op: faultfs.OpRename, At: 1, Until: -1, Kind: faultfs.KindEIO}},
		}),
	}
	svc, err := stream.New(cfg, fakeEnricher{})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ctx := context.Background()
	events := cleanCorpus(40)
	for i := 0; i < 3; i++ {
		if err := svc.Ingest(ctx, events[i*10:(i+1)*10]); err != nil {
			t.Fatalf("ingest %d while checkpoints fail: %v", i, err)
		}
		err := svc.Checkpoint(ctx)
		if err == nil {
			t.Fatalf("checkpoint %d succeeded under a permanent rename fault", i+1)
		}
		if i < 2 && errors.Is(err, stream.ErrStorageFailed) {
			t.Fatalf("checkpoint %d already storage-failed: %v", i+1, err)
		}
		if got := svc.Stats().Storage.CheckpointFailures; got != i+1 {
			t.Fatalf("CheckpointFailures = %d after failure %d", got, i+1)
		}
	}
	// The breaker tripped on the third consecutive failure.
	if err := svc.Ingest(ctx, events[30:40]); !errors.Is(err, stream.ErrStorageFailed) {
		t.Fatalf("ingest after the breaker tripped: %v, want ErrStorageFailed", err)
	}
	st := svc.Stats()
	if !st.Storage.ReadOnly || st.Storage.Reason != stream.StorageFailedReason {
		t.Fatalf("storage ledger %+v, want read-only with reason storage_failed", st.Storage)
	}
	if st.Events != 30 {
		t.Fatalf("events = %d, want the 30 ingested before the breaker", st.Events)
	}
}

// TestScrubWAL checks the background scrubber: a clean log scrubs
// silently, a flipped byte in a sealed segment is reported with the
// segment path in the stats ledger, and the log itself is not modified.
func TestScrubWAL(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(0)
	// A 1-byte rotation threshold seals a segment per append, giving the
	// scrubber (which skips the in-motion active segment) work to do.
	cfg.Durability = stream.Durability{Dir: dir, NoSync: true, SegmentBytes: 1}
	svc, err := stream.New(cfg, fakeEnricher{})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ctx := context.Background()
	events := cleanCorpus(40)
	for i := 0; i < 4; i++ {
		if err := svc.Ingest(ctx, events[i*10:(i+1)*10]); err != nil {
			t.Fatal(err)
		}
	}
	if err := svc.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if err := svc.ScrubWAL(); err != nil {
		t.Fatalf("scrubbing a clean log: %v", err)
	}
	st := svc.Stats()
	if st.Storage.Scrub.Runs != 1 || st.Storage.Scrub.Records == 0 || st.Storage.Scrub.Corruptions != 0 {
		t.Fatalf("clean scrub ledger %+v", st.Storage.Scrub)
	}

	// Rot the oldest sealed segment on disk, under the running service.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var target string
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".wal" {
			target = filepath.Join(dir, e.Name())
			break
		}
	}
	if target == "" {
		t.Fatal("no WAL segment on disk")
	}
	corruptFile(t, target)

	err = svc.ScrubWAL()
	if err == nil {
		t.Fatal("scrub missed the flipped byte")
	}
	st = svc.Stats()
	sc := st.Storage.Scrub
	if sc.Runs != 2 || sc.Corruptions == 0 || len(sc.CorruptSegments) == 0 || sc.LastError == "" {
		t.Fatalf("scrub ledger after corruption %+v", sc)
	}
	if sc.CorruptSegments[0] != target {
		t.Fatalf("corrupt segment %q, want %q", sc.CorruptSegments[0], target)
	}
	// Detection only: the service stays writable; the segment is rot on
	// disk, not in applied state.
	if err := svc.Ingest(ctx, cleanCorpus(50)[40:50]); err != nil {
		t.Fatalf("ingest after a scrub finding: %v", err)
	}
}

// TestCrashRecoveryWithFaultSchedules is the fault-schedule extension of
// the k-restart property: with seeded disk faults injected under the
// WAL — torn final writes before a kill, transient write EIO, fsync
// failures — every run must still converge on accounting byte-identical
// to the clean uninterrupted run, because each fault is either healed
// invisibly or surfaced before the batch was acknowledged.
func TestCrashRecoveryWithFaultSchedules(t *testing.T) {
	events := dirtyCorpus(200)
	const batchSize = 10

	want := feedInterrupted(t, testConfig(8), events, batchSize, 8, 0)

	schedules := []struct {
		name   string
		sync   bool // exercise fsync (NoSync=false) paths
		faults faultfs.Config
	}{
		{"torn-then-eio", false, faultfs.Config{Rules: []faultfs.Rule{
			{Op: faultfs.OpWrite, At: 5, Kind: faultfs.KindTorn},
			{Op: faultfs.OpWrite, At: 11, Kind: faultfs.KindEIO},
			{Op: faultfs.OpWrite, At: 17, Kind: faultfs.KindTorn},
		}}},
		{"seeded-sync-errors", true, faultfs.Config{Seed: 3, SyncErr: 0.1, MaxFaults: 4}},
		{"seeded-mixed", true, faultfs.Config{Seed: 9, WriteTorn: 0.05, SyncErr: 0.05, MaxFaults: 5}},
	}
	for _, sched := range schedules {
		t.Run(sched.name, func(t *testing.T) {
			inj := faultfs.New(nil, sched.faults)
			cfg := testConfig(8)
			cfg.Durability = stream.Durability{
				Dir: t.TempDir(), CheckpointEvery: 5, NoSync: !sched.sync, FS: inj,
			}
			got := feedInterrupted(t, cfg, events, batchSize, 8, 7)
			compareServices(t, sched.name, got, want)
			if inj.Stats().Total == 0 {
				t.Fatalf("schedule injected no faults; the run proved nothing")
			}
		})
	}
}

// TestApplyReplicatedBadRecordTyped checks a follower feeding garbage
// into the apply path gets the typed ErrBadRecord it keys its
// re-bootstrap on.
func TestApplyReplicatedBadRecordTyped(t *testing.T) {
	rep, err := stream.NewReplica(testConfig(8), fakeEnricher{})
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close()
	if err := rep.ApplyReplicated(1, []byte("not json")); !errors.Is(err, stream.ErrBadRecord) {
		t.Fatalf("garbage record: %v, want ErrBadRecord", err)
	}
	if err := rep.ApplyReplicated(1, []byte(`{"kind":"volcano"}`)); !errors.Is(err, stream.ErrBadRecord) {
		t.Fatalf("unknown kind: %v, want ErrBadRecord", err)
	}
}
