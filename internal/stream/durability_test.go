package stream_test

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/dataset"
	"repro/internal/stream"
)

// cleanCorpus builds n well-formed events across three truth variants.
func cleanCorpus(n int) []dataset.Event {
	var out []dataset.Event
	for i := 0; i < n; i++ {
		out = append(out, testEvent(i, fmt.Sprintf("v%d", i%3)))
	}
	return out
}

// dirtyCorpus mixes duplicates and invalid events into a clean
// sequence, so recovery must reproduce the rejection accounting too.
func dirtyCorpus(n int) []dataset.Event {
	var out []dataset.Event
	for i := 0; i < n; i++ {
		switch {
		case i%17 == 3 && i >= 3:
			// Redelivery: the event ID was already ingested.
			out = append(out, testEvent(i-3, fmt.Sprintf("v%d", (i-3)%3)))
		case i%23 == 5:
			e := testEvent(i, "")
			e.Attacker = ""
			out = append(out, e)
		default:
			out = append(out, testEvent(i, fmt.Sprintf("v%d", i%3)))
		}
	}
	return out
}

// normStats strips the path- and process-dependent fields (queue
// high-water marks, WAL/IO counters) that are legitimately different
// between an interrupted and an uninterrupted run.
func normStats(st stream.Stats) stream.Stats {
	st.QueueCap, st.QueueDepth, st.MaxQueueDepth = 0, 0, 0
	st.WAL = stream.WALStats{}
	// Role, uptime, and the replicated-record count identify the
	// process, not the landscape state.
	st.Role, st.UptimeMS, st.Replicated = "", 0, 0
	// The admission ledger is process-local runtime telemetry
	// (recovery replays bypass admission), like queue depth above.
	st.Admission = stream.AdmissionStats{}
	// The delta/full epoch split is path-dependent: recovery replays the
	// checkpointed prefix as one full regroup, an uninterrupted run may
	// have covered the same instances with several delta epochs. The
	// clustering output is byte-identical either way; only the work
	// accounting differs.
	for _, ds := range []*stream.DimStats{&st.Epsilon, &st.Pi, &st.Mu} {
		ds.DeltaEpochs, ds.FullRegroups = 0, 0
	}
	return st
}

// compareServices asserts two services converged on identical landscape
// state: stable-ID EPM views, B membership partition, and counters.
func compareServices(t *testing.T, label string, got, want *stream.Service) {
	t.Helper()
	for _, dim := range []string{"epsilon", "pi", "mu"} {
		gv, err := got.EPMClusters(dim)
		if err != nil {
			t.Fatal(err)
		}
		wv, err := want.EPMClusters(dim)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(gv, wv) {
			t.Fatalf("%s: %s view diverges:\ngot  %+v\nwant %+v", label, dim, gv, wv)
		}
	}
	if !reflect.DeepEqual(bMembers(got.BResult()), bMembers(want.BResult())) {
		t.Fatalf("%s: B partition diverges", label)
	}
	gs, ws := normStats(got.Stats()), normStats(want.Stats())
	if !reflect.DeepEqual(gs, ws) {
		t.Fatalf("%s: stats diverge:\ngot  %+v\nwant %+v", label, gs, ws)
	}
}

// feedInterrupted replays the corpus in batches, flushing mid-stream at
// flushAfter, and — when restartEvery > 0 — tears the service down and
// recovers it from disk after every restartEvery-th batch. It returns
// the final (flushed) service.
func feedInterrupted(t *testing.T, cfg stream.Config, events []dataset.Event, batchSize, flushAfter, restartEvery int) *stream.Service {
	t.Helper()
	ctx := context.Background()
	svc, err := stream.New(cfg, fakeEnricher{})
	if err != nil {
		t.Fatal(err)
	}
	for bi := 0; bi*batchSize < len(events); bi++ {
		lo, hi := bi*batchSize, (bi+1)*batchSize
		if hi > len(events) {
			hi = len(events)
		}
		if err := svc.Ingest(ctx, events[lo:hi]); err != nil {
			t.Fatal(err)
		}
		if flushAfter > 0 && bi == flushAfter {
			if err := svc.Flush(ctx); err != nil {
				t.Fatal(err)
			}
		}
		if restartEvery > 0 && bi%restartEvery == restartEvery-1 {
			svc.Close()
			if svc, err = stream.New(cfg, fakeEnricher{}); err != nil {
				t.Fatalf("recovery after batch %d: %v", bi, err)
			}
		}
	}
	if err := svc.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	return svc
}

// TestRecoveryEquivalence is the crash-recovery gate: a run that is
// torn down and recovered from checkpoint + WAL replay every other
// batch must end byte-identical — stable-ID EPM views, B membership
// partition, and all landscape counters — to an uninterrupted run fed
// the same sequence.
func TestRecoveryEquivalence(t *testing.T) {
	events := cleanCorpus(120)
	const batchSize, flushAfter = 10, 5

	want := feedInterrupted(t, testConfig(8), events, batchSize, flushAfter, 0)

	cfg := testConfig(8)
	cfg.Durability = stream.Durability{Dir: t.TempDir(), CheckpointEvery: 3, NoSync: true}
	got := feedInterrupted(t, cfg, events, batchSize, flushAfter, 2)

	compareServices(t, "recovered", got, want)
	st := got.Stats()
	if !st.WAL.Enabled || st.WAL.RecoveredRecords == 0 {
		t.Fatalf("recovery exercised no WAL replay: %+v", st.WAL)
	}
}

// TestCrashRecoveryStatsProperty kills and recovers the service after
// every k-th batch of a dirty corpus (duplicates and invalid events
// mixed in) and checks the recovered accounting — events, rejections by
// reason, duplicates, executions — matches an uninterrupted run.
func TestCrashRecoveryStatsProperty(t *testing.T) {
	events := dirtyCorpus(200)
	const batchSize = 10

	want := feedInterrupted(t, testConfig(8), events, batchSize, 8, 0)

	for _, k := range []int{1, 7, 64} {
		cfg := testConfig(8)
		cfg.Durability = stream.Durability{Dir: t.TempDir(), CheckpointEvery: 5, NoSync: true}
		got := feedInterrupted(t, cfg, events, batchSize, 8, k)
		compareServices(t, fmt.Sprintf("k=%d", k), got, want)
	}
}

// TestCheckpointAndWALReplay drives the explicit Checkpoint API: the
// snapshot lands atomically on disk, recovery replays only the WAL
// suffix past it, and a memory-only service refuses the call.
func TestCheckpointAndWALReplay(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(0)
	cfg.Durability = stream.Durability{Dir: dir, NoSync: true} // no auto-checkpoints
	svc, err := stream.New(cfg, fakeEnricher{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	events := cleanCorpus(40)
	for bi := 0; bi < 3; bi++ {
		if err := svc.Ingest(ctx, events[bi*10:(bi+1)*10]); err != nil {
			t.Fatal(err)
		}
	}
	if err := svc.Checkpoint(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "checkpoint.json")); err != nil {
		t.Fatalf("checkpoint file: %v", err)
	}
	st := svc.Stats()
	if st.WAL.Checkpoints != 1 || st.WAL.LastCheckpointSeq != 3 {
		t.Fatalf("WAL stats after checkpoint: %+v", st.WAL)
	}
	if err := svc.Ingest(ctx, events[30:40]); err != nil {
		t.Fatal(err)
	}
	svc.Close()

	re, err := stream.New(cfg, fakeEnricher{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if err := re.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	rst := re.Stats()
	if rst.Events != 40 {
		t.Fatalf("recovered %d events, want 40", rst.Events)
	}
	// Only the post-checkpoint batch needed replay.
	if rst.WAL.RecoveredRecords != 1 {
		t.Fatalf("replayed %d records, want 1", rst.WAL.RecoveredRecords)
	}

	mem := newTestService(t, testConfig(0))
	if err := mem.Checkpoint(ctx); err == nil {
		t.Fatal("Checkpoint on a memory-only service must error")
	}
}

// TestWALAppendFailureFailsClosed is the satellite (e) gate: once the
// WAL cannot append, the service must refuse all further work with a
// typed *stream.FatalError instead of acknowledging batches it never
// durably logged. The failure is injected without new API surface: a
// 1-byte rotation threshold forces a segment create on every append,
// and removing the durability dir makes that create fail.
func TestWALAppendFailureFailsClosed(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(0)
	cfg.Durability = stream.Durability{Dir: dir, SegmentBytes: 1, NoSync: true}
	svc, err := stream.New(cfg, fakeEnricher{})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ctx := context.Background()
	events := cleanCorpus(30)

	if err := svc.Ingest(ctx, events[:10]); err != nil {
		t.Fatal(err)
	}
	if err := svc.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	applied := svc.Stats().Events

	// Break the durability layer: the next append rotates into a
	// directory that no longer exists.
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	// The doomed batch may be accepted onto the queue (admission happens
	// before the WAL write), but it must never be acknowledged as
	// applied, and the failure must latch.
	_ = svc.Ingest(ctx, events[10:20])

	var fatal *stream.FatalError
	if err := svc.Flush(ctx); !errors.As(err, &fatal) {
		t.Fatalf("Flush after WAL failure returned %v, want *stream.FatalError", err)
	}
	if fatal.Op != "wal-append" {
		t.Fatalf("fatal op %q, want wal-append", fatal.Op)
	}
	// Every entry point now fails closed, fast.
	if err := svc.Ingest(ctx, events[20:30]); !errors.As(err, &fatal) {
		t.Fatalf("Ingest after WAL failure returned %v, want *stream.FatalError", err)
	}
	if err := svc.Checkpoint(ctx); !errors.As(err, &fatal) {
		t.Fatalf("Checkpoint after WAL failure returned %v, want *stream.FatalError", err)
	}

	st := svc.Stats()
	if st.Events != applied {
		t.Fatalf("events grew from %d to %d after the WAL broke", applied, st.Events)
	}
	if st.WAL.AppendErrors == 0 {
		t.Fatalf("no append errors recorded: %+v", st.WAL)
	}
	if st.Fatal == "" {
		t.Fatal("Stats must surface the fail-closed error")
	}
}
