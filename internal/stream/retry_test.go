package stream_test

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/enrich"
	"repro/internal/stream"
)

// runWithEnricher replays the corpus in fixed batches through a fresh
// service built on the given enricher and returns the flushed service.
func runWithEnricher(t *testing.T, cfg stream.Config, e stream.Enricher, batchSize int) *stream.Service {
	t.Helper()
	svc, err := stream.New(cfg, e)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	if err := stream.Replay(context.Background(), svc, cleanCorpus(120), batchSize); err != nil {
		t.Fatal(err)
	}
	return svc
}

// TestTransientFaultRateKeepsPartitionIdentical is the chaos gate: with
// a 30% transient fault rate on both enrichment operations, every
// sample must still make it into the landscape — zero quarantines, and
// a post-Flush partition byte-identical to the fault-free run.
func TestTransientFaultRateKeepsPartitionIdentical(t *testing.T) {
	want := runWithEnricher(t, testConfig(8), fakeEnricher{}, 10)

	cfg := testConfig(8)
	cfg.Retry = stream.Retry{MaxAttempts: 8}
	faulty := enrich.NewFaulty(fakeEnricher{}, enrich.FaultConfig{Seed: 7, Rate: 0.3})
	got := runWithEnricher(t, cfg, faulty, 10)

	st := got.Stats()
	if tr, perm := faulty.Injected(); tr == 0 || perm != 0 {
		t.Fatalf("injected %d transient / %d permanent faults, want >0 / 0", tr, perm)
	}
	if st.Retry.Quarantined != 0 || len(got.Quarantined()) != 0 {
		t.Fatalf("quarantined %d samples under transient-only faults: %v", st.Retry.Quarantined, got.Quarantined())
	}
	if st.Executed != want.Stats().Executed {
		t.Fatalf("executed %d samples, fault-free run executed %d", st.Executed, want.Stats().Executed)
	}
	if st.Retry.Scheduled == 0 || st.Retry.Successes != st.Retry.Scheduled {
		t.Fatalf("retry pool did not drain cleanly: %+v", st.Retry)
	}
	for _, dim := range []string{"epsilon", "pi", "mu"} {
		gv, _ := got.EPMClusters(dim)
		wv, _ := want.EPMClusters(dim)
		if !reflect.DeepEqual(gv, wv) {
			t.Fatalf("%s view diverges under faults", dim)
		}
	}
	if !reflect.DeepEqual(bMembers(got.BResult()), bMembers(want.BResult())) {
		t.Fatal("B partition diverges under transient faults")
	}
}

// TestFailFirstAccounting pins the exact retry arithmetic for the
// fail-N-times-then-succeed schedule: with FailFirst=3 every sample
// burns three label attempts and three execute attempts before
// recovering, and nothing is quarantined.
func TestFailFirstAccounting(t *testing.T) {
	cfg := testConfig(8)
	cfg.Retry = stream.Retry{MaxAttempts: 5}
	faulty := enrich.NewFaulty(fakeEnricher{}, enrich.FaultConfig{FailFirst: 3})
	svc := runWithEnricher(t, cfg, faulty, 10)

	st := svc.Stats()
	// 12 distinct samples; per sample: 3 failed labels then success,
	// 3 failed executions then success.
	const samples = 12
	if st.Executed != samples || st.Degraded != 0 {
		t.Fatalf("executed=%d degraded=%d, want %d/0", st.Executed, st.Degraded, samples)
	}
	if st.EnrichErrors != 6*samples {
		t.Fatalf("enrich errors %d, want %d", st.EnrichErrors, 6*samples)
	}
	// Each sample enters the pool once per stage and leaves by success.
	if st.Retry.Scheduled != 2*samples || st.Retry.Successes != 2*samples {
		t.Fatalf("retry scheduled/successes %d/%d, want %d/%d", st.Retry.Scheduled, st.Retry.Successes, 2*samples, 2*samples)
	}
	// Per stage: the initial attempt is not a retry; attempts 2..4 are.
	if st.Retry.Attempts != 6*samples {
		t.Fatalf("retry attempts %d, want %d", st.Retry.Attempts, 6*samples)
	}
	if st.Retry.Quarantined != 0 || st.Retry.Pending != 0 {
		t.Fatalf("pool not clean after flush: %+v", st.Retry)
	}
	if st.B.Clusters != 3 {
		t.Fatalf("B clusters %d, want 3", st.B.Clusters)
	}
}

// TestPermanentFaultsQuarantine checks permanent failures degrade
// gracefully: the poisoned sample is quarantined with its final error,
// never retried, and the rest of the landscape is unaffected.
func TestPermanentFaultsQuarantine(t *testing.T) {
	cfg := testConfig(8)
	faulty := enrich.NewFaulty(fakeEnricher{}, enrich.FaultConfig{
		Permanent: map[string]bool{"md5-v0-0": true},
	})
	svc := runWithEnricher(t, cfg, faulty, 10)

	st := svc.Stats()
	q := svc.Quarantined()
	if len(q) != 1 || q["md5-v0-0"] == "" {
		t.Fatalf("quarantine = %v, want exactly md5-v0-0", q)
	}
	if st.Retry.Quarantined != 1 || st.Retry.Scheduled != 0 || st.Retry.Attempts != 0 {
		t.Fatalf("permanent failure must skip the retry pool: %+v", st.Retry)
	}
	if st.Executed != 11 {
		t.Fatalf("executed %d, want 11 (one sample quarantined)", st.Executed)
	}
	if st.B.Clusters != 3 || st.B.Samples != 11 {
		t.Fatalf("B clusters=%d samples=%d, want 3/11", st.B.Clusters, st.B.Samples)
	}
}

// TestQuarantineAfterMaxAttempts checks the transient budget: a sample
// that keeps failing transiently is quarantined after exactly
// MaxAttempts attempts, not before and not forever.
func TestQuarantineAfterMaxAttempts(t *testing.T) {
	cfg := testConfig(8)
	cfg.Retry = stream.Retry{MaxAttempts: 3}
	faulty := enrich.NewFaulty(fakeEnricher{}, enrich.FaultConfig{FailFirst: 100})
	svc := runWithEnricher(t, cfg, faulty, 10)

	st := svc.Stats()
	const samples = 12
	if st.Retry.Quarantined != samples || len(svc.Quarantined()) != samples {
		t.Fatalf("quarantined %d, want all %d samples", st.Retry.Quarantined, samples)
	}
	// Per sample: initial label attempt + 2 retries = MaxAttempts.
	if st.EnrichErrors != 3*samples || st.Retry.Attempts != 2*samples {
		t.Fatalf("errors=%d retryAttempts=%d, want %d/%d", st.EnrichErrors, st.Retry.Attempts, 3*samples, 2*samples)
	}
	tr, _ := faulty.Injected()
	if tr != 3*samples {
		t.Fatalf("enricher saw %d attempts, want exactly %d (quarantine must stop retries)", tr, 3*samples)
	}
	if st.Executed != 0 || st.B.Samples != 0 {
		t.Fatalf("executed=%d bSamples=%d, want 0/0", st.Executed, st.B.Samples)
	}
}

// TestRetryPoolSurvivesRecovery checks the pool is part of the durable
// state: a service torn down with samples still pooled recovers them
// and drains the pool to the same end state as an uninterrupted faulty
// run would — the backoff clock (applied records) replays identically.
func TestRetryPoolSurvivesRecovery(t *testing.T) {
	events := cleanCorpus(120)
	ctx := context.Background()

	cfg := testConfig(8)
	cfg.Retry = stream.Retry{MaxAttempts: 6, BaseBackoff: 2, MaxBackoff: 16}
	cfg.Durability = stream.Durability{Dir: t.TempDir(), CheckpointEvery: 4, NoSync: true}
	// FailFirst counters live in the enricher process; rebuild the
	// wrapper at each restart so the schedule restarts too — the test
	// then proves pooled samples persist and eventually drain.
	newFaulty := func() stream.Enricher {
		return enrich.NewFaulty(fakeEnricher{}, enrich.FaultConfig{FailFirst: 2})
	}

	svc, err := stream.New(cfg, newFaulty())
	if err != nil {
		t.Fatal(err)
	}
	for bi := 0; bi < 12; bi++ {
		if err := svc.Ingest(ctx, events[bi*10:(bi+1)*10]); err != nil {
			t.Fatal(err)
		}
		if bi%3 == 2 {
			if svc.Stats().Retry.Pending == 0 && bi == 2 {
				t.Fatal("test premise broken: expected pooled samples at the first restart")
			}
			svc.Close()
			if svc, err = stream.New(cfg, newFaulty()); err != nil {
				t.Fatalf("recovery after batch %d: %v", bi, err)
			}
		}
	}
	if err := svc.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	st := svc.Stats()
	if st.Retry.Pending != 0 || st.Retry.Quarantined != 0 {
		t.Fatalf("pool did not drain after recovery: %+v, quarantine %v", st.Retry, svc.Quarantined())
	}
	if st.Executed != 12 || st.B.Clusters != 3 {
		t.Fatalf("executed=%d clusters=%d, want 12/3", st.Executed, st.B.Clusters)
	}
}
