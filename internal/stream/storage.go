package stream

// Storage health: the typed read-only degradation that replaced the
// crash-only fail-closed behavior, and the background WAL scrubber.
//
// A persistent WAL-append or checkpoint failure no longer latches the
// whole service into a fatal state — it transitions to read-only mode:
// every write (Ingest, Flush, Checkpoint) returns a *StorageFailure
// matching ErrStorageFailed (the HTTP layer maps it to a typed 503 with
// reason "storage_failed"), while queries keep serving the last applied
// state and /readyz and /v1/stats expose the degradation. The
// transition is preceded by one self-heal attempt (see healAppend): a
// torn tail or a transient fault heals in place and never surfaces.

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/wal"
)

// StorageFailedReason is the machine-readable degradation reason
// surfaced in HTTP error bodies, /readyz, and Stats.
const StorageFailedReason = "storage_failed"

// ErrStorageFailed matches (errors.Is) every *StorageFailure, so
// callers can test for storage degradation without naming the op.
var ErrStorageFailed = errors.New(StorageFailedReason)

// StorageFailure records the persistent durability failure that moved
// the service to read-only mode: writes are refused because they could
// not be made durable, reads keep serving. Recovery is an operator
// action (fix the disk, restart); the intact WAL prefix replays.
type StorageFailure struct {
	Op  string // the failing operation, e.g. "wal-append" or "checkpoint"
	Err error
}

func (e *StorageFailure) Error() string {
	return fmt.Sprintf("stream: storage failed (%s), service is read-only: %v", e.Op, e.Err)
}

func (e *StorageFailure) Unwrap() error { return e.Err }

// Is makes errors.Is(err, ErrStorageFailed) true for every
// *StorageFailure.
func (e *StorageFailure) Is(target error) bool { return target == ErrStorageFailed }

// StorageFailure reports the degraded state: nil while healthy, the
// first *StorageFailure once persistent durability failure moved the
// service to read-only mode.
func (s *Service) StorageFailure() error {
	if e := s.storageErr.Load(); e != nil {
		return e
	}
	return nil
}

// ReadOnlyReason reports why writes are refused: "" while writable,
// StorageFailedReason after storage degradation. Replica read-onlyness
// is a role, not a degradation, and is surfaced separately.
func (s *Service) ReadOnlyReason() string {
	if s.storageErr.Load() != nil {
		return StorageFailedReason
	}
	return ""
}

// enterReadOnly latches the first persistent storage failure; later
// ones land in the recent-errors ring only.
func (s *Service) enterReadOnly(op string, err error) {
	if s.storageErr.CompareAndSwap(nil, &StorageFailure{Op: op, Err: err}) {
		s.mu.Lock()
		s.recordError(fmt.Sprintf("storage failed (%s), serving read-only: %v", op, err))
		s.mu.Unlock()
	}
}

// ScrubStats is the WAL scrubber's cumulative ledger in Stats.Storage.
type ScrubStats struct {
	// Runs counts scrub passes; Segments/Records count what they walked.
	Runs     int `json:"runs"`
	Segments int `json:"segments"`
	Records  int `json:"records"`
	// Corruptions counts read failures the scrubber hit; the distinct
	// segment paths are listed (bounded) in CorruptSegments so operators
	// see rot before recovery needs the segment.
	Corruptions     int      `json:"corruptions"`
	CorruptSegments []string `json:"corrupt_segments,omitempty"`
	LastError       string   `json:"last_error,omitempty"`
}

// StorageStats is the durability-health slice of Stats.
type StorageStats struct {
	// ReadOnly, Reason, and Error describe the degraded mode; all empty
	// while writes flow.
	ReadOnly bool   `json:"read_only"`
	Reason   string `json:"reason,omitempty"`
	Error    string `json:"error,omitempty"`
	// WALRepairs counts successful write-path self-heals (reopen +
	// retry after a failed append).
	WALRepairs int `json:"wal_repairs"`
	// CheckpointFailures is the consecutive-failure counter that trips
	// read-only mode at maxCheckpointFailures.
	CheckpointFailures int `json:"checkpoint_failures"`
	// CheckpointFallbacks counts recoveries that fell back past a
	// corrupt newest checkpoint to an older generation;
	// CorruptCheckpoints counts checkpoint files quarantined aside.
	CheckpointFallbacks int `json:"checkpoint_fallbacks"`
	CorruptCheckpoints  int `json:"corrupt_checkpoints"`
	// Generations is the number of fallback checkpoint generations
	// currently retained on disk.
	Generations int        `json:"generations"`
	Scrub       ScrubStats `json:"scrub"`
}

// storageStats snapshots the ledger. Callers hold s.mu.
func (s *Service) storageStats() StorageStats {
	st := StorageStats{
		WALRepairs:          s.walRepairs,
		CheckpointFailures:  s.ckptFailures,
		CheckpointFallbacks: s.ckptFallbacks,
		CorruptCheckpoints:  s.corruptCkpts,
		Generations:         len(s.gens),
		Scrub: ScrubStats{
			Runs:        s.scrubRuns,
			Segments:    s.scrubSegments,
			Records:     s.scrubRecords,
			Corruptions: s.scrubCorruptions,
			LastError:   s.scrubLastErr,
		},
	}
	if len(s.scrubCorrupt) > 0 {
		st.Scrub.CorruptSegments = append(st.Scrub.CorruptSegments, s.scrubCorrupt...)
	}
	if err := s.StorageFailure(); err != nil {
		st.ReadOnly = true
		st.Reason = StorageFailedReason
		st.Error = err.Error()
	}
	return st
}

// maxScrubCorrupt bounds the distinct corrupt-segment paths retained.
const maxScrubCorrupt = 8

// ScrubWAL walks every sealed WAL segment read-only, verifying frame
// CRCs, and records what it finds in Stats.Storage.Scrub — surfacing
// sealed-segment rot while the operator can still act on it, instead of
// at the next recovery. It never modifies the log; the active segment
// is skipped (its tail is in motion and Open repairs it anyway). A
// memory-only service scrubs nothing. The returned error summarizes any
// corruption found.
func (s *Service) ScrubWAL() error {
	s.mu.RLock()
	w := s.wal
	s.mu.RUnlock()
	if w == nil {
		return nil
	}
	segs, err := w.Segments()
	if err != nil {
		return err
	}
	var segments, records, corruptions int
	var corrupt []string
	var lastErr string
	for _, info := range segs {
		if !info.Sealed {
			continue
		}
		r, oerr := w.OpenSegment(info.FirstSeq, 0)
		if oerr != nil {
			if errors.Is(oerr, wal.ErrSegmentGone) {
				continue // GC won the race; nothing to scrub
			}
			corruptions++
			lastErr = oerr.Error()
			continue
		}
		segments++
		for {
			_, _, nerr := r.Next()
			if nerr == io.EOF {
				break
			}
			if nerr != nil {
				corruptions++
				lastErr = nerr.Error()
				var ce *wal.CorruptError
				if errors.As(nerr, &ce) {
					corrupt = append(corrupt, ce.Path)
				}
				break
			}
			records++
		}
		r.Close()
	}
	s.mu.Lock()
	s.scrubRuns++
	s.scrubSegments += segments
	s.scrubRecords += records
	s.scrubCorruptions += corruptions
	if lastErr != "" {
		s.scrubLastErr = lastErr
	}
	for _, p := range corrupt {
		if len(s.scrubCorrupt) >= maxScrubCorrupt {
			break
		}
		seen := false
		for _, q := range s.scrubCorrupt {
			if q == p {
				seen = true
				break
			}
		}
		if !seen {
			s.scrubCorrupt = append(s.scrubCorrupt, p)
		}
	}
	s.mu.Unlock()
	if corruptions > 0 {
		return fmt.Errorf("stream: wal scrub found %d corruptions: %s", corruptions, lastErr)
	}
	return nil
}
