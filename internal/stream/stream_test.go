package stream_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/behavior"
	"repro/internal/dataset"
	"repro/internal/epm"
	"repro/internal/pe"
	"repro/internal/stream"
)

// fakeEnricher labels every sample and returns one synthetic feature per
// truth variant, so samples of the same variant cluster together.
type fakeEnricher struct{}

func (fakeEnricher) LabelSample(s *dataset.Sample) error {
	s.AVLabel = "Fake." + s.TruthVariant
	return nil
}

func (fakeEnricher) ExecuteSample(s *dataset.Sample) (*behavior.Profile, bool, error) {
	p := behavior.NewProfile()
	for k := 0; k < 10; k++ {
		p.Add(fmt.Sprintf("%s-beh%d", s.TruthVariant, k))
	}
	return p, false, nil
}

// testEvent builds a well-formed event; variant "" omits the sample.
func testEvent(i int, variant string) dataset.Event {
	e := dataset.Event{
		ID:          fmt.Sprintf("ev%04d", i),
		Time:        time.Date(2008, 1, 1, 0, 0, 0, 0, time.UTC).Add(time.Duration(i) * time.Minute),
		Attacker:    fmt.Sprintf("10.0.%d.%d", i%5, i%13),
		Sensor:      fmt.Sprintf("s%d", i%7),
		FSMPath:     fmt.Sprintf("fsm-%d", i%3),
		DestPort:    445,
		Protocol:    "ftp",
		Filename:    "a.exe",
		PayloadPort: 33333,
		Interaction: "push",
	}
	if variant != "" {
		e.Sample = pe.Features{
			MD5:         fmt.Sprintf("md5-%s-%d", variant, i%4),
			IsPE:        true,
			Magic:       pe.MagicPEGUI,
			NumSections: 3,
		}
		e.DownloadOutcome = "ok"
		e.TruthVariant = variant
	}
	return e
}

func newTestService(t *testing.T, cfg stream.Config) *stream.Service {
	t.Helper()
	svc, err := stream.New(cfg, fakeEnricher{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	return svc
}

func testConfig(epochSize int) stream.Config {
	cfg := stream.DefaultConfig()
	cfg.EpochSize = epochSize
	cfg.QueueDepth = 2
	return cfg
}

func TestServiceIngestAndStats(t *testing.T) {
	svc := newTestService(t, testConfig(8))
	ctx := context.Background()
	var events []dataset.Event
	for i := 0; i < 60; i++ {
		events = append(events, testEvent(i, fmt.Sprintf("v%d", i%3)))
	}
	if err := stream.Replay(ctx, svc, events, 10); err != nil {
		t.Fatal(err)
	}
	st := svc.Stats()
	if st.Events != 60 || st.Rejected != 0 || st.Duplicates != 0 {
		t.Fatalf("events=%d rejected=%d duplicates=%d", st.Events, st.Rejected, st.Duplicates)
	}
	if st.Samples != 12 || st.Executed != 12 {
		t.Fatalf("samples=%d executed=%d, want 12 each", st.Samples, st.Executed)
	}
	if st.B.Clusters != 3 || st.B.Pending != 0 {
		t.Fatalf("B clusters=%d pending=%d, want 3 clusters (one per variant)", st.B.Clusters, st.B.Pending)
	}
	if st.Epsilon.Instances != 60 || st.Epsilon.Epoch == 0 {
		t.Fatalf("epsilon instances=%d epoch=%d", st.Epsilon.Instances, st.Epsilon.Epoch)
	}
	if st.Flushes != 1 || st.MaxQueueDepth < 1 {
		t.Fatalf("flushes=%d maxQueueDepth=%d", st.Flushes, st.MaxQueueDepth)
	}

	view, err := svc.EPMClusters("epsilon")
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range view.Clusters {
		total += c.Size
	}
	if total+view.Pending != 60 {
		t.Fatalf("epsilon cluster sizes %d + pending %d != 60", total, view.Pending)
	}
	if _, err := svc.EPMClusters("bogus"); err == nil {
		t.Fatal("unknown dimension must error")
	}

	bv := svc.BClusters()
	if len(bv.Clusters) != 3 {
		t.Fatalf("BClusters = %d, want 3", len(bv.Clusters))
	}

	sv, ok := svc.Sample("md5-v0-0")
	if !ok {
		t.Fatal("known sample not found")
	}
	if !sv.Executable || sv.AVLabel != "Fake.v0" || sv.BSize != 4 {
		t.Fatalf("sample view %+v", sv)
	}
	if _, ok := svc.Sample("nope"); ok {
		t.Fatal("unknown sample must report !ok")
	}
}

func TestServiceRejectsAndDuplicates(t *testing.T) {
	svc := newTestService(t, testConfig(0))
	ctx := context.Background()
	good := testEvent(0, "v0")
	bad := testEvent(1, "")
	bad.Attacker = ""
	wild := testEvent(2, "")
	wild.FSMPath = epm.Wildcard
	if err := svc.Ingest(ctx, []dataset.Event{good, bad, wild, good}); err != nil {
		t.Fatal(err)
	}
	if err := svc.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	st := svc.Stats()
	if st.Events != 1 || st.Rejected != 2 || st.Duplicates != 1 {
		t.Fatalf("events=%d rejected=%d duplicates=%d, want 1/2/1", st.Events, st.Rejected, st.Duplicates)
	}
	if len(st.RecentErrors) == 0 {
		t.Fatal("RecentErrors should record the rejections")
	}
	if st.RejectedByReason["missing-source"] != 1 || st.RejectedByReason["reserved-value"] != 1 {
		t.Fatalf("RejectedByReason = %v, want missing-source:1 reserved-value:1", st.RejectedByReason)
	}
}

func TestServiceCloseSemantics(t *testing.T) {
	svc, err := stream.New(testConfig(0), fakeEnricher{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := svc.Ingest(ctx, []dataset.Event{testEvent(0, "v0")}); err != nil {
		t.Fatal(err)
	}
	svc.Close()
	svc.Close() // idempotent
	// Queued work was applied before Close returned.
	if st := svc.Stats(); st.Events != 1 {
		t.Fatalf("events=%d after Close, want 1", st.Events)
	}
	if err := svc.Ingest(ctx, []dataset.Event{testEvent(1, "")}); err != stream.ErrClosed {
		t.Fatalf("Ingest after Close = %v, want ErrClosed", err)
	}
	if err := svc.Flush(ctx); err != stream.ErrClosed {
		t.Fatalf("Flush after Close = %v, want ErrClosed", err)
	}
}

func TestServiceIngestContextCancel(t *testing.T) {
	cfg := testConfig(0)
	cfg.QueueDepth = 1
	svc := newTestService(t, cfg)
	// Saturate the queue so the next Ingest must block, then cancel.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	for i := 0; ; i++ {
		err := svc.Ingest(ctx, []dataset.Event{testEvent(i, "")})
		if err == context.DeadlineExceeded {
			return // blocked on a full queue and respected the context
		}
		if err != nil {
			t.Fatal(err)
		}
		if i > 100000 {
			t.Skip("queue never filled; worker faster than producer")
		}
	}
}

func TestConfigValidate(t *testing.T) {
	bad := stream.DefaultConfig()
	bad.EpochSize = -1
	if _, err := stream.New(bad, fakeEnricher{}); err == nil {
		t.Fatal("negative EpochSize must error")
	}
	if _, err := stream.New(stream.DefaultConfig(), nil); err == nil {
		t.Fatal("nil enricher must error")
	}
}
