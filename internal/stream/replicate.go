package stream

// Replica mode: a read-only service is the recovery path run remotely.
// A follower (internal/replica) bootstraps it from a shipped checkpoint
// (RestoreSnapshot) and then feeds the primary's WAL records, in seq
// order, through ApplyReplicated — the same applyBatch/applyFlush path
// local recovery replays — so a caught-up replica's state is
// byte-identical to a service that ingested the stream itself.

import (
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"repro/internal/admission"
	"repro/internal/wal"
)

// Replication roles surfaced in Stats.
const (
	RoleStandalone = "standalone"
	RolePrimary    = "primary"
	RoleReplica    = "replica"
)

// ErrReadOnly refuses writes on a replica; the HTTP layer maps it to a
// typed 403.
var ErrReadOnly = errors.New("stream: replica is read-only; write to the primary")

// ReplicationGapError reports a hole in the shipped record stream —
// the primary garbage-collected segments the follower still needed.
// The only recovery is a fresh bootstrap from the newest checkpoint.
type ReplicationGapError struct {
	Want, Got uint64
}

func (e *ReplicationGapError) Error() string {
	return fmt.Sprintf("stream: replication gap: want seq %d, got %d", e.Want, e.Got)
}

// ErrBadRecord marks a shipped WAL record the replica could not decode
// — corruption that slipped past frame CRCs (e.g. a publisher-side read
// fault). Unlike a gap it does not implicate the follower's position;
// the tail loop treats it like a gap and re-bootstraps from a fresh
// checkpoint rather than wedging on a poisoned stream.
var ErrBadRecord = errors.New("stream: bad replicated record")

// NewReplica constructs a read-only service that rebuilds state from a
// shipped checkpoint and WAL records instead of its own ingest queue.
// cfg must match the primary's analysis parameters (epoch size,
// thresholds, clustering config): the replica re-derives state by
// running the primary's records through the same apply path, so a
// parameter mismatch silently diverges the views — the same contract
// local recovery already imposes. Durability and admission are forced
// off: a replica's durability IS the primary's WAL, and its writes are
// refused outright.
func NewReplica(cfg Config, enricher Enricher) (*Service, error) {
	cfg.Durability = Durability{}
	cfg.Admission = admission.Config{}
	s, err := New(cfg, enricher)
	if err != nil {
		return nil, err
	}
	s.replica = true
	s.role = RoleReplica
	return s, nil
}

// RestoreSnapshot installs a primary checkpoint into a fresh replica —
// the bootstrap half of catch-up. The WAL suffix past the checkpoint's
// seq then arrives through ApplyReplicated.
func (s *Service) RestoreSnapshot(blob []byte) error {
	if !s.replica {
		return fmt.Errorf("stream: RestoreSnapshot on a non-replica service")
	}
	// decodeCheckpoint accepts sealed and unsealed blobs alike: the
	// publisher ships the unsealed payload, but a snapshot read straight
	// off a primary's disk still carries its CRC trailer.
	cp, err := decodeCheckpoint(blob)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.applySeq != 0 || s.version != 0 {
		return fmt.Errorf("stream: RestoreSnapshot on a non-fresh replica (applied seq %d)", s.applySeq)
	}
	if err := s.restoreCheckpoint(cp); err != nil {
		return err
	}
	s.version++
	return nil
}

// ApplyReplicated applies one shipped WAL record. Records must arrive
// in exactly the primary's sequence order; the follower's tail loop is
// the replica's single mutator, standing in for the apply worker. The
// seq is recorded before the record applies, mirroring local recovery,
// so counters that embed the sequence (retry backoff) match the
// primary's byte for byte. A *ReplicationGapError means segments were
// missed; the caller must re-bootstrap from a fresh checkpoint.
func (s *Service) ApplyReplicated(seq uint64, payload []byte) error {
	if !s.replica {
		return fmt.Errorf("stream: ApplyReplicated on a non-replica service")
	}
	var rec walRecord
	if err := json.Unmarshal(payload, &rec); err != nil {
		return fmt.Errorf("%w: record %d: %v", ErrBadRecord, seq, err)
	}
	if rec.Kind != walKindBatch && rec.Kind != walKindFlush {
		return fmt.Errorf("%w: record %d has unknown kind %q", ErrBadRecord, seq, rec.Kind)
	}
	s.mu.Lock()
	if want := s.applySeq + 1; seq != want {
		s.mu.Unlock()
		return &ReplicationGapError{Want: want, Got: seq}
	}
	s.applySeq = seq
	s.mu.Unlock()
	if rec.Kind == walKindFlush {
		s.applyFlush()
	} else {
		s.applyBatch(rec.Client, rec.Events, 0)
	}
	s.mu.Lock()
	s.replicated++
	s.mu.Unlock()
	return nil
}

// AppliedSeq reports the newest primary record reflected in the
// replica's state (the replication lag numerator).
func (s *Service) AppliedSeq() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.applySeq
}

// SetRole overrides the role label surfaced in Stats; the daemon marks
// a service "primary" when it publishes its WAL to followers.
func (s *Service) SetRole(role string) {
	s.mu.Lock()
	s.role = role
	s.mu.Unlock()
}

// ReplicationSource exposes the durability artifacts log shipping
// serves: the directory holding the checkpoint file and the WAL. The
// log is nil on a memory-only service — there is nothing to ship.
func (s *Service) ReplicationSource() (dir string, log *wal.Log) {
	if s.wal == nil {
		return "", nil
	}
	return s.cfg.Durability.Dir, s.wal
}

// Uptime reports time since construction (surfaced as uptime_ms).
func (s *Service) Uptime() time.Duration {
	return time.Since(s.start)
}
