package analysis

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/epm"
	"repro/internal/simtime"
)

// TemporalReport describes how the cluster population evolves over the
// study period: when clusters first appear, how long they live, and how
// much of each period's activity comes from clusters never seen before.
// The paper motivates exactly this view ("the evolution and the economy
// of the different threats"); the reproduction quantifies it per EPM
// dimension.
type TemporalReport struct {
	// Dimension labels the clustering analyzed.
	Dimension string
	// PeriodWeeks is the bucketing granularity.
	PeriodWeeks int
	// Periods has one entry per time bucket.
	Periods []PeriodStats
	// Lifetimes maps cluster ID to its active span in periods.
	Lifetimes map[int]ClusterLifetime
}

// PeriodStats summarizes one time bucket.
type PeriodStats struct {
	// Period is the bucket index.
	Period int
	// Events is the number of attacks in the bucket.
	Events int
	// ActiveClusters is the number of distinct clusters observed.
	ActiveClusters int
	// NewClusters is how many of those were never seen in earlier buckets.
	NewClusters int
}

// ClusterLifetime is the activity span of one cluster.
type ClusterLifetime struct {
	FirstPeriod int
	LastPeriod  int
	// ActivePeriods counts buckets with at least one event.
	ActivePeriods int
}

// Span returns the inclusive period span.
func (l ClusterLifetime) Span() int {
	return l.LastPeriod - l.FirstPeriod + 1
}

// Temporal computes the cluster-evolution report for one EPM clustering.
// periodWeeks <= 0 selects 4-week (≈monthly) buckets.
func Temporal(ds *dataset.Dataset, c *epm.Clustering, periodWeeks int) (*TemporalReport, error) {
	if ds == nil || c == nil {
		return nil, fmt.Errorf("analysis: Temporal needs dataset and clustering")
	}
	if periodWeeks <= 0 {
		periodWeeks = 4
	}
	nPeriods := (simtime.WeekCount() + periodWeeks - 1) / periodWeeks
	rep := &TemporalReport{
		Dimension:   c.Schema.Dimension,
		PeriodWeeks: periodWeeks,
		Periods:     make([]PeriodStats, nPeriods),
		Lifetimes:   make(map[int]ClusterLifetime),
	}
	for i := range rep.Periods {
		rep.Periods[i].Period = i
	}

	activeIn := make([]map[int]bool, nPeriods)
	for i := range activeIn {
		activeIn[i] = make(map[int]bool)
	}
	for _, e := range ds.Events() {
		cl := c.ClusterOf(e.ID)
		if cl < 0 {
			continue
		}
		w := simtime.WeekIndex(e.Time)
		if w < 0 {
			continue
		}
		p := w / periodWeeks
		if p >= nPeriods {
			continue
		}
		rep.Periods[p].Events++
		activeIn[p][cl] = true
	}

	seen := make(map[int]bool)
	for p := range rep.Periods {
		rep.Periods[p].ActiveClusters = len(activeIn[p])
		for cl := range activeIn[p] {
			if !seen[cl] {
				seen[cl] = true
				rep.Periods[p].NewClusters++
			}
			lt, ok := rep.Lifetimes[cl]
			if !ok {
				lt = ClusterLifetime{FirstPeriod: p, LastPeriod: p}
			}
			if p < lt.FirstPeriod {
				lt.FirstPeriod = p
			}
			if p > lt.LastPeriod {
				lt.LastPeriod = p
			}
			lt.ActivePeriods++
			rep.Lifetimes[cl] = lt
		}
	}
	return rep, nil
}

// ChurnRate returns the fraction of active clusters per period that are
// new, averaged over all periods after the first — the paper's "newly
// generated samples per day" concern expressed at cluster granularity.
func (r *TemporalReport) ChurnRate() float64 {
	var sum float64
	n := 0
	for _, p := range r.Periods[1:] {
		if p.ActiveClusters == 0 {
			continue
		}
		sum += float64(p.NewClusters) / float64(p.ActiveClusters)
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// LongLived returns the cluster IDs active in at least minPeriods buckets,
// sorted by span descending then ID.
func (r *TemporalReport) LongLived(minPeriods int) []int {
	var out []int
	for cl, lt := range r.Lifetimes {
		if lt.ActivePeriods >= minPeriods {
			out = append(out, cl)
		}
	}
	sortByLifetime(out, r.Lifetimes)
	return out
}

func sortByLifetime(ids []int, lifetimes map[int]ClusterLifetime) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0; j-- {
			a, b := lifetimes[ids[j-1]], lifetimes[ids[j]]
			if b.Span() > a.Span() || (b.Span() == a.Span() && ids[j] < ids[j-1]) {
				ids[j-1], ids[j] = ids[j], ids[j-1]
			} else {
				break
			}
		}
	}
}
