package analysis

import (
	"testing"
)

func TestEstimatePopulationsBasics(t *testing.T) {
	s := buildScenario(t, 12)
	ests, err := EstimatePopulations(s.ds, s.mClu, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(ests) == 0 {
		t.Fatal("no estimates for clusters with >= 20 events")
	}
	for _, e := range ests {
		if e.Events < 20 {
			t.Errorf("cluster M%d below minEvents: %d", e.MCluster, e.Events)
		}
		if e.Observed < e.FirstHalf || e.Observed < e.SecondHalf {
			t.Errorf("M%d: observed %d below half counts %d/%d", e.MCluster, e.Observed, e.FirstHalf, e.SecondHalf)
		}
		if e.Recaptured > e.FirstHalf || e.Recaptured > e.SecondHalf {
			t.Errorf("M%d: recaptured %d exceeds half counts", e.MCluster, e.Recaptured)
		}
		if e.Usable() {
			// The estimate can never fall below what was directly observed
			// minus rounding slack.
			if e.Estimate < float64(e.Observed)-1.5 {
				t.Errorf("M%d: estimate %.1f below observed %d", e.MCluster, e.Estimate, e.Observed)
			}
		}
	}
	// Sorted by event count.
	for i := 1; i < len(ests); i++ {
		if ests[i].Events > ests[i-1].Events {
			t.Error("estimates not sorted by event count")
		}
	}
}

func TestEstimateRecoversTruePopulationScale(t *testing.T) {
	// For worm clusters the ground-truth population is known: the
	// estimator must land within a small factor for clusters with enough
	// recaptures.
	s := buildScenario(t, 12)
	ests, err := EstimatePopulations(s.ds, s.mClu, 25)
	if err != nil {
		t.Fatal(err)
	}

	// Map M-cluster -> ground-truth population via a member sample.
	truthPop := map[int]int{}
	for _, smp := range s.ds.Samples() {
		v := s.landscape.Variant(smp.TruthVariant)
		if v == nil {
			continue
		}
		m, ok := s.cm.SampleM[smp.MD5]
		if !ok {
			continue
		}
		if _, seen := truthPop[m]; !seen {
			truthPop[m] = len(v.Population.Hosts)
		}
	}

	checked := 0
	for _, e := range ests {
		truth, ok := truthPop[e.MCluster]
		if !ok || !e.Usable() || e.Recaptured < 5 {
			continue
		}
		checked++
		ratio := e.Estimate / float64(truth)
		if ratio < 0.4 || ratio > 2.5 {
			t.Errorf("M%d: estimate %.0f vs true population %d (ratio %.2f)",
				e.MCluster, e.Estimate, truth, ratio)
		}
		// The estimate must beat the naive observed count as a population
		// proxy when coverage is partial.
		if e.Observed < truth && e.Estimate < float64(e.Observed) {
			t.Errorf("M%d: estimate below observed under partial coverage", e.MCluster)
		}
	}
	if checked == 0 {
		t.Skip("no cluster with enough recaptures in this seed")
	}
}

func TestEstimatePopulationsErrors(t *testing.T) {
	if _, err := EstimatePopulations(nil, nil, 5); err == nil {
		t.Error("nil inputs must error")
	}
}
