package analysis

import (
	"strings"
	"testing"
	"time"

	"repro/internal/simtime"
)

func TestCoordinationBurstGrouping(t *testing.T) {
	s := buildScenario(t, 13)
	// Pick any M-cluster with events and check structural invariants.
	for _, c := range s.mClu.Clusters[:3] {
		rep, err := Coordination(s.ds, s.mClu, c.ID)
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		for i, b := range rep.Bursts {
			total += b.Events
			if b.End.Before(b.Start) {
				t.Errorf("M%d burst %d: end before start", c.ID, i)
			}
			if i > 0 && b.Start.Before(rep.Bursts[i-1].Start) {
				t.Errorf("M%d: bursts out of order", c.ID)
			}
		}
		if total != c.Size() {
			t.Errorf("M%d: burst events sum to %d, cluster size %d", c.ID, total, c.Size())
		}
	}
}

func TestCoordinationDetectsBotPattern(t *testing.T) {
	s := buildScenario(t, 13)
	rep, err := MostCoordinated(s.ds, s.mClu, 15, 200)
	if err != nil {
		t.Fatal(err)
	}
	if rep == nil {
		t.Skip("no coordinated cluster in this seed")
	}
	if !rep.Coordinated {
		t.Fatal("MostCoordinated returned an uncoordinated report")
	}
	if rep.Locations < 2 || len(rep.Bursts) < 3 {
		t.Errorf("weak signature: %d locations, %d bursts", rep.Locations, len(rep.Bursts))
	}
	listing := rep.Listing()
	if !strings.Contains(listing, "observed hitting network location") {
		t.Errorf("listing style wrong:\n%s", listing)
	}
	// The listing must mention at least two distinct location labels.
	labels := map[string]bool{}
	for _, line := range strings.Split(listing, "\n") {
		if i := strings.Index(line, "network location "); i >= 0 {
			rest := line[i+len("network location "):]
			if sp := strings.IndexByte(rest, ' '); sp > 0 {
				labels[rest[:sp]] = true
			}
		}
	}
	if len(labels) < 2 {
		t.Errorf("listing names %d locations, want >= 2:\n%s", len(labels), listing)
	}
}

func TestCoordinationErrors(t *testing.T) {
	s := buildScenario(t, 13)
	if _, err := Coordination(nil, nil, 0); err == nil {
		t.Error("nil inputs must error")
	}
	if _, err := Coordination(s.ds, s.mClu, -1); err == nil {
		t.Error("negative index must error")
	}
	if _, err := Coordination(s.ds, s.mClu, 1<<20); err == nil {
		t.Error("out-of-range index must error")
	}
	if _, err := MostCoordinated(nil, nil, 1, 0); err == nil {
		t.Error("nil inputs must error")
	}
}

func TestBurstString(t *testing.T) {
	at := time.Date(2008, time.July, 15, 10, 0, 0, 0, time.UTC)
	b := Burst{Location: 0, Start: at, End: at.Add(24 * time.Hour), Events: 3}
	got := b.String()
	if !strings.Contains(got, "15/7 - 16/7") || !strings.Contains(got, "location A") {
		t.Errorf("String = %q", got)
	}
	single := Burst{Location: 1, Start: at, End: at, Events: 1}
	if !strings.HasPrefix(single.String(), "15/7: ") {
		t.Errorf("single-day burst = %q", single.String())
	}
	far := Burst{Location: 30, Start: simtime.StudyStart, End: simtime.StudyStart}
	if !strings.Contains(far.String(), "#30") {
		t.Errorf("high location index = %q", far.String())
	}
}
