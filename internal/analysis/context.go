package analysis

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/bcluster"
	"repro/internal/behavior"
	"repro/internal/dataset"
	"repro/internal/epm"
	"repro/internal/netmodel"
	"repro/internal/simtime"
)

// MContext is the propagation context of one M-cluster inside a B-cluster
// (one column of Figure 5).
type MContext struct {
	MCluster int
	// Samples and Events count the cluster's members and their attacks.
	Samples int
	Events  int
	// Attackers is the number of distinct attacking hosts.
	Attackers int
	// Slash24s is the number of distinct attacker /24 networks: low values
	// indicate a localized, bot-like population.
	Slash24s int
	// IPHistogram buckets the attacker addresses over the IP space
	// (Figure 5 top).
	IPHistogram []int
	// ActiveWeeks is the number of week buckets with at least one event
	// (Figure 5 middle).
	ActiveWeeks int
	// SpanWeeks is the distance between first and last active week,
	// inclusive.
	SpanWeeks int
	// Timeline is the per-week event count over the study (Figure 5
	// bottom).
	Timeline []int
	// Locations is the set of deployment locations hit, in first-hit
	// order; bursts hitting different locations at different times are the
	// paper's evidence of coordinated behaviour.
	Locations []int
}

// Bursty reports whether the activity looks coordinated: few active weeks
// relative to the span, i.e. the timeline is gap-dominated.
func (mc MContext) Bursty() bool {
	return mc.SpanWeeks >= 4 && float64(mc.ActiveWeeks) <= 0.5*float64(mc.SpanWeeks)
}

// ContextReport is the Figure 5 analysis for one B-cluster.
type ContextReport struct {
	BCluster int
	// BSize is the B-cluster's sample count.
	BSize int
	PerM  []MContext
}

// WidespreadFraction returns the fraction of per-M populations whose
// attacker /24 spread is at least half their attacker count — a proxy for
// "spread over most of the IP space".
func (cr *ContextReport) WidespreadFraction() float64 {
	if len(cr.PerM) == 0 {
		return 0
	}
	n := 0
	for _, mc := range cr.PerM {
		if mc.Attackers > 0 && float64(mc.Slash24s) >= 0.5*float64(mc.Attackers) {
			n++
		}
	}
	return float64(n) / float64(len(cr.PerM))
}

// PropagationContext computes the Figure 5 view: the propagation context
// of every M-cluster associated with the given B-cluster.
func PropagationContext(ds *dataset.Dataset, mClu *epm.Clustering, b *bcluster.Result, cm *CrossMap, bIdx int) (*ContextReport, error) {
	if ds == nil || mClu == nil || b == nil || cm == nil {
		return nil, fmt.Errorf("analysis: PropagationContext needs dataset and clusterings")
	}
	if bIdx < 0 || bIdx >= len(b.Clusters) {
		return nil, fmt.Errorf("analysis: B-cluster %d out of range", bIdx)
	}
	rep := &ContextReport{BCluster: bIdx, BSize: b.Clusters[bIdx].Size()}

	// Group the B-cluster's samples by M-cluster.
	samplesByM := make(map[int][]string)
	for _, md5 := range b.Clusters[bIdx].Members {
		m, ok := cm.SampleM[md5]
		if !ok {
			continue
		}
		samplesByM[m] = append(samplesByM[m], md5)
	}

	weeks := simtime.WeekCount()
	for _, m := range sortedIntKeys(samplesByM) {
		mc := MContext{MCluster: m, Timeline: make([]int, weeks)}
		attackers := make(map[netmodel.IP]bool)
		locSeen := make(map[int]bool)
		for _, md5 := range samplesByM[m] {
			mc.Samples++
			for _, e := range ds.EventsOfSample(md5) {
				mc.Events++
				if ip, err := netmodel.ParseIP(e.Attacker); err == nil {
					attackers[ip] = true
				}
				if w := simtime.WeekIndex(e.Time); w >= 0 && w < weeks {
					mc.Timeline[w]++
				}
				if !locSeen[e.SensorLocation] {
					locSeen[e.SensorLocation] = true
					mc.Locations = append(mc.Locations, e.SensorLocation)
				}
			}
		}
		ips := make([]netmodel.IP, 0, len(attackers))
		for ip := range attackers {
			ips = append(ips, ip)
		}
		sort.Slice(ips, func(a, b int) bool { return ips[a] < ips[b] })
		mc.Attackers = len(ips)
		mc.Slash24s = netmodel.Population{Hosts: ips}.Slash24Spread()
		mc.IPHistogram = netmodel.IPSpaceHistogram(ips, 16)

		first, last := -1, -1
		for w, n := range mc.Timeline {
			if n == 0 {
				continue
			}
			mc.ActiveWeeks++
			if first < 0 {
				first = w
			}
			last = w
		}
		if first >= 0 {
			mc.SpanWeeks = last - first + 1
		}
		rep.PerM = append(rep.PerM, mc)
	}
	// Largest M-clusters first, for display parity with the figure.
	sort.Slice(rep.PerM, func(i, j int) bool {
		if rep.PerM[i].Events != rep.PerM[j].Events {
			return rep.PerM[i].Events > rep.PerM[j].Events
		}
		return rep.PerM[i].MCluster < rep.PerM[j].MCluster
	})
	return rep, nil
}

func sortedIntKeys[V any](m map[int]V) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// IRCRow is one row of Table 2: an IRC server/room and the M-clusters
// whose samples received commands through it.
type IRCRow struct {
	Server    string
	Port      int
	Room      string
	MClusters []int
}

// IRCCorrelation recovers Table 2 from the behavioral profiles: every
// executable sample's profile is scanned for IRC C&C features, which are
// then grouped by (server, room) and mapped to the samples' M-clusters.
func IRCCorrelation(ds *dataset.Dataset, cm *CrossMap) ([]IRCRow, error) {
	if ds == nil || cm == nil {
		return nil, fmt.Errorf("analysis: IRCCorrelation needs dataset and cross map")
	}
	type key struct {
		server string
		port   int
		room   string
	}
	rows := make(map[key]map[int]bool)
	for _, s := range ds.Samples() {
		m, ok := cm.SampleM[s.MD5]
		if !ok {
			continue
		}
		for _, f := range s.Profile {
			server, port, room, ok := behavior.ParseIRCFeature(f)
			if !ok {
				continue
			}
			k := key{server, port, room}
			if rows[k] == nil {
				rows[k] = make(map[int]bool)
			}
			rows[k][m] = true
		}
	}
	out := make([]IRCRow, 0, len(rows))
	for k, ms := range rows {
		row := IRCRow{Server: k.server, Port: k.port, Room: k.room}
		row.MClusters = sortedIntKeys(ms)
		out = append(out, row)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Server != out[j].Server {
			return out[i].Server < out[j].Server
		}
		return out[i].Room < out[j].Room
	})
	return out, nil
}

// SharedSubnets groups the servers of the IRC rows by /24 prefix,
// returning prefixes hosting at least two distinct servers — the paper's
// evidence that one organization maintains multiple botnets.
func SharedSubnets(rows []IRCRow) map[string][]string {
	byNet := make(map[string]map[string]bool)
	for _, r := range rows {
		ip, err := netmodel.ParseIP(r.Server)
		if err != nil {
			continue
		}
		net := ip.Slash24().String()
		if byNet[net] == nil {
			byNet[net] = make(map[string]bool)
		}
		byNet[net][r.Server] = true
	}
	out := make(map[string][]string)
	for net, servers := range byNet {
		if len(servers) < 2 {
			continue
		}
		list := make([]string, 0, len(servers))
		for s := range servers {
			list = append(list, s)
		}
		sort.Strings(list)
		out[net] = list
	}
	return out
}

// RecurringRooms returns room names used on more than one server.
func RecurringRooms(rows []IRCRow) map[string][]string {
	byRoom := make(map[string]map[string]bool)
	for _, r := range rows {
		if byRoom[r.Room] == nil {
			byRoom[r.Room] = make(map[string]bool)
		}
		byRoom[r.Room][r.Server] = true
	}
	out := make(map[string][]string)
	for room, servers := range byRoom {
		if len(servers) < 2 {
			continue
		}
		list := make([]string, 0, len(servers))
		for s := range servers {
			list = append(list, s)
		}
		sort.Strings(list)
		out[room] = list
	}
	return out
}

// TimelineString renders a per-week event count as a compact activity
// strip ('.' = idle, digit-ish glyphs for intensity), used by the report
// rendering of Figure 5.
func TimelineString(timeline []int) string {
	var sb strings.Builder
	sb.Grow(len(timeline))
	for _, n := range timeline {
		switch {
		case n == 0:
			sb.WriteByte('.')
		case n < 3:
			sb.WriteByte('+')
		case n < 10:
			sb.WriteByte('*')
		default:
			sb.WriteByte('#')
		}
	}
	return sb.String()
}
