package analysis

import (
	"strings"
	"testing"

	"repro/internal/bcluster"
	"repro/internal/dataset"
	"repro/internal/enrich"
	"repro/internal/epm"
	"repro/internal/malgen"
	"repro/internal/sgnet"
	"repro/internal/simrng"
)

// scenario is a fully simulated, enriched, and clustered small landscape
// shared by the analysis tests.
type scenario struct {
	landscape *malgen.Landscape
	ds        *dataset.Dataset
	eClu      *epm.Clustering
	pClu      *epm.Clustering
	mClu      *epm.Clustering
	b         *bcluster.Result
	cm        *CrossMap
}

func buildScenario(t *testing.T, seed uint64) *scenario {
	t.Helper()
	rng := simrng.New(seed)
	l, err := malgen.Generate(malgen.SmallConfig(), rng.Child("landscape"))
	if err != nil {
		t.Fatal(err)
	}
	sim, err := sgnet.Simulate(l, sgnet.DefaultConfig(), rng.Child("sgnet"))
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := enrich.New(l, enrich.DefaultConfig(), rng.Child("enrich"))
	if err != nil {
		t.Fatal(err)
	}
	eres, err := pipe.Enrich(sim.Dataset)
	if err != nil {
		t.Fatal(err)
	}
	th := epm.DefaultThresholds()
	eClu, err := epm.Run(dataset.EpsilonSchema, sim.Dataset.EpsilonInstances(), th)
	if err != nil {
		t.Fatal(err)
	}
	pClu, err := epm.Run(dataset.PiSchema, sim.Dataset.PiInstances(), th)
	if err != nil {
		t.Fatal(err)
	}
	mClu, err := epm.Run(dataset.MuSchema, sim.Dataset.MuInstances(), th)
	if err != nil {
		t.Fatal(err)
	}
	cm, err := BuildCrossMap(sim.Dataset, mClu, eres.BClusters)
	if err != nil {
		t.Fatal(err)
	}
	return &scenario{
		landscape: l,
		ds:        sim.Dataset,
		eClu:      eClu,
		pClu:      pClu,
		mClu:      mClu,
		b:         eres.BClusters,
		cm:        cm,
	}
}

func TestBuildCrossMapValidation(t *testing.T) {
	if _, err := BuildCrossMap(nil, nil, nil); err == nil {
		t.Error("nil inputs must error")
	}
}

func TestCrossMapConsistency(t *testing.T) {
	s := buildScenario(t, 1)
	if len(s.cm.SampleM) != s.ds.SampleCount() {
		t.Errorf("SampleM covers %d of %d samples", len(s.cm.SampleM), s.ds.SampleCount())
	}
	if len(s.cm.SampleB) != s.ds.ExecutableSampleCount() {
		t.Errorf("SampleB covers %d of %d executable samples", len(s.cm.SampleB), s.ds.ExecutableSampleCount())
	}
	// MtoB totals must equal executable sample count.
	total := 0
	for _, bs := range s.cm.MtoB {
		for _, n := range bs {
			total += n
		}
	}
	if total != len(s.cm.SampleB) {
		t.Errorf("MtoB total = %d, want %d", total, len(s.cm.SampleB))
	}
	// BtoM must be the transpose of MtoB.
	for m, bs := range s.cm.MtoB {
		for b, n := range bs {
			if s.cm.BtoM[b][m] != n {
				t.Fatalf("transpose mismatch at M%d/B%d", m, b)
			}
		}
	}
}

func TestWormMtoBCollapse(t *testing.T) {
	// The paper's headline relation: many M-clusters map onto few
	// B-clusters for the polymorphic worm.
	s := buildScenario(t, 2)
	worm := s.landscape.Families[0]

	wormM := map[int]bool{}
	wormB := map[int]bool{}
	for _, smp := range s.ds.Samples() {
		if smp.TruthFamily != worm.Name || !smp.Executable {
			continue
		}
		wormM[s.cm.SampleM[smp.MD5]] = true
		if b, ok := s.cm.SampleB[smp.MD5]; ok {
			if s.b.Clusters[b].Size() > 1 {
				wormB[b] = true
			}
		}
	}
	if len(wormM) < 3 {
		t.Fatalf("worm spans only %d M-clusters", len(wormM))
	}
	if len(wormB) == 0 || len(wormB) > 3 {
		t.Errorf("worm non-singleton B-clusters = %d, want 1-3 (two generations)", len(wormB))
	}
	if len(wormM) <= len(wormB) {
		t.Errorf("M-clusters (%d) must exceed B-clusters (%d) for the worm", len(wormM), len(wormB))
	}
}

func TestRelationGraph(t *testing.T) {
	s := buildScenario(t, 3)
	g, err := BuildRelationGraph(s.ds, s.eClu, s.pClu, s.mClu, s.b, s.cm, 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.ENodes) == 0 || len(g.PNodes) == 0 || len(g.MNodes) == 0 {
		t.Fatalf("empty layers: E=%d P=%d M=%d B=%d", len(g.ENodes), len(g.PNodes), len(g.MNodes), len(g.BNodes))
	}
	// Figure 3 shape: few E/P combos relative to M-cluster count.
	if EdgeCount(g.EP) > len(g.MNodes) {
		t.Errorf("E/P combinations (%d) should be low relative to M-clusters (%d)",
			EdgeCount(g.EP), len(g.MNodes))
	}
	// Every edge endpoint must be a surviving node.
	inE := toSet(g.ENodes)
	inP := toSet(g.PNodes)
	for e, ps := range g.EP {
		if !inE[e] {
			t.Fatalf("EP edge from filtered-out E%d", e)
		}
		for p := range ps {
			if !inP[p] {
				t.Fatalf("EP edge to filtered-out P%d", p)
			}
		}
	}
	// Filtered B-cluster count must not exceed filtered M-cluster count
	// (the paper's third observation).
	if len(g.BNodes) > len(g.MNodes) {
		t.Errorf("filtered B-clusters (%d) exceed filtered M-clusters (%d)", len(g.BNodes), len(g.MNodes))
	}
}

func toSet(xs []int) map[int]bool {
	m := make(map[int]bool, len(xs))
	for _, x := range xs {
		m[x] = true
	}
	return m
}

func TestRelationGraphMinSizeDefaultsToOne(t *testing.T) {
	s := buildScenario(t, 3)
	g, err := BuildRelationGraph(s.ds, s.eClu, s.pClu, s.mClu, s.b, s.cm, 0)
	if err != nil {
		t.Fatal(err)
	}
	if g.MinSize != 1 {
		t.Errorf("MinSize = %d", g.MinSize)
	}
	if len(g.MNodes) != len(s.mClu.Clusters) {
		t.Errorf("unfiltered graph must keep all M-clusters")
	}
}

func TestSize1Anomalies(t *testing.T) {
	s := buildScenario(t, 4)
	rep, err := FindSize1Anomalies(s.ds, s.eClu, s.pClu, s.b, s.cm)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalB != len(s.b.Clusters) {
		t.Errorf("TotalB = %d", rep.TotalB)
	}
	if rep.Size1B == 0 {
		t.Fatal("no singleton B-clusters found")
	}
	if len(rep.Anomalous) == 0 {
		t.Fatal("no anomalies detected; the fragility artifact is missing")
	}
	if rep.Size1B < len(rep.Anomalous)+rep.OneToOne {
		t.Errorf("accounting: %d singletons < %d anomalous + %d one-to-one",
			rep.Size1B, len(rep.Anomalous), rep.OneToOne)
	}
	// Figure 4 shape: the anomalous population must be dominated by the
	// worm's AV family (Rahack) and by a single E/P combination.
	top := TopCounts(rep.AVNames, 1)
	if len(top) == 0 || !strings.HasPrefix(top[0].K, "W32.Rahack") {
		t.Errorf("dominant AV name = %+v, want W32.Rahack.*", top)
	}
	epTop := TopCounts(rep.EPCombos, 1)
	if len(epTop) == 0 {
		t.Fatal("no EP combos")
	}
	if frac := float64(epTop[0].N) / float64(len(rep.Anomalous)); frac < 0.5 {
		t.Errorf("dominant EP combo covers only %.2f of anomalies", frac)
	}
	// Every anomaly must reference a real dominant cluster.
	for _, a := range rep.Anomalous {
		if a.DominantB < 0 || a.DominantBSize < 2 || a.MClusterSize < 2 {
			t.Errorf("weak anomaly evidence: %+v", a)
		}
	}
}

func TestPropagationContext(t *testing.T) {
	s := buildScenario(t, 5)
	multi := s.cm.MultiMBClusters(s.b)
	if len(multi) == 0 {
		t.Fatal("no B-cluster with multiple M-clusters")
	}
	rep, err := PropagationContext(s.ds, s.mClu, s.b, s.cm, multi[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.PerM) < 2 {
		t.Fatalf("PerM = %d, want >= 2", len(rep.PerM))
	}
	for _, mc := range rep.PerM {
		if mc.Events == 0 || mc.Samples == 0 {
			t.Errorf("empty M context: %+v", mc)
		}
		if mc.Attackers == 0 {
			t.Errorf("M%d has no attackers", mc.MCluster)
		}
		sum := 0
		for _, n := range mc.Timeline {
			sum += n
		}
		if sum != mc.Events {
			t.Errorf("M%d timeline sums to %d, events = %d", mc.MCluster, sum, mc.Events)
		}
		if mc.ActiveWeeks > mc.SpanWeeks {
			t.Errorf("M%d active weeks %d > span %d", mc.MCluster, mc.ActiveWeeks, mc.SpanWeeks)
		}
		if len(mc.IPHistogram) != 16 {
			t.Errorf("M%d histogram buckets = %d", mc.MCluster, len(mc.IPHistogram))
		}
	}
	// Sorted by event count, largest first.
	for i := 1; i < len(rep.PerM); i++ {
		if rep.PerM[i].Events > rep.PerM[i-1].Events {
			t.Error("PerM not sorted by events")
		}
	}
}

func TestPropagationContextWormVsBot(t *testing.T) {
	s := buildScenario(t, 6)

	// Find the worm's biggest B-cluster and a bot B-cluster through truth.
	worm := s.landscape.Families[0]
	var wormB, botB = -1, -1
	for _, smp := range s.ds.Samples() {
		if !smp.Executable {
			continue
		}
		b, ok := s.cm.SampleB[smp.MD5]
		if !ok || s.b.Clusters[b].Size() < 2 {
			continue
		}
		if smp.TruthFamily == worm.Name && wormB < 0 {
			wormB = b
		}
		if strings.HasPrefix(smp.TruthFamily, "bot") && botB < 0 {
			botB = b
		}
	}
	if wormB < 0 || botB < 0 {
		t.Skip("missing worm or bot multi-sample B-cluster in this seed")
	}
	wormRep, err := PropagationContext(s.ds, s.mClu, s.b, s.cm, wormB)
	if err != nil {
		t.Fatal(err)
	}
	botRep, err := PropagationContext(s.ds, s.mClu, s.b, s.cm, botB)
	if err != nil {
		t.Fatal(err)
	}
	// Figure 5 contrast: worm populations widespread, bot populations
	// localized.
	if wf := wormRep.WidespreadFraction(); wf < 0.5 {
		t.Errorf("worm widespread fraction = %.2f", wf)
	}
	if bf := botRep.WidespreadFraction(); bf > 0.5 {
		t.Errorf("bot widespread fraction = %.2f, want localized", bf)
	}
}

func TestIRCCorrelation(t *testing.T) {
	s := buildScenario(t, 7)
	rows, err := IRCCorrelation(s.ds, s.cm)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no IRC rows recovered")
	}
	for _, r := range rows {
		if r.Server == "" || r.Room == "" || len(r.MClusters) == 0 {
			t.Errorf("incomplete row %+v", r)
		}
	}
	// Ground truth check: every recovered (server, room) must exist in the
	// landscape's channel truth.
	truth := map[string]bool{}
	for _, ch := range s.landscape.Channels {
		truth[ch.Server.String()+"/"+ch.Room] = true
	}
	for _, r := range rows {
		if !truth[r.Server+"/"+r.Room] {
			t.Errorf("recovered channel %s/%s not in ground truth", r.Server, r.Room)
		}
	}
}

func TestSharedSubnetsAndRecurringRooms(t *testing.T) {
	rows := []IRCRow{
		{Server: "67.43.232.34", Room: "#kok8", MClusters: []int{1}},
		{Server: "67.43.232.35", Room: "#kok6", MClusters: []int{2}},
		{Server: "67.43.232.36", Room: "#kok6", MClusters: []int{3}},
		{Server: "72.10.172.211", Room: "#las6", MClusters: []int{4}},
	}
	nets := SharedSubnets(rows)
	if len(nets) != 1 {
		t.Fatalf("shared subnets = %v", nets)
	}
	if got := nets["67.43.232.0/24"]; len(got) != 3 {
		t.Errorf("67.43.232.0/24 servers = %v", got)
	}
	rooms := RecurringRooms(rows)
	if got := rooms["#kok6"]; len(got) != 2 {
		t.Errorf("#kok6 servers = %v", got)
	}
	if _, ok := rooms["#las6"]; ok {
		t.Error("#las6 used on one server must not recur")
	}
}

func TestTimelineString(t *testing.T) {
	got := TimelineString([]int{0, 1, 5, 20})
	if got != ".+*#" {
		t.Errorf("TimelineString = %q", got)
	}
}

func TestTopCounts(t *testing.T) {
	hist := map[string]int{"a": 3, "b": 5, "c": 3}
	top := TopCounts(hist, 2)
	if len(top) != 2 || top[0].K != "b" || top[1].K != "a" {
		t.Errorf("TopCounts = %+v", top)
	}
}

func TestBurstyClassifier(t *testing.T) {
	bursty := MContext{ActiveWeeks: 3, SpanWeeks: 12}
	if !bursty.Bursty() {
		t.Error("3 active of 12 weeks must be bursty")
	}
	steady := MContext{ActiveWeeks: 11, SpanWeeks: 12}
	if steady.Bursty() {
		t.Error("11 active of 12 weeks must not be bursty")
	}
	short := MContext{ActiveWeeks: 1, SpanWeeks: 1}
	if short.Bursty() {
		t.Error("single-week activity must not be bursty")
	}
}

func TestPropagationContextErrors(t *testing.T) {
	s := buildScenario(t, 8)
	if _, err := PropagationContext(nil, nil, nil, nil, 0); err == nil {
		t.Error("nil inputs must error")
	}
	if _, err := PropagationContext(s.ds, s.mClu, s.b, s.cm, -1); err == nil {
		t.Error("out-of-range cluster must error")
	}
	if _, err := PropagationContext(s.ds, s.mClu, s.b, s.cm, len(s.b.Clusters)); err == nil {
		t.Error("out-of-range cluster must error")
	}
}
