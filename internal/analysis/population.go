package analysis

import (
	"fmt"
	"sort"

	"repro/internal/dataset"
	"repro/internal/epm"
	"repro/internal/simtime"
)

// PopulationEstimate is a capture-recapture estimate of the infected
// population behind one M-cluster.
//
// The paper observes that "the different population sizes, combined with
// the small coverage of the SGNET deployment (150 IPs), makes the smaller
// groups account for only a few hits" — i.e. observed attacker counts
// underestimate true populations. Treating the two halves of the study as
// two capture occasions, the Chapman estimator
//
//	N̂ = (n1+1)(n2+1)/(m+1) − 1
//
// (n1, n2 attackers per half, m recaptured in both) recovers the
// population size a honeypot deployment never observes directly.
type PopulationEstimate struct {
	MCluster int
	// Events is the cluster's attack count.
	Events int
	// Observed is the number of distinct attackers seen overall.
	Observed int
	// FirstHalf/SecondHalf/Recaptured are the capture-occasion counts.
	FirstHalf  int
	SecondHalf int
	Recaptured int
	// Estimate is the Chapman population estimate; zero when a half has
	// no captures (estimation impossible).
	Estimate float64
}

// Usable reports whether both capture occasions saw attackers.
func (p PopulationEstimate) Usable() bool {
	return p.FirstHalf > 0 && p.SecondHalf > 0
}

// EstimatePopulations computes per-M-cluster population estimates for
// clusters with at least minEvents attacks.
func EstimatePopulations(ds *dataset.Dataset, mClu *epm.Clustering, minEvents int) ([]PopulationEstimate, error) {
	if ds == nil || mClu == nil {
		return nil, fmt.Errorf("analysis: EstimatePopulations needs dataset and clustering")
	}
	if minEvents < 1 {
		minEvents = 1
	}
	mid := simtime.StudyStart.Add(simtime.StudyEnd.Sub(simtime.StudyStart) / 2)

	type caps struct {
		events int
		first  map[string]bool
		second map[string]bool
	}
	byCluster := make(map[int]*caps)
	for _, e := range ds.Events() {
		m := mClu.ClusterOf(e.ID)
		if m < 0 {
			continue
		}
		c, ok := byCluster[m]
		if !ok {
			c = &caps{first: make(map[string]bool), second: make(map[string]bool)}
			byCluster[m] = c
		}
		c.events++
		if e.Time.Before(mid) {
			c.first[e.Attacker] = true
		} else {
			c.second[e.Attacker] = true
		}
	}

	var out []PopulationEstimate
	for m, c := range byCluster {
		if c.events < minEvents {
			continue
		}
		est := PopulationEstimate{
			MCluster:   m,
			Events:     c.events,
			FirstHalf:  len(c.first),
			SecondHalf: len(c.second),
		}
		all := make(map[string]bool, len(c.first)+len(c.second))
		for a := range c.first {
			all[a] = true
			if c.second[a] {
				est.Recaptured++
			}
		}
		for a := range c.second {
			all[a] = true
		}
		est.Observed = len(all)
		if est.Usable() {
			est.Estimate = float64(est.FirstHalf+1)*float64(est.SecondHalf+1)/float64(est.Recaptured+1) - 1
		}
		out = append(out, est)
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Events != out[b].Events {
			return out[a].Events > out[b].Events
		}
		return out[a].MCluster < out[b].MCluster
	})
	return out, nil
}
