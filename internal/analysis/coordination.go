package analysis

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/dataset"
	"repro/internal/epm"
	"repro/internal/simtime"
)

// Burst is one contiguous activity window of an M-cluster at one
// deployment location.
type Burst struct {
	Location int
	Start    time.Time
	End      time.Time
	Events   int
}

// String renders the burst in the paper's §4.3 listing style
// ("15/7 - 16/7: observed hitting network location A").
func (b Burst) String() string {
	from, to := simtime.ShortDate(b.Start), simtime.ShortDate(b.End)
	when := from
	if to != from {
		when = from + " - " + to
	}
	return fmt.Sprintf("%s: observed hitting network location %s (%d events)",
		when, locationName(b.Location), b.Events)
}

// locationName renders a location index as the paper's A/B/C labels,
// falling back to numbers beyond Z.
func locationName(loc int) string {
	if loc >= 0 && loc < 26 {
		return string(rune('A' + loc))
	}
	return fmt.Sprintf("#%d", loc)
}

// CoordinationReport reconstructs the temporal evolution of one M-cluster
// across deployment locations — the evidence trail the paper uses to
// infer Command & Control coordination.
type CoordinationReport struct {
	MCluster int
	// Bursts lists the per-location activity windows in time order.
	Bursts []Burst
	// Locations is the number of distinct locations hit.
	Locations int
	// Coordinated reports the §4.3 signature: multiple bursts alternating
	// across locations with idle gaps between them.
	Coordinated bool
}

// Listing renders the full burst sequence, one line per burst.
func (cr *CoordinationReport) Listing() string {
	lines := make([]string, 0, len(cr.Bursts))
	for _, b := range cr.Bursts {
		lines = append(lines, "  "+b.String())
	}
	return strings.Join(lines, "\n")
}

// maxBurstGap is the idle time that separates two bursts at one location.
const maxBurstGap = 4 * 24 * time.Hour

// Coordination reconstructs the per-location burst sequence of one
// M-cluster.
func Coordination(ds *dataset.Dataset, mClu *epm.Clustering, mIdx int) (*CoordinationReport, error) {
	if ds == nil || mClu == nil {
		return nil, fmt.Errorf("analysis: Coordination needs dataset and clustering")
	}
	if mIdx < 0 || mIdx >= len(mClu.Clusters) {
		return nil, fmt.Errorf("analysis: M-cluster %d out of range", mIdx)
	}

	type ev struct {
		at  time.Time
		loc int
	}
	var evs []ev
	for _, e := range ds.Events() {
		if mClu.ClusterOf(e.ID) == mIdx {
			evs = append(evs, ev{at: e.Time, loc: e.SensorLocation})
		}
	}
	sort.Slice(evs, func(a, b int) bool { return evs[a].at.Before(evs[b].at) })

	rep := &CoordinationReport{MCluster: mIdx}

	// Group events into bursts per location (activity at other locations
	// does not break a location's burst), then merge in start order — the
	// shape of the paper's §4.3 listing.
	byLoc := make(map[int][]ev)
	for _, e := range evs {
		byLoc[e.loc] = append(byLoc[e.loc], e)
	}
	for loc, les := range byLoc {
		var cur *Burst
		for _, e := range les {
			if cur != nil && e.at.Sub(cur.End) <= maxBurstGap {
				cur.End = e.at
				cur.Events++
				continue
			}
			if cur != nil {
				rep.Bursts = append(rep.Bursts, *cur)
			}
			cur = &Burst{Location: loc, Start: e.at, End: e.at, Events: 1}
		}
		if cur != nil {
			rep.Bursts = append(rep.Bursts, *cur)
		}
	}
	sort.Slice(rep.Bursts, func(a, b int) bool {
		if !rep.Bursts[a].Start.Equal(rep.Bursts[b].Start) {
			return rep.Bursts[a].Start.Before(rep.Bursts[b].Start)
		}
		return rep.Bursts[a].Location < rep.Bursts[b].Location
	})
	rep.Locations = len(byLoc)

	// Coordination signature: several bursts over at least two locations,
	// with idle gaps between a location's bursts (the revisit pattern of
	// the paper: "hitting network location A ... B ... B ... A") and at
	// least one multi-event burst (hosts acting together).
	dense := 0
	for _, b := range rep.Bursts {
		if b.Events >= 2 {
			dense++
		}
	}
	if len(rep.Bursts) >= 3 && rep.Locations >= 2 && rep.Locations <= 6 &&
		dense >= 1 && len(rep.Bursts) > rep.Locations {
		rep.Coordinated = true
	}
	return rep, nil
}

// MostCoordinated scans the M-clusters with between minEvents and
// maxEvents attacks and returns the report with the strongest
// coordination signature (most bursts among coordinated clusters), or nil
// when none qualifies.
func MostCoordinated(ds *dataset.Dataset, mClu *epm.Clustering, minEvents, maxEvents int) (*CoordinationReport, error) {
	if ds == nil || mClu == nil {
		return nil, fmt.Errorf("analysis: MostCoordinated needs dataset and clustering")
	}
	var best *CoordinationReport
	for _, c := range mClu.Clusters {
		if c.Size() < minEvents || (maxEvents > 0 && c.Size() > maxEvents) {
			continue
		}
		rep, err := Coordination(ds, mClu, c.ID)
		if err != nil {
			return nil, err
		}
		if !rep.Coordinated {
			continue
		}
		if best == nil || len(rep.Bursts) > len(best.Bursts) {
			best = rep
		}
	}
	return best, nil
}
