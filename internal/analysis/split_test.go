package analysis

import (
	"testing"
)

func TestExplainSplitWormClusters(t *testing.T) {
	s := buildScenario(t, 14)
	// Gather the worm's M-clusters through a multi-M B-cluster.
	multi := s.cm.MultiMBClusters(s.b)
	if len(multi) == 0 {
		t.Skip("no multi-M B-cluster")
	}
	var mIdxs []int
	for m := range s.cm.BtoM[multi[0]] {
		mIdxs = append(mIdxs, m)
	}
	if len(mIdxs) < 2 {
		t.Skip("B-cluster maps to fewer than 2 M-clusters")
	}
	splits, err := ExplainSplit(s.mClu, mIdxs)
	if err != nil {
		t.Fatal(err)
	}
	if len(splits) != len(s.mClu.Schema.Features) {
		t.Fatalf("splits = %d, want one per feature", len(splits))
	}
	// The dominant differentiator for the worm lineage must be the file
	// size (the paper's observation); linker version may contribute.
	dom := DominantDifferentiator(splits)
	if dom != "File size in bytes" {
		t.Errorf("dominant differentiator = %q, want file size (splits[0]=%+v)", dom, splits[0])
	}
	// Sorted by distinct values.
	for i := 1; i < len(splits); i++ {
		if splits[i].DistinctValues > splits[i-1].DistinctValues {
			t.Error("splits not sorted")
		}
	}
	// The file type must NOT differentiate (all worm variants are PE GUI).
	for _, fs := range splits {
		if fs.Feature == "File type according to libmagic signatures" && fs.Differentiates() {
			t.Errorf("file type differentiates worm clusters: %+v", fs)
		}
	}
}

func TestExplainSplitErrors(t *testing.T) {
	s := buildScenario(t, 14)
	if _, err := ExplainSplit(nil, []int{0, 1}); err == nil {
		t.Error("nil clustering must error")
	}
	if _, err := ExplainSplit(s.mClu, []int{0}); err == nil {
		t.Error("single cluster must error")
	}
	if _, err := ExplainSplit(s.mClu, []int{0, 1 << 20}); err == nil {
		t.Error("out-of-range cluster must error")
	}
}

func TestDominantDifferentiatorEmpty(t *testing.T) {
	if got := DominantDifferentiator(nil); got != "" {
		t.Errorf("empty splits = %q", got)
	}
	same := []FeatureSplit{{Feature: "x", DistinctValues: 1}}
	if got := DominantDifferentiator(same); got != "" {
		t.Errorf("non-differentiating = %q", got)
	}
}
