// Package analysis implements the paper's cross-perspective analyses: the
// EPM↔behaviour relationship graph (Figure 3), the size-1 B-cluster
// anomaly detection (§4.2, Figure 4), the propagation-context profiles
// (§4.3, Figure 5), and the IRC C&C correlation (Table 2).
//
// All analyses consume only the dataset observables (events, samples,
// profiles) and the cluster assignments; ground-truth fields are never
// read.
package analysis

import (
	"fmt"
	"sort"

	"repro/internal/bcluster"
	"repro/internal/dataset"
	"repro/internal/epm"
)

// CrossMap joins the M (static) and B (behavioral) perspectives at the
// sample level.
type CrossMap struct {
	// SampleM maps a sample MD5 to its M-cluster index (every event of a
	// sample carries identical μ features, hence one M-cluster).
	SampleM map[string]int
	// SampleB maps a sample MD5 to its B-cluster index (executable
	// samples only).
	SampleB map[string]int
	// MtoB counts samples per (M-cluster, B-cluster) pair.
	MtoB map[int]map[int]int
	// BtoM counts samples per (B-cluster, M-cluster) pair.
	BtoM map[int]map[int]int
}

// BuildCrossMap constructs the M↔B join.
func BuildCrossMap(ds *dataset.Dataset, mClu *epm.Clustering, b *bcluster.Result) (*CrossMap, error) {
	if ds == nil || mClu == nil || b == nil {
		return nil, fmt.Errorf("analysis: BuildCrossMap needs dataset, M clustering, and B clustering")
	}
	cm := &CrossMap{
		SampleM: make(map[string]int),
		SampleB: make(map[string]int),
		MtoB:    make(map[int]map[int]int),
		BtoM:    make(map[int]map[int]int),
	}
	for _, e := range ds.Events() {
		if !e.HasSample() {
			continue
		}
		if _, seen := cm.SampleM[e.Sample.MD5]; seen {
			continue
		}
		m := mClu.ClusterOf(e.ID)
		if m < 0 {
			return nil, fmt.Errorf("analysis: event %s not in M clustering", e.ID)
		}
		cm.SampleM[e.Sample.MD5] = m
	}
	for md5, m := range cm.SampleM {
		bi := b.ClusterOf(md5)
		if bi < 0 {
			continue // not executable, never clustered behaviorally
		}
		cm.SampleB[md5] = bi
		if cm.MtoB[m] == nil {
			cm.MtoB[m] = make(map[int]int)
		}
		cm.MtoB[m][bi]++
		if cm.BtoM[bi] == nil {
			cm.BtoM[bi] = make(map[int]int)
		}
		cm.BtoM[bi][m]++
	}
	return cm, nil
}

// MultiMBClusters returns the B-cluster indices associated with more than
// one M-cluster, ordered by B-cluster size (largest first). These are the
// Figure 5 candidates.
func (cm *CrossMap) MultiMBClusters(b *bcluster.Result) []int {
	var out []int
	for bi, ms := range cm.BtoM {
		if len(ms) > 1 {
			out = append(out, bi)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		si, sj := b.Clusters[out[i]].Size(), b.Clusters[out[j]].Size()
		if si != sj {
			return si > sj
		}
		return out[i] < out[j]
	})
	return out
}

// RelationGraph is the 4-layer E→P→M→B graph of Figure 3, filtered to
// clusters with at least MinSize attack events.
type RelationGraph struct {
	MinSize int
	// Layer node IDs that survive the filter, sorted.
	ENodes, PNodes, MNodes, BNodes []int
	// Edges between adjacent layers, weighted by co-occurring events
	// (E→P, P→M) or samples (M→B).
	EP map[int]map[int]int
	PM map[int]map[int]int
	MB map[int]map[int]int
}

// BuildRelationGraph constructs the filtered relationship graph.
func BuildRelationGraph(ds *dataset.Dataset, eClu, pClu, mClu *epm.Clustering, b *bcluster.Result, cm *CrossMap, minSize int) (*RelationGraph, error) {
	if ds == nil || eClu == nil || pClu == nil || mClu == nil || b == nil || cm == nil {
		return nil, fmt.Errorf("analysis: BuildRelationGraph needs every clustering")
	}
	if minSize < 1 {
		minSize = 1
	}
	g := &RelationGraph{
		MinSize: minSize,
		EP:      make(map[int]map[int]int),
		PM:      make(map[int]map[int]int),
		MB:      make(map[int]map[int]int),
	}

	keepE := filterBySize(eClu, minSize)
	keepP := filterBySize(pClu, minSize)
	keepM := filterBySize(mClu, minSize)

	// B-cluster size in events: sum of event counts of member samples.
	bEvents := make(map[int]int)
	for md5, bi := range cm.SampleB {
		if s := ds.Sample(md5); s != nil {
			bEvents[bi] += s.Events
		}
	}
	keepB := make(map[int]bool)
	for bi, n := range bEvents {
		if n >= minSize {
			keepB[bi] = true
		}
	}

	for _, e := range ds.Events() {
		ei, pi := eClu.ClusterOf(e.ID), pClu.ClusterOf(e.ID)
		if keepE[ei] && keepP[pi] {
			addEdge(g.EP, ei, pi)
		}
		if !e.HasSample() {
			continue
		}
		mi := mClu.ClusterOf(e.ID)
		if keepP[pi] && keepM[mi] {
			addEdge(g.PM, pi, mi)
		}
	}
	for md5, mi := range cm.SampleM {
		bi, ok := cm.SampleB[md5]
		if !ok {
			continue
		}
		if keepM[mi] && keepB[bi] {
			addEdge(g.MB, mi, bi)
		}
	}

	g.ENodes = sortedKeysOf(keepE)
	g.PNodes = sortedKeysOf(keepP)
	g.MNodes = sortedKeysOf(keepM)
	g.BNodes = sortedKeysOf(keepB)
	return g, nil
}

func filterBySize(c *epm.Clustering, minSize int) map[int]bool {
	keep := make(map[int]bool)
	for _, cl := range c.Clusters {
		if cl.Size() >= minSize {
			keep[cl.ID] = true
		}
	}
	return keep
}

func addEdge(adj map[int]map[int]int, from, to int) {
	if adj[from] == nil {
		adj[from] = make(map[int]int)
	}
	adj[from][to]++
}

func sortedKeysOf(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// EdgeCount returns the number of distinct edges in an adjacency map.
func EdgeCount(adj map[int]map[int]int) int {
	n := 0
	for _, tos := range adj {
		n += len(tos)
	}
	return n
}

// FanIn returns, for each target node, how many distinct sources point at
// it — e.g. how many E-clusters share one P-cluster.
func FanIn(adj map[int]map[int]int) map[int]int {
	in := make(map[int]int)
	for _, tos := range adj {
		for to := range tos {
			in[to]++
		}
	}
	return in
}

// Size1Report is the §4.2 / Figure 4 analysis of single-sample
// B-clusters.
type Size1Report struct {
	// TotalB and Size1B are the overall and singleton B-cluster counts
	// (the paper: 860 of 972).
	TotalB int
	Size1B int
	// OneToOne counts singletons whose M-cluster also contains only that
	// sample — genuinely rare malware, not an anomaly.
	OneToOne int
	// Anomalous lists singleton samples whose M-cluster holds other
	// samples that landed in a larger B-cluster: the clustering artifacts.
	Anomalous []AnomalousSample
	// AVNames histograms the AV labels of the anomalous samples
	// (Figure 4 top).
	AVNames map[string]int
	// EPCombos histograms the (E-cluster, P-cluster) propagation
	// coordinates of the anomalous samples (Figure 4 bottom).
	EPCombos map[string]int
}

// AnomalousSample is one detected clustering artifact.
type AnomalousSample struct {
	MD5 string
	// BCluster is the singleton B-cluster.
	BCluster int
	// MCluster is the sample's static cluster.
	MCluster int
	// MClusterSize is the number of samples in the M-cluster.
	MClusterSize int
	// DominantB is the largest other B-cluster of the M-cluster.
	DominantB int
	// DominantBSize is its sample count within the M-cluster.
	DominantBSize int
}

// FindSize1Anomalies detects the size-1 B-cluster artifacts by combining
// the static and behavioral perspectives, exactly as §4.2 argues: a
// singleton whose static cluster is otherwise concentrated in a larger
// B-cluster is a likely misclassification.
func FindSize1Anomalies(ds *dataset.Dataset, eClu, pClu *epm.Clustering, b *bcluster.Result, cm *CrossMap) (*Size1Report, error) {
	if ds == nil || eClu == nil || pClu == nil || b == nil || cm == nil {
		return nil, fmt.Errorf("analysis: FindSize1Anomalies needs every clustering")
	}
	// Samples per M-cluster.
	mSize := make(map[int]int)
	for _, m := range cm.SampleM {
		mSize[m]++
	}

	rep := &Size1Report{
		TotalB:   len(b.Clusters),
		AVNames:  make(map[string]int),
		EPCombos: make(map[string]int),
	}
	for _, cl := range b.Clusters {
		if cl.Size() != 1 {
			continue
		}
		rep.Size1B++
		md5 := cl.Members[0]
		m, ok := cm.SampleM[md5]
		if !ok {
			continue
		}
		if mSize[m] <= 1 {
			rep.OneToOne++
			continue
		}
		// Find the dominant other B-cluster of this M-cluster.
		domB, domN := -1, 0
		for bi, n := range cm.MtoB[m] {
			if bi == cl.ID {
				continue
			}
			if n > domN || (n == domN && bi < domB) {
				domB, domN = bi, n
			}
		}
		if domB < 0 || domN < 2 {
			// No larger sibling cluster: not enough evidence of anomaly.
			rep.OneToOne++
			continue
		}
		a := AnomalousSample{
			MD5:           md5,
			BCluster:      cl.ID,
			MCluster:      m,
			MClusterSize:  mSize[m],
			DominantB:     domB,
			DominantBSize: domN,
		}
		rep.Anomalous = append(rep.Anomalous, a)

		if s := ds.Sample(md5); s != nil {
			label := s.AVLabel
			if label == "" {
				label = "(undetected)"
			}
			rep.AVNames[label]++
		}
		if evs := ds.EventsOfSample(md5); len(evs) > 0 {
			ei := eClu.ClusterOf(evs[0].ID)
			pi := pClu.ClusterOf(evs[0].ID)
			rep.EPCombos[fmt.Sprintf("E%d/P%d", ei, pi)]++
		}
	}
	sort.Slice(rep.Anomalous, func(i, j int) bool { return rep.Anomalous[i].MD5 < rep.Anomalous[j].MD5 })
	return rep, nil
}

// TopCounts returns the n largest entries of a histogram as (key, count)
// pairs, ties broken by key.
func TopCounts(hist map[string]int, n int) []KV {
	out := make([]KV, 0, len(hist))
	for k, v := range hist {
		out = append(out, KV{k, v})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].N != out[j].N {
			return out[i].N > out[j].N
		}
		return out[i].K < out[j].K
	})
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// KV is a histogram entry.
type KV struct {
	K string
	N int
}
