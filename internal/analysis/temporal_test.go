package analysis

import (
	"testing"

	"repro/internal/simtime"
)

func TestTemporalBasics(t *testing.T) {
	s := buildScenario(t, 9)
	rep, err := Temporal(s.ds, s.mClu, 4)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Dimension != "mu" {
		t.Errorf("dimension = %q", rep.Dimension)
	}
	wantPeriods := (simtime.WeekCount() + 3) / 4
	if len(rep.Periods) != wantPeriods {
		t.Fatalf("periods = %d, want %d", len(rep.Periods), wantPeriods)
	}
	totalEvents := 0
	for _, p := range rep.Periods {
		totalEvents += p.Events
		if p.NewClusters > p.ActiveClusters {
			t.Errorf("period %d: new (%d) > active (%d)", p.Period, p.NewClusters, p.ActiveClusters)
		}
	}
	// Every event with a sample is in some M-cluster and some period.
	want := 0
	for _, e := range s.ds.Events() {
		if e.HasSample() {
			want++
		}
	}
	if totalEvents != want {
		t.Errorf("period events sum to %d, want %d", totalEvents, want)
	}
	// First period: every active cluster is new by definition.
	for _, p := range rep.Periods {
		if p.ActiveClusters > 0 {
			if p.NewClusters != p.ActiveClusters {
				t.Errorf("first active period %d: new %d != active %d", p.Period, p.NewClusters, p.ActiveClusters)
			}
			break
		}
	}
	// Sum of NewClusters over all periods equals total observed clusters.
	newSum := 0
	for _, p := range rep.Periods {
		newSum += p.NewClusters
	}
	if newSum != len(rep.Lifetimes) {
		t.Errorf("new clusters sum %d != lifetimes %d", newSum, len(rep.Lifetimes))
	}
}

func TestTemporalLifetimes(t *testing.T) {
	s := buildScenario(t, 9)
	rep, err := Temporal(s.ds, s.mClu, 4)
	if err != nil {
		t.Fatal(err)
	}
	for cl, lt := range rep.Lifetimes {
		if lt.FirstPeriod > lt.LastPeriod {
			t.Errorf("cluster %d: first %d > last %d", cl, lt.FirstPeriod, lt.LastPeriod)
		}
		if lt.ActivePeriods < 1 || lt.ActivePeriods > lt.Span() {
			t.Errorf("cluster %d: active %d outside [1, %d]", cl, lt.ActivePeriods, lt.Span())
		}
	}
	// The worm's big clusters must be long-lived (months of activity).
	long := rep.LongLived(6)
	if len(long) == 0 {
		t.Error("no long-lived clusters; the worm background should persist")
	}
	// Sorted by span descending.
	for i := 1; i < len(long); i++ {
		if rep.Lifetimes[long[i]].Span() > rep.Lifetimes[long[i-1]].Span() {
			t.Error("LongLived not sorted by span")
		}
	}
}

func TestTemporalChurn(t *testing.T) {
	s := buildScenario(t, 9)
	rep, err := Temporal(s.ds, s.mClu, 4)
	if err != nil {
		t.Fatal(err)
	}
	churn := rep.ChurnRate()
	if churn <= 0 || churn >= 1 {
		t.Errorf("churn = %v, want inside (0,1): new variants keep appearing but a stable background persists", churn)
	}
}

func TestTemporalErrorsAndDefaults(t *testing.T) {
	s := buildScenario(t, 9)
	if _, err := Temporal(nil, nil, 4); err == nil {
		t.Error("nil inputs must error")
	}
	rep, err := Temporal(s.ds, s.mClu, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.PeriodWeeks != 4 {
		t.Errorf("default period = %d, want 4", rep.PeriodWeeks)
	}
}
