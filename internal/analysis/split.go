package analysis

import (
	"fmt"
	"sort"

	"repro/internal/epm"
)

// FeatureSplit describes how one feature differentiates a set of
// M-clusters.
type FeatureSplit struct {
	// Feature is the schema feature name.
	Feature string
	// DistinctValues is the number of distinct non-wildcard invariant
	// values across the cluster patterns.
	DistinctValues int
	// Wildcards is the number of patterns with a "do not care" at this
	// feature.
	Wildcards int
	// Values lists the distinct values, sorted (wildcard excluded).
	Values []string
}

// Differentiates reports whether the feature actually separates patterns.
func (fs FeatureSplit) Differentiates() bool {
	return fs.DistinctValues > 1
}

// ExplainSplit compares the classification patterns of a set of M-clusters
// and reports, feature by feature, what distinguishes them — the paper's
// §4.3 reading that "one of the main differentiation factors among the
// different classes is the file size", with occasional linker-version
// changes suggesting recompilation.
func ExplainSplit(mClu *epm.Clustering, mIdxs []int) ([]FeatureSplit, error) {
	if mClu == nil {
		return nil, fmt.Errorf("analysis: ExplainSplit needs a clustering")
	}
	if len(mIdxs) < 2 {
		return nil, fmt.Errorf("analysis: ExplainSplit needs at least two clusters, got %d", len(mIdxs))
	}
	for _, m := range mIdxs {
		if m < 0 || m >= len(mClu.Clusters) {
			return nil, fmt.Errorf("analysis: M-cluster %d out of range", m)
		}
	}

	out := make([]FeatureSplit, len(mClu.Schema.Features))
	for fi, name := range mClu.Schema.Features {
		values := make(map[string]bool)
		wildcards := 0
		for _, m := range mIdxs {
			v := mClu.Clusters[m].Pattern.Values[fi]
			if v == epm.Wildcard {
				wildcards++
				continue
			}
			values[v] = true
		}
		fs := FeatureSplit{Feature: name, DistinctValues: len(values), Wildcards: wildcards}
		for v := range values {
			fs.Values = append(fs.Values, v)
		}
		sort.Strings(fs.Values)
		out[fi] = fs
	}
	// Most differentiating features first, stable by schema order.
	sort.SliceStable(out, func(a, b int) bool {
		return out[a].DistinctValues > out[b].DistinctValues
	})
	return out, nil
}

// DominantDifferentiator returns the feature splitting the clusters the
// most, or "" when nothing differentiates (identical patterns).
func DominantDifferentiator(splits []FeatureSplit) string {
	if len(splits) == 0 || !splits[0].Differentiates() {
		return ""
	}
	return splits[0].Feature
}
