package scriptgen

import (
	"fmt"
	"sort"
)

// Snapshot types serialize the matured part of FSM models so a central
// gateway can push refined models to its sensors (the FSM-sync arrow of
// the paper's Figure 1). Candidate bins are deliberately excluded: only
// the gateway learns; sensors receive generalized knowledge.

// EdgeSnapshot is one matured FSM transition.
type EdgeSnapshot struct {
	From    int     `json:"from"`
	To      int     `json:"to"`
	Pattern Pattern `json:"pattern"`
}

// FSMSnapshot is the matured model of one port.
type FSMSnapshot struct {
	Port   int            `json:"port"`
	States int            `json:"states"`
	Edges  []EdgeSnapshot `json:"edges"`
}

// SetSnapshot is the full per-port model set, with a version that
// increases whenever new knowledge matures.
type SetSnapshot struct {
	Version int           `json:"version"`
	FSMs    []FSMSnapshot `json:"fsms"`
}

// Snapshot exports the matured edges of the FSM.
func (f *FSM) Snapshot() FSMSnapshot {
	snap := FSMSnapshot{Port: f.Port, States: f.states}
	var walk func(*state)
	seen := map[int]bool{}
	walk = func(s *state) {
		if seen[s.id] {
			return
		}
		seen[s.id] = true
		for _, e := range s.edges {
			snap.Edges = append(snap.Edges, EdgeSnapshot{
				From:    s.id,
				To:      e.target.id,
				Pattern: clonePattern(e.pattern),
			})
			walk(e.target)
		}
	}
	walk(f.root)
	sort.Slice(snap.Edges, func(a, b int) bool {
		if snap.Edges[a].From != snap.Edges[b].From {
			return snap.Edges[a].From < snap.Edges[b].From
		}
		return snap.Edges[a].To < snap.Edges[b].To
	})
	return snap
}

func clonePattern(p Pattern) Pattern {
	out := Pattern{MinLen: p.MinLen, Regions: make([]Region, len(p.Regions))}
	for i, r := range p.Regions {
		out.Regions[i] = Region{Offset: r.Offset, Bytes: append([]byte(nil), r.Bytes...)}
	}
	return out
}

// RestoreFSM rebuilds a classification-only FSM from a snapshot. The
// result classifies exactly like the original's matured model; feeding it
// to Learn would start fresh bins, which sensors never do.
func RestoreFSM(snap FSMSnapshot) (*FSM, error) {
	f := NewFSM(snap.Port, 0)
	// Recreate the state set. State 0 is the root (created by NewFSM).
	statesByID := map[int]*state{0: f.root}
	need := func(id int) *state {
		if s, ok := statesByID[id]; ok {
			return s
		}
		s := &state{id: id}
		statesByID[id] = s
		return s
	}
	for _, e := range snap.Edges {
		if e.From < 0 || e.To < 0 || e.From == e.To {
			return nil, fmt.Errorf("scriptgen: invalid edge %d->%d in snapshot", e.From, e.To)
		}
		from, to := need(e.From), need(e.To)
		from.edges = append(from.edges, &edge{pattern: clonePattern(e.Pattern), target: to})
	}
	if snap.States < len(statesByID) {
		return nil, fmt.Errorf("scriptgen: snapshot declares %d states but references %d", snap.States, len(statesByID))
	}
	f.states = snap.States
	return f, nil
}

// Snapshot exports every port model.
func (s *Set) Snapshot(version int) SetSnapshot {
	snap := SetSnapshot{Version: version}
	for _, port := range s.Ports() {
		snap.FSMs = append(snap.FSMs, s.perPort[port].Snapshot())
	}
	return snap
}

// RestoreSet rebuilds a classification-only Set from a snapshot.
func RestoreSet(snap SetSnapshot) (*Set, error) {
	out := NewSet(0)
	for _, fs := range snap.FSMs {
		f, err := RestoreFSM(fs)
		if err != nil {
			return nil, err
		}
		out.perPort[fs.Port] = f
	}
	return out, nil
}

// EdgeCount reports the number of matured edges across all ports, a cheap
// staleness check for sensors.
func (s *Set) EdgeCount() int {
	n := 0
	for _, f := range s.perPort {
		n += f.Edges()
	}
	return n
}
