package scriptgen

import (
	"fmt"
	"testing"

	"repro/internal/exploit"
	"repro/internal/simrng"
)

func testImpl(t *testing.T, vulnName string, port int, vulnSeed, implSeed uint64, implName string) *exploit.Implementation {
	t.Helper()
	v, err := exploit.NewVulnerability(vulnName, port, 3, vulnSeed)
	if err != nil {
		t.Fatal(err)
	}
	impl, err := exploit.NewImplementation(v, implName, implSeed)
	if err != nil {
		t.Fatal(err)
	}
	return impl
}

func TestPatternMatches(t *testing.T) {
	p := Pattern{
		Regions: []Region{{Offset: 0, Bytes: []byte("HEAD")}, {Offset: 8, Bytes: []byte("TOKN")}},
		MinLen:  12,
	}
	tests := []struct {
		name string
		msg  string
		want bool
	}{
		{"exact", "HEADxxxxTOKN", true},
		{"longer", "HEADxxxxTOKNpayload", true},
		{"wrong head", "DEADxxxxTOKN", false},
		{"wrong token", "HEADxxxxTOKX", false},
		{"too short", "HEADxxxxTOK", false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := p.Matches([]byte(tt.msg)); got != tt.want {
				t.Errorf("Matches(%q) = %v, want %v", tt.msg, got, tt.want)
			}
		})
	}
}

func TestGeneralize(t *testing.T) {
	exemplars := [][]byte{
		[]byte("FIXEDaaaaSUFFIXz1"),
		[]byte("FIXEDbbbbSUFFIXz2"),
		[]byte("FIXEDccccSUFFIXz3extra"),
	}
	p := generalize(exemplars)
	if p.MinLen != 17 {
		t.Errorf("MinLen = %d, want 17", p.MinLen)
	}
	if len(p.Regions) != 2 {
		t.Fatalf("regions = %+v, want 2 fixed runs", p.Regions)
	}
	if string(p.Regions[0].Bytes) != "FIXED" || p.Regions[0].Offset != 0 {
		t.Errorf("region 0 = %+v", p.Regions[0])
	}
	if string(p.Regions[1].Bytes) != "SUFFIXz" || p.Regions[1].Offset != 9 {
		t.Errorf("region 1 = %+v", p.Regions[1])
	}
	for _, e := range exemplars {
		if !p.Matches(e) {
			t.Errorf("generalized pattern must match its own exemplar %q", e)
		}
	}
	if !p.Matches([]byte("FIXEDxyzwSUFFIXz9")) {
		t.Error("pattern must match a fresh instance with different volatile bytes")
	}
	if p.Matches([]byte("BROKNaaaaSUFFIXz1")) {
		t.Error("pattern must reject a different fixed prefix")
	}
}

func TestGeneralizeIgnoresShortRuns(t *testing.T) {
	// Two exemplars agreeing only on 3 scattered bytes must produce no
	// fixed region of that run.
	a := []byte{1, 2, 3, 9, 9, 9, 9, 9}
	b := []byte{1, 2, 3, 8, 8, 8, 8, 8}
	p := generalize([][]byte{a, b})
	if len(p.Regions) != 0 {
		t.Errorf("regions = %+v, want none (run shorter than %d)", p.Regions, minRunLen)
	}
}

// randPayload returns shellcode-like bytes: random content, variable length.
func randPayload(r interface{ Read([]byte) (int, error) }, n int) []byte {
	b := make([]byte, n)
	_, _ = r.Read(b)
	return b
}

func TestFSMLearnsOneImplementation(t *testing.T) {
	impl := testImpl(t, "asn1", 445, 1, 2, "impl-a")
	r := simrng.New(5).Stream("learn")
	f := NewFSM(445, 3)

	// First two dialogs must be proxied (no matured edges yet).
	for i := 0; i < 2; i++ {
		res := f.Learn(impl.Dialog(r, randPayload(r, 60+i)).ClientMessages())
		if !res.Proxied {
			t.Fatalf("dialog %d: want proxied", i)
		}
	}
	// Third dialog matures the edges.
	res := f.Learn(impl.Dialog(r, randPayload(r, 80)).ClientMessages())
	if res.NewEdges == 0 {
		t.Fatal("third dialog should mature edges")
	}
	// Fourth dialog is handled autonomously.
	res = f.Learn(impl.Dialog(r, randPayload(r, 90)).ClientMessages())
	if res.Proxied {
		t.Error("fourth dialog should be handled by the FSM without proxying")
	}
	// And classification succeeds with a stable path.
	p1, ok1 := f.Classify(impl.Dialog(r, randPayload(r, 10)).ClientMessages())
	p2, ok2 := f.Classify(impl.Dialog(r, randPayload(r, 300)).ClientMessages())
	if !ok1 || !ok2 {
		t.Fatal("classification failed after maturity")
	}
	if p1 != p2 {
		t.Errorf("same implementation produced different paths: %q vs %q", p1, p2)
	}
}

func TestFSMSeparatesImplementations(t *testing.T) {
	implA := testImpl(t, "asn1", 445, 1, 2, "impl-a")
	implB := testImpl(t, "asn1", 445, 1, 3, "impl-b")
	r := simrng.New(5).Stream("separate")
	f := NewFSM(445, 3)
	for i := 0; i < 5; i++ {
		f.Learn(implA.Dialog(r, randPayload(r, 40+i)).ClientMessages())
		f.Learn(implB.Dialog(r, randPayload(r, 50+i)).ClientMessages())
	}
	pa, okA := f.Classify(implA.Dialog(r, randPayload(r, 33)).ClientMessages())
	pb, okB := f.Classify(implB.Dialog(r, randPayload(r, 44)).ClientMessages())
	if !okA || !okB {
		t.Fatal("classification failed")
	}
	if pa == pb {
		t.Errorf("different implementations share FSM path %q", pa)
	}
}

func TestFSMPathStableAcrossPayloads(t *testing.T) {
	impl := testImpl(t, "asn1", 445, 1, 2, "impl-a")
	r := simrng.New(6).Stream("payloads")
	f := NewFSM(445, 3)
	// Learn with varied payloads, classify with extreme lengths.
	for i := 0; i < 5; i++ {
		f.Learn(impl.Dialog(r, randPayload(r, 30+17*i)).ClientMessages())
	}
	long := make([]byte, 600)
	r.Read(long)
	p, ok := f.Classify(impl.Dialog(r, long).ClientMessages())
	if !ok {
		t.Fatal("long-payload dialog not classified")
	}
	short, okShort := f.Classify(impl.Dialog(r, []byte("s")).ClientMessages())
	if !okShort {
		t.Fatal("short-payload dialog not classified")
	}
	if p != short {
		t.Errorf("payload length changed the FSM path: %q vs %q", p, short)
	}
}

func TestClassifyUnknownFails(t *testing.T) {
	implA := testImpl(t, "asn1", 445, 1, 2, "impl-a")
	implB := testImpl(t, "asn1", 445, 1, 3, "impl-b")
	r := simrng.New(7).Stream("unknown")
	f := NewFSM(445, 3)
	for i := 0; i < 5; i++ {
		f.Learn(implA.Dialog(r, nil).ClientMessages())
	}
	if _, ok := f.Classify(implB.Dialog(r, nil).ClientMessages()); ok {
		t.Error("unlearned implementation must not classify")
	}
}

func TestRareActivityNeverMatures(t *testing.T) {
	impl := testImpl(t, "rare", 5000, 9, 10, "impl-r")
	r := simrng.New(8).Stream("rare")
	f := NewFSM(5000, 3)
	f.Learn(impl.Dialog(r, nil).ClientMessages())
	if f.Edges() != 0 {
		t.Errorf("edges = %d after a single observation, want 0", f.Edges())
	}
	if f.PendingBins() == 0 {
		t.Error("a pending bin must exist")
	}
	if _, ok := f.Classify(impl.Dialog(r, nil).ClientMessages()); ok {
		t.Error("immature activity must not classify")
	}
}

func TestSetMultiplePorts(t *testing.T) {
	impl445 := testImpl(t, "asn1", 445, 1, 2, "impl-a")
	impl135 := testImpl(t, "dcom", 135, 3, 4, "impl-c")
	r := simrng.New(9).Stream("set")
	s := NewSet(3)
	for i := 0; i < 5; i++ {
		s.Learn(445, impl445.Dialog(r, nil).ClientMessages())
		s.Learn(135, impl135.Dialog(r, nil).ClientMessages())
	}
	ports := s.Ports()
	if len(ports) != 2 || ports[0] != 135 || ports[1] != 445 {
		t.Fatalf("Ports = %v", ports)
	}
	p445, ok := s.Classify(445, impl445.Dialog(r, nil).ClientMessages())
	if !ok {
		t.Fatal("port 445 dialog not classified")
	}
	p135, ok := s.Classify(135, impl135.Dialog(r, nil).ClientMessages())
	if !ok {
		t.Fatal("port 135 dialog not classified")
	}
	if p445 == p135 {
		t.Error("paths on different ports must differ")
	}
	if _, ok := s.Classify(9999, nil); ok {
		t.Error("unknown port must not classify")
	}
	if s.FSM(445) == nil || s.FSM(9999) != nil {
		t.Error("FSM accessor misbehaves")
	}
}

func TestLearningDeterminism(t *testing.T) {
	build := func() *FSM {
		implA := testImpl(t, "asn1", 445, 1, 2, "impl-a")
		implB := testImpl(t, "asn1", 445, 1, 3, "impl-b")
		r := simrng.New(10).Stream("det")
		f := NewFSM(445, 3)
		for i := 0; i < 6; i++ {
			f.Learn(implA.Dialog(r, []byte{byte(i)}).ClientMessages())
			f.Learn(implB.Dialog(r, []byte{byte(i)}).ClientMessages())
		}
		return f
	}
	f1, f2 := build(), build()
	implA := testImpl(t, "asn1", 445, 1, 2, "impl-a")
	r := simrng.New(11).Stream("det2")
	d := implA.Dialog(r, []byte("probe")).ClientMessages()
	p1, ok1 := f1.Classify(d)
	p2, ok2 := f2.Classify(d)
	if !ok1 || !ok2 || p1 != p2 {
		t.Errorf("learning is not deterministic: %q/%v vs %q/%v", p1, ok1, p2, ok2)
	}
}

func TestManyImplementationsManyPaths(t *testing.T) {
	r := simrng.New(12).Stream("many")
	f := NewFSM(445, 3)
	const nImpl = 10
	impls := make([]*exploit.Implementation, nImpl)
	for i := range impls {
		impls[i] = testImpl(t, "asn1", 445, 1, uint64(100+i), fmt.Sprintf("impl-%d", i))
	}
	for round := 0; round < 5; round++ {
		for _, impl := range impls {
			f.Learn(impl.Dialog(r, []byte("p")).ClientMessages())
		}
	}
	paths := map[string]bool{}
	for _, impl := range impls {
		p, ok := f.Classify(impl.Dialog(r, []byte("q")).ClientMessages())
		if !ok {
			t.Fatalf("implementation %s not classified", impl.Name)
		}
		paths[p] = true
	}
	if len(paths) != nImpl {
		t.Errorf("distinct paths = %d, want %d", len(paths), nImpl)
	}
}

func BenchmarkLearn(b *testing.B) {
	v, _ := exploit.NewVulnerability("asn1", 445, 3, 1)
	impl, _ := exploit.NewImplementation(v, "impl-a", 2)
	r := simrng.New(13).Stream("bench")
	dialogs := make([][][]byte, 64)
	for i := range dialogs {
		dialogs[i] = impl.Dialog(r, []byte("payload")).ClientMessages()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := NewFSM(445, 3)
		for _, d := range dialogs {
			f.Learn(d)
		}
	}
}

func BenchmarkClassify(b *testing.B) {
	v, _ := exploit.NewVulnerability("asn1", 445, 3, 1)
	impl, _ := exploit.NewImplementation(v, "impl-a", 2)
	r := simrng.New(14).Stream("bench2")
	f := NewFSM(445, 3)
	for i := 0; i < 8; i++ {
		payload := make([]byte, 50+i)
		r.Read(payload)
		f.Learn(impl.Dialog(r, payload).ClientMessages())
	}
	d := impl.Dialog(r, []byte("probe")).ClientMessages()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := f.Classify(d); !ok {
			b.Fatal("classification failed")
		}
	}
}
