// Package scriptgen implements ScriptGen-style FSM protocol learning.
//
// SGNET sensors model protocol conversations as Finite State Machines
// learned from traffic: messages observed at the same protocol state are
// grouped, their invariant byte regions are extracted (region analysis),
// and the resulting patterns become FSM edges the sensors can then handle
// autonomously. Conversations that do not match any learned edge are
// proxied to a sample-factory oracle until enough exemplars accumulate to
// generalize a new edge.
//
// The ε classification feature of the paper — the "FSM path identifier" —
// is the path a conversation traverses in the learned FSM. Because
// implementation-specific constants (usernames, NetBIOS identifiers, …)
// are invariant across the attacks of one codebase, they survive region
// analysis and become part of the learned path, which is why FSM paths
// separate exploit implementations and not just protocols.
package scriptgen

import (
	"fmt"
	"sort"
)

// Learning parameters.
const (
	// DefaultMatureAfter is the number of exemplars a candidate bin needs
	// before it is generalized into an FSM edge.
	DefaultMatureAfter = 3
	// minPrefixAgreement is the minimum length of the common prefix two
	// messages must share to be considered instances of the same protocol
	// word during bin assignment. Protocol framing and implementation
	// constants concentrate at the start of requests, so prefix agreement
	// is the discriminator (a simplification of full region analysis).
	minPrefixAgreement = 25
	// minRunLen is the minimum length of an invariant byte run for it to
	// become a fixed region of a generalized pattern; shorter agreements
	// are treated as coincidence.
	minRunLen = 4
)

// Region is a fixed byte run at a known offset within a message pattern.
type Region struct {
	Offset int
	Bytes  []byte
}

// Pattern is a generalized message: a set of fixed regions; all other
// bytes are wildcards.
type Pattern struct {
	Regions []Region
	// MinLen records the length of the shortest exemplar seen during
	// generalization. It is informational: matching is driven purely by
	// the fixed regions, because trailing payload bytes legitimately vary
	// in length between attacks.
	MinLen int
}

// Matches reports whether msg satisfies every fixed region of the pattern.
func (p Pattern) Matches(msg []byte) bool {
	for _, reg := range p.Regions {
		end := reg.Offset + len(reg.Bytes)
		if end > len(msg) {
			return false
		}
		if !byteEqual(msg[reg.Offset:end], reg.Bytes) {
			return false
		}
	}
	return true
}

func byteEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// generalize runs region analysis over exemplars: positions at which all
// exemplars agree, in runs of at least minRunLen, become fixed regions.
func generalize(exemplars [][]byte) Pattern {
	minLen := len(exemplars[0])
	for _, e := range exemplars[1:] {
		if len(e) < minLen {
			minLen = len(e)
		}
	}
	p := Pattern{MinLen: minLen}
	runStart := -1
	flush := func(end int) {
		if runStart >= 0 && end-runStart >= minRunLen {
			p.Regions = append(p.Regions, Region{
				Offset: runStart,
				Bytes:  append([]byte(nil), exemplars[0][runStart:end]...),
			})
		}
		runStart = -1
	}
	for i := 0; i < minLen; i++ {
		agree := true
		for _, e := range exemplars[1:] {
			if e[i] != exemplars[0][i] {
				agree = false
				break
			}
		}
		if agree {
			if runStart < 0 {
				runStart = i
			}
		} else {
			flush(i)
		}
	}
	flush(minLen)
	return p
}

func commonPrefixLen(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	return i
}

// state is one FSM node.
type state struct {
	id    int
	edges []*edge
	bins  []*bin
}

// edge is a matured, generalized transition.
type edge struct {
	pattern Pattern
	target  *state
}

// bin is a candidate transition still collecting exemplars.
type bin struct {
	exemplars [][]byte
	target    *state
}

// FSM is the learned model for one destination port.
type FSM struct {
	Port        int
	root        *state
	states      int
	matureAfter int
}

// NewFSM creates an empty FSM for the given port. matureAfter <= 0 selects
// DefaultMatureAfter.
func NewFSM(port, matureAfter int) *FSM {
	if matureAfter <= 0 {
		matureAfter = DefaultMatureAfter
	}
	f := &FSM{Port: port, matureAfter: matureAfter}
	f.root = f.newState()
	return f
}

func (f *FSM) newState() *state {
	s := &state{id: f.states}
	f.states++
	return s
}

// LearnResult summarizes how one conversation was handled.
type LearnResult struct {
	// Proxied reports that at least one message could not be handled by a
	// matured edge and required the sample-factory oracle.
	Proxied bool
	// NewEdges is the number of edges that matured during this learning
	// step.
	NewEdges int
}

// Learn feeds one conversation (client messages in order) into the model,
// updating bins and maturing edges as exemplar counts allow.
func (f *FSM) Learn(msgs [][]byte) LearnResult {
	var res LearnResult
	cur := f.root
	for _, msg := range msgs {
		if e := findEdge(cur.edges, msg); e != nil {
			cur = e.target
			continue
		}
		res.Proxied = true
		b := f.findBin(cur, msg)
		b.exemplars = append(b.exemplars, append([]byte(nil), msg...))
		next := b.target
		if len(b.exemplars) >= f.matureAfter {
			cur.edges = append(cur.edges, &edge{pattern: generalize(b.exemplars), target: b.target})
			cur.bins = removeBin(cur.bins, b)
			res.NewEdges++
		}
		cur = next
	}
	return res
}

func findEdge(edges []*edge, msg []byte) *edge {
	for _, e := range edges {
		if e.pattern.Matches(msg) {
			return e
		}
	}
	return nil
}

func (f *FSM) findBin(s *state, msg []byte) *bin {
	for _, b := range s.bins {
		if commonPrefixLen(b.exemplars[0], msg) >= minPrefixAgreement {
			return b
		}
	}
	b := &bin{target: f.newState()}
	s.bins = append(s.bins, b)
	return b
}

func removeBin(bins []*bin, target *bin) []*bin {
	for i, b := range bins {
		if b == target {
			return append(bins[:i], bins[i+1:]...)
		}
	}
	return bins
}

// Classify walks the matured edges of the model. It returns the FSM path
// identifier of the conversation and ok=true when every message matched a
// matured edge.
func (f *FSM) Classify(msgs [][]byte) (string, bool) {
	cur := f.root
	for _, msg := range msgs {
		e := findEdge(cur.edges, msg)
		if e == nil {
			return "", false
		}
		cur = e.target
	}
	return fmt.Sprintf("%d:s%d", f.Port, cur.id), true
}

// States reports the number of FSM states.
func (f *FSM) States() int { return f.states }

// Edges reports the number of matured edges.
func (f *FSM) Edges() int {
	n := 0
	var walk func(*state)
	seen := map[int]bool{}
	walk = func(s *state) {
		if seen[s.id] {
			return
		}
		seen[s.id] = true
		n += len(s.edges)
		for _, e := range s.edges {
			walk(e.target)
		}
	}
	walk(f.root)
	return n
}

// PendingBins reports the number of immature candidate bins.
func (f *FSM) PendingBins() int {
	n := 0
	var walk func(*state)
	walk = func(s *state) {
		n += len(s.bins)
		for _, e := range s.edges {
			walk(e.target)
		}
		for _, b := range s.bins {
			walk(b.target)
		}
	}
	walk(f.root)
	return n
}

// Set is the per-port collection of FSMs a deployment shares through its
// gateway.
type Set struct {
	perPort     map[int]*FSM
	matureAfter int
}

// NewSet creates an empty FSM set. matureAfter <= 0 selects
// DefaultMatureAfter for every port model.
func NewSet(matureAfter int) *Set {
	return &Set{perPort: make(map[int]*FSM), matureAfter: matureAfter}
}

// Learn feeds a conversation on the given port.
func (s *Set) Learn(port int, msgs [][]byte) LearnResult {
	f, ok := s.perPort[port]
	if !ok {
		f = NewFSM(port, s.matureAfter)
		s.perPort[port] = f
	}
	return f.Learn(msgs)
}

// Classify returns the FSM path identifier for a conversation, or
// ok=false when the conversation does not fully match the learned model.
func (s *Set) Classify(port int, msgs [][]byte) (string, bool) {
	f, ok := s.perPort[port]
	if !ok {
		return "", false
	}
	return f.Classify(msgs)
}

// Ports returns the ports with learned models, sorted.
func (s *Set) Ports() []int {
	out := make([]int, 0, len(s.perPort))
	for p := range s.perPort {
		out = append(out, p)
	}
	sort.Ints(out)
	return out
}

// FSM returns the model for one port, or nil.
func (s *Set) FSM(port int) *FSM {
	return s.perPort[port]
}
