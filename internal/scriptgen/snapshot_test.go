package scriptgen

import (
	"encoding/json"
	"testing"

	"repro/internal/exploit"
	"repro/internal/simrng"
)

// learnSet builds a Set with two matured implementations on one port and
// one on another.
func learnSet(t *testing.T) (*Set, []*exploit.Implementation) {
	t.Helper()
	implA := testImpl(t, "asn1", 445, 1, 2, "impl-a")
	implB := testImpl(t, "asn1", 445, 1, 3, "impl-b")
	implC := testImpl(t, "dcom", 135, 4, 5, "impl-c")
	r := simrng.New(20).Stream("snap")
	s := NewSet(3)
	for i := 0; i < 5; i++ {
		s.Learn(445, implA.Dialog(r, randPayload(r, 40+i)).ClientMessages())
		s.Learn(445, implB.Dialog(r, randPayload(r, 50+i)).ClientMessages())
		s.Learn(135, implC.Dialog(r, randPayload(r, 60+i)).ClientMessages())
	}
	return s, []*exploit.Implementation{implA, implB, implC}
}

func TestSnapshotRestoreClassifiesIdentically(t *testing.T) {
	s, impls := learnSet(t)
	snap := s.Snapshot(7)
	if snap.Version != 7 {
		t.Errorf("version = %d", snap.Version)
	}
	restored, err := RestoreSet(snap)
	if err != nil {
		t.Fatal(err)
	}
	r := simrng.New(21).Stream("probe")
	ports := []int{445, 445, 135}
	for i, impl := range impls {
		d := impl.Dialog(r, randPayload(r, 33+i)).ClientMessages()
		want, okWant := s.Classify(ports[i], d)
		got, okGot := restored.Classify(ports[i], d)
		if okWant != okGot || want != got {
			t.Errorf("impl %d: original %q/%v, restored %q/%v", i, want, okWant, got, okGot)
		}
		if !okGot {
			t.Errorf("impl %d not classified after restore", i)
		}
	}
}

func TestSnapshotExcludesBins(t *testing.T) {
	s, _ := learnSet(t)
	// One extra observation that does not mature.
	implD := testImpl(t, "asn1", 445, 1, 99, "impl-d")
	r := simrng.New(22).Stream("bins")
	s.Learn(445, implD.Dialog(r, nil).ClientMessages())

	restored, err := RestoreSet(s.Snapshot(1))
	if err != nil {
		t.Fatal(err)
	}
	if got := restored.FSM(445).PendingBins(); got != 0 {
		t.Errorf("restored FSM has %d bins, want 0", got)
	}
	if _, ok := restored.Classify(445, implD.Dialog(r, nil).ClientMessages()); ok {
		t.Error("immature activity must stay unclassifiable after restore")
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	s, impls := learnSet(t)
	snap := s.Snapshot(3)
	raw, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back SetSnapshot
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreSet(back)
	if err != nil {
		t.Fatal(err)
	}
	r := simrng.New(23).Stream("json")
	d := impls[0].Dialog(r, randPayload(r, 42)).ClientMessages()
	want, _ := s.Classify(445, d)
	got, ok := restored.Classify(445, d)
	if !ok || got != want {
		t.Errorf("after JSON round trip: %q/%v want %q", got, ok, want)
	}
}

func TestRestoreRejectsBadSnapshots(t *testing.T) {
	bad := FSMSnapshot{Port: 445, States: 1, Edges: []EdgeSnapshot{{From: 0, To: 0}}}
	if _, err := RestoreFSM(bad); err == nil {
		t.Error("self-loop edge must be rejected")
	}
	bad = FSMSnapshot{Port: 445, States: 1, Edges: []EdgeSnapshot{{From: 0, To: 5}}}
	if _, err := RestoreFSM(bad); err == nil {
		t.Error("state count mismatch must be rejected")
	}
	bad = FSMSnapshot{Port: 445, States: 2, Edges: []EdgeSnapshot{{From: -1, To: 1}}}
	if _, err := RestoreFSM(bad); err == nil {
		t.Error("negative state must be rejected")
	}
}

func TestEdgeCount(t *testing.T) {
	s, _ := learnSet(t)
	// 3 implementations x 3 stages... impl-c has 3 stages on its own port.
	if got := s.EdgeCount(); got < 6 {
		t.Errorf("EdgeCount = %d, want >= 6", got)
	}
	restored, err := RestoreSet(s.Snapshot(1))
	if err != nil {
		t.Fatal(err)
	}
	if restored.EdgeCount() != s.EdgeCount() {
		t.Errorf("edge counts differ: %d vs %d", restored.EdgeCount(), s.EdgeCount())
	}
}
