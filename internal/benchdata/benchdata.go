// Package benchdata generates the family-structured behavioral corpora
// shared by the LSH-vs-exact ablation (BenchmarkLSHvsExact) and the
// cmd/benchjson trajectory emitter, so both measure the same workload.
package benchdata

import (
	"fmt"

	"repro/internal/bcluster"
	"repro/internal/behavior"
	"repro/internal/simrng"
)

// Profiles builds n behavioral profiles spread over 25 families: 18
// shared core features per family plus 0–2 sample-specific noise
// features, the shape the enrichment pipeline produces on a healthy
// landscape. The corpus is deterministic in n.
func Profiles(n int) []bcluster.Input {
	r := simrng.New(99).Stream("bench-profiles")
	inputs := make([]bcluster.Input, 0, n)
	for i := 0; i < n; i++ {
		fam := i % 25
		p := behavior.NewProfile()
		for k := 0; k < 18; k++ {
			p.Add(fmt.Sprintf("fam%d-f%d", fam, k))
		}
		for k := 0; k < r.Intn(3); k++ {
			p.Add(fmt.Sprintf("s%d-x%d", i, k))
		}
		inputs = append(inputs, bcluster.Input{ID: fmt.Sprintf("s%05d", i), Profile: p})
	}
	return inputs
}

// LSHSizes and ExactSizes are the benchmark trajectory: the exact
// baseline stops at 2000 because its O(n²) comparison already costs
// ~100× the LSH run there, and 10k would dominate the smoke run.
var (
	LSHSizes   = []int{500, 2000, 10000}
	ExactSizes = []int{500, 2000}
)
