// Package benchdata generates the family-structured behavioral corpora
// shared by the LSH-vs-exact ablation (BenchmarkLSHvsExact) and the
// cmd/benchjson trajectory emitter, so both measure the same workload.
package benchdata

import (
	"fmt"
	"time"

	"repro/internal/bcluster"
	"repro/internal/behavior"
	"repro/internal/dataset"
	"repro/internal/pe"
	"repro/internal/simrng"
)

// Profiles builds n behavioral profiles spread over 25 families: 18
// shared core features per family plus 0–2 sample-specific noise
// features, the shape the enrichment pipeline produces on a healthy
// landscape. The corpus is deterministic in n.
func Profiles(n int) []bcluster.Input {
	noise := NoiseCounts(n)
	inputs := make([]bcluster.Input, 0, n)
	for i := 0; i < n; i++ {
		inputs = append(inputs, bcluster.Input{
			ID:      fmt.Sprintf("s%05d", i),
			Profile: ProfileOf(i, int(noise[i])),
		})
	}
	return inputs
}

// NoiseCounts returns the per-sample noise-feature counts of the
// Profiles(n) corpus: the only random input, precomputed so callers can
// rebuild any single profile on demand (ProfileOf) without holding the
// whole corpus alive. Deterministic in n and byte-identical to what
// Profiles draws.
func NoiseCounts(n int) []uint8 {
	r := simrng.New(99).Stream("bench-profiles")
	out := make([]uint8, n)
	for i := range out {
		// The draw sits in the loop condition on purpose: the historical
		// corpus re-rolled it every iteration, and the committed bench
		// baselines are measured against exactly that draw sequence.
		c := uint8(0)
		for k := 0; k < r.Intn(3); k++ {
			c++
		}
		out[i] = c
	}
	return out
}

// famFeatures caches the 18 core features of each of the 25 families:
// they are shared by every sample of the family, so on-demand profile
// construction (ProfileOf) only ever formats the 0–2 sample-specific
// noise features.
var famFeatures = func() [25][]string {
	var out [25][]string
	for fam := range out {
		for k := 0; k < 18; k++ {
			out[fam] = append(out[fam], fmt.Sprintf("fam%d-f%d", fam, k))
		}
	}
	return out
}()

// ProfileOf builds the behavioral profile of corpus sample i with the
// given noise-feature count (NoiseCounts(n)[i]).
func ProfileOf(i, noise int) *behavior.Profile {
	p := behavior.NewProfile()
	for _, f := range famFeatures[i%25] {
		p.Add(f)
	}
	for k := 0; k < noise; k++ {
		p.Add(fmt.Sprintf("s%d-x%d", i, k))
	}
	return p
}

// LSHSizes and ExactSizes are the benchmark trajectory: the exact
// baseline stops at 2000 because its O(n²) comparison already costs
// ~100× the LSH run there, and 10k would dominate the smoke run.
var (
	LSHSizes   = []int{500, 2000, 10000}
	ExactSizes = []int{500, 2000}
)

// StreamSizes is the ingest-throughput trajectory of the streaming
// service bench (samples per corpus; events run ~1.3× that). The 100k
// point records the flat-cost claim of the incremental epoch engine:
// ns/event must stay within 1.3× of the 10k point.
var StreamSizes = []int{1000, 10000, 100000}

// StreamEvents builds the ingest workload for the streaming-service
// throughput bench: one delivery event per Profiles(n) sample plus a 30%
// tail of repeat deliveries, time-ordered, with ε/π/μ values drawn from
// the sample's family so every EPM dimension forms patterns. The event
// stream is deterministic in n and references exactly the Profiles(n)
// sample IDs, so the two corpora pair up as enrichment input and output.
// ClientEvents builds a per-client ingest workload for the overload
// harness: n delivery events namespaced under the client name — event
// IDs "%s-ev%06d", sample MD5s "%s-smp%06d" — with the same
// family-structured PE and EPM shape as StreamEvents, so concurrent
// clients never collide on event IDs or samples while their traffic
// still forms patterns. Deterministic in (client, n).
func ClientEvents(client string, n int) []dataset.Event {
	r := simrng.New(99).Stream("loadgen-" + client)
	base := time.Date(2008, 3, 1, 0, 0, 0, 0, time.UTC)
	events := make([]dataset.Event, 0, n)
	for i := 0; i < n; i++ {
		fam := i % 25
		events = append(events, dataset.Event{
			ID:          fmt.Sprintf("%s-ev%06d", client, i),
			Time:        base.Add(time.Duration(i) * time.Second),
			Attacker:    fmt.Sprintf("198.51.%d.%d", r.Intn(4), r.Intn(250)),
			Sensor:      fmt.Sprintf("192.0.2.%d", r.Intn(120)),
			FSMPath:     fmt.Sprintf("445:s%d", fam%5),
			DestPort:    445,
			Protocol:    []string{"csend", "ftp", "http"}[fam%3],
			Filename:    fmt.Sprintf("drop%d.exe", fam%4),
			PayloadPort: 9000 + fam%6,
			Interaction: "PUSH",
			Sample: pe.Features{
				MD5:             fmt.Sprintf("%s-smp%06d", client, i),
				Size:            20000 + fam*512,
				Magic:           pe.MagicPEGUI,
				IsPE:            true,
				MachineType:     332,
				NumSections:     3 + fam%3,
				NumImportedDLLs: 2 + fam%4,
				OSVersion:       40,
				LinkerVersion:   60 + fam%2,
				SectionNames:    fmt.Sprintf(".text,.data,.fam%d", fam),
				ImportedDLLs:    fmt.Sprintf("kernel32.dll,ws2_32.dll,fam%d.dll", fam%7),
				Kernel32Symbols: "CreateFileA,WriteFile",
			},
			DownloadOutcome: "ok",
		})
	}
	return events
}

func StreamEvents(n int) []dataset.Event {
	r := simrng.New(99).Stream("bench-events")
	base := time.Date(2008, 3, 1, 0, 0, 0, 0, time.UTC)
	total := n + n*3/10
	events := make([]dataset.Event, 0, total)
	mk := func(i, sample int) dataset.Event {
		fam := sample % 25
		return dataset.Event{
			ID:          fmt.Sprintf("bev%06d", i),
			Time:        base.Add(time.Duration(i) * time.Second),
			Attacker:    fmt.Sprintf("198.51.%d.%d", r.Intn(4), r.Intn(250)),
			Sensor:      fmt.Sprintf("192.0.2.%d", r.Intn(120)),
			FSMPath:     fmt.Sprintf("445:s%d", fam%5),
			DestPort:    445,
			Protocol:    []string{"csend", "ftp", "http"}[fam%3],
			Filename:    fmt.Sprintf("drop%d.exe", fam%4),
			PayloadPort: 9000 + fam%6,
			Interaction: "PUSH",
			Sample: pe.Features{
				MD5:             fmt.Sprintf("s%05d", sample),
				Size:            20000 + fam*512,
				Magic:           pe.MagicPEGUI,
				IsPE:            true,
				MachineType:     332,
				NumSections:     3 + fam%3,
				NumImportedDLLs: 2 + fam%4,
				OSVersion:       40,
				LinkerVersion:   60 + fam%2,
				SectionNames:    fmt.Sprintf(".text,.data,.fam%d", fam),
				ImportedDLLs:    fmt.Sprintf("kernel32.dll,ws2_32.dll,fam%d.dll", fam%7),
				Kernel32Symbols: "CreateFileA,WriteFile",
			},
			DownloadOutcome: "ok",
		}
	}
	for i := 0; i < n; i++ {
		events = append(events, mk(i, i))
	}
	for i := n; i < total; i++ {
		events = append(events, mk(i, r.Intn(n)))
	}
	return events
}
