// Package chaos is the disk-fault soak harness behind `make
// smoke-chaos`: it drives a durable stream.Service through seeded
// faultfs schedules — transient and permanent write EIO, torn writes,
// ENOSPC, fsync and rename failures — restarting the service the way an
// operator restarts a degraded process, and hands the survivor back so
// the caller can assert its views are byte-identical to a clean run.
//
// The schedules are write-side only. Write-path faults can only lose
// work the service never acknowledged (a failed append surfaces before
// the batch is applied), so recovery equivalence is provable. Read-side
// faults (bit flips, read EIO) are detection problems — the scrubber,
// the shipping reader, and -wal-verify own those — and injecting them
// under recovery would fault the prover, not the system under test.
package chaos

import (
	"context"
	"fmt"
	"time"

	"repro/internal/behavior"
	"repro/internal/dataset"
	"repro/internal/faultfs"
	"repro/internal/pe"
	"repro/internal/stream"
)

// Enricher labels every sample deterministically and emits one
// synthetic behavior set per truth variant, so equivalence across runs
// is exact.
type Enricher struct{}

// LabelSample implements stream.Enricher.
func (Enricher) LabelSample(s *dataset.Sample) error {
	s.AVLabel = "Chaos." + s.TruthVariant
	return nil
}

// ExecuteSample implements stream.Enricher.
func (Enricher) ExecuteSample(s *dataset.Sample) (*behavior.Profile, bool, error) {
	p := behavior.NewProfile()
	for k := 0; k < 10; k++ {
		p.Add(fmt.Sprintf("%s-beh%d", s.TruthVariant, k))
	}
	return p, false, nil
}

// Corpus builds n deterministic well-formed events across three truth
// variants; the same n always yields the same corpus.
func Corpus(n int) []dataset.Event {
	epoch := time.Date(2008, 1, 1, 0, 0, 0, 0, time.UTC)
	out := make([]dataset.Event, 0, n)
	for i := 0; i < n; i++ {
		variant := fmt.Sprintf("v%d", i%3)
		out = append(out, dataset.Event{
			ID:          fmt.Sprintf("chaos%05d", i),
			Time:        epoch.Add(time.Duration(i) * time.Minute),
			Attacker:    fmt.Sprintf("10.1.%d.%d", i%5, i%13),
			Sensor:      fmt.Sprintf("s%d", i%7),
			FSMPath:     fmt.Sprintf("fsm-%d", i%3),
			DestPort:    445,
			Protocol:    "ftp",
			Filename:    "a.exe",
			PayloadPort: 33333,
			Interaction: "push",
			Sample: pe.Features{
				MD5:         fmt.Sprintf("md5-%s-%d", variant, i%4),
				IsPE:        true,
				Magic:       pe.MagicPEGUI,
				NumSections: 3,
			},
			DownloadOutcome: "ok",
			TruthVariant:    variant,
		})
	}
	return out
}

// Schedule is one seeded fault configuration.
type Schedule struct {
	Name string
	Cfg  faultfs.Config
}

// Schedules derives n distinct write-side fault schedules from a base
// seed, cycling a set of failure profiles so the sweep covers transient
// EIO, torn writes, ENOSPC, fsync failures, rename failures, and
// metadata-op failures. Every schedule carries a fault budget
// (MaxFaults) so a retrying caller always converges.
func Schedules(base int64, n int) []Schedule {
	profiles := []struct {
		name string
		cfg  faultfs.Config
	}{
		{"write-eio", faultfs.Config{WriteErr: 0.08, SyncErr: 0.05}},
		{"torn-writes", faultfs.Config{WriteTorn: 0.08, SyncErr: 0.04}},
		{"enospc", faultfs.Config{WriteENOSPC: 0.08, WriteErr: 0.03}},
		{"rename-meta", faultfs.Config{RenameErr: 0.2, MetaErr: 0.02, WriteErr: 0.03}},
		{"mixed", faultfs.Config{WriteErr: 0.04, WriteTorn: 0.04, SyncErr: 0.04, RenameErr: 0.06, MetaErr: 0.01}},
	}
	out := make([]Schedule, 0, n)
	for i := 0; i < n; i++ {
		p := profiles[i%len(profiles)]
		cfg := p.cfg
		cfg.Seed = base + int64(i)
		cfg.MaxFaults = 6
		out = append(out, Schedule{Name: fmt.Sprintf("%s-seed%d", p.name, cfg.Seed), Cfg: cfg})
	}
	return out
}

// Result is one soak run's ledger.
type Result struct {
	// Restarts counts service teardowns forced by a failed write or a
	// failed recovery attempt.
	Restarts int
	// Refeeds counts batches that had to be fed again after a restart.
	Refeeds int
	// Faults is the injector's final ledger.
	Faults faultfs.Stats
}

// maxAttempts bounds restart/retry loops; MaxFaults makes every
// schedule converge long before this, so hitting it means the service
// stopped healing.
const maxAttempts = 100

// Soak feeds events through a durable service in batchSize batches
// under cfg's fault injector, flushing after every batch so write
// failures surface immediately. A failed batch triggers the operator
// move — tear the process down, recover from checkpoint + WAL, feed the
// batch again — and the dataset-level dedup makes refeeding a batch
// whose append actually survived a no-op. Returns the final service
// (caller closes it) and the run ledger.
func Soak(cfg stream.Config, inj *faultfs.Faulty, events []dataset.Event, batchSize int) (final *stream.Service, res Result, err error) {
	ctx := context.Background()
	if inj != nil {
		defer func() { res.Faults = inj.Stats() }()
	}
	boot := func() (*stream.Service, error) {
		var last error
		for a := 0; a < maxAttempts; a++ {
			svc, err := stream.New(cfg, Enricher{})
			if err == nil {
				return svc, nil
			}
			// Recovery itself drew a fault; retry until the budget runs
			// out and the disk behaves.
			last = err
			res.Restarts++
		}
		return nil, fmt.Errorf("chaos: recovery never converged: %w", last)
	}
	svc, err := boot()
	if err != nil {
		return nil, res, err
	}
	for lo := 0; lo < len(events); lo += batchSize {
		hi := lo + batchSize
		if hi > len(events) {
			hi = len(events)
		}
		for attempt := 0; ; attempt++ {
			ferr := svc.Ingest(ctx, events[lo:hi])
			if ferr == nil {
				ferr = svc.Flush(ctx)
			}
			if ferr == nil {
				break
			}
			if attempt >= maxAttempts {
				svc.Close()
				return nil, res, fmt.Errorf("chaos: batch %d-%d never landed: %w", lo, hi, ferr)
			}
			// The operator restart: degraded (or merely failed) writes
			// mean tear down, recover from disk, feed the batch again.
			svc.Close()
			res.Restarts++
			res.Refeeds++
			if svc, err = boot(); err != nil {
				return nil, res, err
			}
		}
	}
	return svc, res, nil
}
