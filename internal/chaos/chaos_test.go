package chaos

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/faultfs"
	"repro/internal/stream"
)

// landscape snapshots the comparable state: stable-ID EPM views and the
// B membership partition. Storage/WAL counters are process history, not
// landscape state, and legitimately differ under faults.
type landscape struct {
	epm map[string]stream.EPMView
	b   [][]string
}

func snapshot(t *testing.T, svc *stream.Service) landscape {
	t.Helper()
	l := landscape{epm: map[string]stream.EPMView{}}
	for _, dim := range []string{"epsilon", "pi", "mu"} {
		v, err := svc.EPMClusters(dim)
		if err != nil {
			t.Fatal(err)
		}
		l.epm[dim] = v
	}
	for _, c := range svc.BResult().Clusters {
		l.b = append(l.b, c.Members)
	}
	return l
}

func chaosConfig(dir string, inj *faultfs.Faulty) stream.Config {
	cfg := stream.DefaultConfig()
	cfg.EpochSize = 8
	cfg.Durability = stream.Durability{
		Dir:             dir,
		CheckpointEvery: 2,
		NoSync:          true,
		Generations:     2,
		FS:              inj,
	}
	return cfg
}

// TestChaosSoakByteIdentical is the tentpole soak gate: >=20 seeded
// write-side fault schedules, each driving ingest through injected
// failures and operator restarts, and each required to converge on EPM
// views and a B partition byte-identical to one clean uninterrupted
// run. Every schedule must actually inject faults — a soak that drew no
// failures proves nothing.
func TestChaosSoakByteIdentical(t *testing.T) {
	events := Corpus(160)
	const batchSize = 8

	clean, err := stream.New(stream.Config(func() stream.Config {
		c := stream.DefaultConfig()
		c.EpochSize = 8
		return c
	}()), Enricher{})
	if err != nil {
		t.Fatal(err)
	}
	defer clean.Close()
	ctx := context.Background()
	for lo := 0; lo < len(events); lo += batchSize {
		if err := clean.Ingest(ctx, events[lo:lo+batchSize]); err != nil {
			t.Fatal(err)
		}
		if err := clean.Flush(ctx); err != nil {
			t.Fatal(err)
		}
	}
	want := snapshot(t, clean)

	totalFaults, totalRestarts := 0, 0
	for _, sched := range Schedules(1, 20) {
		sched := sched
		t.Run(sched.Name, func(t *testing.T) {
			inj := faultfs.New(nil, sched.Cfg)
			svc, res, err := Soak(chaosConfig(t.TempDir(), inj), inj, events, batchSize)
			if err != nil {
				t.Fatalf("soak: %v (ledger %+v)", err, res)
			}
			defer svc.Close()
			got := snapshot(t, svc)
			if !reflect.DeepEqual(got.epm, want.epm) {
				t.Fatalf("EPM views diverged after %d faults / %d restarts", res.Faults.Total, res.Restarts)
			}
			if !reflect.DeepEqual(got.b, want.b) {
				t.Fatalf("B partition diverged after %d faults / %d restarts", res.Faults.Total, res.Restarts)
			}
			if res.Faults.Total == 0 {
				t.Fatalf("schedule injected no faults; ops: %+v", res.Faults.Ops)
			}
			if st := svc.Stats(); st.Events != len(events) {
				t.Fatalf("survivor holds %d events, want %d", st.Events, len(events))
			}
			totalFaults += res.Faults.Total
			totalRestarts += res.Restarts
		})
	}
	t.Logf("soak: %d faults injected, %d restarts across 20 schedules", totalFaults, totalRestarts)
}

// TestSchedulesDistinct pins the sweep shape: the requested count, all
// names distinct, every schedule seeded differently and fault-budgeted.
func TestSchedulesDistinct(t *testing.T) {
	scheds := Schedules(100, 25)
	if len(scheds) != 25 {
		t.Fatalf("%d schedules, want 25", len(scheds))
	}
	names := map[string]bool{}
	seeds := map[int64]bool{}
	for _, s := range scheds {
		if names[s.Name] || seeds[s.Cfg.Seed] {
			t.Fatalf("duplicate schedule %q / seed %d", s.Name, s.Cfg.Seed)
		}
		names[s.Name] = true
		seeds[s.Cfg.Seed] = true
		if s.Cfg.MaxFaults <= 0 {
			t.Fatalf("schedule %q has no fault budget", s.Name)
		}
	}
}

// TestCorpusDeterministic pins the corpus: same n, same bytes.
func TestCorpusDeterministic(t *testing.T) {
	a, b := Corpus(50), Corpus(50)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("corpus is not deterministic")
	}
	if fmt.Sprint(a[0].ID) != "chaos00000" {
		t.Fatalf("unexpected corpus head %q", a[0].ID)
	}
}
