// Package sgnet simulates the SGNET distributed honeypot deployment
// observing the generated malware landscape.
//
// The simulation reproduces the observation pipeline of the real system:
// infected populations scan the Internet and hit sensor addresses; each
// hit plays a full exploit dialog against the sensor; sensors model the
// conversation with ScriptGen-learned FSMs, proxying unknown activity to a
// sample-factory oracle until the model matures; the taint oracle locates
// the injected payload; Nepenthes-style shellcode analysis recovers the
// download instructions; download emulation (with realistic failure
// injection) stores the malware bytes; and static feature extraction fills
// the μ facts of the event record. Every observable in the resulting
// dataset is derived through this pipeline — never copied from ground
// truth.
package sgnet

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/dataset"
	"repro/internal/download"
	"repro/internal/exploit"
	"repro/internal/malgen"
	"repro/internal/netmodel"
	"repro/internal/pe"
	"repro/internal/pehash"
	"repro/internal/polymorph"
	"repro/internal/scriptgen"
	"repro/internal/shellcode"
	"repro/internal/simrng"
	"repro/internal/simtime"
)

// Config parameterizes the deployment.
type Config struct {
	// Locations is the number of monitored network locations (the paper's
	// deployment spans 30).
	Locations int
	// SensorsPerLocation is the number of monitored addresses per location
	// (30 x 5 = the paper's 150 IPs).
	SensorsPerLocation int
	// MatureAfter is the ScriptGen exemplar threshold before an FSM edge
	// generalizes.
	MatureAfter int
	// Failure models Nepenthes download-module failures; the paper
	// attributes 6353-5165 non-executable samples to them.
	Failure shellcode.FailureModel
}

// DefaultConfig matches the paper's deployment scale.
func DefaultConfig() Config {
	return Config{
		Locations:          30,
		SensorsPerLocation: 5,
		MatureAfter:        scriptgen.DefaultMatureAfter,
		Failure:            shellcode.FailureModel{TruncateProb: 0.14, FailProb: 0.02},
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Locations <= 0 || c.SensorsPerLocation <= 0 {
		return fmt.Errorf("sgnet: deployment sizes must be positive, got %d x %d", c.Locations, c.SensorsPerLocation)
	}
	if c.Failure.TruncateProb < 0 || c.Failure.FailProb < 0 ||
		c.Failure.TruncateProb+c.Failure.FailProb > 1 {
		return fmt.Errorf("sgnet: invalid failure model %+v", c.Failure)
	}
	return nil
}

// Stats summarize a simulation run.
type Stats struct {
	// Hits is the total number of code-injection attacks observed.
	Hits int
	// Proxied counts conversations that required the sample-factory
	// oracle (FSM not yet matured).
	Proxied int
	// Unclassified counts events whose final conversation never matched a
	// matured FSM path.
	Unclassified int
	// Downloads tallies outcomes.
	DownloadsOK        int
	DownloadsTruncated int
	DownloadsFailed    int
	// ShellcodeErrors counts payloads the Nepenthes analyzer rejected.
	ShellcodeErrors int
}

// Result is a completed simulation.
type Result struct {
	Dataset    *dataset.Dataset
	Deployment *netmodel.Deployment
	// FSMs holds the learned models when the simulation used the
	// in-process observer; it is nil under a custom EpsilonObserver.
	FSMs  *scriptgen.Set
	Stats Stats
}

// EpsilonObserver abstracts who learns protocol models and classifies
// conversations: the in-process FSM set (monolithic simulation) or a
// distributed deployment of sensors and a gateway (package sgnetd).
type EpsilonObserver interface {
	// Observe handles one conversation during the observation pass;
	// sensor identifies the attacked honeypot address. It reports whether
	// the conversation had to be proxied to an oracle.
	Observe(sensor string, port int, msgs [][]byte) (proxied bool, err error)
	// Finalize runs after the observation pass, before classification
	// (e.g. a final FSM snapshot sync).
	Finalize() error
	// Classify resolves the final FSM path of a conversation.
	Classify(port int, msgs [][]byte) (path string, ok bool, err error)
}

// localObserver is the in-process implementation backed by scriptgen.
type localObserver struct {
	set *scriptgen.Set
}

func (lo *localObserver) Observe(_ string, port int, msgs [][]byte) (bool, error) {
	return lo.set.Learn(port, msgs).Proxied, nil
}

func (lo *localObserver) Finalize() error { return nil }

func (lo *localObserver) Classify(port int, msgs [][]byte) (string, bool, error) {
	path, ok := lo.set.Classify(port, msgs)
	return path, ok, nil
}

// referenceSensors is the monitored-address count the landscape's hit
// rates are calibrated for (the paper's deployment: 150 IPs). Larger or
// smaller deployments observe proportionally more or fewer attacks.
const referenceSensors = 150

// hit is one scheduled attack before observation.
type hit struct {
	at       time.Time
	variant  *malgen.Variant
	family   *malgen.Family
	attacker netmodel.IP
	sensor   netmodel.IP
	seq      int
}

// Simulate runs the deployment over the full study period with the
// in-process FSM observer.
func Simulate(l *malgen.Landscape, cfg Config, rng *simrng.Source) (*Result, error) {
	return SimulateWith(l, cfg, rng, nil)
}

// SimulateWith runs the deployment with a custom EpsilonObserver; a nil
// observer selects the in-process FSM models.
func SimulateWith(l *malgen.Landscape, cfg Config, rng *simrng.Source, obs EpsilonObserver) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if l == nil || len(l.Families) == 0 {
		return nil, fmt.Errorf("sgnet: empty landscape")
	}
	deployRng := rng.Stream("deployment")
	deployment, err := netmodel.NewDeployment(deployRng, cfg.Locations, cfg.SensorsPerLocation)
	if err != nil {
		return nil, err
	}

	hits := schedule(l, deployment, rng)
	res := &Result{
		Dataset:    dataset.New(),
		Deployment: deployment,
	}
	if obs == nil {
		local := &localObserver{set: scriptgen.NewSet(cfg.MatureAfter)}
		res.FSMs = local.set
		obs = local
	}
	res.Stats.Hits = len(hits)

	// Pass 1: observe each attack in chronological order, learning FSMs
	// online and recording everything needed to assemble the events.
	type observed struct {
		hit      hit
		port     int
		clients  [][]byte
		action   shellcode.Action
		actionOK bool
		outcome  shellcode.DownloadOutcome
		features pe.Features
		peHash   string
	}
	evRng := rng.Stream("events")
	observations := make([]observed, 0, len(hits))
	var instance uint64
	for _, h := range hits {
		instance++
		payload, err := shellcode.Encode(h.family.Spec, h.attacker, evRng)
		if err != nil {
			return nil, fmt.Errorf("sgnet: encoding shellcode for %s: %w", h.variant.Name, err)
		}
		dialog := h.family.Impl.Dialog(evRng, payload)
		clients := dialog.ClientMessages()
		proxied, err := obs.Observe(h.sensor.String(), dialog.Port, clients)
		if err != nil {
			return nil, fmt.Errorf("sgnet: observing conversation for %s: %w", h.variant.Name, err)
		}
		if proxied {
			res.Stats.Proxied++
		}

		ob := observed{hit: h, port: dialog.Port, clients: clients}

		// Taint oracle + shellcode analysis.
		if injected := exploit.ExtractPayload(dialog); injected != nil {
			if action, err := shellcode.Analyze(injected); err == nil {
				ob.action = action
				ob.actionOK = true
			} else {
				res.Stats.ShellcodeErrors++
			}
		} else {
			res.Stats.ShellcodeErrors++
		}

		// Malware transfer.
		if ob.actionOK {
			raw, err := h.variant.Engine.Mutate(h.variant.Template, polymorphContext(h.attacker, instance))
			if err != nil {
				return nil, fmt.Errorf("sgnet: mutating %s: %w", h.variant.Name, err)
			}
			stored, transcript, err := download.Run(ob.action, raw, cfg.Failure, evRng)
			if err != nil {
				return nil, fmt.Errorf("sgnet: transferring %s: %w", h.variant.Name, err)
			}
			outcome := transcript.Outcome
			ob.outcome = outcome
			switch outcome {
			case shellcode.DownloadOK:
				res.Stats.DownloadsOK++
			case shellcode.DownloadTruncated:
				res.Stats.DownloadsTruncated++
			case shellcode.DownloadFailed:
				res.Stats.DownloadsFailed++
			}
			if outcome != shellcode.DownloadFailed {
				ob.features = pe.ExtractFeatures(stored)
				if hv, ok := pehash.Hash(stored); ok {
					ob.peHash = hv
				}
			}
		} else {
			ob.outcome = shellcode.DownloadFailed
			res.Stats.DownloadsFailed++
		}
		observations = append(observations, ob)
	}

	// Pass 2: classify every conversation against the final FSM models and
	// assemble the dataset. Events whose conversation never matured get a
	// unique placeholder path, which can never become an EPM invariant —
	// exactly the behaviour of rare activity in the real system.
	if err := obs.Finalize(); err != nil {
		return nil, fmt.Errorf("sgnet: finalizing observer: %w", err)
	}
	for i, ob := range observations {
		id := fmt.Sprintf("ev-%06d", i)
		path, ok, err := obs.Classify(ob.port, ob.clients)
		if err != nil {
			return nil, fmt.Errorf("sgnet: classifying event %s: %w", id, err)
		}
		if !ok {
			path = "unmatched:" + id
			res.Stats.Unclassified++
		}
		e := dataset.Event{
			ID:              id,
			Time:            ob.hit.at,
			Attacker:        ob.hit.attacker.String(),
			Sensor:          ob.hit.sensor.String(),
			SensorLocation:  deployment.LocationOf(ob.hit.sensor),
			FSMPath:         path,
			DestPort:        ob.port,
			DownloadOutcome: ob.outcome.String(),
			Sample:          ob.features,
			PEHash:          ob.peHash,
			TruthFamily:     ob.hit.family.Name,
			TruthVariant:    ob.hit.variant.Name,
		}
		if ob.actionOK {
			e.Protocol = ob.action.Protocol
			e.Filename = ob.action.Filename
			e.PayloadPort = ob.action.Port
			e.Interaction = ob.action.Interaction.String()
		} else {
			e.Protocol = "unknown"
			e.Interaction = "unknown"
		}
		if err := res.Dataset.AddEvent(e); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// polymorphContext adapts a hit to the engine context.
func polymorphContext(attacker netmodel.IP, instance uint64) polymorph.Context {
	return polymorph.Context{Source: attacker, Instance: instance}
}

// schedule samples the attack arrivals of every variant over its activity
// windows.
func schedule(l *malgen.Landscape, deployment *netmodel.Deployment, rng *simrng.Source) []hit {
	famOf := make(map[string]*malgen.Family, len(l.Families))
	for _, f := range l.Families {
		famOf[f.Name] = f
	}
	r := rng.Stream("schedule")
	coverage := float64(len(deployment.Sensors())) / referenceSensors
	var hits []hit
	seq := 0
	for _, v := range l.Variants() {
		fam := famOf[v.FamilyName]
		// Targeted variants (bots) scan a fixed subset of deployment
		// locations; untargeted ones sweep every monitored address.
		pool := deployment.Sensors()
		if v.TargetLocations > 0 && v.TargetLocations < len(deployment.Locations()) {
			pool = nil
			for _, li := range simrng.SampleWithoutReplacement(r, len(deployment.Locations()), v.TargetLocations) {
				pool = append(pool, deployment.Locations()[li].Sensors...)
			}
		}
		for _, window := range v.Activity {
			for _, week := range window.Weeks() {
				n := simrng.Poisson(r, v.WeeklyRate*coverage)
				for k := 0; k < n; k++ {
					at := simtime.WeekStart(week).Add(time.Duration(r.Int63n(int64(simtime.Week))))
					if !window.Contains(at) || !simtime.InStudy(at) {
						continue
					}
					hits = append(hits, hit{
						at:       at,
						variant:  v,
						family:   fam,
						attacker: v.Population.RandomHost(r),
						sensor:   pool[r.Intn(len(pool))],
						seq:      seq,
					})
					seq++
				}
			}
		}
	}
	sort.Slice(hits, func(a, b int) bool {
		if !hits[a].at.Equal(hits[b].at) {
			return hits[a].at.Before(hits[b].at)
		}
		return hits[a].seq < hits[b].seq
	})
	return hits
}
