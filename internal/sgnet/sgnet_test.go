package sgnet

import (
	"strings"
	"testing"

	"repro/internal/malgen"
	"repro/internal/shellcode"
	"repro/internal/simrng"
	"repro/internal/simtime"
)

func simulate(t *testing.T, seed uint64) (*malgen.Landscape, *Result) {
	t.Helper()
	rng := simrng.New(seed)
	l, err := malgen.Generate(malgen.SmallConfig(), rng.Child("landscape"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(l, DefaultConfig(), rng.Child("sgnet"))
	if err != nil {
		t.Fatal(err)
	}
	return l, res
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Error(err)
	}
	bad := DefaultConfig()
	bad.Locations = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero locations must error")
	}
	bad = DefaultConfig()
	bad.Failure = shellcode.FailureModel{TruncateProb: 0.9, FailProb: 0.5}
	if err := bad.Validate(); err == nil {
		t.Error("failure probs summing over 1 must error")
	}
}

func TestSimulateRejectsEmptyLandscape(t *testing.T) {
	if _, err := Simulate(nil, DefaultConfig(), simrng.New(1)); err == nil {
		t.Error("nil landscape must error")
	}
	if _, err := Simulate(&malgen.Landscape{}, DefaultConfig(), simrng.New(1)); err == nil {
		t.Error("empty landscape must error")
	}
}

func TestSimulateProducesEvents(t *testing.T) {
	_, res := simulate(t, 1)
	ds := res.Dataset
	if ds.EventCount() < 200 {
		t.Fatalf("events = %d, want a substantial stream", ds.EventCount())
	}
	if res.Stats.Hits != ds.EventCount() {
		t.Errorf("hits %d != events %d", res.Stats.Hits, ds.EventCount())
	}
	if ds.SampleCount() == 0 {
		t.Fatal("no samples collected")
	}
	if got := len(res.Deployment.Sensors()); got != 150 {
		t.Errorf("sensors = %d", got)
	}
}

func TestEventsChronological(t *testing.T) {
	_, res := simulate(t, 2)
	events := res.Dataset.Events()
	for i := 1; i < len(events); i++ {
		if events[i].Time.Before(events[i-1].Time) {
			t.Fatalf("events out of order at %d", i)
		}
	}
	for _, e := range events {
		if !simtime.InStudy(e.Time) {
			t.Fatalf("event %s outside study window: %v", e.ID, e.Time)
		}
	}
}

func TestObservablesDerivedFromPipeline(t *testing.T) {
	l, res := simulate(t, 3)
	events := res.Dataset.Events()

	worm := l.Families[0]
	sawWormPush := false
	for _, e := range events {
		if e.TruthFamily != worm.Name {
			continue
		}
		// The pi facts must come from the Nepenthes analyzer, matching the
		// ground-truth spec.
		if e.Protocol != "csend" || e.Interaction != "PUSH" || e.PayloadPort != malgen.WormPushPort {
			t.Fatalf("worm event %s pi facts = %s/%s/%d", e.ID, e.Protocol, e.Interaction, e.PayloadPort)
		}
		if e.DestPort != 445 {
			t.Fatalf("worm event %s dest port = %d", e.ID, e.DestPort)
		}
		sawWormPush = true
	}
	if !sawWormPush {
		t.Fatal("no worm events observed")
	}
	if res.Stats.ShellcodeErrors != 0 {
		t.Errorf("shellcode errors = %d", res.Stats.ShellcodeErrors)
	}
}

func TestWormSamplesArePolymorphic(t *testing.T) {
	l, res := simulate(t, 4)
	worm := l.Families[0]
	md5s := map[string]int{}
	okEvents := 0
	for _, e := range res.Dataset.Events() {
		if e.TruthFamily != worm.Name || e.DownloadOutcome != "ok" {
			continue
		}
		okEvents++
		md5s[e.Sample.MD5]++
	}
	if okEvents == 0 {
		t.Fatal("no successful worm downloads")
	}
	if len(md5s) != okEvents {
		t.Errorf("worm MD5s = %d for %d events; per-instance polymorphism must make them unique", len(md5s), okEvents)
	}
}

func TestPerSourceSamplesKeyedByAttacker(t *testing.T) {
	_, res := simulate(t, 5)
	byAttacker := map[string]map[string]bool{}
	for _, e := range res.Dataset.Events() {
		if e.TruthFamily != malgen.PerSourceFamilyName || e.DownloadOutcome != "ok" {
			continue
		}
		if byAttacker[e.Attacker] == nil {
			byAttacker[e.Attacker] = map[string]bool{}
		}
		byAttacker[e.Attacker][e.Sample.MD5] = true
	}
	if len(byAttacker) < 3 {
		t.Skip("too few per-source attackers in small scenario")
	}
	allMD5s := map[string]bool{}
	for attacker, md5s := range byAttacker {
		if len(md5s) != 1 {
			t.Errorf("attacker %s shipped %d distinct MD5s, want 1", attacker, len(md5s))
		}
		for m := range md5s {
			allMD5s[m] = true
		}
	}
	if len(allMD5s) < 2 {
		t.Error("different attackers must ship different MD5s")
	}
}

func TestFSMPathsSeparateImplementations(t *testing.T) {
	l, res := simulate(t, 6)
	pathsByImpl := map[string]map[string]bool{}
	for _, e := range res.Dataset.Events() {
		if strings.HasPrefix(e.FSMPath, "unmatched:") {
			continue
		}
		fam := familyOf(l, e.TruthFamily)
		if fam == nil {
			t.Fatalf("unknown truth family %q", e.TruthFamily)
		}
		implName := fam.Impl.Name
		if pathsByImpl[implName] == nil {
			pathsByImpl[implName] = map[string]bool{}
		}
		pathsByImpl[implName][e.FSMPath] = true
	}
	// Families sharing an implementation (worm + per-source) must share
	// FSM paths; distinct implementations must not collide.
	seen := map[string]string{}
	for impl, paths := range pathsByImpl {
		if len(paths) != 1 {
			t.Errorf("impl %s maps to %d FSM paths, want 1", impl, len(paths))
			continue
		}
		for p := range paths {
			if other, ok := seen[p]; ok {
				t.Errorf("implementations %s and %s share FSM path %s", impl, other, p)
			}
			seen[p] = impl
		}
	}
	if len(pathsByImpl) < 3 {
		t.Errorf("only %d implementations classified", len(pathsByImpl))
	}
}

func familyOf(l *malgen.Landscape, name string) *malgen.Family {
	for _, f := range l.Families {
		if f.Name == name {
			return f
		}
	}
	return nil
}

func TestDownloadFailureInjection(t *testing.T) {
	_, res := simulate(t, 7)
	s := res.Stats
	total := s.DownloadsOK + s.DownloadsTruncated + s.DownloadsFailed
	if total != s.Hits {
		t.Fatalf("download outcomes %d != hits %d", total, s.Hits)
	}
	truncRate := float64(s.DownloadsTruncated) / float64(total)
	if truncRate < 0.10 || truncRate > 0.25 {
		t.Errorf("truncation rate = %.3f, want ~0.17", truncRate)
	}
	// Truncated samples must exist and be non-executable.
	ds := res.Dataset
	if ds.ExecutableSampleCount() >= ds.SampleCount() {
		t.Error("some samples must be non-executable")
	}
	// In the small scenario non-polymorphic families collapse their OK
	// downloads into a single MD5 while every truncated download stays
	// unique, so the executable ratio sits below the paper's 0.81; the
	// full-scale ratio is validated by the experiments harness.
	ratio := float64(ds.ExecutableSampleCount()) / float64(ds.SampleCount())
	if ratio < 0.4 || ratio > 0.95 {
		t.Errorf("executable ratio = %.2f out of plausible range", ratio)
	}
}

func TestSimulationDeterminism(t *testing.T) {
	_, a := simulate(t, 42)
	_, b := simulate(t, 42)
	if a.Dataset.EventCount() != b.Dataset.EventCount() {
		t.Fatalf("event counts differ: %d vs %d", a.Dataset.EventCount(), b.Dataset.EventCount())
	}
	ea, eb := a.Dataset.Events(), b.Dataset.Events()
	for i := range ea {
		if ea[i].ID != eb[i].ID || ea[i].Sample.MD5 != eb[i].Sample.MD5 ||
			ea[i].FSMPath != eb[i].FSMPath || ea[i].Attacker != eb[i].Attacker {
			t.Fatalf("event %d differs across identical runs", i)
		}
	}
}

func TestProxyingDecreases(t *testing.T) {
	// The FSM must take over: proxied conversations must be a small
	// fraction of total traffic once models mature.
	_, res := simulate(t, 8)
	frac := float64(res.Stats.Proxied) / float64(res.Stats.Hits)
	if frac > 0.5 {
		t.Errorf("proxied fraction = %.2f; FSM learning is not taking over", frac)
	}
	if res.Stats.Proxied == 0 {
		t.Error("initial conversations must require the oracle")
	}
}
