package julisch

import (
	"fmt"
	"testing"
)

func attrs2() []Attribute {
	return []Attribute{
		{Name: "port", Hierarchy: Hierarchy{
			"21": "privileged", "80": "privileged", "445": "privileged",
			"9988": "unprivileged", "5554": "unprivileged",
		}},
		{Name: "proto"},
	}
}

func mkInstances(prefix string, n int, values ...string) []Instance {
	out := make([]Instance, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, Instance{ID: fmt.Sprintf("%s-%02d", prefix, i), Values: values})
	}
	return out
}

func TestHierarchyParentAndDepth(t *testing.T) {
	h := Hierarchy{"445": "privileged"}
	if h.Parent("445") != "privileged" {
		t.Error("parent of 445")
	}
	if h.Parent("privileged") != Any {
		t.Error("parent of privileged must be Any")
	}
	if h.Parent(Any) != Any {
		t.Error("parent of Any must be Any")
	}
	if h.Depth("445") != 2 || h.Depth("privileged") != 1 || h.Depth(Any) != 0 {
		t.Errorf("depths: %d %d %d", h.Depth("445"), h.Depth("privileged"), h.Depth(Any))
	}
	var nilH Hierarchy
	if nilH.Parent("x") != Any || nilH.Depth("x") != 1 {
		t.Error("nil hierarchy must generalize to Any in one step")
	}
}

func TestHierarchyValidate(t *testing.T) {
	good := Hierarchy{"a": "b", "b": "c"}
	if err := good.Validate(); err != nil {
		t.Error(err)
	}
	cycle := Hierarchy{"a": "b", "b": "a"}
	if err := cycle.Validate(); err == nil {
		t.Error("cycle must be rejected")
	}
	mapsAny := Hierarchy{Any: "x"}
	if err := mapsAny.Validate(); err == nil {
		t.Error("mapping Any must be rejected")
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(nil, nil, 1); err == nil {
		t.Error("no attributes must error")
	}
	if _, err := Run(attrs2(), nil, 0); err == nil {
		t.Error("minSize 0 must error")
	}
	if _, err := Run(attrs2(), []Instance{{ID: "", Values: []string{"a", "b"}}}, 1); err == nil {
		t.Error("empty ID must error")
	}
	if _, err := Run(attrs2(), []Instance{{ID: "a", Values: []string{"x"}}}, 1); err == nil {
		t.Error("arity mismatch must error")
	}
	if _, err := Run(attrs2(), []Instance{
		{ID: "a", Values: []string{"x", "y"}},
		{ID: "a", Values: []string{"x", "y"}},
	}, 1); err == nil {
		t.Error("duplicate ID must error")
	}
	bad := []Attribute{{Name: "x", Hierarchy: Hierarchy{"a": "b", "b": "a"}}}
	if _, err := Run(bad, nil, 1); err == nil {
		t.Error("cyclic hierarchy must error")
	}
}

func TestRunNoGeneralizationNeeded(t *testing.T) {
	instances := mkInstances("a", 10, "445", "csend")
	res, err := Run(attrs2(), instances, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Generalizations != 0 {
		t.Errorf("generalizations = %d, want 0", res.Generalizations)
	}
	if len(res.Clusters) != 1 || res.Clusters[0].Size() != 10 {
		t.Fatalf("clusters = %+v", res.Clusters)
	}
	if res.Clusters[0].Tuple[0] != "445" {
		t.Error("no generalization must keep exact values")
	}
}

func TestRunGeneralizesThroughHierarchy(t *testing.T) {
	// Two small groups on privileged ports: exact tuples are below
	// minSize, but the "privileged" generalization covers both.
	instances := append(
		mkInstances("ftp", 3, "21", "ftp"),
		mkInstances("http", 3, "80", "ftp")...,
	)
	res, err := Run(attrs2(), instances, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) != 1 {
		t.Fatalf("clusters = %d, want 1 (merged under privileged)", len(res.Clusters))
	}
	got := res.Clusters[0].Tuple
	if got[0] != "privileged" {
		t.Errorf("tuple = %v, want port generalized to privileged (not Any)", got)
	}
	if got[1] != "ftp" {
		t.Errorf("proto must remain exact, got %v", got)
	}
}

func TestRunStopsAtAnyWhenNecessary(t *testing.T) {
	// Singletons everywhere: everything must generalize to (Any, Any).
	var instances []Instance
	for i := 0; i < 4; i++ {
		instances = append(instances, Instance{
			ID:     fmt.Sprintf("s%d", i),
			Values: []string{fmt.Sprintf("%d", 1000+i), fmt.Sprintf("proto%d", i)},
		})
	}
	res, err := Run(attrs2(), instances, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) != 1 {
		t.Fatalf("clusters = %d, want 1", len(res.Clusters))
	}
	for _, v := range res.Clusters[0].Tuple {
		if v != Any {
			t.Errorf("tuple = %v, want fully generalized", res.Clusters[0].Tuple)
		}
	}
}

func TestRunUnreachableMinSize(t *testing.T) {
	// minSize above the instance count: after full generalization the
	// single cluster holds everything; the loop must terminate.
	instances := mkInstances("a", 3, "445", "csend")
	res, err := Run(attrs2(), instances, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) != 1 || res.Clusters[0].Size() != 3 {
		t.Fatalf("clusters = %+v", res.Clusters)
	}
}

func TestRunEmptyInstances(t *testing.T) {
	res, err := Run(attrs2(), nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) != 0 {
		t.Errorf("clusters = %d", len(res.Clusters))
	}
	if res.ClusterOf("missing") != -1 {
		t.Error("ClusterOf on empty result")
	}
}

func TestClusterOf(t *testing.T) {
	instances := append(
		mkInstances("a", 6, "445", "csend"),
		mkInstances("b", 6, "9988", "ftp")...,
	)
	res, err := Run(attrs2(), instances, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) != 2 {
		t.Fatalf("clusters = %d", len(res.Clusters))
	}
	if res.ClusterOf("a-00") == res.ClusterOf("b-00") {
		t.Error("distinct stable groups must separate")
	}
	for _, in := range instances {
		if res.ClusterOf(in.ID) < 0 {
			t.Errorf("instance %s unassigned", in.ID)
		}
	}
}

func TestSizeBuckets(t *testing.T) {
	h := SizeBuckets([]string{"59904", "60000", "not-a-number"}, 1024)
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	p := h.Parent("59904")
	if p != "[59392-60416)" {
		t.Errorf("first bucket = %q", p)
	}
	pp := h.Parent(p)
	if pp != "[51200-61440)" {
		t.Errorf("second bucket = %q", pp)
	}
	if h.Parent(pp) != Any {
		t.Errorf("top = %q", h.Parent(pp))
	}
	// Non-numeric values generalize straight to Any.
	if h.Parent("not-a-number") != Any {
		t.Error("non-numeric must go to Any")
	}
	// Default step.
	h2 := SizeBuckets([]string{"100"}, 0)
	if h2.Parent("100") != "[0-1024)" {
		t.Errorf("default step bucket = %q", h2.Parent("100"))
	}
}

func TestRunDeterminism(t *testing.T) {
	var instances []Instance
	for i := 0; i < 40; i++ {
		instances = append(instances, Instance{
			ID:     fmt.Sprintf("s%02d", i),
			Values: []string{fmt.Sprintf("%d", 21+7*(i%5)), fmt.Sprintf("p%d", i%3)},
		})
	}
	a, err := Run(attrs2(), instances, 6)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(attrs2(), instances, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Clusters) != len(b.Clusters) || a.Generalizations != b.Generalizations {
		t.Fatal("non-deterministic")
	}
	for _, in := range instances {
		if a.ClusterOf(in.ID) != b.ClusterOf(in.ID) {
			t.Fatalf("assignment differs for %s", in.ID)
		}
	}
}
