// Package julisch implements attribute-oriented induction clustering
// after Julisch (ACM TISSEC 2003), the technique the paper's EPM
// clustering explicitly simplifies.
//
// Julisch's algorithm groups alarms (here: attack instances) by
// repeatedly generalizing attribute values along per-attribute
// generalization hierarchies — taxonomy trees whose root is the "any"
// value — until some generalized tuple covers at least minSize instances.
// Unlike EPM's single-shot invariant test, the hierarchy lets values
// generalize gradually (exact port → port class → any), trading cluster
// specificity for coverage.
//
// The reproduction uses it as an ablation baseline: EPM reaches nearly
// the same partition with a fraction of the machinery, which is the
// paper's justification for the simplification.
package julisch

import (
	"fmt"
	"sort"
	"strings"
)

// Any is the root value of every hierarchy.
const Any = "*"

// Hierarchy maps a value to its parent value; values absent from the map
// generalize directly to Any. A nil Hierarchy generalizes everything to
// Any in one step (the degenerate taxonomy, equivalent to EPM's wildcard).
type Hierarchy map[string]string

// Parent returns the next generalization of v.
func (h Hierarchy) Parent(v string) string {
	if v == Any {
		return Any
	}
	if h != nil {
		if p, ok := h[v]; ok {
			return p
		}
	}
	return Any
}

// Depth returns the number of generalization steps from v to Any,
// guarding against cycles.
func (h Hierarchy) Depth(v string) int {
	d := 0
	for v != Any {
		v = h.Parent(v)
		d++
		if d > maxDepth {
			return maxDepth
		}
	}
	return d
}

const maxDepth = 16

// Validate rejects hierarchies with cycles or excessive depth.
func (h Hierarchy) Validate() error {
	for v := range h {
		if v == Any {
			return fmt.Errorf("julisch: hierarchy maps the Any value")
		}
		cur := v
		for i := 0; ; i++ {
			if cur == Any {
				break
			}
			if i >= maxDepth {
				return fmt.Errorf("julisch: hierarchy depth from %q exceeds %d (cycle?)", v, maxDepth)
			}
			cur = h.Parent(cur)
		}
	}
	return nil
}

// Attribute describes one tuple column.
type Attribute struct {
	Name      string
	Hierarchy Hierarchy
}

// Instance is one attack instance.
type Instance struct {
	ID     string
	Values []string
}

// Cluster is one generalized group.
type Cluster struct {
	// ID is a dense index, largest cluster first.
	ID int
	// Tuple is the generalized tuple covering the members.
	Tuple []string
	// InstanceIDs lists the covered instances, sorted.
	InstanceIDs []string
}

// Size returns the number of members.
func (c Cluster) Size() int { return len(c.InstanceIDs) }

// Result is the clustering outcome.
type Result struct {
	Attributes []Attribute
	MinSize    int
	Clusters   []Cluster
	// Generalizations counts attribute-generalization rounds performed.
	Generalizations int
	byInstance      map[string]int
}

// ClusterOf returns the cluster index of an instance, or -1.
func (r *Result) ClusterOf(id string) int {
	if i, ok := r.byInstance[id]; ok {
		return i
	}
	return -1
}

// Run executes attribute-oriented induction: while some instance's tuple
// covers fewer than minSize instances, generalize the attribute whose
// generalization reduces the number of distinct tuples the most (a greedy
// heuristic in the spirit of Julisch's F_min selection), then extract the
// clusters.
func Run(attrs []Attribute, instances []Instance, minSize int) (*Result, error) {
	if len(attrs) == 0 {
		return nil, fmt.Errorf("julisch: no attributes")
	}
	if minSize < 1 {
		return nil, fmt.Errorf("julisch: minSize must be >= 1, got %d", minSize)
	}
	for _, a := range attrs {
		if err := a.Hierarchy.Validate(); err != nil {
			return nil, fmt.Errorf("julisch: attribute %q: %w", a.Name, err)
		}
	}
	seen := make(map[string]bool, len(instances))
	for _, in := range instances {
		if in.ID == "" {
			return nil, fmt.Errorf("julisch: instance with empty ID")
		}
		if seen[in.ID] {
			return nil, fmt.Errorf("julisch: duplicate instance ID %q", in.ID)
		}
		seen[in.ID] = true
		if len(in.Values) != len(attrs) {
			return nil, fmt.Errorf("julisch: instance %q has %d values for %d attributes",
				in.ID, len(in.Values), len(attrs))
		}
	}

	res := &Result{
		Attributes: attrs,
		MinSize:    minSize,
		byInstance: make(map[string]int, len(instances)),
	}
	if len(instances) == 0 {
		return res, nil
	}

	// Working copy of the tuples; generalization mutates these in place.
	tuples := make([][]string, len(instances))
	for i, in := range instances {
		tuples[i] = append([]string(nil), in.Values...)
	}

	countTuples := func() map[string]int {
		counts := make(map[string]int)
		for _, t := range tuples {
			counts[key(t)]++
		}
		return counts
	}

	for {
		counts := countTuples()
		if minCount(counts) >= minSize {
			break
		}
		// Pick the attribute whose one-step generalization (applied to
		// every tuple) yields the fewest distinct tuples, i.e. merges the
		// most. Skip attributes already fully generalized.
		best, bestDistinct := -1, len(tuples)+1
		for ai := range attrs {
			generalizable := false
			trial := make(map[string]bool)
			for _, t := range tuples {
				v := t[ai]
				if v != Any {
					generalizable = true
					v = attrs[ai].Hierarchy.Parent(v)
				}
				probe := append(append([]string(nil), t[:ai]...), v)
				probe = append(probe, t[ai+1:]...)
				trial[key(probe)] = true
			}
			if !generalizable {
				continue
			}
			if len(trial) < bestDistinct {
				bestDistinct = len(trial)
				best = ai
			}
		}
		if best < 0 {
			// Everything is Any already; a single cluster remains.
			break
		}
		for _, t := range tuples {
			if t[best] != Any {
				t[best] = attrs[best].Hierarchy.Parent(t[best])
			}
		}
		res.Generalizations++
	}

	// Extract clusters from the final tuples.
	groups := make(map[string][]int)
	for i, t := range tuples {
		groups[key(t)] = append(groups[key(t)], i)
	}
	for _, idxs := range groups {
		c := Cluster{Tuple: append([]string(nil), tuples[idxs[0]]...)}
		for _, i := range idxs {
			c.InstanceIDs = append(c.InstanceIDs, instances[i].ID)
		}
		sort.Strings(c.InstanceIDs)
		res.Clusters = append(res.Clusters, c)
	}
	sort.Slice(res.Clusters, func(a, b int) bool {
		if len(res.Clusters[a].InstanceIDs) != len(res.Clusters[b].InstanceIDs) {
			return len(res.Clusters[a].InstanceIDs) > len(res.Clusters[b].InstanceIDs)
		}
		return key(res.Clusters[a].Tuple) < key(res.Clusters[b].Tuple)
	})
	for i := range res.Clusters {
		res.Clusters[i].ID = i
		for _, id := range res.Clusters[i].InstanceIDs {
			res.byInstance[id] = i
		}
	}
	return res, nil
}

func key(t []string) string {
	return strings.Join(t, "\x1f")
}

func minCount(counts map[string]int) int {
	min := int(^uint(0) >> 1)
	for _, c := range counts {
		if c < min {
			min = c
		}
	}
	return min
}

// SizeBuckets builds a numeric generalization hierarchy for string-encoded
// integers: exact value → bucket of width step → bucket of width step*10
// → Any. Values that do not parse generalize straight to Any.
func SizeBuckets(values []string, step int) Hierarchy {
	if step <= 0 {
		step = 1024
	}
	h := make(Hierarchy)
	for _, v := range values {
		n, ok := atoi(v)
		if !ok {
			continue
		}
		b1 := fmt.Sprintf("[%d-%d)", n/step*step, n/step*step+step)
		big := step * 10
		b2 := fmt.Sprintf("[%d-%d)", n/big*big, n/big*big+big)
		h[v] = b1
		h[b1] = b2
	}
	return h
}

func atoi(s string) (int, bool) {
	if s == "" {
		return 0, false
	}
	n := 0
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return 0, false
		}
		n = n*10 + int(s[i]-'0')
	}
	return n, true
}
