package julisch_test

import (
	"fmt"

	"repro/internal/julisch"
)

// Example shows generalization through a port taxonomy: two undersized
// exact groups merge under their common "privileged" parent instead of
// collapsing to the root.
func Example() {
	attrs := []julisch.Attribute{
		{Name: "port", Hierarchy: julisch.Hierarchy{
			"21": "privileged", "80": "privileged", "6667": "unprivileged",
		}},
		{Name: "proto"},
	}
	var instances []julisch.Instance
	for i := 0; i < 3; i++ {
		instances = append(instances, julisch.Instance{
			ID: fmt.Sprintf("ftp-%d", i), Values: []string{"21", "pull"},
		})
		instances = append(instances, julisch.Instance{
			ID: fmt.Sprintf("http-%d", i), Values: []string{"80", "pull"},
		})
	}
	res, err := julisch.Run(attrs, instances, 5)
	if err != nil {
		panic(err)
	}
	for _, c := range res.Clusters {
		fmt.Printf("%v covers %d instances\n", c.Tuple, c.Size())
	}
	fmt.Printf("generalization rounds: %d\n", res.Generalizations)

	// Output:
	// [privileged pull] covers 6 instances
	// generalization rounds: 1
}
