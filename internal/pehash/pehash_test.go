package pehash

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/pe"
	"repro/internal/polymorph"
	"repro/internal/simrng"
)

func template() *pe.Image {
	r := simrng.New(1).Stream("tpl")
	text := make([]byte, 24*1024)
	data := make([]byte, 8*1024)
	r.Read(text)
	r.Read(data)
	return &pe.Image{
		Machine:     pe.MachineI386,
		Subsystem:   pe.SubsystemGUI,
		LinkerMajor: 9, LinkerMinor: 2,
		OSMajor: 6, OSMinor: 4,
		Sections: []pe.Section{
			{Name: ".text", Data: text, Characteristics: pe.SectionCode | pe.SectionExecute | pe.SectionRead},
			{Name: ".data", Data: data, Characteristics: pe.SectionInitializedData | pe.SectionRead | pe.SectionWrite},
		},
		Imports: []pe.Import{{DLL: "KERNEL32.dll", Symbols: []string{"GetProcAddress", "LoadLibraryA"}}},
	}
}

func TestHashStableUnderPolymorphism(t *testing.T) {
	tpl := template()
	engine := polymorph.Allaple{Seed: 7}
	hashes := map[string]bool{}
	for i := 0; i < 20; i++ {
		raw, err := engine.Mutate(tpl, polymorph.Context{Source: 1, Instance: uint64(i)})
		if err != nil {
			t.Fatal(err)
		}
		hv, ok := Hash(raw)
		if !ok {
			t.Fatal("Hash failed on valid PE")
		}
		hashes[hv] = true
	}
	if len(hashes) != 1 {
		t.Errorf("polymorphic instances produced %d distinct peHashes, want 1", len(hashes))
	}
}

func TestHashSeparatesVariants(t *testing.T) {
	r := simrng.New(2).Stream("variants")
	tpl := template()
	baseRaw, err := tpl.Build()
	if err != nil {
		t.Fatal(err)
	}
	baseHash, ok := Hash(baseRaw)
	if !ok {
		t.Fatal("base hash failed")
	}

	patched := polymorph.Patch(tpl, r)
	patchedRaw, err := patched.Build()
	if err != nil {
		t.Fatal(err)
	}
	patchedHash, ok := Hash(patchedRaw)
	if !ok {
		t.Fatal("patched hash failed")
	}
	if patchedHash == baseHash {
		t.Error("a size-changing patch must change the peHash")
	}

	recompiled := polymorph.Recompile(tpl, r)
	recompiledRaw, err := recompiled.Build()
	if err != nil {
		t.Fatal(err)
	}
	recompiledHash, ok := Hash(recompiledRaw)
	if !ok {
		t.Fatal("recompiled hash failed")
	}
	if recompiledHash == baseHash {
		t.Error("a recompilation must change the peHash")
	}
}

func TestHashRejectsGarbage(t *testing.T) {
	if _, ok := Hash([]byte("not a pe")); ok {
		t.Error("Hash accepted text")
	}
	raw, err := template().Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := Hash(raw[:len(raw)/2]); ok {
		t.Error("Hash accepted truncated PE")
	}
}

func TestEntropyBucket(t *testing.T) {
	low := bytes.Repeat([]byte{0x00}, 4096)
	if got := entropyBucket(low); got != 1 {
		t.Errorf("constant data bucket = %d, want 1", got)
	}
	var med []byte
	for i := 0; i < 4096; i++ {
		med = append(med, byte(i%16))
	}
	if got := entropyBucket(med); got != 2 {
		t.Errorf("16-symbol data bucket = %d, want 2", got)
	}
	high := make([]byte, 4096)
	simrng.New(3).Stream("rnd").Read(high)
	if got := entropyBucket(high); got != 3 {
		t.Errorf("random data bucket = %d, want 3", got)
	}
	if got := entropyBucket(nil); got != 0 {
		t.Errorf("empty bucket = %d, want 0", got)
	}
}

func TestRunClusters(t *testing.T) {
	tpl := template()
	engine := polymorph.Allaple{Seed: 9}
	r := simrng.New(4).Stream("run")
	other := polymorph.Patch(tpl, r)

	var inputs []Input
	for i := 0; i < 10; i++ {
		raw, err := engine.Mutate(tpl, polymorph.Context{Instance: uint64(i)})
		if err != nil {
			t.Fatal(err)
		}
		inputs = append(inputs, Input{ID: fmt.Sprintf("fam-a-%02d", i), Data: raw})
	}
	otherRaw, err := other.Build()
	if err != nil {
		t.Fatal(err)
	}
	inputs = append(inputs,
		Input{ID: "fam-b-00", Data: otherRaw},
		Input{ID: "corrupt", Data: []byte("junk")},
	)

	res, err := Run(inputs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) != 2 {
		t.Fatalf("clusters = %d, want 2", len(res.Clusters))
	}
	if res.Clusters[0].Size() != 10 {
		t.Errorf("big cluster size = %d", res.Clusters[0].Size())
	}
	if len(res.Unhashable) != 1 || res.Unhashable[0] != "corrupt" {
		t.Errorf("unhashable = %v", res.Unhashable)
	}
	if res.ClusterOf("fam-a-03") != 0 || res.ClusterOf("fam-b-00") != 1 {
		t.Error("cluster assignment wrong")
	}
	if res.ClusterOf("corrupt") != -1 || res.ClusterOf("missing") != -1 {
		t.Error("non-clustered IDs must map to -1")
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run([]Input{{ID: ""}}); err == nil {
		t.Error("empty ID must error")
	}
	if _, err := Run([]Input{{ID: "a"}, {ID: "a"}}); err == nil {
		t.Error("duplicate ID must error")
	}
}

func TestHashDeterministic(t *testing.T) {
	raw, err := template().Build()
	if err != nil {
		t.Fatal(err)
	}
	a, _ := Hash(raw)
	b, _ := Hash(raw)
	if a != b || a == "" {
		t.Errorf("hash not deterministic: %q vs %q", a, b)
	}
}

func BenchmarkHash(b *testing.B) {
	raw, err := template().Build()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := Hash(raw); !ok {
			b.Fatal("hash failed")
		}
	}
}
