// Package pehash implements a peHash-style static clustering baseline
// (Wicherski, LEET'09 — reference [26] of the paper).
//
// peHash groups polymorphic binaries by hashing the portions of the PE
// structure that contemporary packers and polymorphic engines do not
// mutate: COFF/optional header facts and, per section, the position,
// flags, and a coarse compressibility class of the content — but not the
// content bytes themselves. Samples of one polymorphic family collapse
// onto one hash value.
//
// The paper cites peHash as the prior static-clustering approach and
// builds EPM instead, arguing for a technique that spans all three attack
// dimensions and tolerates header variation through invariant discovery.
// This package provides the baseline so the reproduction can compare the
// two on the same corpus (see analysis and cmd/experiments).
package pehash

import (
	"crypto/sha1"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"
	"sort"

	"repro/internal/pe"
)

// Hash computes the peHash of a PE image. Non-PE or truncated input
// yields ok=false: peHash is undefined for corrupted samples, which the
// original system set aside exactly like this.
func Hash(data []byte) (string, bool) {
	f, err := pe.Parse(data)
	if err != nil {
		return "", false
	}
	h := sha1.New()
	put16 := func(v uint16) {
		var b [2]byte
		binary.LittleEndian.PutUint16(b[:], v)
		_, _ = h.Write(b[:])
	}
	put32 := func(v uint32) {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], v)
		_, _ = h.Write(b[:])
	}

	// Header facts stable under repacking of one build chain.
	put16(f.Machine)
	put16(f.Subsystem)
	_, _ = h.Write([]byte{f.LinkerMajor, f.LinkerMinor})
	put16(f.OSMajor)
	put16(f.OSMinor)
	put16(uint16(len(f.Sections)))

	// Per-section structure: name, characteristics, size class, and an
	// entropy bucket of the raw content. Raw bytes are intentionally NOT
	// hashed — that is the whole point of peHash.
	for _, s := range f.Sections {
		_, _ = h.Write([]byte(s.Name))
		put32(s.Characteristics)
		put32(uint32(sizeClass(int(s.RawSize))))
		_, _ = h.Write([]byte{entropyBucket(s.Data)})
	}

	// Import structure (DLL names and symbol counts, not addresses).
	dlls := make([]string, 0, len(f.Imports))
	counts := make(map[string]int, len(f.Imports))
	for _, imp := range f.Imports {
		dlls = append(dlls, imp.DLL)
		counts[imp.DLL] = len(imp.Symbols)
	}
	sort.Strings(dlls)
	for _, d := range dlls {
		_, _ = h.Write([]byte(d))
		put16(uint16(counts[d]))
	}

	return hex.EncodeToString(h.Sum(nil)[:10]), true
}

// sizeClass buckets a raw size by its power-of-two magnitude, so small
// patches (which peHash cannot see past) still move the hash while
// sub-alignment jitter does not.
func sizeClass(n int) int {
	if n <= 0 {
		return 0
	}
	return n / 512
}

// entropyBucket classifies content as low / medium / high entropy, the
// coarse compressibility signal peHash folds into the hash. Packed and
// polymorphic sections are uniformly high-entropy, so instances of one
// engine agree.
func entropyBucket(data []byte) byte {
	if len(data) == 0 {
		return 0
	}
	var freq [256]int
	for _, b := range data {
		freq[b]++
	}
	var entropy float64
	n := float64(len(data))
	for _, c := range freq {
		if c == 0 {
			continue
		}
		p := float64(c) / n
		entropy -= p * math.Log2(p)
	}
	switch {
	case entropy < 3:
		return 1
	case entropy < 6.5:
		return 2
	default:
		return 3
	}
}

// Cluster is one peHash cluster.
type Cluster struct {
	Hash    string
	Members []string // sample IDs, sorted
}

// Size returns the number of members.
func (c Cluster) Size() int { return len(c.Members) }

// Result is a peHash clustering.
type Result struct {
	Clusters []Cluster
	// Unhashable lists samples peHash could not process (non-PE input).
	Unhashable []string
	byID       map[string]int
}

// ClusterOf returns the cluster index of a sample ID, or -1.
func (r *Result) ClusterOf(id string) int {
	if i, ok := r.byID[id]; ok {
		return i
	}
	return -1
}

// Input is one sample to cluster.
type Input struct {
	ID   string
	Data []byte
}

// Run clusters the inputs by peHash value. Clusters are ordered largest
// first; ties break on the hash.
func Run(inputs []Input) (*Result, error) {
	res := &Result{byID: make(map[string]int, len(inputs))}
	groups := make(map[string][]string)
	seen := make(map[string]bool, len(inputs))
	for _, in := range inputs {
		if in.ID == "" {
			return nil, fmt.Errorf("pehash: input with empty ID")
		}
		if seen[in.ID] {
			return nil, fmt.Errorf("pehash: duplicate input ID %q", in.ID)
		}
		seen[in.ID] = true
		hv, ok := Hash(in.Data)
		if !ok {
			res.Unhashable = append(res.Unhashable, in.ID)
			continue
		}
		groups[hv] = append(groups[hv], in.ID)
	}
	res.Clusters = make([]Cluster, 0, len(groups))
	for hv, members := range groups {
		sort.Strings(members)
		res.Clusters = append(res.Clusters, Cluster{Hash: hv, Members: members})
	}
	sort.Slice(res.Clusters, func(a, b int) bool {
		if len(res.Clusters[a].Members) != len(res.Clusters[b].Members) {
			return len(res.Clusters[a].Members) > len(res.Clusters[b].Members)
		}
		return res.Clusters[a].Hash < res.Clusters[b].Hash
	})
	for i, c := range res.Clusters {
		for _, m := range c.Members {
			res.byID[m] = i
		}
	}
	sort.Strings(res.Unhashable)
	return res, nil
}
