// Package simtime models the simulated study period of the reproduction.
//
// The paper analyzes SGNET data collected between January 2008 and May
// 2009. All simulated events carry absolute time.Time values inside this
// window; analyses bucket them by ISO-week-style indices relative to the
// window start.
package simtime

import (
	"fmt"
	"time"
)

// Study window bounds. The paper covers January 2008 through May 2009
// inclusive, which spans 74 whole weeks.
var (
	// StudyStart is the first instant of the observation period.
	StudyStart = time.Date(2008, time.January, 1, 0, 0, 0, 0, time.UTC)
	// StudyEnd is the first instant after the observation period.
	StudyEnd = time.Date(2009, time.June, 1, 0, 0, 0, 0, time.UTC)
)

// Week is the bucketing granularity used by activity analyses.
const Week = 7 * 24 * time.Hour

// WeekCount reports the number of week buckets in the study window,
// counting a trailing partial week as a full bucket.
func WeekCount() int {
	d := StudyEnd.Sub(StudyStart)
	n := int(d / Week)
	if d%Week != 0 {
		n++
	}
	return n
}

// WeekIndex returns the zero-based week bucket of t relative to
// StudyStart. Times before the window map to negative indices.
func WeekIndex(t time.Time) int {
	d := t.Sub(StudyStart)
	if d < 0 {
		return -int((-d + Week - 1) / Week)
	}
	return int(d / Week)
}

// WeekStart returns the first instant of the given week bucket.
func WeekStart(week int) time.Time {
	return StudyStart.Add(time.Duration(week) * Week)
}

// InStudy reports whether t falls inside the study window.
func InStudy(t time.Time) bool {
	return !t.Before(StudyStart) && t.Before(StudyEnd)
}

// Clamp returns t limited to the study window.
func Clamp(t time.Time) time.Time {
	if t.Before(StudyStart) {
		return StudyStart
	}
	if !t.Before(StudyEnd) {
		return StudyEnd.Add(-time.Nanosecond)
	}
	return t
}

// ShortDate renders t in the compact day/month form the paper uses for
// activity timelines (e.g. "15/7").
func ShortDate(t time.Time) string {
	return fmt.Sprintf("%d/%d", t.Day(), int(t.Month()))
}

// Interval is a half-open time range [Start, End).
type Interval struct {
	Start time.Time
	End   time.Time
}

// Contains reports whether t falls inside the interval.
func (iv Interval) Contains(t time.Time) bool {
	return !t.Before(iv.Start) && t.Before(iv.End)
}

// Duration returns the length of the interval, or zero when End precedes
// Start.
func (iv Interval) Duration() time.Duration {
	d := iv.End.Sub(iv.Start)
	if d < 0 {
		return 0
	}
	return d
}

// Weeks returns the week bucket indices the interval overlaps.
func (iv Interval) Weeks() []int {
	if !iv.End.After(iv.Start) {
		return nil
	}
	first := WeekIndex(iv.Start)
	last := WeekIndex(iv.End.Add(-time.Nanosecond))
	out := make([]int, 0, last-first+1)
	for w := first; w <= last; w++ {
		out = append(out, w)
	}
	return out
}

// StudyInterval returns the whole study window as an Interval.
func StudyInterval() Interval {
	return Interval{Start: StudyStart, End: StudyEnd}
}
