package simtime

import (
	"testing"
	"testing/quick"
	"time"
)

func TestWeekCountCoversStudy(t *testing.T) {
	n := WeekCount()
	if n < 70 || n > 80 {
		t.Fatalf("WeekCount = %d, want ~74 for Jan 2008 - May 2009", n)
	}
	if got := WeekIndex(StudyEnd.Add(-time.Nanosecond)); got != n-1 {
		t.Fatalf("last instant falls in week %d, want %d", got, n-1)
	}
}

func TestWeekIndex(t *testing.T) {
	tests := []struct {
		name string
		t    time.Time
		want int
	}{
		{"start", StudyStart, 0},
		{"six days in", StudyStart.Add(6 * 24 * time.Hour), 0},
		{"seven days in", StudyStart.Add(7 * 24 * time.Hour), 1},
		{"one week before", StudyStart.Add(-1 * time.Hour), -1},
		{"eight days before", StudyStart.Add(-8 * 24 * time.Hour), -2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := WeekIndex(tt.t); got != tt.want {
				t.Errorf("WeekIndex(%v) = %d, want %d", tt.t, got, tt.want)
			}
		})
	}
}

func TestWeekStartRoundTrip(t *testing.T) {
	f := func(w8 uint8) bool {
		w := int(w8) % WeekCount()
		return WeekIndex(WeekStart(w)) == w
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInStudyAndClamp(t *testing.T) {
	if !InStudy(StudyStart) {
		t.Error("StudyStart must be in study")
	}
	if InStudy(StudyEnd) {
		t.Error("StudyEnd is exclusive")
	}
	early := StudyStart.Add(-time.Hour)
	late := StudyEnd.Add(time.Hour)
	if got := Clamp(early); !got.Equal(StudyStart) {
		t.Errorf("Clamp(early) = %v", got)
	}
	if got := Clamp(late); !InStudy(got) {
		t.Errorf("Clamp(late) = %v not in study", got)
	}
	mid := StudyStart.Add(100 * time.Hour)
	if got := Clamp(mid); !got.Equal(mid) {
		t.Errorf("Clamp(mid) changed an in-window time: %v", got)
	}
}

func TestShortDate(t *testing.T) {
	d := time.Date(2008, time.July, 15, 10, 0, 0, 0, time.UTC)
	if got := ShortDate(d); got != "15/7" {
		t.Errorf("ShortDate = %q, want 15/7", got)
	}
}

func TestIntervalContains(t *testing.T) {
	iv := Interval{Start: StudyStart, End: StudyStart.Add(Week)}
	if !iv.Contains(StudyStart) {
		t.Error("interval start must be contained")
	}
	if iv.Contains(iv.End) {
		t.Error("interval end is exclusive")
	}
	if iv.Contains(StudyStart.Add(-time.Second)) {
		t.Error("before start must not be contained")
	}
}

func TestIntervalDuration(t *testing.T) {
	iv := Interval{Start: StudyStart, End: StudyStart.Add(3 * time.Hour)}
	if got := iv.Duration(); got != 3*time.Hour {
		t.Errorf("Duration = %v", got)
	}
	rev := Interval{Start: iv.End, End: iv.Start}
	if got := rev.Duration(); got != 0 {
		t.Errorf("reversed Duration = %v, want 0", got)
	}
}

func TestIntervalWeeks(t *testing.T) {
	tests := []struct {
		name string
		iv   Interval
		want []int
	}{
		{
			"within one week",
			Interval{StudyStart.Add(time.Hour), StudyStart.Add(2 * time.Hour)},
			[]int{0},
		},
		{
			"spanning three weeks",
			Interval{StudyStart.Add(6 * 24 * time.Hour), StudyStart.Add(15 * 24 * time.Hour)},
			[]int{0, 1, 2},
		},
		{
			"exact week boundary excluded",
			Interval{StudyStart, StudyStart.Add(Week)},
			[]int{0},
		},
		{"empty", Interval{StudyStart, StudyStart}, nil},
		{"reversed", Interval{StudyStart.Add(Week), StudyStart}, nil},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := tt.iv.Weeks()
			if len(got) != len(tt.want) {
				t.Fatalf("Weeks = %v, want %v", got, tt.want)
			}
			for i := range got {
				if got[i] != tt.want[i] {
					t.Fatalf("Weeks = %v, want %v", got, tt.want)
				}
			}
		})
	}
}

func TestStudyInterval(t *testing.T) {
	iv := StudyInterval()
	if !iv.Start.Equal(StudyStart) || !iv.End.Equal(StudyEnd) {
		t.Errorf("StudyInterval = %+v", iv)
	}
	if got := len(iv.Weeks()); got != WeekCount() {
		t.Errorf("StudyInterval covers %d weeks, want %d", got, WeekCount())
	}
}
