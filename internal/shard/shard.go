// Package shard partitions the landscape service horizontally: N
// independent stream.Services — each with its own WAL directory,
// incremental EPM engines, and incremental B-clusterer — fed by a
// deterministic router and queried through merged global views.
//
// The router is a pure function of the event's routing key (the sample
// MD5 when the event carries one, the event ID otherwise), so the
// sample→shard mapping is stable across restarts and independent of
// arrival order, and every event of a sample lands on the shard that
// owns the sample's enrichment, deduplication, and B-membership.
//
// Merging is exact: epm.Merge folds the per-shard value sketches into
// global invariants and regroups only where an aggregate-only threshold
// crossing demands it, and bcluster.Merge seeds a union-find with the
// per-shard components and re-probes only cross-shard LSH band
// collisions over the cached signatures. The equivalence tests prove
// the merged E/P/M/B views byte-identical to a 1-shard run at any shard
// count and arrival order.
package shard

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/admission"
	"repro/internal/dataset"
	"repro/internal/stream"
)

// MaxShards bounds the shard count; beyond it a deployment wants
// multiple processes, not more partitions of one.
const MaxShards = 256

// RouteKey returns the routing key of an event: the sample MD5 when the
// event references a sample (whatever its download outcome, so every
// event about one sample colocates with it), the event ID otherwise.
func RouteKey(e *dataset.Event) string {
	if e.Sample.MD5 != "" {
		return e.Sample.MD5
	}
	return e.ID
}

// ShardOf maps a routing key to a shard index: 64-bit FNV-1a reduced
// modulo the shard count. A pure function of (key, shards) — no process
// state — which is what makes the mapping stable across restarts and
// arrival orders.
func ShardOf(key string, shards int) int {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return int(h % uint64(shards))
}

// Config parameterizes a sharded deployment.
type Config struct {
	// Shards is the partition count; 0 selects 1.
	Shards int
	// Stream is the per-shard service template. Two fields are
	// reinterpreted at the coordinator level: Durability.Dir, when set,
	// becomes the deployment root (each shard persists under
	// shard-NNNN/ inside it, and a manifest pins the shard count), and
	// the per-client rate-limit knobs (RatePerSec, Burst, MaxClients)
	// move up into one shared ledger at the coordinator — a client's
	// budget covers the whole deployment instead of multiplying by N.
	// The remaining admission knobs (deadline, shedding, degraded mode)
	// stay per shard, where the queues they protect live.
	Stream stream.Config
}

// manifest pins the on-disk layout's shard count. Reopening a sharded
// directory with a different -shards would silently misroute every
// recovered sample, so the mismatch fails closed instead.
type manifest struct {
	Version int `json:"version"`
	Shards  int `json:"shards"`
}

const (
	manifestName    = "shards.json"
	manifestVersion = 1
)

// Coordinator fans ingest out over the shards and serves merged views.
// Construct with New, stop with Close.
type Coordinator struct {
	cfg    stream.Config
	shards []*stream.Service

	// limiter is the shared admission ledger (nil when rate limiting is
	// off); its counters live in admMu.
	limiter         *admission.Limiter
	admMu           sync.Mutex
	admittedBatches int
	admittedEvents  int
	rejectedBatches map[string]int
	rejectedEvents  map[string]int

	// viewMu serializes merged-view construction and guards the cache
	// and the stable-ID tables. Lock order: viewMu first, then the
	// per-shard read locks in shard order.
	viewMu       sync.Mutex
	view         *mergedState
	stable       [3]map[string]int
	nextStable   [3]int
	mergeErrors  int
	lastMergeErr string

	// Replication role surfaced in the aggregate stats; guarded by
	// admMu (SetRole at startup, Stats reads).
	role  string
	start time.Time
}

// New builds the shards and their coordinator. The enricher is shared:
// it must be safe for concurrent use (the pipeline already serves
// parallel executions within one service). With durability configured,
// each shard recovers from its own subdirectory before New returns.
func New(cfg Config, enricher stream.Enricher) (*Coordinator, error) {
	n := cfg.Shards
	if n == 0 {
		n = 1
	}
	if n < 1 || n > MaxShards {
		return nil, fmt.Errorf("shard: shard count %d outside [1, %d]", cfg.Shards, MaxShards)
	}
	scfg := cfg.Stream
	if err := scfg.Validate(); err != nil {
		return nil, err
	}

	c := &Coordinator{
		cfg:             scfg,
		limiter:         admission.NewLimiter(scfg.Admission.RatePerSec, scfg.Admission.Burst, scfg.Admission.MaxClients, nil),
		rejectedBatches: make(map[string]int),
		rejectedEvents:  make(map[string]int),
		role:            stream.RoleStandalone,
		start:           time.Now(),
	}
	for d := range c.stable {
		c.stable[d] = make(map[string]int)
	}

	root := scfg.Durability.Dir
	if root != "" {
		if err := ensureManifest(root, n); err != nil {
			return nil, err
		}
	}
	// The shared ledger replaces the per-shard limiters; everything else
	// in the admission config stays per shard, with decorrelated shedder
	// seeds so the shards don't drop the same batches in lockstep.
	scfg.Admission.RatePerSec = 0
	scfg.Admission.Burst = 0
	scfg.Admission.MaxClients = 0
	for i := 0; i < n; i++ {
		sc := scfg
		sc.Admission.Seed = scfg.Admission.Seed + uint64(i)
		if root != "" {
			sc.Durability.Dir = filepath.Join(root, shardDirName(i))
		}
		svc, err := stream.New(sc, enricher)
		if err != nil {
			for _, s := range c.shards {
				s.Close()
			}
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		c.shards = append(c.shards, svc)
	}
	return c, nil
}

func shardDirName(i int) string { return fmt.Sprintf("shard-%04d", i) }

// NewReplicaSet wraps pre-built replica services in a read-only
// coordinator serving the same merged views and stats as New — no
// manifest (the on-disk layout is the primary's concern) and no shared
// admission ledger (the services refuse writes themselves). The
// follower (internal/replica) builds the services by replaying shipped
// per-shard WALs and hands them over; it remains their owner and
// closes them.
func NewReplicaSet(scfg stream.Config, svcs []*stream.Service) (*Coordinator, error) {
	if len(svcs) < 1 || len(svcs) > MaxShards {
		return nil, fmt.Errorf("shard: replica set size %d outside [1, %d]", len(svcs), MaxShards)
	}
	c := &Coordinator{
		cfg:             scfg,
		shards:          append([]*stream.Service(nil), svcs...),
		rejectedBatches: make(map[string]int),
		rejectedEvents:  make(map[string]int),
		role:            stream.RoleReplica,
		start:           time.Now(),
	}
	for d := range c.stable {
		c.stable[d] = make(map[string]int)
	}
	return c, nil
}

// SetRole overrides the role label in the aggregate stats; the daemon
// marks a coordinator "primary" when it publishes its WALs.
func (c *Coordinator) SetRole(role string) {
	c.admMu.Lock()
	c.role = role
	c.admMu.Unlock()
}

// ensureManifest creates or verifies the deployment root. A root that
// already holds service state — a manifest with a different shard
// count, or a pre-sharding single-service layout (checkpoint/WAL files
// directly in the root) — fails closed with an actionable error.
func ensureManifest(root string, n int) error {
	if err := os.MkdirAll(root, 0o755); err != nil {
		return fmt.Errorf("shard: creating root %s: %w", root, err)
	}
	path := filepath.Join(root, manifestName)
	raw, err := os.ReadFile(path)
	switch {
	case err == nil:
		var m manifest
		if err := json.Unmarshal(raw, &m); err != nil {
			return fmt.Errorf("shard: corrupt manifest %s: %w", path, err)
		}
		if m.Shards != n {
			return fmt.Errorf("shard: layout %s was written with -shards=%d; reopening with -shards=%d would misroute recovered samples (move the data aside or restore the original shard count)",
				root, m.Shards, n)
		}
		return nil
	case os.IsNotExist(err):
		entries, derr := os.ReadDir(root)
		if derr != nil {
			return fmt.Errorf("shard: reading root %s: %w", root, derr)
		}
		for _, e := range entries {
			name := e.Name()
			if name == "checkpoint.json" || filepath.Ext(name) == ".wal" {
				return fmt.Errorf("shard: %s holds a pre-sharding service layout (%s) with no shard manifest; refusing to shard over it (move the data aside or replay it through a sharded deployment)",
					root, name)
			}
		}
		tmp := path + ".tmp"
		raw, _ = json.Marshal(manifest{Version: manifestVersion, Shards: n})
		if err := os.WriteFile(tmp, append(raw, '\n'), 0o644); err != nil {
			return fmt.Errorf("shard: writing manifest: %w", err)
		}
		if err := os.Rename(tmp, path); err != nil {
			return fmt.Errorf("shard: publishing manifest: %w", err)
		}
		return nil
	default:
		return fmt.Errorf("shard: reading manifest %s: %w", path, err)
	}
}

// Shards reports the shard count.
func (c *Coordinator) Shards() int { return len(c.shards) }

// Shard exposes one underlying service (benchmarks and tests).
func (c *Coordinator) Shard(i int) *stream.Service { return c.shards[i] }

// Ingest routes one batch over the shards via the trusted loopback
// path, like stream.Service.Ingest.
func (c *Coordinator) Ingest(ctx context.Context, events []dataset.Event) error {
	return c.IngestFrom(ctx, "", events)
}

// IngestFrom admits the batch against the shared per-client ledger,
// routes every event to its shard, and enqueues the per-shard
// sub-batches in shard order. Shard-level admission (deadline, shed,
// queue backpressure) applies per sub-batch, so a saturated deployment
// can accept part of a batch: the first shard error is returned, the
// remaining sub-batches are still attempted (at-least-once ingestion is
// the service's delivery model — redelivering the whole batch is safe,
// duplicates are screened per shard).
func (c *Coordinator) IngestFrom(ctx context.Context, client string, events []dataset.Event) error {
	if client != "" && c.limiter != nil {
		if rej := c.limiter.Admit(client, len(events)); rej != nil {
			c.noteRejected(string(rej.Reason), len(events))
			return rej
		}
	}
	c.noteAdmitted(len(events))
	if len(c.shards) == 1 {
		return c.shards[0].Ingest(ctx, events)
	}
	parts := make([][]dataset.Event, len(c.shards))
	for i := range events {
		si := ShardOf(RouteKey(&events[i]), len(c.shards))
		parts[si] = append(parts[si], events[i])
	}
	var firstErr error
	for si, part := range parts {
		if len(part) == 0 {
			continue
		}
		if err := c.shards[si].Ingest(ctx, part); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("shard %d: %w", si, err)
		}
	}
	return firstErr
}

func (c *Coordinator) noteAdmitted(n int) {
	c.admMu.Lock()
	c.admittedBatches++
	c.admittedEvents += n
	c.admMu.Unlock()
}

func (c *Coordinator) noteRejected(reason string, n int) {
	c.admMu.Lock()
	c.rejectedBatches[reason]++
	c.rejectedEvents[reason] += n
	c.admMu.Unlock()
}

// Flush drains and epochs every shard; it returns once all shards are
// flushed, with the first (by shard order) error.
func (c *Coordinator) Flush(ctx context.Context) error {
	return c.fanout(func(s *stream.Service) error { return s.Flush(ctx) })
}

// Checkpoint checkpoints every shard.
func (c *Coordinator) Checkpoint(ctx context.Context) error {
	return c.fanout(func(s *stream.Service) error { return s.Checkpoint(ctx) })
}

// Close stops every shard (each takes a final checkpoint when durable).
func (c *Coordinator) Close() {
	c.fanout(func(s *stream.Service) error { s.Close(); return nil })
}

// StorageFailure reports the first shard's read-only storage failure,
// nil while every shard is writable.
func (c *Coordinator) StorageFailure() error {
	for _, s := range c.shards {
		if err := s.StorageFailure(); err != nil {
			return err
		}
	}
	return nil
}

// ScrubWAL scrubs every shard's sealed WAL segments; the first (by
// shard order) corruption report is returned.
func (c *Coordinator) ScrubWAL() error {
	return c.fanout(func(s *stream.Service) error { return s.ScrubWAL() })
}

// fanout runs op on every shard concurrently and returns the first (by
// shard order) error, wrapped with its shard index.
func (c *Coordinator) fanout(op func(*stream.Service) error) error {
	errs := make([]error, len(c.shards))
	var wg sync.WaitGroup
	for i, s := range c.shards {
		wg.Add(1)
		go func(i int, s *stream.Service) {
			defer wg.Done()
			errs[i] = op(s)
		}(i, s)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return nil
}
