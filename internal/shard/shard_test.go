package shard_test

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/admission"
	"repro/internal/bcluster"
	"repro/internal/behavior"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/epm"
	"repro/internal/pe"
	"repro/internal/shard"
	"repro/internal/stream"
)

// fakeEnricher mirrors the stream tests' enricher: one AV label and ten
// behavioral features per truth variant, so variants cluster together.
type fakeEnricher struct{}

func (fakeEnricher) LabelSample(s *dataset.Sample) error {
	s.AVLabel = "Fake." + s.TruthVariant
	return nil
}

func (fakeEnricher) ExecuteSample(s *dataset.Sample) (*behavior.Profile, bool, error) {
	p := behavior.NewProfile()
	for k := 0; k < 10; k++ {
		p.Add(fmt.Sprintf("%s-beh%d", s.TruthVariant, k))
	}
	return p, false, nil
}

// testEvent builds a well-formed event; variant "" omits the sample.
func testEvent(i int, variant string) dataset.Event {
	e := dataset.Event{
		ID:          fmt.Sprintf("ev%04d", i),
		Time:        time.Date(2008, 1, 1, 0, 0, 0, 0, time.UTC).Add(time.Duration(i) * time.Minute),
		Attacker:    fmt.Sprintf("10.0.%d.%d", i%5, i%13),
		Sensor:      fmt.Sprintf("s%d", i%7),
		FSMPath:     fmt.Sprintf("fsm-%d", i%3),
		DestPort:    445,
		Protocol:    "ftp",
		Filename:    "a.exe",
		PayloadPort: 33333,
		Interaction: "push",
	}
	if variant != "" {
		e.Sample = pe.Features{
			MD5:         fmt.Sprintf("md5-%s-%d", variant, i%4),
			IsPE:        true,
			Magic:       pe.MagicPEGUI,
			NumSections: 3,
		}
		e.DownloadOutcome = "ok"
		e.TruthVariant = variant
	}
	return e
}

func cleanCorpus(n int) []dataset.Event {
	out := make([]dataset.Event, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, testEvent(i, fmt.Sprintf("v%d", i%3)))
	}
	return out
}

func coordConfig(epochSize, shards int) shard.Config {
	scfg := stream.DefaultConfig()
	scfg.EpochSize = epochSize
	scfg.QueueDepth = 4
	return shard.Config{Shards: shards, Stream: scfg}
}

func newCoordinator(t *testing.T, cfg shard.Config) *shard.Coordinator {
	t.Helper()
	c, err := shard.New(cfg, fakeEnricher{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

// feed replays the corpus through the coordinator in batches and
// flushes.
func feed(t *testing.T, c *shard.Coordinator, events []dataset.Event, batchSize int) {
	t.Helper()
	ctx := context.Background()
	for lo := 0; lo < len(events); lo += batchSize {
		hi := min(lo+batchSize, len(events))
		if err := c.Ingest(ctx, events[lo:hi]); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(ctx); err != nil {
		t.Fatal(err)
	}
}

func bMembers(r *bcluster.Result) [][]string {
	out := make([][]string, len(r.Clusters))
	for i, c := range r.Clusters {
		out[i] = c.Members
	}
	return out
}

// TestRouterStability is the router property gate: the sample→shard
// mapping is a pure function of the routing key — identical across
// coordinator restarts and arrival orders — events of one sample
// colocate regardless of download outcome, and the partition is
// reasonably balanced.
func TestRouterStability(t *testing.T) {
	// Colocation: same MD5, different event IDs and outcomes.
	a := testEvent(1, "v0")
	b := testEvent(5, "v0") // i%4 == 1: same MD5 as a
	b.DownloadOutcome = "failed"
	if shard.RouteKey(&a) != shard.RouteKey(&b) {
		t.Fatalf("events of one sample route apart: %q vs %q", shard.RouteKey(&a), shard.RouteKey(&b))
	}
	noSample := testEvent(2, "")
	if shard.RouteKey(&noSample) != noSample.ID {
		t.Fatalf("sample-less event must route by ID, got %q", shard.RouteKey(&noSample))
	}

	// Stability and order independence: the mapping of 10k keys is
	// identical when recomputed in a different order (there is no state
	// to depend on), and no shard starves.
	const n, shards = 10000, 4
	first := make(map[string]int, n)
	counts := make([]int, shards)
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("md5-%032x", i)
		first[k] = shard.ShardOf(k, shards)
		counts[first[k]]++
	}
	perm := rand.New(rand.NewSource(3)).Perm(n)
	for _, i := range perm {
		k := fmt.Sprintf("md5-%032x", i)
		if got := shard.ShardOf(strings.Clone(k), shards); got != first[k] {
			t.Fatalf("ShardOf(%q) moved: %d then %d", k, first[k], got)
		}
	}
	for si, got := range counts {
		if got < n/shards/2 {
			t.Fatalf("shard %d starves: %d of %d keys", si, got, n)
		}
	}
}

// TestLayoutMismatchFailsClosed covers the durable-layout guard: a root
// written with one shard count refuses any other, and a pre-sharding
// single-service layout refuses to be sharded over.
func TestLayoutMismatchFailsClosed(t *testing.T) {
	root := t.TempDir()
	cfg := coordConfig(8, 2)
	cfg.Stream.Durability = stream.Durability{Dir: root, NoSync: true}
	c, err := shard.New(cfg, fakeEnricher{})
	if err != nil {
		t.Fatal(err)
	}
	c.Close()

	bad := cfg
	bad.Shards = 4
	if _, err := shard.New(bad, fakeEnricher{}); err == nil || !strings.Contains(err.Error(), "-shards=2") {
		t.Fatalf("shards=4 over a shards=2 layout: err = %v, want mismatch", err)
	}
	if c, err = shard.New(cfg, fakeEnricher{}); err != nil {
		t.Fatalf("matching shard count must reopen: %v", err)
	}
	c.Close()

	legacy := t.TempDir()
	if err := os.WriteFile(filepath.Join(legacy, "checkpoint.json"), []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg.Stream.Durability.Dir = legacy
	if _, err := shard.New(cfg, fakeEnricher{}); err == nil || !strings.Contains(err.Error(), "pre-sharding") {
		t.Fatalf("sharding over a legacy layout: err = %v, want refusal", err)
	}
}

// normEPMView strips the per-shard telemetry whose split legitimately
// depends on the shard count: epoch counters sum differently when the
// same corpus is partitioned differently. The clusters themselves —
// stable IDs, patterns, sizes, source counts — must be byte-identical.
func normEPMView(v stream.EPMView) stream.EPMView {
	v.Epoch = 0
	return v
}

// TestShardEquivalence is the tentpole correctness gate: the merged
// E/P/M/B views of an N-shard deployment are byte-identical to the
// 1-shard deployment for shards ∈ {1, 2, 4, 8} and any arrival order.
func TestShardEquivalence(t *testing.T) {
	events := cleanCorpus(240)
	shuffled := append([]dataset.Event(nil), events...)
	rand.New(rand.NewSource(7)).Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})

	ref := newCoordinator(t, coordConfig(8, 1))
	feed(t, ref, events, 10)
	refB, err := ref.BResult()
	if err != nil {
		t.Fatal(err)
	}
	var refEPM [3]stream.EPMView
	for d, dim := range []string{"epsilon", "pi", "mu"} {
		if refEPM[d], err = ref.EPMClusters(dim); err != nil {
			t.Fatal(err)
		}
	}
	rEv, rSm, rEx, rE, rP, rM, rB := ref.Counts()

	for _, shards := range []int{1, 2, 4, 8} {
		for name, order := range map[string][]dataset.Event{"forward": events, "shuffled": shuffled} {
			label := fmt.Sprintf("shards=%d order=%s", shards, name)
			c := newCoordinator(t, coordConfig(8, shards))
			feed(t, c, order, 10)

			for d, dim := range []string{"epsilon", "pi", "mu"} {
				v, err := c.EPMClusters(dim)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(normEPMView(v), normEPMView(refEPM[d])) {
					t.Fatalf("%s: merged %s view diverges from 1-shard:\ngot  %+v\nwant %+v",
						label, dim, normEPMView(v), normEPMView(refEPM[d]))
				}
				mc, err := c.EPMClustering(dim)
				if err != nil {
					t.Fatal(err)
				}
				rc, err := ref.EPMClustering(dim)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(mc.Clusters, rc.Clusters) {
					t.Fatalf("%s: merged %s clustering diverges from 1-shard", label, dim)
				}
			}
			b, err := c.BResult()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(bMembers(b), bMembers(refB)) {
				t.Fatalf("%s: merged B partition diverges from 1-shard", label)
			}
			gEv, gSm, gEx, gE, gP, gM, gB := c.Counts()
			if gEv != rEv || gSm != rSm || gEx != rEx || gE != rE || gP != rP || gM != rM || gB != rB {
				t.Fatalf("%s: counts (%d,%d,%d,%d,%d,%d,%d) != 1-shard (%d,%d,%d,%d,%d,%d,%d)",
					label, gEv, gSm, gEx, gE, gP, gM, gB, rEv, rSm, rEx, rE, rP, rM, rB)
			}
			if st := c.Stats(); st.MergeErrors != 0 {
				t.Fatalf("%s: merge errors: %d (%s)", label, st.MergeErrors, st.LastMergeError)
			}
		}
	}
}

// TestShardScenarioEquivalence runs the full SmallScenario — real
// enrichment pipeline, sandbox executions fanned out over four shards —
// and checks the merged E/P/M/B clusterings are byte-identical to the
// one-shot batch pipeline, the same gate the 1-shard stream service
// passes in its own equivalence test.
func TestShardScenarioEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("replays the SmallScenario")
	}
	sc := core.SmallScenario()
	batch, err := core.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	events := batch.Dataset.Events()
	bEvents, bSamples, bExec, bE, bP, bM, bB := batch.Counts()

	cfg := shard.Config{
		Shards: 4,
		Stream: stream.Config{
			EpochSize:  64,
			Thresholds: sc.Thresholds,
			BCluster:   sc.Enrichment.BCluster,
		},
	}
	c, err := shard.New(cfg, batch.Pipeline)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	feed(t, c, events, 97)

	gEvents, gSamples, gExec, gE, gP, gM, gB := c.Counts()
	if gEvents != bEvents || gSamples != bSamples || gExec != bExec ||
		gE != bE || gP != bP || gM != bM || gB != bB {
		t.Fatalf("counts (%d,%d,%d,%d,%d,%d,%d) != batch (%d,%d,%d,%d,%d,%d,%d)",
			gEvents, gSamples, gExec, gE, gP, gM, gB,
			bEvents, bSamples, bExec, bE, bP, bM, bB)
	}
	for dim, want := range map[string]*epm.Clustering{"epsilon": batch.E, "pi": batch.P, "mu": batch.M} {
		got, err := c.EPMClustering(dim)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Clusters, want.Clusters) {
			t.Fatalf("merged %s clusters diverge from batch", dim)
		}
	}
	gb, err := c.BResult()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(bMembers(gb), bMembers(batch.B)) {
		t.Fatal("merged B partition diverges from batch")
	}
	if st := c.Stats(); st.MergeErrors != 0 || st.Aggregate.EnrichErrors != 0 {
		t.Fatalf("unclean sharded replay: merge errors %d, enrich errors %d",
			st.MergeErrors, st.Aggregate.EnrichErrors)
	}
}

// TestShardRecoveryEquivalence is the durability gate: an N-shard
// deployment abandoned without a final checkpoint (the in-process stand-
// in for SIGKILL: the WAL holds records past the last checkpoint) and
// recovered from its per-shard directories must end byte-identical to an
// uninterrupted N-shard run.
func TestShardRecoveryEquivalence(t *testing.T) {
	events := cleanCorpus(120)
	const shards = 3

	want := newCoordinator(t, coordConfig(8, shards))
	feed(t, want, events, 10)

	root := t.TempDir()
	cfg := coordConfig(8, shards)
	cfg.Stream.Durability = stream.Durability{Dir: root, CheckpointEvery: 3, NoSync: true}
	ctx := context.Background()
	c, err := shard.New(cfg, fakeEnricher{})
	if err != nil {
		t.Fatal(err)
	}
	// First half, flushed so the apply workers are idle, then abandoned
	// with the WAL ahead of the last checkpoint — no Close, no final
	// checkpoint, exactly the on-disk state a kill leaves behind.
	for lo := 0; lo < 60; lo += 10 {
		if err := c.Ingest(ctx, events[lo:lo+10]); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(ctx); err != nil {
		t.Fatal(err)
	}

	re, err := shard.New(cfg, fakeEnricher{})
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	t.Cleanup(re.Close)
	// Per-shard stats only: a merged view materialized at the 60-event
	// point would mint coordinator stable IDs for the transient pre-
	// threshold patterns, and the uninterrupted run never saw that point.
	recovered := 0
	for i := 0; i < re.Shards(); i++ {
		recovered += re.Shard(i).Stats().WAL.RecoveredRecords
	}
	if recovered == 0 {
		t.Fatal("recovery replayed no WAL records")
	}
	t.Logf("recovered %d WAL records across %d shards", recovered, shards)
	feed(t, re, events[60:], 10)

	for _, dim := range []string{"epsilon", "pi", "mu"} {
		gv, err := re.EPMClusters(dim)
		if err != nil {
			t.Fatal(err)
		}
		wv, err := want.EPMClusters(dim)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(normEPMView(gv), normEPMView(wv)) {
			t.Fatalf("recovered %s view diverges:\ngot  %+v\nwant %+v", dim, gv, wv)
		}
	}
	gb, err := re.BResult()
	if err != nil {
		t.Fatal(err)
	}
	wb, err := want.BResult()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(bMembers(gb), bMembers(wb)) {
		t.Fatal("recovered B partition diverges")
	}
	gEv, gSm, gEx, gE, gP, gM, gB := re.Counts()
	wEv, wSm, wEx, wE, wP, wM, wB := want.Counts()
	if gEv != wEv || gSm != wSm || gEx != wEx || gE != wE || gP != wP || gM != wM || gB != wB {
		t.Fatalf("recovered counts (%d,%d,%d,%d,%d,%d,%d) != uninterrupted (%d,%d,%d,%d,%d,%d,%d)",
			gEv, gSm, gEx, gE, gP, gM, gB, wEv, wSm, wEx, wE, wP, wM, wB)
	}
}

// TestSharedAdmissionLedger checks the chosen admission design: one
// client budget covers the whole deployment — N shards do not multiply a
// client's rate limit by N — while the trusted loopback path bypasses
// it.
func TestSharedAdmissionLedger(t *testing.T) {
	cfg := coordConfig(8, 4)
	cfg.Stream.Admission = admission.Config{RatePerSec: 1, Burst: 5}
	c := newCoordinator(t, cfg)
	ctx := context.Background()

	if err := c.IngestFrom(ctx, "client-a", cleanCorpus(5)); err != nil {
		t.Fatalf("first batch within burst rejected: %v", err)
	}
	err := c.IngestFrom(ctx, "client-a", cleanCorpus(5))
	if rej, ok := admission.AsRejection(err); !ok || rej.Reason != admission.ReasonRateLimit {
		t.Fatalf("burst-exhausted batch: err = %v, want rate-limit rejection", err)
	}
	if err := c.Ingest(ctx, cleanCorpus(5)); err != nil {
		t.Fatalf("trusted loopback batch rejected: %v", err)
	}

	st := c.Stats()
	if st.Aggregate.Admission.RejectedBatches["rate-limit"] != 1 {
		t.Fatalf("aggregate admission missed the rejection: %+v", st.Aggregate.Admission)
	}
	if st.Aggregate.Admission.RateLimitClients != 1 {
		t.Fatalf("shared ledger tracks %d clients, want 1", st.Aggregate.Admission.RateLimitClients)
	}
}

// TestStatsPerShard covers the observability satellite: Stats carries
// one telemetry row per shard, and the aggregate sums what the rows
// report.
func TestStatsPerShard(t *testing.T) {
	c := newCoordinator(t, coordConfig(8, 4))
	feed(t, c, cleanCorpus(120), 10)

	st := c.Stats()
	if st.Shards != 4 || len(st.PerShard) != 4 {
		t.Fatalf("want 4 per-shard rows, got %+v", st)
	}
	events, samples, queueCap := 0, 0, 0
	for i, ps := range st.PerShard {
		if ps.Shard != i {
			t.Fatalf("row %d labeled shard %d", i, ps.Shard)
		}
		if ps.Events == 0 || ps.EpsilonEpoch == 0 || ps.BEpochs == 0 {
			t.Fatalf("shard %d saw no work: %+v", i, ps)
		}
		if ps.Degraded || ps.Fatal != "" {
			t.Fatalf("healthy shard %d reports %+v", i, ps)
		}
		events += ps.Events
		samples += ps.Samples
		queueCap += ps.QueueCap
	}
	if events != st.Aggregate.Events || events != 120 {
		t.Fatalf("per-shard events sum %d, aggregate %d, want 120", events, st.Aggregate.Events)
	}
	if samples != st.Aggregate.Samples {
		t.Fatalf("per-shard samples sum %d, aggregate %d", samples, st.Aggregate.Samples)
	}
	if queueCap != st.Aggregate.QueueCap {
		t.Fatalf("per-shard queue caps sum %d, aggregate %d", queueCap, st.Aggregate.QueueCap)
	}

	// Sample queries resolve through the merged views regardless of the
	// owning shard.
	seen := 0
	for _, e := range cleanCorpus(120) {
		if e.Sample.MD5 == "" {
			continue
		}
		v, ok := c.Sample(e.Sample.MD5)
		if !ok {
			t.Fatalf("sample %s not found", e.Sample.MD5)
		}
		if v.BSize == 0 || v.BRepresentative == "" {
			t.Fatalf("sample %s missing merged B membership: %+v", e.Sample.MD5, v)
		}
		seen++
	}
	if seen == 0 {
		t.Fatal("corpus had no samples")
	}
}
