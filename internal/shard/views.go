package shard

// Merged global views. The coordinator merges the shards' incremental
// engines on demand — epm.Merge over the three EPM dimensions,
// bcluster.Merge over the behavioral clusterers — and caches the result
// keyed by the per-shard state versions, so an unchanged deployment
// serves queries from the cache without touching the shards.

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/bcluster"
	"repro/internal/epm"
	"repro/internal/stream"
)

// mergedState is one immutable merged snapshot.
type mergedState struct {
	// versions holds the per-shard state versions the snapshot was built
	// from — the cache key.
	versions []uint64
	// epm holds the merged ε/π/μ clusterings, b the merged behavioral
	// partition; all self-contained copies.
	epm [3]*epm.Clustering
	b   *bcluster.Result
	// stableIDs maps each merged EPM cluster index to its
	// coordinator-level stable ID (minted largest-first, kept for the
	// coordinator's lifetime — a pattern keeps its ID across snapshots).
	stableIDs [3][]int
}

// merged returns the current merged snapshot, rebuilding it only when
// some shard's state version moved. Lock order: viewMu first, then the
// per-shard read locks in shard order — one merger at a time, and the
// shards' apply workers only ever take their own lock, so the order
// cannot cycle.
func (c *Coordinator) merged() (*mergedState, error) {
	c.viewMu.Lock()
	defer c.viewMu.Unlock()

	views := make([]stream.EngineView, len(c.shards))
	releases := make([]func(), len(c.shards))
	for i, s := range c.shards {
		views[i], releases[i] = s.AcquireView()
	}
	release := func() {
		for i := len(releases) - 1; i >= 0; i-- {
			releases[i]()
		}
	}

	if c.view != nil {
		fresh := true
		for i := range views {
			if c.view.versions[i] != views[i].Version {
				fresh = false
				break
			}
		}
		if fresh {
			release()
			return c.view, nil
		}
	}

	m := &mergedState{versions: make([]uint64, len(views))}
	var err error
	func() {
		defer release()
		for i := range views {
			m.versions[i] = views[i].Version
		}
		for d := 0; d < 3; d++ {
			parts := make([]*epm.Incremental, len(views))
			for i := range views {
				parts[i] = views[i].EPM[d]
			}
			if m.epm[d], err = epm.Merge(parts); err != nil {
				return
			}
		}
		bparts := make([]*bcluster.Incremental, len(views))
		for i := range views {
			bparts[i] = views[i].B
		}
		m.b, err = bcluster.Merge(bparts)
	}()
	if err != nil {
		// A merge can only fail on incompatible engines or a sample
		// routed to two shards — a bug, not an operational state. Keep
		// serving the previous snapshot and surface the error in Stats.
		c.mergeErrors++
		c.lastMergeErr = err.Error()
		if c.view != nil {
			return c.view, nil
		}
		return nil, fmt.Errorf("shard: merging views: %w", err)
	}

	for d := 0; d < 3; d++ {
		m.stableIDs[d] = make([]int, len(m.epm[d].Clusters))
		for i := range m.epm[d].Clusters {
			key := m.epm[d].Clusters[i].Pattern.Key()
			id, ok := c.stable[d][key]
			if !ok {
				id = c.nextStable[d]
				c.nextStable[d]++
				c.stable[d][key] = id
			}
			m.stableIDs[d][i] = id
		}
	}
	c.view = m
	return m, nil
}

// dimIndex resolves a dimension name the same way the stream service
// does ("epsilon"/"pi"/"mu" or single-letter aliases).
func dimIndex(name string) (int, error) {
	switch name {
	case stream.DimEpsilon, "e":
		return 0, nil
	case stream.DimPi, "p":
		return 1, nil
	case stream.DimMu, "m":
		return 2, nil
	}
	return 0, fmt.Errorf("stream: unknown dimension %q", name)
}

// EPMClusters snapshots the merged view of one EPM dimension. Cluster
// sizes count epoch-integrated members (the merged engines' state);
// instances still pending on their shard are reported in Pending, and
// Epoch sums the per-shard epoch counters.
func (c *Coordinator) EPMClusters(name string) (stream.EPMView, error) {
	d, err := dimIndex(name)
	if err != nil {
		return stream.EPMView{}, err
	}
	m, err := c.merged()
	if err != nil {
		return stream.EPMView{}, err
	}
	view := stream.EPMView{Dimension: m.epm[d].Schema.Dimension}
	for _, s := range c.shards {
		sv, serr := s.EPMClusters(name)
		if serr != nil {
			return stream.EPMView{}, serr
		}
		view.Epoch += sv.Epoch
		view.Pending += sv.Pending
		view.Degraded = view.Degraded || sv.Degraded
	}
	view.Clusters = make([]stream.EPMClusterView, len(m.epm[d].Clusters))
	for i := range m.epm[d].Clusters {
		cl := &m.epm[d].Clusters[i]
		view.Instances += len(cl.InstanceIDs)
		view.Clusters[i] = stream.EPMClusterView{
			StableID:  m.stableIDs[d][i],
			EpochID:   cl.ID,
			Pattern:   cl.Pattern.Values,
			Size:      len(cl.InstanceIDs),
			Attackers: cl.Attackers,
			Sensors:   cl.Sensors,
		}
	}
	return view, nil
}

// BClusters snapshots the merged behavioral clustering. On a merge
// failure with no prior snapshot it serves an empty view; the error
// shows up in Stats.
func (c *Coordinator) BClusters() stream.BView {
	var view stream.BView
	for _, s := range c.shards {
		sv := s.BClusters()
		view.Pending += sv.Pending
		view.Epochs += sv.Epochs
		view.Degraded = view.Degraded || sv.Degraded
	}
	m, err := c.merged()
	if err != nil {
		return view
	}
	view.Samples = m.b.Stats.Samples
	view.Clusters = make([]stream.BClusterView, len(m.b.Clusters))
	for i, cl := range m.b.Clusters {
		view.Clusters[i] = stream.BClusterView{ID: cl.ID, Representative: cl.Members[0], Size: cl.Size()}
	}
	return view
}

// Sample queries one sample: the owning shard serves the per-sample
// facts, and the B-membership and μ-cluster IDs are remapped through
// the merged global views.
func (c *Coordinator) Sample(md5 string) (stream.SampleView, bool) {
	owner := c.shards[ShardOf(md5, len(c.shards))]
	v, ok := owner.Sample(md5)
	if !ok {
		return stream.SampleView{}, false
	}
	m, err := c.merged()
	if err != nil {
		return v, true
	}
	if i := m.b.ClusterOf(md5); i >= 0 {
		v.BRepresentative = m.b.Clusters[i].Members[0]
		v.BSize = m.b.Clusters[i].Size()
	}
	mSet := map[int]bool{}
	for _, eid := range owner.SampleEventIDs(md5) {
		if ci := m.epm[2].ClusterOf(eid); ci >= 0 {
			mSet[m.stableIDs[2][ci]] = true
		}
	}
	v.MClusters = make([]int, 0, len(mSet))
	for sid := range mSet {
		v.MClusters = append(v.MClusters, sid)
	}
	sort.Ints(v.MClusters)
	return v, true
}

// ShardStats is the per-shard telemetry slice of Stats.
type ShardStats struct {
	Shard         int    `json:"shard"`
	Events        int    `json:"events"`
	Samples       int    `json:"samples"`
	QueueDepth    int    `json:"queue_depth"`
	QueueCap      int    `json:"queue_cap"`
	MaxQueueDepth int    `json:"max_queue_depth"`
	EpsilonEpoch  int    `json:"epsilon_epoch"`
	PiEpoch       int    `json:"pi_epoch"`
	MuEpoch       int    `json:"mu_epoch"`
	BEpochs       int    `json:"b_epochs"`
	Degraded      bool   `json:"degraded"`
	Fatal         string `json:"fatal,omitempty"`
	// ReadOnly marks a shard serving reads only after a storage failure.
	ReadOnly bool `json:"read_only,omitempty"`
}

// Stats is the deployment-wide snapshot: the aggregate in the familiar
// stream.Stats shape (counters summed, cluster counts from the merged
// views, shared-ledger admission), plus the per-shard telemetry.
type Stats struct {
	Shards         int          `json:"shards"`
	MergeErrors    int          `json:"merge_errors,omitempty"`
	LastMergeError string       `json:"last_merge_error,omitempty"`
	Aggregate      stream.Stats `json:"aggregate"`
	PerShard       []ShardStats `json:"per_shard"`
}

// Stats snapshots the deployment.
func (c *Coordinator) Stats() Stats {
	per := make([]stream.Stats, len(c.shards))
	for i, s := range c.shards {
		per[i] = s.Stats()
	}

	out := Stats{Shards: len(c.shards), PerShard: make([]ShardStats, len(c.shards))}
	agg := &out.Aggregate
	agg.RejectedByReason = map[string]int{}
	var clientParts [][]stream.ClientStat
	for i, st := range per {
		out.PerShard[i] = ShardStats{
			Shard:         i,
			Events:        st.Events,
			Samples:       st.Samples,
			QueueDepth:    st.QueueDepth,
			QueueCap:      st.QueueCap,
			MaxQueueDepth: st.MaxQueueDepth,
			EpsilonEpoch:  st.Epsilon.Epoch,
			PiEpoch:       st.Pi.Epoch,
			MuEpoch:       st.Mu.Epoch,
			BEpochs:       st.B.Epochs,
			Degraded:      st.Admission.Degraded,
			Fatal:         st.Fatal,
			ReadOnly:      st.Storage.ReadOnly,
		}
		agg.Events += st.Events
		agg.Rejected += st.Rejected
		for k, v := range st.RejectedByReason {
			agg.RejectedByReason[k] += v
		}
		agg.Duplicates += st.Duplicates
		agg.Samples += st.Samples
		agg.ExecutableSamples += st.ExecutableSamples
		agg.Executed += st.Executed
		agg.Degraded += st.Degraded
		agg.EnrichErrors += st.EnrichErrors
		agg.StaleProfiles += st.StaleProfiles
		agg.Flushes += st.Flushes
		agg.RecentErrors = append(agg.RecentErrors, st.RecentErrors...)
		agg.QueueCap += st.QueueCap
		agg.QueueDepth += st.QueueDepth
		agg.MaxQueueDepth = max(agg.MaxQueueDepth, st.MaxQueueDepth)
		if agg.Fatal == "" {
			agg.Fatal = st.Fatal
		}
		// Storage health: one read-only shard makes the deployment's
		// write path partially degraded — surface it, keep the reason
		// from the first failing shard, and sum the healing ledgers.
		if st.Storage.ReadOnly && !agg.Storage.ReadOnly {
			agg.Storage.ReadOnly = true
			agg.Storage.Reason = st.Storage.Reason
			agg.Storage.Error = st.Storage.Error
		}
		agg.Storage.WALRepairs += st.Storage.WALRepairs
		agg.Storage.CheckpointFailures += st.Storage.CheckpointFailures
		agg.Storage.CheckpointFallbacks += st.Storage.CheckpointFallbacks
		agg.Storage.CorruptCheckpoints += st.Storage.CorruptCheckpoints
		agg.Storage.Generations += st.Storage.Generations
		agg.Storage.Scrub.Runs += st.Storage.Scrub.Runs
		agg.Storage.Scrub.Segments += st.Storage.Scrub.Segments
		agg.Storage.Scrub.Records += st.Storage.Scrub.Records
		agg.Storage.Scrub.Corruptions += st.Storage.Scrub.Corruptions
		agg.Storage.Scrub.CorruptSegments = append(agg.Storage.Scrub.CorruptSegments, st.Storage.Scrub.CorruptSegments...)
		if st.Storage.Scrub.LastError != "" {
			agg.Storage.Scrub.LastError = st.Storage.Scrub.LastError
		}
		agg.Retry.Pending += st.Retry.Pending
		agg.Retry.Scheduled += st.Retry.Scheduled
		agg.Retry.Attempts += st.Retry.Attempts
		agg.Retry.Successes += st.Retry.Successes
		agg.Retry.Quarantined += st.Retry.Quarantined
		agg.WAL.Enabled = agg.WAL.Enabled || st.WAL.Enabled
		agg.WAL.Appends += st.WAL.Appends
		agg.WAL.AppendErrors += st.WAL.AppendErrors
		agg.WAL.Checkpoints += st.WAL.Checkpoints
		agg.WAL.LastSeq = max(agg.WAL.LastSeq, st.WAL.LastSeq)
		agg.WAL.LastCheckpointSeq = max(agg.WAL.LastCheckpointSeq, st.WAL.LastCheckpointSeq)
		agg.WAL.RecoveredRecords += st.WAL.RecoveredRecords
		agg.Epsilon = sumDim(agg.Epsilon, st.Epsilon)
		agg.Pi = sumDim(agg.Pi, st.Pi)
		agg.Mu = sumDim(agg.Mu, st.Mu)
		agg.B.Pending += st.B.Pending
		agg.B.Epochs += st.B.Epochs
		agg.Admission = sumAdmission(agg.Admission, st.Admission)
		// Defense counters sum across shards: each shard's clusterer
		// quarantines independently over its own sample subset.
		if st.Defense != nil {
			if agg.Defense == nil {
				agg.Defense = &bcluster.DefenseStats{}
			}
			agg.Defense.Held += st.Defense.Held
			agg.Defense.Parked += st.Defense.Parked
			agg.Defense.HeldTotal += st.Defense.HeldTotal
			agg.Defense.ParkedTotal += st.Defense.ParkedTotal
			agg.Defense.Released += st.Defense.Released
			agg.Defense.Drained += st.Defense.Drained
		}
		if len(st.Clients) > 0 {
			clientParts = append(clientParts, st.Clients)
		}
	}
	agg.Clients = stream.MergeClientStats(clientParts...)
	if len(agg.RejectedByReason) == 0 {
		agg.RejectedByReason = nil
	}

	// Shared-ledger admission: the coordinator counts whole-deployment
	// batch admissions and rate-limit rejections; the per-shard ledgers
	// contribute shed/deadline/queue-full refusals, summed above.
	c.admMu.Lock()
	agg.Role = c.role
	agg.UptimeMS = time.Since(c.start).Milliseconds()
	agg.Replicated = 0
	for _, st := range per {
		agg.Replicated += st.Replicated
	}
	agg.Admission.AdmittedBatches = c.admittedBatches
	agg.Admission.AdmittedEvents = c.admittedEvents
	for k, v := range c.rejectedBatches {
		if agg.Admission.RejectedBatches == nil {
			agg.Admission.RejectedBatches = map[string]int{}
		}
		agg.Admission.RejectedBatches[k] += v
	}
	for k, v := range c.rejectedEvents {
		if agg.Admission.RejectedEvents == nil {
			agg.Admission.RejectedEvents = map[string]int{}
		}
		agg.Admission.RejectedEvents[k] += v
	}
	c.admMu.Unlock()
	if c.limiter != nil {
		agg.Admission.Enabled = true
		agg.Admission.RateLimitClients = c.limiter.Clients()
	}

	// Cluster counts come from the merged views, not per-shard sums — a
	// cross-shard link or an aggregate-only invariant crossing changes
	// them.
	m, err := c.merged()
	c.viewMu.Lock()
	out.MergeErrors = c.mergeErrors
	out.LastMergeError = c.lastMergeErr
	c.viewMu.Unlock()
	if err == nil {
		agg.Epsilon.Clusters = len(m.epm[0].Clusters)
		agg.Pi.Clusters = len(m.epm[1].Clusters)
		agg.Mu.Clusters = len(m.epm[2].Clusters)
		agg.B.Samples = m.b.Stats.Samples
		agg.B.Clusters = len(m.b.Clusters)
		agg.B.CandidatePairs = m.b.Stats.CandidatePairs
		agg.B.Links = m.b.Stats.Links
	}
	return out
}

// sumDim folds one shard's dimension stats into the aggregate; Clusters
// is overwritten from the merged view afterwards.
func sumDim(a, b stream.DimStats) stream.DimStats {
	a.Epoch += b.Epoch
	a.Instances += b.Instances
	a.Pending += b.Pending
	a.DeltaEpochs += b.DeltaEpochs
	a.FullRegroups += b.FullRegroups
	return a
}

// sumAdmission folds one shard's admission ledger into the aggregate.
// AdmittedBatches/Events and the rate-limit fields are overwritten from
// the coordinator's shared ledger afterwards.
func sumAdmission(a, b stream.AdmissionStats) stream.AdmissionStats {
	a.Enabled = a.Enabled || b.Enabled
	for k, v := range b.RejectedBatches {
		if a.RejectedBatches == nil {
			a.RejectedBatches = map[string]int{}
		}
		a.RejectedBatches[k] += v
	}
	for k, v := range b.RejectedEvents {
		if a.RejectedEvents == nil {
			a.RejectedEvents = map[string]int{}
		}
		a.RejectedEvents[k] += v
	}
	a.QueueDelayMs = maxf(a.QueueDelayMs, b.QueueDelayMs)
	a.ShedProbability = maxf(a.ShedProbability, b.ShedProbability)
	a.Waiters += b.Waiters
	a.Degraded = a.Degraded || b.Degraded
	a.DegradedEntered += b.DegradedEntered
	a.DegradedExited += b.DegradedExited
	a.EpochsDeferred += b.EpochsDeferred
	return a
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// StatsPayload adapts Stats to the httpapi backend interface.
func (c *Coordinator) StatsPayload() any { return c.Stats() }

// Counts mirrors stream.Service.Counts over the merged views, for
// convergence verification.
func (c *Coordinator) Counts() (events, samples, executable, e, p, m, b int) {
	for _, s := range c.shards {
		ev, sm, ex, _, _, _, _ := s.Counts()
		events += ev
		samples += sm
		executable += ex
	}
	ms, err := c.merged()
	if err != nil {
		return events, samples, executable, 0, 0, 0, 0
	}
	return events, samples, executable,
		len(ms.epm[0].Clusters), len(ms.epm[1].Clusters), len(ms.epm[2].Clusters), len(ms.b.Clusters)
}

// EPMClustering exposes the merged clustering of one dimension for
// equivalence tests and reporting.
func (c *Coordinator) EPMClustering(name string) (*epm.Clustering, error) {
	d, err := dimIndex(name)
	if err != nil {
		return nil, err
	}
	m, err := c.merged()
	if err != nil {
		return nil, err
	}
	return m.epm[d], nil
}

// BResult exposes the merged behavioral partition.
func (c *Coordinator) BResult() (*bcluster.Result, error) {
	m, err := c.merged()
	if err != nil {
		return nil, err
	}
	return m.b, nil
}
