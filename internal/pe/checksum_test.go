package pe

import (
	"testing"
)

func TestChecksumRoundTrip(t *testing.T) {
	data, err := testImage().Build()
	if err != nil {
		t.Fatal(err)
	}
	// Unstamped image verifies trivially.
	ok, err := VerifyChecksum(data)
	if err != nil || !ok {
		t.Fatalf("unstamped image: ok=%v err=%v", ok, err)
	}
	if err := SetChecksum(data); err != nil {
		t.Fatal(err)
	}
	ok, err = VerifyChecksum(data)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("stamped image must verify")
	}
}

func TestChecksumDetectsCorruption(t *testing.T) {
	data, err := testImage().Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := SetChecksum(data); err != nil {
		t.Fatal(err)
	}
	// Flip a byte deep in the section data.
	data[len(data)-100] ^= 0xFF
	ok, err := VerifyChecksum(data)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("corrupted image must fail verification")
	}
}

func TestChecksumStampingIsStable(t *testing.T) {
	data, err := testImage().Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := SetChecksum(data); err != nil {
		t.Fatal(err)
	}
	// The checksum excludes its own field: re-computing over the stamped
	// image must reproduce the stored value.
	if err := SetChecksum(data); err != nil {
		t.Fatal(err)
	}
	ok, err := VerifyChecksum(data)
	if err != nil || !ok {
		t.Fatalf("double stamping broke verification: ok=%v err=%v", ok, err)
	}
}

func TestChecksumErrors(t *testing.T) {
	if _, err := Checksum([]byte("nope")); err == nil {
		t.Error("non-PE must error")
	}
	data, err := testImage().Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Checksum(data[:0x90]); err == nil {
		t.Error("truncated header must error")
	}
	if _, err := VerifyChecksum([]byte("xx")); err == nil {
		t.Error("VerifyChecksum on garbage must error")
	}
	if err := SetChecksum([]byte("xx")); err == nil {
		t.Error("SetChecksum on garbage must error")
	}
}

func TestChecksumOddLength(t *testing.T) {
	data, err := testImage().Build()
	if err != nil {
		t.Fatal(err)
	}
	odd := append(append([]byte(nil), data...), 0x41)
	if err := SetChecksum(odd); err != nil {
		t.Fatal(err)
	}
	ok, err := VerifyChecksum(odd)
	if err != nil || !ok {
		t.Fatalf("odd-length image: ok=%v err=%v", ok, err)
	}
}
