package pe

import (
	"crypto/md5"
	"encoding/hex"
	"sort"
	"strings"
)

// Features are the per-sample static facts that feed the EPM M-dimension
// (Table 1 of the paper): file MD5, size, libmagic-style type, and the PE
// header attributes extracted through a pefile-equivalent parser.
type Features struct {
	MD5             string
	Size            int
	Magic           string
	IsPE            bool
	MachineType     int
	NumSections     int
	NumImportedDLLs int
	OSVersion       int // major*10 + minor, e.g. 4.0 -> 40
	LinkerVersion   int // major*10 + minor, e.g. 9.2 -> 92
	SectionNames    string
	ImportedDLLs    string
	Kernel32Symbols string
}

// Magic strings emulating libmagic output for the types the corpus
// contains. The paper's example pattern shows the exact PE GUI string.
const (
	MagicPEGUI     = "MS-DOS executable PE for MS Windows (GUI) Intel 80386 32-bit"
	MagicPEConsole = "MS-DOS executable PE for MS Windows (console) Intel 80386 32-bit"
	MagicMZ        = "MS-DOS executable"
	MagicData      = "data"
	MagicEmpty     = "empty"
)

// ExtractFeatures computes the static features of a raw sample. It never
// fails: non-PE and truncated inputs degrade to magic-only features,
// mirroring how the real pipeline stores whatever libmagic and pefile
// could recover.
func ExtractFeatures(data []byte) Features {
	sum := md5.Sum(data)
	ft := Features{
		MD5:   hex.EncodeToString(sum[:]),
		Size:  len(data),
		Magic: sniffMagic(data),
	}
	f, err := Parse(data)
	if err != nil {
		return ft
	}
	ft.IsPE = true
	ft.MachineType = int(f.Machine)
	ft.NumSections = len(f.Sections)
	ft.NumImportedDLLs = len(f.Imports)
	ft.OSVersion = int(f.OSMajor)*10 + int(f.OSMinor)
	ft.LinkerVersion = int(f.LinkerMajor)*10 + int(f.LinkerMinor)
	ft.SectionNames = strings.Join(f.SectionNames(), ",")

	dlls := make([]string, 0, len(f.Imports))
	for _, imp := range f.Imports {
		dlls = append(dlls, imp.DLL)
	}
	sort.Strings(dlls)
	ft.ImportedDLLs = strings.Join(dlls, ",")

	for _, imp := range f.Imports {
		if strings.EqualFold(imp.DLL, "KERNEL32.dll") {
			syms := append([]string(nil), imp.Symbols...)
			sort.Strings(syms)
			ft.Kernel32Symbols = strings.Join(syms, ",")
			break
		}
	}
	return ft
}

// sniffMagic emulates the small slice of libmagic behaviour the corpus
// exercises: PE GUI/console executables, bare MZ stubs, arbitrary data.
func sniffMagic(data []byte) string {
	if len(data) == 0 {
		return MagicEmpty
	}
	if len(data) < 2 || data[0] != 'M' || data[1] != 'Z' {
		return MagicData
	}
	f, err := Parse(data)
	if err != nil {
		return MagicMZ
	}
	if f.Machine != MachineI386 {
		return MagicMZ
	}
	if f.Subsystem == SubsystemCUI {
		return MagicPEConsole
	}
	return MagicPEGUI
}
