package pe

import (
	"bytes"
	"testing"
)

// FuzzParse drives the PE parser with mutated images: whatever the input,
// the parser must return cleanly (no panics, no out-of-bounds), and any
// successfully parsed file must survive feature extraction.
func FuzzParse(f *testing.F) {
	valid, err := testImage().Build()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:0x200])
	f.Add([]byte("MZ"))
	f.Add([]byte("not a pe at all"))
	f.Add(bytes.Repeat([]byte{0xFF}, 512))
	// A header-corrupted variant.
	corrupt := append([]byte(nil), valid...)
	corrupt[0x3c] = 0xF0
	corrupt[0x3d] = 0xFF
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, data []byte) {
		file, err := Parse(data)
		if err != nil {
			return
		}
		// A parse success must yield structurally sane results.
		if file.Size != len(data) {
			t.Fatalf("Size = %d, want %d", file.Size, len(data))
		}
		for _, s := range file.Sections {
			if int(s.RawOffset)+int(s.RawSize) > len(data) {
				t.Fatalf("section %q escapes the image", s.Name)
			}
		}
		// Feature extraction must never panic on parseable input.
		ft := ExtractFeatures(data)
		if !ft.IsPE {
			t.Fatal("Parse succeeded but ExtractFeatures declared non-PE")
		}
	})
}

// FuzzChecksum ensures checksum computation and verification stay in
// bounds on arbitrary input.
func FuzzChecksum(f *testing.F) {
	valid, err := testImage().Build()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:100])
	f.Add([]byte("MZ"))

	f.Fuzz(func(t *testing.T, data []byte) {
		if _, err := Checksum(data); err != nil {
			return
		}
		buf := append([]byte(nil), data...)
		if err := SetChecksum(buf); err != nil {
			t.Fatalf("Checksum succeeded but SetChecksum failed: %v", err)
		}
		ok, err := VerifyChecksum(buf)
		if err != nil || !ok {
			t.Fatalf("stamped image does not verify: ok=%v err=%v", ok, err)
		}
	})
}
