package pe

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/simrng"
)

// testImage builds a representative image resembling the paper's
// M-cluster 13 pattern: three sections plus KERNEL32 imports.
func testImage() *Image {
	return &Image{
		Machine:     MachineI386,
		Subsystem:   SubsystemGUI,
		LinkerMajor: 9,
		LinkerMinor: 2,
		OSMajor:     6,
		OSMinor:     4,
		Sections: []Section{
			{Name: ".text", Data: bytes.Repeat([]byte{0x90}, 4096), Characteristics: SectionCode | SectionExecute | SectionRead},
			{Name: "rdata", Data: bytes.Repeat([]byte{0x11}, 1024), Characteristics: SectionInitializedData | SectionRead},
			{Name: ".data", Data: bytes.Repeat([]byte{0x22}, 2048), Characteristics: SectionInitializedData | SectionRead | SectionWrite},
		},
		Imports: []Import{
			{DLL: "KERNEL32.dll", Symbols: []string{"GetProcAddress", "LoadLibraryA"}},
		},
	}
}

func TestBuildParseRoundTrip(t *testing.T) {
	img := testImage()
	data, err := img.Build()
	if err != nil {
		t.Fatal(err)
	}
	f, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if f.Machine != MachineI386 {
		t.Errorf("machine = %#x", f.Machine)
	}
	if f.LinkerMajor != 9 || f.LinkerMinor != 2 {
		t.Errorf("linker = %d.%d", f.LinkerMajor, f.LinkerMinor)
	}
	if f.OSMajor != 6 || f.OSMinor != 4 {
		t.Errorf("os = %d.%d", f.OSMajor, f.OSMinor)
	}
	if f.Subsystem != SubsystemGUI {
		t.Errorf("subsystem = %d", f.Subsystem)
	}
	wantSections := []string{".text", "rdata", ".data", ".idata"}
	got := f.SectionNames()
	if len(got) != len(wantSections) {
		t.Fatalf("sections = %v, want %v", got, wantSections)
	}
	for i := range got {
		if got[i] != wantSections[i] {
			t.Fatalf("sections = %v, want %v", got, wantSections)
		}
	}
	if len(f.Imports) != 1 || f.Imports[0].DLL != "KERNEL32.dll" {
		t.Fatalf("imports = %+v", f.Imports)
	}
	syms := f.Imports[0].Symbols
	if len(syms) != 2 || syms[0] != "GetProcAddress" || syms[1] != "LoadLibraryA" {
		t.Fatalf("symbols = %v", syms)
	}
	// Section data must round-trip (the polymorphic engines depend on it).
	if !bytes.Equal(f.Sections[0].Data[:4096], img.Sections[0].Data) {
		t.Error("section 0 data mismatch")
	}
}

func TestBuildDeterministic(t *testing.T) {
	a, err := testImage().Build()
	if err != nil {
		t.Fatal(err)
	}
	b, err := testImage().Build()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("Build is not deterministic")
	}
}

func TestBuildMultipleDLLs(t *testing.T) {
	img := testImage()
	img.Imports = append(img.Imports,
		Import{DLL: "WS2_32.dll", Symbols: []string{"socket", "connect", "send", "recv"}},
		Import{DLL: "ADVAPI32.dll", Symbols: []string{"RegSetValueExA"}},
	)
	data, err := img.Build()
	if err != nil {
		t.Fatal(err)
	}
	f, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Imports) != 3 {
		t.Fatalf("imports = %d, want 3", len(f.Imports))
	}
	byDLL := map[string][]string{}
	for _, imp := range f.Imports {
		byDLL[imp.DLL] = imp.Symbols
	}
	if got := byDLL["WS2_32.dll"]; len(got) != 4 {
		t.Errorf("WS2_32 symbols = %v", got)
	}
	if got := byDLL["ADVAPI32.dll"]; len(got) != 1 || got[0] != "RegSetValueExA" {
		t.Errorf("ADVAPI32 symbols = %v", got)
	}
}

func TestValidateErrors(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Image)
	}{
		{"no sections", func(i *Image) { i.Sections = nil }},
		{"long section name", func(i *Image) { i.Sections[0].Name = "muchtoolongname" }},
		{"empty section name", func(i *Image) { i.Sections[0].Name = "" }},
		{"empty section data", func(i *Image) { i.Sections[0].Data = nil }},
		{"reserved idata name", func(i *Image) { i.Sections[0].Name = ".idata" }},
		{"empty dll", func(i *Image) { i.Imports[0].DLL = "" }},
		{"no symbols", func(i *Image) { i.Imports[0].Symbols = nil }},
		{"duplicate dll", func(i *Image) {
			i.Imports = append(i.Imports, Import{DLL: "KERNEL32.dll", Symbols: []string{"ExitProcess"}})
		}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			img := testImage()
			tt.mutate(img)
			if _, err := img.Build(); err == nil {
				t.Error("Build succeeded, want validation error")
			}
		})
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":     nil,
		"too short": []byte("MZ"),
		"not mz":    bytes.Repeat([]byte{0xaa}, 128),
		"text":      []byte(strings.Repeat("hello world ", 30)),
	}
	for name, data := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := Parse(data); err == nil {
				t.Error("Parse succeeded on garbage")
			}
		})
	}
}

func TestParseTruncated(t *testing.T) {
	data, err := testImage().Build()
	if err != nil {
		t.Fatal(err)
	}
	// Cutting anywhere inside the section data must yield ErrTruncated (the
	// headers survive, the payload does not) — this models the Nepenthes
	// download failures of the paper.
	for _, cut := range []int{len(data) / 2, len(data) - 100, 0x200} {
		if _, err := Parse(data[:cut]); err == nil {
			t.Errorf("Parse(truncated at %d) succeeded", cut)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	img := testImage()
	cl := img.Clone()
	cl.Sections[0].Data[0] = 0xFF
	cl.Imports[0].Symbols[0] = "Mutated"
	if img.Sections[0].Data[0] == 0xFF {
		t.Error("Clone shares section data")
	}
	if img.Imports[0].Symbols[0] == "Mutated" {
		t.Error("Clone shares import symbols")
	}
}

func TestExtractFeatures(t *testing.T) {
	data, err := testImage().Build()
	if err != nil {
		t.Fatal(err)
	}
	ft := ExtractFeatures(data)
	if !ft.IsPE {
		t.Fatal("IsPE = false")
	}
	if ft.MachineType != 332 {
		t.Errorf("machine type = %d, want 332", ft.MachineType)
	}
	if ft.NumSections != 4 {
		t.Errorf("sections = %d, want 4", ft.NumSections)
	}
	if ft.NumImportedDLLs != 1 {
		t.Errorf("dlls = %d, want 1", ft.NumImportedDLLs)
	}
	if ft.LinkerVersion != 92 {
		t.Errorf("linker version = %d, want 92", ft.LinkerVersion)
	}
	if ft.OSVersion != 64 {
		t.Errorf("os version = %d, want 64", ft.OSVersion)
	}
	if ft.Magic != MagicPEGUI {
		t.Errorf("magic = %q", ft.Magic)
	}
	if ft.Kernel32Symbols != "GetProcAddress,LoadLibraryA" {
		t.Errorf("kernel32 symbols = %q", ft.Kernel32Symbols)
	}
	if ft.ImportedDLLs != "KERNEL32.dll" {
		t.Errorf("imported dlls = %q", ft.ImportedDLLs)
	}
	if ft.Size != len(data) {
		t.Errorf("size = %d, want %d", ft.Size, len(data))
	}
	if len(ft.MD5) != 32 {
		t.Errorf("md5 = %q", ft.MD5)
	}
}

func TestExtractFeaturesNonPE(t *testing.T) {
	ft := ExtractFeatures([]byte("definitely not an executable"))
	if ft.IsPE {
		t.Error("IsPE = true for text")
	}
	if ft.Magic != MagicData {
		t.Errorf("magic = %q, want %q", ft.Magic, MagicData)
	}
	if ft.NumSections != 0 || ft.LinkerVersion != 0 {
		t.Error("PE fields must stay zero for non-PE input")
	}
}

func TestExtractFeaturesTruncatedPE(t *testing.T) {
	data, err := testImage().Build()
	if err != nil {
		t.Fatal(err)
	}
	ft := ExtractFeatures(data[:len(data)/2])
	if ft.IsPE {
		t.Error("truncated sample must not be IsPE")
	}
	if ft.Magic != MagicMZ {
		t.Errorf("magic = %q, want %q", ft.Magic, MagicMZ)
	}
}

func TestExtractFeaturesEmpty(t *testing.T) {
	ft := ExtractFeatures(nil)
	if ft.Magic != MagicEmpty || ft.Size != 0 {
		t.Errorf("features = %+v", ft)
	}
}

func TestConsoleSubsystemMagic(t *testing.T) {
	img := testImage()
	img.Subsystem = SubsystemCUI
	data, err := img.Build()
	if err != nil {
		t.Fatal(err)
	}
	if got := ExtractFeatures(data).Magic; got != MagicPEConsole {
		t.Errorf("magic = %q, want console", got)
	}
}

// TestRoundTripProperty drives the builder/parser pair with randomized
// images: arbitrary section contents, counts, versions, and import sets
// must all survive the byte round trip.
func TestRoundTripProperty(t *testing.T) {
	r := simrng.New(99).Stream("pe-prop")
	dllPool := []string{"KERNEL32.dll", "WS2_32.dll", "ADVAPI32.dll", "USER32.dll", "WININET.dll"}
	symPool := []string{"GetProcAddress", "LoadLibraryA", "CreateFileA", "WriteFile", "ExitProcess", "socket", "connect", "RegOpenKeyA"}

	for trial := 0; trial < 60; trial++ {
		img := &Image{
			Machine:     MachineI386,
			Subsystem:   SubsystemGUI,
			LinkerMajor: uint8(r.Intn(15)),
			LinkerMinor: uint8(r.Intn(10)),
			OSMajor:     uint16(r.Intn(10)),
			OSMinor:     uint16(r.Intn(10)),
		}
		nSec := 1 + r.Intn(5)
		for i := 0; i < nSec; i++ {
			data := make([]byte, 1+r.Intn(8000))
			r.Read(data)
			img.Sections = append(img.Sections, Section{
				Name:            []string{".text", ".data", ".rsrc", ".reloc", "UPX0", "UPX1"}[i%6],
				Data:            data,
				Characteristics: SectionRead,
			})
		}
		for _, di := range simrng.SampleWithoutReplacement(r, len(dllPool), r.Intn(4)) {
			nSym := 1 + r.Intn(len(symPool))
			syms := make([]string, 0, nSym)
			for _, si := range simrng.SampleWithoutReplacement(r, len(symPool), nSym) {
				syms = append(syms, symPool[si])
			}
			img.Imports = append(img.Imports, Import{DLL: dllPool[di], Symbols: syms})
		}

		raw, err := img.Build()
		if err != nil {
			t.Fatalf("trial %d: Build: %v", trial, err)
		}
		f, err := Parse(raw)
		if err != nil {
			t.Fatalf("trial %d: Parse: %v", trial, err)
		}
		if f.LinkerMajor != img.LinkerMajor || f.LinkerMinor != img.LinkerMinor {
			t.Fatalf("trial %d: linker mismatch", trial)
		}
		wantSec := len(img.Sections)
		if len(img.Imports) > 0 {
			wantSec++
		}
		if len(f.Sections) != wantSec {
			t.Fatalf("trial %d: sections %d, want %d", trial, len(f.Sections), wantSec)
		}
		for i, s := range img.Sections {
			if !bytes.Equal(f.Sections[i].Data[:len(s.Data)], s.Data) {
				t.Fatalf("trial %d: section %d data mismatch", trial, i)
			}
		}
		if len(f.Imports) != len(img.Imports) {
			t.Fatalf("trial %d: imports %d, want %d", trial, len(f.Imports), len(img.Imports))
		}
		for i, imp := range img.Imports {
			if f.Imports[i].DLL != imp.DLL || len(f.Imports[i].Symbols) != len(imp.Symbols) {
				t.Fatalf("trial %d: import %d mismatch: %+v vs %+v", trial, i, f.Imports[i], imp)
			}
		}
	}
}

func TestMD5ChangesWithContent(t *testing.T) {
	f := func(a, b []byte) bool {
		fa, fb := ExtractFeatures(a), ExtractFeatures(b)
		if bytes.Equal(a, b) {
			return fa.MD5 == fb.MD5
		}
		return fa.MD5 != fb.MD5
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSymbolsOf(t *testing.T) {
	img := testImage()
	syms := img.SymbolsOf("kernel32.DLL")
	if len(syms) != 2 || syms[0] != "GetProcAddress" {
		t.Errorf("SymbolsOf = %v", syms)
	}
	if got := img.SymbolsOf("NTDLL.dll"); got != nil {
		t.Errorf("SymbolsOf(absent) = %v, want nil", got)
	}
}

func TestImageAccessors(t *testing.T) {
	img := testImage()
	names := img.SectionNames()
	if len(names) != 4 || names[3] != ".idata" {
		t.Errorf("SectionNames = %v", names)
	}
	img.Imports = nil
	if got := len(img.SectionNames()); got != 3 {
		t.Errorf("SectionNames without imports = %d entries", got)
	}
	img = testImage()
	dlls := img.ImportedDLLs()
	if len(dlls) != 1 || dlls[0] != "KERNEL32.dll" {
		t.Errorf("ImportedDLLs = %v", dlls)
	}
}

func BenchmarkBuild(b *testing.B) {
	img := testImage()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := img.Build(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParse(b *testing.B) {
	data, err := testImage().Build()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtractFeatures(b *testing.B) {
	data, err := testImage().Build()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ExtractFeatures(data)
	}
}
