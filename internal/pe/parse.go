package pe

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
)

// Parse errors distinguish "not a PE at all" from "PE but damaged"; the
// corpus contains truncated downloads (the paper reports 6353 collected vs
// 5165 executable samples) and the enrichment pipeline needs to tell the
// two apart.
var (
	// ErrNotPE reports input that does not start with a DOS/PE signature.
	ErrNotPE = errors.New("pe: not a PE image")
	// ErrTruncated reports a PE image whose declared structures exceed the
	// available bytes.
	ErrTruncated = errors.New("pe: truncated image")
)

// File is the parsed view of a PE image, exposing exactly the facts the
// EPM feature extractor consumes.
type File struct {
	Machine       uint16
	Subsystem     uint16
	LinkerMajor   uint8
	LinkerMinor   uint8
	OSMajor       uint16
	OSMinor       uint16
	TimeDateStamp uint32
	Size          int
	Sections      []ParsedSection
	Imports       []Import
}

// ParsedSection describes one section table entry plus its raw content.
type ParsedSection struct {
	Name            string
	VirtualAddress  uint32
	VirtualSize     uint32
	RawOffset       uint32
	RawSize         uint32
	Characteristics uint32
	Data            []byte
}

// Parse decodes a PE32 image produced by Image.Build (or any conformant
// PE32 with a standard import directory).
func Parse(data []byte) (*File, error) {
	if len(data) < dosHeaderSize || data[0] != 'M' || data[1] != 'Z' {
		return nil, ErrNotPE
	}
	peOff := int(binary.LittleEndian.Uint32(data[0x3c:]))
	if peOff <= 0 || peOff+4+coffHeaderSize > len(data) {
		return nil, fmt.Errorf("%w: PE header at %#x beyond %d bytes", ErrTruncated, peOff, len(data))
	}
	if string(data[peOff:peOff+4]) != "PE\x00\x00" {
		return nil, ErrNotPE
	}

	f := &File{Size: len(data)}
	coff := data[peOff+4:]
	f.Machine = binary.LittleEndian.Uint16(coff[0:])
	nSections := int(binary.LittleEndian.Uint16(coff[2:]))
	f.TimeDateStamp = binary.LittleEndian.Uint32(coff[4:])
	optSize := int(binary.LittleEndian.Uint16(coff[16:]))

	optOff := peOff + 4 + coffHeaderSize
	if optOff+optSize > len(data) {
		return nil, fmt.Errorf("%w: optional header exceeds image", ErrTruncated)
	}
	if optSize < 96 {
		return nil, fmt.Errorf("pe: optional header too small (%d bytes)", optSize)
	}
	oh := data[optOff : optOff+optSize]
	if magic := binary.LittleEndian.Uint16(oh[0:]); magic != optionalHeaderMagicPE32 {
		return nil, fmt.Errorf("pe: unsupported optional header magic %#x", magic)
	}
	f.LinkerMajor = oh[2]
	f.LinkerMinor = oh[3]
	f.OSMajor = binary.LittleEndian.Uint16(oh[40:])
	f.OSMinor = binary.LittleEndian.Uint16(oh[42:])
	f.Subsystem = binary.LittleEndian.Uint16(oh[68:])

	var importRVA, importSize uint32
	if nDirs := binary.LittleEndian.Uint32(oh[92:]); nDirs > importDirectoryIndex && optSize >= 96+8*(importDirectoryIndex+1) {
		importRVA = binary.LittleEndian.Uint32(oh[96+8*importDirectoryIndex:])
		importSize = binary.LittleEndian.Uint32(oh[96+8*importDirectoryIndex+4:])
	}

	secOff := optOff + optSize
	if secOff+nSections*sectionHeaderSize > len(data) {
		return nil, fmt.Errorf("%w: section table exceeds image", ErrTruncated)
	}
	f.Sections = make([]ParsedSection, 0, nSections)
	for i := 0; i < nSections; i++ {
		sh := data[secOff+i*sectionHeaderSize:]
		sec := ParsedSection{
			Name:            strings.TrimRight(string(sh[0:sectionNameLen]), "\x00"),
			VirtualSize:     binary.LittleEndian.Uint32(sh[8:]),
			VirtualAddress:  binary.LittleEndian.Uint32(sh[12:]),
			RawSize:         binary.LittleEndian.Uint32(sh[16:]),
			RawOffset:       binary.LittleEndian.Uint32(sh[20:]),
			Characteristics: binary.LittleEndian.Uint32(sh[36:]),
		}
		end := int(sec.RawOffset) + int(sec.RawSize)
		if end > len(data) || int(sec.RawOffset) > len(data) {
			return nil, fmt.Errorf("%w: section %q raw data [%d:%d] exceeds %d bytes",
				ErrTruncated, sec.Name, sec.RawOffset, end, len(data))
		}
		sec.Data = data[sec.RawOffset:end]
		f.Sections = append(f.Sections, sec)
	}

	if importRVA != 0 && importSize != 0 {
		imports, err := parseImports(data, f.Sections, importRVA)
		if err != nil {
			return nil, err
		}
		f.Imports = imports
	}
	return f, nil
}

// rvaToOffset maps a virtual address to a file offset using the section
// table. It returns -1 when no section covers the RVA.
func rvaToOffset(sections []ParsedSection, rva uint32) int {
	for _, s := range sections {
		size := s.VirtualSize
		if s.RawSize > size {
			size = s.RawSize
		}
		if rva >= s.VirtualAddress && rva < s.VirtualAddress+size {
			return int(rva - s.VirtualAddress + s.RawOffset)
		}
	}
	return -1
}

func parseImports(data []byte, sections []ParsedSection, dirRVA uint32) ([]Import, error) {
	var imports []Import
	for i := 0; ; i++ {
		off := rvaToOffset(sections, dirRVA+uint32(i*importDescriptorSize))
		if off < 0 || off+importDescriptorSize > len(data) {
			return nil, fmt.Errorf("%w: import descriptor %d unmapped", ErrTruncated, i)
		}
		d := data[off:]
		ilt := binary.LittleEndian.Uint32(d[0:])
		nameRVA := binary.LittleEndian.Uint32(d[12:])
		iat := binary.LittleEndian.Uint32(d[16:])
		if ilt == 0 && nameRVA == 0 && iat == 0 {
			return imports, nil
		}
		dll, err := readCString(data, sections, nameRVA)
		if err != nil {
			return nil, fmt.Errorf("pe: import %d name: %w", i, err)
		}
		thunks := ilt
		if thunks == 0 {
			thunks = iat
		}
		var symbols []string
		for j := 0; ; j++ {
			toff := rvaToOffset(sections, thunks+uint32(4*j))
			if toff < 0 || toff+4 > len(data) {
				return nil, fmt.Errorf("%w: thunk %d of %q unmapped", ErrTruncated, j, dll)
			}
			entry := binary.LittleEndian.Uint32(data[toff:])
			if entry == 0 {
				break
			}
			if entry&0x80000000 != 0 {
				symbols = append(symbols, fmt.Sprintf("ordinal#%d", entry&0xffff))
				continue
			}
			sym, err := readCString(data, sections, entry+2) // skip hint
			if err != nil {
				return nil, fmt.Errorf("pe: symbol %d of %q: %w", j, dll, err)
			}
			symbols = append(symbols, sym)
		}
		imports = append(imports, Import{DLL: dll, Symbols: symbols})
	}
}

func readCString(data []byte, sections []ParsedSection, rva uint32) (string, error) {
	off := rvaToOffset(sections, rva)
	if off < 0 || off >= len(data) {
		return "", fmt.Errorf("%w: string at RVA %#x unmapped", ErrTruncated, rva)
	}
	end := off
	for end < len(data) && data[end] != 0 {
		end++
	}
	if end == len(data) {
		return "", fmt.Errorf("%w: unterminated string at RVA %#x", ErrTruncated, rva)
	}
	return string(data[off:end]), nil
}

// SectionNames returns the section names in table order.
func (f *File) SectionNames() []string {
	out := make([]string, len(f.Sections))
	for i, s := range f.Sections {
		out[i] = s.Name
	}
	return out
}
