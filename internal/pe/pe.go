// Package pe implements a minimal but real Portable Executable (PE32)
// writer and parser.
//
// The reproduction needs real PE images because the paper's M-dimension
// features (Table 1) are facts extracted from PE headers with the pefile
// library: machine type, number of sections, linker and OS versions,
// section names, imported DLLs, and referenced Kernel32.dll symbols. The
// writer emits well-formed PE32 files (DOS header, COFF header, optional
// header, section table, import directory) and the parser recovers every
// feature from the raw bytes, so polymorphic engines operate on genuine
// binary images rather than on symbolic descriptions.
package pe

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Machine types (COFF header). Only i386 is exercised by the corpus, which
// matches the paper: every observed sample reported machine type 332.
const (
	MachineI386  = 0x14c // 332: Intel 80386
	MachineAMD64 = 0x8664
)

// Subsystem values (optional header).
const (
	SubsystemGUI = 2
	SubsystemCUI = 3
)

// Section characteristic flags (subset).
const (
	SectionCode               = 0x00000020
	SectionInitializedData    = 0x00000040
	SectionExecute            = 0x20000000
	SectionRead               = 0x40000000
	SectionWrite              = 0x80000000
	sectionNameLen            = 8
	importDescriptorSize      = 20
	fileAlignment             = 0x200
	sectionAlignment          = 0x1000
	dosHeaderSize             = 64
	peHeaderOffset            = 0x80 // e_lfanew: DOS header + stub
	coffHeaderSize            = 20
	optionalHeaderSize        = 224 // PE32 with 16 data directories
	sectionHeaderSize         = 40
	numDataDirectories        = 16
	importDirectoryIndex      = 1
	optionalHeaderMagicPE32   = 0x10b
	imageFileExecutable       = 0x0002
	imageFile32BitMachine     = 0x0100
	defaultImageBase          = 0x400000
	defaultEntryPointRVA      = sectionAlignment
	importSectionName         = ".idata"
	importSectionCharacterist = SectionInitializedData | SectionRead | SectionWrite
)

// Section is one section of a PE image: a name of at most 8 bytes, raw
// content, and characteristic flags.
type Section struct {
	Name            string
	Data            []byte
	Characteristics uint32
}

// Import lists the symbols referenced from one DLL.
type Import struct {
	DLL     string
	Symbols []string
}

// Image is the logical content of a PE32 executable. Build serializes it;
// Parse recovers it (modulo alignment padding) from bytes.
type Image struct {
	Machine       uint16
	Subsystem     uint16
	LinkerMajor   uint8
	LinkerMinor   uint8
	OSMajor       uint16
	OSMinor       uint16
	TimeDateStamp uint32
	Sections      []Section
	Imports       []Import
}

// Validate checks structural constraints the builder relies on.
func (img *Image) Validate() error {
	if len(img.Sections) == 0 {
		return errors.New("pe: image needs at least one section")
	}
	for i, s := range img.Sections {
		if len(s.Name) == 0 || len(s.Name) > sectionNameLen {
			return fmt.Errorf("pe: section %d name %q must be 1..8 bytes", i, s.Name)
		}
		if s.Name == importSectionName && len(img.Imports) > 0 {
			return fmt.Errorf("pe: section name %q is reserved for the synthesized import section", importSectionName)
		}
		if len(s.Data) == 0 {
			return fmt.Errorf("pe: section %d (%q) has no data", i, s.Name)
		}
	}
	seen := make(map[string]bool, len(img.Imports))
	for _, imp := range img.Imports {
		if imp.DLL == "" {
			return errors.New("pe: import with empty DLL name")
		}
		if seen[imp.DLL] {
			return fmt.Errorf("pe: duplicate import DLL %q", imp.DLL)
		}
		seen[imp.DLL] = true
		if len(imp.Symbols) == 0 {
			return fmt.Errorf("pe: import %q lists no symbols", imp.DLL)
		}
	}
	return nil
}

func align(v, a int) int {
	return (v + a - 1) / a * a
}

// Build serializes the image into PE32 bytes.
func (img *Image) Build() ([]byte, error) {
	if err := img.Validate(); err != nil {
		return nil, err
	}

	sections := make([]Section, len(img.Sections))
	copy(sections, img.Sections)

	// Assign RVAs sequentially so that a synthesized import section knows
	// its own base RVA before its content is generated.
	rvas := make([]int, 0, len(sections)+1)
	rva := sectionAlignment
	for _, s := range sections {
		rvas = append(rvas, rva)
		rva += align(len(s.Data), sectionAlignment)
	}

	importDirRVA, importDirSize := 0, 0
	if len(img.Imports) > 0 {
		data := buildImportData(img.Imports, rva)
		importDirRVA = rva
		importDirSize = (len(img.Imports) + 1) * importDescriptorSize
		sections = append(sections, Section{
			Name:            importSectionName,
			Data:            data,
			Characteristics: importSectionCharacterist,
		})
		rvas = append(rvas, rva)
		rva += align(len(data), sectionAlignment)
	}

	headerSize := peHeaderOffset + 4 + coffHeaderSize + optionalHeaderSize +
		sectionHeaderSize*len(sections)
	sizeOfHeaders := align(headerSize, fileAlignment)

	// File layout.
	type placed struct {
		rawOffset int
		rawSize   int
	}
	placements := make([]placed, len(sections))
	offset := sizeOfHeaders
	var sizeOfCode, sizeOfInitData uint32
	for i, s := range sections {
		placements[i] = placed{rawOffset: offset, rawSize: align(len(s.Data), fileAlignment)}
		offset += placements[i].rawSize
		if s.Characteristics&SectionCode != 0 {
			sizeOfCode += uint32(placements[i].rawSize)
		}
		if s.Characteristics&SectionInitializedData != 0 {
			sizeOfInitData += uint32(placements[i].rawSize)
		}
	}
	total := offset
	out := make([]byte, total)

	// DOS header and stub.
	out[0], out[1] = 'M', 'Z'
	binary.LittleEndian.PutUint32(out[0x3c:], peHeaderOffset)
	copy(out[dosHeaderSize:], "This program cannot be run in DOS mode.\r\r\n$")

	// PE signature.
	p := peHeaderOffset
	copy(out[p:], "PE\x00\x00")
	p += 4

	// COFF header.
	binary.LittleEndian.PutUint16(out[p:], img.Machine)
	binary.LittleEndian.PutUint16(out[p+2:], uint16(len(sections)))
	binary.LittleEndian.PutUint32(out[p+4:], img.TimeDateStamp)
	binary.LittleEndian.PutUint16(out[p+16:], optionalHeaderSize)
	binary.LittleEndian.PutUint16(out[p+18:], imageFileExecutable|imageFile32BitMachine)
	p += coffHeaderSize

	// Optional header (PE32).
	oh := out[p : p+optionalHeaderSize]
	binary.LittleEndian.PutUint16(oh[0:], optionalHeaderMagicPE32)
	oh[2] = img.LinkerMajor
	oh[3] = img.LinkerMinor
	binary.LittleEndian.PutUint32(oh[4:], sizeOfCode)
	binary.LittleEndian.PutUint32(oh[8:], sizeOfInitData)
	binary.LittleEndian.PutUint32(oh[16:], defaultEntryPointRVA)
	binary.LittleEndian.PutUint32(oh[20:], defaultEntryPointRVA) // BaseOfCode
	binary.LittleEndian.PutUint32(oh[28:], defaultImageBase)
	binary.LittleEndian.PutUint32(oh[32:], sectionAlignment)
	binary.LittleEndian.PutUint32(oh[36:], fileAlignment)
	binary.LittleEndian.PutUint16(oh[40:], img.OSMajor)
	binary.LittleEndian.PutUint16(oh[42:], img.OSMinor)
	binary.LittleEndian.PutUint16(oh[48:], 4) // MajorSubsystemVersion
	binary.LittleEndian.PutUint32(oh[56:], uint32(rva))
	binary.LittleEndian.PutUint32(oh[60:], uint32(sizeOfHeaders))
	binary.LittleEndian.PutUint16(oh[68:], img.Subsystem)
	binary.LittleEndian.PutUint32(oh[72:], 0x100000) // stack reserve
	binary.LittleEndian.PutUint32(oh[76:], 0x1000)   // stack commit
	binary.LittleEndian.PutUint32(oh[80:], 0x100000) // heap reserve
	binary.LittleEndian.PutUint32(oh[84:], 0x1000)   // heap commit
	binary.LittleEndian.PutUint32(oh[92:], numDataDirectories)
	if importDirSize > 0 {
		dir := 96 + 8*importDirectoryIndex
		binary.LittleEndian.PutUint32(oh[dir:], uint32(importDirRVA))
		binary.LittleEndian.PutUint32(oh[dir+4:], uint32(importDirSize))
	}
	p += optionalHeaderSize

	// Section table and section data.
	for i, s := range sections {
		sh := out[p : p+sectionHeaderSize]
		copy(sh[0:sectionNameLen], s.Name)
		binary.LittleEndian.PutUint32(sh[8:], uint32(len(s.Data))) // VirtualSize
		binary.LittleEndian.PutUint32(sh[12:], uint32(rvas[i]))    // VirtualAddress
		binary.LittleEndian.PutUint32(sh[16:], uint32(placements[i].rawSize))
		binary.LittleEndian.PutUint32(sh[20:], uint32(placements[i].rawOffset))
		binary.LittleEndian.PutUint32(sh[36:], s.Characteristics)
		p += sectionHeaderSize
		copy(out[placements[i].rawOffset:], s.Data)
	}
	return out, nil
}

// buildImportData serializes the import directory for the given imports,
// assuming the data is placed at base RVA baseRVA. Layout:
//
//	descriptor table | per-DLL ILT | per-DLL IAT | hint/name entries | DLL names
func buildImportData(imports []Import, baseRVA int) []byte {
	nDLL := len(imports)
	descSize := (nDLL + 1) * importDescriptorSize

	// First pass: compute offsets.
	iltOff := make([]int, nDLL)
	iatOff := make([]int, nDLL)
	cursor := descSize
	for i, imp := range imports {
		iltOff[i] = cursor
		cursor += (len(imp.Symbols) + 1) * 4
	}
	for i, imp := range imports {
		iatOff[i] = cursor
		cursor += (len(imp.Symbols) + 1) * 4
	}
	hintOff := make([][]int, nDLL)
	for i, imp := range imports {
		hintOff[i] = make([]int, len(imp.Symbols))
		for j, sym := range imp.Symbols {
			hintOff[i][j] = cursor
			n := 2 + len(sym) + 1
			if n%2 == 1 {
				n++
			}
			cursor += n
		}
	}
	nameOff := make([]int, nDLL)
	for i, imp := range imports {
		nameOff[i] = cursor
		cursor += len(imp.DLL) + 1
	}

	data := make([]byte, cursor)
	for i, imp := range imports {
		d := data[i*importDescriptorSize:]
		binary.LittleEndian.PutUint32(d[0:], uint32(baseRVA+iltOff[i]))
		binary.LittleEndian.PutUint32(d[12:], uint32(baseRVA+nameOff[i]))
		binary.LittleEndian.PutUint32(d[16:], uint32(baseRVA+iatOff[i]))
		for j, sym := range imp.Symbols {
			rva := uint32(baseRVA + hintOff[i][j])
			binary.LittleEndian.PutUint32(data[iltOff[i]+4*j:], rva)
			binary.LittleEndian.PutUint32(data[iatOff[i]+4*j:], rva)
			copy(data[hintOff[i][j]+2:], sym)
		}
		copy(data[nameOff[i]:], imp.DLL)
	}
	return data
}

// Checksum computes the standard PE image checksum over the given bytes:
// a ones-complement 16-bit word sum (with the stored checksum field
// treated as zero) plus the file length. Loaders use it to detect
// corrupted images; the reproduction uses it as an extra integrity signal
// for truncated downloads.
func Checksum(data []byte) (uint32, error) {
	if len(data) < dosHeaderSize || data[0] != 'M' || data[1] != 'Z' {
		return 0, ErrNotPE
	}
	peOff := int(binary.LittleEndian.Uint32(data[0x3c:]))
	// CheckSum field lives at optional header offset 64.
	ckOff := peOff + 4 + coffHeaderSize + 64
	if ckOff+4 > len(data) {
		return 0, fmt.Errorf("%w: checksum field beyond image", ErrTruncated)
	}
	var sum uint64
	for i := 0; i+1 < len(data); i += 2 {
		// Skip every word overlapping the 4-byte checksum field; images
		// built by this package keep it word-aligned, but hostile inputs
		// may not, and the computation must stay consistent between
		// stamping and verification either way.
		if i+2 > ckOff && i < ckOff+4 {
			continue
		}
		sum += uint64(binary.LittleEndian.Uint16(data[i:]))
		sum = (sum & 0xffff) + (sum >> 16)
	}
	if len(data)%2 == 1 && !(len(data)-1 >= ckOff && len(data)-1 < ckOff+4) {
		sum += uint64(data[len(data)-1])
		sum = (sum & 0xffff) + (sum >> 16)
	}
	sum = (sum & 0xffff) + (sum >> 16)
	return uint32(sum) + uint32(len(data)), nil
}

// SetChecksum writes the computed checksum into the optional header of a
// built image, in place.
func SetChecksum(data []byte) error {
	ck, err := Checksum(data)
	if err != nil {
		return err
	}
	peOff := int(binary.LittleEndian.Uint32(data[0x3c:]))
	binary.LittleEndian.PutUint32(data[peOff+4+coffHeaderSize+64:], ck)
	return nil
}

// VerifyChecksum reports whether the stored checksum matches the content.
// Images with a zero stored checksum (never stamped) verify trivially,
// like the Windows loader treats them.
func VerifyChecksum(data []byte) (bool, error) {
	if len(data) < dosHeaderSize || data[0] != 'M' || data[1] != 'Z' {
		return false, ErrNotPE
	}
	peOff := int(binary.LittleEndian.Uint32(data[0x3c:]))
	ckOff := peOff + 4 + coffHeaderSize + 64
	if ckOff+4 > len(data) {
		return false, fmt.Errorf("%w: checksum field beyond image", ErrTruncated)
	}
	stored := binary.LittleEndian.Uint32(data[ckOff:])
	if stored == 0 {
		return true, nil
	}
	computed, err := Checksum(data)
	if err != nil {
		return false, err
	}
	return stored == computed, nil
}

// SectionNames returns the image's section names in order, including a
// synthesized import section when imports are present, matching what a
// parser of the built bytes reports.
func (img *Image) SectionNames() []string {
	names := make([]string, 0, len(img.Sections)+1)
	for _, s := range img.Sections {
		names = append(names, s.Name)
	}
	if len(img.Imports) > 0 {
		names = append(names, importSectionName)
	}
	return names
}

// ImportedDLLs returns the sorted list of imported DLL names.
func (img *Image) ImportedDLLs() []string {
	out := make([]string, 0, len(img.Imports))
	for _, imp := range img.Imports {
		out = append(out, imp.DLL)
	}
	sort.Strings(out)
	return out
}

// SymbolsOf returns the sorted symbols imported from the named DLL
// (case-insensitive match), or nil when the DLL is not imported.
func (img *Image) SymbolsOf(dll string) []string {
	for _, imp := range img.Imports {
		if strings.EqualFold(imp.DLL, dll) {
			out := make([]string, len(imp.Symbols))
			copy(out, imp.Symbols)
			sort.Strings(out)
			return out
		}
	}
	return nil
}

// Clone returns a deep copy of the image, so that polymorphic engines can
// mutate instances without aliasing the family template.
func (img *Image) Clone() *Image {
	out := &Image{
		Machine:       img.Machine,
		Subsystem:     img.Subsystem,
		LinkerMajor:   img.LinkerMajor,
		LinkerMinor:   img.LinkerMinor,
		OSMajor:       img.OSMajor,
		OSMinor:       img.OSMinor,
		TimeDateStamp: img.TimeDateStamp,
		Sections:      make([]Section, len(img.Sections)),
		Imports:       make([]Import, len(img.Imports)),
	}
	for i, s := range img.Sections {
		out.Sections[i] = Section{
			Name:            s.Name,
			Data:            append([]byte(nil), s.Data...),
			Characteristics: s.Characteristics,
		}
	}
	for i, imp := range img.Imports {
		out.Imports[i] = Import{
			DLL:     imp.DLL,
			Symbols: append([]string(nil), imp.Symbols...),
		}
	}
	return out
}
