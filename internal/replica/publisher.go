// Package replica implements WAL log shipping: a Publisher on the
// primary serves segment manifests, checkpoint blobs, and CRC-framed
// record streams over HTTP, and a Follower rebuilds read-only shard
// state from them, tails the log, and serves the query endpoints.
//
// The shipping unit is the WAL frame. The publisher re-frames records
// it has CRC-verified from disk and the follower re-verifies every
// frame as it parses the stream, so corruption cannot cross a hop
// undetected. Catch-up is "checkpoint + WAL suffix" — exactly the
// local recovery path, run remotely — which is why a caught-up replica
// serves views byte-identical to its primary's.
package replica

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"

	"repro/internal/ckpt"
	"repro/internal/wal"
)

// Source is one shard's shippable state: its WAL and the directory
// holding its checkpoint file.
type Source struct {
	Dir string
	Log *wal.Log
}

// Publisher serves the log-shipping endpoints for a primary:
//
//	GET /v1/repl/segments                    — Manifest (all shards)
//	GET /v1/repl/checkpoint/{shard}          — newest checkpoint blob
//	GET /v1/repl/segment/{shard}/{first}?from=N — frame stream
type Publisher struct {
	sources []Source
}

// NewPublisher wraps the per-shard sources, in shard order.
func NewPublisher(sources []Source) (*Publisher, error) {
	if len(sources) == 0 {
		return nil, errors.New("replica: no sources")
	}
	for i, s := range sources {
		if s.Log == nil || s.Dir == "" {
			return nil, fmt.Errorf("replica: source %d has no WAL; the primary needs -wal-dir", i)
		}
	}
	return &Publisher{sources: sources}, nil
}

// SegmentManifest describes one shippable segment.
type SegmentManifest = wal.SegmentInfo

// ShardManifest is one shard's shipping state. CheckpointSeq is the
// coverage of the newest durable checkpoint (0 when none exists);
// LastSeq is the newest shippable record.
type ShardManifest struct {
	Shard         int               `json:"shard"`
	CheckpointSeq uint64            `json:"checkpoint_seq"`
	LastSeq       uint64            `json:"last_seq"`
	Segments      []SegmentManifest `json:"segments"`
}

// Manifest is the publisher's full shipping state.
type Manifest struct {
	Shards   int             `json:"shards"`
	PerShard []ShardManifest `json:"per_shard"`
}

// Manifest snapshots the shippable state. Per shard the segment list
// is read BEFORE the checkpoint seq: a checkpoint only ever justifies
// garbage-collecting segments its own seq covers, and the checkpoint
// seq is monotone, so this order guarantees the advertised segments
// cover every record past the advertised checkpoint (min first_seq <=
// checkpoint_seq+1) even when a checkpoint lands and truncates
// concurrently. The reverse order could advertise an old checkpoint
// next to a post-GC segment list — promising a WAL suffix the primary
// no longer holds, which would strand every bootstrapping follower.
func (p *Publisher) Manifest() (Manifest, error) {
	m := Manifest{Shards: len(p.sources)}
	for i, src := range p.sources {
		segs, err := src.Log.Segments()
		if err != nil {
			return Manifest{}, fmt.Errorf("replica: shard %d: %w", i, err)
		}
		ckptSeq, err := p.checkpointSeq(i)
		if err != nil {
			return Manifest{}, err
		}
		sm := ShardManifest{Shard: i, CheckpointSeq: ckptSeq, Segments: segs}
		if n := len(segs); n > 0 && segs[n-1].LastSeq >= segs[n-1].FirstSeq {
			sm.LastSeq = segs[n-1].LastSeq
		}
		m.PerShard = append(m.PerShard, sm)
	}
	return m, nil
}

// ErrNoCheckpoint reports a shard that has not checkpointed yet; the
// follower then bootstraps from an empty state and replays the whole
// WAL.
var ErrNoCheckpoint = errors.New("replica: no checkpoint")

// Checkpoint returns the shard's newest valid checkpoint payload: the
// live file when its CRC and JSON verify, else the newest retained
// generation that does — a primary with a corrupt live checkpoint keeps
// bootstrapping followers (they just replay a longer WAL suffix). The
// CRC trailer is verified here and stripped: followers receive the bare
// JSON payload.
func (p *Publisher) Checkpoint(shard int) ([]byte, error) {
	if shard < 0 || shard >= len(p.sources) {
		return nil, fmt.Errorf("replica: shard %d outside [0,%d)", shard, len(p.sources))
	}
	blob, _, err := ckpt.LoadNewestValid(nil, p.sources[shard].Dir)
	if errors.Is(err, os.ErrNotExist) {
		return nil, ErrNoCheckpoint
	}
	if err != nil {
		return nil, fmt.Errorf("replica: shard %d checkpoint: %w", shard, err)
	}
	return blob, nil
}

func (p *Publisher) checkpointSeq(shard int) (uint64, error) {
	blob, err := p.Checkpoint(shard)
	if errors.Is(err, ErrNoCheckpoint) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	var cp struct {
		Seq uint64 `json:"seq"`
	}
	if err := json.Unmarshal(blob, &cp); err != nil {
		return 0, fmt.Errorf("replica: shard %d checkpoint: %w", shard, err)
	}
	return cp.Seq, nil
}

// Handler serves the shipping endpoints. The daemon mounts it under
// the primary's API mux; it is opaque to internal/httpapi so the HTTP
// layer never imports this package.
func (p *Publisher) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/repl/segments", p.serveManifest)
	mux.HandleFunc("GET /v1/repl/checkpoint/{shard}", p.serveCheckpoint)
	mux.HandleFunc("GET /v1/repl/segment/{shard}/{first}", p.serveSegment)
	return mux
}

func (p *Publisher) serveManifest(w http.ResponseWriter, r *http.Request) {
	m, err := p.Manifest()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(m)
}

func (p *Publisher) serveCheckpoint(w http.ResponseWriter, r *http.Request) {
	shard, err := strconv.Atoi(r.PathValue("shard"))
	if err != nil || shard < 0 || shard >= len(p.sources) {
		http.Error(w, "unknown shard", http.StatusNotFound)
		return
	}
	blob, err := p.Checkpoint(shard)
	if errors.Is(err, ErrNoCheckpoint) {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(blob)
}

// serveSegment streams the segment's frames, re-encoded and therefore
// re-CRC-checked, from the ?from= seq (default: the whole segment). A
// garbage-collected segment is a 404 — the follower's signal to
// re-bootstrap. A read error mid-stream aborts the connection rather
// than ending cleanly, but a clean-looking truncation is harmless
// anyway: frames are self-delimiting, so the follower just applies
// what arrived and fetches the rest on its next poll.
func (p *Publisher) serveSegment(w http.ResponseWriter, r *http.Request) {
	shard, err := strconv.Atoi(r.PathValue("shard"))
	if err != nil || shard < 0 || shard >= len(p.sources) {
		http.Error(w, "unknown shard", http.StatusNotFound)
		return
	}
	first, err := strconv.ParseUint(strings.TrimSpace(r.PathValue("first")), 10, 64)
	if err != nil {
		http.Error(w, "bad segment seq", http.StatusBadRequest)
		return
	}
	from := first
	if q := r.URL.Query().Get("from"); q != "" {
		if from, err = strconv.ParseUint(q, 10, 64); err != nil {
			http.Error(w, "bad from seq", http.StatusBadRequest)
			return
		}
	}
	sr, err := p.sources[shard].Log.OpenSegment(first, from)
	if errors.Is(err, wal.ErrSegmentGone) {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	defer sr.Close()
	w.Header().Set("Content-Type", "application/octet-stream")
	bw := bufio.NewWriterSize(w, 1<<16)
	for {
		seq, payload, err := sr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			// The primary's own segment failed verification: kill the
			// connection so the follower sees a torn stream, not a clean
			// end that would hide the missing suffix forever.
			panic(http.ErrAbortHandler)
		}
		if _, err := bw.Write(wal.EncodeFrame(seq, payload)); err != nil {
			return
		}
	}
	bw.Flush()
}
