package replica_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/behavior"
	"repro/internal/dataset"
	"repro/internal/pe"
	"repro/internal/replica"
	"repro/internal/shard"
	"repro/internal/stream"
)

// The helpers mirror the stream package's test fixtures (unexported
// there): a deterministic enricher and the same dirty corpus, so the
// follower faces realistic duplicate/rejection accounting.

type fakeEnricher struct{}

func (fakeEnricher) LabelSample(s *dataset.Sample) error {
	s.AVLabel = "Fake." + s.TruthVariant
	return nil
}

func (fakeEnricher) ExecuteSample(s *dataset.Sample) (*behavior.Profile, bool, error) {
	p := behavior.NewProfile()
	for k := 0; k < 10; k++ {
		p.Add(fmt.Sprintf("%s-beh%d", s.TruthVariant, k))
	}
	return p, false, nil
}

func testEvent(i int, variant string) dataset.Event {
	e := dataset.Event{
		ID:          fmt.Sprintf("ev%04d", i),
		Time:        time.Date(2008, 1, 1, 0, 0, 0, 0, time.UTC).Add(time.Duration(i) * time.Minute),
		Attacker:    fmt.Sprintf("10.0.%d.%d", i%5, i%13),
		Sensor:      fmt.Sprintf("s%d", i%7),
		FSMPath:     fmt.Sprintf("fsm-%d", i%3),
		DestPort:    445,
		Protocol:    "ftp",
		Filename:    "a.exe",
		PayloadPort: 33333,
		Interaction: "push",
	}
	if variant != "" {
		e.Sample = pe.Features{
			MD5:         fmt.Sprintf("md5-%s-%d", variant, i%4),
			IsPE:        true,
			Magic:       pe.MagicPEGUI,
			NumSections: 3,
		}
		e.DownloadOutcome = "ok"
		e.TruthVariant = variant
	}
	return e
}

func dirtyCorpus(n int) []dataset.Event {
	var out []dataset.Event
	for i := 0; i < n; i++ {
		switch {
		case i%17 == 3 && i >= 3:
			out = append(out, testEvent(i-3, fmt.Sprintf("v%d", (i-3)%3)))
		case i%23 == 5:
			e := testEvent(i, "")
			e.Attacker = ""
			out = append(out, e)
		default:
			out = append(out, testEvent(i, fmt.Sprintf("v%d", i%3)))
		}
	}
	return out
}

func testConfig(epochSize int) stream.Config {
	cfg := stream.DefaultConfig()
	cfg.EpochSize = epochSize
	cfg.QueueDepth = 2
	return cfg
}

// primary bundles a test primary: the backend under test plus its
// shipping server.
type primary struct {
	svc   *stream.Service    // nil when sharded
	coord *shard.Coordinator // nil at one shard
	pub   *replica.Publisher
	srv   *httptest.Server
}

func (p *primary) ingest(ctx context.Context, events []dataset.Event) error {
	if p.coord != nil {
		return p.coord.IngestFrom(ctx, "test", events)
	}
	return p.svc.Ingest(ctx, events)
}

func (p *primary) flush(ctx context.Context) error {
	if p.coord != nil {
		return p.coord.Flush(ctx)
	}
	return p.svc.Flush(ctx)
}

func (p *primary) checkpoint(ctx context.Context) error {
	if p.coord != nil {
		return p.coord.Checkpoint(ctx)
	}
	return p.svc.Checkpoint(ctx)
}

func (p *primary) epm(dim string) (stream.EPMView, error) {
	if p.coord != nil {
		return p.coord.EPMClusters(dim)
	}
	return p.svc.EPMClusters(dim)
}

func (p *primary) b() stream.BView {
	if p.coord != nil {
		return p.coord.BClusters()
	}
	return p.svc.BClusters()
}

// newPrimary builds a durable primary — a bare service at one shard
// (matching what a single-shard daemon serves) and a coordinator
// otherwise — plus its shipping publisher behind an httptest server.
func newPrimary(t *testing.T, shards int, scfg stream.Config) *primary {
	t.Helper()
	p := &primary{}
	var sources []replica.Source
	if shards == 1 {
		svc, err := stream.New(scfg, fakeEnricher{})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(svc.Close)
		p.svc = svc
		dir, log := svc.ReplicationSource()
		sources = []replica.Source{{Dir: dir, Log: log}}
	} else {
		coord, err := shard.New(shard.Config{Shards: shards, Stream: scfg}, fakeEnricher{})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(coord.Close)
		p.coord = coord
		for i := 0; i < coord.Shards(); i++ {
			dir, log := coord.Shard(i).ReplicationSource()
			sources = append(sources, replica.Source{Dir: dir, Log: log})
		}
	}
	pub, err := replica.NewPublisher(sources)
	if err != nil {
		t.Fatal(err)
	}
	p.pub = pub
	p.srv = httptest.NewServer(pub.Handler())
	t.Cleanup(p.srv.Close)
	return p
}

func newFollower(t *testing.T, p *primary, poll time.Duration) *replica.Follower {
	t.Helper()
	f, err := replica.NewFollower(replica.FollowerConfig{
		Primary:  p.srv.URL,
		Stream:   testConfig(8),
		Enricher: fakeEnricher{},
		Poll:     poll,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Close)
	return f
}

// TestFollowerEquivalence is the end-to-end tentpole gate: a follower
// bootstrapped over HTTP from a mid-stream checkpoint plus the shipped
// WAL suffix serves cluster views byte-identical to the primary's, at
// one shard and at four.
func TestFollowerEquivalence(t *testing.T) {
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			ctx := context.Background()
			scfg := testConfig(8)
			scfg.Durability = stream.Durability{Dir: t.TempDir(), NoSync: true, SegmentBytes: 1 << 10}
			p := newPrimary(t, shards, scfg)

			events := dirtyCorpus(150)
			const batchSize = 10
			for bi := 0; bi*batchSize < len(events); bi++ {
				lo, hi := bi*batchSize, (bi+1)*batchSize
				if hi > len(events) {
					hi = len(events)
				}
				if err := p.ingest(ctx, events[lo:hi]); err != nil {
					t.Fatal(err)
				}
				if bi == 6 {
					// Mid-stream checkpoint: the bootstrap must splice
					// snapshot restore with WAL-suffix replay.
					if err := p.checkpoint(ctx); err != nil {
						t.Fatal(err)
					}
				}
			}
			if err := p.flush(ctx); err != nil {
				t.Fatal(err)
			}

			f := newFollower(t, p, 10*time.Millisecond)
			if err := f.Bootstrap(ctx); err != nil {
				t.Fatal(err)
			}

			for _, dim := range []string{"epsilon", "pi", "mu"} {
				fv, err := f.EPMClusters(dim)
				if err != nil {
					t.Fatal(err)
				}
				pv, err := p.epm(dim)
				if err != nil {
					t.Fatal(err)
				}
				fb, _ := json.Marshal(fv)
				pb, _ := json.Marshal(pv)
				if string(fb) != string(pb) {
					t.Fatalf("%s view diverges:\nfollower %s\nprimary  %s", dim, fb, pb)
				}
			}
			fb, _ := json.Marshal(f.BClusters())
			pb, _ := json.Marshal(p.b())
			if string(fb) != string(pb) {
				t.Fatalf("b view diverges:\nfollower %s\nprimary  %s", fb, pb)
			}

			lag := f.Lag()
			if !lag.Bootstrapped || !lag.CaughtUp || lag.BehindRecords != 0 {
				t.Fatalf("lag after bootstrap: %+v", lag)
			}
			if err := f.Ready(); err != nil {
				t.Fatalf("Ready after bootstrap: %v", err)
			}
			if err := f.IngestFrom(ctx, "c", events[:1]); !errors.Is(err, stream.ErrReadOnly) {
				t.Fatalf("IngestFrom on follower: %v, want ErrReadOnly", err)
			}
			if err := f.Flush(ctx); !errors.Is(err, stream.ErrReadOnly) {
				t.Fatalf("Flush on follower: %v, want ErrReadOnly", err)
			}
			st, ok := f.StatsPayload().(replica.FollowerStats)
			if !ok || !st.Replication.CaughtUp {
				t.Fatalf("stats payload: %+v", f.StatsPayload())
			}
		})
	}
}

// TestFollowerTailsNewRecords starts the poll loop and checks the
// follower converges on records written after its bootstrap.
func TestFollowerTailsNewRecords(t *testing.T) {
	ctx := context.Background()
	scfg := testConfig(8)
	scfg.Durability = stream.Durability{Dir: t.TempDir(), NoSync: true, SegmentBytes: 1 << 10}
	p := newPrimary(t, 1, scfg)
	if err := p.ingest(ctx, dirtyCorpus(40)); err != nil {
		t.Fatal(err)
	}

	f := newFollower(t, p, 5*time.Millisecond)
	if err := f.Bootstrap(ctx); err != nil {
		t.Fatal(err)
	}
	f.Start()

	more := dirtyCorpus(120)[40:]
	for i := 0; i < len(more); i += 10 {
		if err := p.ingest(ctx, more[i:i+10]); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.flush(ctx); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(10 * time.Second)
	_, log := p.svc.ReplicationSource()
	for {
		lag := f.Lag()
		if lag.CaughtUp && len(lag.AppliedSeq) == 1 && lag.AppliedSeq[0] == log.LastSeq() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower never caught up: %+v (primary at %d)", lag, log.LastSeq())
		}
		time.Sleep(5 * time.Millisecond)
	}
	fb, _ := json.Marshal(f.BClusters())
	pb, _ := json.Marshal(p.b())
	if string(fb) != string(pb) {
		t.Fatalf("b view diverges after tailing:\nfollower %s\nprimary  %s", fb, pb)
	}
}

// TestFollowerRebootstrapOnGC leaves a follower behind a primary that
// checkpoints and garbage-collects its WAL past the follower's applied
// seq; the tail loop must detect the missed shipping window and
// re-bootstrap from the newer checkpoint rather than serve a gap.
func TestFollowerRebootstrapOnGC(t *testing.T) {
	ctx := context.Background()
	scfg := testConfig(8)
	scfg.Durability = stream.Durability{Dir: t.TempDir(), NoSync: true, SegmentBytes: 64}
	p := newPrimary(t, 1, scfg)
	if err := p.ingest(ctx, dirtyCorpus(30)); err != nil {
		t.Fatal(err)
	}

	f := newFollower(t, p, 5*time.Millisecond)
	if err := f.Bootstrap(ctx); err != nil {
		t.Fatal(err)
	}
	behind := f.Lag().AppliedSeq[0]

	// Advance the primary well past the follower and checkpoint twice:
	// the second checkpoint truncates segments the follower still
	// needs, so tailing alone cannot catch up.
	more := dirtyCorpus(120)[30:]
	for i := 0; i < len(more); i += 10 {
		if err := p.ingest(ctx, more[i:i+10]); err != nil {
			t.Fatal(err)
		}
		if err := p.checkpoint(ctx); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.flush(ctx); err != nil {
		t.Fatal(err)
	}
	segs, err := p.pub.Manifest()
	if err != nil {
		t.Fatal(err)
	}
	if min := segs.PerShard[0].Segments[0].FirstSeq; min <= behind+1 {
		t.Fatalf("GC did not pass the follower (min first_seq %d, follower at %d); tighten the test", min, behind)
	}

	f.Start()
	_, log := p.svc.ReplicationSource()
	deadline := time.Now().Add(10 * time.Second)
	for {
		lag := f.Lag()
		if lag.CaughtUp && lag.Bootstraps >= 2 && len(lag.AppliedSeq) == 1 && lag.AppliedSeq[0] == log.LastSeq() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower never re-bootstrapped: %+v (primary at %d)", lag, log.LastSeq())
		}
		time.Sleep(5 * time.Millisecond)
	}
	fb, _ := json.Marshal(f.BClusters())
	pb, _ := json.Marshal(p.b())
	if string(fb) != string(pb) {
		t.Fatalf("b view diverges after re-bootstrap:\nfollower %s\nprimary  %s", fb, pb)
	}
}

// TestManifestAtomicity hammers Manifest() while the primary ingests,
// auto-checkpoints, and garbage-collects concurrently: no snapshot may
// ever advertise a checkpoint whose WAL suffix the advertised segments
// fail to cover (min first_seq must stay <= checkpoint_seq+1), or a
// bootstrapping follower would be stranded on a truncated log.
func TestManifestAtomicity(t *testing.T) {
	ctx := context.Background()
	scfg := testConfig(8)
	scfg.Durability = stream.Durability{
		Dir:             t.TempDir(),
		NoSync:          true,
		SegmentBytes:    1, // rotate every record
		CheckpointEvery: 1, // checkpoint+GC after every record
	}
	p := newPrimary(t, 1, scfg)

	done := make(chan error, 1)
	go func() {
		events := dirtyCorpus(300)
		for i := range events {
			if err := p.ingest(ctx, events[i:i+1]); err != nil {
				done <- err
				return
			}
		}
		done <- p.flush(ctx)
	}()

	for i := 0; ; i++ {
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
			if i == 0 {
				t.Fatal("reader never overlapped the writer")
			}
			return
		default:
		}
		man, err := p.pub.Manifest()
		if err != nil {
			t.Fatal(err)
		}
		for _, sm := range man.PerShard {
			if len(sm.Segments) == 0 {
				continue
			}
			if min := sm.Segments[0].FirstSeq; min > sm.CheckpointSeq+1 {
				t.Fatalf("manifest advertises truncated suffix: min first_seq %d > checkpoint_seq %d + 1",
					min, sm.CheckpointSeq)
			}
		}
	}
}

// TestFollowerReadiness pins the readiness contract: not ready before
// bootstrap, ready when caught up, not ready once staleness exceeds
// MaxLag.
func TestFollowerReadiness(t *testing.T) {
	ctx := context.Background()
	scfg := testConfig(8)
	scfg.Durability = stream.Durability{Dir: t.TempDir(), NoSync: true}
	p := newPrimary(t, 1, scfg)
	if err := p.ingest(ctx, dirtyCorpus(20)); err != nil {
		t.Fatal(err)
	}

	f, err := replica.NewFollower(replica.FollowerConfig{
		Primary:  p.srv.URL,
		Stream:   testConfig(8),
		Enricher: fakeEnricher{},
		Poll:     time.Hour, // never polls: staleness only moves via Bootstrap
		MaxLag:   50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Close)
	if err := f.Ready(); err == nil {
		t.Fatal("ready before bootstrap")
	}
	if err := f.Bootstrap(ctx); err != nil {
		t.Fatal(err)
	}
	if err := f.Ready(); err != nil {
		t.Fatalf("not ready right after bootstrap: %v", err)
	}
	time.Sleep(80 * time.Millisecond)
	if err := f.Ready(); err == nil {
		t.Fatal("still ready past MaxLag with no successful poll")
	}
}
