package replica

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/dataset"
	"repro/internal/shard"
	"repro/internal/stream"
	"repro/internal/wal"
)

// FollowerConfig parameterizes a read replica.
type FollowerConfig struct {
	// Primary is the primary's base URL (it must serve /v1/repl/*).
	Primary string
	// Stream must match the primary's analysis parameters (epoch size,
	// thresholds, clustering config) — the replica re-derives state by
	// running the primary's records through the same apply path, the
	// contract local recovery already imposes. Durability and admission
	// are ignored (forced off per replica service).
	Stream stream.Config
	// Enricher must be the same deterministic enricher the primary runs.
	Enricher stream.Enricher
	// Poll is the tail-loop interval; 0 selects 500ms. Errors back off
	// to 8x Poll.
	Poll time.Duration
	// MaxLag bounds staleness for readiness: when the follower has not
	// been fully caught up within MaxLag, Ready reports an error and
	// /readyz flips to 503. 0 keeps the replica ready whenever
	// bootstrapped.
	MaxLag time.Duration
	// Client overrides the HTTP client (tests); nil uses a default with
	// a 30s timeout.
	Client *http.Client
}

// replState is one bootstrapped generation of replica services. A
// re-bootstrap builds a whole new generation and swaps it in, so
// queries never observe a half-rebuilt state.
type replState struct {
	svcs  []*stream.Service
	coord *shard.Coordinator // nil at one shard: serve the bare service
}

// backend returns the query surface: the coordinator's merged views
// when sharded, the single service otherwise (matching what a
// single-shard primary serves, so views stay byte-identical).
func (st *replState) backend() viewBackend {
	if st.coord != nil {
		return st.coord
	}
	return st.svcs[0]
}

// viewBackend is the read surface both stream.Service and
// shard.Coordinator provide.
type viewBackend interface {
	EPMClusters(dim string) (stream.EPMView, error)
	BClusters() stream.BView
	Sample(id string) (stream.SampleView, bool)
	StatsPayload() any
	Counts() (events, samples, executable, e, p, m, b int)
}

// errRestart reports that the primary's shipping window moved past the
// follower (segments garbage-collected, shard count changed): the only
// recovery is a fresh bootstrap from the newest checkpoint.
var errRestart = errors.New("replica: shipping window moved; re-bootstrap")

// Follower is a read replica: it bootstraps every shard from the
// primary's newest checkpoint, replays the shipped WAL suffix through
// the replica apply path, tails new records on a polling loop, and
// serves the query endpoints. Writes are refused with
// stream.ErrReadOnly.
type Follower struct {
	cfg    FollowerConfig
	client *http.Client

	mu         sync.RWMutex
	state      *replState
	applied    []uint64
	target     []uint64
	caughtUp   bool
	caughtUpAt time.Time
	started    time.Time
	lastErr    string
	bootstraps int

	stop     chan struct{}
	loopDone chan struct{}
	closed   sync.Once
}

// NewFollower validates the config; call Bootstrap before serving and
// Start to begin tailing.
func NewFollower(cfg FollowerConfig) (*Follower, error) {
	if cfg.Primary == "" {
		return nil, errors.New("replica: empty primary URL")
	}
	if cfg.Enricher == nil {
		return nil, errors.New("replica: nil enricher")
	}
	if cfg.Poll <= 0 {
		cfg.Poll = 500 * time.Millisecond
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	return &Follower{
		cfg:     cfg,
		client:  client,
		started: time.Now(),
		stop:    make(chan struct{}),
	}, nil
}

// Bootstrap performs the initial catch-up: fetch the manifest, restore
// every shard from its newest checkpoint, and replay the advertised
// WAL suffix. When the primary checkpoints and garbage-collects
// underneath the bootstrap it restarts from the then-newer checkpoint,
// so each retry strictly advances.
func (f *Follower) Bootstrap(ctx context.Context) error {
	for attempt := 1; ; attempt++ {
		err := f.bootstrapOnce(ctx)
		if err == nil {
			return nil
		}
		if !errors.Is(err, errRestart) || attempt >= 10 || ctx.Err() != nil {
			return err
		}
	}
}

func (f *Follower) bootstrapOnce(ctx context.Context) error {
	man, err := f.fetchManifest(ctx)
	if err != nil {
		return err
	}
	n := man.Shards
	if n < 1 || len(man.PerShard) != n {
		return fmt.Errorf("replica: malformed manifest (%d shards, %d entries)", n, len(man.PerShard))
	}
	svcs := make([]*stream.Service, 0, n)
	closeAll := func() {
		for _, s := range svcs {
			s.Close()
		}
	}
	for i := 0; i < n; i++ {
		svc, err := stream.NewReplica(f.cfg.Stream, f.cfg.Enricher)
		if err != nil {
			closeAll()
			return err
		}
		svcs = append(svcs, svc)
	}
	for i, sm := range man.PerShard {
		blob, err := f.fetchCheckpoint(ctx, i)
		switch {
		case err == nil:
			if err := svcs[i].RestoreSnapshot(blob); err != nil {
				closeAll()
				return err
			}
		case errors.Is(err, ErrNoCheckpoint):
			// Young shard: replay its WAL from seq 1.
		default:
			closeAll()
			return err
		}
		if err := f.catchUp(ctx, svcs[i], sm); err != nil {
			closeAll()
			return err
		}
	}
	st := &replState{svcs: svcs}
	if n > 1 {
		coord, err := shard.NewReplicaSet(f.cfg.Stream, svcs)
		if err != nil {
			closeAll()
			return err
		}
		st.coord = coord
	}
	f.mu.Lock()
	old := f.state
	f.state = st
	f.bootstraps++
	f.mu.Unlock()
	f.noteProgress(man, st)
	if old != nil {
		for _, s := range old.svcs {
			s.Close()
		}
	}
	return nil
}

// Start launches the tail loop.
func (f *Follower) Start() {
	f.loopDone = make(chan struct{})
	go f.loop()
}

func (f *Follower) loop() {
	defer close(f.loopDone)
	delay := f.cfg.Poll
	for {
		select {
		case <-f.stop:
			return
		case <-time.After(delay):
		}
		if err := f.poll(context.Background()); err != nil {
			f.noteError(err)
			if delay < 8*f.cfg.Poll {
				delay *= 2
			}
		} else {
			delay = f.cfg.Poll
		}
	}
}

// poll fetches the manifest and catches every shard up to it. A
// shipping-window miss (garbage-collected segment, shard-count change)
// triggers a full re-bootstrap; the generation swap keeps queries
// consistent throughout.
func (f *Follower) poll(ctx context.Context) error {
	man, err := f.fetchManifest(ctx)
	if err != nil {
		return err
	}
	f.mu.RLock()
	st := f.state
	f.mu.RUnlock()
	if st == nil || len(man.PerShard) != len(st.svcs) {
		return f.bootstrapOnce(ctx)
	}
	for i, sm := range man.PerShard {
		if err := f.catchUp(ctx, st.svcs[i], sm); err != nil {
			if errors.Is(err, errRestart) {
				return f.bootstrapOnce(ctx)
			}
			return err
		}
	}
	f.noteProgress(man, st)
	return nil
}

// catchUp replays one shard's advertised records past the service's
// applied seq. Each iteration either advances or returns, so a torn
// stream cannot loop; the remainder is retried on the next poll.
func (f *Follower) catchUp(ctx context.Context, svc *stream.Service, sm ShardManifest) error {
	for {
		next := svc.AppliedSeq() + 1
		if sm.LastSeq == 0 || next > sm.LastSeq {
			return nil
		}
		seg := findSegment(sm.Segments, next)
		if seg == nil {
			// Every segment holding next is gone from the manifest: the
			// primary's GC overtook this replica.
			return errRestart
		}
		applied, err := f.fetchFrames(ctx, svc, sm.Shard, seg.FirstSeq, next)
		if err != nil {
			return err
		}
		if applied == 0 {
			return nil
		}
	}
}

func findSegment(segs []SegmentManifest, seq uint64) *SegmentManifest {
	for i := range segs {
		if segs[i].LastSeq < segs[i].FirstSeq {
			continue // no complete records yet
		}
		if segs[i].FirstSeq <= seq && seq <= segs[i].LastSeq {
			return &segs[i]
		}
	}
	return nil
}

// fetchFrames streams one segment from seq `from` and applies every
// verified frame. A 404 means the segment was garbage-collected
// (errRestart); a torn stream keeps what was applied — frames are
// self-delimiting, so the next poll resumes exactly after the last
// applied record.
func (f *Follower) fetchFrames(ctx context.Context, svc *stream.Service, shardIdx int, first, from uint64) (int, error) {
	resp, err := f.get(ctx, fmt.Sprintf("/v1/repl/segment/%d/%d?from=%d", shardIdx, first, from))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return 0, errRestart
	}
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("replica: segment %d/%d: HTTP %d", shardIdx, first, resp.StatusCode)
	}
	fr := wal.NewFrameReader(resp.Body, from)
	applied := 0
	for {
		seq, payload, err := fr.Next()
		if err == io.EOF {
			return applied, nil
		}
		if err != nil {
			if applied > 0 {
				return applied, nil
			}
			return 0, fmt.Errorf("replica: shard %d segment %d: %w", shardIdx, first, err)
		}
		if err := svc.ApplyReplicated(seq, payload); err != nil {
			var gap *stream.ReplicationGapError
			if errors.As(err, &gap) {
				return applied, errRestart
			}
			if errors.Is(err, stream.ErrBadRecord) {
				// A record that passed frame CRCs but won't decode: the
				// stream is poisoned at this seq, and retrying the same
				// fetch would wedge the tail loop forever. Re-bootstrap
				// from the newest checkpoint, whose coverage will move
				// past the bad record.
				return applied, errRestart
			}
			return applied, err
		}
		applied++
	}
}

func (f *Follower) fetchManifest(ctx context.Context) (Manifest, error) {
	resp, err := f.get(ctx, "/v1/repl/segments")
	if err != nil {
		return Manifest{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return Manifest{}, fmt.Errorf("replica: manifest: HTTP %d (is the primary running with -repl?)", resp.StatusCode)
	}
	var man Manifest
	if err := json.NewDecoder(resp.Body).Decode(&man); err != nil {
		return Manifest{}, fmt.Errorf("replica: manifest: %w", err)
	}
	return man, nil
}

func (f *Follower) fetchCheckpoint(ctx context.Context, shardIdx int) ([]byte, error) {
	resp, err := f.get(ctx, fmt.Sprintf("/v1/repl/checkpoint/%d", shardIdx))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return nil, ErrNoCheckpoint
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("replica: checkpoint %d: HTTP %d", shardIdx, resp.StatusCode)
	}
	return io.ReadAll(resp.Body)
}

func (f *Follower) get(ctx context.Context, path string) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, strings.TrimRight(f.cfg.Primary, "/")+path, nil)
	if err != nil {
		return nil, err
	}
	return f.client.Do(req)
}

// noteProgress records the post-poll lag state: per-shard applied and
// target seqs, and — when fully caught up — the staleness anchor.
func (f *Follower) noteProgress(man Manifest, st *replState) {
	applied := make([]uint64, len(st.svcs))
	for i, s := range st.svcs {
		applied[i] = s.AppliedSeq()
	}
	target := make([]uint64, len(man.PerShard))
	caught := true
	for i, sm := range man.PerShard {
		target[i] = sm.LastSeq
		if i < len(applied) && applied[i] < sm.LastSeq {
			caught = false
		}
	}
	f.mu.Lock()
	f.applied, f.target = applied, target
	f.caughtUp = caught
	if caught {
		f.caughtUpAt = time.Now()
	}
	f.lastErr = ""
	f.mu.Unlock()
}

func (f *Follower) noteError(err error) {
	f.mu.Lock()
	f.lastErr = err.Error()
	f.caughtUp = false
	f.mu.Unlock()
}

// Lag is the replication-lag snapshot surfaced in /v1/stats and the
// readiness gate.
type Lag struct {
	Bootstrapped bool `json:"bootstrapped"`
	// CaughtUp reports that the last successful poll found every shard
	// at the primary's head.
	CaughtUp bool `json:"caught_up"`
	// BehindRecords is the summed applied-vs-primary seq gap at the
	// last poll.
	BehindRecords uint64 `json:"behind_records"`
	// StalenessMS is the time since the replica was last fully caught
	// up (since startup when it never was).
	StalenessMS int64    `json:"staleness_ms"`
	Bootstraps  int      `json:"bootstraps"`
	AppliedSeq  []uint64 `json:"applied_seq,omitempty"`
	PrimarySeq  []uint64 `json:"primary_seq,omitempty"`
	LastError   string   `json:"last_error,omitempty"`
}

// Lag snapshots the replication state.
func (f *Follower) Lag() Lag {
	f.mu.RLock()
	defer f.mu.RUnlock()
	lag := Lag{
		Bootstrapped: f.state != nil,
		CaughtUp:     f.caughtUp,
		Bootstraps:   f.bootstraps,
		AppliedSeq:   append([]uint64(nil), f.applied...),
		PrimarySeq:   append([]uint64(nil), f.target...),
		LastError:    f.lastErr,
	}
	for i, t := range f.target {
		if i < len(f.applied) && t > f.applied[i] {
			lag.BehindRecords += t - f.applied[i]
		}
	}
	anchor := f.caughtUpAt
	if anchor.IsZero() {
		anchor = f.started
	}
	lag.StalenessMS = time.Since(anchor).Milliseconds()
	return lag
}

// Ready gates /readyz: nil once bootstrapped and — when MaxLag is set
// — fully caught up within it.
func (f *Follower) Ready() error {
	lag := f.Lag()
	if !lag.Bootstrapped {
		return errors.New("replica: bootstrapping")
	}
	if f.cfg.MaxLag > 0 {
		stale := time.Duration(lag.StalenessMS) * time.Millisecond
		if stale > f.cfg.MaxLag {
			return fmt.Errorf("replica: stale by %s (max lag %s)", stale.Round(time.Millisecond), f.cfg.MaxLag)
		}
	}
	return nil
}

// Close stops the tail loop and the replica services.
func (f *Follower) Close() {
	f.closed.Do(func() {
		close(f.stop)
	})
	if f.loopDone != nil {
		<-f.loopDone
	}
	f.mu.Lock()
	st := f.state
	f.state = nil
	f.mu.Unlock()
	if st != nil {
		for _, s := range st.svcs {
			s.Close()
		}
	}
}

func (f *Follower) backendNow() viewBackend {
	f.mu.RLock()
	st := f.state
	f.mu.RUnlock()
	if st == nil {
		return nil
	}
	return st.backend()
}

// The httpapi.Backend surface. Reads delegate to the current
// generation; writes are refused outright — the follower does not
// proxy to the primary, so a client that wants read-your-writes must
// write to and read from the primary.

// IngestFrom refuses: replicas are read-only.
func (f *Follower) IngestFrom(ctx context.Context, client string, events []dataset.Event) error {
	return stream.ErrReadOnly
}

// Ingest refuses: replicas are read-only.
func (f *Follower) Ingest(ctx context.Context, events []dataset.Event) error {
	return stream.ErrReadOnly
}

// Flush refuses: replicas are read-only.
func (f *Follower) Flush(ctx context.Context) error { return stream.ErrReadOnly }

// Checkpoint refuses: replicas are read-only.
func (f *Follower) Checkpoint(ctx context.Context) error { return stream.ErrReadOnly }

// EPMClusters serves the merged (or single-shard) EPM view.
func (f *Follower) EPMClusters(dim string) (stream.EPMView, error) {
	b := f.backendNow()
	if b == nil {
		return stream.EPMView{}, errors.New("replica: not bootstrapped")
	}
	return b.EPMClusters(dim)
}

// BClusters serves the B view.
func (f *Follower) BClusters() stream.BView {
	b := f.backendNow()
	if b == nil {
		return stream.BView{}
	}
	return b.BClusters()
}

// Sample serves one sample's cluster assignments.
func (f *Follower) Sample(id string) (stream.SampleView, bool) {
	b := f.backendNow()
	if b == nil {
		return stream.SampleView{}, false
	}
	return b.Sample(id)
}

// FollowerStats is the replica's /v1/stats payload: the replication
// lag wrapped around the backend's usual stats shape.
type FollowerStats struct {
	Replication Lag `json:"replication"`
	Backend     any `json:"backend,omitempty"`
}

// StatsPayload serves FollowerStats.
func (f *Follower) StatsPayload() any {
	out := FollowerStats{Replication: f.Lag()}
	if b := f.backendNow(); b != nil {
		out.Backend = b.StatsPayload()
	}
	return out
}

// Counts delegates to the backend (zero before bootstrap).
func (f *Follower) Counts() (events, samples, executable, e, p, m, b int) {
	bk := f.backendNow()
	if bk == nil {
		return 0, 0, 0, 0, 0, 0, 0
	}
	return bk.Counts()
}
