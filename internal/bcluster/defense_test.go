package bcluster

import (
	"fmt"
	"reflect"
	"testing"
)

// defenseCfg is a small-universe config for the synthetic defense tests:
// 2-row bands make band collisions near-certain at the Jaccard levels the
// tests use, so link formation is governed by the exact verify alone.
func defenseCfg() Config {
	cfg := DefaultConfig()
	cfg.Bands = 48
	cfg.Threshold = 0.45
	return cfg
}

func addAll(t *testing.T, inc *Incremental, inputs ...Input) {
	t.Helper()
	for _, in := range inputs {
		if err := inc.Add(in); err != nil {
			t.Fatal(err)
		}
	}
}

// clones returns n identical inputs id-0..id-(n-1) over the same features.
func clones(id string, n int, feats ...string) []Input {
	var out []Input
	for i := 0; i < n; i++ {
		out = append(out, Input{ID: fmt.Sprintf("%s-%d", id, i), Profile: mkProfile(feats...)})
	}
	return out
}

func TestDefenseZeroKnobsInert(t *testing.T) {
	inc, err := NewIncremental(defenseCfg())
	if err != nil {
		t.Fatal(err)
	}
	if inc.def != nil {
		t.Fatal("zero-knob clusterer allocated defense state")
	}
	addAll(t, inc, Input{ID: "a", Profile: mkProfile("x", "y")})
	inc.Verify()
	if st := inc.DefenseStats(); st != (DefenseStats{}) {
		t.Errorf("zero-knob DefenseStats = %+v", st)
	}
	if ev := inc.TakeDefenseEvents(); ev != nil {
		t.Errorf("zero-knob events = %v", ev)
	}
	if s, ok := inc.SampleStatus("a"); !ok || s != StatusClustered {
		t.Errorf("SampleStatus = %v, %v", s, ok)
	}
	if _, ok := inc.SampleStatus("missing"); ok {
		t.Error("unknown ID reported ok")
	}
	// A snapshot of an undefended clusterer must not carry defense fields.
	for _, in := range inc.State().Inputs {
		if in.Status != StatusClustered || in.HoldPair != nil || in.Group != "" || in.Distrust != 0 {
			t.Errorf("undefended snapshot input carries defense fields: %+v", in)
		}
	}
}

func TestMergeResistanceHoldsBridge(t *testing.T) {
	cfg := defenseCfg()
	cfg.MergeResistance = 3
	inc, err := NewIncremental(cfg)
	if err != nil {
		t.Fatal(err)
	}
	addAll(t, inc, clones("a", 3, "a1", "a2", "a3")...)
	addAll(t, inc, clones("b", 3, "b1", "b2", "b3")...)
	inc.Verify()

	// J(bridge, core) = 3/6 = 0.5 against both established cores.
	bridge := []string{"a1", "a2", "a3", "b1", "b2", "b3"}
	addAll(t, inc, Input{ID: "x-0", Profile: mkProfile(bridge...)})
	inc.Verify()

	if s, _ := inc.SampleStatus("x-0"); s != StatusHeld {
		t.Fatalf("bridge status = %v, want held", s)
	}
	res := inc.Result()
	if len(res.Clusters) != 3 {
		t.Fatalf("clusters = %d, want 3 (two cores + held singleton)", len(res.Clusters))
	}
	if res.ClusterOf("a-0") == res.ClusterOf("b-0") {
		t.Fatal("held bridge merged the cores anyway")
	}
	ev := inc.TakeDefenseEvents()
	if len(ev) != 1 || ev[0].ID != "x-0" || ev[0].Status != StatusHeld {
		t.Fatalf("events = %+v", ev)
	}
	if inc.TakeDefenseEvents() != nil {
		t.Fatal("TakeDefenseEvents did not drain")
	}

	// A byte-identical copy of the bridge is the same bridge: it must not
	// corroborate the merge, only pile into quarantine with the first.
	addAll(t, inc, Input{ID: "x-1", Profile: mkProfile(bridge...)})
	inc.Verify()
	if s, _ := inc.SampleStatus("x-1"); s != StatusHeld {
		t.Fatalf("copied bridge status = %v, want held", s)
	}
	st := inc.DefenseStats()
	if st.Held != 2 || st.HeldTotal != 2 || st.Released != 0 {
		t.Fatalf("stats = %+v", st)
	}

	// Drain: both quarantined samples become permanent singletons.
	if n := inc.DrainHeld(); n != 2 {
		t.Fatalf("DrainHeld = %d, want 2", n)
	}
	st = inc.DefenseStats()
	if st.Held != 0 || st.Drained != 2 {
		t.Fatalf("post-drain stats = %+v", st)
	}
	for _, id := range []string{"x-0", "x-1"} {
		if s, _ := inc.SampleStatus(id); s != StatusDrained {
			t.Errorf("%s status = %v, want drained", id, s)
		}
	}
	// Drained samples stay out of link formation: a new core member must
	// join its core without picking up the drained bridges.
	addAll(t, inc, Input{ID: "a-3", Profile: mkProfile("a1", "a2", "a3")})
	inc.Verify()
	res = inc.Result()
	if res.ClusterOf("a-3") != res.ClusterOf("a-0") {
		t.Fatal("new member did not rejoin its core after drain")
	}
	if res.ClusterOf("a-3") == res.ClusterOf("x-0") {
		t.Fatal("drained bridge re-entered link formation")
	}
}

func TestMergeResistanceCorroboration(t *testing.T) {
	cfg := defenseCfg()
	cfg.Threshold = 0.3
	cfg.MergeResistance = 3
	inc, err := NewIncremental(cfg)
	if err != nil {
		t.Fatal(err)
	}
	aFeats := []string{"a1", "a2", "a3", "a4", "a5", "a6", "a7", "a8", "a9"}
	bFeats := []string{"b1", "b2", "b3", "b4", "b5", "b6", "b7", "b8", "b9"}
	addAll(t, inc, clones("a", 3, aFeats...)...)
	addAll(t, inc, clones("b", 3, bFeats...)...)
	inc.Verify()

	// Bridge over one half of each core: J(x, core) = 5/14 ≈ 0.357.
	addAll(t, inc, Input{ID: "x", Profile: mkProfile("a1", "a2", "a3", "a4", "a5", "b1", "b2", "b3", "b4", "b5")})
	inc.Verify()
	if s, _ := inc.SampleStatus("x"); s != StatusHeld {
		t.Fatalf("bridge status = %v, want held", s)
	}

	// An independent witness attests the same pair through the other
	// halves: J(w, core) = 5/14 but J(w, x) = 2/18 ≈ 0.11 < threshold.
	// One dissimilar witness corroborates the merge, and the release scan
	// then frees the original hold into the merged component.
	addAll(t, inc, Input{ID: "w", Profile: mkProfile("a5", "a6", "a7", "a8", "a9", "b5", "b6", "b7", "b8", "b9")})
	inc.Verify()
	res := inc.Result()
	if len(res.Clusters) != 1 {
		t.Fatalf("clusters = %d, want 1 merged cluster: %+v", len(res.Clusters), res.Clusters)
	}
	for _, id := range []string{"x", "w"} {
		if s, _ := inc.SampleStatus(id); s != StatusClustered {
			t.Errorf("%s status = %v, want clustered", id, s)
		}
	}
	st := inc.DefenseStats()
	if st.Held != 0 || st.HeldTotal != 1 || st.Released != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestTrustPenaltyRaisesThreshold(t *testing.T) {
	cfg := defenseCfg()
	cfg.TrustPenalty = 0.5
	inc, err := NewIncremental(cfg)
	if err != nil {
		t.Fatal(err)
	}
	addAll(t, inc,
		Input{ID: "v0", Profile: mkProfile("a1", "a2", "a3")},
		Input{ID: "v1", Profile: mkProfile("a1", "a2", "a3", "a4")}, // J=0.75 at effT=0.45: links
		Input{ID: "t0", Profile: mkProfile("a1", "a2", "a3")},       // J=1.0 at effT=0.9: links
		Input{ID: "t1", Profile: mkProfile("a1", "a2", "a3", "a5")}, // J=0.75 at effT=0.9: rejected
	)
	inc.inputs[2].Distrust = 0.9
	inc.inputs[3].Distrust = 0.9
	inc.Verify()
	res := inc.Result()
	if res.ClusterOf("v1") != res.ClusterOf("v0") {
		t.Error("trusted pair at J=0.75 must link at base threshold")
	}
	if res.ClusterOf("t0") != res.ClusterOf("v0") {
		t.Error("identical profiles must link even at maximum penalty")
	}
	if res.ClusterOf("t1") == res.ClusterOf("v0") {
		t.Error("distrusted pair at J=0.75 linked below the effective threshold")
	}
}

func TestEffThresholdSymmetricAndCapped(t *testing.T) {
	cfg := defenseCfg()
	cfg.TrustPenalty = 0.8
	if got, want := cfg.effThreshold(0.2, 0.6), cfg.Threshold+0.8*0.6; got != want {
		t.Errorf("effThreshold = %v, want %v", got, want)
	}
	if got := cfg.effThreshold(0.6, 0.2); got != cfg.effThreshold(0.2, 0.6) {
		t.Error("effThreshold is not symmetric")
	}
	if got := cfg.effThreshold(1, 1); got != 1 {
		t.Errorf("effThreshold not capped: %v", got)
	}
	cfg.TrustPenalty = 0
	if got := cfg.effThreshold(1, 1); got != cfg.Threshold {
		t.Errorf("zero penalty must reduce to base threshold, got %v", got)
	}
}

func TestAnomalyGateParksCrossGroupLinks(t *testing.T) {
	cfg := defenseCfg()
	cfg.GroupQuorum = 2
	inc, err := NewIncremental(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Victim group: three identical samples. Attacker group "mal":
	// two mutually dissimilar seeds establish the quorum.
	for i, in := range clones("v", 3, "a1", "a2", "a3") {
		in.Group = "victims"
		addAll(t, inc, in)
		_ = i
	}
	addAll(t, inc,
		Input{ID: "m0", Profile: mkProfile("m1", "m2", "m3"), Group: "mal"},
		Input{ID: "m1", Profile: mkProfile("n1", "n2", "n3"), Group: "mal"},
	)
	inc.Verify()

	// The dilution sample links only victims while its own group has
	// integrated quorum members it does not link: parked.
	addAll(t, inc, Input{ID: "d0", Profile: mkProfile("a1", "a2", "a3", "j1"), Group: "mal"})
	inc.Verify()
	if s, _ := inc.SampleStatus("d0"); s != StatusParked {
		t.Fatalf("dilution status = %v, want parked", s)
	}
	res := inc.Result()
	if res.ClusterOf("d0") == res.ClusterOf("v-0") {
		t.Fatal("parked sample joined the victim cluster")
	}
	st := inc.DefenseStats()
	if st.Parked != 1 || st.ParkedTotal != 1 {
		t.Fatalf("stats = %+v", st)
	}

	// A same-group link defuses the gate: a sample similar to both the
	// victims and a fellow group member is consistent evidence.
	addAll(t, inc, Input{ID: "g0", Profile: mkProfile("a1", "a2", "a3"), Group: "victims"})
	inc.Verify()
	if s, _ := inc.SampleStatus("g0"); s != StatusClustered {
		t.Fatalf("same-group sample status = %v, want clustered", s)
	}
	// Ungrouped samples pass the gate regardless of what they link.
	addAll(t, inc, Input{ID: "u0", Profile: mkProfile("a1", "a2", "a3", "j2")})
	inc.Verify()
	if s, _ := inc.SampleStatus("u0"); s != StatusClustered {
		t.Fatalf("ungrouped sample status = %v, want clustered", s)
	}
}

func TestDefendedStateRestore(t *testing.T) {
	cfg := defenseCfg()
	cfg.MergeResistance = 3
	cfg.GroupQuorum = 2
	cfg.TrustPenalty = 0.5
	inc, err := NewIncremental(cfg)
	if err != nil {
		t.Fatal(err)
	}
	addAll(t, inc, clones("a", 3, "a1", "a2", "a3")...)
	addAll(t, inc, clones("b", 3, "b1", "b2", "b3")...)
	addAll(t, inc,
		Input{ID: "m0", Profile: mkProfile("m1", "m2", "m3"), Group: "mal"},
		Input{ID: "m1", Profile: mkProfile("n1", "n2", "n3"), Group: "mal"},
	)
	inc.Verify()
	addAll(t, inc,
		Input{ID: "x", Profile: mkProfile("a1", "a2", "a3", "b1", "b2", "b3")},   // held
		Input{ID: "d", Profile: mkProfile("a1", "a2", "a3", "j1"), Group: "mal"}, // parked
	)
	inc.Verify()
	addAll(t, inc, Input{ID: "late", Profile: mkProfile("b1", "b2", "b3")}) // still parked pre-Verify

	st := inc.State()
	got, err := RestoreIncremental(cfg, st)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.State(), st) {
		t.Fatalf("restored state differs:\n got %+v\nwant %+v", got.State(), st)
	}
	want := inc.Result()
	res := got.Result()
	if !reflect.DeepEqual(res.Clusters, want.Clusters) {
		t.Fatalf("restored partition differs:\n got %+v\nwant %+v", res.Clusters, want.Clusters)
	}
	for _, id := range []string{"x", "d", "a-0", "m0"} {
		ws, _ := inc.SampleStatus(id)
		gs, _ := got.SampleStatus(id)
		if ws != gs {
			t.Errorf("%s: restored status %v, want %v", id, gs, ws)
		}
	}
	// The restored instance keeps enforcing: verifying the parked suffix
	// and a fresh bridge behaves as on the original.
	for _, c := range []*Incremental{inc, got} {
		addAll(t, c, Input{ID: "x2", Profile: mkProfile("a1", "a2", "a3", "b1", "b2", "b4")})
		c.Verify()
	}
	ws, _ := inc.SampleStatus("x2")
	gs, _ := got.SampleStatus("x2")
	if ws != gs {
		t.Fatalf("post-restore divergence on x2: %v vs %v", gs, ws)
	}
	if !reflect.DeepEqual(got.Result().Clusters, inc.Result().Clusters) {
		t.Fatal("post-restore partitions diverged")
	}
}

func TestStatusString(t *testing.T) {
	for s, want := range map[Status]string{
		StatusClustered: "clustered",
		StatusParked:    "parked",
		StatusHeld:      "held",
		StatusDrained:   "drained",
		Status(9):       "unknown",
	} {
		if got := s.String(); got != want {
			t.Errorf("Status(%d).String() = %q, want %q", s, got, want)
		}
	}
}
