package bcluster

import (
	"fmt"
	"hash/fnv"
	"reflect"
	"testing"

	"repro/internal/behavior"
)

// feedParts distributes the corpus over per-shard incremental clusterers
// by a stable hash of the sample ID, verifying every verifyEvery adds
// plus a final epoch per shard.
func feedParts(t *testing.T, inputs []Input, cfg Config, shards, verifyEvery int) []*Incremental {
	t.Helper()
	parts := make([]*Incremental, shards)
	for i := range parts {
		inc, err := NewIncremental(cfg)
		if err != nil {
			t.Fatal(err)
		}
		parts[i] = inc
	}
	for i, in := range inputs {
		h := fnv.New64a()
		h.Write([]byte(in.ID))
		p := parts[h.Sum64()%uint64(shards)]
		if err := p.Add(in); err != nil {
			t.Fatal(err)
		}
		if verifyEvery > 0 && i%verifyEvery == verifyEvery-1 {
			p.Verify()
		}
	}
	for _, p := range parts {
		p.Verify()
	}
	return parts
}

// TestMergeMatchesBatchPartition is the shard-merge differential gate:
// the merged clusters are byte-identical to Run over the union at every
// shard count and verification cadence.
func TestMergeMatchesBatchPartition(t *testing.T) {
	cfg := DefaultConfig()
	inputs := incCorpus(400)
	batch, err := Run(inputs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 2, 3, 4, 8} {
		for _, verifyEvery := range []int{0, 1, 53} {
			parts := feedParts(t, inputs, cfg, shards, verifyEvery)
			merged, err := Merge(parts)
			if err != nil {
				t.Fatal(err)
			}
			label := fmt.Sprintf("shards=%d verify=%d", shards, verifyEvery)
			if !reflect.DeepEqual(merged.Clusters, batch.Clusters) {
				t.Fatalf("%s: merged clusters diverge from batch", label)
			}
			if merged.Stats.Samples != batch.Stats.Samples {
				t.Fatalf("%s: samples %d, want %d", label, merged.Stats.Samples, batch.Stats.Samples)
			}
			for _, c := range batch.Clusters {
				for _, id := range c.Members {
					if got := merged.ClusterOf(id); got != c.ID {
						t.Fatalf("%s: ClusterOf(%s) = %d, want %d", label, id, got, c.ID)
					}
				}
			}
		}
	}
}

// crossProfile builds a profile of shared features plus a distinct tail,
// giving precise control over pairwise Jaccard similarity.
func crossProfile(core string, shared int, tag string, distinct int) *behavior.Profile {
	p := behavior.NewProfile()
	for i := 0; i < shared; i++ {
		p.Add(fmt.Sprintf("%s-core-%d", core, i))
	}
	for i := 0; i < distinct; i++ {
		p.Add(fmt.Sprintf("%s-own-%d", tag, i))
	}
	return p
}

// TestMergeCrossShardCollisions engineers every LSH band collision to
// straddle the shard boundary: similar pairs, a sub-threshold colliding
// pair, and a transitive chain all have their endpoints on different
// shards, so the per-shard probes see nothing and the merge must find
// every link. Clusters and Stats are asserted byte-identical to Run on
// the union.
func TestMergeCrossShardCollisions(t *testing.T) {
	cfg := DefaultConfig()
	inputs := []Input{
		// a≈b at Jaccard 20/24 ≈ 0.83: linked across the boundary.
		{ID: "a", Profile: crossProfile("ab", 20, "a", 2)},
		{ID: "b", Profile: crossProfile("ab", 20, "b", 2)},
		// c~d at Jaccard 15/25 = 0.6: collides in some band, fails
		// verification — exercises the cross-shard failed-pair memo.
		{ID: "c", Profile: crossProfile("cd", 15, "c", 5)},
		{ID: "d", Profile: crossProfile("cd", 15, "d", 5)},
		// e≈f≈g: a chain whose closure spans both shards; e and g land
		// on the same shard and link there, f joins across the boundary.
		{ID: "e", Profile: crossProfile("efg", 22, "e", 1)},
		{ID: "f", Profile: crossProfile("efg", 22, "f", 1)},
		{ID: "g", Profile: crossProfile("efg", 22, "g", 1)},
		// h: unrelated singleton.
		{ID: "h", Profile: crossProfile("h", 9, "h", 0)},
	}
	batch, err := Run(inputs, cfg)
	if err != nil {
		t.Fatal(err)
	}

	parts := make([]*Incremental, 2)
	for i := range parts {
		if parts[i], err = NewIncremental(cfg); err != nil {
			t.Fatal(err)
		}
	}
	assign := map[string]int{"a": 0, "b": 1, "c": 0, "d": 1, "e": 0, "f": 1, "g": 0, "h": 1}
	for _, in := range inputs {
		if err := parts[assign[in.ID]].Add(in); err != nil {
			t.Fatal(err)
		}
	}
	intraPairs := 0
	for _, p := range parts {
		p.Verify()
		intraPairs += p.stats.CandidatePairs
	}

	merged, err := Merge(parts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(merged.Clusters, batch.Clusters) {
		t.Fatalf("merged clusters diverge:\ngot  %+v\nwant %+v", merged.Clusters, batch.Clusters)
	}
	if !reflect.DeepEqual(merged.Stats, batch.Stats) {
		t.Fatalf("merged stats diverge:\ngot  %+v\nwant %+v", merged.Stats, batch.Stats)
	}
	if merged.Stats.CandidatePairs <= intraPairs {
		t.Fatalf("no cross-shard candidates probed: %d total vs %d intra-shard",
			merged.Stats.CandidatePairs, intraPairs)
	}
	if merged.ClusterOf("a") != merged.ClusterOf("b") {
		t.Fatal("cross-shard pair a/b not linked")
	}
	if merged.ClusterOf("c") == merged.ClusterOf("d") {
		t.Fatal("sub-threshold pair c/d linked")
	}
	for _, id := range []string{"f", "g"} {
		if merged.ClusterOf("e") != merged.ClusterOf(id) {
			t.Fatalf("chain member %s not in e's cluster", id)
		}
	}
}

// TestMergeParkedSamplesStaySingletons checks that samples still parked
// on their shard surface as singletons, exactly as in the shard's own
// Result.
func TestMergeParkedSamplesStaySingletons(t *testing.T) {
	cfg := DefaultConfig()
	a, _ := NewIncremental(cfg)
	b, _ := NewIncremental(cfg)
	if err := a.Add(Input{ID: "x", Profile: crossProfile("xy", 20, "x", 2)}); err != nil {
		t.Fatal(err)
	}
	a.Verify()
	// y is similar to x but parked on the other shard: no link yet.
	if err := b.Add(Input{ID: "y", Profile: crossProfile("xy", 20, "y", 2)}); err != nil {
		t.Fatal(err)
	}
	merged, err := Merge([]*Incremental{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if merged.Stats.Samples != 2 || len(merged.Clusters) != 2 {
		t.Fatalf("want two singletons, got %+v", merged.Clusters)
	}
	b.Verify()
	merged, err = Merge([]*Incremental{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if len(merged.Clusters) != 1 {
		t.Fatalf("after verify, want one cluster, got %+v", merged.Clusters)
	}
}

func TestMergeInputValidation(t *testing.T) {
	if _, err := Merge(nil); err == nil {
		t.Fatal("merge of zero parts did not fail")
	}
	cfg := DefaultConfig()
	a, _ := NewIncremental(cfg)
	other := cfg
	other.Seed++
	b, _ := NewIncremental(other)
	if _, err := Merge([]*Incremental{a, b}); err == nil {
		t.Fatal("mismatched configs did not fail")
	}
	c, _ := NewIncremental(cfg)
	d, _ := NewIncremental(cfg)
	for _, p := range []*Incremental{c, d} {
		if err := p.Add(Input{ID: "dup", Profile: behavior.NewProfile()}); err != nil {
			t.Fatal(err)
		}
		p.Verify()
	}
	if _, err := Merge([]*Incremental{c, d}); err == nil {
		t.Fatal("duplicate sample ID across parts did not fail")
	}
}
