package bcluster

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/behavior"
	"repro/internal/simrng"
)

// incCorpus builds a family-structured corpus shaped like the enrichment
// output: shared per-family cores plus per-sample noise (mirrors
// internal/benchdata, which cannot be imported from this package).
func incCorpus(n int) []Input {
	r := simrng.New(7).Stream("inc-corpus")
	inputs := make([]Input, 0, n)
	for i := 0; i < n; i++ {
		fam := i % 17
		p := behavior.NewProfile()
		for k := 0; k < 15; k++ {
			p.Add(fmt.Sprintf("fam%d-f%d", fam, k))
		}
		for k := 0; k < r.Intn(4); k++ {
			p.Add(fmt.Sprintf("s%d-x%d", i, k))
		}
		inputs = append(inputs, Input{ID: fmt.Sprintf("s%04d", i), Profile: p})
	}
	return inputs
}

// members strips cluster IDs and stats down to the membership partition.
func members(r *Result) [][]string {
	out := make([][]string, len(r.Clusters))
	for i, c := range r.Clusters {
		out[i] = c.Members
	}
	return out
}

func TestIncrementalMatchesBatchAtEveryEpochSize(t *testing.T) {
	cfg := DefaultConfig()
	inputs := incCorpus(400)
	batch, err := Run(inputs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, epoch := range []int{1, 7, 64, len(inputs)} {
		inc, err := NewIncremental(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i, in := range inputs {
			if err := inc.Add(in); err != nil {
				t.Fatal(err)
			}
			if inc.Pending() >= epoch {
				inc.Verify()
			}
			if i == len(inputs)-1 {
				inc.Verify()
			}
		}
		got := inc.Result()
		if !reflect.DeepEqual(members(got), members(batch)) {
			t.Fatalf("epoch=%d: incremental partition diverges from batch (%d vs %d clusters)",
				epoch, len(got.Clusters), len(batch.Clusters))
		}
		if inc.Components() != len(batch.Clusters) {
			t.Errorf("epoch=%d: Components() = %d, want %d", epoch, inc.Components(), len(batch.Clusters))
		}
		if got.Stats.Samples != len(inputs) {
			t.Errorf("epoch=%d: Samples = %d", epoch, got.Stats.Samples)
		}
	}
}

// TestIncrementalCarriedStateMatchesFromScratch is the PR 6 differential
// gate for the B side: an Incremental that carries its failed-pair memo,
// union-find, and bucket watermarks across many Verify epochs must be
// byte-identical — clusters, IDs, AND probe stats — to a fresh
// Incremental that sees the same samples and verifies once. This is
// strictly stronger than the partition check above: integration happens
// in arrival order either way, so the epoch boundaries must not be
// observable in any output, which is exactly the property checkpoint
// recovery (bcluster.RestoreIncremental) relies on.
func TestIncrementalCarriedStateMatchesFromScratch(t *testing.T) {
	cfg := DefaultConfig()
	inputs := incCorpus(400)
	for _, epoch := range []int{1, 7, 64} {
		carried, err := NewIncremental(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i, in := range inputs {
			if err := carried.Add(in); err != nil {
				t.Fatal(err)
			}
			if carried.Pending() >= epoch || i == len(inputs)-1 {
				carried.Verify()
			}
		}
		scratch, err := NewIncremental(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, in := range inputs {
			if err := scratch.Add(in); err != nil {
				t.Fatal(err)
			}
		}
		scratch.Verify()

		got, want := carried.Result(), scratch.Result()
		if !reflect.DeepEqual(got.Clusters, want.Clusters) {
			t.Fatalf("epoch=%d: carried-memo clusters diverge from from-scratch", epoch)
		}
		if got.Stats != want.Stats {
			t.Fatalf("epoch=%d: carried-memo stats %+v diverge from from-scratch %+v",
				epoch, got.Stats, want.Stats)
		}
		if carried.Stats() != scratch.Stats() {
			t.Fatalf("epoch=%d: cumulative stats diverge", epoch)
		}
	}
}

// TestIncrementalUniformBucketFastPath pins the optimization itself:
// after repeated epochs over a family-structured corpus, band buckets
// must be recognized as single-component (uniform watermark at the end),
// which is what turns history-sized rescans into O(1) skips.
func TestIncrementalUniformBucketFastPath(t *testing.T) {
	cfg := DefaultConfig()
	inc, err := NewIncremental(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, in := range incCorpus(300) {
		if err := inc.Add(in); err != nil {
			t.Fatal(err)
		}
		if inc.Pending() >= 16 || i == 299 {
			inc.Verify()
		}
	}
	big, uniform := 0, 0
	for _, band := range inc.buckets {
		for _, b := range band {
			if len(b.members) < 4 {
				continue
			}
			big++
			if b.uniform == len(b.members) {
				uniform++
			}
		}
	}
	if big == 0 {
		t.Fatal("corpus produced no populated band buckets; test is vacuous")
	}
	if uniform*2 < big {
		t.Fatalf("only %d/%d populated buckets fully uniform; fast path not engaging", uniform, big)
	}
}

func TestIncrementalOrderInvariance(t *testing.T) {
	cfg := DefaultConfig()
	inputs := incCorpus(200)
	batch, err := Run(inputs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	perm := simrng.New(11).Stream("perm").Perm(len(inputs))
	inc, err := NewIncremental(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range perm {
		if err := inc.Add(inputs[i]); err != nil {
			t.Fatal(err)
		}
	}
	inc.Verify()
	if !reflect.DeepEqual(members(inc.Result()), members(batch)) {
		t.Fatal("permuted arrival order changed the final partition")
	}
}

func TestIncrementalPendingSnapshot(t *testing.T) {
	cfg := DefaultConfig()
	inputs := incCorpus(40)
	inc, err := NewIncremental(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range inputs[:30] {
		if err := inc.Add(in); err != nil {
			t.Fatal(err)
		}
	}
	inc.Verify()
	for _, in := range inputs[30:] {
		if err := inc.Add(in); err != nil {
			t.Fatal(err)
		}
	}
	if inc.Pending() != 10 {
		t.Fatalf("Pending = %d, want 10", inc.Pending())
	}
	// Parked samples appear as singletons in the snapshot.
	res := inc.Result()
	total := 0
	for _, c := range res.Clusters {
		total += c.Size()
	}
	if total != 40 {
		t.Fatalf("snapshot covers %d samples, want 40", total)
	}
	for _, in := range inputs[30:] {
		idx := res.ClusterOf(in.ID)
		if idx < 0 || res.Clusters[idx].Size() != 1 {
			t.Errorf("parked sample %s not a singleton in the snapshot", in.ID)
		}
	}
	if inc.Epochs() != 1 {
		t.Errorf("Epochs = %d, want 1", inc.Epochs())
	}
}

func TestIncrementalAmend(t *testing.T) {
	cfg := DefaultConfig()
	inputs := incCorpus(60)
	inc, err := NewIncremental(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range inputs[:59] {
		if err := inc.Add(in); err != nil {
			t.Fatal(err)
		}
	}
	inc.Verify()
	if err := inc.Amend(inputs[0].ID, inputs[0].Profile); err == nil {
		t.Error("amending a verified sample must error")
	}
	// Amend a parked sample: the final partition must equal the batch run
	// over the amended corpus.
	amended := behavior.NewProfile()
	for k := 0; k < 15; k++ {
		amended.Add(fmt.Sprintf("fam3-f%d", k))
	}
	last := inputs[59]
	if err := inc.Add(last); err != nil {
		t.Fatal(err)
	}
	if err := inc.Amend(last.ID, amended); err != nil {
		t.Fatal(err)
	}
	inc.Verify()

	batchInputs := append(append([]Input{}, inputs[:59]...), Input{ID: last.ID, Profile: amended})
	batch, err := Run(batchInputs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(members(inc.Result()), members(batch)) {
		t.Fatal("amended partition diverges from batch over the amended corpus")
	}
	if err := inc.Amend("nope", amended); err == nil {
		t.Error("amending an unknown sample must error")
	}
}

func TestIncrementalAddValidation(t *testing.T) {
	inc, err := NewIncremental(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := inc.Add(Input{ID: "", Profile: behavior.NewProfile()}); err == nil {
		t.Error("empty ID must error")
	}
	if err := inc.Add(Input{ID: "a", Profile: nil}); err == nil {
		t.Error("nil profile must error")
	}
	if err := inc.Add(Input{ID: "a", Profile: behavior.NewProfile()}); err != nil {
		t.Fatal(err)
	}
	if err := inc.Add(Input{ID: "a", Profile: behavior.NewProfile()}); err == nil {
		t.Error("duplicate ID must error")
	}
	if !inc.Has("a") || inc.Has("b") {
		t.Error("Has misreports membership")
	}
}
