package bcluster

import (
	"fmt"
	"math"

	"repro/internal/behavior"
)

// Incremental is the streaming counterpart of Run: samples are added one
// at a time, parked in a pending pool, and integrated into the LSH index
// and the union-find at the next verification epoch (Verify).
//
// The final partition is identical to the batch Run over the same
// samples, regardless of arrival order or epoch boundaries: a pair is a
// candidate exactly when the two signatures collide in at least one LSH
// band — a property of the signatures alone — and the single-linkage
// closure over the candidate pairs that pass the Jaccard threshold does
// not depend on the order the links are discovered in. Stats, by
// contrast, are path-dependent (the component pruning that avoids
// re-verifying already-linked pairs fires at different points), so only
// the membership partition is comparable across the two implementations.
//
// An Incremental is not safe for concurrent use; the streaming service
// serializes mutation on its ingest worker and snapshots under a lock.
type Incremental struct {
	cfg  Config
	rows int

	byID   map[string]int
	inputs []Input
	sets   []behavior.FeatureSet
	sigs   [][]uint64

	uf      *unionFind
	buckets []map[uint64]*bucket // per band: band key -> integrated members
	failed  map[uint64]struct{}
	stats   Stats

	// integrated is the watermark: inputs[:integrated] are in the LSH
	// index and the union-find; inputs[integrated:] are parked.
	integrated int
	epochs     int
	merges     int

	// def holds the poisoning-defense state; nil unless a defense knob
	// is nonzero (see defense.go).
	def *defenseState
}

// NewIncremental returns an empty incremental clusterer.
func NewIncremental(cfg Config) (*Incremental, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	buckets := make([]map[uint64]*bucket, cfg.Bands)
	for b := range buckets {
		buckets[b] = make(map[uint64]*bucket)
	}
	inc := &Incremental{
		cfg:     cfg,
		rows:    cfg.NumHashes / cfg.Bands,
		byID:    make(map[string]int),
		buckets: buckets,
		failed:  make(map[uint64]struct{}),
		uf:      newUnionFind(0),
	}
	if cfg.defenseEnabled() {
		inc.def = &defenseState{
			groupCount: make(map[string]int),
			holds:      make(map[int][2]int),
		}
	}
	return inc, nil
}

// Add parks one sample for the next verification epoch. The MinHash
// signature is computed eagerly (it depends only on the profile), so
// Verify is a pure probe-and-link pass.
func (inc *Incremental) Add(in Input) error {
	if in.ID == "" {
		return fmt.Errorf("bcluster: input with empty ID")
	}
	if _, dup := inc.byID[in.ID]; dup {
		return fmt.Errorf("bcluster: duplicate input ID %q", in.ID)
	}
	if in.Profile == nil {
		return fmt.Errorf("bcluster: input %q has nil profile", in.ID)
	}
	if len(inc.inputs) >= math.MaxUint32 {
		return fmt.Errorf("bcluster: %d inputs overflow the packed pair keys", len(inc.inputs))
	}
	set := in.Profile.FeatureSet()
	inc.byID[in.ID] = len(inc.inputs)
	inc.inputs = append(inc.inputs, in)
	inc.sets = append(inc.sets, set)
	inc.sigs = append(inc.sigs, signature(set, inc.cfg))
	inc.stats.Samples++
	return nil
}

// Amend replaces the profile of a still-parked sample — the streaming
// service uses it when a late event moves a sample's first-seen instant
// backwards and the re-executed profile differs. Amending an already
// integrated sample is an error: its links are part of the partition.
func (inc *Incremental) Amend(id string, p *behavior.Profile) error {
	idx, ok := inc.byID[id]
	if !ok {
		return fmt.Errorf("bcluster: amend of unknown sample %q", id)
	}
	if idx < inc.integrated {
		return fmt.Errorf("bcluster: sample %q already verified; its profile is frozen", id)
	}
	if p == nil {
		return fmt.Errorf("bcluster: amend of %q with nil profile", id)
	}
	set := p.FeatureSet()
	inc.inputs[idx].Profile = p
	inc.sets[idx] = set
	inc.sigs[idx] = signature(set, inc.cfg)
	return nil
}

// Pending reports the number of parked samples awaiting Verify.
func (inc *Incremental) Pending() int { return len(inc.inputs) - inc.integrated }

// Samples reports the total number of added samples.
func (inc *Incremental) Samples() int { return len(inc.inputs) }

// Epochs reports the number of completed verification epochs.
func (inc *Incremental) Epochs() int { return inc.epochs }

// Components reports the number of clusters the current partition has,
// counting each parked sample as its own singleton component.
func (inc *Incremental) Components() int { return len(inc.inputs) - inc.merges }

// Has reports whether a sample ID has been added.
func (inc *Incremental) Has(id string) bool {
	_, ok := inc.byID[id]
	return ok
}

// Verify runs one verification epoch: every parked sample is probed
// against the LSH index in arrival order, candidate pairs in different
// components are verified by exact Jaccard, passing pairs are linked, and
// the sample joins the index. A no-op when nothing is parked.
func (inc *Incremental) Verify() {
	if inc.Pending() == 0 {
		return
	}
	inc.uf.grow(len(inc.inputs))
	if inc.def != nil {
		inc.growDefense()
		for j := inc.integrated; j < len(inc.inputs); j++ {
			inc.integrateDefended(j)
		}
		inc.integrated = len(inc.inputs)
		if !inc.def.restoring {
			inc.releaseCorroborated()
		}
		inc.epochs++
		return
	}
	for j := inc.integrated; j < len(inc.inputs); j++ {
		inc.integrate(j)
	}
	inc.integrated = len(inc.inputs)
	inc.epochs++
}

// bucket is one LSH band bucket of integrated sample indices. uniform is
// a monotone watermark: members[:uniform] are known to be pairwise in the
// same union-find component. Unions never split components, so the
// watermark only ever advances.
type bucket struct {
	members []int
	uniform int
}

// integrate probes sample j against every band bucket and links it into
// the partition.
//
// The probe is what used to make Verify superlinear: a popular bucket is
// history-sized, and every new collision rescanned all of it even though
// almost every member was already in j's component (the scan skipped each
// one individually after two find calls). The uniform watermark turns
// that whole rescan into O(1): when the bucket is fully uniform and j
// already shares its component, every pair (i, j) would take the
// same-root skip — no candidate counted, no Jaccard run, no memo written,
// no link made — so skipping the scan leaves partition, stats, and memo
// exactly as the full scan would, byte for byte.
func (inc *Incremental) integrate(j int) {
	sig := inc.sigs[j]
	for band := 0; band < inc.cfg.Bands; band++ {
		key := bandKey(sig[band*inc.rows:(band+1)*inc.rows], uint64(band))
		b := inc.buckets[band][key]
		if b == nil {
			b = &bucket{}
			inc.buckets[band][key] = b
		}
		if len(b.members) > 0 {
			r0 := inc.uf.find(b.members[0])
			for b.uniform < len(b.members) && inc.uf.find(b.members[b.uniform]) == r0 {
				b.uniform++
			}
			if b.uniform == len(b.members) && inc.uf.find(j) == r0 {
				b.members = append(b.members, j)
				b.uniform++
				continue
			}
		}
		// The scan's remaining quadratic tail is j's FIRST collision with
		// its component-to-be: j is not yet linked, so the fast path above
		// misses and the scan walks the whole history-sized bucket even
		// though every member past the first is a same-root skip once the
		// first Jaccard links j in. Same cure as above: members[:uniform]
		// are pairwise same-root, so the moment one of them shares j's
		// root the rest of the prefix would all take the same-root skip —
		// jump the cursor to the watermark instead of paying two finds per
		// member. Only same-root pairs are skipped, so partition, stats,
		// and memo stay byte-identical to the full scan.
		for idx := 0; idx < len(b.members); idx++ {
			i := b.members[idx]
			if inc.uf.find(i) == inc.uf.find(j) {
				if idx < b.uniform {
					idx = b.uniform - 1
				}
				continue
			}
			pair := uint64(i)<<32 | uint64(j)
			if _, seen := inc.failed[pair]; seen {
				continue
			}
			inc.stats.CandidatePairs++
			if inc.sets[i].Jaccard(inc.sets[j]) >= inc.cfg.Threshold {
				inc.stats.Links++
				inc.uf.union(i, j)
				inc.merges++
			} else {
				inc.failed[pair] = struct{}{}
			}
		}
		b.members = append(b.members, j)
	}
}

// Result assembles the current partition into sorted clusters, parked
// samples included (they are singletons unless a previous epoch linked
// them). The snapshot never mutates the union-find, so it is safe to call
// under a read lock while no Verify/Add is running.
func (inc *Incremental) Result() *Result {
	roots := make([]int, len(inc.inputs))
	for i := range roots {
		roots[i] = inc.root(i)
	}
	return assembleRoots(inc.inputs, roots, inc.stats)
}

// root resolves a component representative without path mutation;
// samples beyond the union-find (parked since the last Verify) are their
// own roots.
func (inc *Incremental) root(x int) int {
	if x >= len(inc.uf.parent) {
		return x
	}
	for inc.uf.parent[x] != x {
		x = inc.uf.parent[x]
	}
	return x
}

// Stats returns the cumulative probe statistics. CandidatePairs and
// Links are path-dependent (see the type comment); Samples matches Run.
func (inc *Incremental) Stats() Stats { return inc.stats }
