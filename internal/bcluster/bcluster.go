// Package bcluster implements scalable behavior-based malware clustering
// after Bayer et al. (NDSS'09), the system behind the Anubis B-clusters
// the paper correlates against.
//
// Samples are represented by behavioral profiles (feature sets). Instead
// of computing all O(n²) pairwise distances, profiles are summarized by
// MinHash signatures; locality-sensitive hashing over signature bands
// proposes candidate pairs, whose exact Jaccard similarity is then
// verified; single-linkage clustering (transitive closure over verified
// links, i.e. union-find) produces the final clusters.
//
// The package also exposes an exact O(n²) baseline used by the ablation
// benchmarks to reproduce the scalability claim.
package bcluster

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"repro/internal/behavior"
)

// Config are the clustering parameters.
type Config struct {
	// NumHashes is the MinHash signature length; it must equal Bands*Rows.
	NumHashes int
	// Bands is the number of LSH bands.
	Bands int
	// Threshold is the minimum exact Jaccard similarity for two samples to
	// be linked.
	Threshold float64
	// Seed decorrelates the hash family.
	Seed uint64
	// Workers bounds the goroutines of both parallel stages — MinHash
	// signature construction and exact-Jaccard candidate verification; 0
	// defers to core.Scenario.Parallelism (and ultimately GOMAXPROCS).
	// Clusters and Stats are byte-identical at every worker count.
	Workers int

	// Online poisoning defenses (see defense.go). All three default to
	// zero = off; with every knob at zero the incremental clusterer runs
	// the original, byte-identical code path. They apply to Incremental
	// only — the batch Run is the undefended reference implementation.

	// MergeResistance quarantines a sample whose links would join two
	// established components of at least this size (0 = off).
	MergeResistance int
	// TrustPenalty scales how much a pair's worst Distrust raises its
	// link threshold (0 = off).
	TrustPenalty float64
	// GroupQuorum parks a sample whose links contradict its static group
	// once the group has at least this many integrated members (0 = off).
	GroupQuorum int
}

// DefaultConfig mirrors the regime of the original system: a 0.7
// similarity threshold with a signature of 96 hashes in 32 bands of 3.
func DefaultConfig() Config {
	return Config{NumHashes: 96, Bands: 32, Threshold: 0.7, Seed: 0x5eed}
}

// Validate checks parameter consistency.
func (c Config) Validate() error {
	if c.NumHashes <= 0 || c.Bands <= 0 {
		return fmt.Errorf("bcluster: NumHashes (%d) and Bands (%d) must be positive", c.NumHashes, c.Bands)
	}
	if c.NumHashes%c.Bands != 0 {
		return fmt.Errorf("bcluster: NumHashes (%d) must be a multiple of Bands (%d)", c.NumHashes, c.Bands)
	}
	if c.Threshold <= 0 || c.Threshold > 1 {
		return fmt.Errorf("bcluster: Threshold %v outside (0,1]", c.Threshold)
	}
	if c.MergeResistance < 0 {
		return fmt.Errorf("bcluster: MergeResistance must be non-negative, got %d", c.MergeResistance)
	}
	if c.TrustPenalty < 0 || c.TrustPenalty > 1 {
		return fmt.Errorf("bcluster: TrustPenalty %v outside [0,1]", c.TrustPenalty)
	}
	if c.GroupQuorum < 0 {
		return fmt.Errorf("bcluster: GroupQuorum must be non-negative, got %d", c.GroupQuorum)
	}
	return nil
}

// Input is one sample to cluster.
type Input struct {
	// ID identifies the sample (e.g. its MD5).
	ID string
	// Profile is the sample's behavioral profile.
	Profile *behavior.Profile
	// Group is the sample's static-perspective placement (the streaming
	// service passes its μ instance). Only consulted by the anomaly-gate
	// defense; empty opts out.
	Group string
	// Distrust is the provenance weight in [0,1] of the client that
	// submitted the sample. Only consulted by the trust-penalty defense.
	Distrust float64
}

// Cluster is one behavioral cluster.
type Cluster struct {
	// ID is a dense cluster index, assigned largest-cluster-first.
	ID int
	// Members lists the sample IDs, sorted.
	Members []string
}

// Size returns the number of members.
func (c Cluster) Size() int { return len(c.Members) }

// Result is the outcome of a clustering run.
type Result struct {
	Clusters []Cluster
	// Stats describe the work performed, for the scalability comparison.
	Stats Stats
	byID  map[string]int
}

// Stats counts the comparisons a run performed.
type Stats struct {
	// Samples is the input size.
	Samples int
	// CandidatePairs is the number of LSH-proposed pairs (equals all pairs
	// for the exact baseline).
	CandidatePairs int
	// Links is the number of pairs whose exact similarity passed the
	// threshold.
	Links int
}

// ClusterOf returns the cluster index of a sample ID, or -1.
func (r *Result) ClusterOf(id string) int {
	if i, ok := r.byID[id]; ok {
		return i
	}
	return -1
}

// Singletons returns the clusters with exactly one member.
func (r *Result) Singletons() []Cluster {
	var out []Cluster
	for _, c := range r.Clusters {
		if c.Size() == 1 {
			out = append(out, c)
		}
	}
	return out
}

// Run clusters the inputs with MinHash+LSH candidate generation.
//
// The hot path is staged. (1) A worker pool interns every profile into a
// behavior.FeatureSet and computes its MinHash signature from the
// precomputed feature hashes. (2) Per LSH band, a bucket scan proposes
// candidate pairs: buckets whose members already share one union-find
// component are skipped after a single linear root scan, and pairs that
// failed verification in an earlier band are deduplicated via packed
// uint64(i)<<32|j keys. (3) The remaining multi-component buckets are
// verified by a bounded worker pool computing merge-based exact Jaccard;
// the verified links are applied to the union-find in sorted order
// behind a per-band barrier. Every stage partitions work independently
// of scheduling, so Clusters and Stats are byte-identical at any
// Config.Workers value.
func Run(inputs []Input, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(inputs) > math.MaxUint32 {
		return nil, fmt.Errorf("bcluster: %d inputs overflow the packed pair keys", len(inputs))
	}
	ids := make(map[string]bool, len(inputs))
	for _, in := range inputs {
		if in.ID == "" {
			return nil, fmt.Errorf("bcluster: input with empty ID")
		}
		if ids[in.ID] {
			return nil, fmt.Errorf("bcluster: duplicate input ID %q", in.ID)
		}
		if in.Profile == nil {
			return nil, fmt.Errorf("bcluster: input %q has nil profile", in.ID)
		}
		ids[in.ID] = true
	}

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	sets := make([]behavior.FeatureSet, len(inputs))
	parallelChunks(len(inputs), workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			sets[i] = inputs[i].Profile.FeatureSet()
		}
	})

	// Identical feature sets produce identical signatures, and sandbox
	// runs of the same variant under the same environment outcomes are
	// exact duplicates, so signatures are computed once per distinct set
	// and shared. share[i] is the index of the first input with i's set.
	share := make([]int, len(inputs))
	reps := make([]int, 0, len(inputs))
	canon := make(map[uint64][]int, len(inputs))
	for i := range sets {
		h := contentHash(sets[i])
		rep := -1
		for _, c := range canon[h] {
			if featureSetsEqual(sets[c], sets[i]) {
				rep = c
				break
			}
		}
		if rep == -1 {
			canon[h] = append(canon[h], i)
			reps = append(reps, i)
			rep = i
		}
		share[i] = rep
	}
	sigs := make([][]uint64, len(inputs))
	parallelChunks(len(reps), workers, func(lo, hi int) {
		for k := lo; k < hi; k++ {
			sigs[reps[k]] = signature(sets[reps[k]], cfg)
		}
	})
	for i := range sigs {
		if sigs[i] == nil {
			sigs[i] = sigs[share[i]]
		}
	}

	rows := cfg.NumHashes / cfg.Bands
	uf := newUnionFind(len(inputs))
	roots := make([]int, len(inputs))
	// failed holds the packed keys of pairs that already missed the
	// threshold; verified pairs need no memo because their endpoints
	// share a component from then on.
	failed := make(map[uint64]struct{})
	stats := Stats{Samples: len(inputs)}
	buckets := newGrouper(len(inputs))
	var jobs [][]int
	var links []uint64

	for band := 0; band < cfg.Bands; band++ {
		for i := range roots {
			roots[i] = uf.find(i)
		}
		buckets.reset()
		for i, sig := range sigs {
			buckets.add(bandKey(sig[band*rows:(band+1)*rows], uint64(band)), i)
		}
		// A bucket can only propose pairs when it spans more than one
		// existing component; one linear root scan replaces the O(m²)
		// pairwise find scan the serial implementation performed on
		// every band revisit of an already-merged bucket.
		jobs = jobs[:0]
		for _, members := range buckets.groups[:buckets.used] {
			if len(members) < 2 {
				continue
			}
			r0 := roots[members[0]]
			for _, m := range members[1:] {
				if roots[m] != r0 {
					jobs = append(jobs, members)
					break
				}
			}
		}
		if len(jobs) == 0 {
			continue
		}
		// Buckets of one band are member-disjoint, so they verify as
		// self-contained jobs: each sees only the component structure
		// from previous bands (roots) plus its own in-bucket merges.
		verdicts := make([]bucketVerdict, len(jobs))
		parallelChunks(len(jobs), workers, func(lo, hi int) {
			scratch := newBucketScratch()
			for k := lo; k < hi; k++ {
				verdicts[k] = verifyBucket(jobs[k], roots, sets, failed, cfg.Threshold, scratch)
			}
		})
		links = links[:0]
		for k := range verdicts {
			stats.CandidatePairs += verdicts[k].pairs
			stats.Links += len(verdicts[k].links)
			links = append(links, verdicts[k].links...)
			for _, key := range verdicts[k].failed {
				failed[key] = struct{}{}
			}
		}
		// The components are union-order-independent, but a fixed order
		// keeps the union-find layout — and with it the next band's
		// roots snapshot — reproducible byte for byte.
		sort.Slice(links, func(a, b int) bool { return links[a] < links[b] })
		for _, key := range links {
			uf.union(int(key>>32), int(key&math.MaxUint32))
		}
	}
	return assemble(inputs, uf, stats), nil
}

// bucketVerdict is one bucket's verification outcome: how many candidate
// pairs it proposed, and the packed keys of the pairs that passed
// (links) or missed (failed) the similarity threshold.
type bucketVerdict struct {
	pairs  int
	links  []uint64
	failed []uint64
}

// bucketScratch is per-worker state reused across bucket jobs: a tiny
// union-find over the distinct components represented in one bucket.
type bucketScratch struct {
	index  map[int]int32
	parent []int32
	ids    []int32
}

func newBucketScratch() *bucketScratch {
	return &bucketScratch{index: make(map[int]int32)}
}

// verifyBucket replays the serial implementation's scan over one bucket:
// pairs are visited in member order, pairs whose endpoints already share
// a component (from previous bands, or merged earlier in this bucket)
// are skipped, previously failed pairs are skipped, and every other pair
// is verified by exact Jaccard over the interned feature sets. The
// verdict depends only on the band-start roots and the failed set, never
// on scheduling.
func verifyBucket(members []int, roots []int, sets []behavior.FeatureSet, failed map[uint64]struct{}, threshold float64, s *bucketScratch) bucketVerdict {
	clear(s.index)
	s.parent = s.parent[:0]
	s.ids = s.ids[:0]
	for _, m := range members {
		id, ok := s.index[roots[m]]
		if !ok {
			id = int32(len(s.parent))
			s.index[roots[m]] = id
			s.parent = append(s.parent, id)
		}
		s.ids = append(s.ids, id)
	}
	parent := s.parent
	var v bucketVerdict
	for a := 0; a < len(members); a++ {
		for b := a + 1; b < len(members); b++ {
			la, lb := s.ids[a], s.ids[b]
			for parent[la] != la {
				parent[la] = parent[parent[la]]
				la = parent[la]
			}
			for parent[lb] != lb {
				parent[lb] = parent[parent[lb]]
				lb = parent[lb]
			}
			if la == lb {
				continue
			}
			i, j := members[a], members[b]
			key := uint64(i)<<32 | uint64(j)
			if _, seen := failed[key]; seen {
				continue
			}
			v.pairs++
			if sets[i].Jaccard(sets[j]) >= threshold {
				v.links = append(v.links, key)
				s.parent[lb] = la
			} else {
				v.failed = append(v.failed, key)
			}
		}
	}
	return v
}

// grouper buckets sample indices by band key, reusing its backing
// storage across bands so the steady-state scan allocates nothing.
// Groups are ordered by first appearance, i.e. by sample index.
type grouper struct {
	slot   map[uint64]int
	groups [][]int
	used   int
}

func newGrouper(n int) *grouper {
	return &grouper{slot: make(map[uint64]int, n)}
}

func (g *grouper) reset() {
	clear(g.slot)
	for i := 0; i < g.used; i++ {
		g.groups[i] = g.groups[i][:0]
	}
	g.used = 0
}

func (g *grouper) add(key uint64, i int) {
	s, ok := g.slot[key]
	if !ok {
		s = g.used
		g.slot[key] = s
		if s == len(g.groups) {
			g.groups = append(g.groups, nil)
		}
		g.used++
	}
	g.groups[s] = append(g.groups[s], i)
}

// parallelChunks splits [0,n) into one contiguous chunk per worker and
// runs fn on each; with a single worker it runs inline. The partition is
// a pure function of n and workers, never of scheduling, which is what
// lets callers write results into disjoint slice ranges and stay
// deterministic at any worker count.
func parallelChunks(n, workers int, fn func(lo, hi int)) {
	if n == 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		lo, hi := w*n/workers, (w+1)*n/workers
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// RunExact clusters the inputs with the naive all-pairs comparison. It is
// the baseline for the LSH-vs-exact ablation; both must produce identical
// clusters whenever LSH recall is sufficient. Verification uses the same
// interned FeatureSet representation as Run, so the ablation isolates
// candidate generation rather than Jaccard implementation details.
func RunExact(inputs []Input, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	sets := make([]behavior.FeatureSet, len(inputs))
	parallelChunks(len(inputs), workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			sets[i] = inputs[i].Profile.FeatureSet()
		}
	})
	uf := newUnionFind(len(inputs))
	stats := Stats{Samples: len(inputs)}
	for i := 0; i < len(inputs); i++ {
		for j := i + 1; j < len(inputs); j++ {
			stats.CandidatePairs++
			if sets[i].Jaccard(sets[j]) >= cfg.Threshold {
				stats.Links++
				uf.union(i, j)
			}
		}
	}
	return assemble(inputs, uf, stats), nil
}

// assemble converts union-find components into sorted clusters.
func assemble(inputs []Input, uf *unionFind, stats Stats) *Result {
	roots := make([]int, len(inputs))
	for i := range roots {
		roots[i] = uf.find(i)
	}
	return assembleRoots(inputs, roots, stats)
}

// assembleRoots converts a precomputed component-root vector into sorted
// clusters; Incremental.Result uses it with non-mutating root resolution
// so snapshots are safe under a read lock.
func assembleRoots(inputs []Input, roots []int, stats Stats) *Result {
	groups := make(map[int][]string)
	for i, in := range inputs {
		groups[roots[i]] = append(groups[roots[i]], in.ID)
	}
	clusters := make([]Cluster, 0, len(groups))
	for _, members := range groups {
		sort.Strings(members)
		clusters = append(clusters, Cluster{Members: members})
	}
	sort.Slice(clusters, func(a, b int) bool {
		if len(clusters[a].Members) != len(clusters[b].Members) {
			return len(clusters[a].Members) > len(clusters[b].Members)
		}
		return clusters[a].Members[0] < clusters[b].Members[0]
	})
	res := &Result{Clusters: clusters, Stats: stats, byID: make(map[string]int, len(inputs))}
	for i := range res.Clusters {
		res.Clusters[i].ID = i
		for _, m := range res.Clusters[i].Members {
			res.byID[m] = i
		}
	}
	return res
}

// signature computes the MinHash signature from a profile's interned
// feature hashes. Per feature, two base hashes are derived once and the
// i-th hash function is h1 + i·h2 (double hashing after
// Kirsch–Mitzenmacher): one add per slot instead of an independent
// finalizer per slot. Together with reading precomputed feature hashes
// instead of re-hashing strings, this is what makes signature
// construction — the former hot spot — cheap (see BENCH_bcluster.json).
func signature(fs behavior.FeatureSet, cfg Config) []uint64 {
	sig := make([]uint64, cfg.NumHashes)
	for i := range sig {
		sig[i] = math.MaxUint64
	}
	if len(sig) == 96 {
		// Fixed-size view of the default signature length: the array
		// pointer removes bounds checks from the innermost loop.
		s := (*[96]uint64)(sig)
		for _, fh := range fs {
			h := mix(fh ^ cfg.Seed)
			step := mix(fh+0x9e3779b97f4a7c15*(cfg.Seed|1)) | 1
			for i := range s {
				// Branchless min: the update rate decays harmonically
				// across features, so a branch here mispredicts often.
				s[i] = min(s[i], h)
				h += step
			}
		}
		return sig
	}
	for _, fh := range fs {
		h := mix(fh ^ cfg.Seed)
		step := mix(fh+0x9e3779b97f4a7c15*(cfg.Seed|1)) | 1
		for i := range sig {
			if h < sig[i] {
				sig[i] = h
			}
			h += step
		}
	}
	return sig
}

// contentHash folds a feature set into one 64-bit key for signature
// deduplication; featureSetsEqual resolves the (astronomically rare)
// fold collisions.
func contentHash(fs behavior.FeatureSet) uint64 {
	h := uint64(len(fs)) * 0x9e3779b97f4a7c15
	for _, v := range fs {
		h = mix(h ^ v)
	}
	return h
}

func featureSetsEqual(a, b behavior.FeatureSet) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func bandKey(rows []uint64, band uint64) uint64 {
	h := band*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d
	for _, r := range rows {
		h = mix(h ^ r)
	}
	return h
}

func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// unionFind is a weighted quick-union with path halving.
type unionFind struct {
	parent []int
	rank   []int
}

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]int, n), rank: make([]int, n)}
	for i := range uf.parent {
		uf.parent[i] = i
	}
	return uf
}

// grow extends the forest to n elements, each new element its own root.
func (uf *unionFind) grow(n int) {
	for i := len(uf.parent); i < n; i++ {
		uf.parent = append(uf.parent, i)
		uf.rank = append(uf.rank, 0)
	}
}

func (uf *unionFind) find(x int) int {
	for uf.parent[x] != x {
		uf.parent[x] = uf.parent[uf.parent[x]]
		x = uf.parent[x]
	}
	return x
}

func (uf *unionFind) union(a, b int) {
	ra, rb := uf.find(a), uf.find(b)
	if ra == rb {
		return
	}
	if uf.rank[ra] < uf.rank[rb] {
		ra, rb = rb, ra
	}
	uf.parent[rb] = ra
	if uf.rank[ra] == uf.rank[rb] {
		uf.rank[ra]++
	}
}
