// Package bcluster implements scalable behavior-based malware clustering
// after Bayer et al. (NDSS'09), the system behind the Anubis B-clusters
// the paper correlates against.
//
// Samples are represented by behavioral profiles (feature sets). Instead
// of computing all O(n²) pairwise distances, profiles are summarized by
// MinHash signatures; locality-sensitive hashing over signature bands
// proposes candidate pairs, whose exact Jaccard similarity is then
// verified; single-linkage clustering (transitive closure over verified
// links, i.e. union-find) produces the final clusters.
//
// The package also exposes an exact O(n²) baseline used by the ablation
// benchmarks to reproduce the scalability claim.
package bcluster

import (
	"fmt"
	"hash/fnv"
	"math"
	"runtime"
	"sort"
	"sync"

	"repro/internal/behavior"
)

// Config are the clustering parameters.
type Config struct {
	// NumHashes is the MinHash signature length; it must equal Bands*Rows.
	NumHashes int
	// Bands is the number of LSH bands.
	Bands int
	// Threshold is the minimum exact Jaccard similarity for two samples to
	// be linked.
	Threshold float64
	// Seed decorrelates the hash family.
	Seed uint64
	// Workers bounds the goroutines computing MinHash signatures; 0
	// defers to core.Scenario.Parallelism (and ultimately GOMAXPROCS).
	// The partition is independent of the worker count.
	Workers int
}

// DefaultConfig mirrors the regime of the original system: a 0.7
// similarity threshold with a signature of 96 hashes in 32 bands of 3.
func DefaultConfig() Config {
	return Config{NumHashes: 96, Bands: 32, Threshold: 0.7, Seed: 0x5eed}
}

// Validate checks parameter consistency.
func (c Config) Validate() error {
	if c.NumHashes <= 0 || c.Bands <= 0 {
		return fmt.Errorf("bcluster: NumHashes (%d) and Bands (%d) must be positive", c.NumHashes, c.Bands)
	}
	if c.NumHashes%c.Bands != 0 {
		return fmt.Errorf("bcluster: NumHashes (%d) must be a multiple of Bands (%d)", c.NumHashes, c.Bands)
	}
	if c.Threshold <= 0 || c.Threshold > 1 {
		return fmt.Errorf("bcluster: Threshold %v outside (0,1]", c.Threshold)
	}
	return nil
}

// Input is one sample to cluster.
type Input struct {
	// ID identifies the sample (e.g. its MD5).
	ID string
	// Profile is the sample's behavioral profile.
	Profile *behavior.Profile
}

// Cluster is one behavioral cluster.
type Cluster struct {
	// ID is a dense cluster index, assigned largest-cluster-first.
	ID int
	// Members lists the sample IDs, sorted.
	Members []string
}

// Size returns the number of members.
func (c Cluster) Size() int { return len(c.Members) }

// Result is the outcome of a clustering run.
type Result struct {
	Clusters []Cluster
	// Stats describe the work performed, for the scalability comparison.
	Stats Stats
	byID  map[string]int
}

// Stats counts the comparisons a run performed.
type Stats struct {
	// Samples is the input size.
	Samples int
	// CandidatePairs is the number of LSH-proposed pairs (equals all pairs
	// for the exact baseline).
	CandidatePairs int
	// Links is the number of pairs whose exact similarity passed the
	// threshold.
	Links int
}

// ClusterOf returns the cluster index of a sample ID, or -1.
func (r *Result) ClusterOf(id string) int {
	if i, ok := r.byID[id]; ok {
		return i
	}
	return -1
}

// Singletons returns the clusters with exactly one member.
func (r *Result) Singletons() []Cluster {
	var out []Cluster
	for _, c := range r.Clusters {
		if c.Size() == 1 {
			out = append(out, c)
		}
	}
	return out
}

// Run clusters the inputs with MinHash+LSH candidate generation.
func Run(inputs []Input, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ids := make(map[string]bool, len(inputs))
	for _, in := range inputs {
		if in.ID == "" {
			return nil, fmt.Errorf("bcluster: input with empty ID")
		}
		if ids[in.ID] {
			return nil, fmt.Errorf("bcluster: duplicate input ID %q", in.ID)
		}
		if in.Profile == nil {
			return nil, fmt.Errorf("bcluster: input %q has nil profile", in.ID)
		}
		ids[in.ID] = true
	}

	sigs := make([][]uint64, len(inputs))
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(inputs) && len(inputs) > 0 {
		workers = len(inputs)
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				sigs[i] = signature(inputs[i].Profile, cfg)
			}
		}()
	}
	for i := range inputs {
		next <- i
	}
	close(next)
	wg.Wait()

	rows := cfg.NumHashes / cfg.Bands
	uf := newUnionFind(len(inputs))
	seenPair := make(map[[2]int]bool)
	stats := Stats{Samples: len(inputs)}

	for band := 0; band < cfg.Bands; band++ {
		buckets := make(map[uint64][]int)
		for i, sig := range sigs {
			key := bandKey(sig[band*rows:(band+1)*rows], uint64(band))
			buckets[key] = append(buckets[key], i)
		}
		for _, members := range buckets {
			if len(members) < 2 {
				continue
			}
			for a := 0; a < len(members); a++ {
				for b := a + 1; b < len(members); b++ {
					i, j := members[a], members[b]
					if uf.find(i) == uf.find(j) {
						continue
					}
					pair := [2]int{i, j}
					if seenPair[pair] {
						continue
					}
					seenPair[pair] = true
					stats.CandidatePairs++
					if inputs[i].Profile.Jaccard(inputs[j].Profile) >= cfg.Threshold {
						stats.Links++
						uf.union(i, j)
					}
				}
			}
		}
	}
	return assemble(inputs, uf, stats), nil
}

// RunExact clusters the inputs with the naive all-pairs comparison. It is
// the baseline for the LSH-vs-exact ablation; both must produce identical
// clusters whenever LSH recall is sufficient.
func RunExact(inputs []Input, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	uf := newUnionFind(len(inputs))
	stats := Stats{Samples: len(inputs)}
	for i := 0; i < len(inputs); i++ {
		for j := i + 1; j < len(inputs); j++ {
			stats.CandidatePairs++
			if inputs[i].Profile.Jaccard(inputs[j].Profile) >= cfg.Threshold {
				stats.Links++
				uf.union(i, j)
			}
		}
	}
	return assemble(inputs, uf, stats), nil
}

// assemble converts union-find components into sorted clusters.
func assemble(inputs []Input, uf *unionFind, stats Stats) *Result {
	groups := make(map[int][]string)
	for i, in := range inputs {
		root := uf.find(i)
		groups[root] = append(groups[root], in.ID)
	}
	clusters := make([]Cluster, 0, len(groups))
	for _, members := range groups {
		sort.Strings(members)
		clusters = append(clusters, Cluster{Members: members})
	}
	sort.Slice(clusters, func(a, b int) bool {
		if len(clusters[a].Members) != len(clusters[b].Members) {
			return len(clusters[a].Members) > len(clusters[b].Members)
		}
		return clusters[a].Members[0] < clusters[b].Members[0]
	})
	res := &Result{Clusters: clusters, Stats: stats, byID: make(map[string]int, len(inputs))}
	for i := range res.Clusters {
		res.Clusters[i].ID = i
		for _, m := range res.Clusters[i].Members {
			res.byID[m] = i
		}
	}
	return res
}

// signature computes the MinHash signature of a profile.
func signature(p *behavior.Profile, cfg Config) []uint64 {
	sig := make([]uint64, cfg.NumHashes)
	for i := range sig {
		sig[i] = math.MaxUint64
	}
	for _, f := range p.Features() {
		base := hashString(f) ^ cfg.Seed
		for i := range sig {
			h := mix(base + uint64(i)*0x9e3779b97f4a7c15)
			if h < sig[i] {
				sig[i] = h
			}
		}
	}
	return sig
}

func bandKey(rows []uint64, band uint64) uint64 {
	h := band*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d
	for _, r := range rows {
		h = mix(h ^ r)
	}
	return h
}

func hashString(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	return h.Sum64()
}

func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// unionFind is a weighted quick-union with path halving.
type unionFind struct {
	parent []int
	rank   []int
}

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]int, n), rank: make([]int, n)}
	for i := range uf.parent {
		uf.parent[i] = i
	}
	return uf
}

func (uf *unionFind) find(x int) int {
	for uf.parent[x] != x {
		uf.parent[x] = uf.parent[uf.parent[x]]
		x = uf.parent[x]
	}
	return x
}

func (uf *unionFind) union(a, b int) {
	ra, rb := uf.find(a), uf.find(b)
	if ra == rb {
		return
	}
	if uf.rank[ra] < uf.rank[rb] {
		ra, rb = rb, ra
	}
	uf.parent[rb] = ra
	if uf.rank[ra] == uf.rank[rb] {
		uf.rank[ra]++
	}
}
