package bcluster_test

import (
	"fmt"

	"repro/internal/bcluster"
	"repro/internal/behavior"
)

// Example clusters three samples by behavioral profile: two share their
// features and link; the third is behaviorally unrelated.
func Example() {
	profile := func(features ...string) *behavior.Profile {
		p := behavior.NewProfile()
		for _, f := range features {
			p.Add(f)
		}
		return p
	}
	inputs := []bcluster.Input{
		{ID: "worm-a", Profile: profile("file-create|urdvxc.exe", "scan|tcp/445", "infect-html|local")},
		{ID: "worm-b", Profile: profile("file-create|urdvxc.exe", "scan|tcp/445", "infect-html|local")},
		{ID: "bot-x", Profile: profile("registry-set|Run\\bot", "irc|67.43.232.36:6667|#kok6")},
	}
	res, err := bcluster.Run(inputs, bcluster.DefaultConfig())
	if err != nil {
		panic(err)
	}
	for _, c := range res.Clusters {
		fmt.Printf("B%d: %v\n", c.ID, c.Members)
	}
	fmt.Printf("singletons: %d\n", len(res.Singletons()))

	// Output:
	// B0: [worm-a worm-b]
	// B1: [bot-x]
	// singletons: 1
}
