package bcluster

import (
	"encoding/json"
	"reflect"
	"testing"
)

// TestStateRestoreRoundTrip checkpoints an Incremental mid-stream —
// several completed epochs plus a parked tail — and asserts the restored
// instance is indistinguishable: same partition, same probe stats, same
// watermark, and identical behavior on the rest of the stream.
func TestStateRestoreRoundTrip(t *testing.T) {
	cfg := DefaultConfig()
	inputs := incCorpus(300)

	build := func(n int) *Incremental {
		inc, err := NewIncremental(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			if err := inc.Add(inputs[i]); err != nil {
				t.Fatal(err)
			}
			if (i+1)%60 == 0 {
				inc.Verify()
			}
		}
		return inc
	}

	orig := build(200) // 3 full epochs + 20 parked
	st := orig.State()
	// The snapshot must survive serialization: it is embedded in the
	// streaming service's JSON checkpoint.
	blob, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	var decoded IncrementalState
	if err := json.Unmarshal(blob, &decoded); err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreIncremental(cfg, decoded)
	if err != nil {
		t.Fatal(err)
	}

	if restored.Pending() != orig.Pending() || restored.Epochs() != orig.Epochs() ||
		restored.Samples() != orig.Samples() || restored.Components() != orig.Components() {
		t.Fatalf("restored pending/epochs/samples/components = %d/%d/%d/%d, want %d/%d/%d/%d",
			restored.Pending(), restored.Epochs(), restored.Samples(), restored.Components(),
			orig.Pending(), orig.Epochs(), orig.Samples(), orig.Components())
	}
	if restored.Stats() != orig.Stats() {
		t.Fatalf("restored stats %+v != %+v", restored.Stats(), orig.Stats())
	}
	if !reflect.DeepEqual(members(restored.Result()), members(orig.Result())) {
		t.Fatal("restored partition diverges")
	}

	// Continue both instances over the remaining stream: every later
	// probe must behave identically.
	for i := 200; i < len(inputs); i++ {
		if err := orig.Add(inputs[i]); err != nil {
			t.Fatal(err)
		}
		if err := restored.Add(inputs[i]); err != nil {
			t.Fatal(err)
		}
	}
	orig.Verify()
	restored.Verify()
	if restored.Stats() != orig.Stats() {
		t.Fatalf("post-restore stats %+v != %+v", restored.Stats(), orig.Stats())
	}
	if !reflect.DeepEqual(members(restored.Result()), members(orig.Result())) {
		t.Fatal("post-restore partition diverges")
	}
}

func TestRestoreIncrementalValidation(t *testing.T) {
	if _, err := RestoreIncremental(DefaultConfig(), IncrementalState{Integrated: 1}); err == nil {
		t.Fatal("watermark beyond the inputs must error")
	}
}
