package bcluster

import "sort"

// Online poisoning defenses ("Poisoning Behavioral Malware Clustering",
// Biggio, Rieck et al.). Three mitigations hook the incremental
// probe-and-link pass; all are off at the zero value of their knobs, in
// which case the clusterer runs the original byte-identical code path.
//
//   - Merge resistance (Config.MergeResistance = R): a sample whose
//     verified links span two or more established components, each of
//     size >= R, is the signature of a bridge attack — legitimate growth
//     joins one cluster at a time, because a sample genuinely similar to
//     two big clusters implies the clusters are similar to each other
//     and would have merged on their own. The sample is held in
//     quarantine: it joins no component and no LSH bucket. A hold
//     records one attested member from each side. Corroboration lifts
//     it: a later sample attesting the same component pair that is
//     dissimilar to every bridge already held there is an independent
//     witness — resubmitted copies of one bridge are one bridge — and
//     its merge goes through; once the two sides share a root, every
//     hold on the pair is released and re-integrated.
//
//   - Provenance weighting (Config.TrustPenalty): every input carries a
//     Distrust weight in [0,1] (the streaming service derives it from
//     the per-client admission ledger). A candidate link is verified
//     against the raised threshold
//         Threshold + TrustPenalty * max(Distrust_i, Distrust_j),
//     capped at 1, so samples from suspicious clients need stronger
//     behavioral evidence to join a cluster. The max makes the predicate
//     symmetric: whether a pair links does not depend on which side
//     arrived first, which is what makes the defended partition
//     recoverable from a checkpoint.
//
//   - Anomaly-gated admission (Config.GroupQuorum = T): every input may
//     carry a static Group (the streaming service uses the sample's
//     E/P/M placement, i.e. its μ instance). A sample that links only
//     to samples of other groups, while at least T members of its own
//     group are already integrated and none of them is among its link
//     targets, contradicts its static perspective — the paper's
//     cross-perspective disagreement signal — and is parked instead of
//     clustered.
//
// Held and parked samples stay in the partition as singletons: they are
// queryable, never dropped, and excluded only from link formation. On
// an operator flush, DrainHeld converts them into permanent singletons
// so a drained stream reaches a stable state.
//
// In defended mode the failed-pair memo is bypassed: its entries are
// only sound at a fixed threshold, and the effective threshold varies
// per pair. Probe statistics therefore differ from the undefended path
// (they are path-dependent anyway); the membership partition is exact.

// Status is a sample's defense disposition.
type Status uint8

// Sample statuses. StatusClustered is the zero value so that undefended
// snapshots serialize without status fields.
const (
	// StatusClustered marks a normally integrated sample.
	StatusClustered Status = iota
	// StatusHeld marks a sample quarantined by merge resistance.
	StatusHeld
	// StatusParked marks a sample parked by the anomaly gate.
	StatusParked
	// StatusDrained marks a held or parked sample converted to a
	// permanent singleton by an operator flush.
	StatusDrained
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case StatusClustered:
		return "clustered"
	case StatusHeld:
		return "held"
	case StatusParked:
		return "parked"
	case StatusDrained:
		return "drained"
	default:
		return "unknown"
	}
}

// DefenseStats counts defense activity. Current counts (Held, Parked)
// move on release and drain; totals are cumulative. After a checkpoint
// restore the totals are re-derived from the recorded statuses, so
// cumulative counters are approximate across recoveries (the partition
// itself is exact).
type DefenseStats struct {
	// Held and Parked are the samples currently quarantined or parked.
	Held   int `json:"held"`
	Parked int `json:"parked"`
	// HeldTotal and ParkedTotal count every hold and park decision.
	HeldTotal   int `json:"held_total"`
	ParkedTotal int `json:"parked_total"`
	// Released counts holds released after independent corroboration.
	Released int `json:"released"`
	// Drained counts quarantined samples converted to permanent
	// singletons by a flush.
	Drained int `json:"drained"`
}

// DefenseEvent records one hold or park decision, for provenance
// accounting in the streaming service.
type DefenseEvent struct {
	// ID is the affected sample.
	ID string
	// Status is StatusHeld or StatusParked.
	Status Status
}

// defenseState is allocated only when a defense knob is nonzero.
type defenseState struct {
	// status is parallel to inputs (meaningful up to the watermark).
	status []Status
	// compSize holds the component size at each union-find root.
	compSize []int
	// groupCount counts integrated, non-quarantined samples per group.
	groupCount map[string]int
	// holds maps a held input index to its attested pair: one linked
	// member from each of the two components the sample would join.
	holds map[int][2]int
	// events accumulates hold/park decisions until TakeDefenseEvents.
	events []DefenseEvent
	stats  DefenseStats
	// restoring suppresses rule evaluation and event emission while a
	// checkpoint replay applies recorded statuses.
	restoring     bool
	restoreStatus []Status
	restoreHolds  map[int][2]int
}

func (c Config) defenseEnabled() bool {
	return c.MergeResistance > 0 || c.TrustPenalty > 0 || c.GroupQuorum > 0
}

// DefenseStats returns the defense counters; zero when defenses are off.
func (inc *Incremental) DefenseStats() DefenseStats {
	if inc.def == nil {
		return DefenseStats{}
	}
	return inc.def.stats
}

// TakeDefenseEvents drains the hold/park decisions made since the last
// call. The streaming service turns them into per-client suspicion.
func (inc *Incremental) TakeDefenseEvents() []DefenseEvent {
	if inc.def == nil || len(inc.def.events) == 0 {
		return nil
	}
	ev := inc.def.events
	inc.def.events = nil
	return ev
}

// SampleStatus reports a sample's defense disposition. Unknown IDs and
// undefended clusterers report StatusClustered with ok=false and true
// respectively.
func (inc *Incremental) SampleStatus(id string) (Status, bool) {
	idx, ok := inc.byID[id]
	if !ok {
		return StatusClustered, false
	}
	if inc.def == nil || idx >= len(inc.def.status) {
		return StatusClustered, true
	}
	return inc.def.status[idx], true
}

// excluded reports whether integrated sample i is outside link formation.
func (inc *Incremental) excluded(i int) bool {
	return inc.def != nil && i < len(inc.def.status) && inc.def.status[i] != StatusClustered
}

// growDefense sizes the per-sample defense state to the input log.
func (inc *Incremental) growDefense() {
	d := inc.def
	for len(d.status) < len(inc.inputs) {
		d.status = append(d.status, StatusClustered)
	}
	for len(d.compSize) < len(inc.inputs) {
		d.compSize = append(d.compSize, 1)
	}
}

// sizeOf returns the component size at index i's root.
func (inc *Incremental) sizeOf(i int) int {
	return inc.def.compSize[inc.uf.find(i)]
}

// unionSized unions two components, maintaining root sizes.
func (inc *Incremental) unionSized(i, j int) {
	ri, rj := inc.uf.find(i), inc.uf.find(j)
	if ri == rj {
		return
	}
	total := inc.def.compSize[ri] + inc.def.compSize[rj]
	inc.uf.union(i, j)
	inc.merges++
	inc.def.compSize[inc.uf.find(i)] = total
}

// effThreshold is the symmetric trust-penalized link threshold for a
// candidate pair.
func (cfg Config) effThreshold(a, b float64) float64 {
	if cfg.TrustPenalty <= 0 {
		return cfg.Threshold
	}
	d := a
	if b > d {
		d = b
	}
	t := cfg.Threshold + cfg.TrustPenalty*d
	if t > 1 {
		t = 1
	}
	return t
}

// collectLinks probes sample j against every band bucket and returns the
// indices whose exact Jaccard clears the pair's effective threshold, in
// deterministic probe order. Unlike the undefended path it neither
// consults nor writes the failed-pair memo (entries are unsound across
// varying thresholds) and does not insert j into the buckets.
func (inc *Incremental) collectLinks(j int) []int {
	sig := inc.sigs[j]
	in := inc.inputs[j]
	var links []int
	seen := make(map[int]bool)
	for band := 0; band < inc.cfg.Bands; band++ {
		key := bandKey(sig[band*inc.rows:(band+1)*inc.rows], uint64(band))
		b := inc.buckets[band][key]
		if b == nil {
			continue
		}
		for _, i := range b.members {
			if seen[i] {
				continue
			}
			seen[i] = true
			inc.stats.CandidatePairs++
			t := inc.cfg.effThreshold(in.Distrust, inc.inputs[i].Distrust)
			if inc.sets[i].Jaccard(inc.sets[j]) >= t {
				inc.stats.Links++
				links = append(links, i)
			}
		}
	}
	return links
}

// admit inserts sample j into the LSH buckets and links it to its
// verified targets.
func (inc *Incremental) admit(j int, links []int) {
	sig := inc.sigs[j]
	for band := 0; band < inc.cfg.Bands; band++ {
		key := bandKey(sig[band*inc.rows:(band+1)*inc.rows], uint64(band))
		b := inc.buckets[band][key]
		if b == nil {
			b = &bucket{}
			inc.buckets[band][key] = b
		}
		b.members = append(b.members, j)
	}
	for _, i := range links {
		inc.unionSized(i, j)
	}
	if g := inc.inputs[j].Group; g != "" {
		inc.def.groupCount[g]++
	}
}

// integrateDefended is the defended counterpart of integrate: it
// collects sample j's verified links first and applies the hold and
// park rules before any union happens.
func (inc *Incremental) integrateDefended(j int) {
	d := inc.def
	if d.restoring {
		inc.applyRestored(j)
		return
	}
	links := inc.collectLinks(j)

	if r := inc.cfg.MergeResistance; r > 0 {
		var bigA, bigB = -1, -1
		var rootA int
		for _, i := range links {
			if inc.sizeOf(i) < r {
				continue
			}
			root := inc.uf.find(i)
			switch {
			case bigA < 0:
				bigA, rootA = i, root
			case root != rootA:
				bigB = i
			}
			if bigB >= 0 {
				break
			}
		}
		if bigB >= 0 {
			// Corroboration check: a second sample attesting the same
			// component pair counts as an independent witness only if it
			// is behaviorally dissimilar to an existing hold — identical
			// copies of one bridge are one bridge, however many the
			// attacker submits. One independent witness corroborates the
			// merge: j is admitted, and the epoch-end release scan frees
			// the prior holds once the two sides share a root.
			if inc.independentWitness(j, bigA, bigB) {
				inc.admit(j, links)
				return
			}
			d.status[j] = StatusHeld
			d.holds[j] = [2]int{bigA, bigB}
			d.stats.Held++
			d.stats.HeldTotal++
			d.events = append(d.events, DefenseEvent{ID: inc.inputs[j].ID, Status: StatusHeld})
			return
		}
	}

	if q := inc.cfg.GroupQuorum; q > 0 {
		g := inc.inputs[j].Group
		if g != "" && len(links) > 0 && d.groupCount[g] >= q {
			same := false
			for _, i := range links {
				if inc.inputs[i].Group == g {
					same = true
					break
				}
			}
			if !same {
				d.status[j] = StatusParked
				d.stats.Parked++
				d.stats.ParkedTotal++
				d.events = append(d.events, DefenseEvent{ID: inc.inputs[j].ID, Status: StatusParked})
				return
			}
		}
	}

	inc.admit(j, links)
}

// independentWitness reports whether an existing hold attests the same
// component pair as sample j (linking bigA's and bigB's components) with
// a behaviorally dissimilar sample. Dissimilarity is judged by the plain
// Jaccard threshold, not the trust-penalized one: a distrusted client
// must not find it easier to count as independent. Resubmitting copies
// of one bridge therefore never corroborates it, while genuinely
// distinct evidence that two clusters belong together does.
func (inc *Incremental) independentWitness(j, bigA, bigB int) bool {
	ra, rb := inc.uf.find(bigA), inc.uf.find(bigB)
	if ra > rb {
		ra, rb = rb, ra
	}
	for h, pair := range inc.def.holds {
		pa, pb := inc.uf.find(pair[0]), inc.uf.find(pair[1])
		if pa > pb {
			pa, pb = pb, pa
		}
		if pa != ra || pb != rb {
			continue
		}
		if inc.sets[h].Jaccard(inc.sets[j]) < inc.cfg.Threshold {
			return true
		}
	}
	return false
}

// applyRestored replays sample j under a recorded status instead of the
// live rules. Clustered samples re-link through the symmetric predicate
// (link existence is order-independent, so the closure matches the
// snapshotted partition); held, parked, and drained samples are excluded
// exactly as recorded.
func (inc *Incremental) applyRestored(j int) {
	d := inc.def
	st := StatusClustered
	if j < len(d.restoreStatus) {
		st = d.restoreStatus[j]
	}
	switch st {
	case StatusClustered:
		inc.admit(j, inc.collectLinks(j))
	case StatusHeld:
		d.status[j] = StatusHeld
		if p, ok := d.restoreHolds[j]; ok {
			d.holds[j] = p
		}
		d.stats.Held++
		d.stats.HeldTotal++
	case StatusParked:
		d.status[j] = StatusParked
		d.stats.Parked++
		d.stats.ParkedTotal++
	case StatusDrained:
		d.status[j] = StatusDrained
		d.stats.Drained++
	}
}

// releaseCorroborated re-integrates held samples whose two attested
// sides merged without them: the merge the hold prevented has been
// independently corroborated, so the sample was not the only bridge.
// Releases can cascade (a released sample's unions may corroborate
// another hold), so the scan runs to a fixpoint, in ascending index
// order for determinism.
func (inc *Incremental) releaseCorroborated() {
	d := inc.def
	for {
		var due []int
		for j, pair := range d.holds {
			if inc.uf.find(pair[0]) == inc.uf.find(pair[1]) {
				due = append(due, j)
			}
		}
		if len(due) == 0 {
			return
		}
		sort.Ints(due)
		for _, j := range due {
			delete(d.holds, j)
			d.status[j] = StatusClustered
			d.stats.Held--
			d.stats.Released++
			inc.integrateDefended(j)
		}
	}
}

// DrainHeld converts every held and parked sample into a permanent
// singleton, returning how many were drained. The streaming service
// calls it on an operator flush: a drained stream must reach a stable
// state, so quarantine does not outlive the drain — the samples stay
// queryable (and keep their singleton clusters) but never re-enter link
// formation.
func (inc *Incremental) DrainHeld() int {
	if inc.def == nil {
		return 0
	}
	d := inc.def
	n := 0
	for j, st := range d.status {
		if st == StatusHeld || st == StatusParked {
			d.status[j] = StatusDrained
			n++
		}
	}
	d.stats.Drained += n
	d.stats.Held = 0
	d.stats.Parked = 0
	d.holds = make(map[int][2]int)
	return n
}
