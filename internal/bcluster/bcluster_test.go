package bcluster

import (
	"fmt"
	"testing"

	"repro/internal/behavior"
	"repro/internal/simrng"
)

func mkProfile(fs ...string) *behavior.Profile {
	p := behavior.NewProfile()
	for _, f := range fs {
		p.Add(f)
	}
	return p
}

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name    string
		cfg     Config
		wantErr bool
	}{
		{"default", DefaultConfig(), false},
		{"zero hashes", Config{Bands: 2, Threshold: 0.5}, true},
		{"zero bands", Config{NumHashes: 8, Threshold: 0.5}, true},
		{"not multiple", Config{NumHashes: 10, Bands: 4, Threshold: 0.5}, true},
		{"zero threshold", Config{NumHashes: 8, Bands: 4}, true},
		{"threshold above one", Config{NumHashes: 8, Bands: 4, Threshold: 1.5}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.cfg.Validate(); (err != nil) != tt.wantErr {
				t.Errorf("Validate = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestRunInputValidation(t *testing.T) {
	cfg := DefaultConfig()
	if _, err := Run([]Input{{ID: "", Profile: mkProfile("x")}}, cfg); err == nil {
		t.Error("empty ID must error")
	}
	if _, err := Run([]Input{{ID: "a", Profile: nil}}, cfg); err == nil {
		t.Error("nil profile must error")
	}
	if _, err := Run([]Input{
		{ID: "a", Profile: mkProfile("x")},
		{ID: "a", Profile: mkProfile("y")},
	}, cfg); err == nil {
		t.Error("duplicate ID must error")
	}
	if _, err := Run(nil, Config{}); err == nil {
		t.Error("invalid config must error")
	}
}

func TestRunGroupsIdenticalProfiles(t *testing.T) {
	shared := []string{"f1", "f2", "f3", "f4", "f5"}
	var inputs []Input
	for i := 0; i < 10; i++ {
		inputs = append(inputs, Input{ID: fmt.Sprintf("s%02d", i), Profile: mkProfile(shared...)})
	}
	inputs = append(inputs, Input{ID: "outlier", Profile: mkProfile("z1", "z2", "z3")})

	res, err := Run(inputs, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) != 2 {
		t.Fatalf("clusters = %d, want 2: %+v", len(res.Clusters), res.Clusters)
	}
	if res.Clusters[0].Size() != 10 {
		t.Errorf("big cluster size = %d", res.Clusters[0].Size())
	}
	if res.ClusterOf("outlier") == res.ClusterOf("s00") {
		t.Error("outlier joined the big cluster")
	}
	if got := len(res.Singletons()); got != 1 {
		t.Errorf("singletons = %d, want 1", got)
	}
}

func TestRunRespectsThreshold(t *testing.T) {
	// a-b similarity = 3/5 = 0.6; threshold 0.7 must separate, 0.5 must join.
	a := mkProfile("1", "2", "3", "4")
	b := mkProfile("1", "2", "3", "5")
	inputs := []Input{{ID: "a", Profile: a}, {ID: "b", Profile: b}}

	cfg := DefaultConfig()
	cfg.Threshold = 0.7
	res, err := Run(inputs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) != 2 {
		t.Errorf("threshold 0.7: clusters = %d, want 2", len(res.Clusters))
	}

	cfg.Threshold = 0.5
	res, err = Run(inputs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) != 1 {
		t.Errorf("threshold 0.5: clusters = %d, want 1", len(res.Clusters))
	}
}

func TestSingleLinkageChains(t *testing.T) {
	// a~b and b~c but a!~c: single linkage must still merge all three.
	a := mkProfile("1", "2", "3", "4", "5", "6", "7", "8")
	b := mkProfile("1", "2", "3", "4", "5", "6", "9", "10")   // sim(a,b)=6/10=0.6
	c := mkProfile("3", "4", "5", "6", "9", "10", "11", "12") // sim(b,c)=6/10=0.6, sim(a,c)=4/12=0.33
	inputs := []Input{{ID: "a", Profile: a}, {ID: "b", Profile: b}, {ID: "c", Profile: c}}
	cfg := DefaultConfig()
	cfg.Threshold = 0.55
	res, err := Run(inputs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) != 1 {
		t.Fatalf("single linkage must chain: got %d clusters", len(res.Clusters))
	}
}

func TestLSHMatchesExact(t *testing.T) {
	// Random family-structured data: LSH and exact clustering must agree.
	r := simrng.New(42).Stream("families")
	var inputs []Input
	id := 0
	for fam := 0; fam < 8; fam++ {
		core := make([]string, 20)
		for i := range core {
			core[i] = fmt.Sprintf("fam%d-core%d", fam, i)
		}
		for member := 0; member < 12; member++ {
			p := behavior.NewProfile()
			for _, f := range core {
				p.Add(f)
			}
			// 0-2 member-specific features: keeps similarity >= 20/24 = 0.83.
			for k := 0; k < r.Intn(3); k++ {
				p.Add(fmt.Sprintf("m%d-extra%d", id, k))
			}
			inputs = append(inputs, Input{ID: fmt.Sprintf("s%03d", id), Profile: p})
			id++
		}
	}
	cfg := DefaultConfig()
	lsh, err := Run(inputs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := RunExact(inputs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(lsh.Clusters) != len(exact.Clusters) {
		t.Fatalf("LSH clusters = %d, exact = %d", len(lsh.Clusters), len(exact.Clusters))
	}
	for _, in := range inputs {
		// Cluster IDs are assigned identically (size-sorted), so the
		// partition must match member-by-member.
		if lsh.ClusterOf(in.ID) != exact.ClusterOf(in.ID) {
			t.Fatalf("sample %s: lsh cluster %d != exact %d", in.ID, lsh.ClusterOf(in.ID), exact.ClusterOf(in.ID))
		}
	}
	if lsh.Stats.CandidatePairs >= exact.Stats.CandidatePairs {
		t.Errorf("LSH did not prune: %d candidates vs %d all-pairs",
			lsh.Stats.CandidatePairs, exact.Stats.CandidatePairs)
	}
}

func TestEmptyProfilesClusterTogether(t *testing.T) {
	inputs := []Input{
		{ID: "e1", Profile: mkProfile()},
		{ID: "e2", Profile: mkProfile()},
	}
	res, err := Run(inputs, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) != 1 {
		t.Errorf("two empty profiles must share a cluster (Jaccard=1), got %d", len(res.Clusters))
	}
}

func TestClusterOfUnknown(t *testing.T) {
	res, err := Run([]Input{{ID: "a", Profile: mkProfile("x")}}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := res.ClusterOf("nope"); got != -1 {
		t.Errorf("ClusterOf(unknown) = %d, want -1", got)
	}
}

func TestDeterminism(t *testing.T) {
	r := simrng.New(7).Stream("det")
	var inputs []Input
	for i := 0; i < 50; i++ {
		p := behavior.NewProfile()
		for k := 0; k < 5+r.Intn(5); k++ {
			p.Add(fmt.Sprintf("f%d", r.Intn(30)))
		}
		inputs = append(inputs, Input{ID: fmt.Sprintf("s%02d", i), Profile: p})
	}
	a, err := Run(inputs, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(inputs, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Clusters) != len(b.Clusters) {
		t.Fatalf("non-deterministic cluster count")
	}
	for _, in := range inputs {
		if a.ClusterOf(in.ID) != b.ClusterOf(in.ID) {
			t.Fatalf("non-deterministic assignment for %s", in.ID)
		}
	}
}

// fragileInputs models a fragility-heavy landscape without pulling the
// sandbox in: each family has a stable core, but many members execute a
// degraded run — a random prefix of the core plus run-specific noise
// features — exactly the §4.2 profile variability that produces
// borderline similarities and singleton B-clusters.
func fragileInputs(n int) []Input {
	r := simrng.New(13).Stream("fragile")
	inputs := make([]Input, 0, n)
	for i := 0; i < n; i++ {
		fam := i % 15
		p := behavior.NewProfile()
		core := 16
		if r.Float64() < 0.4 { // degraded run: truncated core + noise
			core = 4 + r.Intn(12)
			for k := 0; k < 1+r.Intn(4); k++ {
				p.Add(fmt.Sprintf("s%d-crash%d", i, k))
			}
		}
		for k := 0; k < core; k++ {
			p.Add(fmt.Sprintf("fam%d-f%d", fam, k))
		}
		inputs = append(inputs, Input{ID: fmt.Sprintf("s%04d", i), Profile: p})
	}
	return inputs
}

// TestRunWorkerCountInvariance pins the parallel-verification contract:
// Run produces byte-identical Clusters AND Stats whether the candidate
// pipeline is pinned to one worker or fanned out over eight, on a
// fragility-heavy landscape where verification order could plausibly
// change union-find evolution.
func TestRunWorkerCountInvariance(t *testing.T) {
	inputs := fragileInputs(400)
	for _, threshold := range []float64{0.5, 0.7} {
		cfg := DefaultConfig()
		cfg.Threshold = threshold
		cfg.Workers = 1
		seq, err := Run(inputs, cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Workers = 8
		par, err := Run(inputs, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if seq.Stats != par.Stats {
			t.Fatalf("threshold %v: stats differ: workers=1 %+v, workers=8 %+v",
				threshold, seq.Stats, par.Stats)
		}
		if len(seq.Clusters) != len(par.Clusters) {
			t.Fatalf("threshold %v: cluster counts differ: %d vs %d",
				threshold, len(seq.Clusters), len(par.Clusters))
		}
		for i := range seq.Clusters {
			a, b := seq.Clusters[i], par.Clusters[i]
			if a.ID != b.ID || len(a.Members) != len(b.Members) {
				t.Fatalf("threshold %v: cluster %d shape differs", threshold, i)
			}
			for j := range a.Members {
				if a.Members[j] != b.Members[j] {
					t.Fatalf("threshold %v: cluster %d member %d: %q vs %q",
						threshold, i, j, a.Members[j], b.Members[j])
				}
			}
		}
	}
}

// TestLSHMatchesExactStraddlingThreshold is the differential test the
// hot-path rewrite must pass: family similarities engineered to land on
// both sides of the 0.7 default threshold, where a missed candidate or a
// verification-order change would flip the partition.
func TestLSHMatchesExactStraddlingThreshold(t *testing.T) {
	r := simrng.New(21).Stream("straddle")
	var inputs []Input
	id := 0
	// 14 core features; members add 0..6 private features, so pairwise
	// similarity within a family is 14/(14+a+b), ranging 0.54..1.0 and
	// crossing 0.7 (a+b = 6) in both directions.
	for fam := 0; fam < 12; fam++ {
		for member := 0; member < 10; member++ {
			p := behavior.NewProfile()
			for k := 0; k < 14; k++ {
				p.Add(fmt.Sprintf("fam%d-core%d", fam, k))
			}
			for k := 0; k < r.Intn(7); k++ {
				p.Add(fmt.Sprintf("m%d-priv%d", id, k))
			}
			inputs = append(inputs, Input{ID: fmt.Sprintf("s%03d", id), Profile: p})
			id++
		}
	}
	cfg := DefaultConfig()
	lsh, err := Run(inputs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := RunExact(inputs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(lsh.Clusters) != len(exact.Clusters) {
		t.Fatalf("LSH clusters = %d, exact = %d", len(lsh.Clusters), len(exact.Clusters))
	}
	// The exact baseline counts every threshold-passing pair; LSH prunes
	// candidates already linked into one component, so its link count is a
	// (positive) lower bound.
	if lsh.Stats.Links == 0 || lsh.Stats.Links > exact.Stats.Links {
		t.Errorf("LSH links = %d, exact = %d (want 0 < lsh <= exact)",
			lsh.Stats.Links, exact.Stats.Links)
	}
	for _, in := range inputs {
		if lsh.ClusterOf(in.ID) != exact.ClusterOf(in.ID) {
			t.Fatalf("sample %s: lsh cluster %d != exact %d",
				in.ID, lsh.ClusterOf(in.ID), exact.ClusterOf(in.ID))
		}
	}
}

func TestSignatureSimilarityConcentration(t *testing.T) {
	// MinHash property: signature agreement approximates Jaccard.
	cfg := DefaultConfig()
	a := behavior.NewProfile()
	b := behavior.NewProfile()
	for i := 0; i < 60; i++ {
		a.Add(fmt.Sprintf("shared%d", i))
		b.Add(fmt.Sprintf("shared%d", i))
	}
	for i := 0; i < 20; i++ {
		a.Add(fmt.Sprintf("onlya%d", i))
		b.Add(fmt.Sprintf("onlyb%d", i))
	}
	// True Jaccard = 60/100 = 0.6.
	sa, sb := signature(a.FeatureSet(), cfg), signature(b.FeatureSet(), cfg)
	agree := 0
	for i := range sa {
		if sa[i] == sb[i] {
			agree++
		}
	}
	got := float64(agree) / float64(len(sa))
	if got < 0.45 || got > 0.75 {
		t.Errorf("signature agreement %.2f too far from true Jaccard 0.6", got)
	}
}

func benchInputs(n int) []Input {
	r := simrng.New(1).Stream("bench")
	inputs := make([]Input, 0, n)
	for i := 0; i < n; i++ {
		fam := i % 20
		p := behavior.NewProfile()
		for k := 0; k < 15; k++ {
			p.Add(fmt.Sprintf("fam%d-f%d", fam, k))
		}
		for k := 0; k < r.Intn(3); k++ {
			p.Add(fmt.Sprintf("s%d-noise%d", i, k))
		}
		inputs = append(inputs, Input{ID: fmt.Sprintf("s%05d", i), Profile: p})
	}
	return inputs
}

func BenchmarkRunLSH1000(b *testing.B) {
	inputs := benchInputs(1000)
	cfg := DefaultConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(inputs, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunExact1000(b *testing.B) {
	inputs := benchInputs(1000)
	cfg := DefaultConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunExact(inputs, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
