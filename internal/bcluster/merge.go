package bcluster

import (
	"fmt"
	"math"

	"repro/internal/behavior"
)

// Merge combines several Incremental clusterers — one per shard, over
// disjoint sample sets — into a single Result whose membership partition
// is identical to Run over the union of their inputs.
//
// Every intra-shard link is already resolved: each shard ran the full
// LSH probe over its own samples. What a shard cannot see is a candidate
// pair straddling a shard boundary, and LSH makes those cheap to find
// after the fact — a pair is a candidate exactly when its signatures
// collide in at least one band, a property of the cached signatures
// alone. Merge therefore:
//
//  1. Seeds a global union-find with each shard's components.
//  2. Rebuilds the per-band buckets over every integrated sample from
//     the cached MinHash signatures (no profile re-hashing), and
//     verifies, by exact Jaccard over the interned feature sets, only
//     the cross-shard pairs not already in one component.
//  3. Assembles the closure with Run's canonical cluster order.
//
// Parked samples (added but not yet verified by their shard) stay
// outside the probe and surface as singletons, mirroring each shard's
// own Result. Merged CandidatePairs and Links extend the per-shard sums
// by the cross-shard probe work; like the per-shard counters they are
// path-dependent (component pruning fires at different points than a
// batch Run), while Samples and the partition itself are exact.
//
// The Result is self-contained. Callers must not run Add/Amend/Verify
// on any part concurrently with Merge.
func Merge(parts []*Incremental) (*Result, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("bcluster: merge of zero parts")
	}
	cfg := parts[0].cfg
	total := 0
	for _, p := range parts {
		if p.cfg.NumHashes != cfg.NumHashes || p.cfg.Bands != cfg.Bands ||
			p.cfg.Threshold != cfg.Threshold || p.cfg.Seed != cfg.Seed ||
			p.cfg.MergeResistance != cfg.MergeResistance ||
			p.cfg.TrustPenalty != cfg.TrustPenalty ||
			p.cfg.GroupQuorum != cfg.GroupQuorum {
			return nil, fmt.Errorf("bcluster: merge with mismatched configs %+v vs %+v", p.cfg, cfg)
		}
		total += len(p.inputs)
	}
	if total > math.MaxUint32 {
		return nil, fmt.Errorf("bcluster: %d merged inputs overflow the packed pair keys", total)
	}

	inputs := make([]Input, 0, total)
	sets := make([]behavior.FeatureSet, 0, total)
	shard := make([]int, 0, total)
	offsets := make([]int, len(parts))
	seen := make(map[string]struct{}, total)
	uf := newUnionFind(total)
	stats := Stats{Samples: total}
	for pi, p := range parts {
		off := len(inputs)
		offsets[pi] = off
		for i, in := range p.inputs {
			if _, dup := seen[in.ID]; dup {
				return nil, fmt.Errorf("bcluster: merge saw sample ID %q on more than one part", in.ID)
			}
			seen[in.ID] = struct{}{}
			inputs = append(inputs, in)
			sets = append(sets, p.sets[i])
			shard = append(shard, pi)
			if r := p.root(i); r != i {
				uf.union(off+i, off+r)
			}
		}
		stats.CandidatePairs += p.stats.CandidatePairs
		stats.Links += p.stats.Links
	}

	// Cross-shard probe. Buckets are rebuilt per band over the cached
	// signatures; the grouper orders buckets by first appearance and
	// members in (shard, arrival) order, so the probe sequence — and the
	// union-find layout it produces — is a pure function of the parts.
	rows := cfg.NumHashes / cfg.Bands
	buckets := newGrouper(total)
	failed := make(map[uint64]struct{})
	for band := 0; band < cfg.Bands; band++ {
		buckets.reset()
		for pi, p := range parts {
			off := offsets[pi]
			for i := 0; i < p.integrated; i++ {
				// Quarantined samples are outside link formation on
				// their own shard; keep them out of cross-shard links
				// too.
				if p.excluded(i) {
					continue
				}
				buckets.add(bandKey(p.sigs[i][band*rows:(band+1)*rows], uint64(band)), off+i)
			}
		}
		for _, members := range buckets.groups[:buckets.used] {
			if len(members) < 2 {
				continue
			}
			// A single-shard bucket proposes nothing: its pairs were
			// either linked or memoized as failed by the owning shard.
			s0 := shard[members[0]]
			multi := false
			for _, m := range members[1:] {
				if shard[m] != s0 {
					multi = true
					break
				}
			}
			if !multi {
				continue
			}
			for a := 0; a < len(members); a++ {
				for b := a + 1; b < len(members); b++ {
					i, j := members[a], members[b]
					if shard[i] == shard[j] || uf.find(i) == uf.find(j) {
						continue
					}
					pair := uint64(i)<<32 | uint64(j)
					if _, miss := failed[pair]; miss {
						continue
					}
					stats.CandidatePairs++
					// The effective threshold reduces to cfg.Threshold
					// when the trust penalty is off.
					if sets[i].Jaccard(sets[j]) >= cfg.effThreshold(inputs[i].Distrust, inputs[j].Distrust) {
						stats.Links++
						uf.union(i, j)
					} else {
						failed[pair] = struct{}{}
					}
				}
			}
		}
	}
	return assemble(inputs, uf, stats), nil
}
