package bcluster

import (
	"fmt"

	"repro/internal/behavior"
)

// IncrementalInput is one sample's persisted clustering input: the ID
// and the (sorted) behavioral features its profile reduces to. Those
// two fields determine the signature, the feature set, and therefore
// the whole probe-and-link sequence. The defense fields (group,
// distrust, status, hold pair) are populated only by defended
// clusterers, so undefended snapshots serialize byte-identically to
// snapshots taken before the defenses existed.
type IncrementalInput struct {
	ID       string   `json:"id"`
	Features []string `json:"features"`
	Group    string   `json:"group,omitempty"`
	Distrust float64  `json:"distrust,omitempty"`
	Status   Status   `json:"status,omitempty"`
	// HoldPair is the attested component pair of a held sample, as two
	// input indices; nil otherwise.
	HoldPair []int `json:"hold_pair,omitempty"`
}

// IncrementalState is a serializable snapshot of an Incremental: the
// inputs in arrival order, the integration watermark, and the epoch
// counter. Everything else (LSH buckets, union-find, failed-pair memo,
// probe stats) is a deterministic function of these and is rebuilt by
// RestoreIncremental.
type IncrementalState struct {
	Inputs     []IncrementalInput `json:"inputs"`
	Integrated int                `json:"integrated"`
	Epochs     int                `json:"epochs"`
}

// State snapshots the clusterer for checkpointing.
func (inc *Incremental) State() IncrementalState {
	st := IncrementalState{
		Inputs:     make([]IncrementalInput, len(inc.inputs)),
		Integrated: inc.integrated,
		Epochs:     inc.epochs,
	}
	for i, in := range inc.inputs {
		st.Inputs[i] = IncrementalInput{
			ID:       in.ID,
			Features: in.Profile.Features(),
			Group:    in.Group,
			Distrust: in.Distrust,
		}
		if inc.def != nil && i < len(inc.def.status) {
			st.Inputs[i].Status = inc.def.status[i]
			if p, held := inc.def.holds[i]; held {
				st.Inputs[i].HoldPair = []int{p[0], p[1]}
			}
		}
	}
	return st
}

// RestoreIncremental rebuilds a clusterer from a State snapshot. The
// membership partition is identical to the snapshotted instance.
//
// Undefended, the rebuild is byte-identical in full — partition,
// buckets, failed-pair memo, and probe stats — because integration
// happens in strict arrival order regardless of how the original run
// partitioned it into epochs: replaying the integrated prefix as one
// verification epoch performs exactly the same probe sequence.
//
// Defended, the recorded statuses are applied instead of re-evaluating
// the hold/park rules (rule outcomes depend on epoch-relative timing the
// snapshot does not keep): clustered samples re-link through the
// symmetric trust-penalized predicate, whose closure is order-
// independent, and quarantined samples are excluded exactly as
// recorded. Probe statistics and cumulative defense counters are
// path-dependent and therefore approximate after a defended restore.
func RestoreIncremental(cfg Config, st IncrementalState) (*Incremental, error) {
	inc, err := NewIncremental(cfg)
	if err != nil {
		return nil, err
	}
	if st.Integrated < 0 || st.Integrated > len(st.Inputs) {
		return nil, fmt.Errorf("bcluster: restore watermark %d out of range [0,%d]", st.Integrated, len(st.Inputs))
	}
	add := func(in IncrementalInput) error {
		p := behavior.NewProfile()
		for _, f := range in.Features {
			p.Add(f)
		}
		return inc.Add(Input{ID: in.ID, Profile: p, Group: in.Group, Distrust: in.Distrust})
	}
	if inc.def != nil {
		inc.def.restoring = true
		inc.def.restoreStatus = make([]Status, st.Integrated)
		inc.def.restoreHolds = make(map[int][2]int)
		for i, in := range st.Inputs[:st.Integrated] {
			inc.def.restoreStatus[i] = in.Status
			if in.Status == StatusHeld && len(in.HoldPair) == 2 {
				inc.def.restoreHolds[i] = [2]int{in.HoldPair[0], in.HoldPair[1]}
			}
		}
	}
	for _, in := range st.Inputs[:st.Integrated] {
		if err := add(in); err != nil {
			return nil, fmt.Errorf("bcluster: restore: %w", err)
		}
	}
	inc.Verify()
	if inc.def != nil {
		inc.def.restoring = false
		inc.def.restoreStatus = nil
		inc.def.restoreHolds = nil
	}
	for _, in := range st.Inputs[st.Integrated:] {
		if err := add(in); err != nil {
			return nil, fmt.Errorf("bcluster: restore: %w", err)
		}
	}
	inc.epochs = st.Epochs
	return inc, nil
}
