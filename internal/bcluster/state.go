package bcluster

import (
	"fmt"

	"repro/internal/behavior"
)

// IncrementalInput is one sample's persisted clustering input: the ID
// and the (sorted) behavioral features its profile reduces to. Those
// two fields determine the signature, the feature set, and therefore
// the whole probe-and-link sequence.
type IncrementalInput struct {
	ID       string   `json:"id"`
	Features []string `json:"features"`
}

// IncrementalState is a serializable snapshot of an Incremental: the
// inputs in arrival order, the integration watermark, and the epoch
// counter. Everything else (LSH buckets, union-find, failed-pair memo,
// probe stats) is a deterministic function of these and is rebuilt by
// RestoreIncremental.
type IncrementalState struct {
	Inputs     []IncrementalInput `json:"inputs"`
	Integrated int                `json:"integrated"`
	Epochs     int                `json:"epochs"`
}

// State snapshots the clusterer for checkpointing.
func (inc *Incremental) State() IncrementalState {
	st := IncrementalState{
		Inputs:     make([]IncrementalInput, len(inc.inputs)),
		Integrated: inc.integrated,
		Epochs:     inc.epochs,
	}
	for i, in := range inc.inputs {
		st.Inputs[i] = IncrementalInput{ID: in.ID, Features: in.Profile.Features()}
	}
	return st
}

// RestoreIncremental rebuilds a clusterer from a State snapshot. The
// result is byte-identical to the snapshotted instance — partition,
// buckets, failed-pair memo, and probe stats included — because
// integration happens in strict arrival order regardless of how the
// original run partitioned it into epochs: replaying the integrated
// prefix as one verification epoch performs exactly the same probe
// sequence.
func RestoreIncremental(cfg Config, st IncrementalState) (*Incremental, error) {
	inc, err := NewIncremental(cfg)
	if err != nil {
		return nil, err
	}
	if st.Integrated < 0 || st.Integrated > len(st.Inputs) {
		return nil, fmt.Errorf("bcluster: restore watermark %d out of range [0,%d]", st.Integrated, len(st.Inputs))
	}
	add := func(in IncrementalInput) error {
		p := behavior.NewProfile()
		for _, f := range in.Features {
			p.Add(f)
		}
		return inc.Add(Input{ID: in.ID, Profile: p})
	}
	for _, in := range st.Inputs[:st.Integrated] {
		if err := add(in); err != nil {
			return nil, fmt.Errorf("bcluster: restore: %w", err)
		}
	}
	inc.Verify()
	for _, in := range st.Inputs[st.Integrated:] {
		if err := add(in); err != nil {
			return nil, fmt.Errorf("bcluster: restore: %w", err)
		}
	}
	inc.epochs = st.Epochs
	return inc, nil
}
