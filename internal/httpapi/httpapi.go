// Package httpapi implements the landscape service's HTTP surface,
// shared by the landscaped daemon and the overload harness. It owns the
// request-hardening and overload-signaling policy: strict Content-Type
// and trailing-garbage checks on POST bodies (structured 400s), body
// size caps (413), and the mapping of typed admission rejections to
// 429/503 responses carrying a Retry-After header, so a loaded service
// answers fast instead of holding connections open.
package httpapi

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"mime"
	"net"
	"net/http"
	"time"

	"repro/internal/admission"
	"repro/internal/dataset"
	"repro/internal/stream"
)

// DefaultMaxBody caps POST bodies (64 MiB); larger requests get 413.
const DefaultMaxBody = 64 << 20

// ClientIDHeader names the request header carrying the submitter
// identity for per-client rate limiting. Absent, the remote IP is the
// client key, so unidentified submitters share per-IP buckets.
const ClientIDHeader = "X-Client-ID"

// Backend is the landscape the API serves: a single stream.Service or a
// shard.Coordinator fanning out over several. Both return the same view
// types, so the wire format does not depend on the deployment shape
// (StatsPayload is the exception — the sharded stats add per-shard
// telemetry around the same aggregate shape).
type Backend interface {
	IngestFrom(ctx context.Context, client string, events []dataset.Event) error
	Flush(ctx context.Context) error
	Checkpoint(ctx context.Context) error
	EPMClusters(dim string) (stream.EPMView, error)
	BClusters() stream.BView
	Sample(id string) (stream.SampleView, bool)
	StatsPayload() any
}

// Options tunes the API beyond the backend itself.
type Options struct {
	// MaxBody caps POST bodies; <= 0 selects DefaultMaxBody.
	MaxBody int64
	// Repl, when set, is mounted under GET /v1/repl/ — the primary's
	// log-shipping surface (an internal/replica.Publisher handler,
	// opaque here so this package never depends on the replication
	// machinery).
	Repl http.Handler
	// Readiness, when set, adds a condition to /readyz beyond "the
	// backend exists": a replica reports its replication lag here, so
	// load balancers stop routing to a follower that fell too far
	// behind. The returned error becomes the advertised reason.
	Readiness func() error
}

// New builds the HTTP API around a landscape backend. get returns nil
// until the backend has finished recovering; until then every service
// endpoint answers 503 while /healthz (liveness) stays 200.
func New(get func() Backend, opts Options) http.Handler {
	maxBody := opts.MaxBody
	if maxBody <= 0 {
		maxBody = DefaultMaxBody
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if get() == nil {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			json.NewEncoder(w).Encode(map[string]string{"status": "recovering"})
			return
		}
		if opts.Readiness != nil {
			if err := opts.Readiness(); err != nil {
				w.Header().Set("Content-Type", "application/json")
				w.WriteHeader(http.StatusServiceUnavailable)
				json.NewEncoder(w).Encode(map[string]string{"status": "lagging", "reason": err.Error()})
				return
			}
		}
		// A storage-degraded backend still serves reads, so it stays
		// ready (200) — load balancers must not drop read traffic — but
		// the degradation is advertised for operators and write routers.
		if sr, ok := get().(interface{ StorageFailure() error }); ok {
			if err := sr.StorageFailure(); err != nil {
				writeJSON(w, map[string]string{
					"status": "degraded",
					"reason": stream.StorageFailedReason,
					"error":  err.Error(),
				})
				return
			}
		}
		writeJSON(w, map[string]string{"status": "ready"})
	})
	if opts.Repl != nil {
		mux.Handle("GET /v1/repl/", opts.Repl)
	}
	// ready wraps a handler with the recovery gate.
	ready := func(h func(svc Backend, w http.ResponseWriter, r *http.Request)) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			svc := get()
			if svc == nil {
				writeError(w, http.StatusServiceUnavailable, errors.New("service is recovering"))
				return
			}
			h(svc, w, r)
		}
	}
	mux.HandleFunc("GET /v1/stats", ready(func(svc Backend, w http.ResponseWriter, r *http.Request) {
		writeJSON(w, svc.StatsPayload())
	}))
	mux.HandleFunc("POST /v1/ingest", ready(func(svc Backend, w http.ResponseWriter, r *http.Request) {
		events, ok := decodeEvents(w, r, maxBody)
		if !ok {
			return
		}
		if err := svc.IngestFrom(r.Context(), ClientKey(r), events); err != nil {
			writeServiceError(w, err)
			return
		}
		writeJSON(w, map[string]int{"queued": len(events)})
	}))
	mux.HandleFunc("POST /v1/flush", ready(func(svc Backend, w http.ResponseWriter, r *http.Request) {
		if err := svc.Flush(r.Context()); err != nil {
			writeServiceError(w, err)
			return
		}
		writeJSON(w, map[string]string{"status": "flushed"})
	}))
	mux.HandleFunc("POST /v1/checkpoint", ready(func(svc Backend, w http.ResponseWriter, r *http.Request) {
		if err := svc.Checkpoint(r.Context()); err != nil {
			writeServiceError(w, err)
			return
		}
		writeJSON(w, map[string]string{"status": "checkpointed"})
	}))
	mux.HandleFunc("GET /v1/clusters/{dim}", ready(func(svc Backend, w http.ResponseWriter, r *http.Request) {
		dim := r.PathValue("dim")
		if dim == "b" {
			writeJSON(w, svc.BClusters())
			return
		}
		view, err := svc.EPMClusters(dim)
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, view)
	}))
	mux.HandleFunc("GET /v1/sample/{id}", ready(func(svc Backend, w http.ResponseWriter, r *http.Request) {
		view, ok := svc.Sample(r.PathValue("id"))
		if !ok {
			writeError(w, http.StatusNotFound, fmt.Errorf("unknown sample %q", r.PathValue("id")))
			return
		}
		writeJSON(w, view)
	}))
	return mux
}

// ClientKey derives the rate-limiting identity for a request: the
// ClientIDHeader when set, the remote IP otherwise.
func ClientKey(r *http.Request) string {
	if id := r.Header.Get(ClientIDHeader); id != "" {
		return id
	}
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		return host
	}
	return r.RemoteAddr
}

// decodeEvents reads and validates an ingest body: enforced JSON
// Content-Type, size cap, strict decode, and no trailing garbage after
// the array. On failure it writes the structured error response and
// returns ok=false.
func decodeEvents(w http.ResponseWriter, r *http.Request, maxBody int64) ([]dataset.Event, bool) {
	ct := r.Header.Get("Content-Type")
	if ct == "" {
		writeError(w, http.StatusBadRequest, errors.New("missing Content-Type; send application/json"))
		return nil, false
	}
	media, _, err := mime.ParseMediaType(ct)
	if err != nil || media != "application/json" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("unsupported Content-Type %q; send application/json", ct))
		return nil, false
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxBody)
	dec := json.NewDecoder(r.Body)
	var events []dataset.Event
	if err := dec.Decode(&events); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes; split the batch", tooBig.Limit))
			return nil, false
		}
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding events: %w", err))
		return nil, false
	}
	// json.Decoder stops at the end of the first value; anything after
	// it but whitespace is a malformed request, not a second batch.
	if _, err := dec.Token(); err == nil || !errors.Is(err, io.EOF) {
		writeError(w, http.StatusBadRequest, errors.New("trailing data after the event array"))
		return nil, false
	}
	return events, true
}

// writeServiceError maps a service-side ingest/flush/checkpoint failure
// onto the wire: writes to a read-only replica become a typed 403 (use
// the primary; no Retry-After, retrying here can never succeed);
// admission rejections become 429 (the client should
// slow down: rate-limit, deadline) or 503 (the service is saturated:
// queue-full, shed) with a Retry-After header; storage-failure
// read-only mode is a typed 503 with reason "storage_failed" (reads
// keep serving; writes need operator intervention); anything else is
// 503.
func writeServiceError(w http.ResponseWriter, err error) {
	if errors.Is(err, stream.ErrReadOnly) {
		// A replica: the write is not retryable here, ever — the client
		// must target the primary, so this is a typed 403, not a 503.
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusForbidden)
		json.NewEncoder(w).Encode(map[string]string{
			"error":  err.Error(),
			"reason": "read_only",
		})
		return
	}
	if rej, ok := admission.AsRejection(err); ok {
		code := http.StatusServiceUnavailable
		if rej.Reason == admission.ReasonRateLimit || rej.Reason == admission.ReasonDeadline {
			code = http.StatusTooManyRequests
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Retry-After", fmt.Sprintf("%d", retryAfterSeconds(rej.RetryAfter)))
		w.WriteHeader(code)
		json.NewEncoder(w).Encode(map[string]any{
			"error":          rej.Error(),
			"reason":         string(rej.Reason),
			"retry_after_ms": rej.RetryAfter.Milliseconds(),
		})
		return
	}
	if errors.Is(err, stream.ErrStorageFailed) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(map[string]string{
			"error":  err.Error(),
			"reason": stream.StorageFailedReason,
		})
		return
	}
	writeError(w, http.StatusServiceUnavailable, err)
}

// retryAfterSeconds renders a Retry-After value: whole seconds, at
// least 1 (a zero Retry-After header is "retry immediately", which
// defeats the point of sending one).
func retryAfterSeconds(d time.Duration) int {
	s := int(math.Ceil(d.Seconds()))
	if s < 1 {
		s = 1
	}
	return s
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
