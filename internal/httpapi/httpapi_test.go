package httpapi_test

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/behavior"
	"repro/internal/benchdata"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/faultfs"
	"repro/internal/httpapi"
	"repro/internal/stream"
)

// nopEnricher satisfies stream.Enricher for handler-level tests that
// never reach enrichment.
type nopEnricher struct{}

func (nopEnricher) LabelSample(s *dataset.Sample) error { return nil }
func (nopEnricher) ExecuteSample(s *dataset.Sample) (*behavior.Profile, bool, error) {
	return behavior.NewProfile(), false, nil
}

// blockEnricher parks the apply worker inside the first sandbox run
// until gate closes, so tests can hold the ingest queue full.
type blockEnricher struct {
	entered chan struct{}
	gate    chan struct{}
}

func (e blockEnricher) LabelSample(s *dataset.Sample) error { return nil }
func (e blockEnricher) ExecuteSample(s *dataset.Sample) (*behavior.Profile, bool, error) {
	select {
	case e.entered <- struct{}{}:
	default:
	}
	<-e.gate
	return behavior.NewProfile(), false, nil
}

func newServer(t *testing.T, svc *stream.Service, maxBody int64) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(httpapi.New(func() httpapi.Backend { return svc }, httpapi.Options{MaxBody: maxBody}))
	t.Cleanup(ts.Close)
	return ts
}

func newService(t *testing.T, cfg stream.Config, enr stream.Enricher) *stream.Service {
	t.Helper()
	svc, err := stream.New(cfg, enr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	return svc
}

// TestHandlerEndToEnd drives the HTTP API against a real service hosting
// the small scenario: ingest the simulated events, flush, and query every
// endpoint.
func TestHandlerEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("replays the SmallScenario over HTTP")
	}
	scenario := core.SmallScenario()
	_, sim, pipe, err := core.Prepare(scenario)
	if err != nil {
		t.Fatal(err)
	}
	cfg := stream.DefaultConfig()
	cfg.Thresholds = scenario.Thresholds
	cfg.BCluster = scenario.Enrichment.BCluster
	svc := newService(t, cfg, pipe)
	ts := newServer(t, svc, 0)

	events := sim.Dataset.Events()
	body, err := json.Marshal(events)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/ingest", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: %s", resp.Status)
	}
	if resp, err = http.Post(ts.URL+"/v1/flush", "application/json", nil); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("flush: %s", resp.Status)
	}

	getJSON := func(path string, into any) int {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
				t.Fatalf("%s: %v", path, err)
			}
		}
		return resp.StatusCode
	}

	var health map[string]string
	if code := getJSON("/healthz", &health); code != http.StatusOK || health["status"] != "ok" {
		t.Fatalf("healthz: code=%d body=%v", code, health)
	}

	var stats stream.Stats
	if code := getJSON("/v1/stats", &stats); code != http.StatusOK {
		t.Fatalf("stats: %d", code)
	}
	if stats.Events != len(events) || stats.Rejected != 0 || stats.EnrichErrors != 0 {
		t.Fatalf("stats after replay: %+v", stats)
	}

	for _, dim := range []string{"e", "epsilon", "p", "m"} {
		var view stream.EPMView
		if code := getJSON("/v1/clusters/"+dim, &view); code != http.StatusOK {
			t.Fatalf("clusters/%s: %d", dim, code)
		}
		if len(view.Clusters) == 0 {
			t.Fatalf("clusters/%s: empty", dim)
		}
	}
	var bview stream.BView
	if code := getJSON("/v1/clusters/b", &bview); code != http.StatusOK || len(bview.Clusters) == 0 {
		t.Fatalf("clusters/b: code=%d clusters=%d", code, len(bview.Clusters))
	}
	var junk map[string]string
	if code := getJSON("/v1/clusters/nope", &junk); code != http.StatusNotFound {
		t.Fatalf("clusters/nope: %d, want 404", code)
	}

	var sample stream.SampleView
	md5 := bview.Clusters[0].Representative
	if code := getJSON("/v1/sample/"+md5, &sample); code != http.StatusOK || sample.MD5 != md5 {
		t.Fatalf("sample/%s: code=%d view=%+v", md5, code, sample)
	}
	if code := getJSON("/v1/sample/absent", &junk); code != http.StatusNotFound {
		t.Fatalf("sample/absent: %d, want 404", code)
	}
}

// TestHandlerRecoveryGate checks the readiness split: while the service
// is still recovering (get returns nil), /healthz stays alive, /readyz
// and every service endpoint answer 503; once ready, /readyz flips.
func TestHandlerRecoveryGate(t *testing.T) {
	var svc *stream.Service
	ts := httptest.NewServer(httpapi.New(func() httpapi.Backend {
		if svc == nil {
			return nil // a typed-nil *stream.Service would pass the gate
		}
		return svc
	}, httpapi.Options{}))
	defer ts.Close()

	status := func(method, path string) int {
		t.Helper()
		req, err := http.NewRequest(method, ts.URL+path, strings.NewReader("[]"))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	if code := status("GET", "/healthz"); code != http.StatusOK {
		t.Fatalf("healthz while recovering: %d, want 200", code)
	}
	for path, method := range map[string]string{
		"/readyz": "GET", "/v1/stats": "GET", "/v1/ingest": "POST", "/v1/flush": "POST",
	} {
		if code := status(method, path); code != http.StatusServiceUnavailable {
			t.Fatalf("%s while recovering: %d, want 503", path, code)
		}
	}

	real, err := stream.New(stream.DefaultConfig(), nopEnricher{})
	if err != nil {
		t.Fatal(err)
	}
	defer real.Close()
	svc = real
	if code := status("GET", "/readyz"); code != http.StatusOK {
		t.Fatalf("readyz when ready: %d, want 200", code)
	}
}

// TestIngestBodyCap checks oversized /v1/ingest bodies are refused with
// 413 before they reach the service.
func TestIngestBodyCap(t *testing.T) {
	svc := newService(t, stream.DefaultConfig(), nopEnricher{})
	ts := newServer(t, svc, 256)

	big := "[" + strings.Repeat(" ", 1024) + "]"
	resp, err := http.Post(ts.URL+"/v1/ingest", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized ingest: %s, want 413", resp.Status)
	}
	var body map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil || body["error"] == "" {
		t.Fatalf("413 body = %v, %v; want an error message", body, err)
	}
	// A small body still lands.
	resp, err = http.Post(ts.URL+"/v1/ingest", "application/json", strings.NewReader("[]"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("small ingest after cap test: %s, want 200", resp.Status)
	}
}

// TestIngestMalformedInput is the satellite (b) table: wrong or missing
// Content-Type, non-JSON bodies, and trailing garbage after the event
// array must all come back as structured 400s, and near-miss variants
// (charset parameter, trailing whitespace) must still land.
func TestIngestMalformedInput(t *testing.T) {
	svc := newService(t, stream.DefaultConfig(), nopEnricher{})
	ts := newServer(t, svc, 0)

	cases := []struct {
		name        string
		contentType string
		body        string
		wantCode    int
		wantErr     string
	}{
		{"missing content type", "", "[]", http.StatusBadRequest, "missing Content-Type"},
		{"wrong content type", "text/plain", "[]", http.StatusBadRequest, "unsupported Content-Type"},
		{"unparsable content type", "application/;;", "[]", http.StatusBadRequest, "unsupported Content-Type"},
		{"not json", "application/json", "{not json", http.StatusBadRequest, "decoding events"},
		{"wrong json shape", "application/json", `{"id":"ev1"}`, http.StatusBadRequest, "decoding events"},
		{"trailing garbage", "application/json", `[]]`, http.StatusBadRequest, "trailing data"},
		{"second value", "application/json", `[] []`, http.StatusBadRequest, "trailing data"},
		{"trailing junk bytes", "application/json", "[]garbage", http.StatusBadRequest, "trailing data"},
		{"charset parameter ok", "application/json; charset=utf-8", "[]", http.StatusOK, ""},
		{"trailing whitespace ok", "application/json", "[]\n\t ", http.StatusOK, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest("POST", ts.URL+"/v1/ingest", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			if tc.contentType != "" {
				req.Header.Set("Content-Type", tc.contentType)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.wantCode {
				t.Fatalf("code %d, want %d", resp.StatusCode, tc.wantCode)
			}
			if tc.wantErr == "" {
				return
			}
			var body map[string]string
			if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
				t.Fatalf("error response is not structured JSON: %v", err)
			}
			if !strings.Contains(body["error"], tc.wantErr) {
				t.Fatalf("error %q does not mention %q", body["error"], tc.wantErr)
			}
		})
	}
	if st := svc.Stats(); st.Events != 0 {
		t.Fatalf("malformed requests leaked %d events into the service", st.Events)
	}
}

// TestIngestOverloadDeadline is the satellite (a) regression at the HTTP
// layer: with the apply worker stalled and the queue full, POST
// /v1/ingest and /v1/flush must answer 429 with a Retry-After header
// within the admission deadline instead of hanging until the client's
// timeout.
func TestIngestOverloadDeadline(t *testing.T) {
	cfg := stream.DefaultConfig()
	cfg.QueueDepth = 2
	cfg.Admission.Deadline = 50 * time.Millisecond
	enr := blockEnricher{entered: make(chan struct{}, 1), gate: make(chan struct{})}
	svc := newService(t, cfg, enr)
	defer close(enr.gate)
	ts := newServer(t, svc, 0)

	// Park the worker in an enrichment, then fill the queue behind it.
	stall := []dataset.Event{benchdata.StreamEvents(40)[0]}
	body, _ := json.Marshal(stall)
	resp, err := http.Post(ts.URL+"/v1/ingest", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stall batch: %s", resp.Status)
	}
	<-enr.entered
	filler := benchdata.StreamEvents(40)[1:3]
	for i := range filler {
		b, _ := json.Marshal(filler[i : i+1])
		resp, err := http.Post(ts.URL+"/v1/ingest", "application/json", strings.NewReader(string(b)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("filler batch %d: %s", i, resp.Status)
		}
	}

	check := func(path, payload string) {
		t.Helper()
		start := time.Now()
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(payload))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if waited := time.Since(start); waited > 5*time.Second {
			t.Fatalf("%s held the connection %v despite the admission deadline", path, waited)
		}
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("%s over a full queue: %s, want 429", path, resp.Status)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Fatalf("%s: 429 without a Retry-After header", path)
		}
		var body map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatalf("%s: unstructured 429 body: %v", path, err)
		}
		if body["reason"] != "deadline" {
			t.Fatalf("%s: reason %v, want deadline", path, body["reason"])
		}
	}
	overflow := benchdata.StreamEvents(40)[3:5]
	b, _ := json.Marshal(overflow)
	check("/v1/ingest", string(b))
	check("/v1/flush", "")
}

// TestIngestRateLimitByClientHeader checks the per-client 429 contract:
// the X-Client-ID header keys the bucket, distinct clients are
// independent, and the rejection carries Retry-After.
func TestIngestRateLimitByClientHeader(t *testing.T) {
	cfg := stream.DefaultConfig()
	cfg.Admission.RatePerSec = 5
	cfg.Admission.Burst = 2
	svc := newService(t, cfg, nopEnricher{})
	ts := newServer(t, svc, 0)

	events := benchdata.StreamEvents(40)
	send := func(client string, ev []dataset.Event) *http.Response {
		t.Helper()
		b, _ := json.Marshal(ev)
		req, err := http.NewRequest("POST", ts.URL+"/v1/ingest", strings.NewReader(string(b)))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		if client != "" {
			req.Header.Set(httpapi.ClientIDHeader, client)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	if resp := send("flood", events[0:2]); resp.StatusCode != http.StatusOK {
		t.Fatalf("burst batch: %s", resp.Status)
	} else {
		resp.Body.Close()
	}
	resp := send("flood", events[2:4])
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("drained bucket: %s, want 429", resp.Status)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil || body["reason"] != "rate-limit" {
		t.Fatalf("429 body %v (%v), want reason rate-limit", body, err)
	}
	// An independent client is unaffected.
	if resp := send("calm", events[4:6]); resp.StatusCode != http.StatusOK {
		t.Fatalf("independent client: %s", resp.Status)
	} else {
		resp.Body.Close()
	}
	// No header: the remote IP is the key — still admitted, and tracked
	// as its own bucket.
	if resp := send("", events[6:8]); resp.StatusCode != http.StatusOK {
		t.Fatalf("header-less client: %s", resp.Status)
	} else {
		resp.Body.Close()
	}
	if n := svc.Stats().Admission.RateLimitClients; n != 3 {
		t.Fatalf("limiter tracks %d clients, want 3 (flood, calm, remote IP)", n)
	}
}

// TestClientKey pins the key-derivation order: header first, then the
// remote IP without the ephemeral port.
func TestClientKey(t *testing.T) {
	r := httptest.NewRequest("POST", "/v1/ingest", nil)
	r.RemoteAddr = "203.0.113.9:55123"
	if got := httpapi.ClientKey(r); got != "203.0.113.9" {
		t.Fatalf("ClientKey = %q, want the bare remote IP", got)
	}
	r.Header.Set(httpapi.ClientIDHeader, "sensor-7")
	if got := httpapi.ClientKey(r); got != "sensor-7" {
		t.Fatalf("ClientKey = %q, want the header identity", got)
	}
}

// TestStorageFailureAnswers503 checks the storage-degraded read-only
// mode surfaces on the wire: writes answer a typed 503 with reason
// "storage_failed", reads keep serving, /v1/stats exposes the ledger,
// and /readyz stays 200 but advertises "degraded". The WAL is broken
// with a permanent faultfs write fault so the append's self-heal
// attempt fails too.
func TestStorageFailureAnswers503(t *testing.T) {
	cfg := stream.DefaultConfig()
	cfg.Durability = stream.Durability{
		Dir:    t.TempDir(),
		NoSync: true,
		FS: faultfs.New(nil, faultfs.Config{
			// Writes 1 and 2 are the setup batch and its flush record;
			// everything after fails forever.
			Rules: []faultfs.Rule{{Op: faultfs.OpWrite, At: 3, Until: -1, Kind: faultfs.KindEIO}},
		}),
	}
	svc := newService(t, cfg, nopEnricher{})
	ts := newServer(t, svc, 0)

	events := benchdata.StreamEvents(40)
	b, _ := json.Marshal(events[:2])
	resp, err := http.Post(ts.URL+"/v1/ingest", "application/json", strings.NewReader(string(b)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy ingest: %s", resp.Status)
	}
	if resp, err = http.Post(ts.URL+"/v1/flush", "application/json", nil); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// Drive one doomed batch through so the append failure latches.
	b, _ = json.Marshal(events[2:4])
	if resp, err = http.Post(ts.URL+"/v1/ingest", "application/json", strings.NewReader(string(b))); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp, err = http.Post(ts.URL+"/v1/flush", "application/json", nil); err != nil {
		t.Fatal(err)
	}
	var flushErr struct {
		Reason string `json:"reason"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&flushErr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || flushErr.Reason != "storage_failed" {
		t.Fatalf("flush on a degraded service: %s reason=%q, want 503/storage_failed", resp.Status, flushErr.Reason)
	}
	b, _ = json.Marshal(events[4:6])
	if resp, err = http.Post(ts.URL+"/v1/ingest", "application/json", strings.NewReader(string(b))); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("ingest on a degraded service: %s, want 503", resp.Status)
	}
	var st stream.Stats
	if resp, err = http.Get(ts.URL + "/v1/stats"); err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Fatal == "" || !st.Storage.ReadOnly {
		t.Fatalf("stats must surface read-only mode: fatal=%q storage=%+v", st.Fatal, st.Storage)
	}
	// Reads keep serving and the LB keeps routing: /readyz stays 200 but
	// advertises the degradation.
	if resp, err = http.Get(ts.URL + "/v1/clusters/b"); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("read on a degraded service: %s, want 200", resp.Status)
	}
	var ready struct {
		Status string `json:"status"`
	}
	if resp, err = http.Get(ts.URL + "/readyz"); err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&ready); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || ready.Status != "degraded" {
		t.Fatalf("/readyz on a degraded service: %s status=%q, want 200/degraded", resp.Status, ready.Status)
	}
}

// TestReplicaWritesForbidden is the satellite table: every write
// endpoint on a read-only replica backend answers a typed 403 with
// reason "read_only" and no Retry-After (retrying a replica can never
// succeed), while the read endpoints keep serving.
func TestReplicaWritesForbidden(t *testing.T) {
	rep, err := stream.NewReplica(stream.DefaultConfig(), nopEnricher{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rep.Close)
	ts := newServer(t, rep, 0)

	cases := []struct {
		name string
		path string
		body string
	}{
		{"ingest", "/v1/ingest", "[]"},
		{"ingest with events", "/v1/ingest", `[{"id":"ev1","attacker":"1.2.3.4"}]`},
		{"flush", "/v1/flush", ""},
		{"checkpoint", "/v1/checkpoint", ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+tc.path, "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusForbidden {
				t.Fatalf("%s on a replica: %s, want 403", tc.path, resp.Status)
			}
			if ra := resp.Header.Get("Retry-After"); ra != "" {
				t.Fatalf("403 carries Retry-After %q; the client must switch to the primary, not retry", ra)
			}
			var body map[string]string
			if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
				t.Fatalf("unstructured 403 body: %v", err)
			}
			if body["reason"] != "read_only" || body["error"] == "" {
				t.Fatalf("403 body %v, want reason read_only and an error message", body)
			}
		})
	}

	// Reads still serve on the same backend.
	resp, err := http.Get(ts.URL + "/v1/clusters/b")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("read on a replica: %s, want 200", resp.Status)
	}
}

// TestStatsRoleAndUptime checks /v1/stats carries the process role and
// a sane uptime for both a standalone service and a replica.
func TestStatsRoleAndUptime(t *testing.T) {
	svc := newService(t, stream.DefaultConfig(), nopEnricher{})
	rep, err := stream.NewReplica(stream.DefaultConfig(), nopEnricher{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rep.Close)

	for _, tc := range []struct {
		name     string
		backend  httpapi.Backend
		wantRole string
	}{
		{"standalone", svc, "standalone"},
		{"replica", rep, "replica"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ts := newServer(t, tc.backend.(*stream.Service), 0)
			resp, err := http.Get(ts.URL + "/v1/stats")
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			var st struct {
				Role     string `json:"role"`
				UptimeMS *int64 `json:"uptime_ms"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
				t.Fatal(err)
			}
			if st.Role != tc.wantRole {
				t.Fatalf("role %q, want %q", st.Role, tc.wantRole)
			}
			if st.UptimeMS == nil || *st.UptimeMS < 0 {
				t.Fatalf("uptime_ms %v, want a non-negative field", st.UptimeMS)
			}
		})
	}
}

// TestReadinessOption checks the pluggable readiness gate: /readyz
// reflects the callback (503 "lagging" with the reason) without
// touching the service endpoints, and the Repl handler mounts under
// /v1/repl/.
func TestReadinessOption(t *testing.T) {
	svc := newService(t, stream.DefaultConfig(), nopEnricher{})
	lagging := errors.New("stale by 3s")
	var gate error
	var mu sync.Mutex
	ts := httptest.NewServer(httpapi.New(
		func() httpapi.Backend { return svc },
		httpapi.Options{
			Readiness: func() error { mu.Lock(); defer mu.Unlock(); return gate },
			Repl: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				w.Write([]byte("shipping"))
			}),
		}))
	t.Cleanup(ts.Close)

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}

	if code, _ := get("/readyz"); code != http.StatusOK {
		t.Fatalf("readyz with a nil gate: %d, want 200", code)
	}
	mu.Lock()
	gate = lagging
	mu.Unlock()
	code, body := get("/readyz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("readyz while lagging: %d, want 503", code)
	}
	if !strings.Contains(body, "lagging") || !strings.Contains(body, "stale by 3s") {
		t.Fatalf("lagging readyz body %q must carry the status and reason", body)
	}
	if code, _ := get("/v1/stats"); code != http.StatusOK {
		t.Fatalf("stats while lagging: %d; lag gates routing, not queries", code)
	}
	if code, body := get("/v1/repl/segments"); code != http.StatusOK || body != "shipping" {
		t.Fatalf("repl mount: %d %q", code, body)
	}
}
