package httpapi_test

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/benchdata"
	"repro/internal/httpapi"
	"repro/internal/stream"
)

// FuzzIngestPipeline fuzzes the full ingest path — HTTP decode,
// validation, admission, apply — against a live service. Whatever the
// body, the handler must answer a sane status (never a 5xx other than
// the deliberate fail-closed 500, which this memory-only service cannot
// reach), the service must survive, and a 200 must mean the batch was
// queued. Seeds come from the benchdata.StreamEvents corpus plus the
// malformed shapes the hardening table guards.
//
// Each exec gets a fresh service: sharing one across execs makes the
// coverage signal depend on accumulated dataset state, which sends the
// coverage-guided minimizer into long minimize cycles on inputs that
// are only "interesting" because of what ran before them.
func FuzzIngestPipeline(f *testing.F) {
	events := benchdata.StreamEvents(60)
	for _, n := range []int{1, 5, 20} {
		seed, err := json.Marshal(events[:n])
		if err != nil {
			f.Fatal(err)
		}
		f.Add(seed)
	}
	f.Add([]byte("[]"))
	f.Add([]byte("[{}]"))
	f.Add([]byte("{not json"))
	f.Add([]byte(`[] trailing`))
	f.Add([]byte(`[{"id":"","attacker":"1.2.3.4"}]`))

	f.Fuzz(func(t *testing.T, body []byte) {
		cfg := stream.DefaultConfig()
		svc, err := stream.New(cfg, nopEnricher{})
		if err != nil {
			t.Fatal(err)
		}
		defer svc.Close()
		handler := httpapi.New(func() httpapi.Backend { return svc }, httpapi.Options{MaxBody: 1 << 20})

		req := httptest.NewRequest("POST", "/v1/ingest", strings.NewReader(string(body)))
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set(httpapi.ClientIDHeader, "fuzz")
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, req)

		switch rec.Code {
		case http.StatusOK:
			var out map[string]int
			if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
				t.Fatalf("200 with undecodable body %q: %v", rec.Body.String(), err)
			}
			if _, ok := out["queued"]; !ok {
				t.Fatalf("200 without a queued count: %q", rec.Body.String())
			}
		case http.StatusBadRequest, http.StatusRequestEntityTooLarge:
			var out map[string]string
			if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil || out["error"] == "" {
				t.Fatalf("%d without a structured error: %q", rec.Code, rec.Body.String())
			}
		default:
			t.Fatalf("unexpected status %d for body %q", rec.Code, body)
		}
		// Barrier: force the async apply worker to finish inside this
		// exec so the covered path is deterministic, then check the
		// service survived the input.
		if err := svc.Flush(context.Background()); err != nil {
			t.Fatalf("flush after fuzz input: %v", err)
		}
		if st := svc.Stats(); st.Fatal != "" {
			t.Fatalf("fuzz input broke the service: %s", st.Fatal)
		}
	})
}
