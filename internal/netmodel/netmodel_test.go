package netmodel

import (
	"testing"
	"testing/quick"

	"repro/internal/simrng"
)

func TestIPString(t *testing.T) {
	tests := []struct {
		ip   IP
		want string
	}{
		{0, "0.0.0.0"},
		{0xffffffff, "255.255.255.255"},
		{0x43002a01, "67.0.42.1"},
		{MustParseIP("67.43.232.36"), "67.43.232.36"},
	}
	for _, tt := range tests {
		if got := tt.ip.String(); got != tt.want {
			t.Errorf("IP(%#x).String() = %q, want %q", uint32(tt.ip), got, tt.want)
		}
	}
}

func TestParseIPRoundTrip(t *testing.T) {
	f := func(raw uint32) bool {
		ip := IP(raw)
		back, err := ParseIP(ip.String())
		return err == nil && back == ip
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseIPErrors(t *testing.T) {
	bad := []string{"", "1.2.3", "1.2.3.4.5", "256.1.1.1", "-1.2.3.4", "a.b.c.d", "01.2.3.4", "1..2.3"}
	for _, s := range bad {
		if _, err := ParseIP(s); err == nil {
			t.Errorf("ParseIP(%q) succeeded, want error", s)
		}
	}
}

func TestPrefixContains(t *testing.T) {
	p := MustParsePrefix("67.43.232.0/24")
	if !p.Contains(MustParseIP("67.43.232.36")) {
		t.Error("prefix must contain member address")
	}
	if p.Contains(MustParseIP("67.43.233.1")) {
		t.Error("prefix must not contain outside address")
	}
	all := Prefix{Base: 0, Bits: 0}
	if !all.Contains(MustParseIP("8.8.8.8")) {
		t.Error("/0 must contain everything")
	}
}

func TestParsePrefixRejectsHostBits(t *testing.T) {
	if _, err := ParsePrefix("67.43.232.1/24"); err == nil {
		t.Error("host bits set must be rejected")
	}
	if _, err := ParsePrefix("67.43.232.0/33"); err == nil {
		t.Error("invalid length must be rejected")
	}
	if _, err := ParsePrefix("67.43.232.0"); err == nil {
		t.Error("missing slash must be rejected")
	}
}

func TestPrefixRandomStaysInside(t *testing.T) {
	r := simrng.New(1).Stream("prefix")
	p := MustParsePrefix("10.20.0.0/16")
	for i := 0; i < 500; i++ {
		ip := p.Random(r)
		if !p.Contains(ip) {
			t.Fatalf("Random produced %s outside %s", ip, p)
		}
	}
}

func TestSlash24(t *testing.T) {
	ip := MustParseIP("67.43.232.36")
	got := ip.Slash24()
	if got.String() != "67.43.232.0/24" {
		t.Errorf("Slash24 = %s", got)
	}
	if !got.Contains(ip) {
		t.Error("Slash24 must contain its address")
	}
}

func TestNewDeploymentLayout(t *testing.T) {
	r := simrng.New(7).Stream("deploy")
	d, err := NewDeployment(r, 30, 5)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(d.Locations()); got != 30 {
		t.Fatalf("locations = %d, want 30", got)
	}
	if got := len(d.Sensors()); got != 150 {
		t.Fatalf("sensors = %d, want 150", got)
	}
	// No two locations may share a /16, and each sensor must resolve to its
	// own location.
	seen := map[IP]bool{}
	for i, loc := range d.Locations() {
		if seen[loc.Prefix.Base] {
			t.Fatalf("duplicate location prefix %s", loc.Prefix)
		}
		seen[loc.Prefix.Base] = true
		for _, s := range loc.Sensors {
			if !loc.Prefix.Contains(s) {
				t.Fatalf("sensor %s outside location prefix %s", s, loc.Prefix)
			}
			if got := d.LocationOf(s); got != i {
				t.Fatalf("LocationOf(%s) = %d, want %d", s, got, i)
			}
		}
	}
	if got := d.LocationOf(MustParseIP("192.0.2.1")); got != -1 {
		// Astronomically unlikely to be a sensor; treat as non-sensor probe.
		t.Skipf("random collision with sensor space (got %d)", got)
	}
}

func TestNewDeploymentRejectsBadSizes(t *testing.T) {
	r := simrng.New(7).Stream("deploy-bad")
	if _, err := NewDeployment(r, 0, 5); err == nil {
		t.Error("zero locations must error")
	}
	if _, err := NewDeployment(r, 5, 0); err == nil {
		t.Error("zero sensors must error")
	}
}

func TestDeploymentDeterminism(t *testing.T) {
	d1, err := NewDeployment(simrng.New(9).Stream("d"), 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := NewDeployment(simrng.New(9).Stream("d"), 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	s1, s2 := d1.Sensors(), d2.Sensors()
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("deployments diverged at sensor %d: %s != %s", i, s1[i], s2[i])
		}
	}
}

func TestWidespreadPopulationSpread(t *testing.T) {
	r := simrng.New(3).Stream("pop")
	p := NewPopulation(r, 400, Widespread, 0)
	if len(p.Hosts) != 400 {
		t.Fatalf("hosts = %d", len(p.Hosts))
	}
	if spread := p.Slash24Spread(); spread < 350 {
		t.Errorf("widespread population occupies only %d /24s", spread)
	}
}

func TestLocalizedPopulationSpread(t *testing.T) {
	r := simrng.New(3).Stream("pop-local")
	p := NewPopulation(r, 400, Localized, 4)
	if len(p.Hosts) != 400 {
		t.Fatalf("hosts = %d", len(p.Hosts))
	}
	if spread := p.Slash24Spread(); spread > 4 {
		t.Errorf("localized population occupies %d /24s, want <= 4", spread)
	}
}

func TestLocalizedPopulationDefaultsToOneNet(t *testing.T) {
	r := simrng.New(3).Stream("pop-one")
	p := NewPopulation(r, 50, Localized, 0)
	if spread := p.Slash24Spread(); spread != 1 {
		t.Errorf("spread = %d, want 1 when maxNets defaulted", spread)
	}
}

func TestIPSpaceHistogram(t *testing.T) {
	ips := []IP{0, 1 << 30, 2 << 30, 3 << 30}
	hist := IPSpaceHistogram(ips, 4)
	for i, c := range hist {
		if c != 1 {
			t.Errorf("bucket %d = %d, want 1 (hist %v)", i, c, hist)
		}
	}
	if got := len(IPSpaceHistogram(nil, 0)); got != 16 {
		t.Errorf("default buckets = %d, want 16", got)
	}
}

func TestDistributionString(t *testing.T) {
	if Widespread.String() != "widespread" || Localized.String() != "localized" {
		t.Error("Distribution.String mismatch")
	}
	if Distribution(99).String() == "" {
		t.Error("unknown distribution must still render")
	}
}
