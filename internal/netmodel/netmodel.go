// Package netmodel models the slice of the IPv4 Internet the simulation
// needs: addresses, prefixes, the honeypot deployment layout, and infected
// host populations with their spatial distribution.
//
// The paper's SGNET deployment monitored 150 IP addresses across 30
// distinct network locations. The analyses only ever consume (attacker IP,
// honeypot IP) pairs, so the model generates attacker populations directly
// instead of simulating full Internet routing.
package netmodel

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
)

// IP is an IPv4 address in host byte order.
type IP uint32

// String renders the address in dotted-quad form.
func (ip IP) String() string {
	var b strings.Builder
	b.Grow(15)
	for shift := 24; shift >= 0; shift -= 8 {
		if shift != 24 {
			b.WriteByte('.')
		}
		b.WriteString(strconv.Itoa(int(ip >> shift & 0xff)))
	}
	return b.String()
}

// Slash24 returns the /24 prefix containing the address.
func (ip IP) Slash24() Prefix {
	return Prefix{Base: ip &^ 0xff, Bits: 24}
}

// ParseIP parses a dotted-quad IPv4 address.
func ParseIP(s string) (IP, error) {
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return 0, fmt.Errorf("netmodel: invalid IPv4 address %q", s)
	}
	var ip IP
	for _, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil || v < 0 || v > 255 || (len(p) > 1 && p[0] == '0') {
			return 0, fmt.Errorf("netmodel: invalid IPv4 octet %q in %q", p, s)
		}
		ip = ip<<8 | IP(v)
	}
	return ip, nil
}

// MustParseIP is ParseIP for compile-time-known literals; it panics on
// malformed input.
func MustParseIP(s string) IP {
	ip, err := ParseIP(s)
	if err != nil {
		panic(err)
	}
	return ip
}

// Prefix is a CIDR prefix.
type Prefix struct {
	Base IP  // network address (low bits zero)
	Bits int // prefix length, 0..32
}

// ParsePrefix parses CIDR notation such as "67.43.232.0/24".
func ParsePrefix(s string) (Prefix, error) {
	slash := strings.IndexByte(s, '/')
	if slash < 0 {
		return Prefix{}, fmt.Errorf("netmodel: prefix %q missing '/'", s)
	}
	ip, err := ParseIP(s[:slash])
	if err != nil {
		return Prefix{}, err
	}
	bits, err := strconv.Atoi(s[slash+1:])
	if err != nil || bits < 0 || bits > 32 {
		return Prefix{}, fmt.Errorf("netmodel: invalid prefix length in %q", s)
	}
	p := Prefix{Base: ip, Bits: bits}
	if p.Base != p.mask(ip) {
		return Prefix{}, fmt.Errorf("netmodel: %q has host bits set", s)
	}
	return p, nil
}

// MustParsePrefix is ParsePrefix for literals; it panics on malformed input.
func MustParsePrefix(s string) Prefix {
	p, err := ParsePrefix(s)
	if err != nil {
		panic(err)
	}
	return p
}

func (p Prefix) mask(ip IP) IP {
	if p.Bits <= 0 {
		return 0
	}
	return ip &^ (1<<(32-p.Bits) - 1)
}

// Contains reports whether ip belongs to the prefix.
func (p Prefix) Contains(ip IP) bool {
	return p.mask(ip) == p.Base
}

// Size returns the number of addresses covered by the prefix.
func (p Prefix) Size() uint64 {
	return 1 << (32 - p.Bits)
}

// Random returns a uniformly random address inside the prefix. Network and
// broadcast addresses are not excluded; the simulation does not care.
func (p Prefix) Random(r *rand.Rand) IP {
	return p.Base | IP(r.Uint64()&uint64(p.Size()-1))
}

// String renders the prefix in CIDR notation.
func (p Prefix) String() string {
	return fmt.Sprintf("%s/%d", p.Base, p.Bits)
}

// Deployment describes the honeypot deployment: a set of network
// locations, each contributing a handful of monitored sensor addresses.
type Deployment struct {
	locations []Location
	sensors   []IP
	byIP      map[IP]int // sensor IP -> location index
}

// Location is one monitored network location.
type Location struct {
	Name    string
	Prefix  Prefix
	Sensors []IP
}

// NewDeployment builds a deployment with the given number of locations and
// sensors per location, drawing the location prefixes pseudo-randomly from
// distinct /16 blocks so no two locations share address space.
func NewDeployment(r *rand.Rand, locations, sensorsPerLocation int) (*Deployment, error) {
	if locations <= 0 || sensorsPerLocation <= 0 {
		return nil, fmt.Errorf("netmodel: deployment needs positive sizes, got %d locations x %d sensors", locations, sensorsPerLocation)
	}
	d := &Deployment{
		locations: make([]Location, 0, locations),
		sensors:   make([]IP, 0, locations*sensorsPerLocation),
		byIP:      make(map[IP]int, locations*sensorsPerLocation),
	}
	used := make(map[IP]bool, locations)
	for i := 0; i < locations; i++ {
		var base IP
		for {
			// Stay within globally-routable-looking space (avoid 0/8, 10/8,
			// 127/8, 224/3) purely for cosmetic realism.
			hi := IP(r.Intn(220-1) + 1)
			if hi == 10 || hi == 127 {
				continue
			}
			base = hi<<24 | IP(r.Intn(256))<<16
			if !used[base] {
				used[base] = true
				break
			}
		}
		loc := Location{
			Name:   fmt.Sprintf("loc-%02d", i),
			Prefix: Prefix{Base: base, Bits: 16},
		}
		seen := make(map[IP]bool, sensorsPerLocation)
		for len(loc.Sensors) < sensorsPerLocation {
			ip := loc.Prefix.Random(r)
			if seen[ip] {
				continue
			}
			seen[ip] = true
			loc.Sensors = append(loc.Sensors, ip)
			d.sensors = append(d.sensors, ip)
			d.byIP[ip] = i
		}
		sort.Slice(loc.Sensors, func(a, b int) bool { return loc.Sensors[a] < loc.Sensors[b] })
		d.locations = append(d.locations, loc)
	}
	sort.Slice(d.sensors, func(a, b int) bool { return d.sensors[a] < d.sensors[b] })
	return d, nil
}

// Locations returns the deployment's network locations.
func (d *Deployment) Locations() []Location {
	return d.locations
}

// Sensors returns every monitored sensor address, sorted.
func (d *Deployment) Sensors() []IP {
	return d.sensors
}

// LocationOf returns the location index hosting the sensor, or -1 when the
// address is not a sensor.
func (d *Deployment) LocationOf(sensor IP) int {
	if i, ok := d.byIP[sensor]; ok {
		return i
	}
	return -1
}

// RandomSensor returns a uniformly random sensor address.
func (d *Deployment) RandomSensor(r *rand.Rand) IP {
	return d.sensors[r.Intn(len(d.sensors))]
}

// Distribution describes how an infected population spreads over the IP
// space.
type Distribution int

// Population spatial distributions observed in the paper: worms infect
// hosts widespread over most of the IP space, while bot populations
// concentrate in a few specific networks (Figure 5).
const (
	// Widespread scatters hosts uniformly over routable space.
	Widespread Distribution = iota
	// Localized concentrates hosts in a small number of /24 networks.
	Localized
)

// String implements fmt.Stringer.
func (d Distribution) String() string {
	switch d {
	case Widespread:
		return "widespread"
	case Localized:
		return "localized"
	default:
		return fmt.Sprintf("Distribution(%d)", int(d))
	}
}

// Population is a set of infected hosts sharing one malware variant.
type Population struct {
	Hosts        []IP
	Distribution Distribution
}

// NewPopulation samples a population of the given size. For Localized
// populations the hosts are drawn from at most maxNets distinct /24s;
// widespread populations ignore maxNets.
func NewPopulation(r *rand.Rand, size int, dist Distribution, maxNets int) Population {
	p := Population{
		Hosts:        make([]IP, 0, size),
		Distribution: dist,
	}
	switch dist {
	case Localized:
		if maxNets <= 0 {
			maxNets = 1
		}
		nets := make([]Prefix, maxNets)
		for i := range nets {
			nets[i] = randomSlash24(r)
		}
		for len(p.Hosts) < size {
			p.Hosts = append(p.Hosts, nets[r.Intn(len(nets))].Random(r))
		}
	default:
		seen := make(map[IP]bool, size)
		for len(p.Hosts) < size {
			ip := randomRoutable(r)
			if seen[ip] {
				continue
			}
			seen[ip] = true
			p.Hosts = append(p.Hosts, ip)
		}
	}
	sort.Slice(p.Hosts, func(a, b int) bool { return p.Hosts[a] < p.Hosts[b] })
	return p
}

// Slash24Spread reports how many distinct /24 networks the population
// occupies. Low values relative to the population size indicate a
// localized, bot-like population.
func (p Population) Slash24Spread() int {
	nets := make(map[IP]bool, len(p.Hosts))
	for _, h := range p.Hosts {
		nets[h.Slash24().Base] = true
	}
	return len(nets)
}

// RandomHost returns a uniformly random member of the population.
func (p Population) RandomHost(r *rand.Rand) IP {
	return p.Hosts[r.Intn(len(p.Hosts))]
}

// randomRoutable samples an address avoiding the conspicuously
// non-routable /8s so that rendered addresses look plausible.
func randomRoutable(r *rand.Rand) IP {
	for {
		ip := IP(r.Uint32())
		hi := ip >> 24
		if hi == 0 || hi == 10 || hi == 127 || hi >= 224 {
			continue
		}
		return ip
	}
}

// randomSlash24 samples a random routable /24 prefix.
func randomSlash24(r *rand.Rand) Prefix {
	return randomRoutable(r).Slash24()
}

// IPSpaceHistogram buckets addresses by their high octet, giving the
// coarse "distribution over the IP space" view used in Figure 5.
func IPSpaceHistogram(ips []IP, buckets int) []int {
	if buckets <= 0 {
		buckets = 16
	}
	hist := make([]int, buckets)
	for _, ip := range ips {
		hist[int(uint64(ip)*uint64(buckets)>>32)]++
	}
	return hist
}
