// Package ckpt holds the checkpoint-file integrity conventions shared
// by the stream service, the replica publisher, and the offline
// verifier: the CRC trailer sealed onto every checkpoint blob, the
// `checkpoint.json.<gen>` retained-generation naming, and the
// newest-valid-generation selection corrupt checkpoints fall back
// through.
package ckpt

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/faultfs"
)

// Name is the newest checkpoint; retained generations are Name.<gen>.
const Name = "checkpoint.json"

// CorruptSuffix marks a quarantined checkpoint file: recovery renames a
// generation that failed its CRC or decode aside instead of deleting
// the evidence, and the verifier skips them.
const CorruptSuffix = ".corrupt"

// trailerPrefix introduces the CRC trailer line. The blob itself is
// JSON, which escapes newlines inside strings, so the byte sequence
// cannot occur before the trailer Seal appends.
const trailerPrefix = "\n#checkpoint-crc32 "

// Seal appends the CRC trailer: one line carrying the IEEE CRC of
// everything before it.
func Seal(blob []byte) []byte {
	sum := crc32.ChecksumIEEE(blob)
	return append(blob, []byte(fmt.Sprintf("%s%08x\n", trailerPrefix, sum))...)
}

// Unseal verifies and strips the trailer. Blobs without one (written
// before sealing existed) pass through unchanged with sealed=false; a
// present-but-wrong trailer is corruption.
func Unseal(blob []byte) (payload []byte, sealed bool, err error) {
	i := bytes.LastIndex(blob, []byte(trailerPrefix))
	if i < 0 {
		return blob, false, nil
	}
	line := bytes.TrimSuffix(blob[i+len(trailerPrefix):], []byte("\n"))
	want, perr := strconv.ParseUint(string(line), 16, 32)
	if perr != nil {
		return nil, true, fmt.Errorf("ckpt: malformed crc trailer %q", line)
	}
	payload = blob[:i]
	if got := crc32.ChecksumIEEE(payload); got != uint32(want) {
		return nil, true, fmt.Errorf("ckpt: crc mismatch: trailer %08x, payload %08x", uint32(want), got)
	}
	return payload, true, nil
}

// GenName names a retained generation file.
func GenName(dir string, gen uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%s.%d", Name, gen))
}

// ParseGen extracts the generation from a file name in dir;
// ok is false for the live checkpoint, quarantined files, and
// everything else.
func ParseGen(name string) (uint64, bool) {
	rest, found := strings.CutPrefix(name, Name+".")
	if !found || rest == "" || strings.HasSuffix(name, CorruptSuffix) {
		return 0, false
	}
	gen, err := strconv.ParseUint(rest, 10, 64)
	if err != nil {
		return 0, false
	}
	return gen, true
}

// Generations lists the retained generation numbers in dir, ascending.
func Generations(fs faultfs.FS, dir string) ([]uint64, error) {
	entries, err := faultfs.OrOS(fs).ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var gens []uint64
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if gen, ok := ParseGen(e.Name()); ok {
			gens = append(gens, gen)
		}
	}
	sort.Slice(gens, func(a, b int) bool { return gens[a] < gens[b] })
	return gens, nil
}

// LoadNewestValid reads the newest checkpoint whose CRC verifies and
// whose payload is well-formed JSON: the live file first, then retained
// generations newest-first. It returns the unsealed payload and the
// path it came from; os.ErrNotExist when no checkpoint exists at all.
// Invalid candidates are skipped, not modified — quarantine is the
// recovering service's decision, not the reader's.
func LoadNewestValid(fs faultfs.FS, dir string) (payload []byte, path string, err error) {
	fs = faultfs.OrOS(fs)
	gens, err := Generations(fs, dir)
	if err != nil {
		return nil, "", err
	}
	candidates := []string{filepath.Join(dir, Name)}
	for i := len(gens) - 1; i >= 0; i-- {
		candidates = append(candidates, GenName(dir, gens[i]))
	}
	var firstErr error
	exists := false
	for _, p := range candidates {
		blob, rerr := fs.ReadFile(p)
		if rerr != nil {
			if !os.IsNotExist(rerr) {
				exists = true
				if firstErr == nil {
					firstErr = rerr
				}
			}
			continue
		}
		exists = true
		pl, _, uerr := Unseal(blob)
		if uerr != nil || !json.Valid(pl) {
			if firstErr == nil {
				if uerr == nil {
					uerr = fmt.Errorf("ckpt: %s: payload is not valid JSON", p)
				}
				firstErr = uerr
			}
			continue
		}
		return pl, p, nil
	}
	if !exists {
		return nil, "", os.ErrNotExist
	}
	if firstErr == nil {
		firstErr = fmt.Errorf("ckpt: no valid checkpoint in %s", dir)
	}
	return nil, "", fmt.Errorf("ckpt: no valid checkpoint in %s: %w", dir, firstErr)
}
