package poison

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/stream"
)

// findReport selects the sweep row for (rate, defended).
func findReport(t *testing.T, reps []Report, rate float64, defended bool) Report {
	t.Helper()
	for _, r := range reps {
		if r.Rate == rate && r.Defended == defended {
			return r
		}
	}
	t.Fatalf("no report for rate=%g defended=%v", rate, defended)
	return Report{}
}

// TestSweepDefenseRecovery is the poisoning gate: the seeded 10% bridge
// and dilution campaign must measurably degrade the undefended B
// precision, and the defended streaming run must recover at least half
// of the gap to the clean baseline — while a rate-zero defended run
// stays at the baseline (no false merges, at most stray parks that cost
// a fraction of a recall point).
func TestSweepDefenseRecovery(t *testing.T) {
	reps, err := Sweep(context.Background(), Config{Scenario: core.SmallScenario()})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reps {
		t.Logf("rate=%.2f defended=%v events=%d samples=%d poison=%d clusters=%d P=%.3f R=%.3f ARI=%.3f held=%d parked=%d released=%d drained=%d",
			r.Rate, r.Defended, r.Events, r.Samples, r.PoisonSamples, r.Clusters, r.Precision, r.Recall, r.AdjustedRand, r.Held, r.Parked, r.Released, r.Drained)
		if r.Unaccounted != 0 {
			t.Errorf("rate=%g defended=%v: %d executable samples missing from the partition", r.Rate, r.Defended, r.Unaccounted)
		}
	}

	base := findReport(t, reps, 0, false)
	if base.Precision < 0.999 {
		t.Fatalf("clean undefended baseline precision %.3f, want ~1.0", base.Precision)
	}
	if base.PoisonSamples != 0 {
		t.Fatalf("clean baseline generated %d poison samples", base.PoisonSamples)
	}

	// A rate-zero defended run must not disturb the clean result.
	def0 := findReport(t, reps, 0, true)
	if def0.Precision < base.Precision {
		t.Errorf("defenses at rate 0 cost precision: %.3f < %.3f", def0.Precision, base.Precision)
	}
	if def0.Recall < base.Recall-0.01 {
		t.Errorf("defenses at rate 0 cost recall: %.3f < %.3f - 0.01", def0.Recall, base.Recall)
	}
	if def0.Held != 0 {
		t.Errorf("defenses at rate 0 held %d legitimate merges", def0.Held)
	}

	// The attack must bite, and at no rate may the defended run score
	// worse than the undefended one.
	undef10 := findReport(t, reps, 0.10, false)
	if undef10.Precision > base.Precision-0.05 {
		t.Fatalf("10%% poison did not degrade undefended precision: %.3f (baseline %.3f)", undef10.Precision, base.Precision)
	}
	for _, rate := range []float64{0.05, 0.10} {
		u := findReport(t, reps, rate, false)
		d := findReport(t, reps, rate, true)
		if u.PoisonSamples == 0 {
			t.Errorf("rate=%g generated no poison samples", rate)
		}
		if d.Precision < u.Precision {
			t.Errorf("rate=%g: defended precision %.3f below undefended %.3f", rate, d.Precision, u.Precision)
		}
	}

	// The headline criterion: defenses recover at least half the
	// precision the 10% attack destroyed.
	def10 := findReport(t, reps, 0.10, true)
	gap := base.Precision - undef10.Precision
	recovered := def10.Precision - undef10.Precision
	t.Logf("10%% attack: gap=%.3f recovered=%.3f (%.0f%%)", gap, recovered, 100*recovered/gap)
	if recovered < gap/2 {
		t.Fatalf("defenses recovered %.3f of a %.3f precision gap, want at least half", recovered, gap)
	}
	if def10.Held+def10.Parked == 0 {
		t.Error("10% defended run triggered no defense at all")
	}
	if def10.Drained == 0 {
		t.Error("flush drained no quarantined samples")
	}
}

// TestDefendedServiceLedgerAndDrain exercises the serving surfaces of a
// defended run directly: every executable sample remains queryable with
// a defense status, quarantine fully drains on flush, and the per-client
// ledger pins the suspicion on the attacker's client identity while the
// trusted loopback keeps full trust.
func TestDefendedServiceLedgerAndDrain(t *testing.T) {
	sc := core.SmallScenario()
	sc.Landscape.Poison.Rate = 0.10
	batch, err := core.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := stream.New(stream.Config{
		EpochSize:    64,
		Thresholds:   sc.Thresholds,
		BCluster:     sc.Enrichment.BCluster,
		Defense:      DefaultDefense(),
		StatsClients: true,
	}, batch.Pipeline)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ctx := context.Background()
	if err := IngestByClient(ctx, svc, batch.Dataset.Events(), 64); err != nil {
		t.Fatal(err)
	}
	if err := svc.Flush(ctx); err != nil {
		t.Fatal(err)
	}

	st := svc.Stats()
	if st.Defense == nil {
		t.Fatal("defended service reports no defense stats")
	}
	if st.Defense.Held != 0 || st.Defense.Parked != 0 {
		t.Errorf("quarantine survived the flush: held=%d parked=%d", st.Defense.Held, st.Defense.Parked)
	}
	if st.Defense.Drained == 0 {
		t.Error("flush drained nothing despite a 10% attack")
	}

	// Every executable sample is queryable and carries a status; the
	// statuses account for the drain counter exactly.
	statuses := map[string]int{}
	attackerSamples := 0
	for _, smp := range batch.Dataset.Samples() {
		v, ok := svc.Sample(smp.MD5)
		if !ok {
			t.Fatalf("sample %s not queryable", smp.MD5)
		}
		if !v.Executable {
			continue
		}
		statuses[v.BStatus]++
		if v.Client != "" {
			attackerSamples++
		}
	}
	if statuses["drained"] != st.Defense.Drained {
		t.Errorf("queryable drained samples %d != drained counter %d", statuses["drained"], st.Defense.Drained)
	}
	if statuses["held"] != 0 || statuses["parked"] != 0 {
		t.Errorf("samples still held/parked after flush: %v", statuses)
	}
	if total := statuses["clustered"] + statuses["drained"]; total != st.ExecutableSamples {
		t.Errorf("statuses cover %d of %d executable samples", total, st.ExecutableSamples)
	}
	if attackerSamples == 0 {
		t.Error("no sample attributed to an attacker client")
	}

	// The ledger: the campaign client accrued suspicion, the loopback
	// did not.
	if len(st.Clients) < 2 {
		t.Fatalf("expected loopback + attacker clients, got %+v", st.Clients)
	}
	var sawLoopback, sawAttacker bool
	for _, cs := range st.Clients {
		switch cs.Client {
		case "":
			sawLoopback = true
			if cs.Distrust != 0 || cs.Suspicion != 0 {
				t.Errorf("trusted loopback accrued distrust: %+v", cs)
			}
		default:
			sawAttacker = true
			if cs.Samples == 0 {
				t.Errorf("attacker client %q delivered no samples", cs.Client)
			}
			if cs.Suspicion == 0 || cs.Distrust <= 0 {
				t.Errorf("attacker client %q accrued no suspicion: %+v", cs.Client, cs)
			}
		}
	}
	if !sawLoopback || !sawAttacker {
		t.Fatalf("ledger missing loopback or attacker entry: %+v", st.Clients)
	}
}

// TestIngestByClientMatchesReplayUndefended pins the attribution path:
// with defenses off, splitting the stream into client-attributed runs
// must not change the final partition — client identity is provenance
// metadata, not analysis input.
func TestIngestByClientMatchesReplayUndefended(t *testing.T) {
	sc := core.SmallScenario()
	sc.Landscape.Poison.Rate = 0.10
	batch, err := core.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := stream.New(stream.Config{
		EpochSize:  64,
		Thresholds: sc.Thresholds,
		BCluster:   sc.Enrichment.BCluster,
	}, batch.Pipeline)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ctx := context.Background()
	if err := IngestByClient(ctx, svc, batch.Dataset.Events(), 64); err != nil {
		t.Fatal(err)
	}
	if err := svc.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	got := svc.BResult()
	if len(got.Clusters) != len(batch.B.Clusters) {
		t.Fatalf("undefended client-attributed replay: %d clusters, batch has %d", len(got.Clusters), len(batch.B.Clusters))
	}
	for i := range got.Clusters {
		if !reflect.DeepEqual(got.Clusters[i].Members, batch.B.Clusters[i].Members) {
			t.Fatalf("cluster %d diverges from batch", i)
		}
	}
}
