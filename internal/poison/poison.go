// Package poison is the adversarial measurement harness: it sweeps the
// attacker's poison rate, runs the undefended batch pipeline and the
// defended streaming pipeline over the same generated event stream, and
// scores both clusterings against ground truth (internal/validity).
//
// The attack is generated inside the landscape (internal/malgen): bridge
// chains that interpolate one victim bot family's behavior into
// another's to force a B-cluster merge, and dilution families that pad a
// victim cluster with near-duplicate noise. Attacker events arrive
// through the ordinary event stream, attributed to the campaign's client
// identity; victim events arrive on the trusted loopback — exactly the
// asymmetry the streaming service's provenance defenses key off.
//
// A sweep answers the two questions the defense design hinges on: how
// much does an undefended clustering degrade as the poison rate rises,
// and how much of that degradation do the online defenses (merge
// resistance, trust penalty, anomaly gate — see internal/bcluster and
// internal/stream) recover.
package poison

import (
	"context"
	"fmt"

	"repro/internal/bcluster"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/malgen"
	"repro/internal/stream"
	"repro/internal/validity"
)

// Report scores one pipeline run at one poison rate. JSON tags are the
// BENCH_poison.json row shape (cmd/benchjson).
type Report struct {
	// Rate is the attacker's share of total event volume.
	Rate float64 `json:"poison_rate"`
	// Defended reports whether the run used the streaming defenses; an
	// undefended row is the batch pipeline.
	Defended bool `json:"defended"`
	// Events, Samples, and PoisonSamples size the run; PoisonSamples
	// counts distinct samples whose ground-truth family is an attacker
	// campaign.
	Events        int `json:"events"`
	Samples       int `json:"samples"`
	PoisonSamples int `json:"poison_samples"`
	// Clusters, Precision, Recall, F, and AdjustedRand are the validity
	// scores of the B partition against ground-truth families.
	Clusters     int     `json:"clusters"`
	Precision    float64 `json:"precision"`
	Recall       float64 `json:"recall"`
	F            float64 `json:"f"`
	AdjustedRand float64 `json:"ari"`
	// Held, Parked, Released, and Drained are the cumulative defense
	// counters of a defended run (zero on batch rows).
	Held     int `json:"held,omitempty"`
	Parked   int `json:"parked,omitempty"`
	Released int `json:"released,omitempty"`
	Drained  int `json:"drained,omitempty"`
	// Unaccounted is the number of executable samples missing from the
	// final partition; the no-silent-drop invariant requires zero.
	Unaccounted int `json:"unaccounted"`
}

// Config parameterizes a sweep.
type Config struct {
	// Scenario is the base experiment; each rate overrides
	// Scenario.Landscape.Poison.Rate.
	Scenario core.Scenario
	// Rates is the poison-rate schedule, e.g. {0, 0.05, 0.10}.
	Rates []float64
	// Defense configures the defended streaming runs; the zero value
	// falls back to DefaultDefense.
	Defense stream.Defense
	// EpochSize and BatchSize shape the streaming replay; 0 selects 64
	// for both.
	EpochSize int
	BatchSize int
}

// DefaultDefense is the defense configuration the sweep, the smoke
// target, and the documentation quote. Merge resistance 3 holds bridges
// between established victim cores while leaving organic growth alone
// (a lone sample closing two three-strong components is already the
// bridge signature; the SmallScenario baseline shows no false holds);
// trust penalty 0.6 pushes a once-suspected client's effective link
// threshold to 0.9, above the 0.75 dilution-to-victim and 5/7 bridge-
// step overlap geometry; quorum 3 arms the cross-perspective anomaly
// gate once a static μ-group has an established presence.
func DefaultDefense() stream.Defense {
	return stream.Defense{MergeResistance: 3, TrustPenalty: 0.6, DisagreeQuorum: 3}
}

// Sweep runs the rate schedule and returns two Reports per rate:
// undefended batch, then defended streaming, both over the same
// generated events.
func Sweep(ctx context.Context, cfg Config) ([]Report, error) {
	if len(cfg.Rates) == 0 {
		cfg.Rates = []float64{0, 0.05, 0.10}
	}
	if !cfg.Defense.Enabled() {
		cfg.Defense = DefaultDefense()
	}
	var out []Report
	for _, rate := range cfg.Rates {
		sc := cfg.Scenario
		sc.Landscape.Poison.Rate = rate
		batch, err := core.Run(sc)
		if err != nil {
			return nil, fmt.Errorf("poison: batch run at rate %g: %w", rate, err)
		}
		truth := TruthFamilies(batch.Dataset)

		undef, err := scoreRun(batch.Dataset, batch.B, truth, rate, false)
		if err != nil {
			return nil, fmt.Errorf("poison: scoring batch at rate %g: %w", rate, err)
		}
		out = append(out, undef)

		def, err := runDefended(ctx, batch, truth, cfg, rate)
		if err != nil {
			return nil, err
		}
		out = append(out, def)
	}
	return out, nil
}

// runDefended replays the batch run's events through a defended
// streaming service — attacker events under their campaign clients —
// and scores the resulting partition.
func runDefended(ctx context.Context, batch *core.Results, truth map[string]string, cfg Config, rate float64) (Report, error) {
	epoch := cfg.EpochSize
	if epoch <= 0 {
		epoch = 64
	}
	svc, err := stream.New(stream.Config{
		EpochSize:  epoch,
		Thresholds: batch.Scenario.Thresholds,
		BCluster:   batch.Scenario.Enrichment.BCluster,
		Defense:    cfg.Defense,
	}, batch.Pipeline)
	if err != nil {
		return Report{}, fmt.Errorf("poison: defended service at rate %g: %w", rate, err)
	}
	defer svc.Close()
	if err := IngestByClient(ctx, svc, batch.Dataset.Events(), cfg.BatchSize); err != nil {
		return Report{}, fmt.Errorf("poison: defended replay at rate %g: %w", rate, err)
	}
	if err := svc.Flush(ctx); err != nil {
		return Report{}, fmt.Errorf("poison: defended flush at rate %g: %w", rate, err)
	}
	rep, err := scoreRun(svc.Dataset(), svc.BResult(), truth, rate, true)
	if err != nil {
		return Report{}, fmt.Errorf("poison: scoring defended run at rate %g: %w", rate, err)
	}
	st := svc.Stats()
	if st.Defense != nil {
		rep.Held = st.Defense.HeldTotal
		rep.Parked = st.Defense.ParkedTotal
		rep.Released = st.Defense.Released
		rep.Drained = st.Defense.Drained
	}
	return rep, nil
}

// IngestByClient replays events in arrival order, attributing each
// attacker family's events to its campaign client (malgen.PoisonClient)
// and everything else to the trusted loopback. Consecutive same-client
// events are batched into one ingest call, capped at batchSize (0
// selects 64), so ordering is preserved exactly.
func IngestByClient(ctx context.Context, svc *stream.Service, events []dataset.Event, batchSize int) error {
	if batchSize <= 0 {
		batchSize = 64
	}
	var run []dataset.Event
	client := ""
	flush := func() error {
		if len(run) == 0 {
			return nil
		}
		err := svc.IngestFrom(ctx, client, run)
		run = run[:0]
		return err
	}
	for _, e := range events {
		c := malgen.PoisonClient(e.TruthFamily)
		if c != client || len(run) >= batchSize {
			if err := flush(); err != nil {
				return err
			}
			client = c
		}
		run = append(run, e)
	}
	return flush()
}

// TruthFamilies extracts the ground-truth sample→family labeling.
func TruthFamilies(ds *dataset.Dataset) map[string]string {
	truth := make(map[string]string, ds.SampleCount())
	for _, smp := range ds.Samples() {
		truth[smp.MD5] = smp.TruthFamily
	}
	return truth
}

// scoreRun turns one clustering into a Report.
func scoreRun(ds *dataset.Dataset, b *bcluster.Result, truth map[string]string, rate float64, defended bool) (Report, error) {
	clusters := make([][]string, len(b.Clusters))
	clustered := 0
	for i, c := range b.Clusters {
		clusters[i] = c.Members
		clustered += len(c.Members)
	}
	rep, err := validity.Compare(clusters, truth)
	if err != nil {
		return Report{}, err
	}
	poisonSamples := 0
	for _, fam := range truth {
		if malgen.IsPoisonFamily(fam) {
			poisonSamples++
		}
	}
	return Report{
		Rate:          rate,
		Defended:      defended,
		Events:        ds.EventCount(),
		Samples:       ds.SampleCount(),
		PoisonSamples: poisonSamples,
		Clusters:      rep.Clusters,
		Precision:     rep.Precision,
		Recall:        rep.Recall,
		F:             rep.F,
		AdjustedRand:  rep.AdjustedRand,
		Unaccounted:   ds.ExecutableSampleCount() - clustered,
	}, nil
}
