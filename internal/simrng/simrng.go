// Package simrng provides deterministic, named random-number streams.
//
// Every stochastic decision in the simulation draws from a stream derived
// from a root seed and a hierarchical name. Two runs with the same root
// seed produce byte-identical results, and adding a new consumer stream
// does not perturb existing streams (unlike sharing a single rand.Rand).
package simrng

import (
	"hash/fnv"
	"math"
	"math/rand"
	"sort"
)

// Source derives independent deterministic streams from a root seed.
// The zero value is a valid source with seed 0.
type Source struct {
	seed uint64
}

// New returns a Source rooted at the given seed.
func New(seed uint64) *Source {
	return &Source{seed: seed}
}

// Seed reports the root seed of the source.
func (s *Source) Seed() uint64 {
	return s.seed
}

// Child returns a Source whose streams are independent from the parent's
// and from any sibling's. It is used to give each subsystem its own
// namespace.
func (s *Source) Child(name string) *Source {
	return &Source{seed: deriveSeed(s.seed, name)}
}

// Stream returns a new deterministic *rand.Rand for the given name.
// Repeated calls with the same name return generators with identical
// sequences; callers that need evolving state must retain the generator.
func (s *Source) Stream(name string) *rand.Rand {
	return rand.New(rand.NewSource(int64(deriveSeed(s.seed, name))))
}

// deriveSeed mixes the parent seed with a name using FNV-1a followed by a
// splitmix64 finalizer so that structurally similar names map to
// well-separated seeds.
func deriveSeed(seed uint64, name string) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for i := range buf {
		buf[i] = byte(seed >> (8 * i))
	}
	_, _ = h.Write(buf[:])
	_, _ = h.Write([]byte(name))
	return splitmix64(h.Sum64())
}

// splitmix64 is the finalizer of the SplitMix64 generator; it is a strong
// 64-bit mixing function.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Pick returns a uniformly random element of items. It panics if items is
// empty, mirroring the behaviour of indexing an empty slice.
func Pick[T any](r *rand.Rand, items []T) T {
	return items[r.Intn(len(items))]
}

// WeightedIndex returns an index into weights sampled proportionally to the
// weight values. Non-positive weights are treated as zero. It panics if the
// total weight is not positive.
func WeightedIndex(r *rand.Rand, weights []float64) int {
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		panic("simrng: WeightedIndex requires a positive total weight")
	}
	x := r.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		if x < w {
			return i
		}
		x -= w
	}
	// Floating-point slack: fall back to the last positive weight.
	for i := len(weights) - 1; i >= 0; i-- {
		if weights[i] > 0 {
			return i
		}
	}
	panic("simrng: unreachable")
}

// Poisson samples a Poisson-distributed count with the given mean using
// Knuth's algorithm for small means and a normal approximation for large
// ones. A non-positive mean yields 0.
func Poisson(r *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 30 {
		// Normal approximation with continuity correction.
		n := int(r.NormFloat64()*math.Sqrt(mean) + mean + 0.5)
		if n < 0 {
			return 0
		}
		return n
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// SampleWithoutReplacement returns k distinct integers in [0, n) in random
// order. If k >= n it returns a permutation of [0, n).
func SampleWithoutReplacement(r *rand.Rand, n, k int) []int {
	if k >= n {
		return r.Perm(n)
	}
	// Partial Fisher-Yates over a sparse map keeps this O(k) in memory.
	swapped := make(map[int]int, k)
	out := make([]int, 0, k)
	for i := 0; i < k; i++ {
		j := i + r.Intn(n-i)
		vi, ok := swapped[i]
		if !ok {
			vi = i
		}
		vj, ok := swapped[j]
		if !ok {
			vj = j
		}
		swapped[i], swapped[j] = vj, vi
		out = append(out, vj)
	}
	return out
}

// SortedKeys returns the keys of m in sorted order. Simulation code must
// never range over a map when the iteration order feeds an RNG decision;
// this helper makes the deterministic form convenient.
func SortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
