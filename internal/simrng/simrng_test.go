package simrng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestStreamDeterminism(t *testing.T) {
	s := New(42)
	a := s.Stream("alpha")
	b := s.Stream("alpha")
	for i := 0; i < 100; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("draw %d: streams diverged: %d != %d", i, got, want)
		}
	}
}

func TestStreamIndependence(t *testing.T) {
	s := New(42)
	a := s.Stream("alpha")
	b := s.Stream("beta")
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("streams alpha and beta collided %d/64 times", same)
	}
}

func TestChildNamespaces(t *testing.T) {
	root := New(7)
	c1 := root.Child("sgnet").Stream("events")
	c2 := root.Child("sandbox").Stream("events")
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("same stream name under different children must differ")
	}

	// A child is itself deterministic.
	x := root.Child("sgnet").Stream("events").Uint64()
	y := root.Child("sgnet").Stream("events").Uint64()
	if x != y {
		t.Fatalf("child streams not reproducible: %d != %d", x, y)
	}
}

func TestDeriveSeedSeparatesSimilarNames(t *testing.T) {
	seen := make(map[uint64]string)
	names := []string{"a", "b", "aa", "ab", "ba", "a/b", "b/a", "", "a a", "a  a"}
	for _, n := range names {
		sd := deriveSeed(1, n)
		if prev, ok := seen[sd]; ok {
			t.Fatalf("seed collision between %q and %q", prev, n)
		}
		seen[sd] = n
	}
}

func TestPick(t *testing.T) {
	r := New(1).Stream("pick")
	items := []string{"x", "y", "z"}
	counts := map[string]int{}
	for i := 0; i < 3000; i++ {
		counts[Pick(r, items)]++
	}
	for _, it := range items {
		if counts[it] < 800 || counts[it] > 1200 {
			t.Errorf("Pick is not roughly uniform: %v", counts)
		}
	}
}

func TestWeightedIndex(t *testing.T) {
	r := New(1).Stream("weighted")
	weights := []float64{1, 0, 3}
	counts := make([]int, 3)
	for i := 0; i < 4000; i++ {
		counts[WeightedIndex(r, weights)]++
	}
	if counts[1] != 0 {
		t.Errorf("zero-weight index selected %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if ratio < 2.5 || ratio > 3.5 {
		t.Errorf("weight ratio off: got %.2f want ~3.0 (counts %v)", ratio, counts)
	}
}

func TestWeightedIndexPanicsOnZeroTotal(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-positive total weight")
		}
	}()
	WeightedIndex(New(1).Stream("w"), []float64{0, -1})
}

func TestPoissonMean(t *testing.T) {
	r := New(9).Stream("poisson")
	for _, mean := range []float64{0.5, 4, 60} {
		var sum int
		const n = 5000
		for i := 0; i < n; i++ {
			sum += Poisson(r, mean)
		}
		got := float64(sum) / n
		if math.Abs(got-mean) > 0.15*mean+0.1 {
			t.Errorf("Poisson(%v): empirical mean %.3f too far off", mean, got)
		}
	}
}

func TestPoissonEdgeCases(t *testing.T) {
	r := New(9).Stream("poisson-edge")
	if got := Poisson(r, 0); got != 0 {
		t.Errorf("Poisson(0) = %d, want 0", got)
	}
	if got := Poisson(r, -3); got != 0 {
		t.Errorf("Poisson(-3) = %d, want 0", got)
	}
}

func TestSampleWithoutReplacement(t *testing.T) {
	r := New(3).Stream("sample")
	got := SampleWithoutReplacement(r, 100, 10)
	if len(got) != 10 {
		t.Fatalf("len = %d, want 10", len(got))
	}
	seen := map[int]bool{}
	for _, v := range got {
		if v < 0 || v >= 100 {
			t.Fatalf("value %d out of range", v)
		}
		if seen[v] {
			t.Fatalf("duplicate value %d", v)
		}
		seen[v] = true
	}
}

func TestSampleWithoutReplacementFull(t *testing.T) {
	r := New(3).Stream("sample-full")
	got := SampleWithoutReplacement(r, 5, 9)
	if len(got) != 5 {
		t.Fatalf("len = %d, want 5 (full permutation)", len(got))
	}
}

func TestSampleWithoutReplacementProperty(t *testing.T) {
	r := New(11).Stream("sample-prop")
	f := func(n8, k8 uint8) bool {
		n := int(n8%200) + 1
		k := int(k8) % (n + 3)
		got := SampleWithoutReplacement(r, n, k)
		want := k
		if want > n {
			want = n
		}
		if len(got) != want {
			return false
		}
		seen := make(map[int]bool, len(got))
		for _, v := range got {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[string]int{"c": 1, "a": 2, "b": 3}
	got := SortedKeys(m)
	want := []string{"a", "b", "c"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SortedKeys = %v, want %v", got, want)
		}
	}
}

func TestSplitmix64NotIdentity(t *testing.T) {
	f := func(x uint64) bool {
		y := splitmix64(x)
		return y != x || x == 0x61c8864680b583eb // the single fixed point family is astronomically unlikely; accept equality only if mixing round-trips
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSourceSeed(t *testing.T) {
	if got := New(42).Seed(); got != 42 {
		t.Errorf("Seed = %d, want 42", got)
	}
}

func TestWeightedIndexFloatingSlack(t *testing.T) {
	// All weight on the final index exercises the fallback path.
	r := New(5).Stream("slack")
	for i := 0; i < 100; i++ {
		if got := WeightedIndex(r, []float64{0, 0, 1e-9}); got != 2 {
			t.Fatalf("WeightedIndex = %d, want 2", got)
		}
	}
}
