package validity

import (
	"errors"
	"fmt"
	"math"
	"testing"
	"testing/quick"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestComparePerfect(t *testing.T) {
	clusters := [][]string{{"a1", "a2"}, {"b1", "b2", "b3"}}
	truth := map[string]string{"a1": "A", "a2": "A", "b1": "B", "b2": "B", "b3": "B"}
	rep, err := Compare(clusters, truth)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(rep.Precision, 1) || !approx(rep.Recall, 1) || !approx(rep.F, 1) {
		t.Errorf("perfect clustering scored %+v", rep)
	}
	if !approx(rep.AdjustedRand, 1) {
		t.Errorf("ARI = %v, want 1", rep.AdjustedRand)
	}
	if rep.Items != 5 || rep.Clusters != 2 || rep.References != 2 {
		t.Errorf("counts: %+v", rep)
	}
}

func TestCompareOverSplit(t *testing.T) {
	// Every item its own cluster: perfect precision, poor recall.
	clusters := [][]string{{"a1"}, {"a2"}, {"a3"}, {"a4"}}
	truth := map[string]string{"a1": "A", "a2": "A", "a3": "A", "a4": "A"}
	rep, err := Compare(clusters, truth)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(rep.Precision, 1) {
		t.Errorf("precision = %v, want 1", rep.Precision)
	}
	if !approx(rep.Recall, 0.25) {
		t.Errorf("recall = %v, want 0.25", rep.Recall)
	}
}

func TestCompareOverMerged(t *testing.T) {
	// Everything in one cluster: perfect recall, precision = largest class
	// share.
	clusters := [][]string{{"a1", "a2", "a3", "b1"}}
	truth := map[string]string{"a1": "A", "a2": "A", "a3": "A", "b1": "B"}
	rep, err := Compare(clusters, truth)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(rep.Recall, 1) {
		t.Errorf("recall = %v, want 1", rep.Recall)
	}
	if !approx(rep.Precision, 0.75) {
		t.Errorf("precision = %v, want 0.75", rep.Precision)
	}
	if rep.AdjustedRand > 0.5 {
		t.Errorf("ARI = %v for a fully merged clustering", rep.AdjustedRand)
	}
}

func TestCompareKnownARI(t *testing.T) {
	// Hand-computed example:
	// clusters: {a1,a2,b1}, {b2,b3,a3}
	// truth: A={a1,a2,a3}, B={b1,b2,b3}
	clusters := [][]string{{"a1", "a2", "b1"}, {"b2", "b3", "a3"}}
	truth := map[string]string{
		"a1": "A", "a2": "A", "a3": "A",
		"b1": "B", "b2": "B", "b3": "B",
	}
	rep, err := Compare(clusters, truth)
	if err != nil {
		t.Fatal(err)
	}
	// sumCells = C(2,2)+C(1,2)+C(2,2)+C(1,2) = 1+0+1+0 = 2
	// sumRows = 2*C(3,2) = 6; sumCols = 6; total = C(6,2) = 15
	// expected = 36/15 = 2.4; max = 6; ARI = (2-2.4)/(6-2.4) = -1/9
	want := -1.0 / 9.0
	if !approx(rep.AdjustedRand, want) {
		t.Errorf("ARI = %v, want %v", rep.AdjustedRand, want)
	}
	if !approx(rep.Precision, 4.0/6.0) || !approx(rep.Recall, 4.0/6.0) {
		t.Errorf("P/R = %v/%v, want 2/3", rep.Precision, rep.Recall)
	}
}

func TestCompareErrors(t *testing.T) {
	if _, err := Compare(nil, nil); err == nil {
		t.Error("empty truth must error")
	}
	truth := map[string]string{"a": "A"}
	if _, err := Compare([][]string{{"b"}}, truth); err == nil {
		t.Error("unlabeled item must error")
	}
	if _, err := Compare([][]string{{"a"}, {"a"}}, truth); err == nil {
		t.Error("item in two clusters must error")
	}
	if _, err := Compare([][]string{}, truth); err == nil {
		t.Error("no items must error")
	}
}

func TestCompareIgnoresEmptyClusters(t *testing.T) {
	clusters := [][]string{{"a1"}, {}, {"a2"}}
	truth := map[string]string{"a1": "A", "a2": "A"}
	rep, err := Compare(clusters, truth)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clusters != 2 {
		t.Errorf("clusters = %d, want 2 (empty skipped)", rep.Clusters)
	}
}

func TestGroupByLabelRoundTrip(t *testing.T) {
	labels := map[string]string{"x": "1", "y": "1", "z": "2"}
	groups := GroupByLabel(labels)
	rep, err := Compare(groups, labels)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(rep.F, 1) || !approx(rep.AdjustedRand, 1) {
		t.Errorf("self-comparison must be perfect: %+v", rep)
	}
}

func TestMetricsBoundedProperty(t *testing.T) {
	f := func(assign []uint8) bool {
		if len(assign) < 2 {
			return true
		}
		truth := make(map[string]string, len(assign))
		clusterOf := make(map[int][]string)
		for i, v := range assign {
			id := fmt.Sprintf("s%d", i)
			truth[id] = fmt.Sprintf("ref%d", v%4)
			c := int(v>>4) % 5
			clusterOf[c] = append(clusterOf[c], id)
		}
		clusters := make([][]string, 0, len(clusterOf))
		for _, m := range clusterOf {
			clusters = append(clusters, m)
		}
		rep, err := Compare(clusters, truth)
		if err != nil {
			return false
		}
		return rep.Precision >= 0 && rep.Precision <= 1 &&
			rep.Recall >= 0 && rep.Recall <= 1 &&
			rep.F >= 0 && rep.F <= 1 &&
			rep.AdjustedRand >= -1 && rep.AdjustedRand <= 1.0000001
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReportString(t *testing.T) {
	rep := Report{Items: 5, Clusters: 2, References: 2, Precision: 1, Recall: 0.5, F: 2.0 / 3, AdjustedRand: 0.3}
	s := rep.String()
	if s == "" || len(s) < 20 {
		t.Errorf("String = %q", s)
	}
}

// TestCompareDegenerateInputs pins the contract for malformed and
// partial inputs: typed errors for inputs with nothing to score, counted
// exclusions for empty cluster slices and truth-only samples, and hard
// errors for unlabeled or duplicated items.
func TestCompareDegenerateInputs(t *testing.T) {
	truth := map[string]string{"a1": "A", "a2": "A", "b1": "B"}
	cases := []struct {
		name     string
		clusters [][]string
		truth    map[string]string
		wantErr  error // sentinel matched with errors.Is; nil = success
		anyErr   bool  // expect some error, no sentinel defined
		check    func(t *testing.T, rep Report)
	}{
		{name: "nil truth", clusters: [][]string{{"a1"}}, truth: nil, wantErr: ErrEmptyTruth},
		{name: "empty truth", clusters: [][]string{{"a1"}}, truth: map[string]string{}, wantErr: ErrEmptyTruth},
		{name: "nil clusters", clusters: nil, truth: truth, wantErr: ErrNoItems},
		{name: "all clusters empty", clusters: [][]string{{}, nil, {}}, truth: truth, wantErr: ErrNoItems},
		{name: "unlabeled item", clusters: [][]string{{"zz"}}, truth: truth, anyErr: true},
		{name: "duplicate item", clusters: [][]string{{"a1"}, {"a1"}}, truth: truth, anyErr: true},
		{
			name:     "empty slices counted and excluded",
			clusters: [][]string{{"a1", "a2"}, {}, {"b1"}, nil},
			truth:    truth,
			check: func(t *testing.T, rep Report) {
				if rep.EmptyClusters != 2 {
					t.Errorf("EmptyClusters = %d, want 2", rep.EmptyClusters)
				}
				if rep.Clusters != 2 {
					t.Errorf("Clusters = %d, want 2 (empties excluded)", rep.Clusters)
				}
				if !approx(rep.Precision, 1) || !approx(rep.Recall, 1) {
					t.Errorf("perfect partition with empty slices scored %+v", rep)
				}
			},
		},
		{
			name:     "truth-only samples counted and excluded",
			clusters: [][]string{{"a1", "a2"}},
			truth:    truth,
			check: func(t *testing.T, rep Report) {
				if rep.Items != 2 || rep.TruthOnly != 1 {
					t.Errorf("Items=%d TruthOnly=%d, want 2/1", rep.Items, rep.TruthOnly)
				}
				if rep.References != 1 {
					t.Errorf("References = %d, want 1 (unseen class excluded)", rep.References)
				}
				if !approx(rep.Precision, 1) || !approx(rep.Recall, 1) {
					t.Errorf("clean partial clustering scored %+v", rep)
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rep, err := Compare(tc.clusters, tc.truth)
			switch {
			case tc.wantErr != nil:
				if !errors.Is(err, tc.wantErr) {
					t.Fatalf("err = %v, want %v", err, tc.wantErr)
				}
			case tc.anyErr:
				if err == nil {
					t.Fatalf("want error, got %+v", rep)
				}
			default:
				if err != nil {
					t.Fatal(err)
				}
				tc.check(t, rep)
			}
		})
	}
}
