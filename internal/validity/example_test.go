package validity_test

import (
	"fmt"

	"repro/internal/validity"
)

// Example scores an over-split clustering: pure clusters (precision 1)
// that fragment one true family (recall 0.5).
func Example() {
	clusters := [][]string{
		{"s1", "s2"},
		{"s3", "s4"},
	}
	truth := map[string]string{
		"s1": "allaple", "s2": "allaple", "s3": "allaple", "s4": "allaple",
	}
	rep, err := validity.Compare(clusters, truth)
	if err != nil {
		panic(err)
	}
	fmt.Printf("precision=%.2f recall=%.2f F=%.2f\n", rep.Precision, rep.Recall, rep.F)

	// Output:
	// precision=1.00 recall=0.50 F=0.67
}
