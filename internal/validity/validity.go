// Package validity quantifies clustering quality against ground truth.
//
// The paper could only argue cluster correctness qualitatively (AV
// labels, manual inspection): the true family structure of its corpus was
// unknown. The reproduction's corpus is synthetic, so the true
// variant/behaviour of every sample is known, and each clustering
// (EPM M-clusters, behavioral B-clusters, the peHash baseline) can be
// scored exactly.
//
// Metrics follow Bayer et al. (NDSS'09): precision (clusters do not mix
// references), recall (references are not fragmented), their harmonic
// mean, plus the Adjusted Rand Index as a chance-corrected summary.
package validity

import (
	"errors"
	"fmt"
)

// Degenerate-input errors. Compare wraps them, so callers branch with
// errors.Is instead of string matching.
var (
	// ErrEmptyTruth rejects a nil or empty reference labeling: there is
	// nothing to score against.
	ErrEmptyTruth = errors.New("validity: empty truth")
	// ErrNoItems rejects a clustering with no members at all (nil, empty,
	// or made entirely of empty cluster slices): every metric would be
	// 0/0.
	ErrNoItems = errors.New("validity: no items to score")
)

// Report scores one clustering against a reference partition.
type Report struct {
	// Items is the number of scored items (present in both partitions).
	Items int
	// TruthOnly counts reference items no cluster contains. They are
	// excluded from every metric — the clustering is scored on what it
	// clustered, not penalized for samples the pipeline never saw (e.g.
	// non-executable samples that have ground truth but no behavior).
	TruthOnly int
	// EmptyClusters counts zero-member cluster slices in the input; they
	// are excluded from Clusters and from the precision average.
	EmptyClusters int
	// Clusters and References are the partition sizes.
	Clusters   int
	References int
	// Precision is the average fraction of a cluster covered by its
	// best-matching reference class.
	Precision float64
	// Recall is the average fraction of a reference class covered by its
	// best-matching cluster.
	Recall float64
	// F is the harmonic mean of Precision and Recall.
	F float64
	// AdjustedRand is the chance-corrected Rand index in [-1, 1].
	AdjustedRand float64
}

// String renders the report compactly.
func (r Report) String() string {
	return fmt.Sprintf("items=%d clusters=%d refs=%d precision=%.3f recall=%.3f F=%.3f ARI=%.3f",
		r.Items, r.Clusters, r.References, r.Precision, r.Recall, r.F, r.AdjustedRand)
}

// Compare scores clusters (lists of item IDs) against truth (item ID →
// reference label). Items without a truth label are an error: the caller
// chooses what to score. The reverse is not — truth entries no cluster
// covers are excluded and counted in Report.TruthOnly, and empty cluster
// slices are excluded and counted in Report.EmptyClusters. An empty
// truth map or a clustering with no members at all is a degenerate input
// and returns ErrEmptyTruth or ErrNoItems.
func Compare(clusters [][]string, truth map[string]string) (Report, error) {
	if len(truth) == 0 {
		return Report{}, ErrEmptyTruth
	}
	seen := make(map[string]bool)
	// Contingency counts: cluster index × reference label.
	contingency := make([]map[string]int, len(clusters))
	refTotals := make(map[string]int)
	n := 0
	for ci, members := range clusters {
		contingency[ci] = make(map[string]int)
		for _, id := range members {
			label, ok := truth[id]
			if !ok {
				return Report{}, fmt.Errorf("validity: item %q has no truth label", id)
			}
			if seen[id] {
				return Report{}, fmt.Errorf("validity: item %q appears in multiple clusters", id)
			}
			seen[id] = true
			contingency[ci][label]++
			refTotals[label]++
			n++
		}
	}
	if n == 0 {
		return Report{}, ErrNoItems
	}

	rep := Report{Items: n, TruthOnly: len(truth) - n, Clusters: 0, References: len(refTotals)}
	for _, members := range clusters {
		if len(members) == 0 {
			rep.EmptyClusters++
		}
	}

	// Precision: per cluster, the dominant reference share.
	var precSum float64
	for _, counts := range contingency {
		if len(counts) == 0 {
			continue
		}
		rep.Clusters++
		best := 0
		for _, c := range counts {
			if c > best {
				best = c
			}
		}
		precSum += float64(best)
	}
	rep.Precision = precSum / float64(n)

	// Recall: per reference class, the dominant cluster share.
	bestPerRef := make(map[string]int, len(refTotals))
	for _, counts := range contingency {
		for label, c := range counts {
			if c > bestPerRef[label] {
				bestPerRef[label] = c
			}
		}
	}
	var recSum float64
	for _, c := range bestPerRef {
		recSum += float64(c)
	}
	rep.Recall = recSum / float64(n)

	if rep.Precision+rep.Recall > 0 {
		rep.F = 2 * rep.Precision * rep.Recall / (rep.Precision + rep.Recall)
	}

	rep.AdjustedRand = adjustedRand(contingency, refTotals, n)
	return rep, nil
}

// comb2 computes n choose 2.
func comb2(n int) float64 {
	return float64(n) * float64(n-1) / 2
}

// adjustedRand computes the ARI from the contingency table.
func adjustedRand(contingency []map[string]int, refTotals map[string]int, n int) float64 {
	var sumCells, sumRows, sumCols float64
	for _, counts := range contingency {
		rowTotal := 0
		for _, c := range counts {
			sumCells += comb2(c)
			rowTotal += c
		}
		sumRows += comb2(rowTotal)
	}
	for _, c := range refTotals {
		sumCols += comb2(c)
	}
	total := comb2(n)
	if total == 0 {
		return 1
	}
	expected := sumRows * sumCols / total
	maxIndex := (sumRows + sumCols) / 2
	if maxIndex == expected {
		// Degenerate partitions (e.g. everything in one cluster on both
		// sides): the Rand agreement is exact.
		return 1
	}
	return (sumCells - expected) / (maxIndex - expected)
}

// GroupByLabel inverts an item→label map into clusters, a convenience for
// scoring one labeling against another.
func GroupByLabel(labels map[string]string) [][]string {
	groups := make(map[string][]string)
	for id, label := range labels {
		groups[label] = append(groups[label], id)
	}
	out := make([][]string, 0, len(groups))
	for _, members := range groups {
		out = append(out, members)
	}
	return out
}
