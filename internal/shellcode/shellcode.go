// Package shellcode models the π (payload) dimension of the EGPM model:
// the injected shellcode, its encoded download instructions, and a
// Nepenthes-style analyzer that recognizes the shellcode and emulates the
// network actions it requests.
//
// SGNET identifies injected shellcode through the Argos taint oracle and
// hands it to Nepenthes modules that understand its intended behaviour:
// which protocol the victim must use to fetch the malware (FTP, HTTP,
// and several Nepenthes-specific transfer protocols), the filename
// requested, the server port, and the interaction type — PUSH (the
// attacker connects and pushes the binary), PULL / phone-home (the victim
// connects back to the attacker), or a central repository (the victim
// fetches from a third party). Those four facts are exactly the paper's
// π classification features (Table 1).
package shellcode

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/netmodel"
)

// Interaction is the download interaction type.
type Interaction int

// Interaction types distinguished by the paper.
const (
	// Push means the attacker actively connects to the victim and pushes
	// the sample (e.g. Allaple on TCP 9988).
	Push Interaction = iota + 1
	// Pull (phone-home) means the victim connects back to the attacker.
	Pull
	// Central means the victim downloads from a third-party repository.
	Central
)

// String implements fmt.Stringer.
func (i Interaction) String() string {
	switch i {
	case Push:
		return "PUSH"
	case Pull:
		return "PULL"
	case Central:
		return "central"
	default:
		return fmt.Sprintf("Interaction(%d)", int(i))
	}
}

// Protocols the Nepenthes-style analyzer understands.
var knownProtocols = map[string]bool{
	"ftp":      true,
	"http":     true,
	"tftp":     true,
	"csend":    true, // Nepenthes-specific PUSH transfer
	"creceive": true, // Nepenthes-specific PULL transfer
	"blink":    true, // Nepenthes-specific single-connection transfer
}

// Spec is the ground-truth description of a shellcode's download logic.
// The landscape generator attaches one Spec per propagation strategy.
type Spec struct {
	// Protocol is the transfer protocol ("ftp", "http", "tftp", "csend",
	// "creceive", "blink").
	Protocol string
	// Interaction is the download interaction type.
	Interaction Interaction
	// Port is the server port involved in the protocol interaction.
	Port int
	// Filename is the filename requested in the protocol interaction;
	// empty for protocols that do not exchange filenames.
	Filename string
	// RandomFilename replaces Filename with a fresh random name at every
	// attack (the paper's example of simple per-attack randomization that
	// EPM must cope with).
	RandomFilename bool
	// Repository is the third-party server for Central interactions; it is
	// ignored for Push/Pull, where the peer is the attacker itself.
	Repository netmodel.IP
}

// Validate checks the spec.
func (s Spec) Validate() error {
	if !knownProtocols[s.Protocol] {
		return fmt.Errorf("shellcode: unknown protocol %q", s.Protocol)
	}
	if s.Interaction < Push || s.Interaction > Central {
		return fmt.Errorf("shellcode: invalid interaction %d", int(s.Interaction))
	}
	if s.Port <= 0 || s.Port > 65535 {
		return fmt.Errorf("shellcode: invalid port %d", s.Port)
	}
	if s.Interaction == Central && s.Repository == 0 {
		return errors.New("shellcode: central interaction needs a repository address")
	}
	return nil
}

// Action is the decoded intent of one concrete shellcode instance: what
// the Nepenthes analyzer recovers and the download emulator executes.
type Action struct {
	Protocol    string
	Interaction Interaction
	Port        int
	Filename    string
	// Source is the host the malware is fetched from or pushed by: the
	// attacker for Push/Pull, the repository for Central.
	Source netmodel.IP
}

// Encoding layout. Real shellcode hides its parameters behind a decoder
// stub; we reproduce that with a recognizable stub plus a XOR-obfuscated
// parameter block, so the analyzer has real decoding work to do:
//
//	[ jmp short (2) | magic "NPSC" (4) | xor key (1) | body len (2) | body^key ]
//	body = proto \0 interaction(1) port(2) source(4) filename \0
var magic = []byte{'N', 'P', 'S', 'C'}

const (
	stubLen   = 2 + 4 + 1 + 2
	jmpOpcode = 0xEB
)

// Encode produces the shellcode bytes for one attack instance. attacker is
// the source shipping the exploit; r drives the XOR key and any filename
// randomization.
func Encode(s Spec, attacker netmodel.IP, r *rand.Rand) ([]byte, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	filename := s.Filename
	if s.RandomFilename {
		filename = randomFilename(r)
	}
	source := attacker
	if s.Interaction == Central {
		source = s.Repository
	}

	body := make([]byte, 0, len(s.Protocol)+1+1+2+4+len(filename)+1)
	body = append(body, s.Protocol...)
	body = append(body, 0)
	body = append(body, byte(s.Interaction))
	body = binary.LittleEndian.AppendUint16(body, uint16(s.Port))
	body = binary.LittleEndian.AppendUint32(body, uint32(source))
	body = append(body, filename...)
	body = append(body, 0)

	key := byte(r.Intn(255) + 1)
	out := make([]byte, 0, stubLen+len(body))
	out = append(out, jmpOpcode, byte(len(magic)+3))
	out = append(out, magic...)
	out = append(out, key)
	out = binary.LittleEndian.AppendUint16(out, uint16(len(body)))
	for _, b := range body {
		out = append(out, b^key)
	}
	return out, nil
}

// ErrUnrecognized reports shellcode the analyzer cannot interpret,
// mirroring Nepenthes' behaviour on unknown shellcode.
var ErrUnrecognized = errors.New("shellcode: unrecognized shellcode")

// Analyze recognizes the decoder stub anywhere in the payload, decodes the
// parameter block, and returns the download action.
func Analyze(payload []byte) (Action, error) {
	idx := findMagic(payload)
	if idx < 0 {
		return Action{}, ErrUnrecognized
	}
	p := payload[idx+len(magic):]
	if len(p) < 3 {
		return Action{}, fmt.Errorf("%w: stub truncated", ErrUnrecognized)
	}
	key := p[0]
	bodyLen := int(binary.LittleEndian.Uint16(p[1:3]))
	if len(p) < 3+bodyLen {
		return Action{}, fmt.Errorf("%w: body truncated", ErrUnrecognized)
	}
	body := make([]byte, bodyLen)
	for i := range body {
		body[i] = p[3+i] ^ key
	}

	protoEnd := indexByte(body, 0)
	if protoEnd < 0 || len(body) < protoEnd+1+1+2+4+1 {
		return Action{}, fmt.Errorf("%w: malformed body", ErrUnrecognized)
	}
	a := Action{Protocol: string(body[:protoEnd])}
	if !knownProtocols[a.Protocol] {
		return Action{}, fmt.Errorf("%w: unknown protocol %q", ErrUnrecognized, a.Protocol)
	}
	rest := body[protoEnd+1:]
	a.Interaction = Interaction(rest[0])
	if a.Interaction < Push || a.Interaction > Central {
		return Action{}, fmt.Errorf("%w: invalid interaction %d", ErrUnrecognized, rest[0])
	}
	a.Port = int(binary.LittleEndian.Uint16(rest[1:3]))
	a.Source = netmodel.IP(binary.LittleEndian.Uint32(rest[3:7]))
	nameEnd := indexByte(rest[7:], 0)
	if nameEnd < 0 {
		return Action{}, fmt.Errorf("%w: unterminated filename", ErrUnrecognized)
	}
	a.Filename = string(rest[7 : 7+nameEnd])
	return a, nil
}

func findMagic(p []byte) int {
	for i := 0; i+len(magic) <= len(p); i++ {
		if p[i] == magic[0] && byteEqual(p[i:i+len(magic)], magic) {
			return i
		}
	}
	return -1
}

func byteEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func indexByte(p []byte, b byte) int {
	for i, v := range p {
		if v == b {
			return i
		}
	}
	return -1
}

// randomFilename builds an 8-letter random name with an .exe suffix,
// modeling the random FTP filenames the paper mentions.
func randomFilename(r *rand.Rand) string {
	const letters = "abcdefghijklmnopqrstuvwxyz"
	b := make([]byte, 8, 12)
	for i := range b {
		b[i] = letters[r.Intn(len(letters))]
	}
	return string(append(b, ".exe"...))
}

// DownloadOutcome is the result class of one emulated download.
type DownloadOutcome int

// Download outcomes. The paper reports that some Nepenthes download
// modules fail, leaving truncated or corrupted samples that dynamic
// analysis cannot execute (6353 collected, 5165 executable).
const (
	// DownloadOK means the full binary was retrieved.
	DownloadOK DownloadOutcome = iota + 1
	// DownloadTruncated means the transfer aborted midway; a prefix of the
	// binary was stored.
	DownloadTruncated
	// DownloadFailed means no payload was retrieved at all.
	DownloadFailed
)

// String implements fmt.Stringer.
func (o DownloadOutcome) String() string {
	switch o {
	case DownloadOK:
		return "ok"
	case DownloadTruncated:
		return "truncated"
	case DownloadFailed:
		return "failed"
	default:
		return fmt.Sprintf("DownloadOutcome(%d)", int(o))
	}
}

// FailureModel configures stochastic download failures per protocol.
type FailureModel struct {
	// TruncateProb is the probability that a download aborts midway.
	TruncateProb float64
	// FailProb is the probability that a download yields nothing.
	FailProb float64
}

// Emulate performs the download emulation: given the action and the bytes
// the attacker would serve, it applies the failure model and returns the
// stored payload and outcome. A truncated download keeps a random 25-75%
// prefix of the original.
func Emulate(_ Action, full []byte, fm FailureModel, r *rand.Rand) ([]byte, DownloadOutcome) {
	x := r.Float64()
	switch {
	case x < fm.FailProb:
		return nil, DownloadFailed
	case x < fm.FailProb+fm.TruncateProb && len(full) > 4:
		cut := len(full)/4 + r.Intn(len(full)/2)
		return full[:cut], DownloadTruncated
	default:
		out := make([]byte, len(full))
		copy(out, full)
		return out, DownloadOK
	}
}
