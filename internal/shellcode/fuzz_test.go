package shellcode

import (
	"testing"

	"repro/internal/simrng"
)

// FuzzAnalyze drives the shellcode analyzer with mutated payloads: it
// must never panic, and accepted payloads must decode to well-formed
// actions.
func FuzzAnalyze(f *testing.F) {
	r := simrng.New(1).Stream("fuzz")
	valid, err := Encode(Spec{
		Protocol:    "ftp",
		Interaction: Pull,
		Port:        21,
		Filename:    "ftpupd.exe",
	}, 0x0a000001, r)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)-3])
	f.Add([]byte("NPSC"))
	f.Add([]byte("NPSC\x01\xff\xff"))
	f.Add(append([]byte{0x90, 0x90}, valid...))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, payload []byte) {
		a, err := Analyze(payload)
		if err != nil {
			return
		}
		if !knownProtocols[a.Protocol] {
			t.Fatalf("accepted unknown protocol %q", a.Protocol)
		}
		if a.Interaction < Push || a.Interaction > Central {
			t.Fatalf("accepted invalid interaction %d", a.Interaction)
		}
		if a.Port < 0 || a.Port > 65535 {
			t.Fatalf("accepted invalid port %d", a.Port)
		}
	})
}
