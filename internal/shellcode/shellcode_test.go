package shellcode

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/netmodel"
	"repro/internal/simrng"
)

func validSpec() Spec {
	return Spec{
		Protocol:    "ftp",
		Interaction: Pull,
		Port:        21,
		Filename:    "ftpupd.exe",
	}
}

func TestEncodeAnalyzeRoundTrip(t *testing.T) {
	r := simrng.New(1).Stream("sc")
	attacker := netmodel.MustParseIP("198.51.100.77")
	sc, err := Encode(validSpec(), attacker, r)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Analyze(sc)
	if err != nil {
		t.Fatal(err)
	}
	if a.Protocol != "ftp" || a.Interaction != Pull || a.Port != 21 {
		t.Errorf("action = %+v", a)
	}
	if a.Filename != "ftpupd.exe" {
		t.Errorf("filename = %q", a.Filename)
	}
	if a.Source != attacker {
		t.Errorf("source = %s, want attacker for Pull", a.Source)
	}
}

func TestEncodeCentralUsesRepository(t *testing.T) {
	r := simrng.New(2).Stream("sc")
	repo := netmodel.MustParseIP("203.0.113.10")
	spec := Spec{Protocol: "http", Interaction: Central, Port: 80, Filename: "x.exe", Repository: repo}
	sc, err := Encode(spec, netmodel.MustParseIP("198.51.100.77"), r)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Analyze(sc)
	if err != nil {
		t.Fatal(err)
	}
	if a.Source != repo {
		t.Errorf("source = %s, want repository %s", a.Source, repo)
	}
}

func TestRandomFilenameVariesPerAttack(t *testing.T) {
	r := simrng.New(3).Stream("sc")
	spec := validSpec()
	spec.RandomFilename = true
	names := map[string]bool{}
	for i := 0; i < 10; i++ {
		sc, err := Encode(spec, 1, r)
		if err != nil {
			t.Fatal(err)
		}
		a, err := Analyze(sc)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.HasSuffix(a.Filename, ".exe") || len(a.Filename) != 12 {
			t.Errorf("random filename = %q", a.Filename)
		}
		names[a.Filename] = true
	}
	if len(names) < 8 {
		t.Errorf("only %d distinct random filenames in 10 attacks", len(names))
	}
}

func TestXORKeyVaries(t *testing.T) {
	r := simrng.New(4).Stream("sc")
	a, err := Encode(validSpec(), 1, r)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Encode(validSpec(), 1, r)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a, b) {
		t.Error("two encodings with different keys must differ")
	}
	// Both must still decode to the same action.
	aa, errA := Analyze(a)
	ab, errB := Analyze(b)
	if errA != nil || errB != nil {
		t.Fatal(errA, errB)
	}
	if aa != ab {
		t.Errorf("decoded actions differ: %+v vs %+v", aa, ab)
	}
}

func TestAnalyzeFindsStubMidPayload(t *testing.T) {
	r := simrng.New(5).Stream("sc")
	sc, err := Encode(validSpec(), 7, r)
	if err != nil {
		t.Fatal(err)
	}
	nops := bytes.Repeat([]byte{0x90}, 64)
	padded := append(append(append([]byte{}, nops...), sc...), 0xCC, 0xCC)
	a, err := Analyze(padded)
	if err != nil {
		t.Fatal(err)
	}
	if a.Protocol != "ftp" {
		t.Errorf("protocol = %q", a.Protocol)
	}
}

func TestAnalyzeRejects(t *testing.T) {
	r := simrng.New(6).Stream("sc")
	good, err := Encode(validSpec(), 7, r)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":          nil,
		"random":         bytes.Repeat([]byte{0x41}, 100),
		"magic only":     []byte("NPSC"),
		"truncated body": good[:len(good)-4],
	}
	for name, p := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := Analyze(p); err == nil {
				t.Error("Analyze accepted malformed payload")
			}
		})
	}
}

func TestSpecValidate(t *testing.T) {
	tests := []struct {
		name    string
		mutate  func(*Spec)
		wantErr bool
	}{
		{"valid", func(s *Spec) {}, false},
		{"bad protocol", func(s *Spec) { s.Protocol = "gopher" }, true},
		{"zero port", func(s *Spec) { s.Port = 0 }, true},
		{"huge port", func(s *Spec) { s.Port = 70000 }, true},
		{"bad interaction", func(s *Spec) { s.Interaction = 0 }, true},
		{"central without repo", func(s *Spec) { s.Interaction = Central; s.Repository = 0 }, true},
		{"central with repo", func(s *Spec) { s.Interaction = Central; s.Repository = 42 }, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			s := validSpec()
			tt.mutate(&s)
			if err := s.Validate(); (err != nil) != tt.wantErr {
				t.Errorf("Validate = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestEncodeValidates(t *testing.T) {
	r := simrng.New(7).Stream("sc")
	s := validSpec()
	s.Protocol = "bogus"
	if _, err := Encode(s, 1, r); err == nil {
		t.Error("Encode accepted an invalid spec")
	}
}

func TestEmulateOutcomes(t *testing.T) {
	r := simrng.New(8).Stream("dl")
	full := bytes.Repeat([]byte{0xAB}, 10000)

	// No failures configured: always OK and content preserved.
	data, outcome := Emulate(Action{}, full, FailureModel{}, r)
	if outcome != DownloadOK || !bytes.Equal(data, full) {
		t.Fatalf("outcome = %v, len = %d", outcome, len(data))
	}
	// Emulate must copy, not alias.
	data[0] = 0x00
	if full[0] == 0x00 {
		t.Error("Emulate aliases the input buffer")
	}

	// Always fail.
	data, outcome = Emulate(Action{}, full, FailureModel{FailProb: 1}, r)
	if outcome != DownloadFailed || data != nil {
		t.Fatalf("outcome = %v, data = %d bytes", outcome, len(data))
	}

	// Always truncate: strict prefix of 25-75%.
	for i := 0; i < 50; i++ {
		data, outcome = Emulate(Action{}, full, FailureModel{TruncateProb: 1}, r)
		if outcome != DownloadTruncated {
			t.Fatalf("outcome = %v", outcome)
		}
		if len(data) >= len(full) || len(data) < len(full)/4 {
			t.Fatalf("truncated length = %d of %d", len(data), len(full))
		}
		if !bytes.Equal(data, full[:len(data)]) {
			t.Fatal("truncated data is not a prefix")
		}
	}
}

func TestEmulateRates(t *testing.T) {
	r := simrng.New(9).Stream("dl-rates")
	full := bytes.Repeat([]byte{1}, 1000)
	fm := FailureModel{TruncateProb: 0.15, FailProb: 0.05}
	counts := map[DownloadOutcome]int{}
	const n = 5000
	for i := 0; i < n; i++ {
		_, o := Emulate(Action{}, full, fm, r)
		counts[o]++
	}
	if f := float64(counts[DownloadFailed]) / n; f < 0.03 || f > 0.08 {
		t.Errorf("fail rate = %.3f, want ~0.05", f)
	}
	if tr := float64(counts[DownloadTruncated]) / n; tr < 0.11 || tr > 0.19 {
		t.Errorf("truncate rate = %.3f, want ~0.15", tr)
	}
}

func TestInteractionString(t *testing.T) {
	if Push.String() != "PUSH" || Pull.String() != "PULL" || Central.String() != "central" {
		t.Error("Interaction strings wrong")
	}
	if Interaction(9).String() == "" {
		t.Error("unknown interaction must render")
	}
}

func TestOutcomeString(t *testing.T) {
	if DownloadOK.String() != "ok" || DownloadTruncated.String() != "truncated" || DownloadFailed.String() != "failed" {
		t.Error("outcome strings wrong")
	}
	if DownloadOutcome(9).String() == "" {
		t.Error("unknown outcome must render")
	}
}

func BenchmarkEncodeAnalyze(b *testing.B) {
	r := simrng.New(10).Stream("bench")
	spec := validSpec()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sc, err := Encode(spec, 1, r)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := Analyze(sc); err != nil {
			b.Fatal(err)
		}
	}
}
