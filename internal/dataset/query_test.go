package dataset

import (
	"testing"
	"time"

	"repro/internal/simtime"
)

func queryDataset(t *testing.T) *Dataset {
	t.Helper()
	d := New()
	mk := func(id, attacker, sensor string, loc, port int, proto, md5 string, week int) Event {
		e := testEvent(id, md5, simtime.WeekStart(week))
		e.Attacker = attacker
		e.Sensor = sensor
		e.SensorLocation = loc
		e.DestPort = port
		e.Protocol = proto
		if md5 == "" {
			e.Sample.MD5 = ""
			e.DownloadOutcome = "failed"
		}
		return e
	}
	events := []Event{
		mk("e1", "1.1.1.1", "9.9.9.1", 0, 445, "csend", "m1", 1),
		mk("e2", "1.1.1.1", "9.9.9.2", 1, 445, "csend", "m1", 5),
		mk("e3", "2.2.2.2", "9.9.9.1", 0, 135, "ftp", "m2", 10),
		mk("e4", "3.3.3.3", "9.9.9.3", 2, 445, "csend", "", 20),
	}
	for _, e := range events {
		if err := d.AddEvent(e); err != nil {
			t.Fatal(err)
		}
	}
	return d
}

func TestQueryZeroValueMatchesAll(t *testing.T) {
	d := queryDataset(t)
	if got := len(d.Select(Query{})); got != 4 {
		t.Errorf("empty query matched %d, want 4", got)
	}
}

func TestQueryFilters(t *testing.T) {
	d := queryDataset(t)
	loc0 := 0
	tests := []struct {
		name string
		q    Query
		want []string
	}{
		{"by attacker", Query{Attacker: "1.1.1.1"}, []string{"e1", "e2"}},
		{"by sensor", Query{Sensor: "9.9.9.1"}, []string{"e1", "e3"}},
		{"by location", Query{SensorLocation: &loc0}, []string{"e1", "e3"}},
		{"by port", Query{DestPort: 135}, []string{"e3"}},
		{"by protocol", Query{Protocol: "ftp"}, []string{"e3"}},
		{"with sample", Query{WithSample: true}, []string{"e1", "e2", "e3"}},
		{"by md5", Query{SampleMD5: "m1"}, []string{"e1", "e2"}},
		{"time from", Query{From: simtime.WeekStart(6)}, []string{"e3", "e4"}},
		{"time to", Query{To: simtime.WeekStart(6)}, []string{"e1", "e2"}},
		{"time range", Query{From: simtime.WeekStart(2), To: simtime.WeekStart(12)}, []string{"e2", "e3"}},
		{"combined", Query{Attacker: "1.1.1.1", DestPort: 445, From: simtime.WeekStart(2)}, []string{"e2"}},
		{"no match", Query{Attacker: "nope"}, nil},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := d.Select(tt.q)
			if len(got) != len(tt.want) {
				t.Fatalf("matched %d events, want %d", len(got), len(tt.want))
			}
			for i := range got {
				if got[i].ID != tt.want[i] {
					t.Fatalf("event %d = %s, want %s", i, got[i].ID, tt.want[i])
				}
			}
		})
	}
}

func TestCountBy(t *testing.T) {
	d := queryDataset(t)
	counts := d.CountBy(Query{}, func(e Event) string { return e.Protocol })
	if counts["csend"] != 3 || counts["ftp"] != 1 {
		t.Errorf("counts = %v", counts)
	}
}

func TestAttackers(t *testing.T) {
	d := queryDataset(t)
	got := d.Attackers(Query{DestPort: 445})
	if len(got) != 2 {
		t.Fatalf("attackers = %v", got)
	}
	if got[0] != "1.1.1.1" || got[1] != "3.3.3.3" {
		t.Errorf("attackers = %v (stream order expected)", got)
	}
}

func TestQueryTimeBoundsAreHalfOpen(t *testing.T) {
	d := queryDataset(t)
	exactly := simtime.WeekStart(5)
	if got := len(d.Select(Query{From: exactly, To: exactly.Add(time.Hour)})); got != 1 {
		t.Errorf("half-open interval matched %d, want 1 (From inclusive)", got)
	}
	if got := len(d.Select(Query{To: exactly})); got != 1 {
		t.Errorf("To exclusive matched %d, want 1", got)
	}
}
