// Package dataset models the SGNET analysis dataset: one record per
// observed code-injection attack, enriched with the static features of the
// collected malware sample, plus a per-sample table aggregating collection
// and enrichment state.
//
// The schema mirrors what the paper's information-enrichment pipeline
// stores: the ε facts (FSM path, destination port), the π facts (download
// protocol, filename, port, interaction type), the μ facts (file and PE
// header features), and the propagation context (attacker, sensor,
// timestamp) that Section 4.3 exploits. Ground-truth fields produced by
// the landscape generator are carried alongside for validation; no
// analysis reads them.
package dataset

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"time"

	"repro/internal/epm"
	"repro/internal/pe"
)

// Event is one observed code-injection attack.
type Event struct {
	ID       string    `json:"id"`
	Time     time.Time `json:"time"`
	Attacker string    `json:"attacker"`
	Sensor   string    `json:"sensor"`
	// SensorLocation is the index of the network location hosting the
	// sensor.
	SensorLocation int `json:"sensor_location"`

	// Epsilon dimension.
	FSMPath  string `json:"fsm_path"`
	DestPort int    `json:"dest_port"`

	// Pi dimension.
	Protocol    string `json:"protocol"`
	Filename    string `json:"filename"`
	PayloadPort int    `json:"payload_port"`
	Interaction string `json:"interaction"`

	// Mu dimension: static features of the collected sample (zero-valued
	// when the download failed entirely).
	Sample pe.Features `json:"sample"`
	// PEHash is the peHash-baseline value of the collected sample, empty
	// for corrupted samples the hash is undefined on.
	PEHash string `json:"pehash,omitempty"`
	// DownloadOutcome is "ok", "truncated", or "failed".
	DownloadOutcome string `json:"download_outcome"`

	// Ground truth (never consumed by analyses).
	TruthFamily  string `json:"truth_family,omitempty"`
	TruthVariant string `json:"truth_variant,omitempty"`
}

// HasSample reports whether the event stored any malware payload.
func (e Event) HasSample() bool {
	return e.Sample.MD5 != "" && e.DownloadOutcome != "failed"
}

// Sample aggregates per-binary state across all events that delivered it.
type Sample struct {
	MD5       string      `json:"md5"`
	FirstSeen time.Time   `json:"first_seen"`
	Features  pe.Features `json:"features"`
	// PEHash is the peHash-baseline value, empty for corrupted samples.
	PEHash string `json:"pehash,omitempty"`
	// Executable reports whether the sample parsed as a well-formed PE and
	// can therefore run in the dynamic analysis sandbox.
	Executable bool `json:"executable"`
	// Events counts the attack instances that delivered this binary.
	Events int `json:"events"`
	// AVLabel is the name a popular AV vendor assigns to the sample.
	AVLabel string `json:"av_label,omitempty"`
	// AVLabels carries the full multi-vendor label panel (vendor → label;
	// empty label = not detected).
	AVLabels map[string]string `json:"av_labels,omitempty"`
	// Profile is the behavioral profile from dynamic analysis (sorted
	// features); nil when the sample could not be executed.
	Profile []string `json:"profile,omitempty"`

	TruthFamily  string `json:"truth_family,omitempty"`
	TruthVariant string `json:"truth_variant,omitempty"`
}

// Dataset is the in-memory analysis dataset.
// eventChunkSize is the capacity of one event-store chunk. Chunking
// keeps appends O(1) without ever copying history: a flat []Event
// re-copied and re-zeroed tens of MB on every growth step at stream
// scale, and a []*Event traded that for a per-event heap object the
// garbage collector then had to track. One chunk is a few MB — big
// enough to amortize allocation, small enough not to stall.
const eventChunkSize = 4096

type Dataset struct {
	// chunks is the event log in insertion order; every chunk but the
	// last holds exactly eventChunkSize events.
	chunks   [][]Event
	count    int
	samples  map[string]*Sample
	bySample map[string][]int // MD5 -> event indices
	ids      map[string]bool
}

// at returns the stored event at log index i. The pointer aliases the
// store; callers must not mutate or retain it across AddEvent calls.
func (d *Dataset) at(i int) *Event {
	return &d.chunks[i/eventChunkSize][i%eventChunkSize]
}

// New returns an empty dataset.
func New() *Dataset {
	return &Dataset{
		samples:  make(map[string]*Sample),
		bySample: make(map[string][]int),
		ids:      make(map[string]bool),
	}
}

// AddEvent appends an attack record, updating the sample table.
func (d *Dataset) AddEvent(e Event) error {
	if e.ID == "" {
		return fmt.Errorf("dataset: event with empty ID")
	}
	if d.ids[e.ID] {
		return fmt.Errorf("dataset: duplicate event ID %q", e.ID)
	}
	d.ids[e.ID] = true
	if len(d.chunks) == 0 || len(d.chunks[len(d.chunks)-1]) == eventChunkSize {
		d.chunks = append(d.chunks, make([]Event, 0, eventChunkSize))
	}
	d.chunks[len(d.chunks)-1] = append(d.chunks[len(d.chunks)-1], e)
	d.count++

	if e.HasSample() {
		idx := d.count - 1
		d.bySample[e.Sample.MD5] = append(d.bySample[e.Sample.MD5], idx)
		s, ok := d.samples[e.Sample.MD5]
		if !ok {
			s = &Sample{
				MD5:          e.Sample.MD5,
				FirstSeen:    e.Time,
				Features:     e.Sample,
				PEHash:       e.PEHash,
				Executable:   e.Sample.IsPE,
				TruthFamily:  e.TruthFamily,
				TruthVariant: e.TruthVariant,
			}
			d.samples[e.Sample.MD5] = s
		}
		s.Events++
		if e.Time.Before(s.FirstSeen) {
			s.FirstSeen = e.Time
		}
	}
	return nil
}

// Events returns a copy of all events in insertion order. The copy is
// O(n); iterate with EachEvent where the materialized slice is not
// needed.
func (d *Dataset) Events() []Event {
	out := make([]Event, 0, d.count)
	for _, c := range d.chunks {
		out = append(out, c...)
	}
	return out
}

// EachEvent calls fn for every event in insertion order without
// materializing a copy of the store. The callee must not mutate or
// retain the pointed-to event.
func (d *Dataset) EachEvent(fn func(e *Event)) {
	for _, c := range d.chunks {
		for i := range c {
			fn(&c[i])
		}
	}
}

// EventCount returns the number of events.
func (d *Dataset) EventCount() int { return d.count }

// Sample returns the sample record for an MD5, or nil.
func (d *Dataset) Sample(md5 string) *Sample {
	return d.samples[md5]
}

// Samples returns all sample records sorted by MD5.
func (d *Dataset) Samples() []*Sample {
	out := make([]*Sample, 0, len(d.samples))
	for _, s := range d.samples {
		out = append(out, s)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].MD5 < out[b].MD5 })
	return out
}

// SampleCount returns the number of distinct collected binaries.
func (d *Dataset) SampleCount() int { return len(d.samples) }

// ExecutableSampleCount returns the number of samples dynamic analysis can
// run (the paper's 5165 of 6353).
func (d *Dataset) ExecutableSampleCount() int {
	n := 0
	for _, s := range d.samples {
		if s.Executable {
			n++
		}
	}
	return n
}

// EventsOfSample returns the events that delivered the given MD5, in
// insertion order.
func (d *Dataset) EventsOfSample(md5 string) []Event {
	idxs := d.bySample[md5]
	out := make([]Event, 0, len(idxs))
	for _, i := range idxs {
		out = append(out, *d.at(i))
	}
	return out
}

// EPM schemas (Table 1). The feature names double as column headers in the
// reproduction of the table.
var (
	// EpsilonSchema covers the exploit dimension.
	EpsilonSchema = epm.Schema{Dimension: "epsilon", Features: []string{
		"FSM path identifier",
		"Destination port",
	}}
	// PiSchema covers the payload dimension.
	PiSchema = epm.Schema{Dimension: "pi", Features: []string{
		"Download protocol",
		"Filename in protocol interaction",
		"Port involved in protocol interaction",
		"Interaction type",
	}}
	// MuSchema covers the malware dimension.
	MuSchema = epm.Schema{Dimension: "mu", Features: []string{
		"File MD5",
		"File size in bytes",
		"File type according to libmagic signatures",
		"(PE) Machine type",
		"(PE) Number of sections",
		"(PE) Number of imported DLLs",
		"(PE) OS version",
		"(PE) Linker version",
		"(PE) Names of the sections",
		"(PE) Imported DLLs",
		"(PE) Referenced Kernel32.dll symbols",
	}}
)

// EpsilonInstance projects one event onto the ε schema. The per-event
// projections are the single source of truth for the feature encodings:
// the batch accessors below and the streaming service (internal/stream)
// both build on them, so an event projects identically whichever path
// consumes it.
func (e Event) EpsilonInstance() epm.Instance {
	return epm.Instance{
		ID:       e.ID,
		Attacker: e.Attacker,
		Sensor:   e.Sensor,
		Values:   []string{e.FSMPath, strconv.Itoa(e.DestPort)},
	}
}

// PiInstance projects one event onto the π schema.
func (e Event) PiInstance() epm.Instance {
	return epm.Instance{
		ID:       e.ID,
		Attacker: e.Attacker,
		Sensor:   e.Sensor,
		Values: []string{
			e.Protocol,
			orNone(e.Filename),
			strconv.Itoa(e.PayloadPort),
			e.Interaction,
		},
	}
}

// MuInstance projects one event onto the μ schema; ok is false when the
// event stored no sample and therefore has no μ facts.
func (e Event) MuInstance() (_ epm.Instance, ok bool) {
	if !e.HasSample() {
		return epm.Instance{}, false
	}
	f := e.Sample
	return epm.Instance{
		ID:       e.ID,
		Attacker: e.Attacker,
		Sensor:   e.Sensor,
		Values: []string{
			f.MD5,
			strconv.Itoa(f.Size),
			f.Magic,
			strconv.Itoa(f.MachineType),
			strconv.Itoa(f.NumSections),
			strconv.Itoa(f.NumImportedDLLs),
			strconv.Itoa(f.OSVersion),
			strconv.Itoa(f.LinkerVersion),
			orNone(f.SectionNames),
			orNone(f.ImportedDLLs),
			orNone(f.Kernel32Symbols),
		},
	}, true
}

// EpsilonInstances projects the events onto the ε schema.
func (d *Dataset) EpsilonInstances() []epm.Instance {
	out := make([]epm.Instance, 0, d.count)
	d.EachEvent(func(e *Event) {
		out = append(out, e.EpsilonInstance())
	})
	return out
}

// PiInstances projects the events onto the π schema.
func (d *Dataset) PiInstances() []epm.Instance {
	out := make([]epm.Instance, 0, d.count)
	d.EachEvent(func(e *Event) {
		out = append(out, e.PiInstance())
	})
	return out
}

// MuInstances projects the events that collected a sample onto the μ
// schema.
func (d *Dataset) MuInstances() []epm.Instance {
	out := make([]epm.Instance, 0, d.count)
	d.EachEvent(func(e *Event) {
		if in, ok := e.MuInstance(); ok {
			out = append(out, in)
		}
	})
	return out
}

// orNone maps the empty string to a stable placeholder: epm treats values
// opaquely, and an empty filename is itself a meaningful observation.
func orNone(s string) string {
	if s == "" {
		return "(none)"
	}
	return s
}

// jsonlRecord wraps either an event or a sample for stream serialization.
type jsonlRecord struct {
	Kind   string  `json:"kind"`
	Event  *Event  `json:"event,omitempty"`
	Sample *Sample `json:"sample,omitempty"`
}

// WriteJSONL streams the dataset as JSON lines: every event, then every
// sample (carrying enrichment state such as profiles and AV labels).
func (d *Dataset) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, c := range d.chunks {
		for i := range c {
			if err := enc.Encode(jsonlRecord{Kind: "event", Event: &c[i]}); err != nil {
				return fmt.Errorf("dataset: encoding event %s: %w", c[i].ID, err)
			}
		}
	}
	for _, s := range d.Samples() {
		if err := enc.Encode(jsonlRecord{Kind: "sample", Sample: s}); err != nil {
			return fmt.Errorf("dataset: encoding sample %s: %w", s.MD5, err)
		}
	}
	return bw.Flush()
}

// ReadJSONL reconstructs a dataset written by WriteJSONL.
func ReadJSONL(r io.Reader) (*Dataset, error) {
	d := New()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		var rec jsonlRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return nil, fmt.Errorf("dataset: line %d: %w", line, err)
		}
		switch rec.Kind {
		case "event":
			if rec.Event == nil {
				return nil, fmt.Errorf("dataset: line %d: event record without event", line)
			}
			if err := d.AddEvent(*rec.Event); err != nil {
				return nil, fmt.Errorf("dataset: line %d: %w", line, err)
			}
		case "sample":
			if rec.Sample == nil {
				return nil, fmt.Errorf("dataset: line %d: sample record without sample", line)
			}
			// Samples follow their events; merge enrichment state into the
			// reconstructed record.
			if s := d.samples[rec.Sample.MD5]; s != nil {
				s.AVLabel = rec.Sample.AVLabel
				s.AVLabels = rec.Sample.AVLabels
				s.Profile = rec.Sample.Profile
			}
		default:
			return nil, fmt.Errorf("dataset: line %d: unknown record kind %q", line, rec.Kind)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dataset: reading: %w", err)
	}
	return d, nil
}
