package dataset

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/pe"
	"repro/internal/simtime"
)

func sampleFeatures(md5 string, size int) pe.Features {
	return pe.Features{
		MD5:             md5,
		Size:            size,
		Magic:           pe.MagicPEGUI,
		IsPE:            true,
		MachineType:     332,
		NumSections:     3,
		NumImportedDLLs: 1,
		OSVersion:       64,
		LinkerVersion:   92,
		SectionNames:    ".text,.data,.idata",
		ImportedDLLs:    "KERNEL32.dll",
		Kernel32Symbols: "GetProcAddress,LoadLibraryA",
	}
}

func testEvent(id, md5 string, at time.Time) Event {
	return Event{
		ID:              id,
		Time:            at,
		Attacker:        "198.51.100.7",
		Sensor:          "192.0.2.1",
		FSMPath:         "445:s3",
		DestPort:        445,
		Protocol:        "csend",
		PayloadPort:     9988,
		Interaction:     "PUSH",
		Sample:          sampleFeatures(md5, 59904),
		DownloadOutcome: "ok",
		TruthFamily:     "allaple",
		TruthVariant:    "allaple-v1",
	}
}

func TestAddEventAndSampleTable(t *testing.T) {
	d := New()
	t0 := simtime.WeekStart(3)
	if err := d.AddEvent(testEvent("e1", "md5-a", t0)); err != nil {
		t.Fatal(err)
	}
	if err := d.AddEvent(testEvent("e2", "md5-a", t0.Add(time.Hour))); err != nil {
		t.Fatal(err)
	}
	if err := d.AddEvent(testEvent("e3", "md5-b", t0.Add(-time.Hour))); err != nil {
		t.Fatal(err)
	}

	if d.EventCount() != 3 {
		t.Errorf("EventCount = %d", d.EventCount())
	}
	if d.SampleCount() != 2 {
		t.Errorf("SampleCount = %d", d.SampleCount())
	}
	s := d.Sample("md5-a")
	if s == nil || s.Events != 2 {
		t.Fatalf("sample md5-a = %+v", s)
	}
	if !s.FirstSeen.Equal(t0) {
		t.Errorf("FirstSeen = %v", s.FirstSeen)
	}
	if !s.Executable {
		t.Error("PE sample must be executable")
	}
	if got := len(d.EventsOfSample("md5-a")); got != 2 {
		t.Errorf("EventsOfSample = %d", got)
	}
	if d.Sample("missing") != nil {
		t.Error("missing sample must be nil")
	}
}

func TestAddEventValidation(t *testing.T) {
	d := New()
	if err := d.AddEvent(Event{}); err == nil {
		t.Error("empty ID must error")
	}
	if err := d.AddEvent(testEvent("e1", "m", simtime.StudyStart)); err != nil {
		t.Fatal(err)
	}
	if err := d.AddEvent(testEvent("e1", "m", simtime.StudyStart)); err == nil {
		t.Error("duplicate ID must error")
	}
}

func TestFirstSeenUsesEarliestEvent(t *testing.T) {
	d := New()
	late := simtime.WeekStart(10)
	early := simtime.WeekStart(2)
	if err := d.AddEvent(testEvent("e1", "m", late)); err != nil {
		t.Fatal(err)
	}
	if err := d.AddEvent(testEvent("e2", "m", early)); err != nil {
		t.Fatal(err)
	}
	if got := d.Sample("m").FirstSeen; !got.Equal(early) {
		t.Errorf("FirstSeen = %v, want %v", got, early)
	}
}

func TestFailedDownloadStoresNoSample(t *testing.T) {
	d := New()
	e := testEvent("e1", "", simtime.StudyStart)
	e.Sample = pe.Features{}
	e.DownloadOutcome = "failed"
	if err := d.AddEvent(e); err != nil {
		t.Fatal(err)
	}
	if d.SampleCount() != 0 {
		t.Error("failed download must not create a sample")
	}
	if len(d.MuInstances()) != 0 {
		t.Error("failed download must not produce a mu instance")
	}
	if len(d.EpsilonInstances()) != 1 {
		t.Error("epsilon instance must still exist")
	}
}

func TestTruncatedSampleNotExecutable(t *testing.T) {
	d := New()
	e := testEvent("e1", "md5-t", simtime.StudyStart)
	e.Sample = pe.Features{MD5: "md5-t", Size: 4096, Magic: pe.MagicMZ}
	e.DownloadOutcome = "truncated"
	if err := d.AddEvent(e); err != nil {
		t.Fatal(err)
	}
	s := d.Sample("md5-t")
	if s == nil {
		t.Fatal("truncated sample must be recorded")
	}
	if s.Executable {
		t.Error("truncated sample must not be executable")
	}
	if d.ExecutableSampleCount() != 0 {
		t.Error("ExecutableSampleCount must be 0")
	}
}

func TestInstanceProjections(t *testing.T) {
	d := New()
	if err := d.AddEvent(testEvent("e1", "md5-a", simtime.StudyStart)); err != nil {
		t.Fatal(err)
	}
	eps := d.EpsilonInstances()
	if len(eps) != 1 || len(eps[0].Values) != len(EpsilonSchema.Features) {
		t.Fatalf("epsilon projection = %+v", eps)
	}
	if eps[0].Values[0] != "445:s3" || eps[0].Values[1] != "445" {
		t.Errorf("epsilon values = %v", eps[0].Values)
	}
	pis := d.PiInstances()
	if len(pis) != 1 || len(pis[0].Values) != len(PiSchema.Features) {
		t.Fatalf("pi projection = %+v", pis)
	}
	if pis[0].Values[0] != "csend" || pis[0].Values[1] != "(none)" ||
		pis[0].Values[2] != "9988" || pis[0].Values[3] != "PUSH" {
		t.Errorf("pi values = %v", pis[0].Values)
	}
	mus := d.MuInstances()
	if len(mus) != 1 || len(mus[0].Values) != len(MuSchema.Features) {
		t.Fatalf("mu projection = %+v", mus)
	}
	if mus[0].Values[0] != "md5-a" || mus[0].Values[1] != "59904" || mus[0].Values[7] != "92" {
		t.Errorf("mu values = %v", mus[0].Values)
	}
}

func TestSchemasMatchTable1Arity(t *testing.T) {
	// Table 1 lists 2 epsilon features, 4 pi features, 11 mu features.
	if got := len(EpsilonSchema.Features); got != 2 {
		t.Errorf("epsilon features = %d, want 2", got)
	}
	if got := len(PiSchema.Features); got != 4 {
		t.Errorf("pi features = %d, want 4", got)
	}
	if got := len(MuSchema.Features); got != 11 {
		t.Errorf("mu features = %d, want 11", got)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	d := New()
	for i := 0; i < 5; i++ {
		md5 := fmt.Sprintf("md5-%d", i%2)
		if err := d.AddEvent(testEvent(fmt.Sprintf("e%d", i), md5, simtime.WeekStart(i))); err != nil {
			t.Fatal(err)
		}
	}
	// Attach enrichment state.
	d.Sample("md5-0").AVLabel = "W32.Rahack.W"
	d.Sample("md5-0").Profile = []string{"file-create|x", "scan|tcp/445"}

	var buf bytes.Buffer
	if err := d.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.EventCount() != d.EventCount() || got.SampleCount() != d.SampleCount() {
		t.Fatalf("round trip lost records: %d/%d events, %d/%d samples",
			got.EventCount(), d.EventCount(), got.SampleCount(), d.SampleCount())
	}
	s := got.Sample("md5-0")
	if s.AVLabel != "W32.Rahack.W" {
		t.Errorf("AVLabel = %q", s.AVLabel)
	}
	if len(s.Profile) != 2 {
		t.Errorf("Profile = %v", s.Profile)
	}
	if got.Sample("md5-1").Events != d.Sample("md5-1").Events {
		t.Error("event counts diverged")
	}
}

func TestReadJSONLErrors(t *testing.T) {
	cases := map[string]string{
		"garbage":      "not json\n",
		"unknown kind": `{"kind":"zebra"}` + "\n",
		"empty event":  `{"kind":"event"}` + "\n",
		"empty sample": `{"kind":"sample"}` + "\n",
	}
	for name, in := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := ReadJSONL(strings.NewReader(in)); err == nil {
				t.Error("ReadJSONL accepted malformed input")
			}
		})
	}
}

func TestSamplesSorted(t *testing.T) {
	d := New()
	for _, md5 := range []string{"zzz", "aaa", "mmm"} {
		if err := d.AddEvent(testEvent("e-"+md5, md5, simtime.StudyStart)); err != nil {
			t.Fatal(err)
		}
	}
	got := d.Samples()
	if len(got) != 3 || got[0].MD5 != "aaa" || got[2].MD5 != "zzz" {
		t.Errorf("Samples order: %v, %v, %v", got[0].MD5, got[1].MD5, got[2].MD5)
	}
}
