package dataset

import (
	"time"
)

// Query filters the event stream. Zero-valued fields match everything, so
// queries compose by setting only the constraints they need.
type Query struct {
	// From/To bound the event time (half-open interval [From, To)).
	From, To time.Time
	// Attacker selects a single attacking address.
	Attacker string
	// Sensor selects a single honeypot address.
	Sensor string
	// SensorLocation selects a deployment location (use -1 or leave the
	// whole field unset via MatchAnyLocation).
	SensorLocation *int
	// DestPort selects the exploit destination port.
	DestPort int
	// Protocol selects the download protocol.
	Protocol string
	// WithSample restricts to events that stored a payload.
	WithSample bool
	// SampleMD5 selects events delivering one binary.
	SampleMD5 string
}

// Matches reports whether the event satisfies every set constraint.
func (q Query) Matches(e Event) bool {
	if !q.From.IsZero() && e.Time.Before(q.From) {
		return false
	}
	if !q.To.IsZero() && !e.Time.Before(q.To) {
		return false
	}
	if q.Attacker != "" && e.Attacker != q.Attacker {
		return false
	}
	if q.Sensor != "" && e.Sensor != q.Sensor {
		return false
	}
	if q.SensorLocation != nil && e.SensorLocation != *q.SensorLocation {
		return false
	}
	if q.DestPort != 0 && e.DestPort != q.DestPort {
		return false
	}
	if q.Protocol != "" && e.Protocol != q.Protocol {
		return false
	}
	if q.WithSample && !e.HasSample() {
		return false
	}
	if q.SampleMD5 != "" && e.Sample.MD5 != q.SampleMD5 {
		return false
	}
	return true
}

// Select returns the events matching the query, in stream order.
func (d *Dataset) Select(q Query) []Event {
	var out []Event
	d.EachEvent(func(e *Event) {
		if q.Matches(*e) {
			out = append(out, *e)
		}
	})
	return out
}

// CountBy buckets the matching events by an arbitrary key function.
func (d *Dataset) CountBy(q Query, key func(Event) string) map[string]int {
	out := make(map[string]int)
	d.EachEvent(func(e *Event) {
		if q.Matches(*e) {
			out[key(*e)]++
		}
	})
	return out
}

// Attackers returns the distinct attacker addresses among matching events.
func (d *Dataset) Attackers(q Query) []string {
	seen := make(map[string]bool)
	var out []string
	d.EachEvent(func(e *Event) {
		if q.Matches(*e) && !seen[e.Attacker] {
			seen[e.Attacker] = true
			out = append(out, e.Attacker)
		}
	})
	return out
}
