package dataset

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/simtime"
)

// FuzzReadJSONL feeds arbitrary text to the dataset reader: it must never
// panic, and any successfully parsed dataset must re-serialize and parse
// back to the same shape.
func FuzzReadJSONL(f *testing.F) {
	d := New()
	if err := d.AddEvent(testEvent("e1", "md5-a", simtime.WeekStart(2))); err != nil {
		f.Fatal(err)
	}
	d.Sample("md5-a").AVLabel = "W32.Rahack.A"
	d.Sample("md5-a").Profile = []string{"scan|tcp/445"}
	var buf bytes.Buffer
	if err := d.WriteJSONL(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add("")
	f.Add("{\"kind\":\"event\"}\n")
	f.Add("garbage\n")
	f.Add("{\"kind\":\"sample\",\"sample\":{\"md5\":\"x\"}}\n")

	f.Fuzz(func(t *testing.T, input string) {
		ds, err := ReadJSONL(strings.NewReader(input))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := ds.WriteJSONL(&out); err != nil {
			t.Fatalf("parsed dataset failed to serialize: %v", err)
		}
		back, err := ReadJSONL(&out)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if back.EventCount() != ds.EventCount() || back.SampleCount() != ds.SampleCount() {
			t.Fatalf("round trip changed shape: %d/%d events, %d/%d samples",
				back.EventCount(), ds.EventCount(), back.SampleCount(), ds.SampleCount())
		}
	})
}
