package faultfs

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"syscall"
	"testing"
)

func writeOnce(t *testing.T, fs FS, path string, data []byte) error {
	t.Helper()
	f, err := fs.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = f.Write(data)
	return err
}

// TestPassthroughRoundTrip checks the zero-config injector is inert: a
// Faulty with no rates and no rules behaves exactly like the OS
// passthrough it wraps.
func TestPassthroughRoundTrip(t *testing.T) {
	dir := t.TempDir()
	for name, fs := range map[string]FS{"os": OrOS(nil), "faulty-zero": New(nil, Config{})} {
		path := filepath.Join(dir, name)
		if err := writeOnce(t, fs, path, []byte("payload")); err != nil {
			t.Fatalf("%s: write: %v", name, err)
		}
		got, err := fs.ReadFile(path)
		if err != nil || string(got) != "payload" {
			t.Fatalf("%s: read back %q, %v", name, got, err)
		}
		if err := fs.Rename(path, path+".2"); err != nil {
			t.Fatalf("%s: rename: %v", name, err)
		}
		if err := fs.Remove(path + ".2"); err != nil {
			t.Fatalf("%s: remove: %v", name, err)
		}
	}
}

// TestRuleSchedule pins the Rule matching semantics: 1-based per-op
// invocation counts, Until=0 exact, a positive Until closing a range,
// and Until=-1 permanent.
func TestRuleSchedule(t *testing.T) {
	fs := New(nil, Config{Rules: []Rule{
		{Op: OpWrite, At: 2, Kind: KindEIO},             // exactly the 2nd write
		{Op: OpSync, At: 1, Until: 2, Kind: KindEIO},    // syncs 1 and 2
		{Op: OpRename, At: 1, Until: -1, Kind: KindEIO}, // every rename, forever
	}})
	path := filepath.Join(t.TempDir(), "f")
	f, err := fs.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	wants := []bool{false, true, false, false} // write 2 fails, 1/3/4 succeed
	for i, wantErr := range wants {
		_, err := f.Write([]byte("x"))
		if (err != nil) != wantErr {
			t.Fatalf("write %d: err=%v, want error=%v", i+1, err, wantErr)
		}
	}
	for i, wantErr := range []bool{true, true, false} {
		if err := f.Sync(); (err != nil) != wantErr {
			t.Fatalf("sync %d: err=%v, want error=%v", i+1, err, wantErr)
		}
	}
	for i := 0; i < 3; i++ {
		if err := fs.Rename(path, path); err == nil {
			t.Fatalf("rename %d succeeded under a permanent rule", i+1)
		}
	}
}

// TestTornWrite checks KindTorn lands a strict prefix on disk — the
// half-written frame a power cut leaves — and still reports a failure.
func TestTornWrite(t *testing.T) {
	fs := New(nil, Config{Rules: []Rule{{Op: OpWrite, At: 1, Kind: KindTorn}}})
	path := filepath.Join(t.TempDir(), "torn")
	payload := []byte("0123456789abcdef")
	if err := writeOnce(t, fs, path, payload); err == nil {
		t.Fatal("torn write reported success")
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload[:len(payload)/2]) {
		t.Fatalf("on-disk tail %q, want the strict prefix %q", got, payload[:len(payload)/2])
	}
}

// TestReadFlip checks KindFlip corrupts exactly one bit of one read and
// leaves the bytes on disk untouched, so the next read is clean.
func TestReadFlip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "flip")
	payload := []byte("checksummed frame bytes")
	if err := os.WriteFile(path, payload, 0o644); err != nil {
		t.Fatal(err)
	}
	fs := New(nil, Config{Seed: 7, Rules: []Rule{{Op: OpRead, At: 1, Kind: KindFlip}}})
	got, err := fs.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	diff := 0
	for i := range payload {
		diff += popcount(got[i] ^ payload[i])
	}
	if diff != 1 {
		t.Fatalf("flip changed %d bits, want exactly 1", diff)
	}
	clean, err := fs.ReadFile(path)
	if err != nil || !bytes.Equal(clean, payload) {
		t.Fatalf("second read not clean: %q, %v", clean, err)
	}
}

func popcount(b byte) int {
	n := 0
	for ; b != 0; b &= b - 1 {
		n++
	}
	return n
}

// TestENOSPCAndErrorShape checks injected errors are typed PathErrors
// carrying the real errno, so errors.Is works on them.
func TestENOSPCAndErrorShape(t *testing.T) {
	fs := New(nil, Config{Rules: []Rule{
		{Op: OpWrite, At: 1, Kind: KindENOSPC},
		{Op: OpWrite, At: 2, Kind: KindEIO},
	}})
	path := filepath.Join(t.TempDir(), "f")
	if err := writeOnce(t, fs, path, []byte("x")); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("first write: %v, want ENOSPC", err)
	}
	err := writeOnce(t, fs, path, []byte("x"))
	if !errors.Is(err, syscall.EIO) {
		t.Fatalf("second write: %v, want EIO", err)
	}
	var pe *os.PathError
	if !errors.As(err, &pe) || pe.Op != "faultfs-write" {
		t.Fatalf("injected error %v, want a faultfs-write PathError", err)
	}
}

// TestSeededDeterminism checks two injectors with the same seed and the
// same operation sequence produce the same fault schedule, and a
// different seed produces a different one.
func TestSeededDeterminism(t *testing.T) {
	run := func(seed int64) Stats {
		fs := New(nil, Config{Seed: seed, WriteErr: 0.3, SyncErr: 0.3})
		path := filepath.Join(t.TempDir(), "f")
		f, err := fs.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		for i := 0; i < 50; i++ {
			f.Write([]byte("x"))
			f.Sync()
		}
		return fs.Stats()
	}
	a, b := run(42), run(42)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
	if a.Total == 0 {
		t.Fatal("30% rates over 100 ops injected nothing")
	}
	if c := run(43); reflect.DeepEqual(a, c) {
		t.Fatalf("different seeds produced the identical schedule: %+v", c)
	}
}

// TestMaxFaultsCapsProbabilistic checks the fault budget: certain-fire
// rates stop injecting at MaxFaults so a retrying caller converges, but
// exact Rules remain exempt from the cap.
func TestMaxFaultsCapsProbabilistic(t *testing.T) {
	fs := New(nil, Config{
		WriteErr:  1.0,
		MaxFaults: 2,
		Rules:     []Rule{{Op: OpSync, At: 5, Kind: KindEIO}},
	})
	path := filepath.Join(t.TempDir(), "f")
	f, err := fs.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	failures := 0
	for i := 0; i < 10; i++ {
		if _, err := f.Write([]byte("x")); err != nil {
			failures++
		}
	}
	if failures != 2 {
		t.Fatalf("%d write failures under MaxFaults=2, want 2", failures)
	}
	for i := 1; i <= 5; i++ {
		err := f.Sync()
		if wantErr := i == 5; (err != nil) != wantErr {
			t.Fatalf("sync %d past the cap: err=%v, want error=%v (rules are exempt)", i, err, wantErr)
		}
	}
	st := fs.Stats()
	if st.Total != 3 || st.Faults[KindEIO] != 3 {
		t.Fatalf("fault ledger %+v, want 3 EIO faults", st)
	}
}
