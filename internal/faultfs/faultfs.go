// Package faultfs abstracts the filesystem operations the durability
// chain performs (WAL segments, checkpoints, shipping reads) behind a
// small interface with two implementations: a zero-cost passthrough to
// the os package, and a deterministic seeded fault injector that
// returns the failures real disks produce — transient and permanent
// EIO, ENOSPC, short (torn) writes, fsync failures, rename failures,
// and read-side bit flips — on a reproducible schedule.
//
// The passthrough is the default everywhere: a nil FS in wal.Options or
// stream.Durability selects OS, so production configurations are
// byte-identical to the pre-faultfs code path. The injector exists for
// the chaos harness (internal/chaos, `make smoke-chaos`) and the
// fault-schedule recovery property tests.
package faultfs

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"sync"
	"syscall"
)

// Op classifies a filesystem operation for fault scheduling.
type Op string

const (
	OpOpen     Op = "open"
	OpCreate   Op = "create"
	OpRead     Op = "read"
	OpWrite    Op = "write"
	OpSync     Op = "sync"
	OpRename   Op = "rename"
	OpRemove   Op = "remove"
	OpTruncate Op = "truncate"
	OpReadDir  Op = "readdir"
	OpMkdir    Op = "mkdir"
)

// File is the handle surface the durability chain uses.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	Name() string
	Sync() error
	Stat() (os.FileInfo, error)
}

// FS is the directory-level surface. All paths are passed through
// verbatim; implementations do not resolve or sandbox them.
type FS interface {
	Open(name string) (File, error)
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	CreateTemp(dir, pattern string) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	Truncate(name string, size int64) error
	MkdirAll(path string, perm os.FileMode) error
	ReadDir(name string) ([]os.DirEntry, error)
	ReadFile(name string) ([]byte, error)
	Stat(name string) (os.FileInfo, error)
}

// OS is the passthrough implementation.
var OS FS = osFS{}

// OrOS normalizes a possibly-nil FS to the passthrough, the idiom every
// consumer uses so the zero configuration stays inert.
func OrOS(fs FS) FS {
	if fs == nil {
		return OS
	}
	return fs
}

type osFS struct{}

func (osFS) Open(name string) (File, error) { return os.Open(name) }
func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}
func (osFS) CreateTemp(dir, pattern string) (File, error) { return os.CreateTemp(dir, pattern) }
func (osFS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                     { return os.Remove(name) }
func (osFS) Truncate(name string, size int64) error       { return os.Truncate(name, size) }
func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }
func (osFS) ReadDir(name string) ([]os.DirEntry, error)   { return os.ReadDir(name) }
func (osFS) ReadFile(name string) ([]byte, error)         { return os.ReadFile(name) }
func (osFS) Stat(name string) (os.FileInfo, error)        { return os.Stat(name) }

// Kind is the injected failure shape.
type Kind string

const (
	// KindEIO fails the operation with syscall.EIO.
	KindEIO Kind = "eio"
	// KindENOSPC fails a write/create with syscall.ENOSPC.
	KindENOSPC Kind = "enospc"
	// KindTorn writes a strict prefix of the buffer, then fails — the
	// on-disk tail is genuinely torn, exactly what a power cut leaves.
	KindTorn Kind = "torn"
	// KindFlip succeeds a read but flips one bit in the returned buffer
	// (transient by construction: the bytes on disk are untouched).
	KindFlip Kind = "flip"
)

// Rule fires deterministically on specific invocations of one Op:
// invocation indices are 1-based and counted per Op across the whole
// injector. Until extends the rule through later invocations — 0 fires
// on exactly At, a positive value through [At, Until], and -1 forever
// ("permanent" faults, e.g. a sync that never succeeds again).
type Rule struct {
	Op    Op
	At    int
	Until int
	Kind  Kind
}

func (r Rule) matches(n int) bool {
	switch {
	case n < r.At:
		return false
	case r.Until == 0:
		return n == r.At
	case r.Until < 0:
		return true
	default:
		return n <= r.Until
	}
}

// Config parameterizes the injector. The probabilistic rates draw from
// one seeded stream in operation order, so a single-writer workload
// replays the same fault schedule for the same seed; Rules fire on
// exact invocation counts regardless of the rates and the fault cap.
type Config struct {
	Seed int64
	// Per-op fault probabilities in [0,1].
	ReadErr, ReadFlip    float64
	WriteErr, WriteTorn  float64
	WriteENOSPC, SyncErr float64
	RenameErr, MetaErr   float64 // MetaErr covers open/create/remove/truncate/readdir/mkdir
	// MaxFaults caps the probabilistic faults injected over the
	// injector's lifetime (0 = unlimited), so a schedule is finite and a
	// retrying caller always converges. Rules are exempt.
	MaxFaults int
	Rules     []Rule
}

// Faulty wraps an inner FS and injects the configured faults. Safe for
// concurrent use; determinism requires a deterministic operation order,
// which the service's single apply worker provides.
type Faulty struct {
	inner FS
	cfg   Config

	mu     sync.Mutex
	rng    *rand.Rand
	counts map[Op]int
	faults map[Kind]int
	total  int
}

// New wraps inner (nil selects the passthrough) with cfg's schedule.
func New(inner FS, cfg Config) *Faulty {
	return &Faulty{
		inner:  OrOS(inner),
		cfg:    cfg,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		counts: make(map[Op]int),
		faults: make(map[Kind]int),
	}
}

// Stats reports operation and injected-fault counts by kind.
type Stats struct {
	Ops    map[Op]int
	Faults map[Kind]int
	Total  int
}

// Stats snapshots the injector's ledger.
func (f *Faulty) Stats() Stats {
	f.mu.Lock()
	defer f.mu.Unlock()
	st := Stats{Ops: make(map[Op]int, len(f.counts)), Faults: make(map[Kind]int, len(f.faults)), Total: f.total}
	for k, v := range f.counts {
		st.Ops[k] = v
	}
	for k, v := range f.faults {
		st.Faults[k] = v
	}
	return st
}

// decide records one invocation of op and returns the fault to inject,
// if any. flip reports whether a read should bit-flip instead of fail.
func (f *Faulty) decide(op Op) (Kind, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.counts[op]++
	n := f.counts[op]
	for _, r := range f.cfg.Rules {
		if r.Op == op && r.matches(n) {
			f.faults[r.Kind]++
			f.total++
			return r.Kind, true
		}
	}
	if f.cfg.MaxFaults > 0 && f.total >= f.cfg.MaxFaults {
		return "", false
	}
	roll := func(p float64) bool { return p > 0 && f.rng.Float64() < p }
	var kind Kind
	switch op {
	case OpRead:
		if roll(f.cfg.ReadErr) {
			kind = KindEIO
		} else if roll(f.cfg.ReadFlip) {
			kind = KindFlip
		}
	case OpWrite:
		if roll(f.cfg.WriteErr) {
			kind = KindEIO
		} else if roll(f.cfg.WriteTorn) {
			kind = KindTorn
		} else if roll(f.cfg.WriteENOSPC) {
			kind = KindENOSPC
		}
	case OpSync:
		if roll(f.cfg.SyncErr) {
			kind = KindEIO
		}
	case OpRename:
		if roll(f.cfg.RenameErr) {
			kind = KindEIO
		}
	default:
		if roll(f.cfg.MetaErr) {
			kind = KindEIO
		}
	}
	if kind == "" {
		return "", false
	}
	f.faults[kind]++
	f.total++
	return kind, true
}

// errFor builds the injected error for one op.
func errFor(kind Kind, op Op, name string) error {
	errno := syscall.EIO
	if kind == KindENOSPC {
		errno = syscall.ENOSPC
	}
	return &os.PathError{Op: "faultfs-" + string(op), Path: name, Err: errno}
}

func (f *Faulty) Open(name string) (File, error) {
	if kind, ok := f.decide(OpOpen); ok {
		return nil, errFor(kind, OpOpen, name)
	}
	inner, err := f.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &faultyFile{f: f, inner: inner}, nil
}

func (f *Faulty) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	op := OpOpen
	if flag&os.O_CREATE != 0 {
		op = OpCreate
	}
	if kind, ok := f.decide(op); ok {
		return nil, errFor(kind, op, name)
	}
	inner, err := f.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultyFile{f: f, inner: inner}, nil
}

func (f *Faulty) CreateTemp(dir, pattern string) (File, error) {
	if kind, ok := f.decide(OpCreate); ok {
		return nil, errFor(kind, OpCreate, dir+"/"+pattern)
	}
	inner, err := f.inner.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &faultyFile{f: f, inner: inner}, nil
}

func (f *Faulty) Rename(oldpath, newpath string) error {
	if kind, ok := f.decide(OpRename); ok {
		return errFor(kind, OpRename, oldpath)
	}
	return f.inner.Rename(oldpath, newpath)
}

func (f *Faulty) Remove(name string) error {
	if kind, ok := f.decide(OpRemove); ok {
		return errFor(kind, OpRemove, name)
	}
	return f.inner.Remove(name)
}

func (f *Faulty) Truncate(name string, size int64) error {
	if kind, ok := f.decide(OpTruncate); ok {
		return errFor(kind, OpTruncate, name)
	}
	return f.inner.Truncate(name, size)
}

func (f *Faulty) MkdirAll(path string, perm os.FileMode) error {
	if kind, ok := f.decide(OpMkdir); ok {
		return errFor(kind, OpMkdir, path)
	}
	return f.inner.MkdirAll(path, perm)
}

func (f *Faulty) ReadDir(name string) ([]os.DirEntry, error) {
	if kind, ok := f.decide(OpReadDir); ok {
		return nil, errFor(kind, OpReadDir, name)
	}
	return f.inner.ReadDir(name)
}

// ReadFile routes through Open so whole-file reads share the read-fault
// schedule (including bit flips) with streaming readers.
func (f *Faulty) ReadFile(name string) ([]byte, error) {
	h, err := f.Open(name)
	if err != nil {
		return nil, err
	}
	defer h.Close()
	return io.ReadAll(h)
}

func (f *Faulty) Stat(name string) (os.FileInfo, error) { return f.inner.Stat(name) }

// faultyFile injects read/write/sync faults on one handle.
type faultyFile struct {
	f     *Faulty
	inner File
}

func (ff *faultyFile) Read(p []byte) (int, error) {
	kind, ok := ff.f.decide(OpRead)
	if ok && kind == KindEIO {
		return 0, errFor(kind, OpRead, ff.inner.Name())
	}
	n, err := ff.inner.Read(p)
	if ok && kind == KindFlip && n > 0 {
		ff.f.mu.Lock()
		idx := ff.f.rng.Intn(n)
		bit := byte(1) << ff.f.rng.Intn(8)
		ff.f.mu.Unlock()
		p[idx] ^= bit
	}
	return n, err
}

func (ff *faultyFile) Write(p []byte) (int, error) {
	kind, ok := ff.f.decide(OpWrite)
	if !ok {
		return ff.inner.Write(p)
	}
	if kind == KindTorn && len(p) > 1 {
		// Land a strict prefix so the file holds a genuinely torn frame,
		// then report the failure.
		n, err := ff.inner.Write(p[:len(p)/2])
		if err != nil {
			return n, err
		}
		return n, errFor(KindEIO, OpWrite, ff.inner.Name())
	}
	return 0, errFor(kind, OpWrite, ff.inner.Name())
}

func (ff *faultyFile) Sync() error {
	if kind, ok := ff.f.decide(OpSync); ok {
		return errFor(kind, OpSync, ff.inner.Name())
	}
	return ff.inner.Sync()
}

func (ff *faultyFile) Close() error               { return ff.inner.Close() }
func (ff *faultyFile) Name() string               { return ff.inner.Name() }
func (ff *faultyFile) Stat() (os.FileInfo, error) { return ff.inner.Stat() }

// String renders a compact fault summary for logs.
func (st Stats) String() string {
	return fmt.Sprintf("faultfs: %d faults over %d op classes", st.Total, len(st.Ops))
}
