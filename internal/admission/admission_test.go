package admission

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

// fakeClock is an injectable, manually advanced clock.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func TestLimiterBucketRefill(t *testing.T) {
	clk := &fakeClock{t: time.Date(2008, 3, 1, 0, 0, 0, 0, time.UTC)}
	l := NewLimiter(10, 20, 0, clk.now)

	// A fresh client starts with a full burst.
	if rej := l.Admit("a", 20); rej != nil {
		t.Fatalf("burst-sized first batch rejected: %v", rej)
	}
	// The bucket is now empty; the next event is refused with a
	// deficit-proportional retry hint.
	rej := l.Admit("a", 5)
	if rej == nil || rej.Reason != ReasonRateLimit {
		t.Fatalf("drained bucket admitted: %v", rej)
	}
	if want := 500 * time.Millisecond; rej.RetryAfter != want {
		t.Fatalf("RetryAfter = %v, want %v (5 tokens at 10/s)", rej.RetryAfter, want)
	}
	// Refill at 10 tokens/sec: after 500ms the 5-token batch fits.
	clk.advance(500 * time.Millisecond)
	if rej := l.Admit("a", 5); rej != nil {
		t.Fatalf("refilled bucket rejected: %v", rej)
	}
	// Clients are independent.
	if rej := l.Admit("b", 20); rej != nil {
		t.Fatalf("second client shares the first's bucket: %v", rej)
	}
}

func TestLimiterOverBurstBatchNeverAdmits(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	l := NewLimiter(10, 4, 0, clk.now)
	rej := l.Admit("a", 8)
	if rej == nil || rej.Reason != ReasonRateLimit {
		t.Fatalf("over-burst batch admitted: %v", rej)
	}
}

func TestLimiterDisabled(t *testing.T) {
	if l := NewLimiter(0, 0, 0, nil); l != nil {
		t.Fatal("rate 0 must yield a nil (disabled) limiter")
	}
	var l *Limiter
	if rej := l.Admit("anyone", 1_000_000); rej != nil {
		t.Fatalf("nil limiter rejected: %v", rej)
	}
}

func TestLimiterPrunesIdleClients(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	l := NewLimiter(100, 10, 8, clk.now)
	for i := 0; i < 8; i++ {
		l.Admit(fmt.Sprintf("c%d", i), 10)
	}
	// All 8 buckets are drained (not prunable); refill them, then a new
	// client must trigger eviction of the now-idle ones.
	clk.advance(time.Second)
	if l.Admit("fresh", 1) != nil {
		t.Fatal("fresh client rejected")
	}
	if n := l.Clients(); n > 2 {
		t.Fatalf("bucket table holds %d clients after prune, want <= 2", n)
	}
}

func TestShedderControlLaw(t *testing.T) {
	sh := NewShedder(10*time.Millisecond, 7)
	if p := sh.Probability(10 * time.Millisecond); p != 0 {
		t.Fatalf("at-target probability = %v, want 0", p)
	}
	if p := sh.Probability(20 * time.Millisecond); p != 0.5 {
		t.Fatalf("2x-target probability = %v, want 0.5", p)
	}
	if p := sh.Probability(time.Hour); p != maxShedProbability {
		t.Fatalf("deep-overload probability = %v, want cap %v", p, maxShedProbability)
	}
	// Below half-full queues nothing is shed, whatever the delay says.
	if drop, _ := sh.Decide(time.Hour, 0, 16); drop {
		t.Fatal("shed over an empty queue")
	}
	// A full queue over a deep overload sheds nearly everything.
	drops := 0
	for i := 0; i < 1000; i++ {
		if drop, _ := sh.Decide(time.Hour, 16, 16); drop {
			drops++
		}
	}
	if drops < 900 || drops == 1000 {
		t.Fatalf("deep-overload shed %d/1000, want ~%v capped below 1000", drops, maxShedProbability)
	}
}

func TestShedderDeterministicUnderSeed(t *testing.T) {
	run := func() []bool {
		sh := NewShedder(time.Millisecond, 42)
		out := make([]bool, 64)
		for i := range out {
			out[i], _ = sh.Decide(3*time.Millisecond, 8, 8)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d diverges across identically seeded shedders", i)
		}
	}
}

func TestEWMAConverges(t *testing.T) {
	var e EWMA
	if e.Load() != 0 {
		t.Fatal("fresh EWMA nonzero")
	}
	// The first observation seeds the average directly.
	if got := e.Observe(100 * time.Millisecond); got != 100*time.Millisecond {
		t.Fatalf("first observation = %v, want 100ms", got)
	}
	for i := 0; i < 100; i++ {
		e.Observe(10 * time.Millisecond)
	}
	if got := e.Load(); got > 11*time.Millisecond {
		t.Fatalf("EWMA stuck at %v after 100 observations of 10ms", got)
	}
}

func TestRejectionAsError(t *testing.T) {
	rej := &Rejection{Reason: ReasonShed, RetryAfter: 2 * time.Second}
	wrapped := fmt.Errorf("ingest: %w", rej)
	got, ok := AsRejection(wrapped)
	if !ok || got.Reason != ReasonShed || got.RetryAfter != 2*time.Second {
		t.Fatalf("AsRejection(%v) = %+v, %v", wrapped, got, ok)
	}
	if _, ok := AsRejection(errors.New("plain")); ok {
		t.Fatal("plain error must not unwrap as a rejection")
	}
}

func TestConfigValidate(t *testing.T) {
	good := Config{RatePerSec: 100, Burst: 10, Deadline: time.Second, ShedTarget: time.Millisecond}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	if !good.Enabled() {
		t.Fatal("configured knobs must report enabled")
	}
	if (Config{}).Enabled() {
		t.Fatal("zero config must report disabled")
	}
	for _, bad := range []Config{
		{RatePerSec: -1},
		{Burst: -1},
		{Deadline: -time.Second},
		{ShedTarget: -time.Second},
		{DegradeTarget: -time.Second},
		{MaxWaiters: -1},
	} {
		if err := bad.Validate(); err == nil {
			t.Fatalf("config %+v must fail validation", bad)
		}
	}
}

func TestRetryAfterHint(t *testing.T) {
	if got := RetryAfterHint(0); got != time.Second {
		t.Fatalf("hint floor = %v, want 1s", got)
	}
	if got := RetryAfterHint(5 * time.Second); got != 10*time.Second {
		t.Fatalf("hint = %v, want 2x delay", got)
	}
	if got := RetryAfterHint(time.Hour); got != time.Minute {
		t.Fatalf("hint cap = %v, want 1m", got)
	}
}
